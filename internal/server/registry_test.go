package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/bundle"
	"rumba/internal/trainer"
)

func TestRegistryAddGetNames(t *testing.T) {
	reg := NewKernelRegistry()
	if err := reg.Add(synthKernel("b", synthExec{})); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(synthKernel("a", synthExec{})); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(synthKernel("a", synthExec{})); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate Add err = %v", err)
	}
	if _, ok := reg.Get("a"); !ok {
		t.Fatal("Get(a) missing")
	}
	if _, ok := reg.Get("zzz"); ok {
		t.Fatal("Get(zzz) unexpectedly present")
	}
	if names := reg.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names() = %v, want sorted [a b]", names)
	}
}

func TestKernelValidate(t *testing.T) {
	if err := (&Kernel{}).validate(); err == nil {
		t.Fatal("empty kernel: want error")
	}
	k := synthKernel("k", synthExec{})
	k.DefaultChecker = "ghost"
	if err := k.validate(); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("bad default checker err = %v", err)
	}
}

func TestNewChecker(t *testing.T) {
	k := synthKernel("k", synthExec{})
	if c, err := k.NewChecker(""); err != nil || c == nil {
		t.Fatalf("default checker = %v, %v", c, err)
	}
	if c, err := k.NewChecker("none"); err != nil || c != nil {
		t.Fatalf("none checker = %v, %v", c, err)
	}
	if _, err := k.NewChecker("mystery"); err == nil {
		t.Fatal("unknown checker: want error")
	}
	k.DefaultChecker = ""
	if c, err := k.NewChecker(""); err != nil || c != nil {
		t.Fatalf("no default checker = %v, %v (want unchecked)", c, err)
	}
}

// TestTrainKernelServesEndToEnd trains a real (tiny) sobel kernel in-process
// — the -train startup path — and serves one request through it, checking
// the trained tree/linear checkers registered.
func TestTrainKernelServesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	k, err := TrainKernel("sobel", 64, 2)
	if err != nil {
		t.Fatalf("TrainKernel: %v", err)
	}
	if k.Name != "sobel" || k.DefaultChecker == "" {
		t.Fatalf("kernel = %s default %q", k.Name, k.DefaultChecker)
	}
	for _, name := range []string{"linear", "tree"} {
		if _, ok := k.Checkers[name]; !ok {
			t.Fatalf("trained kernel missing checker %q", name)
		}
	}

	_, hs := newTestServer(t, Options{}, k)
	inputs := make([][]float64, 4)
	for i := range inputs {
		row := make([]float64, k.Spec.InDim)
		for j := range row {
			row[j] = float64(i+j) / 16
		}
		inputs[i] = row
	}
	status, resp, msg := invoke(t, hs.URL, InvokeRequest{Kernel: "sobel", Inputs: inputs})
	if status != 200 {
		t.Fatalf("invoke trained kernel: status %d (%s)", status, msg)
	}
	if resp.Elements != 4 || len(resp.Outputs) != 4 || len(resp.Outputs[0]) != k.Spec.OutDim {
		t.Fatalf("trained invoke response = %+v", resp)
	}

	if _, err := TrainKernel("no-such-benchmark", 8, 1); err == nil {
		t.Fatal("TrainKernel(no-such-benchmark): want error")
	}
}

// TestLoadBundleDir round-trips a trained kernel through a rumba-train
// bundle file and back into a registry.
func TestLoadBundleDir(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	spec, err := bench.Get("sobel")
	if err != nil {
		t.Fatal(err)
	}
	train := spec.GenTrain(64)
	cfg := trainer.DefaultAccelTrainConfig("sobel")
	cfg.NN.Epochs = 2
	acfg, err := trainer.TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := accel.New(acfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := trainer.TrainPredictors(spec, train, trainer.Observe(spec, acc, train))
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New(spec, acfg, ps)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := bundle.Save(filepath.Join(dir, "sobel.json"), b); err != nil {
		t.Fatal(err)
	}
	// Non-bundle entries are ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}

	reg := NewKernelRegistry()
	n, err := reg.LoadBundleDir(dir)
	if err != nil || n != 1 {
		t.Fatalf("LoadBundleDir = %d, %v", n, err)
	}
	k, ok := reg.Get("sobel")
	if !ok {
		t.Fatal("bundle kernel not registered")
	}
	acc2, err := k.NewAccel()
	if err != nil {
		t.Fatal(err)
	}
	probe := make([]float64, spec.InDim)
	if out := acc2.Invoke(probe); len(out) != spec.OutDim {
		t.Fatalf("bundle accel output dim = %d, want %d", len(out), spec.OutDim)
	}

	if _, err := reg.LoadBundleDir(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("LoadBundleDir(missing): want error")
	}
	// A malformed bundle is a load error, not a silent skip.
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg2 := NewKernelRegistry()
	if _, err := reg2.LoadBundleDir(dir); err == nil {
		t.Fatal("LoadBundleDir with malformed bundle: want error")
	}
}

func TestTenantCreateUncheckedKernel(t *testing.T) {
	k := synthKernel("plain", synthExec{})
	k.Checkers = nil
	k.DefaultChecker = ""
	_, hs := newTestServer(t, Options{}, k)
	status, resp, msg := invoke(t, hs.URL, InvokeRequest{Kernel: "plain", Inputs: [][]float64{in(1, 9)}})
	if status != 200 {
		t.Fatalf("unchecked invoke: status %d (%s)", status, msg)
	}
	// No checker: nothing fires, output stays approximate, threshold 0.
	if resp.Fixed != 0 || resp.Threshold != 0 || resp.Checker != "none" {
		t.Fatalf("unchecked response = %+v", resp)
	}
	if resp.Outputs[0][0] != 1*2+0.125 {
		t.Fatalf("unchecked output = %v", resp.Outputs[0])
	}
}
