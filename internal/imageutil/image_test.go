package imageutil

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestNewGrayAndSet(t *testing.T) {
	g := NewGray(4, 3)
	g.Set(2, 1, 128)
	if g.At(2, 1) != 128 {
		t.Fatal("Set/At broken")
	}
}

func TestAtEdgeClamping(t *testing.T) {
	g := NewGray(2, 2)
	g.Set(0, 0, 10)
	g.Set(1, 1, 20)
	if g.At(-5, -5) != 10 {
		t.Fatalf("top-left clamp = %v", g.At(-5, -5))
	}
	if g.At(99, 99) != 20 {
		t.Fatalf("bottom-right clamp = %v", g.At(99, 99))
	}
}

func TestSetPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGray(2, 2).Set(2, 0, 1)
}

func TestMeanBrightness(t *testing.T) {
	g := NewGray(2, 2)
	copy(g.Pix, []float64{0, 100, 100, 200})
	if m := g.MeanBrightness(); m != 100 {
		t.Fatalf("mean = %v", m)
	}
}

func TestMeanBrightnessPerforated(t *testing.T) {
	g := NewGray(4, 1)
	copy(g.Pix, []float64{10, 20, 30, 40})
	// stride 2 offset 0: pixels 10, 30 -> 20.
	if m := g.MeanBrightnessPerforated(2, 0); m != 20 {
		t.Fatalf("perforated mean = %v, want 20", m)
	}
	// stride 1 must equal the exact mean.
	if m := g.MeanBrightnessPerforated(1, 0); m != g.MeanBrightness() {
		t.Fatal("stride 1 must be exact")
	}
}

func TestMeanBrightnessPerforatedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGray(1, 1).MeanBrightnessPerforated(0, 0)
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(32, 24, "scene1")
	b := Synthetic(32, 24, "scene1")
	c := Synthetic(32, 24, "scene2")
	if MeanAbsDiff(a, b) != 0 {
		t.Fatal("same seed must produce identical images")
	}
	if MeanAbsDiff(a, c) == 0 {
		t.Fatal("different seeds should produce different images")
	}
}

func TestSyntheticPixelsInRange(t *testing.T) {
	g := Synthetic(64, 64, "range-check")
	for _, p := range g.Pix {
		if p < 0 || p > 255 || math.IsNaN(p) {
			t.Fatalf("pixel %v out of range", p)
		}
	}
}

func TestSyntheticFlowerVariesBrightness(t *testing.T) {
	// Figure 3 needs a set whose brightness structure varies image to
	// image; check that means are spread over a non-trivial interval.
	minM, maxM := math.Inf(1), math.Inf(-1)
	for i := 0; i < 30; i++ {
		m := SyntheticFlower(48, 48, i).MeanBrightness()
		minM = math.Min(minM, m)
		maxM = math.Max(maxM, m)
	}
	if maxM-minM < 20 {
		t.Fatalf("flower set brightness spread too small: [%v, %v]", minM, maxM)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Synthetic(8, 8, "clone")
	c := g.Clone()
	c.Pix[0] = 999
	if g.Pix[0] == 999 {
		t.Fatal("Clone must deep copy")
	}
}

func TestClamp255(t *testing.T) {
	if Clamp255(-3) != 0 || Clamp255(300) != 255 || Clamp255(42) != 42 {
		t.Fatal("Clamp255 broken")
	}
}

func TestMeanAbsDiff(t *testing.T) {
	a := NewGray(2, 1)
	b := NewGray(2, 1)
	copy(a.Pix, []float64{10, 20})
	copy(b.Pix, []float64{12, 16})
	if d := MeanAbsDiff(a, b); d != 3 {
		t.Fatalf("diff = %v, want 3", d)
	}
}

func TestPGMRoundTrip(t *testing.T) {
	g := Synthetic(17, 9, "pgm")
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != g.W || back.H != g.H {
		t.Fatalf("shape %dx%d", back.W, back.H)
	}
	// Round trip quantises to 8 bits, so allow 0.5.
	for i := range g.Pix {
		if math.Abs(back.Pix[i]-math.Round(g.Pix[i])) > 0.5 {
			t.Fatalf("pixel %d: %v vs %v", i, back.Pix[i], g.Pix[i])
		}
	}
}

func TestReadPGMRejectsGarbage(t *testing.T) {
	if _, err := ReadPGM(bytes.NewBufferString("P6\n2 2\n255\nxxxx")); err == nil {
		t.Fatal("expected error for P6")
	}
	if _, err := ReadPGM(bytes.NewBufferString("")); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := ReadPGM(bytes.NewBufferString("P5\n4 4\n255\nxx")); err == nil {
		t.Fatal("expected error for truncated data")
	}
}

// Property: perforated mean over all offsets of a stride averages back to a
// value close to the true mean (each pixel counted exactly once overall).
func TestPerforationCoverageProperty(t *testing.T) {
	f := func(seed uint8, strideRaw uint8) bool {
		stride := int(strideRaw)%5 + 1
		g := Synthetic(16, 16, string(rune('a'+seed%26)))
		var weighted float64
		total := 0
		for off := 0; off < stride; off++ {
			n := 0
			for i := off; i < len(g.Pix); i += stride {
				n++
			}
			weighted += g.MeanBrightnessPerforated(stride, off) * float64(n)
			total += n
		}
		return total == len(g.Pix) &&
			math.Abs(weighted/float64(total)-g.MeanBrightness()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
