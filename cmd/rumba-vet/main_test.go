package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rumba/internal/analysis"
)

// fixtureSrc trips every analyzer in the suite exactly once, plus one
// suppressed finding, so the golden file pins the full JSON shape: field
// names, severity strings, ordering, suppression, and the fail count.
const fixtureSrc = `package fix

import (
	"sync"
	"time"
)

var g int

type spec struct {
	Exact func([]float64) []float64
}

//rumba:pure
func declared(x int) int { g++; return x }

func impure(in []float64) []float64 {
	_ = time.Now()
	return in
}

var s = spec{Exact: impure}

func cmp(a, b float64) bool { return a == b }

func allowed(a, b float64) bool {
	return a != b //rumba:allow floatcmp golden fixture
}

func locked(mu sync.Mutex) { mu.Lock() }
`

func TestGoldenJSON(t *testing.T) {
	loader, err := analysis.SharedLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadSource(map[string]string{"fix.go": fixtureSrc})
	if err != nil {
		t.Fatal(err)
	}
	m := analysis.BuildModule(loader.Fset(), "", []*analysis.Package{pkg})
	diags := m.Run()
	out, err := analysis.MarshalJSONReport(analysis.Analyzers(), diags, analysis.SeverityWarning)
	if err != nil {
		t.Fatal(err)
	}
	got := string(out) + "\n"

	golden := filepath.Join("testdata", "golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch (run with UPDATE_GOLDEN=1 to regenerate)\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestExamplesHaveNoKernelSigViolations is the CI smoke test: every
// example program must obtain its kernels from sources the suite can
// prove pure — zero kernelsig findings across the examples tree.
func TestExamplesHaveNoKernelSigViolations(t *testing.T) {
	loader, err := analysis.SharedLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	examples := 0
	for _, pkg := range pkgs {
		if strings.Contains(pkg.Path, "/examples/") {
			examples++
		}
	}
	if examples < 7 {
		t.Fatalf("expected at least 7 example packages, found %d", examples)
	}
	m := analysis.BuildModule(loader.Fset(), loader.Root(), pkgs)
	for _, d := range m.Run(analysis.AnalyzerKernelSig) {
		if strings.HasPrefix(filepath.ToSlash(d.File), "examples/") && !d.Suppressed {
			t.Errorf("kernelsig violation in examples: %s", d)
		}
	}
}

// TestShippedTreeIsClean mirrors the acceptance criterion: the full suite
// over the whole module reports zero unsuppressed findings at or above
// warning severity.
func TestShippedTreeIsClean(t *testing.T) {
	loader, err := analysis.SharedLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	m := analysis.BuildModule(loader.Fset(), loader.Root(), pkgs)
	diags := m.Run()
	if n := analysis.FailCount(diags, analysis.SeverityWarning); n != 0 {
		for _, d := range diags {
			if !d.Suppressed && d.Severity >= analysis.SeverityWarning {
				t.Errorf("unexpected finding: %s", d)
			}
		}
		t.Fatalf("%d unsuppressed findings on the shipped tree", n)
	}
}

func TestFilterPackages(t *testing.T) {
	diags := []analysis.Diagnostic{
		{File: "internal/bench/fft.go"},
		{File: "examples/quickstart/main.go"},
	}
	if got := filterPackages(diags, nil); len(got) != 2 {
		t.Fatalf("no patterns should keep all, got %d", len(got))
	}
	if got := filterPackages(diags, []string{"./..."}); len(got) != 2 {
		t.Fatalf("./... should keep all, got %d", len(got))
	}
	if got := filterPackages(diags, []string{"internal/bench"}); len(got) != 1 || got[0].File != "internal/bench/fft.go" {
		t.Fatalf("internal/bench filter wrong: %v", got)
	}
	if got := filterPackages(diags, []string{"examples/..."}); len(got) != 1 || got[0].File != "examples/quickstart/main.go" {
		t.Fatalf("examples/... filter wrong: %v", got)
	}
}
