package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, name string, rows []benchCompareRow) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	data, err := json.Marshal(struct {
		Rows []benchCompareRow `json:"rows"`
	}{rows})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareBenchFiles(t *testing.T) {
	oldRows := []benchCompareRow{
		{Kernel: "forward", Datapath: "exp", Batch: 1, NsPerElem: 100},
		{Kernel: "forward-batch", Datapath: "lut", Batch: 64, NsPerElem: 20},
		{Kernel: "stream", Datapath: "lut/BatchSize=64", Batch: 64, NsPerElem: 50},
	}
	newRows := []benchCompareRow{
		{Kernel: "forward", Datapath: "exp", Batch: 1, NsPerElem: 110},                    // +10%: within threshold
		{Kernel: "forward-batch", Datapath: "lut", Batch: 64, NsPerElem: 30},              // +50%: regression
		{Kernel: "q16-forward-batch", Datapath: "q16.16/lut10", Batch: 64, NsPerElem: 10}, // added
	}
	oldPath := writeBaseline(t, "old.json", oldRows)
	newPath := writeBaseline(t, "new.json", newRows)

	res, err := CompareBenchFiles(oldPath, newPath, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1", res.Regressions)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("matched rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0].Regressed || !res.Rows[1].Regressed {
		t.Fatalf("verdicts = %+v", res.Rows)
	}
	if got := res.Rows[1].DeltaPct; got < 49.9 || got > 50.1 {
		t.Fatalf("delta = %v, want ~50", got)
	}
	if len(res.MissingInNew) != 1 || res.MissingInNew[0] != "stream/lut/BatchSize=64/b64" {
		t.Fatalf("missing = %v", res.MissingInNew)
	}
	if len(res.AddedInNew) != 1 || res.AddedInNew[0] != "q16-forward-batch/q16.16/lut10/b64" {
		t.Fatalf("added = %v", res.AddedInNew)
	}
	out := res.Table().Render()
	if !strings.Contains(out, "1 REGRESSION") || !strings.Contains(out, "REGRESSED") {
		t.Fatalf("rendered table misses the verdict:\n%s", out)
	}

	// Identical baselines: clean.
	res, err = CompareBenchFiles(oldPath, oldPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 0 || res.ThresholdPct != DefaultCompareThresholdPct {
		t.Fatalf("self-compare: %d regressions at %v%%", res.Regressions, res.ThresholdPct)
	}

	// A speedup is never a regression.
	fastPath := writeBaseline(t, "fast.json", []benchCompareRow{
		{Kernel: "forward", Datapath: "exp", Batch: 1, NsPerElem: 10},
		{Kernel: "forward-batch", Datapath: "lut", Batch: 64, NsPerElem: 2},
		{Kernel: "stream", Datapath: "lut/BatchSize=64", Batch: 64, NsPerElem: 5},
	})
	res, err = CompareBenchFiles(oldPath, fastPath, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 0 {
		t.Fatalf("speedup flagged as regression: %+v", res.Rows)
	}
}

func TestCompareBenchFilesErrors(t *testing.T) {
	good := writeBaseline(t, "good.json", []benchCompareRow{
		{Kernel: "forward", Datapath: "exp", Batch: 1, NsPerElem: 100},
	})
	if _, err := CompareBenchFiles(good, filepath.Join(t.TempDir(), "absent.json"), 15); err == nil {
		t.Error("missing new baseline: want error")
	}
	empty := writeBaseline(t, "empty.json", nil)
	if _, err := CompareBenchFiles(empty, good, 15); err == nil {
		t.Error("empty baseline: want error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CompareBenchFiles(bad, good, 15); err == nil {
		t.Error("malformed baseline: want error")
	}
	dup := writeBaseline(t, "dup.json", []benchCompareRow{
		{Kernel: "forward", Datapath: "exp", Batch: 1, NsPerElem: 100},
		{Kernel: "forward", Datapath: "exp", Batch: 1, NsPerElem: 90},
	})
	if _, err := CompareBenchFiles(dup, good, 15); err == nil {
		t.Error("duplicate rows: want error")
	}
}
