package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"rumba/internal/obs"
	"rumba/internal/server"
	"rumba/internal/slo"
	"rumba/internal/trace"
)

// TestClusterStitchedFailoverTrace is the tentpole observability scenario: a
// failover-retried invoke leaves half a trace on the router (the route span,
// the dead-node attempt, the retried attempt) and half on the surviving node
// (its full invoke subtree), and the router's stitch endpoint reassembles
// them into one tree.
func TestClusterStitchedFailoverTrace(t *testing.T) {
	h, err := NewHarness(HarnessOptions{
		Nodes: 3,
		Router: Options{
			TraceCapacity: 16,
			// A glacial probe keeps the membership oblivious to the kill, so
			// the router genuinely attempts the dead node instead of skipping
			// it — that failed attempt is the span the stitch must show.
			Probe: ProbeConfig{Interval: time.Hour, SuspectAfter: 1, DownAfter: 2},
		},
		ServerOptions: func(int) server.Options {
			return server.Options{TraceCapacity: 16}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Learn the tenant's owner while everything is healthy, then crash it.
	_, _, owner := clusterInvoke(t, h.URL(), server.InvokeRequest{
		Tenant: "acme", Kernel: "synth", Inputs: tripleBatch(4, 0),
	})
	if owner == "" {
		t.Fatal("no owner learned")
	}
	if err := h.Kill(owner); err != nil {
		t.Fatal(err)
	}

	// The failover-retried invoke: owner refuses, a replica answers.
	body, _ := json.Marshal(server.InvokeRequest{
		Tenant: "acme", Kernel: "synth", Inputs: tripleBatch(4, 0),
	})
	resp, err := http.Post(h.URL()+"/v1/invoke", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover invoke = %d: %s", resp.StatusCode, payload)
	}
	survivor := resp.Header.Get("X-Rumba-Node")
	if survivor == "" || survivor == owner {
		t.Fatalf("served by %q, want a survivor (owner %s dead)", survivor, owner)
	}
	traceID := resp.Header.Get(trace.TraceHeader)
	if traceID == "" {
		t.Fatal("router response carries no trace identity")
	}

	var st StitchedTrace
	getClusterJSON(t, h.URL()+"/debug/rumba/traces/"+traceID, http.StatusOK, &st)
	if st.TraceID != traceID {
		t.Fatalf("stitched trace %q, want %q", st.TraceID, traceID)
	}
	// Exactly one trace spanning router + surviving node — the dead node
	// could not record anything.
	if len(st.Nodes) != 2 || st.Nodes[0] != RouterNodeName || st.Nodes[1] != survivor {
		t.Fatalf("stitched nodes %v, want [%s %s]", st.Nodes, RouterNodeName, survivor)
	}
	if st.Orphans != 0 {
		t.Fatalf("%d orphan subtrees — node root did not link under its hop", st.Orphans)
	}
	hasFlag := false
	for _, f := range st.Flags {
		if f == "failover" {
			hasFlag = true
		}
	}
	if !hasFlag {
		t.Fatalf("stitched flags %v missing failover", st.Flags)
	}

	// The span tree: route → dead-node attempt (error) and route → retried
	// attempt, with the survivor's whole invoke subtree under the retry.
	var routeID, deadAttempt, liveAttempt, nodeRoot *StitchedSpan
	nodeSpans := 0
	for i := range st.Spans {
		sp := &st.Spans[i]
		switch {
		case sp.Node == RouterNodeName && sp.Name == "route":
			routeID = sp
		case sp.Node == RouterNodeName && sp.Name == "forward":
			if sp.Attrs["node"] == owner {
				deadAttempt = sp
			} else if sp.Attrs["node"] == survivor {
				liveAttempt = sp
			}
		case sp.Node == survivor:
			nodeSpans++
			if sp.Name == "invoke" {
				nodeRoot = sp
			}
		}
	}
	if routeID == nil || deadAttempt == nil || liveAttempt == nil || nodeRoot == nil {
		t.Fatalf("span tree incomplete (route=%v dead=%v live=%v nodeRoot=%v):\n%+v",
			routeID != nil, deadAttempt != nil, liveAttempt != nil, nodeRoot != nil, st.Spans)
	}
	if deadAttempt.Parent != routeID.ID || liveAttempt.Parent != routeID.ID {
		t.Fatalf("forward attempts not under the route span: %+v", st.Spans)
	}
	if _, failed := deadAttempt.Attrs["error"]; !failed {
		t.Fatalf("dead-node attempt recorded no error: %+v", deadAttempt)
	}
	if nodeRoot.Parent != liveAttempt.ID {
		t.Fatalf("survivor's root (parent %d) not under the retried attempt (id %d)",
			nodeRoot.Parent, liveAttempt.ID)
	}
	if nodeSpans < 2 {
		t.Fatalf("survivor contributed %d spans, want its full subtree", nodeSpans)
	}
}

// TestClusterSLOAlertsAndNodeDeath drives a TOQ-violating tenant into a
// fast-window page — visible through the router in both the tenant's health
// and the merged cluster alert view — then kills the tenant's node and
// checks the router flips that node's alert state to a synthesized
// availability page.
func TestClusterSLOAlertsAndNodeDeath(t *testing.T) {
	h, err := NewHarness(HarnessOptions{
		Nodes: 3,
		ServerOptions: func(int) server.Options {
			return server.Options{
				InvocationSize: 8,
				SLO: server.SLOOptions{
					Enabled:      true,
					FastWindow:   80 * time.Millisecond,
					SlowWindow:   160 * time.Millisecond,
					EvalInterval: 10 * time.Millisecond,
				},
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Raise acme's threshold past 0.15, age that healthy traffic out of both
	// burn windows, then ship pure TOQ misses (0.15-score elements sail under
	// the raised threshold while breaching the 0.10 drift target).
	if got := driveEnergyTenant(t, h.URL(), "acme", 5); got <= 0.15 {
		t.Fatalf("threshold %v never rose above 0.15", got)
	}
	time.Sleep(200 * time.Millisecond)
	for i := 0; i < 6; i++ {
		if status, _, _ := clusterInvoke(t, h.URL(), server.InvokeRequest{
			Tenant: "acme", Kernel: "synth", Inputs: tripleBatch(8, 0.15),
		}); status != http.StatusOK {
			t.Fatalf("miss round %d = %d", i, status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Through the router: the tenant's own health carries the page...
	var health server.TenantHealth
	getClusterJSON(t, h.URL()+"/v1/tenants/acme/health", http.StatusOK, &health)
	if health.Healthy {
		t.Fatal("paging tenant reports healthy through the router")
	}
	paged := false
	for _, a := range health.SLO {
		if a.Budget == slo.BudgetTOQ && a.Severity == slo.SeverityPage {
			paged = true
		}
	}
	if !paged {
		t.Fatalf("health.SLO missing the TOQ page: %+v", health.SLO)
	}

	// ...and so does the merged cluster view, attributed to the owner node.
	owner := h.Router.Ring().Owner("acme")
	var alerts ClusterAlerts
	getClusterJSON(t, h.URL()+"/v1/cluster/alerts", http.StatusOK, &alerts)
	if alerts.Paging < 1 {
		t.Fatalf("cluster view sees no paging alerts: %+v", alerts)
	}
	found := false
	for _, na := range alerts.Nodes {
		if na.Node != owner {
			continue
		}
		if !na.Enabled || na.Down {
			t.Fatalf("owner entry wrong: %+v", na)
		}
		for _, a := range na.Alerts {
			if a.Tenant == "acme" && a.Budget == slo.BudgetTOQ && a.Severity == slo.SeverityPage {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no acme TOQ page under owner %s: %+v", owner, alerts.Nodes)
	}

	// Kill the owner: once the prober agrees, the router replaces the node's
	// self-reported alerts with a synthesized availability page.
	if err := h.Kill(owner); err != nil {
		t.Fatal(err)
	}
	waitForState(t, h.Router, owner, NodeDown)
	getClusterJSON(t, h.URL()+"/v1/cluster/alerts", http.StatusOK, &alerts)
	flipped := false
	for _, na := range alerts.Nodes {
		if na.Node == owner {
			if !na.Down || len(na.Alerts) != 1 ||
				na.Alerts[0].Budget != BudgetAvailability ||
				na.Alerts[0].Severity != slo.SeverityPage {
				t.Fatalf("dead owner's alert state: %+v", na)
			}
			flipped = true
		}
	}
	if !flipped {
		t.Fatalf("dead owner %s missing from cluster alerts: %+v", owner, alerts.Nodes)
	}
	if alerts.Paging < 1 {
		t.Fatalf("availability page not counted: %+v", alerts)
	}
}

// TestClusterFederatedMetricsRoundTrip scrapes the router's federated
// /metrics and re-parses it with the strict exposition validator: every
// member's metrics appear under a node label and the merged text is still a
// legal exposition.
func TestClusterFederatedMetricsRoundTrip(t *testing.T) {
	h, err := NewHarness(HarnessOptions{
		Nodes:  3,
		Router: Options{Federate: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	for i := 0; i < 6; i++ {
		tenant := []string{"a", "b", "c"}[i%3]
		if status, _, _ := clusterInvoke(t, h.URL(), server.InvokeRequest{
			Tenant: tenant, Kernel: "synth", Inputs: tripleBatch(4, 0),
		}); status != http.StatusOK {
			t.Fatalf("seed invoke = %d", status)
		}
	}

	resp, err := http.Get(h.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("federated /metrics = %d", resp.StatusCode)
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("federated exposition is not strictly parseable: %v\n%s", err, body)
	}
	text := string(body)
	// The router's per-member probe states keep the member they describe
	// (an existing node label wins over the federation stamp)...
	if !strings.Contains(text, `rumba_cluster_probe_state{node="node-0"}`) {
		t.Fatalf("probe-state family lost its member labels:\n%s", text)
	}
	// ...its unlabeled metrics pick up the router's identity...
	if !strings.Contains(text, `node="`+RouterNodeName+`"`) {
		t.Fatalf("router's own metrics carry no node label:\n%s", text)
	}
	// ...and every member shows up with its serve counters under its name.
	for _, n := range h.Nodes {
		if !strings.Contains(text, `rumba_serve_requests{node="`+n.Name+`"}`) {
			t.Fatalf("member %s serve counter absent from federated exposition:\n%s", n.Name, text)
		}
	}
}

// getClusterJSON GETs and decodes one JSON endpoint, asserting the status.
func getClusterJSON(t *testing.T, url string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d: %s", url, resp.StatusCode, wantStatus, payload)
	}
	if err := json.Unmarshal(payload, into); err != nil {
		t.Fatalf("decode %s: %v\n%s", url, err, payload)
	}
}
