// Package quality implements the application-specific output-quality metrics
// of Table 1 (mean relative error, mismatch count, mean pixel/output diff)
// together with the error-distribution machinery behind Figures 1, 2 and 13:
// per-element relative errors, error CDFs and large-error statistics.
//
// Throughout the package "error" is expressed as a fraction in [0, +inf)
// (0.10 == 10% output error == 90% output quality), matching the paper's
// convention that output error of 5% represents 95% output quality.
package quality

import (
	"fmt"
	"math"
	"sort"
)

// Metric identifies an application-specific output-quality metric.
type Metric int

const (
	// MeanRelativeError averages |approx-exact| / |exact| per output value
	// (blackscholes, fft, inversek2j).
	MeanRelativeError Metric = iota
	// MismatchRate is the fraction of outputs whose classification differs
	// (jmeint: "# of mismatches").
	MismatchRate
	// MeanPixelDiff averages |approx-exact| normalised to the pixel range
	// (jpeg, sobel).
	MeanPixelDiff
	// MeanOutputDiff averages |approx-exact| normalised to the output range
	// (kmeans).
	MeanOutputDiff
)

// String implements fmt.Stringer using the paper's wording.
func (m Metric) String() string {
	switch m {
	case MeanRelativeError:
		return "Mean Relative Error"
	case MismatchRate:
		return "# of mismatches"
	case MeanPixelDiff:
		return "Mean Pixel Diff"
	case MeanOutputDiff:
		return "Mean Output Diff"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// relFloor protects relative error against division by (near) zero; errors
// on tiny exact values are measured against this floor instead, the usual
// convention in the approximate-computing literature. When the caller
// supplies a positive output scale, the floor is 5% of that scale so the
// convention is magnitude-independent.
const relFloor = 1e-2

// MaxElementError caps per-element errors. A broken kernel or accelerator can
// emit NaN or ±Inf outputs; reporting those as a finite, maximal error keeps
// the online quality machinery (means, CDFs, tuner statistics) well defined
// instead of letting one poisoned element turn every aggregate into NaN.
const MaxElementError = 1e6

// clampError maps any per-element error value into [0, MaxElementError],
// sending NaN (incomparable, maximally wrong) to the cap.
func clampError(v float64) float64 {
	if math.IsNaN(v) || v > MaxElementError {
		return MaxElementError
	}
	if v < 0 {
		return 0
	}
	return v
}

// ElementError returns the error of one output element under the metric.
// Both slices hold the element's output vector (possibly multi-dimensional,
// e.g. fft's (re, im) pair); the element error aggregates over the vector.
//
// scale is the output magnitude/range: the *Diff metrics divide by it, and
// MeanRelativeError uses 5% of it as the near-zero denominator floor. It is
// ignored by MismatchRate.
//
// ElementError is total: it never panics and always returns a finite value in
// [0, MaxElementError]. Mismatched slice lengths compare over the common
// prefix (a truncated output is already maximally wrong past the prefix, and
// the online monitor must not crash on it), non-finite values clamp per
// clampError, and a non-positive or non-finite scale falls back to the
// defaults.
func ElementError(m Metric, exact, approx []float64, scale float64) float64 {
	n := len(exact)
	if len(approx) < n {
		n = len(approx)
	}
	if n == 0 {
		return 0
	}
	if math.IsNaN(scale) || math.IsInf(scale, 0) {
		scale = 0
	}
	switch m {
	case MeanRelativeError:
		floor := relFloor
		if scale > 0 {
			floor = 0.05 * scale
		}
		var s float64
		for i := 0; i < n; i++ {
			den := math.Abs(exact[i])
			if !(den >= floor) { // NaN den also lands on the floor
				den = floor
			}
			s += clampError(math.Abs(approx[i]-exact[i]) / den)
		}
		return s / float64(n)
	case MismatchRate:
		// Classification outputs: the element is wrong iff the argmax
		// differs (jmeint uses a 2-way one-hot encoding).
		if argmax(exact[:n]) == argmax(approx[:n]) {
			return 0
		}
		return 1
	case MeanPixelDiff, MeanOutputDiff:
		if scale <= 0 {
			scale = 1
		}
		var s float64
		for i := 0; i < n; i++ {
			s += clampError(math.Abs(approx[i]-exact[i]) / scale)
		}
		return s / float64(n)
	default:
		// Unknown metrics read as "no measurable error" rather than a crash
		// in the monitoring path.
		return 0
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// OutputError aggregates per-element errors into the whole-application output
// error, which is their mean for every Table 1 metric.
func OutputError(elementErrors []float64) float64 {
	if len(elementErrors) == 0 {
		return 0
	}
	var s float64
	for _, e := range elementErrors {
		s += e
	}
	return s / float64(len(elementErrors))
}

// ErrorAfterFixing returns the application output error if exactly the
// elements in fixed (by index) are recomputed exactly, i.e. their element
// error becomes zero.
func ErrorAfterFixing(elementErrors []float64, fixed []int) float64 {
	if len(elementErrors) == 0 {
		return 0
	}
	var removed float64
	seen := make(map[int]bool, len(fixed))
	for _, idx := range fixed {
		if idx < 0 || idx >= len(elementErrors) || seen[idx] {
			continue
		}
		seen[idx] = true
		removed += elementErrors[idx]
	}
	total := OutputError(elementErrors) * float64(len(elementErrors))
	return (total - removed) / float64(len(elementErrors))
}

// CDFPoint is one point of an error CDF: Fraction of elements whose error is
// <= Error.
type CDFPoint struct {
	Error    float64
	Fraction float64
}

// CDF computes the cumulative distribution of element errors sampled at the
// given number of evenly spaced error levels between 0 and the maximum error
// (Figure 1). It returns nil for fewer than 2 points or no elements, and
// clamps non-finite error values per clampError so the levels and fractions
// are always finite.
func CDF(elementErrors []float64, points int) []CDFPoint {
	if points < 2 || len(elementErrors) == 0 {
		return nil
	}
	sorted := make([]float64, len(elementErrors))
	for i, e := range elementErrors {
		sorted[i] = clampError(e)
	}
	sort.Float64s(sorted)
	maxErr := sorted[len(sorted)-1]
	if maxErr == 0 {
		maxErr = 1e-9
	}
	out := make([]CDFPoint, points)
	for i := 0; i < points; i++ {
		level := maxErr * float64(i) / float64(points-1)
		// Count elements <= level by binary search.
		n := sort.SearchFloat64s(sorted, math.Nextafter(level, math.Inf(1)))
		out[i] = CDFPoint{Error: level, Fraction: float64(n) / float64(len(sorted))}
	}
	return out
}

// FractionBelow returns the fraction of elements with error <= level.
func FractionBelow(elementErrors []float64, level float64) float64 {
	if len(elementErrors) == 0 {
		return 0
	}
	n := 0
	for _, e := range elementErrors {
		if e <= level {
			n++
		}
	}
	return float64(n) / float64(len(elementErrors))
}

// LargeErrorThreshold is the paper's cutoff for a "large" approximation
// error: 20% relative error (Section 5.1, large error coverage).
const LargeErrorThreshold = 0.20

// LargeErrors returns the indices of elements whose error exceeds the
// threshold.
func LargeErrors(elementErrors []float64, threshold float64) []int {
	var out []int
	for i, e := range elementErrors {
		if e > threshold {
			out = append(out, i)
		}
	}
	return out
}

// Summary condenses an element-error vector for reports.
type Summary struct {
	Count         int
	Mean          float64
	Max           float64
	P95           float64
	LargeFraction float64 // fraction of elements above LargeErrorThreshold
}

// Summarize computes a Summary.
func Summarize(elementErrors []float64) Summary {
	s := Summary{Count: len(elementErrors)}
	if s.Count == 0 {
		return s
	}
	sorted := append([]float64(nil), elementErrors...)
	sort.Float64s(sorted)
	var sum float64
	large := 0
	for _, e := range sorted {
		sum += e
		if e > LargeErrorThreshold {
			large++
		}
	}
	s.Mean = sum / float64(s.Count)
	s.Max = sorted[s.Count-1]
	idx := int(0.95 * float64(s.Count-1))
	s.P95 = sorted[idx]
	s.LargeFraction = float64(large) / float64(s.Count)
	return s
}

// ApproxEqual reports whether a and b agree within eps: absolutely for
// values near zero, relatively otherwise. It is the epsilon helper the
// floatcmp analyzer points threshold logic at — exact ==/!= on computed
// floating-point values (predicted errors, tuner thresholds) stops firing
// once roundoff enters, which in Rumba's case means recovery silently
// degrades. NaN compares unequal to everything, as with ==.
func ApproxEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= eps {
		return true
	}
	return diff <= eps*math.Max(math.Abs(a), math.Abs(b))
}
