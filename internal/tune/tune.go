// Package tune is the offline design-space autotuner (rumba-tune): per
// kernel it sweeps datapath (exp / LUT / fixed-point Q16.16) × batch size ×
// activation-table resolution × checker family, measures delivered quality on
// the package golden corpus and cost through the bench harness, and emits a
// versioned, checksummed Pareto-frontier artifact the serving layer loads to
// pick each tenant's cheapest operating point under its TOQ and p99 SLO.
//
// The sweep follows the autoAx recipe: exhaustive measurement of the grid is
// the ground truth but most of it is spent on points a cheap model can tell
// are dominated. Sweep therefore measures a structured seed (every
// lutBits-endpoint combo at the batch endpoints, plus one full batch curve),
// fits surrogates — a linear least-squares model over the combo axes and a
// monotone isotonic batch-shape spline (surrogate.go) — predicts the rest of
// the grid, prunes points that are predicted dominated by at least the
// safety margin on every objective, and spends the remaining measurement
// budget (≤ MaxEvalFraction of the grid) on the surviving points,
// predicted-Pareto first. Survivors the budget never reaches keep their
// predicted values and are marked so (Point.Measured=false, the obs layer
// compares predicted vs delivered cost online).
//
// Dominance is three-objective: delivered quality (corpus error, lower is
// better), steady-state cost (ns per element, lower is better) and chunk
// latency (ns/elem × batch — the p99 building block; lower is better). The
// third axis is why a frontier keeps points at several batch sizes: a tight
// p99 SLO excludes wide batches even when they are cheapest per element.
package tune

import (
	"fmt"
	"math"
	"sort"
)

// Datapath names of the sweep axis; they match accel.ApplyDatapath.
const (
	DatapathExp   = "exp"
	DatapathLUT   = "lut"
	DatapathFixed = "fixed"
)

// Point is one design point: a configuration half (the swept axes) and a
// measurement half (quality/cost, measured or surrogate-predicted).
type Point struct {
	Datapath string `json:"datapath"`
	// LUTBits is the activation-table resolution exponent (entries per unit
	// = 2^LUTBits): swept for the fixed datapath, pinned to 10 for lut (the
	// float table pitch), 0 for exp.
	LUTBits int `json:"lutBits,omitempty"`
	Batch   int `json:"batch"`
	// Checker is the error-predictor family run alongside ("linear",
	// "tree", "ema", or "none" for unchecked).
	Checker string `json:"checker"`

	// Quality is the delivered corpus error replaying the golden corpus at
	// the package TOQ with this configuration; lower is better.
	Quality float64 `json:"quality"`
	// NsPerElem is the steady-state cost of one element (accelerator +
	// checker) at this batch size.
	NsPerElem float64 `json:"nsPerElem"`
	// ChunkNs is NsPerElem × Batch: the latency a caller pays to fill one
	// chunk, the quantity a p99 SLO bounds.
	ChunkNs float64 `json:"chunkNs"`
	// Measured is false when Quality/NsPerElem come from the surrogate
	// models rather than measurement.
	Measured bool `json:"measured"`
}

// combo identifies the batch-invariant half of a configuration.
type combo struct {
	Datapath string
	LUTBits  int
	Checker  string
}

func (p Point) combo() combo { return combo{p.Datapath, p.LUTBits, p.Checker} }

// Key names the configuration half uniquely; frontier consumers use it for
// identity and the trace layer as the span attribute.
func (p Point) Key() string {
	if p.LUTBits == 0 {
		return fmt.Sprintf("%s/b%d/%s", p.Datapath, p.Batch, p.Checker)
	}
	return fmt.Sprintf("%s/lut%d/b%d/%s", p.Datapath, p.LUTBits, p.Batch, p.Checker)
}

// Axes is the swept design space.
type Axes struct {
	// Datapaths to sweep (subset of exp/lut/fixed).
	Datapaths []string `json:"datapaths"`
	// Batches to sweep, ascending.
	Batches []int `json:"batches"`
	// LUTBits resolutions swept for the fixed datapath, ascending.
	LUTBits []int `json:"lutBits"`
	// Checkers are the predictor families to sweep.
	Checkers []string `json:"checkers"`
}

// DefaultAxes is the stock design space over the given checker families.
func DefaultAxes(checkers []string) Axes {
	return Axes{
		Datapaths: []string{DatapathExp, DatapathLUT, DatapathFixed},
		Batches:   []int{1, 8, 32, 64, 128, 256},
		LUTBits:   []int{6, 8, 10, 12},
		Checkers:  checkers,
	}
}

// Validate checks the axes are sweepable.
func (a Axes) Validate() error {
	if len(a.Datapaths) == 0 || len(a.Batches) == 0 || len(a.Checkers) == 0 {
		return fmt.Errorf("tune: axes need at least one datapath, batch and checker")
	}
	for _, d := range a.Datapaths {
		switch d {
		case DatapathExp, DatapathLUT, DatapathFixed:
		default:
			return fmt.Errorf("tune: unknown datapath %q", d)
		}
		if d == DatapathFixed && len(a.LUTBits) == 0 {
			return fmt.Errorf("tune: fixed datapath needs at least one LUTBits value")
		}
	}
	for i, b := range a.Batches {
		if b < 1 || (i > 0 && b <= a.Batches[i-1]) {
			return fmt.Errorf("tune: batches must be ascending and >= 1, got %v", a.Batches)
		}
	}
	for i, b := range a.LUTBits {
		if i > 0 && b <= a.LUTBits[i-1] {
			return fmt.Errorf("tune: lutBits must be ascending, got %v", a.LUTBits)
		}
	}
	return nil
}

// lutBitsFor returns the table-resolution axis swept for a datapath: the
// full LUTBits list for fixed, the float table pitch for lut, none for exp.
func (a Axes) lutBitsFor(datapath string) []int {
	switch datapath {
	case DatapathFixed:
		return a.LUTBits
	case DatapathLUT:
		return []int{10}
	default:
		return []int{0}
	}
}

// Grid enumerates the full design space in deterministic order.
func (a Axes) Grid() []Point {
	var grid []Point
	for _, dp := range a.Datapaths {
		for _, bits := range a.lutBitsFor(dp) {
			for _, chk := range a.Checkers {
				for _, b := range a.Batches {
					grid = append(grid, Point{Datapath: dp, LUTBits: bits, Batch: b, Checker: chk})
				}
			}
		}
	}
	return grid
}

// Measurement is what a Measurer reports for one design point.
type Measurement struct {
	// Quality is the delivered corpus error at the package TOQ.
	Quality float64
	// NsPerElem is the steady-state per-element cost.
	NsPerElem float64
}

// Measurer measures one design point. Implementations: the package/bundle
// measurer in internal/tune/measure (corpus replay + wall-clock bench) and
// the synthetic models of the property tests.
type Measurer interface {
	Measure(Point) (Measurement, error)
}

// SweepConfig tunes the surrogate pass.
type SweepConfig struct {
	// Margin is the relative safety margin of the prune: a point is dropped
	// only when some other point beats its prediction by at least this
	// fraction on cost and chunk latency and is at least as good on quality
	// by the same relative margin. 0 selects DefaultMargin.
	Margin float64
	// MaxEvalFraction caps measurer calls at this fraction of the grid.
	// 0 selects DefaultMaxEvalFraction. Ignored when Exhaustive.
	MaxEvalFraction float64
	// Exhaustive measures every grid point and skips the surrogate pass —
	// the ground-truth mode the property tests compare against.
	Exhaustive bool
}

const (
	// DefaultMargin is the stock prune safety margin.
	DefaultMargin = 0.15
	// DefaultMaxEvalFraction is the stock measurement budget: half the grid,
	// the acceptance bound of the surrogate pass.
	DefaultMaxEvalFraction = 0.5
)

// SweepReport is the result of sweeping one kernel.
type SweepReport struct {
	Kernel   string `json:"kernel"`
	GridSize int    `json:"gridSize"`
	// Evaluated counts measurer calls (≤ MaxEvalFraction × GridSize unless
	// Exhaustive).
	Evaluated int `json:"evaluated"`
	// Pruned counts grid points dropped by the surrogate pass.
	Pruned int `json:"pruned"`
	// PredictedOnly counts surviving points the budget never measured; they
	// carry surrogate values (Measured=false).
	PredictedOnly int `json:"predictedOnly"`
	// Points are the surviving design points, in grid order.
	Points []Point `json:"points"`
	// Frontier is the Pareto subset of Points over (Quality, NsPerElem,
	// ChunkNs), sorted by NsPerElem ascending.
	Frontier []Point `json:"frontier"`
}

// Sweep explores the design space of one kernel. See the package comment for
// the algorithm.
func Sweep(kernel string, axes Axes, m Measurer, cfg SweepConfig) (*SweepReport, error) {
	if err := axes.Validate(); err != nil {
		return nil, err
	}
	if cfg.Margin == 0 {
		cfg.Margin = DefaultMargin
	}
	if cfg.MaxEvalFraction == 0 {
		cfg.MaxEvalFraction = DefaultMaxEvalFraction
	}
	if cfg.Margin < 0 || cfg.Margin >= 1 || cfg.MaxEvalFraction <= 0 || cfg.MaxEvalFraction > 1 {
		return nil, fmt.Errorf("tune: bad sweep config %+v", cfg)
	}

	grid := axes.Grid()
	rep := &SweepReport{Kernel: kernel, GridSize: len(grid)}
	measured := map[int]Measurement{} // grid index -> measurement
	measure := func(i int) error {
		if _, ok := measured[i]; ok {
			return nil
		}
		meas, err := m.Measure(grid[i])
		if err != nil {
			return fmt.Errorf("tune: measuring %s: %w", grid[i].Key(), err)
		}
		if !isFiniteMeasurement(meas) {
			return fmt.Errorf("tune: non-finite measurement for %s: %+v", grid[i].Key(), meas)
		}
		measured[i] = meas
		rep.Evaluated++
		return nil
	}

	if cfg.Exhaustive {
		for i := range grid {
			if err := measure(i); err != nil {
				return nil, err
			}
		}
		finishReport(rep, grid, measured, nil)
		return rep, nil
	}

	budget := int(cfg.MaxEvalFraction * float64(len(grid)))
	if budget < 1 {
		budget = 1
	}

	// Seed: every lutBits-endpoint combo at the batch endpoints, plus the
	// reference combo's full batch curve for the shape spline.
	seeds := seedIndices(grid, axes)
	for _, i := range seeds {
		if rep.Evaluated >= budget {
			break
		}
		if err := measure(i); err != nil {
			return nil, err
		}
	}

	// Fit surrogates and predict every unmeasured point.
	sur := fitSurrogates(grid, axes, measured)
	value := func(i int) (q, ns float64) {
		if meas, ok := measured[i]; ok {
			return meas.Quality, meas.NsPerElem
		}
		return sur.predict(grid[i])
	}

	// Prune: drop points predicted dominated by at least the margin on every
	// objective by some other point.
	pruned := make([]bool, len(grid))
	for i := range grid {
		qi, ni := value(i)
		ci := ni * float64(grid[i].Batch)
		for j := range grid {
			if i == j {
				continue
			}
			qj, nj := value(j)
			cj := nj * float64(grid[j].Batch)
			if qj <= qi*(1-cfg.Margin)+qualityFloor &&
				nj <= ni*(1-cfg.Margin) &&
				cj <= ci*(1-cfg.Margin) {
				pruned[i] = true
				rep.Pruned++
				break
			}
		}
	}

	// Spend the remaining budget on surviving unmeasured points,
	// predicted-Pareto first, then cheapest-predicted first.
	var unmeasured []int
	for i := range grid {
		if _, ok := measured[i]; !ok && !pruned[i] {
			unmeasured = append(unmeasured, i)
		}
	}
	predPareto := predictedParetoSet(grid, unmeasured, value)
	sort.SliceStable(unmeasured, func(x, y int) bool {
		i, j := unmeasured[x], unmeasured[y]
		if predPareto[i] != predPareto[j] {
			return predPareto[i]
		}
		_, ni := value(i)
		_, nj := value(j)
		if ni != nj { //rumba:allow floatcmp sort tiebreak, not a correctness comparison
			return ni < nj
		}
		return i < j
	})
	for _, i := range unmeasured {
		if rep.Evaluated >= budget {
			break
		}
		if err := measure(i); err != nil {
			return nil, err
		}
	}

	finishReport(rep, grid, measured, func(i int) (Point, bool) {
		if pruned[i] {
			return Point{}, false
		}
		p := grid[i]
		if meas, ok := measured[i]; ok {
			p.Quality, p.NsPerElem, p.Measured = meas.Quality, meas.NsPerElem, true
		} else {
			p.Quality, p.NsPerElem = sur.predict(p)
			rep.PredictedOnly++
		}
		p.ChunkNs = p.NsPerElem * float64(p.Batch)
		return p, true
	})
	return rep, nil
}

// qualityFloor is the absolute slack added to the relative quality margin so
// a zero-error point cannot be "beaten" only by floating-point dust.
const qualityFloor = 1e-12

func isFiniteMeasurement(m Measurement) bool {
	return !math.IsNaN(m.Quality) && !math.IsInf(m.Quality, 0) && m.Quality >= 0 &&
		!math.IsNaN(m.NsPerElem) && !math.IsInf(m.NsPerElem, 0) && m.NsPerElem > 0
}

// finishReport materialises Points and Frontier. build maps a grid index to
// its surviving Point; nil means "all measured, exhaustive".
func finishReport(rep *SweepReport, grid []Point, measured map[int]Measurement, build func(int) (Point, bool)) {
	for i := range grid {
		var p Point
		if build == nil {
			meas := measured[i]
			p = grid[i]
			p.Quality, p.NsPerElem, p.Measured = meas.Quality, meas.NsPerElem, true
			p.ChunkNs = p.NsPerElem * float64(p.Batch)
		} else {
			var ok bool
			if p, ok = build(i); !ok {
				continue
			}
		}
		rep.Points = append(rep.Points, p)
	}
	rep.Frontier = Pareto(rep.Points)
}

// Pareto returns the non-dominated subset of points over (Quality,
// NsPerElem, ChunkNs), weak dominance, sorted by NsPerElem ascending
// (quality descending on ties). Duplicate objective vectors keep their first
// occurrence.
func Pareto(points []Point) []Point {
	var out []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if dominates(q, p) || (j < i && equalObjectives(q, p)) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].NsPerElem != out[j].NsPerElem { //rumba:allow floatcmp sort ordering, not a correctness comparison
			return out[i].NsPerElem < out[j].NsPerElem
		}
		return out[i].Quality < out[j].Quality
	})
	return out
}

// dominates reports whether a weakly dominates b with at least one strict
// objective.
func dominates(a, b Point) bool {
	if a.Quality > b.Quality || a.NsPerElem > b.NsPerElem || a.ChunkNs > b.ChunkNs {
		return false
	}
	return a.Quality < b.Quality || a.NsPerElem < b.NsPerElem || a.ChunkNs < b.ChunkNs
}

func equalObjectives(a, b Point) bool {
	return a.Quality == b.Quality && a.NsPerElem == b.NsPerElem && a.ChunkNs == b.ChunkNs //rumba:allow floatcmp duplicate-vector dedupe
}

// predictedParetoSet marks which of the given grid indices are Pareto among
// themselves under predicted values.
func predictedParetoSet(grid []Point, idx []int, value func(int) (float64, float64)) map[int]bool {
	pts := make([]Point, len(idx))
	for k, i := range idx {
		q, ns := value(i)
		pts[k] = Point{Quality: q, NsPerElem: ns, ChunkNs: ns * float64(grid[i].Batch)}
	}
	out := make(map[int]bool, len(idx))
	for k, i := range idx {
		dominated := false
		for l := range pts {
			if l != k && dominates(pts[l], pts[k]) {
				dominated = true
				break
			}
		}
		out[i] = !dominated
	}
	return out
}

// seedIndices picks the structured seed of the surrogate pass: for each
// datapath × checker, the lutBits endpoints; each such combo at the batch
// endpoints; plus the full batch curve of the first combo (the shape
// reference). Indices are deterministic and deduplicated, in grid order.
func seedIndices(grid []Point, axes Axes) []int {
	byKey := make(map[string]int, len(grid))
	for i, p := range grid {
		byKey[p.Key()] = i
	}
	batchLo, batchHi := axes.Batches[0], axes.Batches[len(axes.Batches)-1]
	var keys []string
	addKey := func(p Point) { keys = append(keys, p.Key()) }
	first := true
	for _, dp := range axes.Datapaths {
		bitsAxis := axes.lutBitsFor(dp)
		endpoints := []int{bitsAxis[0]}
		if last := bitsAxis[len(bitsAxis)-1]; last != endpoints[0] {
			endpoints = append(endpoints, last)
		}
		for _, bits := range endpoints {
			for _, chk := range axes.Checkers {
				p := Point{Datapath: dp, LUTBits: bits, Checker: chk}
				if first {
					// Shape reference: the whole batch curve.
					for _, b := range axes.Batches {
						p.Batch = b
						addKey(p)
					}
					first = false
					continue
				}
				p.Batch = batchLo
				addKey(p)
				p.Batch = batchHi
				addKey(p)
			}
		}
	}
	seen := map[int]bool{}
	var out []int
	for _, k := range keys {
		if i, ok := byKey[k]; ok && !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
