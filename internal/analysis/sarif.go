package analysis

import "encoding/json"

// SARIF 2.1.0 output. rumba-vet -sarif emits one run containing every
// executed analyzer as a reportingDescriptor and every finding as a
// result, so CI systems (GitHub code scanning, and anything else that
// ingests SARIF) can surface rumba-vet findings without a custom parser.
//
// Only the fields consumers actually read are emitted; the structs below
// are a deliberately small subset of the schema, not a general SARIF
// library.

const (
	sarifVersion   = "2.1.0"
	sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string            `json:"id"`
	ShortDescription sarifMessage      `json:"shortDescription"`
	DefaultConfig    sarifRuleDefaults `json:"defaultConfiguration"`
}

type sarifRuleDefaults struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	// Suppressions is non-empty for findings acknowledged by a
	// //rumba:allow directive or a baseline entry; SARIF consumers hide
	// suppressed results by default but keep them auditable.
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifLevel maps a Severity onto the SARIF result level vocabulary.
func sarifLevel(s Severity) string {
	switch s {
	case SeverityError:
		return "error"
	case SeverityWarning:
		return "warning"
	default:
		return "note"
	}
}

// MarshalSARIF renders the findings as a single-run SARIF 2.1.0 log. The
// analyzers become the driver's rules (in suite order, so ruleIndex is
// stable across runs); diags are assumed already sorted and root-relative
// as Module.Run returns them.
func MarshalSARIF(analyzers []*Analyzer, diags []Diagnostic) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	index := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		index[a.Name] = i
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
			DefaultConfig:    sarifRuleDefaults{Level: sarifLevel(a.Severity)},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		res := sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: index[d.Analyzer],
			Level:     sarifLevel(d.Severity),
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       d.File,
						URIBaseID: "SRCROOT",
					},
					Region: sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		}
		if d.Suppressed {
			res.Suppressions = []sarifSuppression{{
				Kind:          "inSource",
				Justification: "//rumba:allow directive or baseline entry",
			}}
		}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "rumba-vet",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
