module rumba

go 1.22
