// Package experiments implements one harness per table and figure of the
// paper's evaluation (see the per-experiment index in DESIGN.md). The
// harnesses are shared between the rumba-bench CLI and the repository-level
// testing.B benchmarks; each returns a structured result that renders as the
// rows/series the paper reports.
package experiments

import (
	"fmt"
	"sync"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/core"
	"rumba/internal/nn"
	"rumba/internal/trainer"
)

// Sizes scales the experiment datasets. Zero values select the paper-sized
// datasets and default training budgets; tests use Reduced sizes.
type Sizes struct {
	TrainN int // kernel training-set size (<= 0: Table 1 size)
	TestN  int // kernel test-set size (<= 0: Table 1 size)
	Epochs int // NN training epochs (<= 0: trainer default)
	// Mosaic controls Figure 3.
	MosaicImages, MosaicW, MosaicH int
}

// FullSizes runs everything at the paper's scale.
func FullSizes() Sizes {
	return Sizes{MosaicImages: 800, MosaicW: 64, MosaicH: 64}
}

// ReducedSizes keeps unit/integration tests fast while exercising every code
// path.
func ReducedSizes() Sizes {
	return Sizes{TrainN: 1200, TestN: 1200, Epochs: 25, MosaicImages: 60, MosaicW: 32, MosaicH: 32}
}

// Prepared bundles everything the figure harnesses need for one benchmark:
// both trained accelerators, the trained checkers, the test dataset and the
// per-element true/predicted errors on it.
type Prepared struct {
	Spec       *bench.Spec
	RumbaAccel *accel.Accelerator
	NPUAccel   *accel.Accelerator
	Preds      trainer.PredictorSet
	Train      nn.Dataset
	Test       nn.Dataset
	// RumbaObs holds the Rumba accelerator's outputs and element errors on
	// the test set; NPUObs the unchecked NPU's.
	RumbaObs trainer.Observation
	NPUObs   trainer.Observation
	// PredErrs maps each predictor scheme to its per-element error
	// estimates over the test set (inputs order).
	PredErrs map[core.Scheme][]float64
}

// Context prepares and caches benchmark artifacts; preparing trains two
// networks and three checkers per benchmark, so every figure shares one
// Context.
type Context struct {
	Sizes Sizes

	mu       sync.Mutex
	prepared map[string]*Prepared
}

// NewContext builds a context with the given sizes.
func NewContext(s Sizes) *Context {
	return &Context{Sizes: s, prepared: make(map[string]*Prepared)}
}

// Prepare trains (or returns the cached) artifacts for one benchmark.
func (c *Context) Prepare(name string) (*Prepared, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.prepared[name]; ok {
		return p, nil
	}
	p, err := c.prepareLocked(name)
	if err != nil {
		return nil, err
	}
	c.prepared[name] = p
	return p, nil
}

// PrepareAll trains the artifacts for several benchmarks concurrently (one
// goroutine per benchmark; training is deterministic per benchmark because
// every random draw comes from named streams, so parallelism cannot change
// any number). It is a warm-up optimisation for `rumba-bench -exp all`.
func (c *Context) PrepareAll(names []string) error {
	if len(names) == 0 {
		names = bench.Names()
	}
	type result struct {
		name string
		p    *Prepared
		err  error
	}
	results := make(chan result, len(names))
	started := 0
	for _, name := range names {
		c.mu.Lock()
		_, done := c.prepared[name]
		c.mu.Unlock()
		if done {
			continue
		}
		started++
		go func(name string) {
			p, err := prepare(name, c.Sizes)
			results <- result{name: name, p: p, err: err}
		}(name)
	}
	var firstErr error
	for i := 0; i < started; i++ {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		c.mu.Lock()
		if _, dup := c.prepared[r.name]; !dup {
			c.prepared[r.name] = r.p
		}
		c.mu.Unlock()
	}
	return firstErr
}

// prepareLocked trains one benchmark while holding the context lock.
func (c *Context) prepareLocked(name string) (*Prepared, error) {
	return prepare(name, c.Sizes)
}

// prepare is the lock-free training routine shared by Prepare and
// PrepareAll.
func prepare(name string, sizes Sizes) (*Prepared, error) {
	spec, err := bench.Get(name)
	if err != nil {
		return nil, err
	}
	p := &Prepared{Spec: spec}
	p.Train = spec.GenTrain(sizes.TrainN)
	p.Test = spec.GenTest(sizes.TestN)

	cfg := trainer.DefaultAccelTrainConfig(name)
	if sizes.Epochs > 0 {
		cfg.NN.Epochs = sizes.Epochs
	}
	rumbaCfg, err := trainer.TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, p.Train, cfg)
	if err != nil {
		return nil, err
	}
	if p.RumbaAccel, err = accel.New(rumbaCfg, 0); err != nil {
		return nil, err
	}
	npuCfg, err := trainer.TrainAccelerator(spec, spec.NPUTopo, nil, p.Train, cfg)
	if err != nil {
		return nil, err
	}
	if p.NPUAccel, err = accel.New(npuCfg, 0); err != nil {
		return nil, err
	}

	trainObs := trainer.Observe(spec, p.RumbaAccel, p.Train)
	if p.Preds, err = trainer.TrainPredictors(spec, p.Train, trainObs); err != nil {
		return nil, err
	}

	p.RumbaObs = trainer.Observe(spec, p.RumbaAccel, p.Test)
	p.NPUObs = trainer.Observe(spec, p.NPUAccel, p.Test)

	p.PredErrs = map[core.Scheme][]float64{
		core.SchemeLinear: predictAll(p.Preds.Linear, p.Test.Inputs, p.RumbaObs.Approx),
		core.SchemeTree:   predictAll(p.Preds.Tree, p.Test.Inputs, p.RumbaObs.Approx),
		core.SchemeEMA:    predictAll(p.Preds.EMA, p.Test.Inputs, p.RumbaObs.Approx),
	}
	return p, nil
}

// predictAll evaluates a checker over the whole test run, in element order
// (the EMA checker is stateful).
func predictAll(p interface {
	PredictError(in, out []float64) float64
	Reset()
}, inputs, approx [][]float64) []float64 {
	p.Reset()
	out := make([]float64, len(inputs))
	for i := range inputs {
		out[i] = p.PredictError(inputs[i], approx[i])
	}
	return out
}

// Scores returns the fixing-priority scores of a scheme on the prepared
// benchmark's test set.
func (p *Prepared) Scores(s core.Scheme) []float64 {
	return core.Scores(s, p.RumbaObs.Errors, p.PredErrs[s], p.Spec.Name)
}

// TargetOutputQuality is the evaluation's quality target: 90% output quality,
// i.e. 10% output error (Section 4, "We target a 90% output quality").
const TargetOutputQuality = 0.90

// TargetError is the element-error bound implied by the quality target.
const TargetError = 1 - TargetOutputQuality

// OperatingPoint returns the scheme's 90%-TOQ operating point on the
// prepared benchmark.
func (p *Prepared) OperatingPoint(s core.Scheme) core.OperatingPoint {
	return core.FixesForTarget(p.RumbaObs.Errors, p.Scores(s), TargetError)
}

func checkBenchmarks(names []string) ([]string, error) {
	if len(names) == 0 {
		return bench.Names(), nil
	}
	for _, n := range names {
		if _, err := bench.Get(n); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
	}
	return names, nil
}
