package pkg

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/bundle"
	"rumba/internal/predictor"
	"rumba/internal/trainer"
)

// trainBundle trains a small artifact for one benchmark.
func trainBundle(t *testing.T, name string, n, epochs int) *bundle.Bundle {
	t.Helper()
	spec, err := bench.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	train := spec.GenTrain(n)
	cfg := trainer.DefaultAccelTrainConfig(name)
	cfg.NN.Epochs = epochs
	acfg, err := trainer.TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := accel.New(acfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := trainer.TrainPredictors(spec, train, trainer.Observe(spec, acc, train))
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New(spec, acfg, preds)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// fftBundle memoises one trained fft artifact for the whole test run.
var fftBundle = struct {
	once sync.Once
	b    *bundle.Bundle
}{}

func sharedBundle(t *testing.T) *bundle.Bundle {
	t.Helper()
	fftBundle.once.Do(func() { fftBundle.b = trainBundle(t, "fft", 400, 10) })
	if fftBundle.b == nil {
		t.Fatal("shared fft bundle failed to train")
	}
	return fftBundle.b
}

// buildShared builds a package from the shared fft bundle into a fresh dir.
func buildShared(t *testing.T, cfg BuildConfig) *Package {
	t.Helper()
	p, err := Build(t.TempDir(), sharedBundle(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildLoadValidateRoundTrip(t *testing.T) {
	p := buildShared(t, BuildConfig{Version: "1.2.3", Quality: QualitySpec{TOQ: 0.30}, CorpusN: 80})
	if p.Manifest.Name != "fft" || p.Manifest.Version != "1.2.3" {
		t.Fatalf("manifest identity = %s %s", p.Manifest.Name, p.Manifest.Version)
	}
	if filepath.Base(p.Dir) != "fft-1.2.3" {
		t.Fatalf("package dir = %s", p.Dir)
	}
	if len(p.Corpus.Inputs) != 80 || p.Manifest.Corpus.Elements != 80 {
		t.Fatalf("corpus size = %d (manifest %d)", len(p.Corpus.Inputs), p.Manifest.Corpus.Elements)
	}
	p2, rep, err := Validate(p.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Elements != 80 {
		t.Fatalf("replay = %+v", rep)
	}
	if rep.Checker != "tree" {
		t.Fatalf("default checker = %s", rep.Checker)
	}
	if p2.Manifest.Bundle.SHA256 != p.Manifest.Bundle.SHA256 {
		t.Fatal("checksums changed across reload")
	}
}

// TestBuildIsDeterministic: two builds of the same bundle at the same config
// must produce byte-identical packages (the corpus generator is a named
// deterministic stream, and the manifest carries no timestamps).
func TestBuildIsDeterministic(t *testing.T) {
	cfg := BuildConfig{Version: "0.0.1", Quality: QualitySpec{TOQ: 0.3}, CorpusN: 40}
	p1 := buildShared(t, cfg)
	p2 := buildShared(t, cfg)
	for _, f := range []string{ManifestFile, BundleFile, CorpusFile} {
		a, err := os.ReadFile(filepath.Join(p1.Dir, f))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(p2.Dir, f))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s differs between identical builds", f)
		}
	}
}

// TestBuildAllBenchmarks is the acceptance gate: every internal/bench spec
// must package and pass the full validation (schema, checksums, bundle
// shape, corpus replay within TOQ) at test training scale.
func TestBuildAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("trains all seven kernels")
	}
	for _, name := range bench.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b := trainBundle(t, name, 300, 8)
			p, err := Build(t.TempDir(), b, BuildConfig{
				Version: "0.0.1",
				Quality: QualitySpec{TOQ: 0.5, MaxShedRate: 0.1},
				CorpusN: 60,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, rep, err := Validate(p.Dir); err != nil {
				t.Fatalf("validate: %v (replay %+v)", err, rep)
			}
		})
	}
}

func TestManifestValidateRejects(t *testing.T) {
	good := func() Manifest {
		return Manifest{
			FormatVersion: ManifestVersion,
			Name:          "fft",
			Version:       "1.0.0",
			Kernel:        "fft",
			InDim:         1,
			OutDim:        2,
			Quality:       QualitySpec{TOQ: 0.1},
			Bundle:        FileRef{File: BundleFile, SHA256: strings.Repeat("a", 64)},
			Corpus:        CorpusRef{FileRef: FileRef{File: CorpusFile, SHA256: strings.Repeat("b", 64)}, Elements: 10},
		}
	}
	if err := (&Manifest{}).Validate(); err == nil {
		t.Fatal("zero manifest must fail")
	}
	m := good()
	if err := m.Validate(); err != nil {
		t.Fatalf("good manifest rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Manifest)
		keyword string
	}{
		{"bad version", func(m *Manifest) { m.Version = "v1" }, "MAJOR.MINOR.PATCH"},
		{"bad name", func(m *Manifest) { m.Name = "FFT bad" }, "name"},
		{"path traversal in file", func(m *Manifest) { m.Bundle.File = "../evil.json" }, "bare file name"},
		{"short checksum", func(m *Manifest) { m.Corpus.SHA256 = "abc" }, "64 hex"},
		{"toq out of range", func(m *Manifest) { m.Quality.TOQ = 1.5 }, "toq"},
		{"negative shed budget", func(m *Manifest) { m.Quality.MaxShedRate = -0.1 }, "maxShedRate"},
		{"unknown drift state", func(m *Manifest) { m.Quality.MaxDriftState = "panicking" }, "maxDriftState"},
		{"no corpus elements", func(m *Manifest) { m.Corpus.Elements = 0 }, "elements"},
		{"missing kernel", func(m *Manifest) { m.Kernel = "" }, "kernel"},
		{"bad schema dims", func(m *Manifest) { m.InDim = 0 }, "schema"},
		{"wrong format version", func(m *Manifest) { m.FormatVersion = 99 }, "formatVersion"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := good()
			tc.mutate(&m)
			err := m.Validate()
			if err == nil {
				t.Fatalf("%s: accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.keyword) {
				t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.keyword)
			}
		})
	}
}

func TestLoadRejectsTamperedFiles(t *testing.T) {
	p := buildShared(t, BuildConfig{Version: "0.0.2", Quality: QualitySpec{TOQ: 0.3}, CorpusN: 30})

	// Flip a byte in the bundle: the checksum must catch it before the
	// bundle is ever deserialised.
	path := filepath.Join(p.Dir, BundleFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(p.Dir)
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("tampered bundle: %v", err)
	}
}

func TestLoadRejectsCorpusCountMismatch(t *testing.T) {
	p := buildShared(t, BuildConfig{Version: "0.0.3", Quality: QualitySpec{TOQ: 0.3}, CorpusN: 30})

	// Drop a corpus element and re-pin the checksum, so only the manifest
	// element count disagrees.
	cpath := filepath.Join(p.Dir, CorpusFile)
	c, err := loadCorpus(cpath)
	if err != nil {
		t.Fatal(err)
	}
	c.Inputs, c.Exact = c.Inputs[:len(c.Inputs)-1], c.Exact[:len(c.Exact)-1]
	if err := saveCorpus(cpath, c); err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(p.Dir, ManifestFile)
	m := p.Manifest
	if m.Corpus.SHA256, err = fileSHA256(cpath); err != nil {
		t.Fatal(err)
	}
	mdata, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mpath, mdata, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(p.Dir)
	if err == nil || !strings.Contains(err.Error(), "corpus elements") {
		t.Fatalf("corpus count mismatch: %v", err)
	}
}

func TestValidateRejectsTOQViolation(t *testing.T) {
	// A tight TOQ alone is reachable — the tuner fires on everything and
	// recovery fixes it all. A genuine violation needs a checker that
	// never fires: a blind single-leaf tree predicting zero error ships
	// every approximate output unchecked, so the delivered error equals
	// the unchecked error, far above a 0.0001 bound.
	shared := sharedBundle(t)
	blind := *shared
	blind.Tree = &predictor.Tree{Nodes: []predictor.TreeNode{{Feature: -1, Value: 0}}}
	blind.Linear, blind.EMAHistory, blind.EMAScale = nil, 0, 0
	p, err := Build(t.TempDir(), &blind, BuildConfig{Version: "0.0.4", Quality: QualitySpec{TOQ: 0.0001}, CorpusN: 30})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := Validate(p.Dir)
	if err == nil {
		t.Fatal("unreachable TOQ must fail validation")
	}
	if !strings.Contains(err.Error(), "violates its own TOQ") {
		t.Fatalf("error %q does not explain the TOQ violation", err)
	}
	if rep == nil || rep.Pass {
		t.Fatalf("replay report = %+v", rep)
	}
}

func TestInstall(t *testing.T) {
	p := buildShared(t, BuildConfig{Version: "1.0.0", Quality: QualitySpec{TOQ: 0.3}, CorpusN: 30})
	registry := t.TempDir()
	dest, err := Install(registry, p.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(dest) != "fft-1.0.0" {
		t.Fatalf("installed as %s", dest)
	}
	if _, _, err := Validate(dest); err != nil {
		t.Fatalf("installed package fails validation: %v", err)
	}

	// Same name, different version: must be rejected with the versions in
	// the message.
	p2 := buildShared(t, BuildConfig{Version: "2.0.0", Quality: QualitySpec{TOQ: 0.3}, CorpusN: 30})
	_, err = Install(registry, p2.Dir)
	if err == nil || !strings.Contains(err.Error(), "already holds fft 1.0.0") {
		t.Fatalf("duplicate install: %v", err)
	}
}

func TestGenerateCorpusValidates(t *testing.T) {
	spec, err := bench.Get("sobel")
	if err != nil {
		t.Fatal(err)
	}
	c := GenerateCorpus(spec, 25)
	if err := c.Validate(spec); err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 25 || c.InDim != spec.InDim || c.OutDim != spec.OutDim {
		t.Fatalf("corpus shape: %d elements, %dx%d", len(c.Inputs), c.InDim, c.OutDim)
	}
	other, err := bench.Get("fft")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(other); err == nil {
		t.Fatal("corpus for sobel must not validate against fft")
	}
	c.Exact = c.Exact[:10]
	if err := c.Validate(spec); err == nil {
		t.Fatal("truncated exact outputs must fail")
	}
}
