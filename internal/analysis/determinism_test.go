package analysis

import "testing"

func TestDeterminismTable(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
		subs []string
	}{
		{
			name: "clock read in declared-pure kernel",
			src: `package p

import "time"

//rumba:pure
func kernel(in []float64) []float64 {
	_ = time.Now()
	return in
}`,
			want: 1,
			subs: []string{"reads the clock via time.Now"},
		},
		{
			name: "global rand in kernel closure via helper",
			src: `package p

import "math/rand"

func noise() float64 { return rand.Float64() }

//rumba:pure
func kernel(in []float64) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = v + noise()
	}
	return out
}`,
			want: 1,
			subs: []string{"global random source via rand.Float64"},
		},
		{
			name: "seeded local source is deterministic",
			src: `package p

import "math/rand"

//rumba:pure
func kernel(in []float64) []float64 {
	r := rand.New(rand.NewSource(42))
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = v * r.Float64()
	}
	return out
}`,
			want: 0,
		},
		{
			name: "channel receive in kernel",
			src: `package p

var ch = make(chan float64, 1)

//rumba:pure
func kernel(in []float64) []float64 {
	v := <-ch
	return []float64{v}
}`,
			want: 1,
			subs: []string{"receives from a channel"},
		},
		{
			name: "map range with order-sensitive writes",
			src: `package p

//rumba:pure
func kernel(in []float64) []float64 {
	m := map[int]float64{0: 1, 1: 2}
	out := make([]float64, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	return out
}`,
			want: 1,
			subs: []string{"ranges over a map with order-sensitive writes"},
		},
		{
			name: "map range with commutative reduction is fine",
			src: `package p

//rumba:pure
func kernel(in []float64) []float64 {
	m := map[int]float64{0: 1, 1: 2}
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	return []float64{sum}
}`,
			want: 0,
		},
		{
			name: "deterministic time constructors are allowed",
			src: `package p

import "time"

//rumba:pure
func kernel(in []float64) []float64 {
	t := time.Unix(0, int64(in[0]))
	d, _ := time.ParseDuration("1s")
	day := time.Date(2020, time.January, 1, 0, 0, 0, 0, time.UTC)
	return []float64{float64(t.UnixNano()), d.Seconds(), float64(day.Unix())}
}`,
			want: 0,
		},
		{
			name: "functions outside the kernel closure are not flagged",
			src: `package p

import "time"

func logger() int64 { return time.Now().Unix() }`,
			want: 0,
		},
		{
			name: "kernel reached through a sink field",
			src: `package p

import "time"

type spec struct {
	Exact func([]float64) []float64
}

func slow(in []float64) []float64 {
	time.Sleep(time.Millisecond)
	return in
}

var s = spec{Exact: slow}`,
			want: 1,
			subs: []string{"kernel slow", "time.Sleep"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := runFixture(t, tc.src, AnalyzerDeterminism)
			expectDiags(t, diags, "determinism", tc.want, tc.subs...)
		})
	}
}
