// Command rumba-bench regenerates the tables and figures of the Rumba paper
// (see the per-experiment index in DESIGN.md):
//
//	rumba-bench -exp all                 # everything, paper-sized
//	rumba-bench -exp fig14 -reduced      # one figure, fast datasets
//	rumba-bench -exp fig10 -benchmark sobel
//	rumba-bench -list                    # available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"rumba/internal/experiments"
)

type runner func(c *experiments.Context, benchmark string) (string, error)

// renderMode is set from the -format flag before any runner executes.
var renderMode = "text"

func tab1(t *experiments.Table, err error) (string, error) {
	return render(t, err)
}

var registry = map[string]runner{
	"table1": func(*experiments.Context, string) (string, error) {
		return render(experiments.Table1(), nil)
	},
	"table2": func(*experiments.Context, string) (string, error) {
		return render(experiments.Table2(), nil)
	},
	"fig1": func(c *experiments.Context, b string) (string, error) {
		return tab1(experiments.Fig1(c, b))
	},
	"fig2": func(c *experiments.Context, _ string) (string, error) {
		t, _, err := experiments.Fig2(c)
		return render(t, err)
	},
	"fig3": func(c *experiments.Context, _ string) (string, error) {
		t, _, err := experiments.Fig3(c)
		return render(t, err)
	},
	"fig5": func(c *experiments.Context, _ string) (string, error) {
		t, _, err := experiments.Fig5(c)
		return render(t, err)
	},
	"fig10": func(c *experiments.Context, b string) (string, error) {
		names := []string{b}
		if b == "" {
			names = allBenchmarks()
		}
		var sb strings.Builder
		for _, n := range names {
			t, _, err := experiments.Fig10(c, n)
			if err != nil {
				return "", err
			}
			if renderMode == "md" {
				sb.WriteString(t.RenderMarkdown())
			} else {
				sb.WriteString(t.Render())
			}
			sb.WriteByte('\n')
		}
		return sb.String(), nil
	},
	"fig11": func(c *experiments.Context, b string) (string, error) {
		t, _, err := experiments.Fig11(c, splitBench(b)...)
		return render(t, err)
	},
	"fig12": func(c *experiments.Context, b string) (string, error) {
		t, _, err := experiments.Fig12(c, splitBench(b)...)
		return render(t, err)
	},
	"fig13": func(c *experiments.Context, b string) (string, error) {
		t, _, err := experiments.Fig13(c, splitBench(b)...)
		return render(t, err)
	},
	"fig14": func(c *experiments.Context, b string) (string, error) {
		t, _, err := experiments.Fig14(c, splitBench(b)...)
		return render(t, err)
	},
	"fig15": func(c *experiments.Context, b string) (string, error) {
		t, _, err := experiments.Fig15(c, splitBench(b)...)
		return render(t, err)
	},
	"fig16": func(c *experiments.Context, _ string) (string, error) {
		t, _, err := experiments.Fig16(c)
		return render(t, err)
	},
	"fig17": func(c *experiments.Context, b string) (string, error) {
		t, _, err := experiments.Fig17(c, splitBench(b)...)
		return render(t, err)
	},
	"fig18": func(c *experiments.Context, b string) (string, error) {
		t, _, err := experiments.Fig18(c, b)
		return render(t, err)
	},
	"headline": func(c *experiments.Context, _ string) (string, error) {
		t, _, err := experiments.Headline(c)
		return render(t, err)
	},
	"sampling": func(c *experiments.Context, b string) (string, error) {
		return render(experiments.ExpSampling(c, b))
	},
	"margin": func(c *experiments.Context, _ string) (string, error) {
		return render(experiments.ExpMargin(c))
	},
	"ablation-placement": func(c *experiments.Context, b string) (string, error) {
		return render(experiments.AblationPlacement(c, splitBench(b)...))
	},
	"ablation-treedepth": func(c *experiments.Context, b string) (string, error) {
		return render(experiments.AblationTreeDepth(c, b))
	},
	"ablation-ema": func(c *experiments.Context, b string) (string, error) {
		return render(experiments.AblationEMAHistory(c, b))
	},
	"autoselect": func(c *experiments.Context, b string) (string, error) {
		return render(experiments.ExpAutoSelect(c, splitBench(b)...))
	},
	// "stream" renders wall-clock latency histograms, so it is not part of
	// experimentOrder: `-exp all` output stays deterministic and comparable
	// against the checked-in results.
	"stream": func(c *experiments.Context, b string) (string, error) {
		return render(experiments.ExpStream(c, b))
	},
	// "serve" load-tests the rumba-serve layer in-process; like "stream" it
	// reports wall-clock latencies, so it is excluded from -exp all.
	"serve": func(c *experiments.Context, b string) (string, error) {
		return render(experiments.ExpServe(c, b))
	},
	// "hotpath" microbenchmarks the batched datapath against its scalar
	// references and writes BENCH_hotpath.json; wall-clock like "stream"
	// and "serve", so it too stays out of -exp all.
	"hotpath": func(c *experiments.Context, b string) (string, error) {
		return render(experiments.ExpHotpath(c, b))
	},
	// "tune" runs the autotuner sweep over the trained kernels and writes
	// BENCH_tune.json; wall-clock like "hotpath", so it too stays out of
	// -exp all.
	"tune": func(c *experiments.Context, b string) (string, error) {
		return render(experiments.ExpTune(c, b))
	},
}

func render(t *experiments.Table, err error) (string, error) {
	if err != nil {
		return "", err
	}
	if renderMode == "md" {
		return t.RenderMarkdown(), nil
	}
	return t.Render(), nil
}

func splitBench(b string) []string {
	if b == "" {
		return nil
	}
	return strings.Split(b, ",")
}

func allBenchmarks() []string {
	return []string{"blackscholes", "fft", "inversek2j", "jmeint", "jpeg", "kmeans", "sobel"}
}

// experimentOrder is the presentation order for -exp all.
var experimentOrder = []string{
	"table1", "table2", "fig1", "fig2", "fig3", "fig5",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
	"fig16", "fig17", "fig18", "headline",
	"sampling", "margin", "autoselect",
	"ablation-placement", "ablation-treedepth", "ablation-ema",
}

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1..fig18, table1, table2, headline, all)")
	benchmark := flag.String("benchmark", "", "restrict to one benchmark (comma-separated list where supported)")
	reduced := flag.Bool("reduced", false, "use reduced dataset sizes (fast, for smoke runs)")
	format := flag.String("format", "text", "output format: text or md (markdown)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	compare := flag.Bool("compare", false, "compare two BENCH_*.json baselines: rumba-bench -compare old.json new.json; exits non-zero on any ns/elem regression beyond -compare-threshold")
	compareThreshold := flag.Float64("compare-threshold", experiments.DefaultCompareThresholdPct, "relative ns/elem regression (percent) that fails -compare")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "rumba-bench: -compare needs exactly two baseline files: old.json new.json")
			os.Exit(2)
		}
		res, err := experiments.CompareBenchFiles(flag.Arg(0), flag.Arg(1), *compareThreshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rumba-bench:", err)
			os.Exit(1)
		}
		if *format == "md" {
			fmt.Println(res.Table().RenderMarkdown())
		} else {
			fmt.Println(res.Table().Render())
		}
		if res.Regressions > 0 {
			os.Exit(1)
		}
		return
	}
	markdown := *format == "md"
	if *format != "text" && *format != "md" {
		fmt.Fprintf(os.Stderr, "rumba-bench: unknown format %q\n", *format)
		os.Exit(2)
	}

	if *list {
		ids := make([]string, 0, len(registry))
		for id := range registry {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return
	}

	if markdown {
		renderMode = "md"
	}
	sizes := experiments.FullSizes()
	if *reduced {
		sizes = experiments.ReducedSizes()
	}
	ctx := experiments.NewContext(sizes)

	ids := []string{*exp}
	if *exp == "all" {
		ids = experimentOrder
		// Train every benchmark's artifacts up front, in parallel.
		if err := ctx.PrepareAll(nil); err != nil {
			fmt.Fprintln(os.Stderr, "rumba-bench:", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		run, ok := registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "rumba-bench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		out, err := run(ctx, *benchmark)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rumba-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}
