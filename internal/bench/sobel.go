package bench

import (
	"math"

	"rumba/internal/imageutil"
	"rumba/internal/nn"
	"rumba/internal/quality"
)

// sobel (image processing, Table 1): the Sobel edge-detection stencil. One
// invocation consumes a 3x3 pixel neighbourhood (9 inputs) and produces the
// gradient magnitude (1 output), clamped to the pixel range.

var sobelGx = [9]float64{-1, 0, 1, -2, 0, 2, -1, 0, 1}
var sobelGy = [9]float64{-1, -2, -1, 0, 0, 0, 1, 2, 1}

//rumba:pure
func sobelExact(in []float64) []float64 {
	var gx, gy float64
	for i := 0; i < 9; i++ {
		gx += sobelGx[i] * in[i]
		gy += sobelGy[i] * in[i]
	}
	return []float64{imageutil.Clamp255(math.Sqrt(gx*gx + gy*gy))}
}

// sobelWindows extracts every pixel's 3x3 neighbourhood (with edge clamping)
// as one kernel input. maxN <= 0 keeps all pixels.
func sobelWindows(img *imageutil.Gray, maxN int) [][]float64 {
	var out [][]float64
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			w := make([]float64, 9)
			k := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					w[k] = img.At(x+dx, y+dy)
					k++
				}
			}
			out = append(out, w)
			if maxN > 0 && len(out) >= maxN {
				return out
			}
		}
	}
	return out
}

// SobelImage applies the exact Sobel kernel to a whole image; used by the
// image-pipeline example and the Figure 2 demonstration.
func SobelImage(img *imageutil.Gray) *imageutil.Gray {
	out := imageutil.NewGray(img.W, img.H)
	i := 0
	for _, w := range sobelWindows(img, 0) {
		out.Pix[i] = sobelExact(w)[0]
		i++
	}
	return out
}

// Sobel is the sobel benchmark spec. Training uses a 512x512 image subsampled
// by the trainer; the test image is a different 512x512 scene.
var Sobel = register(&Spec{
	Name:      "sobel",
	Domain:    "Image Processing",
	InDim:     9,
	OutDim:    1,
	Exact:     sobelExact,
	Metric:    quality.MeanPixelDiff,
	Scale:     255,
	RumbaTopo: nn.MustTopology("9->8->1"),
	NPUTopo:   nn.MustTopology("9->8->1"),
	TrainDesc: "512x512 pixel image",
	TestDesc:  "512x512 pixel image",
	GenTrain: func(n int) nn.Dataset {
		img := imageutil.Synthetic(512, 512, "sobel/train")
		return exactTargets(sobelExact, sobelWindows(img, n))
	},
	GenTest: func(n int) nn.Dataset {
		img := imageutil.Synthetic(512, 512, "sobel/test")
		return exactTargets(sobelExact, sobelWindows(img, n))
	},
	// 18 MACs, two squares, one sqrt, plus addressing/loads and clamping:
	// a small stencil.
	Cost: CostModel{CPUOps: 70, ApproxFraction: 0.72},
})
