package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

func TestVersionEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Options{}, synthKernel("synth", synthExec{}))
	resp, err := http.Get(hs.URL + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var v VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Service != "rumba-serve" {
		t.Errorf("service = %q", v.Service)
	}
	if v.GoVersion != runtime.Version() || v.OS != runtime.GOOS || v.Arch != runtime.GOARCH {
		t.Errorf("toolchain fields = %+v", v)
	}
}

func TestReadyzReportsEmptyRegistry(t *testing.T) {
	// A node with nothing servable must refuse readiness — the router's
	// prober keys off this.
	s, err := New(NewKernelRegistry(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer func() {
		hs.Close()
		_ = s.Shutdown(context.Background())
	}()
	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty-registry readyz = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "no kernels") {
		t.Fatalf("readyz body = %q, want the reason named", body)
	}
}

func TestReadyzReportsDraining(t *testing.T) {
	s, err := New(newTestRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	if status, body := getText(t, hs.URL+"/readyz"); status != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("pre-drain readyz = %d %q", status, body)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if status, body := getText(t, hs.URL+"/readyz"); status != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("post-drain readyz = %d %q", status, body)
	}
	// Liveness stays green through the drain: the process is healthy, just
	// not accepting tenants.
	if status, _ := getText(t, hs.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz during drain = %d", status)
	}
}

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewKernelRegistry()
	if err := reg.Add(synthKernel("synth", synthExec{})); err != nil {
		t.Fatal(err)
	}
	return reg
}

func getText(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}
