package predictor

import (
	"math"
	"testing"

	"rumba/internal/rng"
)

// makeBatch synthesises n (input, approx-output) pairs with occasional
// NaN/Inf poison so the equivalence checks cover the non-finite branches.
func makeBatch(r *rng.Stream, n, inDim, outDim int) (ins, outs [][]float64) {
	ins = make([][]float64, n)
	outs = make([][]float64, n)
	for i := range ins {
		in := make([]float64, inDim)
		out := make([]float64, outDim)
		for j := range in {
			in[j] = r.Range(-4, 4)
		}
		for j := range out {
			out[j] = r.Range(-2, 2)
		}
		switch r.Intn(17) {
		case 0:
			in[r.Intn(inDim)] = math.NaN()
		case 1:
			out[r.Intn(outDim)] = math.Inf(1)
		case 2:
			in[r.Intn(inDim)] = math.Inf(-1)
		}
		ins[i] = in
		outs[i] = out
	}
	return ins, outs
}

// assertBatchEqualsScalar checks PredictErrorBatch against fresh-state
// element-by-element PredictError calls, bit for bit. mk builds a fresh
// predictor so stateful checkers (EMA) start from the same state on both
// paths.
func assertBatchEqualsScalar(t *testing.T, name string, mk func() Predictor, ins, outs [][]float64) {
	t.Helper()
	want := make([]float64, len(ins))
	ScalarBatch(mk(), want, ins, outs)
	got := make([]float64, len(ins))
	mk().PredictErrorBatch(got, ins, outs)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d: batch %v != scalar %v", name, i, got[i], want[i])
		}
	}
}

func fitTestTree(t *testing.T, r *rng.Stream, inDim int, features []int) *Tree {
	t.Helper()
	n := 400
	ins := make([][]float64, n)
	errs := make([]float64, n)
	for i := range ins {
		in := make([]float64, inDim)
		for j := range in {
			in[j] = r.Range(-4, 4)
		}
		ins[i] = in
		errs[i] = math.Abs(in[0])*0.3 + math.Abs(in[inDim-1])*0.1 + r.Range(0, 0.05)
	}
	tree, err := FitTree(ins, errs, features, TreeConfig{})
	if err != nil {
		t.Fatalf("FitTree: %v", err)
	}
	return tree
}

func TestPredictErrorBatchEquivalence(t *testing.T) {
	r := rng.NewNamed("predictor/batch/equiv")
	const inDim, outDim = 6, 3
	cases := []struct {
		name string
		mk   func() Predictor
	}{
		{"linear/all-inputs", func() Predictor {
			return &Linear{Weights: []float64{0.3, -1.2, 0.05, 2.5, -0.7, 0.9}, Constant: 0.11}
		}},
		{"linear/projected", func() Predictor {
			// Out-of-range and negative feature indices exercise the
			// contribute-zero path; weight count exceeds the projection.
			return &Linear{Weights: []float64{0.5, -0.25, 3, 1}, Constant: -0.2, Features: []int{4, 0, 99, -1}}
		}},
		{"linear/nonfinite-weight", func() Predictor {
			return &Linear{Weights: []float64{math.Inf(1), 0.1}, Constant: 0, Features: []int{99, 1}}
		}},
		{"ema", func() Predictor { return NewEMA(16, 0.5) }},
		{"ema/unset-scale", func() Predictor { return &EMA{N: 8} }},
		{"margin", func() Predictor { return &Margin{Scale: 0.4} }},
		{"evp", func() Predictor {
			return &EVP{Model: &ValueModel{
				Weights:  [][]float64{{0.1, 0.2, 0.3, 0, 0, 0}, {1, -1, 0, 0, 0.5, 0}, {0, 0, 0, 0.7, 0, -0.2}},
				Constant: []float64{0.5, -0.5, 0},
			}, Scale: 1.5}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, n := range []int{1, 7, 64, 256} {
				ins, outs := makeBatch(r, n, inDim, outDim)
				assertBatchEqualsScalar(t, tc.name, tc.mk, ins, outs)
			}
		})
	}
}

func TestTreeBatchEquivalence(t *testing.T) {
	r := rng.NewNamed("predictor/batch/tree")
	const inDim = 6
	trees := map[string]*Tree{
		"fitted/all-inputs": fitTestTree(t, r, inDim, nil),
		"fitted/projected":  fitTestTree(t, r, inDim, []int{0, 5, 2}),
		"single-leaf":       {Nodes: []TreeNode{{Feature: -1, Value: 0.7}}},
		"out-of-range-leaf-value": {Nodes: []TreeNode{
			{Feature: 0, Thresh: 0, Left: 1, Right: 2},
			{Feature: -1, Value: -3},    // clamps to 0
			{Feature: -1, Value: 1e300}, // clamps to MaxPrediction
		}},
		"missing-feature": {Nodes: []TreeNode{
			{Feature: 99, Thresh: 0.5, Left: 1, Right: 2}, // compares as zero -> Left
			{Feature: -1, Value: 1},
			{Feature: -1, Value: 2},
		}},
		"projection-overflow": {
			Features: []int{3},
			Nodes: []TreeNode{
				{Feature: 7, Thresh: -1, Left: 1, Right: 2}, // beyond Features -> zero -> Right
				{Feature: -1, Value: 1},
				{Feature: -1, Value: 2},
			},
		},
	}
	for name, tree := range trees {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{1, 33, 128} {
				ins, outs := makeBatch(r, n, inDim, 2)
				assertBatchEqualsScalar(t, name, func() Predictor { return tree }, ins, outs)
			}
		})
	}
}

// TestTreeBatchMalformedFallback checks that trees failing flat validation
// (empty, dangling child, cycle) take the scalar fallback and still match
// the scalar walk exactly — both predict 0.
func TestTreeBatchMalformedFallback(t *testing.T) {
	r := rng.NewNamed("predictor/batch/malformed")
	malformed := map[string]*Tree{
		"empty": {},
		"dangling-child": {Nodes: []TreeNode{
			{Feature: 0, Thresh: 0, Left: 1, Right: 99},
			{Feature: -1, Value: 1},
		}},
		"negative-child": {Nodes: []TreeNode{
			{Feature: 0, Thresh: 0, Left: -5, Right: 1},
			{Feature: -1, Value: 1},
		}},
		"cycle": {Nodes: []TreeNode{
			{Feature: 0, Thresh: 0, Left: 1, Right: 1},
			{Feature: 0, Thresh: 100, Left: 0, Right: 0},
		}},
	}
	for name, tree := range malformed {
		t.Run(name, func(t *testing.T) {
			if tree.flatten().ok {
				t.Fatalf("%s: expected flatten to reject the tree", name)
			}
			ins, outs := makeBatch(r, 16, 4, 2)
			assertBatchEqualsScalar(t, name, func() Predictor { return tree }, ins, outs)
		})
	}
}

// TestForestBatchEquivalence covers the ensemble delegation.
func TestForestBatchEquivalence(t *testing.T) {
	r := rng.NewNamed("predictor/batch/forest")
	const inDim = 5
	n := 300
	ins := make([][]float64, n)
	errs := make([]float64, n)
	for i := range ins {
		in := make([]float64, inDim)
		for j := range in {
			in[j] = r.Range(-3, 3)
		}
		ins[i] = in
		errs[i] = math.Abs(in[1]) * 0.4
	}
	f, err := FitForest(ins, errs, nil, 3, TreeConfig{}, "batch-test")
	if err != nil {
		t.Fatalf("FitForest: %v", err)
	}
	bins, bouts := makeBatch(r, 64, inDim, 2)
	assertBatchEqualsScalar(t, "forest", func() Predictor { return f }, bins, bouts)
}

// TestEMABatchStateOrder checks the stateful recurrence advances identically
// whether the stream is consumed in one batch or in ragged chunks.
func TestEMABatchStateOrder(t *testing.T) {
	r := rng.NewNamed("predictor/batch/ema-order")
	ins, outs := makeBatch(r, 135, 4, 2)
	want := make([]float64, len(ins))
	ScalarBatch(NewEMA(12, 0.8), want, ins, outs)

	for _, chunk := range []int{1, 5, 64} {
		e := NewEMA(12, 0.8)
		got := make([]float64, len(ins))
		for lo := 0; lo < len(ins); lo += chunk {
			hi := lo + chunk
			if hi > len(ins) {
				hi = len(ins)
			}
			e.PredictErrorBatch(got[lo:hi], ins[lo:hi], outs[lo:hi])
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("chunk %d: element %d: %v != %v", chunk, i, got[i], want[i])
			}
		}
	}
}

// TestBatchPredictorAllocs locks in the zero-allocation property of the
// fused kernels (tree flattening is lazy, so it is warmed first).
func TestBatchPredictorAllocs(t *testing.T) {
	r := rng.NewNamed("predictor/batch/allocs")
	ins, outs := makeBatch(r, 64, 6, 2)
	dst := make([]float64, 64)

	lin := &Linear{Weights: []float64{0.3, -1.2, 0.05, 2.5, -0.7, 0.9}, Constant: 0.11}
	linProj := &Linear{Weights: []float64{0.5, -0.25}, Constant: -0.2, Features: []int{4, 0}}
	tree := fitTestTree(t, r, 6, nil)
	tree.PredictErrorBatch(dst, ins, outs) // warm the lazy flatten
	ema := NewEMA(16, 0.5)

	cases := []struct {
		name string
		p    Predictor
	}{
		{"linear", lin},
		{"linear/projected", linProj},
		{"tree", tree},
		{"ema", ema},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := testing.AllocsPerRun(50, func() {
				tc.p.PredictErrorBatch(dst, ins, outs)
			}); got != 0 {
				t.Fatalf("PredictErrorBatch allocates %v times per run, want 0", got)
			}
		})
	}
}
