// Command rumba-vet runs Rumba's static-analysis suite (internal/analysis)
// over the module: the type-aware Section 2.2 purity analysis plus the
// determinism, floatcmp, kernelsig, and concurrency analyzers that back
// the safe-re-execution guarantee.
//
//	rumba-vet ./...
//	rumba-vet -json -fail-on error internal/bench
//	rumba-vet -analyzers kernelsig,determinism ./...
//
// The whole module is always loaded (the purity fixpoint and kernel-sink
// facts are cross-package); the package arguments select which packages'
// findings are reported. Exit status: 0 when no unsuppressed finding is at
// or above -fail-on severity, 1 when there is one, 2 on usage or load
// errors. A finding is suppressed with an inline directive on (or on the
// line above) the flagged line:
//
//	//rumba:allow <analyzer>[,<analyzer>...] [reason]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rumba/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	failOn := flag.String("fail-on", "warning", "exit non-zero on findings at or above this severity (info, warning, error)")
	names := flag.String("analyzers", "", "comma-separated analyzers to run (default: all)")
	showSuppressed := flag.Bool("suppressed", false, "also print suppressed findings (text mode)")
	flag.Parse()

	sev, err := analysis.ParseSeverity(*failOn)
	if err != nil {
		fatal(err)
	}
	var analyzers []*analysis.Analyzer
	if *names != "" {
		for _, name := range strings.Split(*names, ",") {
			a, ok := analysis.AnalyzerByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown analyzer %q", name))
			}
			analyzers = append(analyzers, a)
		}
	} else {
		analyzers = analysis.Analyzers()
	}

	loader, err := analysis.SharedLoader(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fatal(err)
	}
	module := analysis.BuildModule(loader.Fset(), moduleRoot(), pkgs)

	diags := module.Run(analyzers...)
	diags = filterPackages(diags, flag.Args())

	if *jsonOut {
		out, err := analysis.MarshalJSONReport(analyzers, diags, sev)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	} else {
		for _, d := range diags {
			if d.Suppressed && !*showSuppressed {
				continue
			}
			fmt.Println(d)
		}
	}
	if n := analysis.FailCount(diags, sev); n > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "rumba-vet: %d finding(s) at or above %s\n", n, sev)
		}
		os.Exit(1)
	}
}

// moduleRoot finds the enclosing module root for relative file reporting.
func moduleRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return ""
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}

// filterPackages keeps findings whose file falls under one of the package
// patterns. "./..." (or no arguments) keeps everything; "dir" and
// "dir/..." keep that subtree.
func filterPackages(diags []analysis.Diagnostic, patterns []string) []analysis.Diagnostic {
	if len(patterns) == 0 {
		return diags
	}
	var prefixes []string
	for _, pat := range patterns {
		pat = strings.TrimSuffix(pat, "...")
		pat = strings.TrimSuffix(pat, "/")
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" || pat == "." {
			return diags
		}
		prefixes = append(prefixes, filepath.ToSlash(pat)+"/")
	}
	var out []analysis.Diagnostic
	for _, d := range diags {
		file := filepath.ToSlash(d.File)
		for _, p := range prefixes {
			if strings.HasPrefix(file, p) {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rumba-vet:", err)
	os.Exit(2)
}
