package tune

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"rumba/internal/buildinfo"
)

// The frontier artifact: what rumba-tune writes and rumba-serve loads.
//
// frontier.json is versioned (FormatVersion rejects future formats),
// checksummed (the SHA-256 of the canonical kernels payload detects
// tampering and truncation independent of the stamp) and stamped with the
// same buildinfo provenance BENCH_*.json baselines carry — cost numbers are
// per-machine, so a frontier must say which commit and hardware shape
// produced them.

// FormatVersion is the frontier.json format this build reads and writes.
const FormatVersion = 1

// FrontierFile is the conventional artifact name.
const FrontierFile = "frontier.json"

// KernelFrontier is one kernel's swept frontier plus sweep provenance.
type KernelFrontier struct {
	// Points is the Pareto frontier over (Quality, NsPerElem, ChunkNs),
	// sorted by NsPerElem ascending.
	Points []Point `json:"points"`
	// GridSize/Evaluated/Pruned/PredictedOnly record how the sweep spent
	// its budget (see SweepReport).
	GridSize      int `json:"gridSize"`
	Evaluated     int `json:"evaluated"`
	Pruned        int `json:"pruned"`
	PredictedOnly int `json:"predictedOnly,omitempty"`
}

// Stamp is the provenance header: buildinfo plus write time.
type Stamp struct {
	buildinfo.Info
	WrittenAt string `json:"written_at"`
}

// Frontier is the versioned artifact.
type Frontier struct {
	FormatVersion int                       `json:"formatVersion"`
	Stamp         Stamp                     `json:"stamp"`
	Checksum      string                    `json:"checksum"`
	Kernels       map[string]KernelFrontier `json:"kernels"`
}

// NewFrontier assembles an artifact from sweep reports, stamped and
// checksummed.
func NewFrontier(reports []*SweepReport) (*Frontier, error) {
	f := &Frontier{
		FormatVersion: FormatVersion,
		Stamp: Stamp{
			Info:      buildinfo.Resolve(),
			WrittenAt: time.Now().UTC().Format(time.RFC3339),
		},
		Kernels: map[string]KernelFrontier{},
	}
	for _, rep := range reports {
		if rep.Kernel == "" {
			return nil, fmt.Errorf("tune: sweep report without a kernel name")
		}
		if _, dup := f.Kernels[rep.Kernel]; dup {
			return nil, fmt.Errorf("tune: duplicate kernel %q in frontier", rep.Kernel)
		}
		f.Kernels[rep.Kernel] = KernelFrontier{
			Points:        append([]Point(nil), rep.Frontier...),
			GridSize:      rep.GridSize,
			Evaluated:     rep.Evaluated,
			Pruned:        rep.Pruned,
			PredictedOnly: rep.PredictedOnly,
		}
	}
	sum, err := f.kernelsChecksum()
	if err != nil {
		return nil, err
	}
	f.Checksum = sum
	return f, nil
}

// kernelsChecksum hashes the canonical JSON encoding of the kernels payload
// (encoding/json sorts map keys, so the bytes are deterministic).
func (f *Frontier) kernelsChecksum() (string, error) {
	data, err := json.Marshal(f.Kernels)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Validate checks version, checksum and point well-formedness.
func (f *Frontier) Validate() error {
	if f.FormatVersion != FormatVersion {
		return fmt.Errorf("tune: frontier format version %d, this build reads %d", f.FormatVersion, FormatVersion)
	}
	sum, err := f.kernelsChecksum()
	if err != nil {
		return err
	}
	if f.Checksum != sum {
		return fmt.Errorf("tune: frontier checksum mismatch: artifact says %s, payload hashes to %s", f.Checksum, sum)
	}
	for kernel, kf := range f.Kernels {
		if len(kf.Points) == 0 {
			return fmt.Errorf("tune: kernel %q has an empty frontier", kernel)
		}
		for i, p := range kf.Points {
			switch p.Datapath {
			case DatapathExp, DatapathLUT, DatapathFixed:
			default:
				return fmt.Errorf("tune: kernel %q point %d has unknown datapath %q", kernel, i, p.Datapath)
			}
			if p.Batch < 1 {
				return fmt.Errorf("tune: kernel %q point %d has batch %d", kernel, i, p.Batch)
			}
			if p.Checker == "" {
				return fmt.Errorf("tune: kernel %q point %d has no checker", kernel, i)
			}
			if !isFiniteMeasurement(Measurement{Quality: p.Quality, NsPerElem: p.NsPerElem}) {
				return fmt.Errorf("tune: kernel %q point %d has non-finite values", kernel, i)
			}
		}
	}
	return nil
}

// Save writes the artifact atomically (temp file + rename), like every other
// versioned baseline in this repo.
func (f *Frontier) Save(path string) error {
	if err := f.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".frontier-*.json.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// LoadFrontier reads and validates an artifact.
func LoadFrontier(path string) (*Frontier, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f Frontier
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("tune: parsing %s: %w", path, err)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("tune: %s: %w", path, err)
	}
	return &f, nil
}

// Select applies the SLA-selection rule for one tenant: among the kernel's
// frontier points whose predicted quality meets targetErr (delivered corpus
// error ≤ the tenant's TOQ target), whose predicted chunk latency meets
// sloNs (ChunkNs ≤ the kernel's p99 SLO in nanoseconds; sloNs ≤ 0 means no
// SLO) and — when checker is non-empty — whose checker family matches, it
// returns the cheapest by NsPerElem (ties: smaller batch, then frontier
// order). The returned index identifies the point within the kernel's
// frontier for the tune.selected_point gauge. ok is false when the kernel is
// absent or no point qualifies; the caller then keeps its default
// configuration.
func (f *Frontier) Select(kernel, checker string, targetErr, sloNs float64) (Point, int, bool) {
	kf, ok := f.Kernels[kernel]
	if !ok {
		return Point{}, 0, false
	}
	bestIdx := -1
	for i, p := range kf.Points {
		if p.Quality > targetErr {
			continue
		}
		if sloNs > 0 && p.ChunkNs > sloNs {
			continue
		}
		if checker != "" && p.Checker != checker {
			continue
		}
		if bestIdx < 0 {
			bestIdx = i
			continue
		}
		best := kf.Points[bestIdx]
		if p.NsPerElem < best.NsPerElem ||
			(p.NsPerElem == best.NsPerElem && p.Batch < best.Batch) { //rumba:allow floatcmp tiebreak on identical measurements
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return Point{}, 0, false
	}
	return kf.Points[bestIdx], bestIdx, true
}

// KernelNames returns the kernels present, sorted.
func (f *Frontier) KernelNames() []string {
	names := make([]string, 0, len(f.Kernels))
	for k := range f.Kernels {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
