package tensor

import (
	"math"
	"sort"
)

// Sum returns the sum of the values.
func Sum(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance, or 0 for fewer than two values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest value; it panics on an empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest value; it panics on an empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Dot returns the inner product of two equally sized vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Scale multiplies every element in place and returns the slice.
func Scale(xs []float64, k float64) []float64 {
	for i := range xs {
		xs[i] *= k
	}
	return xs
}

// AddTo accumulates src into dst element-wise.
func AddTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic("tensor: AddTo length mismatch")
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
