package exec

import "rumba/internal/trace"

// InvokeBatchTraced is InvokeBatch wrapped in an "accel.invoke" span under
// parent, recording the batch width and which path (fused batch kernel or
// per-element fallback) served it. With tracing disabled (zero parent) every
// span operation is a nil check, so the batched hot path stays
// allocation-free — the property the disabled-tracing benchmark guards.
func InvokeBatchTraced(parent trace.SpanRef, ex Executor, dst [][]float64, inputs [][]float64) {
	sp := parent.Start("accel.invoke")
	sp.SetInt("batch", int64(len(inputs)))
	if b, ok := ex.(BatchExecutor); ok {
		sp.SetStr("path", "fused")
		b.InvokeBatch(dst, inputs)
		sp.End()
		return
	}
	sp.SetStr("path", "scalar")
	for i, in := range inputs {
		dst[i] = ex.Invoke(in)
	}
	sp.End()
}
