package exec_test

import (
	"testing"

	"rumba/internal/energy"
	"rumba/internal/exec"
	"rumba/internal/trace"
)

// copyExec is a minimal BatchExecutor: output = input, batch path fills dst
// in place without allocating (capacity-reusing resize, like the NPU kernel).
type copyExec struct{ batchCalls int }

func (c *copyExec) Invoke(in []float64) []float64 {
	out := make([]float64, len(in))
	copy(out, in)
	return out
}
func (c *copyExec) CyclesPerInvocation() float64             { return 1 }
func (c *copyExec) EnergyPerInvocation(energy.Model) float64 { return 1 }
func (c *copyExec) InvokeBatch(dst [][]float64, in [][]float64) {
	c.batchCalls++
	for i, row := range in {
		if cap(dst[i]) < len(row) {
			dst[i] = make([]float64, len(row))
		}
		dst[i] = dst[i][:len(row)]
		copy(dst[i], row)
	}
}

// scalarOnly wraps copyExec exposing only the Executor methods, forcing the
// per-element fallback.
type scalarOnly struct{ inner copyExec }

func (s *scalarOnly) Invoke(in []float64) []float64            { return s.inner.Invoke(in) }
func (s *scalarOnly) CyclesPerInvocation() float64             { return 1 }
func (s *scalarOnly) EnergyPerInvocation(energy.Model) float64 { return 1 }

func batchRows(n, dim int) (dst, in [][]float64) {
	dst = make([][]float64, n)
	in = make([][]float64, n)
	for i := range in {
		row := make([]float64, dim)
		for j := range row {
			row[j] = float64(i*dim + j)
		}
		in[i] = row
		dst[i] = make([]float64, dim)
	}
	return dst, in
}

// TestInvokeBatchTracedDisabledAllocFree is the acceptance guard for
// disabled-by-default tracing: with a zero (invalid) parent span — exactly
// what core.Stream passes when the request context carries no trace — the
// traced fused path performs zero allocations per call, element count
// notwithstanding. This is the per-chunk call on the batched hot path.
func TestInvokeBatchTracedDisabledAllocFree(t *testing.T) {
	ex := &copyExec{}
	dst, in := batchRows(64, 6)
	var none trace.SpanRef
	exec.InvokeBatchTraced(none, ex, dst, in) // warm: rows sized
	if allocs := testing.AllocsPerRun(100, func() {
		exec.InvokeBatchTraced(none, ex, dst, in)
	}); allocs != 0 {
		t.Fatalf("disabled-tracing fused batch path allocated %v/op, want 0", allocs)
	}
}

// TestInvokeBatchTracedFused checks the fused path is taken, outputs match
// Invoke, and the span records the batch width and path attr.
func TestInvokeBatchTracedFused(t *testing.T) {
	tr := trace.New("t", 0)
	ex := &copyExec{}
	dst, in := batchRows(4, 3)
	exec.InvokeBatchTraced(tr.Root(), ex, dst, in)
	if ex.batchCalls != 1 {
		t.Fatalf("fused path not taken: batchCalls=%d", ex.batchCalls)
	}
	for i := range in {
		for j := range in[i] {
			if dst[i][j] != in[i][j] {
				t.Fatalf("dst[%d][%d]=%v want %v", i, j, dst[i][j], in[i][j])
			}
		}
	}
	tr.Finish()
	snap := tr.Snapshot()
	var found bool
	for _, sp := range snap.Spans {
		if sp.Name != "accel.invoke" {
			continue
		}
		found = true
		if sp.Attrs["batch"] != int64(4) || sp.Attrs["path"] != "fused" {
			t.Fatalf("span attrs = %v", sp.Attrs)
		}
		if sp.End == 0 {
			t.Fatal("span not ended")
		}
	}
	if !found {
		t.Fatal("no accel.invoke span recorded")
	}
}

// TestInvokeBatchTracedScalarFallback drives an Executor without a batch
// entry point and checks the per-element fallback plus the "scalar" path attr.
func TestInvokeBatchTracedScalarFallback(t *testing.T) {
	tr := trace.New("t", 0)
	ex := &scalarOnly{}
	dst, in := batchRows(3, 2)
	exec.InvokeBatchTraced(tr.Root(), ex, dst, in)
	for i := range in {
		for j := range in[i] {
			if dst[i][j] != in[i][j] {
				t.Fatalf("dst[%d][%d]=%v want %v", i, j, dst[i][j], in[i][j])
			}
		}
	}
	tr.Finish()
	for _, sp := range tr.Snapshot().Spans {
		if sp.Name == "accel.invoke" {
			if sp.Attrs["path"] != "scalar" || sp.Attrs["batch"] != int64(3) {
				t.Fatalf("span attrs = %v", sp.Attrs)
			}
			return
		}
	}
	t.Fatal("no accel.invoke span recorded")
}
