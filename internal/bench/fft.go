package bench

import (
	"math"

	"rumba/internal/nn"
	"rumba/internal/quality"
	"rumba/internal/rng"
)

// fft (signal processing, Table 1) approximates the twiddle-factor kernel of
// a radix-2 FFT: given a normalised butterfly angle x in [0, 1), compute the
// first-quadrant complex exponential (cos(pi/2*x), sin(pi/2*x)); symmetry
// folds every other quadrant onto this one, which is how real FFT
// implementations index their twiddle tables. This is the code region the
// NPU work offloads for its fft benchmark (1 input, 2 outputs).
//rumba:pure
func fftTwiddleExact(in []float64) []float64 {
	angle := 0.5 * math.Pi * in[0]
	s, c := math.Sincos(angle)
	return []float64{c, s}
}

func fftInputs(n int, stream string) [][]float64 {
	r := rng.NewNamed(stream)
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{r.Float64()} // "5K random fp numbers"
	}
	return out
}

// FFT is the fft benchmark spec. The Rumba topology (1->1->2) is far smaller
// than the unchecked NPU's (1->4->4->2): Rumba's detection/recovery safety
// net absorbs the extra approximation error of the cheaper network.
var FFT = register(&Spec{
	Name:      "fft",
	Domain:    "Signal Processing",
	InDim:     1,
	OutDim:    2,
	Exact:     fftTwiddleExact,
	Metric:    quality.MeanRelativeError,
	Scale:     1, // unit-circle outputs; floors the relative error near zero crossings
	RumbaTopo: nn.MustTopology("1->1->2"),
	NPUTopo:   nn.MustTopology("1->4->4->2"),
	TrainDesc: "5K random fp numbers",
	TestDesc:  "5K random fp numbers",
	GenTrain: func(n int) nn.Dataset {
		return exactTargets(fftTwiddleExact, fftInputs(sizeOr(n, 5000), "bench/fft/train"))
	},
	GenTest: func(n int) nn.Dataset {
		return exactTargets(fftTwiddleExact, fftInputs(sizeOr(n, 5000), "bench/fft/test"))
	},
	// One sincos call plus butterfly arithmetic.
	Cost: CostModel{CPUOps: 80, ApproxFraction: 0.80},
})
