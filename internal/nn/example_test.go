package nn_test

import (
	"fmt"

	"rumba/internal/nn"
	"rumba/internal/rng"
)

// ExampleParseTopology parses the paper's topology notation.
func ExampleParseTopology() {
	topo, err := nn.ParseTopology("6->8->4->1")
	if err != nil {
		panic(err)
	}
	fmt.Println("inputs:", topo.Inputs())
	fmt.Println("hidden layers:", topo.HiddenLayers())
	fmt.Println("MACs per inference:", topo.MACs())
	// Output:
	// inputs: 6
	// hidden layers: 2
	// MACs per inference: 84
}

// ExampleNetwork_Train fits a tiny network to a linear function.
func ExampleNetwork_Train() {
	net := nn.New(nn.MustTopology("1->4->1"), nn.Sigmoid, nn.Linear, rng.New(1))
	d := nn.Dataset{}
	for i := 0; i < 64; i++ {
		x := float64(i) / 64
		d.Inputs = append(d.Inputs, []float64{x})
		d.Targets = append(d.Targets, []float64{0.5 * x})
	}
	mse, err := net.Train(d, nn.TrainConfig{Epochs: 200, LearningRate: 0.2, Momentum: 0.9, BatchSize: 8, Seed: "ex"})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", mse < 1e-3)
	// Output:
	// converged: true
}

// ExampleFixedFormat_Quantize shows the fixed-point datapath's rounding.
func ExampleFixedFormat_Quantize() {
	f := nn.FixedFormat{IntBits: 4, FracBits: 2} // resolution 0.25
	fmt.Println(f.Quantize(0.6), f.Quantize(-1.9), f.Quantize(100))
	// Output:
	// 0.5 -2 15.75
}
