package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/bundle"
	"rumba/internal/pkg"
	"rumba/internal/pkg/conformance"
	"rumba/internal/server"
	"rumba/internal/trainer"
)

// clusterInvoke POSTs one invoke through the router.
func clusterInvoke(t *testing.T, url string, req server.InvokeRequest) (int, server.InvokeResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/invoke", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	node := resp.Header.Get("X-Rumba-Node")
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, server.InvokeResponse{}, node
	}
	var out server.InvokeResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatalf("decode invoke reply %q: %v", payload, err)
	}
	return resp.StatusCode, out, node
}

// tripleBatch builds n synthetic {value, spare, score} inputs.
func tripleBatch(n int, score float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{float64(i), 0, score}
	}
	return out
}

// tenantThreshold reads a tenant's current tuner threshold from its exported
// state, plus the node that answered.
func tenantThreshold(t *testing.T, routerURL, tenant string) (float64, string) {
	t.Helper()
	resp, err := http.Get(routerURL + "/v1/tenants/" + tenant + "/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("state GET = %d: %s", resp.StatusCode, payload)
	}
	var state struct {
		States []struct {
			Kernel string `json:"kernel"`
			Tuner  *struct {
				Threshold float64 `json:"threshold"`
			} `json:"tuner"`
		} `json:"states"`
	}
	if err := json.Unmarshal(payload, &state); err != nil {
		t.Fatal(err)
	}
	if len(state.States) != 1 || state.States[0].Tuner == nil {
		t.Fatalf("unexpected state shape: %s", payload)
	}
	return state.States[0].Tuner.Threshold, resp.Header.Get("X-Rumba-Node")
}

// waitForState polls until the named node reaches the wanted probe state.
func waitForState(t *testing.T, rt *Router, node string, want NodeState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rt.Membership().State(node) == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("node %s never reached %v (state %v)", node, want, rt.Membership().State(node))
}

func TestClusterKillNodeLosesNoTenant(t *testing.T) {
	h, err := NewHarness(HarnessOptions{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Spread tenants across the cluster and verify placement: each lands on
	// its ring owner, and repeat requests stick.
	tenants := make([]string, 9)
	for i := range tenants {
		tenants[i] = fmt.Sprintf("tenant-%d", i)
		status, _, node := clusterInvoke(t, h.URL(), server.InvokeRequest{
			Tenant: tenants[i], Kernel: "synth", Inputs: tripleBatch(4, 0),
		})
		if status != http.StatusOK {
			t.Fatalf("invoke %s = %d", tenants[i], status)
		}
		if want := h.Router.Ring().Owner(tenants[i]); node != want {
			t.Fatalf("tenant %s served by %s, want ring owner %s", tenants[i], node, want)
		}
	}

	// Kill the node owning tenant-0 (real crash: listener closed).
	victim := h.Router.Ring().Owner("tenant-0")
	if err := h.Kill(victim); err != nil {
		t.Fatal(err)
	}
	waitForState(t, h.Router, victim, NodeDown)

	// Every tenant still answers: survivors keep their state and their node;
	// the victim's tenants fail over to the next replica in ring order.
	for _, tenant := range tenants {
		status, _, node := clusterInvoke(t, h.URL(), server.InvokeRequest{
			Tenant: tenant, Kernel: "synth", Inputs: tripleBatch(4, 0),
		})
		if status != http.StatusOK {
			t.Fatalf("post-kill invoke %s = %d — tenant lost", tenant, status)
		}
		if node == victim {
			t.Fatalf("tenant %s still routed to dead node %s", tenant, victim)
		}
		replicas := h.Router.Ring().Replicas(tenant, 0)
		want := replicas[0]
		if want == victim {
			want = replicas[1]
		}
		if node != want {
			t.Fatalf("tenant %s landed on %s, want deterministic failover target %s", tenant, node, want)
		}
	}
	if c := h.Router.Metrics().Counter(MetricUnroutable).Value(); c != 0 {
		t.Fatalf("unroutable = %d, want 0", c)
	}
}

// driveEnergyTenant pushes an energy-mode tenant's threshold off its seed:
// every element fires (score 0.9 over budget target 0.25), so each observed
// invocation doubles the threshold.
func driveEnergyTenant(t *testing.T, url, tenant string, rounds int) float64 {
	t.Helper()
	last := 0.0
	for i := 0; i < rounds; i++ {
		status, resp, _ := clusterInvoke(t, url, server.InvokeRequest{
			Tenant: tenant, Kernel: "synth", Inputs: tripleBatch(8, 0.9),
			Mode: "energy", Target: 0.25,
		})
		if status != http.StatusOK {
			t.Fatalf("drive round %d = %d", i, status)
		}
		last = resp.Threshold
	}
	return last
}

func TestClusterRebalancePreservesTunerAndDriftState(t *testing.T) {
	h, err := NewHarness(HarnessOptions{
		Nodes: 3,
		// Small invocation size: the tuner observes every 8-element batch.
		ServerOptions: func(int) server.Options { return server.Options{InvocationSize: 8} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Adapt "acme" away from its seed threshold, then pull its drift monitor
	// through some windows: low-score elements ship approximate while the
	// raised threshold exceeds the drift target, breaching windows.
	driveEnergyTenant(t, h.URL(), "acme", 4)
	for i := 0; i < 3; i++ {
		if status, _, _ := clusterInvoke(t, h.URL(), server.InvokeRequest{
			Tenant: "acme", Kernel: "synth", Inputs: tripleBatch(8, 0.15),
		}); status != http.StatusOK {
			t.Fatalf("drift round = %d", status)
		}
	}

	before, oldOwner := tenantThreshold(t, h.URL(), "acme")
	if before == 0.1 {
		t.Fatal("threshold never moved off the seed; the handoff equality check would be vacuous")
	}
	healthBefore := tenantHealth(t, h.URL(), "acme")

	// Planned removal of the owner: the rebalance must carry the trajectory
	// to the new owner, not restart it.
	report, err := h.Router.RemoveNode(context.Background(), oldOwner)
	if err != nil {
		t.Fatal(err)
	}
	var moved *Move
	for i := range report.Moves {
		if report.Moves[i].Tenant == "acme" {
			moved = &report.Moves[i]
		}
	}
	if moved == nil || moved.Err != "" {
		t.Fatalf("no clean move for acme in %+v", report)
	}
	if moved.From != oldOwner || moved.Report == nil || moved.Report.Imported != 1 {
		t.Fatalf("move = %+v / report %+v", moved, moved.Report)
	}
	if report.Errors != 0 {
		t.Fatalf("rebalance errors: %+v", report)
	}

	after, newOwner := tenantThreshold(t, h.URL(), "acme")
	if newOwner == oldOwner {
		t.Fatalf("state still served by removed node %s", oldOwner)
	}
	if newOwner != h.Router.Ring().Owner("acme") {
		t.Fatalf("state on %s, want new ring owner %s", newOwner, h.Router.Ring().Owner("acme"))
	}
	if after != before {
		t.Fatalf("restored threshold %v != pre-handoff snapshot %v", after, before)
	}

	healthAfter := tenantHealth(t, h.URL(), "acme")
	if healthAfter.Drift == nil || healthBefore.Drift == nil {
		t.Fatalf("drift info missing: before=%+v after=%+v", healthBefore, healthAfter)
	}
	if healthAfter.Drift.Windows != healthBefore.Drift.Windows ||
		healthAfter.Drift.Violations != healthBefore.Drift.Violations {
		t.Fatalf("drift history rebooted: before=%+v after=%+v", healthBefore.Drift, healthAfter.Drift)
	}

	// The trajectory keeps adapting where it left off: another all-fire
	// energy round doubles from the migrated threshold.
	if got := driveEnergyTenant(t, h.URL(), "acme", 1); got <= after {
		t.Fatalf("post-move threshold %v did not continue adapting from %v", got, after)
	}
}

func TestClusterAddNodeMovesOnlyItsShare(t *testing.T) {
	h, err := NewHarness(HarnessOptions{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	const n = 12
	for i := 0; i < n; i++ {
		if status, _, _ := clusterInvoke(t, h.URL(), server.InvokeRequest{
			Tenant: fmt.Sprintf("t-%d", i), Kernel: "synth", Inputs: tripleBatch(4, 0),
		}); status != http.StatusOK {
			t.Fatalf("seed invoke %d = %d", i, status)
		}
	}

	// Boot a genuine fourth node and grow the cluster onto it.
	extra, err := h.bootNode(3, HarnessOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h.Nodes = append(h.Nodes, extra)
	report, err := h.Router.AddNode(context.Background(), Node{Name: extra.Name, URL: extra.HTTP.URL})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 || len(report.Added) != 1 || report.Added[0] != extra.Name {
		t.Fatalf("report = %+v", report)
	}
	// Consistent hashing: every move lands on the new node, none shuffle
	// between survivors.
	for _, mv := range report.Moves {
		if mv.To != extra.Name {
			t.Fatalf("move %+v reshuffled between survivors", mv)
		}
	}

	// All tenants remain reachable on their (possibly new) owners.
	for i := 0; i < n; i++ {
		tenant := fmt.Sprintf("t-%d", i)
		status, _, node := clusterInvoke(t, h.URL(), server.InvokeRequest{
			Tenant: tenant, Kernel: "synth", Inputs: tripleBatch(4, 0),
		})
		if status != http.StatusOK {
			t.Fatalf("post-grow invoke %s = %d", tenant, status)
		}
		if want := h.Router.Ring().Owner(tenant); node != want {
			t.Fatalf("tenant %s on %s, want %s", tenant, node, want)
		}
	}
}

// tenantHealth reads /v1/tenants/{id}/health through the router.
func tenantHealth(t *testing.T, routerURL, tenant string) server.TenantInfo {
	t.Helper()
	resp, err := http.Get(routerURL + "/v1/tenants/" + tenant + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health GET = %d: %s", resp.StatusCode, payload)
	}
	var health server.TenantHealth
	if err := json.Unmarshal(payload, &health); err != nil {
		t.Fatal(err)
	}
	if len(health.Kernels) != 1 {
		t.Fatalf("tenant %s health lists %d kernels: %s", tenant, len(health.Kernels), payload)
	}
	return health.Kernels[0]
}

// fftBundle memoises one small trained fft artifact for the whole package
// run (the same economy conformance_test.go uses).
var fftBundle = struct {
	once sync.Once
	b    *bundle.Bundle
}{}

func sharedBundle(t *testing.T) *bundle.Bundle {
	t.Helper()
	fftBundle.once.Do(func() {
		spec, err := bench.Get("fft")
		if err != nil {
			return
		}
		train := spec.GenTrain(400)
		cfg := trainer.DefaultAccelTrainConfig("fft")
		cfg.NN.Epochs = 10
		acfg, err := trainer.TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train, cfg)
		if err != nil {
			return
		}
		acc, err := accel.New(acfg, 0)
		if err != nil {
			return
		}
		preds, err := trainer.TrainPredictors(spec, train, trainer.Observe(spec, acc, train))
		if err != nil {
			return
		}
		fftBundle.b, _ = bundle.New(spec, acfg, preds)
	})
	if fftBundle.b == nil {
		t.Fatal("shared fft bundle failed to train")
	}
	return fftBundle.b
}

func TestClusterConformanceRound(t *testing.T) {
	p, err := pkg.Build(t.TempDir(), sharedBundle(t),
		pkg.BuildConfig{Quality: pkg.QualitySpec{TOQ: 0.5}, CorpusN: 60})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(HarnessOptions{
		Nodes: 3,
		Registry: func(int) (*server.Registry, error) {
			reg := server.NewKernelRegistry()
			if _, err := reg.LoadBundleFile(filepath.Join(p.Dir, pkg.BundleFile)); err != nil {
				return nil, err
			}
			return reg, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// The PR 7 conformance contract, enforced through the cluster's front
	// door: delivered error within TOQ, client-observed p99 in SLO, shed
	// rate in budget, drift monitors clean — with every request taking the
	// extra router hop and tenants sharded across three real nodes.
	rep, err := conformance.Run(conformance.Config{
		Package: p, Shape: conformance.ShapeMixed,
		Requests: 12, Batch: 8, Lanes: 3,
		BaseURL: h.URL(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors through the router, first: %s", rep.Errors, rep.FirstError)
	}
	if !rep.Pass {
		t.Fatalf("cluster conformance failed: %s", rep.Summary())
	}

	// Same contract while a node dies mid-cluster: kill one and rerun.
	if err := h.Kill(h.Nodes[1].Name); err != nil {
		t.Fatal(err)
	}
	waitForState(t, h.Router, h.Nodes[1].Name, NodeDown)
	rep, err = conformance.Run(conformance.Config{
		Package: p, Shape: conformance.ShapeSteady,
		Requests: 8, Batch: 6, Lanes: 2,
		BaseURL: h.URL(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || !rep.Pass {
		t.Fatalf("degraded-cluster conformance failed (%d errors, first %q): %s",
			rep.Errors, rep.FirstError, rep.Summary())
	}
}

// TestClusterDriftSurvivesKillAndRebalance is the CI smoke scenario: a
// violating tenant's drift verdicts survive a planned drain of their node.
func TestClusterDriftStateSurvivesPlannedDrain(t *testing.T) {
	h, err := NewHarness(HarnessOptions{
		Nodes: 3,
		// Tight drift windows so a short test closes several of them.
		ServerOptions: func(int) server.Options {
			return server.Options{InvocationSize: 8, Drift: server.DriftConfig{Window: 4, K: 2, N: 3}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	driveEnergyTenant(t, h.URL(), "drifty", 4)
	for i := 0; i < 4; i++ {
		clusterInvoke(t, h.URL(), server.InvokeRequest{
			Tenant: "drifty", Kernel: "synth", Inputs: tripleBatch(8, 0.15),
		})
	}
	before := tenantHealth(t, h.URL(), "drifty")
	if before.Drift == nil || before.Drift.Windows == 0 {
		t.Fatalf("drift monitor never accumulated windows: %+v", before)
	}

	owner := h.Router.Ring().Owner("drifty")
	if _, err := h.Router.RemoveNode(context.Background(), owner); err != nil {
		t.Fatal(err)
	}
	after := tenantHealth(t, h.URL(), "drifty")
	if after.Drift == nil || after.Drift.Windows != before.Drift.Windows ||
		after.Drift.State != before.Drift.State {
		t.Fatalf("drift state lost in drain: before=%+v after=%+v", before.Drift, after.Drift)
	}
}
