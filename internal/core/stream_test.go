package core

import (
	"math"
	"testing"
)

func feedInputs(inputs [][]float64) <-chan []float64 {
	ch := make(chan []float64)
	go func() {
		defer close(ch)
		for _, in := range inputs {
			ch <- in
		}
	}()
	return ch
}

func TestStreamDeliversEverythingInOrder(t *testing.T) {
	spec, acc, ps, test := buildRuntime(t, "fft", 500)
	tuner, _ := NewTuner(ModeTOQ, 0.10)
	st, err := NewStream(Config{Spec: spec, Accel: acc, Checker: ps.Tree, Tuner: tuner}, 2)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := EvaluateStream(st.Process(feedInputs(test.Inputs)), test.Targets, spec.Metric, spec.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Elements != test.Len() {
		t.Fatalf("delivered %d of %d elements", stats.Elements, test.Len())
	}
}

func TestStreamFixedElementsAreExact(t *testing.T) {
	spec, acc, ps, test := buildRuntime(t, "inversek2j", 600)
	tuner, _ := NewTuner(ModeTOQ, 0.10)
	st, err := NewStream(Config{Spec: spec, Accel: acc, Checker: ps.Tree, Tuner: tuner}, 3)
	if err != nil {
		t.Fatal(err)
	}
	fixed := 0
	for r := range st.Process(feedInputs(test.Inputs)) {
		if r.Fixed {
			fixed++
			exact := spec.Exact(test.Inputs[r.Index])
			for j := range exact {
				if math.Abs(exact[j]-r.Output[j]) > 1e-12 {
					t.Fatalf("fixed element %d not exact: %v vs %v", r.Index, r.Output, exact)
				}
			}
		}
	}
	if fixed == 0 {
		t.Fatal("expected the checker to fire at least once")
	}
}

func TestStreamUncheckedNeverFixes(t *testing.T) {
	spec, acc, _, test := buildRuntime(t, "fft", 300)
	st, err := NewStream(Config{Spec: spec, Accel: acc}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := range st.Process(feedInputs(test.Inputs)) {
		if r.Fixed || r.PredictedError != 0 {
			t.Fatal("unchecked stream must not fix or predict")
		}
	}
}

func TestStreamMatchesBatchQuality(t *testing.T) {
	// Streaming and batch runs use the same detection rule, so the set of
	// fixed elements — and therefore the output error — must agree when
	// the tuner threshold is pinned (TOQ mode).
	spec, acc, ps, test := buildRuntime(t, "inversek2j", 800)
	tuner1, _ := NewTuner(ModeTOQ, 0.10)
	sys, err := NewSystem(Config{Spec: spec, Accel: acc, Checker: ps.Linear, Tuner: tuner1})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := sys.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	tuner2, _ := NewTuner(ModeTOQ, 0.10)
	st, err := NewStream(Config{Spec: spec, Accel: acc, Checker: ps.Linear, Tuner: tuner2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := EvaluateStream(st.Process(feedInputs(test.Inputs)), test.Targets, spec.Metric, spec.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fixed != batch.Fixed {
		t.Fatalf("stream fixed %d, batch fixed %d", stats.Fixed, batch.Fixed)
	}
	if math.Abs(stats.OutputError-batch.OutputError) > 1e-9 {
		t.Fatalf("stream error %v, batch error %v", stats.OutputError, batch.OutputError)
	}
}

func TestStreamBackPressureSmallQueue(t *testing.T) {
	// A 1-slot recovery queue with an always-firing checker: the pipeline
	// must still deliver every element exactly once, in order.
	spec, acc, _, test := buildRuntime(t, "fft", 200)
	tuner, _ := NewTuner(ModeTOQ, 0)
	st, err := NewStream(Config{
		Spec: spec, Accel: acc, Checker: &constantChecker{value: 1},
		Tuner: tuner, RecoveryQueueCap: 1,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := EvaluateStream(st.Process(feedInputs(test.Inputs)), test.Targets, spec.Metric, spec.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Elements != test.Len() || stats.Fixed != test.Len() {
		t.Fatalf("delivered %d, fixed %d, want both %d", stats.Elements, stats.Fixed, test.Len())
	}
	if stats.OutputError != 0 {
		t.Fatalf("all-fixed stream must be exact, error %v", stats.OutputError)
	}
}

func TestStreamEnergyModeTunesOnline(t *testing.T) {
	spec, acc, ps, test := buildRuntime(t, "inversek2j", 2000)
	budget := 0.15
	tuner, _ := NewTuner(ModeEnergy, budget)
	st, err := NewStream(Config{
		Spec: spec, Accel: acc, Checker: ps.Tree, Tuner: tuner, InvocationSize: 200,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := EvaluateStream(st.Process(feedInputs(test.Inputs)), test.Targets, spec.Metric, spec.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(stats.Fixed) / float64(stats.Elements); frac > 2*budget {
		t.Fatalf("energy mode fixed %.1f%% against a %.0f%% budget", 100*frac, 100*budget)
	}
}

func TestEvaluateStreamRejectsShortTargets(t *testing.T) {
	results := make(chan StreamResult, 1)
	results <- StreamResult{Index: 0, Output: []float64{1}}
	close(results)
	if _, err := EvaluateStream(results, nil, 0, 0); err == nil {
		t.Fatal("expected index-beyond-targets error")
	}
}
