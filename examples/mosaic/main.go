// The mosaic case study (Section 2.1, Figure 3) end to end.
//
// The mosaic application composes a target image out of a library of small
// flower images by matching average brightness. Its first phase — computing
// each tile's average brightness — is approximated with loop perforation.
// This example runs the full application twice, exactly and perforated, and
// shows how the input-dependent perforation error (Figure 3) turns into
// visible tile mismatches in the final mosaic.
//
//	go run ./examples/mosaic -out /tmp
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rumba/internal/bench"
	"rumba/internal/imageutil"
	"rumba/internal/quality"
)

func main() {
	outDir := flag.String("out", "", "directory for exact/perforated mosaic PGM renders")
	tiles := flag.Int("tiles", 200, "flower-tile library size (the paper uses 800 images)")
	stride := flag.Int("stride", 2, "perforation stride for the brightness phase (2 = 50% perforation)")
	flag.Parse()
	if err := run(*outDir, *tiles, *stride); err != nil {
		log.Fatal(err)
	}
}

func run(outDir string, tiles, stride int) error {
	// The tile library: the Figure 3 flower set.
	library := make([]*imageutil.Gray, tiles)
	for i := range library {
		library[i] = imageutil.SyntheticFlower(32, 32, i)
	}
	target := imageutil.Synthetic(256, 192, "mosaic/target")

	exact := bench.BuildMosaic(target, library, 16, func(g *imageutil.Gray) float64 {
		return g.MeanBrightness()
	})
	approx := bench.BuildMosaic(target, library, 16, func(g *imageutil.Gray) float64 {
		return g.MeanBrightnessPerforated(stride, 0)
	})

	mismatch := bench.MosaicMismatch(exact, approx)
	diff := imageutil.MeanAbsDiff(exact.Image, approx.Image)
	psnr := quality.PSNR(exact.Image.Pix, approx.Image.Pix, 255)

	fmt.Printf("mosaic of a %dx%d target from %d flower tiles (perforation stride %d)\n",
		target.W, target.H, tiles, stride)
	fmt.Printf("  cells                  : %dx%d\n", exact.CellsX, exact.CellsY)
	fmt.Printf("  mismatched tile choices: %.1f%%\n", 100*mismatch)
	fmt.Printf("  mean pixel difference  : %.2f (%.2f%% of range)\n", diff, 100*diff/255)
	fmt.Printf("  PSNR vs exact mosaic   : %.1f dB\n", psnr)
	fmt.Println("\nthe perforated brightness index is wrong for exactly the banded tiles")
	fmt.Println("of Figure 3, so those tiles are picked (or skipped) incorrectly.")

	if outDir != "" {
		for name, g := range map[string]*imageutil.Gray{
			"mosaic_exact.pgm": exact.Image, "mosaic_perforated.pgm": approx.Image,
		} {
			path := filepath.Join(outDir, name)
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := g.WritePGM(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("  wrote %s\n", path)
		}
	}
	return nil
}
