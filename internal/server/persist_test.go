package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTunerStateSurvivesRestart is the ISSUE's integration criterion: drive a
// tenant's tuner away from its initial threshold, drain (which snapshots the
// state), start a fresh server over the same state file, and require the
// restored threshold to equal the pre-restart one — then prove the restored
// tuner is live by driving it further.
func TestTunerStateSurvivesRestart(t *testing.T) {
	state := filepath.Join(t.TempDir(), "state.json")
	kernel := func() *Kernel { return synthKernel("synth", synthExec{}) }

	// Energy mode, budget 0.5, every element fired: each observed
	// 4-element invocation doubles the threshold (ratio 2).
	allFire := InvokeRequest{Tenant: "acme", Kernel: "synth", Mode: "energy", Target: 0.5,
		Inputs: [][]float64{in(1, 5), in(2, 5), in(3, 5), in(4, 5)}}

	reg1 := NewKernelRegistry()
	if err := reg1.Add(kernel()); err != nil {
		t.Fatal(err)
	}
	s1, err := New(reg1, Options{InvocationSize: 4, StatePath: state})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := newTestHTTP(t, s1)
	status, resp, msg := invoke(t, hs1, allFire)
	if status != http.StatusOK {
		t.Fatalf("invoke: status %d (%s)", status, msg)
	}
	// The 4-element batch is exactly one invocation, observed by the stream
	// itself (4 % 4 == 0 leaves no carry): 0.10 doubles once.
	preRestart := resp.Threshold
	if preRestart != 0.20 {
		t.Fatalf("pre-restart threshold = %v, want 0.20", preRestart)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("state file not written: %v", err)
	}

	// Restart: a fresh registry and server over the same state path.
	reg2 := NewKernelRegistry()
	if err := reg2.Add(kernel()); err != nil {
		t.Fatal(err)
	}
	s2, err := New(reg2, Options{InvocationSize: 4, StatePath: state})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	if s2.Restored != 1 || s2.RestoreSkipped != 0 {
		t.Fatalf("restored=%d skipped=%d, want 1/0", s2.Restored, s2.RestoreSkipped)
	}
	tenants := s2.Tenants()
	if len(tenants) != 1 {
		t.Fatalf("tenants after restart = %+v", tenants)
	}
	got := tenants[0]
	if got.Threshold != preRestart {
		t.Fatalf("restored threshold = %v, want pre-restart %v", got.Threshold, preRestart)
	}
	if got.Mode != "Energy" || got.Tenant != "acme" || got.Kernel != "synth" || got.Checker != "score" {
		t.Fatalf("restored tenant = %+v", got)
	}
	if got.Elements != 4 || got.Fixed != 4 {
		t.Fatalf("restored lifetime stats = %d/%d, want 4/4", got.Elements, got.Fixed)
	}
	// The restore path must rebuild the drift monitor. No window closed
	// before the restart (4 elements under the default 256 window), so the
	// restored monitor is ok at the target the snapshot carried — an
	// energy-mode tuner has no TOQ error bound, so that is the manager
	// default.
	if got.Drift == nil {
		t.Fatal("restored tenant has no drift monitor")
	}
	if got.Drift.State != "ok" || got.Drift.Target != 0.10 {
		t.Fatalf("restored drift = %+v, want ok monitor at default target 0.10", got.Drift)
	}

	// The restored tuner keeps adapting from where it left off.
	hs2 := newTestHTTP(t, s2)
	status, resp, msg = invoke(t, hs2, allFire)
	if status != http.StatusOK {
		t.Fatalf("post-restart invoke: status %d (%s)", status, msg)
	}
	if resp.Threshold != 2*preRestart {
		t.Fatalf("post-restart threshold = %v, want %v (tuner still live)", resp.Threshold, 2*preRestart)
	}
}

// newTestHTTP mounts an already-built server under httptest (unlike
// newTestServer it does not own Shutdown — restart tests sequence that
// themselves).
func newTestHTTP(t *testing.T, s *Server) string {
	t.Helper()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return hs.URL
}

func TestLoadStateMissingFileIsFreshStart(t *testing.T) {
	tn := NewTenants(TunerDefaults{}, 0)
	restored, skipped, err := tn.LoadState(filepath.Join(t.TempDir(), "absent.json"), NewKernelRegistry())
	if restored != 0 || skipped != 0 || err != nil {
		t.Fatalf("missing file: %d/%d/%v, want 0/0/nil", restored, skipped, err)
	}
}

func TestLoadStateVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := os.WriteFile(path, []byte(`{"version":99,"tenants":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	tn := NewTenants(TunerDefaults{}, 0)
	if _, _, err := tn.LoadState(path, NewKernelRegistry()); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch err = %v", err)
	}
}

func TestLoadStateCorruptJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	tn := NewTenants(TunerDefaults{}, 0)
	if _, _, err := tn.LoadState(path, NewKernelRegistry()); err == nil {
		t.Fatal("corrupt JSON: want error")
	}
}

func TestLoadStateSkipsUnknownKernelAndChecker(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	blob := `{"version":1,"tenants":[
		{"tenant":"a","kernel":"gone","checker":"score","tuner":{"mode":"TOQ","threshold":0.1,"targetError":0.1,"minThreshold":0.0001,"maxThreshold":10},"elements":1,"fixed":0,"degraded":0},
		{"tenant":"b","kernel":"synth","checker":"mystery","tuner":{"mode":"TOQ","threshold":0.1,"targetError":0.1,"minThreshold":0.0001,"maxThreshold":10},"elements":1,"fixed":0,"degraded":0},
		{"tenant":"c","kernel":"synth","checker":"score","tuner":{"mode":"TOQ","threshold":0.25,"targetError":0.25,"minThreshold":0.0001,"maxThreshold":10},"elements":7,"fixed":2,"degraded":1}
	]}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := NewKernelRegistry()
	if err := reg.Add(synthKernel("synth", synthExec{})); err != nil {
		t.Fatal(err)
	}
	tn := NewTenants(TunerDefaults{}, 0)
	restored, skipped, err := tn.LoadState(path, reg)
	if err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if restored != 1 || skipped != 2 {
		t.Fatalf("restored=%d skipped=%d, want 1/2", restored, skipped)
	}
	list := tn.List()
	if len(list) != 1 || list[0].Tenant != "c" || list[0].Threshold != 0.25 ||
		list[0].Elements != 7 || list[0].Fixed != 2 || list[0].Degraded != 1 {
		t.Fatalf("restored tenant = %+v", list)
	}
}

func TestLoadStateCheckerWithoutTunerIsError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	blob := `{"version":1,"tenants":[{"tenant":"a","kernel":"synth","checker":"score"}]}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := NewKernelRegistry()
	if err := reg.Add(synthKernel("synth", synthExec{})); err != nil {
		t.Fatal(err)
	}
	tn := NewTenants(TunerDefaults{}, 0)
	if _, _, err := tn.LoadState(path, reg); err == nil || !strings.Contains(err.Error(), "no tuner") {
		t.Fatalf("checker without tuner err = %v", err)
	}
}

// TestSaveStateDeterministic pins the snapshot's byte-for-byte determinism:
// two saves of the same state produce identical files regardless of map
// iteration order.
func TestSaveStateDeterministic(t *testing.T) {
	reg := NewKernelRegistry()
	if err := reg.Add(synthKernel("synth", synthExec{})); err != nil {
		t.Fatal(err)
	}
	k, _ := reg.Get("synth")
	tn := NewTenants(TunerDefaults{}, 0)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := tn.get(TenantKey{Tenant: name, Kernel: "synth"}, k, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	if err := tn.SaveState(p1); err != nil {
		t.Fatal(err)
	}
	if err := tn.SaveState(p2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("snapshots differ:\n%s\n----\n%s", b1, b2)
	}
	if !strings.Contains(string(b1), `"tenant": "alpha"`) {
		t.Fatalf("snapshot missing tenant: %s", b1)
	}
}

// TestSaveStateCrashMidWriteLeavesSnapshotIntact is the atomicity audit: a
// writer that dies between opening its temp file and the rename must leave
// the previous snapshot byte-identical and restorable — the stale temp file
// is garbage, not corruption.
func TestSaveStateCrashMidWriteLeavesSnapshotIntact(t *testing.T) {
	reg := NewKernelRegistry()
	if err := reg.Add(synthKernel("synth", synthExec{})); err != nil {
		t.Fatal(err)
	}
	k, _ := reg.Get("synth")
	tn := NewTenants(TunerDefaults{Mode: 0, Target: 0.10}, 4)
	if _, err := tn.get(TenantKey{Tenant: "acme", Kernel: "synth"}, k, "", nil); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := tn.SaveState(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: a half-written temp file in the snapshot
	// directory, truncated mid-JSON, exactly as SaveState would leave it if
	// the process died before the rename.
	stale := filepath.Join(dir, ".rumba-state-12345.tmp")
	if err := os.WriteFile(stale, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// Restore ignores the temp file and reads the intact snapshot.
	tn2 := NewTenants(TunerDefaults{}, 4)
	restored, skipped, err := tn2.LoadState(path, reg)
	if err != nil || restored != 1 || skipped != 0 {
		t.Fatalf("LoadState after crash = %d/%d, %v", restored, skipped, err)
	}
	now, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(now) != string(good) {
		t.Fatalf("snapshot changed by crashed writer:\n%s\n----\n%s", now, good)
	}

	// The next successful save replaces the snapshot atomically; the stale
	// temp file from the crashed writer does not interfere.
	if err := tn.SaveState(path); err != nil {
		t.Fatalf("SaveState over stale temp: %v", err)
	}
	if _, _, err := tn2.LoadState(path, reg); err != nil {
		t.Fatalf("LoadState after re-save: %v", err)
	}
}

// TestDriftHistorySurvivesRestart: closed drift windows now ride the
// StatePath snapshot (they already rode the handoff path), so a violating
// tenant is still violating after a restart instead of silently resetting
// its alert.
func TestDriftHistorySurvivesRestart(t *testing.T) {
	state := filepath.Join(t.TempDir(), "state.json")
	opts := Options{InvocationSize: 8, StatePath: state,
		Drift: DriftConfig{Window: 4, K: 2, N: 3}}

	reg1 := NewKernelRegistry()
	if err := reg1.Add(synthKernel("synth", synthExec{})); err != nil {
		t.Fatal(err)
	}
	s1, err := New(reg1, opts)
	if err != nil {
		t.Fatal(err)
	}
	hs1 := newTestHTTP(t, s1)
	send := func(score float64) {
		t.Helper()
		inputs := make([][]float64, 8)
		for i := range inputs {
			inputs[i] = in(float64(i), score)
		}
		status, _, msg := invoke(t, hs1, InvokeRequest{
			Tenant: "acme", Kernel: "synth", Inputs: inputs,
			Mode: "energy", Target: 0.25,
		})
		if status != http.StatusOK {
			t.Fatalf("invoke: %d %s", status, msg)
		}
	}
	for i := 0; i < 3; i++ {
		send(0.9) // raise the threshold over the drift target
	}
	for i := 0; i < 2; i++ {
		send(0.15) // breach: approximate deliveries above the 0.10 target
	}
	pre := s1.Tenants()[0].Drift
	if pre == nil || pre.State != "violating" {
		t.Fatalf("pre-restart drift = %+v, want violating", pre)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	reg2 := NewKernelRegistry()
	if err := reg2.Add(synthKernel("synth", synthExec{})); err != nil {
		t.Fatal(err)
	}
	s2, err := New(reg2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	post := s2.Tenants()[0].Drift
	if post == nil || post.State != "violating" ||
		post.Windows != pre.Windows || post.Violations != pre.Violations {
		t.Fatalf("post-restart drift = %+v, want %+v", post, pre)
	}
}
