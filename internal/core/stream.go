package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rumba/internal/obs"
	"rumba/internal/quality"
)

// This file is the deployment-shaped variant of the runtime. System.Run is
// the evaluation harness: it measures true errors against known exact
// targets. Stream is what a real application embeds: inputs arrive one at a
// time, the exact result of an element is unknown unless the recovery module
// actually computes it, and recovery runs on its own goroutines concurrently
// with detection — the software analogue of the Figure 8 overlap.
//
// Production hardening semantics:
//
//   - Cancellation: Process takes a context.Context. Cancelling it tears
//     down detection, the recovery pool and the merger with no goroutine or
//     element leak; the result channel is closed (possibly early).
//   - Degradation: a recovery job whose kernel panics or overruns
//     Config.RecoveryDeadline cannot be fixed, but it must not wedge the
//     in-order merger either. The approximate output is committed with the
//     Degraded flag — quality degrades for that element, the stream lives.
//   - Back-pressure: at most Config.MaxInFlight elements are admitted but
//     not yet delivered, so the merger's reorder buffer is bounded even when
//     recovery is much slower than detection.

// Metric names the streaming runtime registers in its obs.Registry. They are
// exported so tests and dashboards reference one set of spellings.
const (
	// MetricElementsIn counts elements accepted by the detection stage.
	MetricElementsIn = "stream.elements_in"
	// MetricElementsOut counts elements delivered on the result channel.
	MetricElementsOut = "stream.elements_out"
	// MetricFires counts detector firings (elements sent to recovery).
	MetricFires = "stream.fires"
	// MetricFixes counts elements exactly re-executed and committed.
	MetricFixes = "stream.fixes"
	// MetricDegraded counts recovery jobs that panicked or overran the
	// deadline and committed the approximate output instead.
	MetricDegraded = "stream.degraded"
	// MetricInvocations counts tuner invocation boundaries.
	MetricInvocations = "stream.invocations"
	// MetricQueueDepth gauges the recovery queue occupancy.
	MetricQueueDepth = "stream.recovery_queue_depth"
	// MetricPending gauges the merger's reorder-buffer size.
	MetricPending = "stream.merger_pending"
	// MetricInFlight gauges elements admitted but not yet delivered.
	MetricInFlight = "stream.inflight"
	// MetricDetectNs is the per-element detection latency (accelerator
	// invoke + checker) in nanoseconds.
	MetricDetectNs = "stream.latency.detect_ns"
	// MetricRecoverNs is the per-job recovery latency in nanoseconds.
	MetricRecoverNs = "stream.latency.recover_ns"
	// MetricThreshold gauges the tuner threshold trajectory.
	MetricThreshold = "tuner.threshold"
)

// ErrStreamReused is returned by Process when it is called a second time on
// the same Stream: the detection/tuner state is single-shot by design.
var ErrStreamReused = errors.New("core: Stream.Process may be called once per Stream; build a new Stream per run")

// StreamResult is one merged output element.
type StreamResult struct {
	// Index is the element's position in the input stream; results are
	// delivered in index order (the output merger reorders).
	Index int
	// Output is the committed value: the accelerator's output, or the
	// exact re-execution when the check fired.
	Output []float64
	// Fixed reports whether the recovery module replaced the element.
	Fixed bool
	// Degraded reports that the detector fired but recovery could not
	// complete (kernel panic or deadline overrun); Output is the
	// approximate result, committed so the stream keeps its ordering
	// guarantee instead of wedging.
	Degraded bool
	// PredictedError is the checker's estimate for the element (zero when
	// running unchecked).
	PredictedError float64
}

// Stream is a running online Rumba instance.
type Stream struct {
	sys     *System
	workers int
	started atomic.Bool

	// Resolved metric handles; hot paths must not take the registry lock.
	mIn, mOut, mFires, mFixes, mDegraded, mInvocations *obs.Counter
	gQueue, gPending, gInFlight, gThreshold            *obs.Gauge
	hDetect, hRecover                                  *obs.Histogram
}

// NewStream wraps a System for streaming use. workers is the number of
// recovery goroutines (the paper has one host CPU, so 1 reproduces the
// paper's setup; more workers model a multicore host). workers <= 0 selects
// 1.
func NewStream(cfg Config, workers int) (*Stream, error) {
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = 1
	}
	st := &Stream{sys: sys, workers: workers}
	r := sys.obs
	st.mIn = r.Counter(MetricElementsIn)
	st.mOut = r.Counter(MetricElementsOut)
	st.mFires = r.Counter(MetricFires)
	st.mFixes = r.Counter(MetricFixes)
	st.mDegraded = r.Counter(MetricDegraded)
	st.mInvocations = r.Counter(MetricInvocations)
	st.gQueue = r.Gauge(MetricQueueDepth)
	st.gPending = r.Gauge(MetricPending)
	st.gInFlight = r.Gauge(MetricInFlight)
	st.gThreshold = r.Gauge(MetricThreshold)
	st.hDetect = r.Histogram(MetricDetectNs)
	st.hRecover = r.Histogram(MetricRecoverNs)
	return st, nil
}

// Metrics returns the stream's observability registry (the one supplied in
// Config.Metrics, or the private registry allocated for it).
func (st *Stream) Metrics() *obs.Registry { return st.sys.obs }

// recoveryJob travels from the detection stage to the recovery workers. It
// carries the approximate output so a failed recovery can still commit
// something.
type recoveryJob struct {
	index  int
	input  []float64
	approx []float64
	pred   float64
}

// mergeItem travels from both stages to the output merger.
type mergeItem struct {
	res StreamResult
}

// Process consumes the input channel and returns the merged, in-order
// result channel. The result channel is closed after the final input's
// element is delivered, or as soon as ctx is cancelled (whichever comes
// first); on cancellation every pipeline goroutine exits and undelivered
// elements are dropped. Process returns ErrStreamReused when called a
// second time — the per-run detection and tuner state is single-shot.
func (st *Stream) Process(ctx context.Context, inputs <-chan []float64) (<-chan StreamResult, error) {
	if !st.started.CompareAndSwap(false, true) {
		return nil, ErrStreamReused
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan StreamResult, 64)
	// The recovery queue: bounded, so a slow CPU back-pressures detection
	// exactly like the hardware queue of Figure 4 would.
	recovery := make(chan recoveryJob, st.sys.cfg.RecoveryQueueCap)
	merged := make(chan mergeItem, 64)
	// tokens is the in-flight window: detection acquires a slot per
	// element before emitting it anywhere, the merger releases the slot on
	// delivery. The merger's reorder buffer therefore never holds more
	// than MaxInFlight elements, no matter how slow recovery runs.
	tokens := make(chan struct{}, st.sys.cfg.MaxInFlight)

	var wg sync.WaitGroup

	// Recovery workers: pure kernels re-execute without side effects, so
	// any number of workers may run concurrently. Each job is isolated:
	// panics and deadline overruns degrade the element instead of killing
	// the worker.
	wg.Add(st.workers)
	for w := 0; w < st.workers; w++ {
		go func() {
			defer wg.Done()
			for {
				var job recoveryJob
				select {
				case <-ctx.Done():
					return
				case j, ok := <-recovery:
					if !ok {
						return
					}
					job = j
				}
				st.gQueue.Add(-1)
				res := st.recoverOne(ctx, job)
				select {
				case merged <- mergeItem{res: res}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	// Detection stage: runs the accelerator and the checker, splits
	// elements between the direct path and the recovery queue, and drives
	// the online tuner at invocation boundaries.
	go func() {
		if st.sys.cfg.Checker != nil {
			st.sys.cfg.Checker.Reset()
		}
		if st.sys.cfg.Tuner != nil {
			st.gThreshold.Set(st.sys.cfg.Tuner.Threshold)
		}
		idx := 0
		invFixed := 0
		invStart := 0
		for {
			var in []float64
			select {
			case <-ctx.Done():
				return
			case v, ok := <-inputs:
				if !ok {
					// Normal end of stream: drain the pool, then
					// let the merger finish.
					close(recovery)
					wg.Wait()
					close(merged)
					return
				}
				in = v
			}
			start := time.Now()
			approx := st.sys.cfg.Accel.Invoke(in)
			var pred float64
			fire := false
			if st.sys.cfg.Checker != nil {
				pred = st.sys.cfg.Checker.PredictError(in, approx)
				fire = pred > st.sys.cfg.Tuner.Threshold
			}
			st.hDetect.Observe(float64(time.Since(start)))
			st.mIn.Inc()
			select {
			case tokens <- struct{}{}:
				st.gInFlight.Add(1)
			case <-ctx.Done():
				return
			}
			if fire {
				invFixed++
				st.mFires.Inc()
				select {
				case recovery <- recoveryJob{index: idx, input: in, approx: approx, pred: pred}:
					st.gQueue.Add(1)
				case <-ctx.Done():
					return
				}
			} else {
				select {
				case merged <- mergeItem{res: StreamResult{Index: idx, Output: approx, PredictedError: pred}}:
				case <-ctx.Done():
					return
				}
			}
			idx++
			if st.sys.cfg.Tuner != nil && idx-invStart >= st.sys.cfg.InvocationSize {
				st.sys.cfg.Tuner.Observe(InvocationStats{
					Elements:       idx - invStart,
					Fixed:          invFixed,
					CPUUtilisation: st.sys.estimateUtilisation(invFixed, idx-invStart),
				})
				st.mInvocations.Inc()
				st.gThreshold.Set(st.sys.cfg.Tuner.Threshold)
				invStart = idx
				invFixed = 0
			}
		}
	}()

	// Output merger: reorders the two paths back into stream order and
	// releases in-flight slots as elements leave the pipeline.
	go func() {
		defer close(out)
		pending := make(map[int]StreamResult)
		next := 0
		for {
			var item mergeItem
			select {
			case <-ctx.Done():
				return
			case it, ok := <-merged:
				if !ok {
					// merged is closed only after every element was
					// produced, so pending must be empty here;
					// anything left is a bug.
					if len(pending) != 0 {
						panic(fmt.Sprintf("core: output merger lost ordering, %d stranded elements", len(pending)))
					}
					return
				}
				item = it
			}
			pending[item.res.Index] = item.res
			st.gPending.Set(float64(len(pending)))
			for {
				r, ok := pending[next]
				if !ok {
					break
				}
				select {
				case out <- r:
				case <-ctx.Done():
					return
				}
				delete(pending, next)
				st.mOut.Inc()
				st.gInFlight.Add(-1)
				<-tokens
				next++
			}
			st.gPending.Set(float64(len(pending)))
		}
	}()
	return out, nil
}

// recoverOne performs one recovery job with panic isolation and the
// per-job deadline. It always produces a committable result: the exact
// output (Fixed) when re-execution succeeds, the approximate output
// (Degraded) when the kernel panics, overruns Config.RecoveryDeadline, or
// the stream is cancelled mid-job.
func (st *Stream) recoverOne(ctx context.Context, job recoveryJob) StreamResult {
	start := time.Now()
	exact, ok := st.runExact(ctx, job.input)
	st.hRecover.Observe(float64(time.Since(start)))
	if !ok {
		st.mDegraded.Inc()
		return StreamResult{
			Index:          job.index,
			Output:         job.approx,
			Degraded:       true,
			PredictedError: job.pred,
		}
	}
	st.mFixes.Inc()
	return StreamResult{
		Index:          job.index,
		Output:         exact,
		Fixed:          true,
		PredictedError: job.pred,
	}
}

// runExact invokes the exact kernel with panic isolation. With a deadline
// configured the call races a timer on a helper goroutine; an overrunning
// kernel is abandoned (it holds no locks — kernels are pure — so it simply
// finishes on its own and is garbage collected).
func (st *Stream) runExact(ctx context.Context, in []float64) (out []float64, ok bool) {
	if st.sys.cfg.RecoveryDeadline <= 0 {
		return st.callExact(in)
	}
	type exactResult struct {
		out []float64
		ok  bool
	}
	done := make(chan exactResult, 1) // buffered: an abandoned call must not leak its goroutine
	go func() {
		o, k := st.callExact(in)
		done <- exactResult{out: o, ok: k}
	}()
	timer := time.NewTimer(st.sys.cfg.RecoveryDeadline)
	defer timer.Stop()
	select {
	case r := <-done:
		return r.out, r.ok
	case <-timer.C:
		return nil, false
	case <-ctx.Done():
		return nil, false
	}
}

// callExact runs the kernel, converting a panic into a degraded verdict.
func (st *Stream) callExact(in []float64) (out []float64, ok bool) {
	defer func() {
		if recover() != nil {
			out, ok = nil, false
		}
	}()
	return st.sys.cfg.Spec.Exact(in), true
}

// StreamStats summarises a finished streaming run against known targets; it
// is a test/evaluation convenience, not part of the online path.
type StreamStats struct {
	Elements int
	Fixed    int
	// Degraded counts elements whose recovery panicked or timed out and
	// whose approximate output was committed instead.
	Degraded    int
	OutputError float64
}

// EvaluateStream drains a result channel and scores it against the exact
// targets (evaluation only — the online system never sees these).
func EvaluateStream(results <-chan StreamResult, targets [][]float64, metric quality.Metric, scale float64) (StreamStats, error) {
	var st StreamStats
	var sum float64
	next := 0
	for r := range results {
		if r.Index != next {
			return st, fmt.Errorf("core: out-of-order result %d, want %d", r.Index, next)
		}
		if r.Index >= len(targets) {
			return st, fmt.Errorf("core: result index %d beyond %d targets", r.Index, len(targets))
		}
		sum += quality.ElementError(metric, targets[r.Index], r.Output, scale)
		if r.Fixed {
			st.Fixed++
		}
		if r.Degraded {
			st.Degraded++
		}
		st.Elements++
		next++
	}
	if st.Elements > 0 {
		st.OutputError = sum / float64(st.Elements)
	}
	return st, nil
}
