package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"rumba/internal/core"
	"rumba/internal/obs"
	"rumba/internal/trace"
)

// res builds one StreamResult for drift-monitor unit tests.
func res(pred float64, fixed, degraded bool) core.StreamResult {
	return core.StreamResult{PredictedError: pred, Fixed: fixed, Degraded: degraded}
}

func resObserved(pred, observed float64, fixed bool) core.StreamResult {
	r := res(pred, fixed, !fixed)
	r.Observed = true
	r.ObservedError = observed
	return r
}

func feed(d *driftMonitor, r core.StreamResult, n int) {
	batch := make([]core.StreamResult, n)
	for i := range batch {
		batch[i] = r
	}
	d.note(batch)
}

func TestDriftStateMachine(t *testing.T) {
	d := newDriftMonitor(DriftConfig{Window: 4, K: 2, N: 3}, 0.1)
	if got := d.info(); got.State != "ok" || got.Windows != 0 {
		t.Fatalf("fresh monitor: %+v", got)
	}

	// Healthy window: unfired elements predicted well under target.
	feed(d, res(0.05, false, false), 4)
	if got := d.info(); got.State != "ok" || got.Windows != 1 || got.LastEstimate != 0.05 {
		t.Fatalf("after healthy window: %+v", got)
	}

	// One violating window (degraded elements deliver their predicted
	// error): drifting, not yet violating.
	feed(d, res(0.5, false, true), 4)
	if got := d.info(); got.State != "drifting" || got.Violations != 1 || got.BreachesInLastN != 1 {
		t.Fatalf("after 1 breach: %+v", got)
	}

	// Second violating window reaches K=2 of N=3: violating.
	feed(d, res(0.5, false, true), 4)
	if got := d.info(); got.State != "violating" || got.Violations != 2 {
		t.Fatalf("after 2 breaches: %+v", got)
	}

	// One clean window is not enough to clear the alert (hysteresis):
	// the last 3 verdicts are still [breach, breach, clean].
	feed(d, res(0.0, true, false), 4)
	if got := d.info(); got.State != "violating" {
		t.Fatalf("one clean window cleared the alert: %+v", got)
	}
	// Two clean windows leave one breach in the last 3: drifting.
	feed(d, res(0.0, true, false), 4)
	if got := d.info(); got.State != "drifting" {
		t.Fatalf("after 2 clean windows: %+v", got)
	}
	// Three clean windows clear it.
	feed(d, res(0.0, true, false), 4)
	if got := d.info(); got.State != "ok" || got.Windows != 6 || got.Violations != 2 {
		t.Fatalf("after 3 clean windows: %+v", got)
	}
}

func TestDriftFixedElementsDeliverZero(t *testing.T) {
	// Every element fires and is fixed: delivered error is 0 regardless of
	// how bad the predictions were.
	d := newDriftMonitor(DriftConfig{Window: 4, K: 1, N: 1}, 0.1)
	feed(d, res(0.9, true, false), 4)
	if got := d.info(); got.State != "ok" || got.LastEstimate != 0 {
		t.Fatalf("fixed window: %+v", got)
	}
}

func TestDriftObservedCalibration(t *testing.T) {
	d := newDriftMonitor(DriftConfig{Window: 4, K: 1, N: 1}, 0.1)
	// Four re-executed elements: two true positives (observed error above
	// target), two false positives (checker fired, true error inside).
	d.note([]core.StreamResult{
		resObserved(0.5, 0.4, true),
		resObserved(0.5, 0.3, true),
		resObserved(0.5, 0.01, true),
		resObserved(0.5, 0.02, true),
	})
	got := d.info()
	if got.ObservedSamples != 4 {
		t.Fatalf("observed samples = %d, want 4", got.ObservedSamples)
	}
	if got.FalsePositiveRate != 0.5 {
		t.Fatalf("false positive rate = %v, want 0.5", got.FalsePositiveRate)
	}
	if want := (0.4 + 0.3 + 0.01 + 0.02) / 4; got.LastObserved != want {
		t.Fatalf("last observed = %v, want %v", got.LastObserved, want)
	}
}

func TestDriftConfigDefaults(t *testing.T) {
	cfg := DriftConfig{}.withDefaults()
	if cfg.Window != 256 || cfg.K != 3 || cfg.N != 5 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if c := (DriftConfig{K: 9, N: 2}).withDefaults(); c.K != 2 {
		t.Fatalf("K not clamped to N: %+v", c)
	}
	var nilMon *driftMonitor
	nilMon.note([]core.StreamResult{res(1, false, false)})
	if nilMon.info() != nil {
		t.Fatal("nil monitor not inert")
	}
}

// TestTraceEndToEnd is the tentpole acceptance path: a request served with
// tracing enabled yields a retrievable trace containing admission, stream
// chunk, accelerator invoke, merge, and recovery spans.
func TestTraceEndToEnd(t *testing.T) {
	_, hs := newTestServer(t, Options{TraceCapacity: 16, BatchSize: 4},
		synthKernel("synth", synthExec{}))

	inputs := make([][]float64, 8)
	for i := range inputs {
		score := 0.0
		if i == 3 {
			score = 0.75 // one element fires and is recovered exactly
		}
		inputs[i] = in(float64(i), score)
	}
	status, resp, _ := invoke(t, hs.URL, InvokeRequest{Tenant: "acme", Kernel: "synth", Inputs: inputs})
	if status != http.StatusOK || resp.Fixed != 1 {
		t.Fatalf("invoke: status %d fixed %d", status, resp.Fixed)
	}

	var dump trace.Dump
	getJSON(t, hs.URL+"/debug/rumba/traces", http.StatusOK, &dump)
	if len(dump.Traces) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(dump.Traces))
	}
	tr := dump.Traces[0]
	spans := map[string]int{}
	for _, sp := range tr.Spans {
		spans[sp.Name]++
	}
	for _, want := range []string{"invoke", "admission", "stream", "stream.chunk", "accel.invoke", "exec.recover", "merge.commit"} {
		if spans[want] == 0 {
			t.Fatalf("trace lacks %q span; got %v", want, spans)
		}
	}
	// 8 elements at BatchSize 4: two chunks, each with its own accelerator
	// invoke.
	if spans["stream.chunk"] != 2 || spans["accel.invoke"] != 2 {
		t.Fatalf("chunking spans = %v, want 2 chunks / 2 invokes", spans)
	}
	// Root span carries the request identity.
	root := tr.Spans[0]
	if root.Name != "invoke" || root.Attrs["tenant"] != "acme" || root.Attrs["kernel"] != "synth" {
		t.Fatalf("root span = %+v", root)
	}
	// The recovery span recorded its outcome and ground-truth sample.
	for _, sp := range tr.Spans {
		if sp.Name == "exec.recover" {
			if sp.Attrs["outcome"] != "fixed" {
				t.Fatalf("recover span = %+v", sp)
			}
			if _, ok := sp.Attrs["observed_error"]; !ok {
				t.Fatalf("recover span lacks observed_error: %+v", sp)
			}
		}
	}
}

func TestTracesDisabledByDefault(t *testing.T) {
	_, hs := newTestServer(t, Options{}, synthKernel("synth", synthExec{}))
	if status, _, _ := invoke(t, hs.URL, InvokeRequest{Kernel: "synth", Inputs: [][]float64{in(1, 0)}}); status != 200 {
		t.Fatalf("invoke failed")
	}
	resp, err := http.Get(hs.URL + "/debug/rumba/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("traces endpoint with tracing off: status %d, want 404", resp.StatusCode)
	}
}

// TestDriftViolationEndToEnd drives a tenant past its TOQ: the exact kernel
// panics, so every fired element degrades and ships its (large) predicted
// error. Four 16-element windows close inside one request; 4 >= K=3 breaches
// flip the monitor to violating, visible in the health endpoint, the tenant
// listing, the drift gauges, and the trace flags.
func TestDriftViolationEndToEnd(t *testing.T) {
	k := synthKernel("synth", synthExec{})
	k.Spec.Exact = func(in []float64) []float64 { panic("recovery unavailable") }
	s, hs := newTestServer(t, Options{
		TraceCapacity: 8,
		Drift:         DriftConfig{Window: 16, K: 3, N: 5},
	}, k)

	inputs := make([][]float64, 64)
	for i := range inputs {
		inputs[i] = in(float64(i), 0.5) // every element fires, none recover
	}
	status, resp, _ := invoke(t, hs.URL, InvokeRequest{Tenant: "acme", Kernel: "synth", Inputs: inputs})
	if status != http.StatusOK || resp.DegradedElements != 64 {
		t.Fatalf("invoke: status %d degraded %d, want 200/64", status, resp.DegradedElements)
	}

	var health TenantHealth
	getJSON(t, hs.URL+"/v1/tenants/acme/health", http.StatusOK, &health)
	if health.Healthy || len(health.Kernels) != 1 {
		t.Fatalf("health = %+v, want unhealthy with 1 kernel", health)
	}
	drift := health.Kernels[0].Drift
	if drift == nil || drift.State != "violating" {
		t.Fatalf("drift = %+v, want violating", drift)
	}
	if drift.Windows != 4 || drift.Violations != 4 || drift.LastEstimate != 0.5 {
		t.Fatalf("drift accounting = %+v", drift)
	}

	// The violating trace was flagged always-keep.
	var dump trace.Dump
	getJSON(t, hs.URL+"/debug/rumba/traces?flagged=1", http.StatusOK, &dump)
	if len(dump.Traces) != 1 {
		t.Fatalf("flagged traces = %d, want 1", len(dump.Traces))
	}
	flags := strings.Join(dump.Traces[0].Flags, ",")
	if !strings.Contains(flags, "degraded") || !strings.Contains(flags, "violating") {
		t.Fatalf("trace flags = %q, want degraded+violating", flags)
	}

	// Drift gauges landed in the shared registry.
	snap := s.Metrics().Snapshot()
	stateKey := obs.Labeled(MetricDriftState, "tenant", "acme", "kernel", "synth")
	if g, ok := snap.Gauges[stateKey]; !ok || g.Value != 2 {
		t.Fatalf("gauge %s = %+v, want 2 (violating)", stateKey, snap.Gauges[stateKey])
	}

	// Unknown tenants 404.
	r2, err := http.Get(hs.URL + "/v1/tenants/nobody/health")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant health: status %d, want 404", r2.StatusCode)
	}
}

// TestMetricsPrometheus pins the /metrics endpoint to valid exposition
// format, with the JSON snapshot still available at /metrics.json.
func TestMetricsPrometheus(t *testing.T) {
	_, hs := newTestServer(t, Options{}, synthKernel("synth", synthExec{}))
	if status, _, _ := invoke(t, hs.URL, InvokeRequest{Tenant: "acme", Kernel: "synth", Inputs: [][]float64{in(1, 0.75)}}); status != 200 {
		t.Fatalf("invoke failed")
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	if err := obs.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("/metrics is not valid exposition: %v\n%s", err, out)
	}
	for _, want := range []string{
		"rumba_serve_requests 1",
		`rumba_tuner_threshold{kernel="synth",tenant="acme"}`,
		"# TYPE rumba_serve_latency_ns histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, out)
		}
	}
}
