package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ValidateExposition parses Prometheus text exposition output and reports
// the violations a scraper would reject or silently mangle: duplicate
// HELP/TYPE lines for one family, samples appearing before their family
// metadata is complete, unparseable sample lines, and NaN sample values.
// It is the CI smoke check behind the /metrics endpoint — deliberately a
// strict subset of the format, matching exactly what WritePrometheus emits.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	seenHelp := map[string]bool{}
	seenType := map[string]bool{}
	samples := 0
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		if text == "" {
			continue
		}
		if name, ok := strings.CutPrefix(text, "# HELP "); ok {
			fam, _, _ := strings.Cut(name, " ")
			if seenHelp[fam] {
				return fmt.Errorf("line %d: duplicate HELP for %s", line, fam)
			}
			seenHelp[fam] = true
			continue
		}
		if rest, ok := strings.CutPrefix(text, "# TYPE "); ok {
			fam, kind, _ := strings.Cut(rest, " ")
			if seenType[fam] {
				return fmt.Errorf("line %d: duplicate TYPE for %s", line, fam)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q for %s", line, kind, fam)
			}
			seenType[fam] = true
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue // free-form comment
		}
		name, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		if value != value { // NaN
			return fmt.Errorf("line %d: NaN sample for %s", line, name)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("exposition contains no samples")
	}
	return nil
}

// parseSample splits one sample line into its series name (labels stripped)
// and value.
func parseSample(line string) (name string, value float64, err error) {
	rest := line
	if open := strings.IndexByte(line, '{'); open >= 0 {
		close := strings.LastIndexByte(line, '}')
		if close < open {
			return "", 0, fmt.Errorf("unbalanced braces in sample %q", line)
		}
		name = line[:open]
		rest = name + line[close+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 || len(fields) > 3 { // optional trailing timestamp
		return "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name = fields[0]
	if name == "" {
		return "", 0, fmt.Errorf("empty metric name in %q", line)
	}
	v, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return name, 0, fmt.Errorf("bad sample value in %q: %v", line, err)
	}
	return name, v, nil
}
