package core

import (
	"math"
	"testing"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/nn"
	"rumba/internal/predictor"
	"rumba/internal/trainer"
)

// buildRuntime trains a small Rumba stack for one benchmark.
func buildRuntime(t *testing.T, name string, n int) (*bench.Spec, *accel.Accelerator, trainer.PredictorSet, nn.Dataset) {
	t.Helper()
	spec, err := bench.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	train := spec.GenTrain(n)
	cfg := trainer.DefaultAccelTrainConfig(name)
	cfg.NN.Epochs = 30
	acfg, err := trainer.TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := accel.New(acfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	obs := trainer.Observe(spec, acc, train)
	ps, err := trainer.TrainPredictors(spec, train, obs)
	if err != nil {
		t.Fatal(err)
	}
	acc.ResetStats()
	return spec, acc, ps, spec.GenTest(n)
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Fatal("empty config must fail")
	}
	spec, acc, ps, _ := buildRuntime(t, "fft", 200)
	if _, err := NewSystem(Config{Spec: spec, Accel: acc, Checker: ps.Linear}); err == nil {
		t.Fatal("checker without tuner must fail")
	}
}

func TestUncheckedRunMatchesAccelerator(t *testing.T) {
	spec, acc, _, test := buildRuntime(t, "fft", 300)
	sys, err := NewSystem(Config{Spec: spec, Accel: acc})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fixed != 0 {
		t.Fatalf("unchecked run fixed %d elements", rep.Fixed)
	}
	if rep.OutputError != rep.UncheckedError {
		t.Fatalf("unchecked output error %v != accelerator error %v", rep.OutputError, rep.UncheckedError)
	}
	if rep.Energy.Savings <= 0 || rep.Speedup <= 0 {
		t.Fatalf("missing cost accounting: %+v", rep.Energy)
	}
}

func TestCheckedRunImprovesQuality(t *testing.T) {
	spec, acc, ps, test := buildRuntime(t, "inversek2j", 1200)
	tu, _ := NewTuner(ModeTOQ, 0.10)
	sys, err := NewSystem(Config{Spec: spec, Accel: acc, Checker: ps.Tree, Tuner: tu})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fixed == 0 {
		t.Fatal("the checker never fired")
	}
	if rep.OutputError >= rep.UncheckedError {
		t.Fatalf("recovery must improve quality: %v vs unchecked %v", rep.OutputError, rep.UncheckedError)
	}
	// Every fixed element contributes zero to the merged error.
	var sum float64
	for _, o := range rep.Outcomes {
		if !o.Fixed {
			sum += o.TrueError
		}
	}
	if diff := sum/float64(rep.Elements) - rep.OutputError; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("merged error accounting inconsistent: %v", diff)
	}
}

func TestCheckedRunCostsEnergy(t *testing.T) {
	spec, acc, ps, test := buildRuntime(t, "inversek2j", 800)
	unchecked, _ := NewSystem(Config{Spec: spec, Accel: acc})
	repU, err := unchecked.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	tu, _ := NewTuner(ModeTOQ, 0.10)
	checked, _ := NewSystem(Config{Spec: spec, Accel: acc, Checker: ps.Tree, Tuner: tu})
	repC, err := checked.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	if repC.Fixed > 0 && repC.Energy.Savings >= repU.Energy.Savings {
		t.Fatalf("detection+recovery must cost energy: %v vs %v", repC.Energy.Savings, repU.Energy.Savings)
	}
	if repC.Energy.Checker == 0 {
		t.Fatal("checker energy must be accounted")
	}
	if repC.Energy.Recompute == 0 {
		t.Fatal("recompute energy must be accounted")
	}
}

func TestEnergyModeRespectsBudgetOverTime(t *testing.T) {
	spec, acc, ps, test := buildRuntime(t, "inversek2j", 2000)
	budget := 0.15
	tu, _ := NewTuner(ModeEnergy, budget)
	sys, _ := NewSystem(Config{Spec: spec, Accel: acc, Checker: ps.Tree, Tuner: tu, InvocationSize: 200})
	rep, err := sys.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(rep.Fixed) / float64(rep.Elements)
	if frac > budget*2 {
		t.Fatalf("energy mode fixed %.1f%%, budget %.1f%%", frac*100, budget*100)
	}
	if len(rep.ThresholdTrace) != 10 {
		t.Fatalf("expected 10 invocation thresholds, got %d", len(rep.ThresholdTrace))
	}
}

func TestSerialPlacementSkipsAccelInvocations(t *testing.T) {
	spec, acc, ps, test := buildRuntime(t, "inversek2j", 600)
	tu, _ := NewTuner(ModeTOQ, 0.05)
	serial, _ := NewSystem(Config{Spec: spec, Accel: acc, Checker: ps.Linear, Tuner: tu, Placement: accel.PlacementSerial})
	repS, err := serial.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	tu2, _ := NewTuner(ModeTOQ, 0.05)
	parallel, _ := NewSystem(Config{Spec: spec, Accel: acc, Checker: ps.Linear, Tuner: tu2, Placement: accel.PlacementParallel})
	repP, err := parallel.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	if repS.Fixed == 0 {
		t.Skip("nothing fired; placement comparison vacuous")
	}
	if repS.Energy.Accelerator >= repP.Energy.Accelerator {
		t.Fatal("serial placement must save accelerator energy")
	}
	if repS.Speedup >= repP.Speedup {
		t.Fatal("serial placement must cost latency")
	}
}

func TestRunEmptyDataset(t *testing.T) {
	spec, acc, _, _ := buildRuntime(t, "fft", 100)
	sys, _ := NewSystem(Config{Spec: spec, Accel: acc})
	if _, err := sys.Run(nn.Dataset{}); err == nil {
		t.Fatal("empty dataset must fail")
	}
}

func TestRecoveryQueueOverflowDoesNotLoseFixes(t *testing.T) {
	// A tiny recovery queue with an aggressive threshold: every element
	// fires; none may be lost.
	spec, acc, _, test := buildRuntime(t, "fft", 300)
	tu, _ := NewTuner(ModeTOQ, 0)
	alwaysFire := &constantChecker{value: 1}
	sys, _ := NewSystem(Config{Spec: spec, Accel: acc, Checker: alwaysFire, Tuner: tu, RecoveryQueueCap: 4})
	rep, err := sys.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fixed != rep.Elements {
		t.Fatalf("fixed %d of %d with an always-firing checker", rep.Fixed, rep.Elements)
	}
	if rep.OutputError != 0 {
		t.Fatalf("all-fixed run must have zero error, got %v", rep.OutputError)
	}
}

// constantChecker predicts the same error for every element.
type constantChecker struct{ value float64 }

func (c *constantChecker) Name() string                        { return "constant" }
func (c *constantChecker) PredictError(_, _ []float64) float64 { return c.value }
func (c *constantChecker) PredictErrorBatch(dst []float64, ins, outs [][]float64) {
	predictor.ScalarBatch(c, dst, ins, outs)
}
func (c *constantChecker) Cost() predictor.Cost { return predictor.Cost{Compares: 1} }
func (c *constantChecker) Reset()               {}

// A checker that returns NaN must neither crash the runtime nor fire (NaN
// comparisons are false), and the report must stay finite.
func TestNaNCheckerIsHarmless(t *testing.T) {
	spec, acc, _, test := buildRuntime(t, "fft", 200)
	tuner, _ := NewTuner(ModeTOQ, 0.1)
	sys, _ := NewSystem(Config{Spec: spec, Accel: acc, Checker: &nanChecker{}, Tuner: tuner})
	rep, err := sys.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fixed != 0 {
		t.Fatalf("NaN predictions fired %d times", rep.Fixed)
	}
	if math.IsNaN(rep.OutputError) || math.IsNaN(rep.Energy.Savings) {
		t.Fatal("NaN leaked into the report")
	}
}

type nanChecker struct{}

func (nanChecker) Name() string                        { return "nan" }
func (nanChecker) PredictError(_, _ []float64) float64 { return math.NaN() }
func (c nanChecker) PredictErrorBatch(dst []float64, ins, outs [][]float64) {
	predictor.ScalarBatch(c, dst, ins, outs)
}
func (nanChecker) Cost() predictor.Cost { return predictor.Cost{} }
func (nanChecker) Reset()               {}
