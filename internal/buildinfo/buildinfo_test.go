package buildinfo

import (
	"encoding/json"
	"runtime"
	"testing"
)

func TestResolveToolchainFields(t *testing.T) {
	info := Resolve()
	if info.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", info.GoVersion, runtime.Version())
	}
	if info.OS != runtime.GOOS || info.Arch != runtime.GOARCH {
		t.Errorf("platform = %s/%s, want %s/%s", info.OS, info.Arch, runtime.GOOS, runtime.GOARCH)
	}
	if info.NumCPU <= 0 || info.GOMAXPROCS <= 0 {
		t.Errorf("parallelism fields not positive: %+v", info)
	}
}

func TestResolveMemoised(t *testing.T) {
	a, b := Resolve(), Resolve()
	if a != b {
		t.Errorf("Resolve not stable across calls: %+v vs %+v", a, b)
	}
}

func TestInfoJSONShape(t *testing.T) {
	data, err := json.Marshal(Resolve())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"go_version", "os", "arch", "num_cpu", "gomaxprocs"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON missing %q: %s", key, data)
		}
	}
}
