package accel

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"rumba/internal/energy"
	"rumba/internal/nn"
	"rumba/internal/rng"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	inputs := [][]float64{{0, 0}, {1, 1}, {0.5, 0.5}}
	targets := [][]float64{{0}, {2}, {1}}
	return Config{
		Net:    nn.New(nn.MustTopology("2->3->1"), nn.Sigmoid, nn.Linear, rng.New(1)),
		Scaler: nn.FitScaler(inputs, targets),
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}, 8); err == nil {
		t.Fatal("empty config must be rejected")
	}
	cfg := testConfig(t)
	cfg.Features = []int{0} // 1 feature but net wants 2 inputs
	if _, err := New(cfg, 8); err == nil {
		t.Fatal("feature/input mismatch must be rejected")
	}
}

func TestInvokeCountsStats(t *testing.T) {
	a, err := New(testConfig(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.PEs != DefaultPEs {
		t.Fatalf("PEs = %d, want %d", a.PEs, DefaultPEs)
	}
	out := a.Invoke([]float64{0.5, 0.5})
	if len(out) != 1 {
		t.Fatalf("output len %d", len(out))
	}
	st := a.Stats()
	if st.Invocations != 1 || st.MACs != a.Config().Net.Topo.MACs() {
		t.Fatalf("stats = %+v", st)
	}
	if st.InputWords != 2 || st.OutputWords != 1 {
		t.Fatalf("word counts = %+v", st)
	}
	a.ResetStats()
	if a.Stats().Invocations != 0 {
		t.Fatal("ResetStats must clear counters")
	}
}

func TestInvokeDeterministic(t *testing.T) {
	a, _ := New(testConfig(t), 8)
	x := []float64{0.3, 0.8}
	if a.Invoke(x)[0] != a.Invoke(x)[0] {
		t.Fatal("Invoke must be deterministic")
	}
}

func TestInvokeAll(t *testing.T) {
	a, _ := New(testConfig(t), 8)
	outs := a.InvokeAll([][]float64{{0, 0}, {1, 1}})
	if len(outs) != 2 || a.Stats().Invocations != 2 {
		t.Fatalf("InvokeAll produced %d outputs, %d invocations", len(outs), a.Stats().Invocations)
	}
}

func TestFeatureProjection(t *testing.T) {
	cfg := testConfig(t)
	cfg.Features = []int{0, 2} // project a 3-wide kernel input to 2 net inputs
	a, err := New(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	full := a.Invoke([]float64{0.1, 999, 0.9})
	direct := a.Invoke([]float64{0.1, -999, 0.9})
	if full[0] != direct[0] {
		t.Fatal("projected-away input must not influence the output")
	}
}

func TestCyclesPerInvocationScalesWithPEs(t *testing.T) {
	cfg := testConfig(t)
	a8, _ := New(cfg, 8)
	a1, _ := New(cfg, 1)
	if a1.CyclesPerInvocation() <= a8.CyclesPerInvocation() {
		t.Fatal("fewer PEs must mean more cycles")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := testConfig(t)
	cfg.Features = []int{1, 0}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	aOrig, _ := New(cfg, 8)
	aBack, _ := New(back, 8)
	in := []float64{0.2, 0.7}
	if o1, o2 := aOrig.Invoke(in)[0], aBack.Invoke(in)[0]; math.Abs(o1-o2) > 1e-15 {
		t.Fatalf("round-tripped config differs: %v vs %v", o1, o2)
	}
}

func TestConfigUnmarshalRejectsIncomplete(t *testing.T) {
	var c Config
	if err := json.Unmarshal([]byte(`{"net":null,"scaler":null}`), &c); err == nil {
		t.Fatal("expected error for incomplete config")
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int](3)
	for i := 1; i <= 3; i++ {
		if !q.Push(i) {
			t.Fatalf("Push(%d) failed", i)
		}
	}
	if q.Push(4) {
		t.Fatal("Push into a full queue must fail")
	}
	if !q.Full() || q.Len() != 3 || q.Cap() != 3 {
		t.Fatalf("queue state: len=%d cap=%d", q.Len(), q.Cap())
	}
	for i := 1; i <= 3; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop from empty must fail")
	}
}

func TestQueueWrapAround(t *testing.T) {
	q := NewQueue[int](2)
	q.Push(1)
	q.Push(2)
	q.Pop()
	q.Push(3) // wraps
	if got := q.Drain(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Drain = %v, want [2 3]", got)
	}
}

func TestQueuePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQueue[int](0)
}

// Property: any interleaving of pushes and pops preserves FIFO order.
func TestQueueFIFOProperty(t *testing.T) {
	r := rng.New(33)
	f := func(opsRaw uint8) bool {
		q := NewQueue[int](8)
		next := 0
		var expect []int
		for op := 0; op < int(opsRaw)%100+20; op++ {
			if r.Bool(0.6) {
				if q.Push(next) {
					expect = append(expect, next)
				}
				next++
			} else if v, ok := q.Pop(); ok {
				if len(expect) == 0 || v != expect[0] {
					return false
				}
				expect = expect[1:]
			}
		}
		return q.Len() == len(expect)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementString(t *testing.T) {
	if PlacementParallel.String() == PlacementSerial.String() {
		t.Fatal("placements must stringify differently")
	}
}

func TestSetFixedPointChangesOutputsSlightly(t *testing.T) {
	a, _ := New(testConfig(t), 8)
	in := []float64{0.3, 0.8}
	float := a.Invoke(in)[0]
	if err := a.SetFixedPoint(nn.DefaultFixedFormat); err != nil {
		t.Fatal(err)
	}
	fixed := a.Invoke(in)[0]
	if float == fixed {
		t.Log("fixed-point output happened to match float; acceptable but rare")
	}
	if math.Abs(float-fixed) > 0.05 {
		t.Fatalf("fixed-point output too far from float: %v vs %v", fixed, float)
	}
	// Restoring float mode reproduces the original output.
	if err := a.SetFixedPoint(nn.FixedFormat{}); err != nil {
		t.Fatal(err)
	}
	if got := a.Invoke(in)[0]; got != float {
		t.Fatal("clearing fixed point must restore float execution")
	}
}

func TestSetFixedPointRejectsBadFormat(t *testing.T) {
	a, _ := New(testConfig(t), 8)
	if err := a.SetFixedPoint(nn.FixedFormat{IntBits: -1, FracBits: 99}); err == nil {
		t.Fatal("expected format error")
	}
}

func TestConfigWordsAndSetupEnergy(t *testing.T) {
	a, _ := New(testConfig(t), 8)
	// 2->3->1: (2*3+3) + (3*1+1) = 13 parameters.
	if got := a.ConfigWords(); got != 13 {
		t.Fatalf("ConfigWords = %d, want 13", got)
	}
	m := energy.DefaultModel()
	if got := a.SetupEnergy(m); got != 13*m.QueueEnergyPerWord {
		t.Fatalf("SetupEnergy = %v", got)
	}
}

// TestApplyDatapath pins the sweep-axis datapath routing: exp is the
// bit-exact reference, lut flips the activation tables, fixed routes through
// the integer Q16.16 kernel (within its analytic error bound of exp), and
// unknown names or bad lutBits are rejected without changing the datapath.
func TestApplyDatapath(t *testing.T) {
	a, err := New(testConfig(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.5, 0.25}
	ref := a.Invoke(in)

	if err := a.ApplyDatapath(DatapathFixed, 10); err != nil {
		t.Fatal(err)
	}
	q16, err2 := nn.NewQ16(a.Config().Net, 10)
	if err2 != nil {
		t.Fatal(err2)
	}
	got := a.Invoke(in)
	if d := math.Abs(got[0] - ref[0]); d > 1e-2 || d == 0 && q16.ErrorBound(a.Config().Net) < 1e-9 {
		t.Fatalf("fixed datapath output %v vs exp %v (delta %v)", got[0], ref[0], d)
	}

	if err := a.ApplyDatapath(DatapathLUT, 0); err != nil {
		t.Fatal(err)
	}
	if a.q16 != nil || !a.lut {
		t.Fatal("lut datapath must clear q16 and set the LUT flag")
	}

	if err := a.ApplyDatapath("", 0); err != nil {
		t.Fatal(err)
	}
	back := a.Invoke(in)
	if math.Float64bits(back[0]) != math.Float64bits(ref[0]) {
		t.Fatalf("returning to exp must restore bit-exact output: %v != %v", back[0], ref[0])
	}

	if err := a.ApplyDatapath("warp", 0); err == nil {
		t.Fatal("unknown datapath must be rejected")
	}
	if err := a.ApplyDatapath(DatapathFixed, 99); err == nil {
		t.Fatal("bad lutBits must be rejected")
	}
	if a.q16 != nil {
		t.Fatal("failed ApplyDatapath must not leave a partial datapath")
	}
}
