package experiments

import (
	"fmt"
	"math"

	"rumba/internal/bench"
	"rumba/internal/energy"
	"rumba/internal/imageutil"
	"rumba/internal/nn"
	"rumba/internal/predictor"
	"rumba/internal/quality"
	"rumba/internal/rng"
)

// Fig1 reproduces Figure 1: the typical cumulative distribution of element
// errors under approximation — most elements have small errors, a few have
// large ones. The CDF is measured on a real approximated benchmark.
func Fig1(c *Context, benchmark string) (*Table, error) {
	if benchmark == "" {
		benchmark = "inversek2j"
	}
	p, err := c.Prepare(benchmark)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 1: CDF of element errors (%s, Rumba accelerator)", benchmark),
		Note:   "Paper shape: ~80% of elements below 10% error, a long tail of large errors.",
		Header: []string{"error <=", "fraction of elements"},
	}
	for _, level := range []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50, 1.00, math.Inf(1)} {
		label := pct(level)
		if math.IsInf(level, 1) {
			label = "inf"
		}
		t.AddRow(label, pct(quality.FractionBelow(p.RumbaObs.Errors, level)))
	}
	return t, nil
}

// Fig2Result carries the Figure 2 comparison: two corruptions with identical
// mean error but very different perceptibility.
type Fig2Result struct {
	MeanErrorConcentrated float64 // 10% of pixels with 100% error
	MeanErrorSpread       float64 // all pixels with 10% error
	LargeFracConcentrated float64 // fraction of pixels with error > 20%
	LargeFracSpread       float64
	MSEConcentrated       float64
	MSESpread             float64
}

// Fig2 reproduces Figure 2 quantitatively: corrupting 10% of pixels with
// 100% error and all pixels with 10% error yields the same average output
// quality (90%), but only the former contains perceptible large errors.
func Fig2(c *Context) (*Table, Fig2Result, error) {
	const size = 128
	img := imageutil.Synthetic(size, size, "fig2")
	r := rng.NewNamed("fig2/corruption")
	n := len(img.Pix)

	var res Fig2Result
	concentrated := make([]float64, n) // per-pixel error, fraction of range
	spread := make([]float64, n)
	perm := r.Perm(n)
	for _, i := range perm[:n/10] {
		concentrated[i] = 1.0
	}
	// Give every pixel exactly the concentrated corruption's mean so the
	// two corruptions have identical average quality by construction.
	spreadErr := float64(n/10) / float64(n)
	for i := range spread {
		spread[i] = spreadErr
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
	mse := func(xs []float64) float64 {
		var s float64
		for _, v := range xs {
			s += v * v
		}
		return s / float64(len(xs))
	}
	largeFrac := func(xs []float64) float64 {
		k := 0
		for _, v := range xs {
			if v > quality.LargeErrorThreshold {
				k++
			}
		}
		return float64(k) / float64(len(xs))
	}
	res.MeanErrorConcentrated = mean(concentrated)
	res.MeanErrorSpread = mean(spread)
	res.LargeFracConcentrated = largeFrac(concentrated)
	res.LargeFracSpread = largeFrac(spread)
	res.MSEConcentrated = mse(concentrated)
	res.MSESpread = mse(spread)

	t := &Table{
		Title:  "Figure 2: same average quality, different error distribution (128x128 image)",
		Note:   "Both corruptions have 10% mean error (90% quality); only (b) has perceptible large errors.",
		Header: []string{"corruption", "mean error", "pixels with >20% error", "MSE (range^2)"},
	}
	t.AddRow("(b) 10% of pixels at 100% error", pct(res.MeanErrorConcentrated), pct(res.LargeFracConcentrated), fmt.Sprintf("%.4f", res.MSEConcentrated))
	t.AddRow("(c) all pixels at 10% error", pct(res.MeanErrorSpread), pct(res.LargeFracSpread), fmt.Sprintf("%.4f", res.MSESpread))
	return t, res, nil
}

// Fig3 reproduces Figure 3: the output error of the loop-perforated mosaic
// brightness pass over the flower-image set is strongly input dependent.
func Fig3(c *Context) (*Table, bench.MosaicResult, error) {
	images, w, h := c.Sizes.MosaicImages, c.Sizes.MosaicW, c.Sizes.MosaicH
	if images <= 0 {
		images = 800
	}
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 64
	}
	res := bench.RunMosaic(images, w, h, 2)
	over10 := 0
	for _, e := range res.Errors {
		if e > 10 {
			over10++
		}
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 3: mosaic output error over %d flower images (50%% loop perforation)", images),
		Note:   "Paper shape: ~5% mean error but individual images up to ~23%.",
		Header: []string{"statistic", "value"},
	}
	t.AddRow("mean output error", fmt.Sprintf("%.2f%%", res.Mean))
	t.AddRow("max output error", fmt.Sprintf("%.2f%%", res.Max))
	t.AddRow("images above 10% error", fmt.Sprintf("%d (%s)", over10, pct(float64(over10)/float64(images))))
	return t, res, nil
}

// Fig5Result carries the EVP-versus-EEP accuracy comparison of Section 3.2.
type Fig5Result struct {
	EVPDistance float64
	EEPDistance float64
	Ratio       float64 // EVP / EEP; the paper reports 2.5 / 1
}

// Fig5 reproduces the Figure 5 / Section 3.2 experiment: a Gaussian kernel
// is approximated by a small accelerator network; a same-family model that
// predicts the *errors* directly (EEP) tracks the true errors more closely
// than predicting the *values* and differencing (EVP).
func Fig5(c *Context) (*Table, Fig5Result, error) {
	// The Gaussian kernel of Figure 5, sampled over [-16, 14].
	gauss := func(x float64) float64 { return math.Exp(-x * x / (2 * 25)) }
	n := 3000
	if c.Sizes.TestN > 0 && c.Sizes.TestN < n {
		n = c.Sizes.TestN
	}
	r := rng.NewNamed("fig5/data")
	train := nn.Dataset{}
	for i := 0; i < n; i++ {
		x := r.Range(-16, 14)
		train.Inputs = append(train.Inputs, []float64{x})
		train.Targets = append(train.Targets, []float64{gauss(x)})
	}
	// A deliberately small accelerator: its misfit concentrates around the
	// peak, which is what makes the errors predictable from the input.
	scaler := nn.FitScaler(train.Inputs, train.Targets)
	net := nn.New(nn.MustTopology("1->2->1"), nn.Sigmoid, nn.Sigmoid, rng.NewNamed("fig5/init"))
	if _, err := net.Train(scaler.ScaleDataset(train), nn.TrainConfig{
		Epochs: 40, LearningRate: 0.3, Momentum: 0.9, BatchSize: 16, Seed: "fig5/train",
	}); err != nil {
		return nil, Fig5Result{}, err
	}
	// Observed accelerator outputs and true errors; the predictor features
	// are (x, x^2) for both EVP and EEP — the same model family.
	var feats, approx [][]float64
	var trueErrs []float64
	for i := range train.Inputs {
		x := train.Inputs[i][0]
		out := scaler.UnscaleOut(net.Forward(scaler.ScaleIn(train.Inputs[i])))
		feats = append(feats, []float64{x, x * x})
		approx = append(approx, out)
		trueErrs = append(trueErrs, math.Abs(out[0]-train.Targets[i][0]))
	}
	eep, err := predictor.FitLinear(feats, trueErrs, nil)
	if err != nil {
		return nil, Fig5Result{}, err
	}
	vm, err := predictor.FitValueModel(feats, approx)
	if err != nil {
		return nil, Fig5Result{}, err
	}
	evp := &predictor.EVP{Model: vm}
	res := Fig5Result{
		EVPDistance: predictor.MeanAbsDistance(evp, feats, approx, trueErrs),
		EEPDistance: predictor.MeanAbsDistance(eep, feats, approx, trueErrs),
	}
	if res.EEPDistance > 0 {
		res.Ratio = res.EVPDistance / res.EEPDistance
	}
	t := &Table{
		Title:  "Figure 5 / Section 3.2: predicting errors directly (EEP) vs via value prediction (EVP)",
		Note:   "Paper: average distance to true errors is 2.5 (EVP) vs 1 (EEP) on a Gaussian kernel.",
		Header: []string{"method", "mean |predicted - true| error distance"},
	}
	t.AddRow("EVP (predict value, then diff)", fmt.Sprintf("%.4f", res.EVPDistance))
	t.AddRow("EEP (predict error directly)", fmt.Sprintf("%.4f", res.EEPDistance))
	t.AddRow("EVP/EEP ratio", fmt.Sprintf("%.2f", res.Ratio))
	return t, res, nil
}

// Table1 reproduces Table 1: the benchmark suite.
func Table1() *Table {
	t := &Table{
		Title:  "Table 1: Applications and their inputs",
		Header: []string{"Application", "Domain", "Train Data", "Test Data", "NN Topology (Rumba)", "NN Topology (NPU)", "Evaluation Metric"},
	}
	for _, s := range bench.All() {
		t.AddRow(s.Name, s.Domain, s.TrainDesc, s.TestDesc, s.RumbaTopo.String(), s.NPUTopo.String(), s.Metric.String())
	}
	return t
}

// Table2 reproduces Table 2: the simulated core's parameters.
func Table2() *Table {
	c := energy.DefaultCPUConfig()
	t := &Table{
		Title:  "Table 2: Microarchitectural parameters of the X86-64 CPU",
		Header: []string{"Parameter", "Value"},
	}
	t.AddRow("Fetch/Issue width", fmt.Sprintf("%d/%d", c.FetchWidth, c.IssueWidth))
	t.AddRow("INT ALUs/FPUs", fmt.Sprintf("%d/%d", c.IntALUs, c.FPUs))
	t.AddRow("Load/Store FUs", fmt.Sprintf("%d/%d", c.LoadStoreFUs, c.LoadStoreFUs))
	t.AddRow("Issue Queue Entries", fmt.Sprintf("%d", c.IssueQueueEntries))
	t.AddRow("ROB Entries", fmt.Sprintf("%d", c.ROBEntries))
	t.AddRow("INT/FP Physical Registers", fmt.Sprintf("%d/%d", c.IntRegisters, c.FPRegisters))
	t.AddRow("BTB Entries", fmt.Sprintf("%d", c.BTBEntries))
	t.AddRow("RAS Entries", fmt.Sprintf("%d", c.RASEntries))
	t.AddRow("Load/Store Queue Entries", fmt.Sprintf("%d/%d", c.LoadQueueEntries, c.StoreQueueEntries))
	t.AddRow("L1 iCache / dCache", fmt.Sprintf("%dKB / %dKB", c.L1ICacheKB, c.L1DCacheKB))
	t.AddRow("L1/L2 Hit Latency", fmt.Sprintf("%d/%d cycles", c.L1HitCycles, c.L2HitCycles))
	t.AddRow("L1/L2 Associativity", fmt.Sprintf("%d", c.L1Assoc))
	t.AddRow("ITLB/DTLB Entries", fmt.Sprintf("%d/%d", c.ITLBEntries, c.DTLBEntries))
	t.AddRow("L2 Size", fmt.Sprintf("%d MB", c.L2SizeMB))
	t.AddRow("Branch Predictor", c.BranchPredictor)
	return t
}
