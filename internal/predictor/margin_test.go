package predictor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMarginConfidentOutputScoresLow(t *testing.T) {
	m := &Margin{Scale: 0.5}
	confident := m.PredictError(nil, []float64{0.95, 0.05})
	unsure := m.PredictError(nil, []float64{0.52, 0.48})
	if confident != 0 {
		t.Fatalf("confident output should predict 0 error, got %v", confident)
	}
	if unsure <= 0.8 {
		t.Fatalf("near-tie should predict high error, got %v", unsure)
	}
}

func TestMarginSingleOutput(t *testing.T) {
	m := &Margin{Scale: 1}
	if got := m.PredictError(nil, []float64{0.4}); got != 0 {
		t.Fatalf("single output margin = %v, want 0", got)
	}
}

func TestMarginZeroScaleFallsBack(t *testing.T) {
	m := &Margin{}
	got := m.PredictError(nil, []float64{0.6, 0.4})
	if math.Abs(got-0.8) > 1e-12 { // 1 - 0.2/1
		t.Fatalf("zero-scale prediction = %v, want 0.8", got)
	}
}

func TestRawMargin(t *testing.T) {
	if rm := rawMargin([]float64{0.1, 0.7, 0.4}); math.Abs(rm-0.3) > 1e-12 {
		t.Fatalf("rawMargin = %v, want 0.3", rm)
	}
}

func TestFitMarginUsesCorrectMedians(t *testing.T) {
	outs := [][]float64{
		{0.9, 0.1},   // correct, margin 0.8
		{0.8, 0.2},   // correct, margin 0.6
		{0.7, 0.3},   // correct, margin 0.4
		{0.55, 0.45}, // wrong, ignored
	}
	errs := []float64{0, 0, 0, 1}
	m := FitMargin(outs, errs)
	if math.Abs(m.Scale-0.6) > 1e-12 {
		t.Fatalf("fitted scale = %v, want median 0.6", m.Scale)
	}
}

func TestFitMarginNoCorrectSamples(t *testing.T) {
	m := FitMargin([][]float64{{0.5, 0.5}}, []float64{1})
	if m.Scale != 1 {
		t.Fatalf("fallback scale = %v, want 1", m.Scale)
	}
}

func TestMarginCostAndName(t *testing.T) {
	m := &Margin{Scale: 1}
	if m.Name() != "marginErrors" {
		t.Fatal("name")
	}
	if c := m.Cost(); c.Compares != 3 || c.MACs != 0 {
		t.Fatalf("cost %+v", c)
	}
	m.Reset() // must be a no-op
}

// Property: the margin prediction is monotone — widening the gap between
// the top two outputs never increases the predicted error.
func TestMarginMonotoneProperty(t *testing.T) {
	m := &Margin{Scale: 0.7}
	f := func(aRaw, bRaw uint8, widenRaw uint8) bool {
		a := float64(aRaw) / 255
		gap := float64(bRaw) / 255
		widen := float64(widenRaw) / 255
		narrow := m.PredictError(nil, []float64{a + gap, a})
		wide := m.PredictError(nil, []float64{a + gap + widen, a})
		return wide <= narrow+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
