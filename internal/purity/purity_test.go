package purity

import (
	"strings"
	"testing"
)

func analyze(t *testing.T, src string) Report {
	t.Helper()
	rep, err := AnalyzeSource("test.go", "package p\n"+src)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func mustVerdict(t *testing.T, rep Report, fn string) Verdict {
	t.Helper()
	v, ok := rep.Lookup(fn)
	if !ok {
		t.Fatalf("no verdict for %s in %+v", fn, rep)
	}
	return v
}

func TestPureArithmeticFunction(t *testing.T) {
	rep := analyze(t, `
func add(a, b float64) float64 { return a + b }`)
	if v := mustVerdict(t, rep, "add"); !v.Pure {
		t.Fatalf("add should be pure: %v", v.Reasons)
	}
}

func TestPureWithLocalAllocation(t *testing.T) {
	rep := analyze(t, `
func double(in []float64) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = 2 * v
	}
	return out
}`)
	if v := mustVerdict(t, rep, "double"); !v.Pure {
		t.Fatalf("double should be pure: %v", v.Reasons)
	}
}

func TestImpureGlobalWrite(t *testing.T) {
	rep := analyze(t, `
var counter int

func bump(x int) int {
	counter++
	return x
}`)
	v := mustVerdict(t, rep, "bump")
	if v.Pure {
		t.Fatal("bump writes a global")
	}
	if !strings.Contains(strings.Join(v.Reasons, ";"), "counter") {
		t.Fatalf("reason should name the global: %v", v.Reasons)
	}
}

func TestImpureParameterMutation(t *testing.T) {
	rep := analyze(t, `
func scale(in []float64, k float64) {
	for i := range in {
		in[i] *= k
	}
}`)
	v := mustVerdict(t, rep, "scale")
	if v.Pure {
		t.Fatal("scale mutates its input slice")
	}
}

func TestImpurePointerWrite(t *testing.T) {
	rep := analyze(t, `
func set(p *float64) { *p = 3 }`)
	if v := mustVerdict(t, rep, "set"); v.Pure {
		t.Fatal("set writes through a pointer parameter")
	}
}

func TestGlobalReadIsPure(t *testing.T) {
	rep := analyze(t, `
var table = [4]float64{1, 2, 3, 4}

func lookup(i int) float64 { return table[i%4] }`)
	if v := mustVerdict(t, rep, "lookup"); !v.Pure {
		t.Fatalf("reading a global should be pure: %v", v.Reasons)
	}
}

func TestImpurityPropagatesThroughCalls(t *testing.T) {
	rep := analyze(t, `
var g int

func dirty() int { g = 1; return g }

func wrapper(x int) int { return x + dirty() }

func clean(x int) int { return x * 2 }

func usesClean(x int) int { return clean(x) + 1 }`)
	if v := mustVerdict(t, rep, "wrapper"); v.Pure {
		t.Fatal("wrapper calls an impure function")
	}
	if v := mustVerdict(t, rep, "usesClean"); !v.Pure {
		t.Fatalf("usesClean calls a pure function: %v", v.Reasons)
	}
}

func TestUnknownCallIsConservative(t *testing.T) {
	rep := analyze(t, `
import "os"

func writer(s string) { os.Stdout.WriteString(s) }`)
	if v := mustVerdict(t, rep, "writer"); v.Pure {
		t.Fatal("unknown call targets must be conservative")
	}
}

func TestMathCallsAreTrusted(t *testing.T) {
	rep := analyze(t, `
import "math"

func norm(x, y float64) float64 { return math.Sqrt(x*x + y*y) }`)
	if v := mustVerdict(t, rep, "norm"); !v.Pure {
		t.Fatalf("math calls are pure: %v", v.Reasons)
	}
}

func TestGoroutineAndChannelAreImpure(t *testing.T) {
	rep := analyze(t, `
func spawn(ch chan int) {
	go func() {}()
	ch <- 1
}`)
	v := mustVerdict(t, rep, "spawn")
	if v.Pure {
		t.Fatal("goroutines/sends are impure")
	}
}

func TestRecursionConvergesToPure(t *testing.T) {
	rep := analyze(t, `
func fact(n int) int {
	if n <= 1 {
		return 1
	}
	return n * fact(n-1)
}`)
	if v := mustVerdict(t, rep, "fact"); !v.Pure {
		t.Fatalf("pure recursion should pass: %v", v.Reasons)
	}
}

func TestPureFraction(t *testing.T) {
	rep := analyze(t, `
var g int

func a() int { return 1 }
func b() int { g = 2; return g }`)
	if f := rep.PureFraction(); f != 0.5 {
		t.Fatalf("PureFraction = %v, want 0.5", f)
	}
	if (Report{}).PureFraction() != 0 {
		t.Fatal("empty report fraction")
	}
}

func TestAnalyzeSourceSyntaxError(t *testing.T) {
	if _, err := AnalyzeSource("x.go", "package p\nfunc ("); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestAnalyzeDirMissing(t *testing.T) {
	if _, err := AnalyzeDir("/definitely/not/here"); err == nil {
		t.Fatal("expected error for missing dir")
	}
}

// The benchmark kernels themselves must be provably pure: that is the
// property Rumba's selective re-execution depends on (Section 2.2).
func TestBenchmarkKernelsAreProvablyPure(t *testing.T) {
	// imageutil.Clamp255 is a pure helper from a sibling package; its own
	// purity is verified by TestImageutilClampIsPure below.
	rep, err := AnalyzeDir("../bench", "imageutil.Clamp255")
	if err != nil {
		t.Fatal(err)
	}
	kernels := []string{
		"blackScholesExact", "fftTwiddleExact", "inverseK2JExact",
		"jmeintExact", "jpegExact", "kmeansExact", "sobelExact",
	}
	for _, k := range kernels {
		v, ok := rep.Lookup(k)
		if !ok {
			t.Fatalf("kernel %s not found in bench package", k)
		}
		if !v.Pure {
			t.Errorf("kernel %s not provably pure: %v", k, v.Reasons)
		}
	}
	// The Rodinia-style statistic: well over half of the bench package's
	// functions should be pure (the paper reports >70% for Rodinia's
	// data-parallel regions).
	if f := rep.PureFraction(); f < 0.5 {
		t.Errorf("bench package pure fraction %v suspiciously low", f)
	}
}

// TestImageutilClampIsPure backs the trust assertion used above.
func TestImageutilClampIsPure(t *testing.T) {
	rep, err := AnalyzeDir("../imageutil")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := rep.Lookup("Clamp255")
	if !ok {
		t.Fatal("Clamp255 not found")
	}
	if !v.Pure {
		t.Fatalf("Clamp255 should be pure: %v", v.Reasons)
	}
}

func TestLocalClosureIsAnalysedInline(t *testing.T) {
	rep := analyze(t, `
func usesClosure(x float64) float64 {
	sq := func(v float64) float64 { return v * v }
	return sq(x) + sq(2*x)
}`)
	if v := mustVerdict(t, rep, "usesClosure"); !v.Pure {
		t.Fatalf("local closures should not block purity: %v", v.Reasons)
	}
}

func TestImpureClosureBodyStillCaught(t *testing.T) {
	rep := analyze(t, `
var g int

func sneaky(x int) int {
	f := func() { g = x }
	f()
	return x
}`)
	if v := mustVerdict(t, rep, "sneaky"); v.Pure {
		t.Fatal("global write inside a closure must be caught")
	}
}

// Regression test for the string-matching trust bug: the old syntactic
// analyser resolved calls by rendered name, so anything that *looked like*
// "imageutil.Clamp255" at the call site — here, a method on a local
// variable named imageutil — inherited the trust granted to the real
// helper. Typed resolution binds the call to the local method object,
// which is impure, and trust entries never match it.
func TestTrustResolvesTypedObjectsNotNames(t *testing.T) {
	rep, err := AnalyzeSource("test.go", `package p

var g int

type fake struct{}

func (fake) Clamp255(v float64) float64 { g++; return v }

func use(v float64) float64 {
	imageutil := fake{}
	return imageutil.Clamp255(v)
}`, "imageutil.Clamp255")
	if err != nil {
		t.Fatal(err)
	}
	v := mustVerdict(t, rep, "use")
	if v.Pure {
		t.Fatal("local method spelled like a trusted helper must not be trusted")
	}
	if v2 := mustVerdict(t, rep, "fake.Clamp255"); v2.Pure {
		t.Fatal("the shadowing method writes a global and is impure")
	}
}

// A local *function* spelled like a trusted helper must likewise be judged
// on its own body, not the trust table.
func TestLocalFunctionShadowingTrustedName(t *testing.T) {
	rep, err := AnalyzeSource("test.go", `package p

var g int

func Clamp255(v float64) float64 { g++; return v }

func use(v float64) float64 { return Clamp255(v) }`, "imageutil.Clamp255", "Clamp255")
	if err != nil {
		t.Fatal(err)
	}
	if v := mustVerdict(t, rep, "use"); v.Pure {
		t.Fatalf("local impure Clamp255 must not match any trust entry")
	}
}

// The real helper, called through its import, does match the trust entry —
// and with the cross-package fixpoint it is verified rather than assumed.
func TestTrustMatchesRealImportedHelper(t *testing.T) {
	rep, err := AnalyzeSource("test.go", `package p

import "rumba/internal/imageutil"

func use(v float64) float64 { return imageutil.Clamp255(v) }`, "imageutil.Clamp255")
	if err != nil {
		t.Fatal(err)
	}
	if v := mustVerdict(t, rep, "use"); !v.Pure {
		t.Fatalf("trusted imported helper should keep use pure: %v", v.Reasons)
	}
}

// Cross-package fixpoint: with AnalyzeDir the sibling package's functions
// carry their own facts, so no trust entry is needed at all.
func TestCrossPackageFixpointNeedsNoTrust(t *testing.T) {
	rep, err := AnalyzeDir("../bench")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := rep.Lookup("sobelExact")
	if !ok {
		t.Fatal("sobelExact not found")
	}
	if !v.Pure {
		t.Fatalf("sobelExact should be provably pure without trust entries: %v", v.Reasons)
	}
}

// Method calls resolve through types: a pure method on an owned receiver
// is analysed, not treated as an unknown string.
func TestMethodCallResolution(t *testing.T) {
	rep, err := AnalyzeSource("test.go", `package p

type vec struct{ x, y float64 }

func (v vec) norm2() float64 { return v.x*v.x + v.y*v.y }

func use(a, b float64) float64 {
	v := vec{a, b}
	return v.norm2()
}`)
	if err != nil {
		t.Fatal(err)
	}
	if v := mustVerdict(t, rep, "use"); !v.Pure {
		t.Fatalf("pure method call should stay pure: %v", v.Reasons)
	}
}
