package obs

import (
	"strings"
	"testing"
)

func TestRelabelStampsEveryKind(t *testing.T) {
	r := NewRegistry()
	r.Counter(Labeled("req.total", "tenant", "acme")).Add(7)
	r.Gauge("queue.depth").Set(3)
	r.Histogram("lat").Observe(100)

	out := Relabel(r.Snapshot(), "node", "n1")
	if out.Counters[`req.total{node=n1,tenant=acme}`] != 7 {
		t.Fatalf("counter not relabelled: %v", out.Counters)
	}
	if out.Gauges[`queue.depth{node=n1}`].Value != 3 {
		t.Fatalf("gauge not relabelled: %v", out.Gauges)
	}
	if out.Histograms[`lat{node=n1}`].Count != 1 {
		t.Fatalf("histogram not relabelled: %v", out.Histograms)
	}

	// Re-stamping the same key is a no-op: the existing pair wins, so a
	// router metric already naming a member keeps that member.
	again := Relabel(out, "node", "n2")
	if _, ok := again.Counters[`req.total{node=n1,tenant=acme}`]; !ok {
		t.Fatalf("existing label did not win: %v", again.Counters)
	}
	for name := range again.Counters {
		if strings.Count(name, "node=") != 1 {
			t.Fatalf("duplicated node label in %q", name)
		}
	}
}

func TestMergeCombinesByKind(t *testing.T) {
	a := Snapshot{
		Counters: map[string]int64{"shared": 2, "onlyA": 1},
		Gauges:   map[string]GaugeSnapshot{"g": {Value: 1, Max: 9}},
		Histograms: map[string]HistogramSnapshot{"h": {Count: 2, Sum: 6, Buckets: []Bucket{
			{Le: 2, Count: 1}, {Le: 4, Count: 1},
		}}},
	}
	b := Snapshot{
		Counters: map[string]int64{"shared": 3, "onlyB": 5},
		Gauges:   map[string]GaugeSnapshot{"g": {Value: 4, Max: 4}},
		Histograms: map[string]HistogramSnapshot{"h": {Count: 3, Sum: 9, Buckets: []Bucket{
			{Le: 4, Count: 2}, {Le: 1, Count: 1},
		}}},
	}
	m := Merge(a, b)
	if m.Counters["shared"] != 5 || m.Counters["onlyA"] != 1 || m.Counters["onlyB"] != 5 {
		t.Fatalf("counters = %v", m.Counters)
	}
	if g := m.Gauges["g"]; g.Value != 4 || g.Max != 9 {
		t.Fatalf("gauge merge = %+v, want later value 4 with max 9", g)
	}
	h := m.Histograms["h"]
	if h.Count != 5 || h.Sum != 15 {
		t.Fatalf("histogram totals = %+v", h)
	}
	wantLes := []float64{1, 2, 4}
	if len(h.Buckets) != 3 {
		t.Fatalf("buckets = %+v", h.Buckets)
	}
	for i, le := range wantLes {
		if h.Buckets[i].Le != le {
			t.Fatalf("bucket %d Le=%v, want ascending %v", i, h.Buckets[i].Le, wantLes)
		}
	}
	if h.Buckets[2].Count != 3 { // 1 from a + 2 from b at Le=4
		t.Fatalf("Le=4 bucket count = %d, want 3", h.Buckets[2].Count)
	}
}

// TestFederatedNamesRoundTripExposition is the satellite's escaping check:
// node names carrying ':' (host:port) and '"' must survive Relabel →
// WritePrometheus → ValidateExposition.
func TestFederatedNamesRoundTripExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(Labeled("req.total", "tenant", "acme")).Add(1)
	r.Histogram("lat").Observe(5)

	for _, node := range []string{`127.0.0.1:9090`, `node"quoted"`, `back\slash`} {
		relabelled := Relabel(r.Snapshot(), "node", node)
		var sb strings.Builder
		if err := relabelled.WritePrometheus(&sb, "rumba"); err != nil {
			t.Fatalf("node %q: write: %v", node, err)
		}
		if err := ValidateExposition(strings.NewReader(sb.String())); err != nil {
			t.Fatalf("node %q: exposition invalid: %v\n%s", node, err, sb.String())
		}
	}
}
