package trace

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndSnapshot(t *testing.T) {
	tr := New("invoke", 0)
	root := tr.Root()
	if !root.Valid() || root.Trace() != tr {
		t.Fatalf("root ref invalid")
	}
	root.SetStr("tenant", "acme")
	adm := root.Start("admission")
	adm.SetInt("queue", 3)
	adm.End()
	chunk := root.Start("stream.chunk")
	inv := chunk.Start("accel.invoke")
	inv.SetFloat("batch", 64)
	inv.End()
	chunk.End()
	tr.SetFlag(FlagDegraded)
	tr.Finish()

	s := tr.Snapshot()
	if s.ID == "" || s.DurationNs <= 0 {
		t.Fatalf("snapshot id %q duration %d", s.ID, s.DurationNs)
	}
	if len(s.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(s.Spans))
	}
	byName := map[string]SpanSnapshot{}
	for _, sp := range s.Spans {
		byName[sp.Name] = sp
	}
	if byName["invoke"].Parent != 0 || byName["invoke"].Attrs["tenant"] != "acme" {
		t.Fatalf("root span wrong: %+v", byName["invoke"])
	}
	if byName["admission"].Parent != byName["invoke"].ID {
		t.Fatalf("admission parent %d, want root %d", byName["admission"].Parent, byName["invoke"].ID)
	}
	if byName["accel.invoke"].Parent != byName["stream.chunk"].ID {
		t.Fatalf("invoke parent %d, want chunk %d", byName["accel.invoke"].Parent, byName["stream.chunk"].ID)
	}
	if v, ok := byName["admission"].Attrs["queue"].(int64); !ok || v != 3 {
		t.Fatalf("queue attr = %v", byName["admission"].Attrs["queue"])
	}
	if v, ok := byName["accel.invoke"].Attrs["batch"].(float64); !ok || v != 64 {
		t.Fatalf("batch attr = %v", byName["accel.invoke"].Attrs["batch"])
	}
	if adm := byName["admission"]; adm.End < adm.Start {
		t.Fatalf("admission ends %d before start %d", adm.End, adm.Start)
	}
	if got := s.Flags; len(got) != 1 || got[0] != "degraded" {
		t.Fatalf("flags = %v", got)
	}
}

func TestEndKeepsFirstStamp(t *testing.T) {
	tr := New("r", 0)
	sp := tr.Root().Start("op")
	sp.End()
	first := tr.Snapshot().Spans[1].End
	time.Sleep(time.Millisecond)
	sp.End()
	if again := tr.Snapshot().Spans[1].End; again != first {
		t.Fatalf("second End moved the stamp: %d -> %d", first, again)
	}
}

func TestSpanLimitCountsDropped(t *testing.T) {
	tr := New("r", 3)
	root := tr.Root()
	for i := 0; i < 10; i++ {
		root.Start("op").End()
	}
	s := tr.Snapshot()
	if len(s.Spans) != 3 {
		t.Fatalf("kept %d spans, want limit 3", len(s.Spans))
	}
	if s.DroppedSpans != 8 {
		t.Fatalf("dropped %d, want 8", s.DroppedSpans)
	}
}

func TestNilAndZeroValuesAreInert(t *testing.T) {
	var tr *Trace
	if tr.ID() != 0 || tr.Flags() != 0 {
		t.Fatal("nil trace not inert")
	}
	tr.SetFlag(FlagError)
	tr.Finish()
	if s := tr.Snapshot(); len(s.Spans) != 0 {
		t.Fatalf("nil snapshot has spans: %+v", s)
	}
	ref := tr.Root()
	if ref.Valid() {
		t.Fatal("nil trace produced a valid ref")
	}
	child := ref.Start("x")
	child.SetStr("k", "v")
	child.SetInt("k", 1)
	child.SetFloat("k", 1)
	child.AddFlag(FlagShed)
	child.End()
	if child.Valid() {
		t.Fatal("child of zero ref is valid")
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx).Valid() {
		t.Fatal("empty context produced a span")
	}
	ctx2, ref := StartSpan(ctx, "x")
	if ctx2 != ctx || ref.Valid() {
		t.Fatal("StartSpan without a trace must be a no-op")
	}

	tr := New("req", 0)
	ctx = NewContext(ctx, tr.Root())
	ctx, child := StartSpan(ctx, "child")
	if !child.Valid() {
		t.Fatal("child not created")
	}
	if FromContext(ctx) != child {
		t.Fatal("context does not carry the child as current")
	}
	_, grand := StartSpan(ctx, "grandchild")
	grand.End()
	child.End()
	s := tr.Snapshot()
	if len(s.Spans) != 3 || s.Spans[2].Parent != s.Spans[1].ID {
		t.Fatalf("span tree wrong: %+v", s.Spans)
	}
}

// TestDisabledTracingAllocFree is the acceptance guard for the disabled
// path: with no trace in the context, every instrumented call site must cost
// a nil check and nothing else.
func TestDisabledTracingAllocFree(t *testing.T) {
	ctx := context.Background()
	var ref SpanRef
	if allocs := testing.AllocsPerRun(1000, func() {
		r := FromContext(ctx)
		c := r.Start("chunk")
		c.SetInt("elements", 64)
		c.SetStr("path", "fused")
		c.SetFloat("pred", 0.5)
		c.AddFlag(FlagDegraded)
		c.End()
		_, sp := StartSpan(ctx, "stream")
		sp.End()
		ref = c
	}); allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f times per op", allocs)
	}
	if ref.Valid() {
		t.Fatal("disabled path produced a valid span")
	}
}

func TestConcurrentSpanRecording(t *testing.T) {
	tr := New("req", 4096)
	root := tr.Root()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := root.Start("op")
				sp.SetInt("i", int64(i))
				sp.End()
				tr.SetFlag(FlagDegraded)
			}
		}()
	}
	wg.Wait()
	tr.Finish()
	s := tr.Snapshot()
	if len(s.Spans) != 801 {
		t.Fatalf("got %d spans, want 801", len(s.Spans))
	}
	for _, sp := range s.Spans[1:] {
		if sp.Parent != 1 || sp.End == 0 {
			t.Fatalf("span %+v malformed", sp)
		}
	}
}

func TestFlagNames(t *testing.T) {
	f := FlagShed | FlagViolating
	got := f.Names()
	if len(got) != 2 || got[0] != "shed" || got[1] != "violating" {
		t.Fatalf("Names() = %v", got)
	}
	if Flag(0).Names() != nil {
		t.Fatal("zero flag has names")
	}
	if got := FlagFailover.Names(); len(got) != 1 || got[0] != "failover" {
		t.Fatalf("FlagFailover.Names() = %v", got)
	}
	// Every defined flag bit must have a JSON spelling: a nameless bit would
	// silently vanish from recorder dumps.
	all := FlagError | FlagShed | FlagDegraded | FlagViolating | FlagFailover
	if names := all.Names(); len(names) != 5 {
		t.Fatalf("all-flags Names() = %v, want 5 entries", names)
	}
}
