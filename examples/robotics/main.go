// Robotics inverse kinematics: comparing the three checkers (and Quality
// mode).
//
// A 2-joint arm controller offloads inverse kinematics to the approximate
// accelerator. Large joint-angle errors are exactly the "few noticeable
// errors" the paper targets: one wild angle ruins a trajectory even when the
// average error is fine. The example runs the same workload under each
// light-weight checker and under the oracle, then shows Quality mode —
// maximum fixing while the CPU still hides behind the accelerator.
//
//	go run ./examples/robotics
package main

import (
	"fmt"
	"log"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/core"
	"rumba/internal/predictor"
	"rumba/internal/quality"
	"rumba/internal/trainer"
)

func main() {
	spec, err := bench.Get("inversek2j")
	if err != nil {
		log.Fatal(err)
	}
	train := spec.GenTrain(8000)
	acfg, err := trainer.TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train,
		trainer.DefaultAccelTrainConfig(spec.Name))
	if err != nil {
		log.Fatal(err)
	}
	acc, err := accel.New(acfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	preds, err := trainer.TrainPredictors(spec, train, trainer.Observe(spec, acc, train))
	if err != nil {
		log.Fatal(err)
	}
	test := spec.GenTest(8000)

	fmt.Println("inverse kinematics for 8000 target points, 90% target output quality")
	fmt.Printf("%-14s %-12s %-14s %-16s %-10s\n", "checker", "re-executed", "output error", ">20% errors left", "energy")
	checkers := []struct {
		name string
		p    predictor.Predictor
	}{
		{"linearErrors", preds.Linear},
		{"treeErrors", preds.Tree},
		{"EMA", preds.EMA},
	}
	for _, c := range checkers {
		tuner, err := core.NewTuner(core.ModeTOQ, 0.10)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := core.NewSystem(core.Config{Spec: spec, Accel: acc, Checker: c.p, Tuner: tuner})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.Run(test)
		if err != nil {
			log.Fatal(err)
		}
		large := 0
		for _, o := range rep.Outcomes {
			if !o.Fixed && o.TrueError > quality.LargeErrorThreshold {
				large++
			}
		}
		fmt.Printf("%-14s %-12s %-14s %-16s %-10s\n",
			c.name,
			fmt.Sprintf("%.1f%%", 100*float64(rep.Fixed)/float64(rep.Elements)),
			fmt.Sprintf("%.2f%%", 100*rep.OutputError),
			fmt.Sprintf("%d", large),
			fmt.Sprintf("%.2fx", rep.Energy.Savings))
	}

	// Quality mode: fix as much as the CPU can hide behind the accelerator.
	keepUp := acc.CyclesPerInvocation() / spec.Cost.CPUOps
	if keepUp > 1 {
		keepUp = 1
	}
	tuner, err := core.NewTuner(core.ModeQuality, keepUp)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(core.Config{Spec: spec, Accel: acc, Checker: preds.Tree, Tuner: tuner, InvocationSize: 400})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Run(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQuality mode (keep-up fraction %.1f%%): re-executed %.1f%%, error %.2f%% -> speedup %.2fx retained\n",
		100*keepUp, 100*float64(rep.Fixed)/float64(rep.Elements), 100*rep.OutputError, rep.Speedup)
}
