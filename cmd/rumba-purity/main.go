// Command rumba-purity runs the Section 2.2 region-purity analysis over a
// Go package and reports which functions can safely be re-executed by
// Rumba's recovery module. It is a thin wrapper over the type-aware driver
// in internal/analysis: calls resolve to typed objects, and the purity
// fixpoint runs across the package's module dependencies, so sibling
// helpers such as imageutil.Clamp255 are verified rather than asserted.
//
//	rumba-purity -dir internal/bench
//	rumba-purity -dir internal/bench -impure-only
//	rumba-purity -dir internal/bench -trust golang.org/x/exp/foo.Helper
//
// -trust remains for call targets outside the module; entries match the
// typed object a call binds to ("pkg.Func" or "full/import/path.Func"),
// never bare spelling, so a local function shadowing a trusted name is
// still analysed on its own body. For the full multi-analyzer suite
// (determinism, floatcmp, kernelsig, concurrency) see cmd/rumba-vet.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rumba/internal/purity"
)

func main() {
	dir := flag.String("dir", "internal/bench", "package directory to analyse")
	trust := flag.String("trust", "", "comma-separated external call targets asserted pure")
	impureOnly := flag.Bool("impure-only", false, "print only functions that failed the analysis")
	flag.Parse()

	var trusted []string
	if *trust != "" {
		trusted = strings.Split(*trust, ",")
	}
	rep, err := purity.AnalyzeDir(*dir, trusted...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rumba-purity:", err)
		os.Exit(1)
	}
	fmt.Printf("package %s: %d functions analysed, %.0f%% provably pure\n\n",
		rep.Package, len(rep.Verdicts), 100*rep.PureFraction())
	for _, v := range rep.Verdicts {
		if v.Pure {
			if !*impureOnly {
				fmt.Printf("  pure    %s\n", v.Function)
			}
			continue
		}
		fmt.Printf("  impure  %-30s %s\n", v.Function, strings.Join(v.Reasons, "; "))
	}
}
