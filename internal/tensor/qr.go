package tensor

import (
	"fmt"
	"math"
)

// SolveQR solves the least-squares problem min ||A x - b||^2 by Householder
// QR factorisation. A must have at least as many rows as columns; A and b
// are destroyed. QR is numerically safer than the normal equations when the
// columns of A are nearly collinear (the condition number is not squared),
// at roughly twice the cost — the predictor trainers use the normal
// equations with a ridge for speed, and this routine when conditioning
// matters.
func SolveQR(a *Matrix, b []float64) ([]float64, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("tensor: SolveQR needs rows >= cols, got %dx%d", m, n)
	}
	if len(b) != m {
		panic("tensor: SolveQR shape mismatch")
	}
	// Householder triangularisation, applying each reflector to b as well.
	for k := 0; k < n; k++ {
		// Norm of the k-th column below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			v := a.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-13 {
			return nil, ErrSingular
		}
		if a.At(k, k) > 0 {
			norm = -norm
		}
		// Householder vector v (stored in place below the diagonal), with
		// v_k = a_kk - norm.
		akk := a.At(k, k) - norm
		a.Set(k, k, akk)
		// beta = 2 / (v^T v); v^T v = -2 * norm * akk (standard identity).
		vtv := -norm * akk
		if vtv <= 0 {
			return nil, ErrSingular
		}
		// Apply I - v v^T / vtv to the remaining columns and to b.
		for j := k + 1; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += a.At(i, k) * a.At(i, j)
			}
			f := dot / vtv
			for i := k; i < m; i++ {
				a.Set(i, j, a.At(i, j)-f*a.At(i, k))
			}
		}
		var dotB float64
		for i := k; i < m; i++ {
			dotB += a.At(i, k) * b[i]
		}
		fB := dotB / vtv
		for i := k; i < m; i++ {
			b[i] -= fB * a.At(i, k)
		}
		// The diagonal of R.
		a.Set(k, k, norm)
	}
	// Back substitution on the upper triangle.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		d := a.At(i, i)
		if math.Abs(d) < 1e-13 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// LeastSquaresQR solves min ||X w - y||^2 via Householder QR (see SolveQR).
// X and y are copied, not destroyed.
func LeastSquaresQR(x *Matrix, y []float64) ([]float64, error) {
	if len(y) != x.Rows {
		panic("tensor: LeastSquaresQR shape mismatch")
	}
	return SolveQR(x.Clone(), append([]float64(nil), y...))
}
