package analysis

import "testing"

func TestConcurrencyTable(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
		subs []string
	}{
		{
			name: "mutex parameter by value",
			src: `package p

import "sync"

func locked(mu sync.Mutex, x int) int {
	mu.Lock()
	defer mu.Unlock()
	return x
}`,
			want: 1,
			subs: []string{"passes sync.Mutex by value"},
		},
		{
			name: "mutex pointer parameter is fine",
			src: `package p

import "sync"

func locked(mu *sync.Mutex, x int) int {
	mu.Lock()
	defer mu.Unlock()
	return x
}`,
			want: 0,
		},
		{
			name: "waitgroup by value through a struct",
			src: `package p

import "sync"

type pool struct {
	wg sync.WaitGroup
}

func drain(p pool) { p.wg.Wait() }`,
			want: 1,
			subs: []string{"passes sync.WaitGroup by value"},
		},
		{
			name: "value receiver carrying a lock",
			src: `package p

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c counter) peek() int { return c.n }`,
			want: 1,
			subs: []string{"receiver passes sync.Mutex"},
		},
		{
			name: "pointer receiver carrying a lock is fine",
			src: `package p

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}`,
			want: 0,
		},
		{
			name: "goroutine capturing a range loop variable",
			src: `package p

func spawn(xs []int, f func(int)) {
	for _, x := range xs {
		go func() {
			f(x)
		}()
	}
}`,
			want: 1,
			subs: []string{"captures loop variable x"},
		},
		{
			name: "loop variable passed as argument is fine",
			src: `package p

func spawn(xs []int, f func(int)) {
	for _, x := range xs {
		go func(v int) {
			f(v)
		}(x)
	}
}`,
			want: 0,
		},
		{
			name: "goroutine sending on a caller-owned channel without select",
			src: `package p

func produce(out chan<- int, n int) {
	go func() {
		for i := 0; i < n; i++ {
			out <- i
		}
	}()
}`,
			want: 1,
			subs: []string{"no cancellation path"},
		},
		{
			name: "select with done case is fine",
			src: `package p

func produce(out chan<- int, done <-chan struct{}, n int) {
	go func() {
		for i := 0; i < n; i++ {
			select {
			case out <- i:
			case <-done:
				return
			}
		}
	}()
}`,
			want: 0,
		},
		{
			name: "send on a locally created channel is the function's own protocol",
			src: `package p

func pipeline(n int) <-chan int {
	out := make(chan int, n)
	go func() {
		defer close(out)
		for i := 0; i < n; i++ {
			out <- i
		}
	}()
	return out
}`,
			want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := runFixture(t, tc.src, AnalyzerConcurrency)
			expectDiags(t, diags, "concurrency", tc.want, tc.subs...)
		})
	}
}
