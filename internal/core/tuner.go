package core

import (
	"encoding/json"
	"fmt"
)

// TunerMode selects the online-tuning policy of Section 3.4.
type TunerMode int

const (
	// ModeTOQ holds the threshold at the user's target-output-quality
	// error bound: any element whose predicted error exceeds the bound is
	// re-executed.
	ModeTOQ TunerMode = iota
	// ModeEnergy adapts the threshold to keep the number of re-executed
	// iterations within a per-invocation iteration budget derived from the
	// user's energy target.
	ModeEnergy
	// ModeQuality maximises re-execution subject to the CPU keeping up
	// with the accelerator (no slowdown).
	ModeQuality
)

// String implements fmt.Stringer.
func (m TunerMode) String() string {
	switch m {
	case ModeTOQ:
		return "TOQ"
	case ModeEnergy:
		return "Energy"
	case ModeQuality:
		return "Quality"
	default:
		return fmt.Sprintf("TunerMode(%d)", int(m))
	}
}

// MarshalText implements encoding.TextMarshaler so serialized tuner state
// spells modes by name rather than by ordinal.
func (m TunerMode) MarshalText() ([]byte, error) {
	switch m {
	case ModeTOQ, ModeEnergy, ModeQuality:
		return []byte(m.String()), nil
	default:
		return nil, fmt.Errorf("core: cannot marshal unknown tuner mode %d", int(m))
	}
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (m *TunerMode) UnmarshalText(text []byte) error {
	switch string(text) {
	case "TOQ":
		*m = ModeTOQ
	case "Energy":
		*m = ModeEnergy
	case "Quality":
		*m = ModeQuality
	default:
		return fmt.Errorf("core: unknown tuner mode %q", text)
	}
	return nil
}

// Tuner adjusts the detection threshold between accelerator invocations.
// The zero value is not usable; construct with NewTuner.
type Tuner struct {
	Mode TunerMode
	// Threshold is the current firing threshold on the predicted error.
	Threshold float64

	// TargetError is the TOQ-mode error bound (1 - TOQ).
	TargetError float64
	// IterationBudget is the Energy-mode per-invocation re-execution
	// budget, as a fraction of invocation elements.
	IterationBudget float64
	// KeepUpFraction is the Quality-mode bound: the largest re-execution
	// fraction for which the CPU still hides behind the accelerator
	// (accelerator cycles per iteration / CPU recompute cycles).
	KeepUpFraction float64

	minThreshold, maxThreshold float64
}

// NewTuner builds a tuner. For ModeTOQ, target is the error bound (e.g. 0.10
// for 90% TOQ) and is also the fixed threshold. For ModeEnergy, target is
// the iteration budget fraction. For ModeQuality, target is the keep-up
// fraction.
func NewTuner(mode TunerMode, target float64) (*Tuner, error) {
	if target < 0 {
		return nil, fmt.Errorf("core: negative tuner target %v", target)
	}
	t := &Tuner{Mode: mode, minThreshold: 1e-4, maxThreshold: 10}
	switch mode {
	case ModeTOQ:
		t.TargetError = target
		t.Threshold = target
	case ModeEnergy:
		if target == 0 || target > 1 {
			return nil, fmt.Errorf("core: energy-mode budget %v must be in (0,1]", target)
		}
		t.IterationBudget = target
		t.Threshold = 0.1
	case ModeQuality:
		if target == 0 || target > 1 {
			return nil, fmt.Errorf("core: quality-mode keep-up fraction %v must be in (0,1]", target)
		}
		t.KeepUpFraction = target
		t.Threshold = 0.1
	default:
		return nil, fmt.Errorf("core: unknown tuner mode %v", mode)
	}
	return t, nil
}

// InvocationStats summarises one accelerator invocation for the tuner.
type InvocationStats struct {
	Elements int
	Fixed    int
	// CPUUtilisation is the recovery CPU's utilisation during the
	// invocation (Quality mode input).
	CPUUtilisation float64
}

// Observe updates the threshold after an invocation, per Section 3.4:
//
//   - TOQ: the threshold stays pinned at the error bound.
//   - Energy: going over the iteration budget raises the threshold (fewer
//     fixes next time); finishing under budget lowers it.
//   - Quality: an underutilised CPU means capacity for more fixes (lower
//     threshold); unfinished re-executions when the accelerator completes
//     mean the threshold must rise.
func (t *Tuner) Observe(s InvocationStats) {
	if s.Elements <= 0 {
		return
	}
	fixedFrac := float64(s.Fixed) / float64(s.Elements)
	switch t.Mode {
	case ModeTOQ:
		t.Threshold = t.TargetError
	case ModeEnergy:
		// Proportional control: overshooting the iteration budget by 2x
		// doubles the threshold, undershooting relaxes it. A small
		// deadband avoids oscillation at the budget.
		ratio := fixedFrac / t.IterationBudget
		switch {
		case ratio > 1.05:
			t.scale(minf(ratio, 2.0))
		case ratio < 0.95:
			t.scale(maxf(ratio, 0.8))
		}
	case ModeQuality:
		if fixedFrac > t.KeepUpFraction {
			// The CPU fell behind: re-execute less next invocation.
			t.raise()
		} else if s.CPUUtilisation < 0.9 {
			// Headroom left: fix more next invocation.
			t.lower()
		}
	}
}

// tunerJSON is the serialized form of a Tuner. It spells every field out,
// including the threshold clamp bounds, so a restored tuner resumes with
// exactly the dynamics it had when snapshotted.
type tunerJSON struct {
	Mode            TunerMode `json:"mode"`
	Threshold       float64   `json:"threshold"`
	TargetError     float64   `json:"targetError,omitempty"`
	IterationBudget float64   `json:"iterationBudget,omitempty"`
	KeepUpFraction  float64   `json:"keepUpFraction,omitempty"`
	MinThreshold    float64   `json:"minThreshold"`
	MaxThreshold    float64   `json:"maxThreshold"`
}

// MarshalJSON serialises the tuner's complete state — mode, targets, live
// threshold and clamp bounds — so an online deployment can snapshot its
// quality-control state and resume it after a restart (rumba-serve persists
// one tuner per tenant×kernel this way).
func (t *Tuner) MarshalJSON() ([]byte, error) {
	return json.Marshal(tunerJSON{
		Mode:            t.Mode,
		Threshold:       t.Threshold,
		TargetError:     t.TargetError,
		IterationBudget: t.IterationBudget,
		KeepUpFraction:  t.KeepUpFraction,
		MinThreshold:    t.minThreshold,
		MaxThreshold:    t.maxThreshold,
	})
}

// UnmarshalJSON restores a serialised tuner. Missing clamp bounds (or a
// snapshot written before they were serialised) fall back to the NewTuner
// defaults rather than leaving a tuner that can never move.
func (t *Tuner) UnmarshalJSON(data []byte) error {
	var raw tunerJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.Threshold < 0 {
		return fmt.Errorf("core: negative serialised threshold %v", raw.Threshold)
	}
	if raw.MinThreshold <= 0 {
		raw.MinThreshold = 1e-4
	}
	if raw.MaxThreshold <= 0 {
		raw.MaxThreshold = 10
	}
	if raw.MinThreshold > raw.MaxThreshold {
		return fmt.Errorf("core: serialised threshold bounds inverted: min %v > max %v",
			raw.MinThreshold, raw.MaxThreshold)
	}
	t.Mode = raw.Mode
	t.Threshold = raw.Threshold
	t.TargetError = raw.TargetError
	t.IterationBudget = raw.IterationBudget
	t.KeepUpFraction = raw.KeepUpFraction
	t.minThreshold = raw.MinThreshold
	t.maxThreshold = raw.MaxThreshold
	return nil
}

func (t *Tuner) raise() { t.scale(1.3) }
func (t *Tuner) lower() { t.scale(0.8) }

func (t *Tuner) scale(f float64) {
	t.Threshold *= f
	if t.Threshold > t.maxThreshold {
		t.Threshold = t.maxThreshold
	}
	if t.Threshold < t.minThreshold {
		t.Threshold = t.minThreshold
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
