// Package bundle serialises everything the offline trainers produce for one
// application — the accelerator configuration and the trained checkers —
// into a single artifact. Figure 4 shows these "embedded in the binary";
// here the binary's embedded section is a JSON blob that rumba-train writes
// and a deployment loads at startup.
package bundle

import (
	"encoding/json"
	"fmt"
	"os"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/predictor"
	"rumba/internal/trainer"
)

// FormatVersion guards against loading artifacts written by an incompatible
// build.
const FormatVersion = 1

// Bundle is the complete offline-training artifact for one benchmark.
type Bundle struct {
	Version   int    `json:"version"`
	Benchmark string `json:"benchmark"`

	Accel accel.Config `json:"accel"`

	Linear *predictor.Linear `json:"linear"`
	Tree   *predictor.Tree   `json:"tree"`
	// EMAHistory and EMAScale reconstruct the EMA checker (its runtime
	// state is not persisted).
	EMAHistory int     `json:"emaHistory"`
	EMAScale   float64 `json:"emaScale"`
}

// New assembles a bundle from training outputs.
func New(spec *bench.Spec, acfg accel.Config, preds trainer.PredictorSet) (*Bundle, error) {
	if spec == nil || acfg.Net == nil {
		return nil, fmt.Errorf("bundle: incomplete inputs")
	}
	b := &Bundle{
		Version:   FormatVersion,
		Benchmark: spec.Name,
		Accel:     acfg,
		Linear:    preds.Linear,
		Tree:      preds.Tree,
	}
	if preds.EMA != nil {
		b.EMAHistory = preds.EMA.N
		b.EMAScale = preds.EMA.Scale
	}
	return b, nil
}

// Validate checks internal consistency and that the named benchmark exists.
func (b *Bundle) Validate() (*bench.Spec, error) {
	if b.Version != FormatVersion {
		return nil, fmt.Errorf("bundle: version %d, this build reads %d", b.Version, FormatVersion)
	}
	spec, err := bench.Get(b.Benchmark)
	if err != nil {
		return nil, err
	}
	if b.Accel.Net == nil || b.Accel.Scaler == nil {
		return nil, fmt.Errorf("bundle: missing accelerator configuration")
	}
	if b.Accel.Net.Topo.Outputs() != spec.OutDim {
		return nil, fmt.Errorf("bundle: accelerator outputs %d, benchmark %s wants %d",
			b.Accel.Net.Topo.Outputs(), spec.Name, spec.OutDim)
	}
	return spec, nil
}

// Predictors reconstructs the checker set.
func (b *Bundle) Predictors() trainer.PredictorSet {
	ps := trainer.PredictorSet{Linear: b.Linear, Tree: b.Tree}
	if b.EMAHistory > 0 {
		ps.EMA = predictor.NewEMA(b.EMAHistory, b.EMAScale)
	}
	return ps
}

// Accelerator builds the configured accelerator (paper-default PEs).
func (b *Bundle) Accelerator() (*accel.Accelerator, error) {
	return accel.New(b.Accel, 0)
}

// Save writes the bundle as indented JSON.
func Save(path string, b *Bundle) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	return nil
}

// Load reads and validates a bundle.
func Load(path string) (*Bundle, *bench.Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("bundle: %w", err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, nil, fmt.Errorf("bundle: %w", err)
	}
	spec, err := b.Validate()
	if err != nil {
		return nil, nil, err
	}
	return &b, spec, nil
}
