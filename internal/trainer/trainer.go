// Package trainer implements the offline half of the Rumba system block
// diagram (Figure 4): the accelerator trainer, which compiles a kernel to an
// NPU configuration by fitting a neural network on the training data, and
// the error-predictor trainer, which fits the light-weight checkers on the
// approximation errors the trained accelerator produces on that same data.
// Both resulting configurations are "embedded in the binary" — here, carried
// in serialisable structs.
package trainer

import (
	"fmt"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/nn"
	"rumba/internal/predictor"
	"rumba/internal/quality"
)

// AccelTrainConfig controls the accelerator trainer.
type AccelTrainConfig struct {
	// NN carries the backprop hyper-parameters.
	NN nn.TrainConfig
	// MaxTrainSamples subsamples very large training sets (the 512x512
	// sobel training image has 262k windows); <= 0 keeps everything.
	MaxTrainSamples int
}

// DefaultAccelTrainConfig returns the trainer settings used throughout the
// evaluation.
func DefaultAccelTrainConfig(name string) AccelTrainConfig {
	cfg := AccelTrainConfig{NN: nn.DefaultTrainConfig(), MaxTrainSamples: 12000}
	cfg.NN.Seed = "trainer/" + name
	switch name {
	case "jmeint":
		// The classification net needs more pressure to separate the
		// classes.
		cfg.NN.Epochs = 80
		cfg.NN.LearningRate = 0.1
	case "jpeg":
		cfg.NN.Epochs = 120
		cfg.NN.LearningRate = 0.1
	case "fft", "inversek2j":
		cfg.NN.Epochs = 120
	}
	return cfg
}

// TrainAccelerator fits a network of the given topology to the kernel's
// training set and returns the accelerator configuration. features selects
// the kernel-input subset the network consumes (nil = all).
func TrainAccelerator(spec *bench.Spec, topo nn.Topology, features []int, train nn.Dataset, cfg AccelTrainConfig) (accel.Config, error) {
	if err := topo.Validate(); err != nil {
		return accel.Config{}, err
	}
	// Project the kernel inputs down to the network's feature view.
	proj := nn.Dataset{
		Inputs:  make([][]float64, 0, train.Len()),
		Targets: make([][]float64, 0, train.Len()),
	}
	stride := 1
	if cfg.MaxTrainSamples > 0 && train.Len() > cfg.MaxTrainSamples {
		stride = (train.Len() + cfg.MaxTrainSamples - 1) / cfg.MaxTrainSamples
	}
	for i := 0; i < train.Len(); i += stride {
		proj.Inputs = append(proj.Inputs, projectFeatures(train.Inputs[i], features))
		proj.Targets = append(proj.Targets, train.Targets[i])
	}
	scaler := nn.FitScaler(proj.Inputs, proj.Targets)
	scaled := scaler.ScaleDataset(proj)
	net := nn.New(topo, nn.Sigmoid, nn.Sigmoid, seedStream(spec.Name, topo))
	if _, err := net.Train(scaled, cfg.NN); err != nil {
		return accel.Config{}, fmt.Errorf("trainer: %s accelerator training: %w", spec.Name, err)
	}
	return accel.Config{Net: net, Scaler: scaler, Features: features}, nil
}

func projectFeatures(in []float64, features []int) []float64 {
	if features == nil {
		return in
	}
	out := make([]float64, len(features))
	for i, idx := range features {
		out[i] = in[idx]
	}
	return out
}

func seedStream(name string, topo nn.Topology) *rngStream {
	return newRngStream("trainer/init/" + name + "/" + topo.String())
}

// Observation is the result of running a configured accelerator over a
// dataset: the approximate outputs and the per-element errors under the
// benchmark's metric.
type Observation struct {
	Approx [][]float64
	Errors []float64
}

// Invoker abstracts the approximate engine being observed: the NPU
// accelerator or a software approximator (anything with the executor's
// Invoke method satisfies it).
type Invoker interface {
	Invoke(in []float64) []float64
}

// Observe runs the approximate engine over a dataset and measures every
// element's error against the exact targets.
func Observe(spec *bench.Spec, acc Invoker, d nn.Dataset) Observation {
	obs := Observation{
		Approx: make([][]float64, d.Len()),
		Errors: make([]float64, d.Len()),
	}
	for i := range d.Inputs {
		out := acc.Invoke(d.Inputs[i])
		obs.Approx[i] = out
		obs.Errors[i] = quality.ElementError(spec.Metric, d.Targets[i], out, spec.Scale)
	}
	return obs
}

// PredictorSet bundles the three trained checkers for one benchmark.
type PredictorSet struct {
	Linear *predictor.Linear
	Tree   *predictor.Tree
	EMA    *predictor.EMA
}

// EMAHistory is the moving-average window length used for the EMA checker.
const EMAHistory = 16

// TrainPredictors fits the light-weight checkers on the training-run
// observation (inputs -> observed element errors). The EMA checker needs no
// fitting beyond its output scale.
func TrainPredictors(spec *bench.Spec, train nn.Dataset, obs Observation) (PredictorSet, error) {
	if len(obs.Errors) != train.Len() {
		return PredictorSet{}, fmt.Errorf("trainer: observation size %d != dataset size %d", len(obs.Errors), train.Len())
	}
	lin, err := predictor.FitLinear(train.Inputs, obs.Errors, spec.RumbaFeatures)
	if err != nil {
		return PredictorSet{}, fmt.Errorf("trainer: %s linear predictor: %w", spec.Name, err)
	}
	tree, err := predictor.FitTree(train.Inputs, obs.Errors, spec.RumbaFeatures, predictor.TreeConfig{})
	if err != nil {
		return PredictorSet{}, fmt.Errorf("trainer: %s tree predictor: %w", spec.Name, err)
	}
	scale := emaScale(obs.Approx)
	return PredictorSet{
		Linear: lin,
		Tree:   tree,
		EMA:    predictor.NewEMA(EMAHistory, scale),
	}, nil
}

// emaScale estimates the output magnitude scale used to normalise EMA
// deviations into the element-error range.
func emaScale(approx [][]float64) float64 {
	var maxAbs float64
	for _, out := range approx {
		for _, v := range out {
			if a := abs(v); a > maxAbs {
				maxAbs = a
			}
		}
	}
	if maxAbs == 0 {
		return 1
	}
	return maxAbs
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// SelectChecker picks the light-weight checker that reaches the target
// output quality with the fewest re-executions on a held-out slice of the
// training data — automating the paper's observation that "error prediction
// accuracy of a particular scheme is benchmark dependent". It returns the
// winning predictor and its name.
func SelectChecker(spec *bench.Spec, train nn.Dataset, obs Observation, ps PredictorSet, targetError float64) (predictor.Predictor, string) {
	cut := train.Len() * 4 / 5
	if cut < 1 || cut >= train.Len() {
		return ps.Tree, ps.Tree.Name() // dataset too small to split; tree default
	}
	holdIn := train.Inputs[cut:]
	holdApprox := obs.Approx[cut:]
	holdErrs := obs.Errors[cut:]

	fixesFor := func(p predictor.Predictor) int {
		p.Reset()
		preds := make([]float64, len(holdIn))
		for i := range holdIn {
			preds[i] = p.PredictError(holdIn[i], holdApprox[i])
		}
		return len(fixesForTargetIdx(holdErrs, preds, targetError))
	}
	candidates := []predictor.Predictor{ps.Tree, ps.Linear, ps.EMA}
	best := candidates[0]
	bestFixes := fixesFor(best)
	for _, c := range candidates[1:] {
		if c == nil {
			continue
		}
		if f := fixesFor(c); f < bestFixes {
			best, bestFixes = c, f
		}
	}
	return best, best.Name()
}

// fixesForTargetIdx is the minimal top-k-by-score fix set reaching the
// target mean error (a local copy of the core package's operating-point
// search, kept here to avoid a trainer -> core dependency).
func fixesForTargetIdx(trueErrs, scores []float64, targetErr float64) []int {
	n := len(trueErrs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by descending score (held-out slices are small).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && scores[idx[j]] > scores[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	var total float64
	for _, e := range trueErrs {
		total += e
	}
	removed := 0.0
	k := 0
	for k < n && (total-removed)/float64(n) > targetErr {
		removed += trueErrs[idx[k]]
		k++
	}
	return idx[:k]
}
