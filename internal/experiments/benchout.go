package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"

	"rumba/internal/buildinfo"
)

// This file is the BENCH_*.json writer: every per-machine benchmark baseline
// an experiment emits goes through writeBenchJSON, which (a) stamps the
// payload with the provenance a later regression comparison needs — which
// commit produced the numbers, on what toolchain and hardware shape — and
// (b) writes atomically via temp file + rename, so a baseline consumer (or a
// crashed run) never observes a half-written JSON document.

// BenchStamp is the provenance header carried by every benchmark baseline:
// the shared buildinfo record (commit, toolchain, machine shape — the same
// one /v1/version serves) plus the write time.
type BenchStamp struct {
	buildinfo.Info
	// WrittenAt is the RFC 3339 UTC write time.
	WrittenAt string `json:"written_at"`
}

func newBenchStamp() BenchStamp {
	return BenchStamp{
		Info:      buildinfo.Resolve(),
		WrittenAt: time.Now().UTC().Format(time.RFC3339),
	}
}

// writeBenchJSON marshals payload (indented, trailing newline) and writes it
// to path atomically: the bytes land in a temp file in path's directory and
// replace path with one rename. The temp file is removed on any failure.
func writeBenchJSON(path string, payload any) error {
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".bench-*.json.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	// CreateTemp opens 0600; baselines are shareable artifacts like the rest
	// of the results directory.
	if err := tmp.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
