// Command rumba-train runs the offline half of the Rumba system (Figure 4)
// for one benchmark: it trains the approximate-accelerator network and the
// error predictors, reports their quality, and writes the configuration that
// would be embedded in the application binary to a JSON file.
//
//	rumba-train -benchmark sobel -out sobel.json
//	rumba-train -benchmark fft -search          # topology search instead of Table 1
package main

import (
	"flag"
	"fmt"
	"os"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/bundle"
	"rumba/internal/quality"
	"rumba/internal/trainer"
)

func main() {
	name := flag.String("benchmark", "sobel", "benchmark to train (see rumba-bench -exp table1)")
	out := flag.String("out", "", "write the training bundle (accelerator + checkers) JSON to this file")
	trainN := flag.Int("train", 0, "training samples (0 = Table 1 size)")
	testN := flag.Int("test", 0, "test samples (0 = Table 1 size)")
	epochs := flag.Int("epochs", 0, "training epochs (0 = default)")
	search := flag.Bool("search", false, "run the NPU topology search instead of using the Table 1 topology")
	flag.Parse()

	if err := run(*name, *out, *trainN, *testN, *epochs, *search); err != nil {
		fmt.Fprintln(os.Stderr, "rumba-train:", err)
		os.Exit(1)
	}
}

func run(name, out string, trainN, testN, epochs int, search bool) error {
	spec, err := bench.Get(name)
	if err != nil {
		return err
	}
	train := spec.GenTrain(trainN)
	test := spec.GenTest(testN)
	cfg := trainer.DefaultAccelTrainConfig(name)
	if epochs > 0 {
		cfg.NN.Epochs = epochs
	}

	topo := spec.RumbaTopo
	if search {
		best, all, err := trainer.SearchTopology(spec, train, nil, 0.15, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("topology search over %d candidates:\n", len(all))
		for _, r := range all {
			fmt.Printf("  %-14s %5d MACs  held-out error %.2f%%\n", r.Topo, r.MACs, 100*r.Error)
		}
		fmt.Printf("selected: %s\n\n", best.Topo)
		topo = best.Topo
	}

	fmt.Printf("training %s accelerator (%s) on %d samples, %d epochs\n",
		name, topo, train.Len(), cfg.NN.Epochs)
	acfg, err := trainer.TrainAccelerator(spec, topo, spec.RumbaFeatures, train, cfg)
	if err != nil {
		return err
	}
	acc, err := accel.New(acfg, 0)
	if err != nil {
		return err
	}

	trainObs := trainer.Observe(spec, acc, train)
	preds, err := trainer.TrainPredictors(spec, train, trainObs)
	if err != nil {
		return err
	}

	testObs := trainer.Observe(spec, acc, test)
	sum := quality.Summarize(testObs.Errors)
	fmt.Printf("test-set output error: %.2f%% (max %.1f%%, %.1f%% of elements above the %.0f%% large-error bound)\n",
		100*sum.Mean, 100*sum.Max, 100*sum.LargeFraction, 100*quality.LargeErrorThreshold)
	fmt.Printf("checkers: linear %d-weight model; tree depth %d, %d leaves; EMA history %d\n",
		len(preds.Linear.Weights), preds.Tree.Depth, preds.Tree.LeafCount(), preds.EMA.N)

	if out != "" {
		b, err := bundle.New(spec, acfg, preds)
		if err != nil {
			return err
		}
		if err := bundle.Save(out, b); err != nil {
			return err
		}
		fmt.Printf("training bundle (accelerator + checkers) written to %s\n", out)
	}
	return nil
}
