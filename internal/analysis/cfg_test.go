package analysis

import (
	"go/ast"
	"testing"
)

// cfgFor loads a one-file fixture and builds the CFG of the named function.
func cfgFor(t *testing.T, src, fn string) (*CFG, *Package) {
	t.Helper()
	loader, err := SharedLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadSource(map[string]string{"cfg.go": src})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn && fd.Body != nil {
				return buildCFG(pkg.Info, fd.Body), pkg
			}
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil, nil
}

// callsIn collects the names of direct calls appearing in the given block
// set, skipping function-literal bodies.
func callsIn(blocks map[*cfgBlock]bool) map[string]bool {
	out := map[string]bool{}
	for b := range blocks {
		for _, n := range b.nodes {
			ast.Inspect(n, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
				return true
			})
		}
	}
	return out
}

func TestCFGWarmBlocksSkipPanicGuards(t *testing.T) {
	cfg, _ := cfgFor(t, `package p

func coldCall() int  { return 0 }
func warmCall() int  { return 0 }
func lateCold() int  { return 0 }

func guarded(n int) int {
	if n < 0 {
		coldCall()
		panic("negative")
	}
	s := warmCall()
	switch {
	case n > 100:
		lateCold()
		panic("huge")
	case n > 10:
		s++
	}
	return s
}
`, "guarded")
	warm := cfg.warmBlocks()
	calls := callsIn(warm)
	if calls["coldCall"] || calls["lateCold"] {
		t.Errorf("panic-only blocks counted as warm: %v", calls)
	}
	if !calls["warmCall"] {
		t.Errorf("normal path missing from warm blocks: %v", calls)
	}
}

func TestCFGLoopsBreaksAndGoto(t *testing.T) {
	cfg, _ := cfgFor(t, `package p

func onExit() {}
func inLoop() {}
func afterLabel() {}
func dead() {}

func loops(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			inLoop()
			if j == 3 {
				continue outer
			}
			if j == 4 {
				break outer
			}
		}
	}
	if n == 0 {
		goto end
	}
	afterLabel()
end:
	onExit()
	return
	dead() //nolint
}
`, "loops")
	warm := cfg.warmBlocks()
	calls := callsIn(warm)
	for _, want := range []string{"inLoop", "afterLabel", "onExit"} {
		if !calls[want] {
			t.Errorf("call %s missing from warm blocks", want)
		}
	}
	if calls["dead"] {
		t.Error("statement after return is reachable")
	}
	// Everything reachable can reach the exit in this function.
	reach := cfg.reachableFromEntry()
	if callsIn(reach)["dead"] {
		t.Error("dead() reachable from entry")
	}
}

func TestCFGSwitchFallthroughAndSelect(t *testing.T) {
	cfg, _ := cfgFor(t, `package p

func caseA() {}
func caseB() {}
func sel(ch chan int) {}

func sw(n int, ch chan int) {
	switch n {
	case 1:
		caseA()
		fallthrough
	case 2:
		caseB()
	}
	select {
	case v := <-ch:
		_ = v
	default:
	}
}
`, "sw")
	warm := cfg.warmBlocks()
	calls := callsIn(warm)
	if !calls["caseA"] || !calls["caseB"] {
		t.Errorf("switch bodies missing from warm blocks: %v", calls)
	}
}

// TestSolveForwardOrdering: a trivial forward analysis (set of "defined"
// names) must converge over a loop and respect joins: a name defined on only
// one branch is not definitely-defined after the merge.
func TestSolveForwardOrdering(t *testing.T) {
	cfg, _ := cfgFor(t, `package p

func f(c bool) int {
	x := 1
	y := 0
	if c {
		y = 2
	} else {
		x = 3
	}
	return x + y
}
`, "f")
	type state = map[string]bool
	clone := func(s state) state {
		out := state{}
		for k, v := range s {
			out[k] = v
		}
		return out
	}
	join := func(dst, src state) bool {
		changed := false
		for k := range dst {
			if !src[k] {
				delete(dst, k)
				changed = true
			}
		}
		return changed
	}
	assigned := func(n ast.Node, s state) {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					s[id.Name] = true
				}
			}
		}
	}
	transfer := func(b *cfgBlock, in state) state {
		for _, n := range b.nodes {
			assigned(n, in)
		}
		return in
	}
	in := solveForward(cfg, state{}, clone, join, transfer)
	exitIn, ok := in[cfg.exit]
	if !ok {
		t.Fatal("exit block never reached")
	}
	// Both x and y are assigned on every path (initial := counts).
	if !exitIn["x"] || !exitIn["y"] {
		t.Errorf("x/y should be definitely assigned at exit: %v", exitIn)
	}
}
