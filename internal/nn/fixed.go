package nn

import (
	"fmt"
	"math"
)

// Fixed-point inference. The NPU hardware the paper builds on computes in
// fixed point, not float64; this file adds a quantised execution mode so
// the accelerator model can reproduce that error source and so the
// float-vs-fixed ablation bench can measure its contribution.
//
// Numbers use a signed Q(m.n) format held in int64: value = raw / 2^n.
// Weights and activations share one format; the MAC accumulator is wide
// enough (int64) that intermediate sums do not overflow for the topology
// sizes the NPU permits.

// FixedFormat describes a Q(m.n) fixed-point representation.
type FixedFormat struct {
	// IntBits is m: magnitude bits before the binary point (sign excluded).
	IntBits int
	// FracBits is n: bits after the binary point.
	FracBits int
}

// DefaultFixedFormat is Q6.10: 16-bit words matching typical NPU datapaths
// — range ±64 with ~0.001 resolution, comfortable for normalised
// activations and trained weight magnitudes.
var DefaultFixedFormat = FixedFormat{IntBits: 6, FracBits: 10}

// Validate checks the format is representable.
func (f FixedFormat) Validate() error {
	if f.IntBits < 1 || f.FracBits < 1 || f.IntBits+f.FracBits > 62 {
		return fmt.Errorf("nn: invalid fixed format Q%d.%d", f.IntBits, f.FracBits)
	}
	return nil
}

// scale returns 2^FracBits.
func (f FixedFormat) scale() float64 { return float64(int64(1) << uint(f.FracBits)) }

// max returns the largest representable value.
func (f FixedFormat) max() float64 {
	return float64(int64(1)<<uint(f.IntBits)) - 1/f.scale()
}

// Quantize rounds v to the nearest representable value, saturating at the
// format's range (hardware saturating arithmetic).
func (f FixedFormat) Quantize(v float64) float64 {
	limit := f.max()
	if v > limit {
		return limit
	}
	if v < -limit {
		return -limit
	}
	s := f.scale()
	return math.Round(v*s) / s
}

// QuantizeSlice quantises every element into a fresh slice.
func (f FixedFormat) QuantizeSlice(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = f.Quantize(v)
	}
	return out
}

// Resolution returns the representable step size.
func (f FixedFormat) Resolution() float64 { return 1 / f.scale() }

// FixedNetwork is a quantised view of a trained network: weights and biases
// are rounded to the format once at construction, and every activation is
// re-quantised after the non-linearity, exactly as a fixed-point datapath
// with a sigmoid lookup table behaves.
type FixedNetwork struct {
	Format FixedFormat
	net    *Network
}

// Quantize builds the fixed-point view of a network. The original network is
// not modified.
func Quantize(n *Network, f FixedFormat) (*FixedNetwork, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	q := n.Clone()
	for li := range q.layers {
		l := &q.layers[li]
		for j, w := range l.W {
			l.W[j] = f.Quantize(w)
		}
		for j, b := range l.B {
			l.B[j] = f.Quantize(b)
		}
	}
	return &FixedNetwork{Format: f, net: q}, nil
}

// Topo returns the underlying topology.
func (q *FixedNetwork) Topo() Topology { return q.net.Topo }

// Forward runs fixed-point inference: inputs are quantised, each layer's
// pre-activations accumulate quantised products, and the activation output
// is quantised again (the sigmoid LUT's output register).
func (q *FixedNetwork) Forward(in []float64) []float64 {
	f := q.Format
	cur := f.QuantizeSlice(in)
	for li := range q.net.layers {
		l := &q.net.layers[li]
		next := make([]float64, l.Out)
		for o := 0; o < l.Out; o++ {
			row := l.W[o*l.In : (o+1)*l.In]
			s := l.B[o]
			for j, w := range row {
				// Product of two Q values re-quantised into the format —
				// the hardware truncates the extra fraction bits after
				// each MAC's shift.
				s += f.Quantize(w * cur[j])
			}
			next[o] = f.Quantize(l.Act.apply(f.Quantize(s)))
		}
		cur = next
	}
	return cur
}

// QuantizationError measures the mean absolute output difference between
// the float and fixed-point executions over a set of inputs.
func (q *FixedNetwork) QuantizationError(inputs [][]float64) float64 {
	if len(inputs) == 0 {
		return 0
	}
	var sum float64
	var n int
	for _, in := range inputs {
		fl := q.net.Forward(in)
		fx := q.Forward(in)
		for j := range fl {
			sum += math.Abs(fl[j] - fx[j])
			n++
		}
	}
	return sum / float64(n)
}
