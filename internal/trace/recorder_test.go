package trace

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func finished(name string, f Flag) *Trace {
	tr := New(name, 0)
	sp := tr.Root().Start("op")
	sp.End()
	if f != 0 {
		tr.SetFlag(f)
	}
	tr.Finish()
	return tr
}

func TestRecorderRetainsLastN(t *testing.T) {
	r := NewRecorder(RecorderConfig{Capacity: 4})
	for i := 0; i < 10; i++ {
		r.Record(finished("t", 0))
	}
	d := r.Snapshot()
	if len(d.Traces) != 4 {
		t.Fatalf("retained %d traces, want 4", len(d.Traces))
	}
	for i := 1; i < len(d.Traces); i++ {
		if d.Traces[i].ID <= d.Traces[i-1].ID {
			t.Fatalf("dump out of order: %s after %s", d.Traces[i].ID, d.Traces[i-1].ID)
		}
	}
	if d.Recorded != 10 {
		t.Fatalf("recorded %d, want 10", d.Recorded)
	}
	if d.Offered != 10 {
		t.Fatalf("offered %d, want 10", d.Offered)
	}
}

func TestRecorderTailSamplingKeepsFlagged(t *testing.T) {
	r := NewRecorder(RecorderConfig{Capacity: 8, SampleEvery: 4})
	var degraded *Trace
	for i := 0; i < 16; i++ {
		r.Record(finished("healthy", 0))
	}
	degraded = finished("bad", FlagDegraded)
	r.Record(degraded)
	r.Record(finished("shed", FlagShed))

	d := r.Snapshot()
	healthy, flagged := 0, 0
	for _, tr := range d.Traces {
		if len(tr.Flags) > 0 {
			flagged++
		} else {
			healthy++
		}
	}
	if healthy != 4 {
		t.Fatalf("sampled %d healthy traces of 16 at 1-in-4, want 4", healthy)
	}
	if flagged != 2 {
		t.Fatalf("flagged traces retained = %d, want 2 (always keep)", flagged)
	}
	if d.Offered != 18 || d.Recorded != 6 {
		t.Fatalf("offered/recorded = %d/%d, want 18/6", d.Offered, d.Recorded)
	}
}

func TestRecorderFlaggedSurviveHealthyFlood(t *testing.T) {
	r := NewRecorder(RecorderConfig{Capacity: 2})
	r.Record(finished("bad", FlagViolating))
	for i := 0; i < 100; i++ {
		r.Record(finished("healthy", 0))
	}
	d := r.Snapshot()
	found := false
	for _, tr := range d.Traces {
		for _, f := range tr.Flags {
			if f == "violating" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("flagged trace evicted by healthy traffic")
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(finished("x", 0)) // must not panic
	r2 := NewRecorder(RecorderConfig{})
	r2.Record(nil)
	if d := r2.Snapshot(); len(d.Traces) != 0 {
		t.Fatalf("nil trace recorded: %+v", d)
	}
}

func TestRecorderServeHTTP(t *testing.T) {
	r := NewRecorder(RecorderConfig{Capacity: 8})
	r.Record(finished("ok", 0))
	r.Record(finished("bad", FlagDegraded))

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rumba/traces", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var d Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("dump does not parse: %v", err)
	}
	if len(d.Traces) != 2 {
		t.Fatalf("dump has %d traces, want 2", len(d.Traces))
	}
	for _, tr := range d.Traces {
		if len(tr.Spans) != 2 {
			t.Fatalf("trace %s has %d spans, want root+op", tr.ID, len(tr.Spans))
		}
	}

	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rumba/traces?flagged=1", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Traces) != 1 || len(d.Traces[0].Flags) == 0 {
		t.Fatalf("flagged filter returned %+v", d.Traces)
	}
}

func TestRecorderConcurrentRecordAndDump(t *testing.T) {
	r := NewRecorder(RecorderConfig{Capacity: 16, SampleEvery: 2})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f := Flag(0)
				if i%7 == 0 {
					f = FlagDegraded
				}
				r.Record(finished("t", f))
				if i%13 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if d := r.Snapshot(); len(d.Traces) == 0 {
		t.Fatal("nothing retained after concurrent load")
	}
}
