package experiments

import (
	"fmt"

	"rumba/internal/core"
	"rumba/internal/quality"
)

// fig10Fractions are the x-axis sample points of Figure 10.
var fig10Fractions = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// Fig10 reproduces Figure 10 for one benchmark: output error versus the
// fraction of output elements fixed, for Ideal, Random, Uniform, EMA,
// linearErrors and treeErrors.
func Fig10(c *Context, benchmark string) (*Table, map[core.Scheme][]core.SweepPoint, error) {
	p, err := c.Prepare(benchmark)
	if err != nil {
		return nil, nil, err
	}
	curves := make(map[core.Scheme][]core.SweepPoint, len(core.AllSchemes))
	for _, s := range core.AllSchemes {
		curves[s] = core.FixSweep(p.RumbaObs.Errors, p.Scores(s), fig10Fractions)
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 10 (%s): output error vs percentage of fixed elements", benchmark),
		Note:   "Paper shape: linearErrors/treeErrors hug the Ideal curve; Random/Uniform decay linearly.",
		Header: []string{"% fixed"},
	}
	for _, s := range core.AllSchemes {
		t.Header = append(t.Header, s.String())
	}
	for i, f := range fig10Fractions {
		row := []string{pct(f)}
		for _, s := range core.AllSchemes {
			row = append(row, pct(curves[s][i].OutputError))
		}
		t.AddRow(row...)
	}
	return t, curves, nil
}

// largeCutoff returns the per-benchmark "large error" threshold used by the
// false-positive and coverage metrics: the paper's 20% bound, tightened to
// the Ideal operating point's own cutoff when Ideal must dip below 20% to
// reach the quality target (this keeps Ideal's false positives identically
// zero, as the paper defines).
func largeCutoff(p *Prepared) float64 {
	cut := quality.LargeErrorThreshold
	op := p.OperatingPoint(core.SchemeIdeal)
	if len(op.Fixed) > 0 {
		last := p.RumbaObs.Errors[op.Fixed[len(op.Fixed)-1]]
		if last < cut {
			cut = last
		}
	}
	return cut
}

// Fig11 reproduces Figure 11: false positives at the 90% target output
// quality. A false positive is a fixed element whose actual error was not
// large; it is reported as a percentage of all output elements.
func Fig11(c *Context, benchmarks ...string) (*Table, map[string]map[core.Scheme]float64, error) {
	names, err := checkBenchmarks(benchmarks)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:  "Figure 11: false positives at 90% target output quality",
		Note:   "Paper averages: Ideal 0%, Random 14.8%, Uniform 14.5%, EMA 13.3%, linearErrors 2.1%, treeErrors 0.76%.",
		Header: append([]string{"benchmark"}, schemeHeaders()...),
	}
	res := make(map[string]map[core.Scheme]float64)
	sums := make(map[core.Scheme]float64)
	for _, name := range names {
		p, err := c.Prepare(name)
		if err != nil {
			return nil, nil, err
		}
		cut := largeCutoff(p)
		row := []string{name}
		res[name] = make(map[core.Scheme]float64)
		for _, s := range core.AllSchemes {
			op := p.OperatingPoint(s)
			fp := 0
			for _, idx := range op.Fixed {
				if p.RumbaObs.Errors[idx] < cut {
					fp++
				}
			}
			frac := float64(fp) / float64(len(p.RumbaObs.Errors))
			res[name][s] = frac
			sums[s] += frac
			row = append(row, pct(frac))
		}
		t.AddRow(row...)
	}
	avgRow := []string{"average"}
	for _, s := range core.AllSchemes {
		avgRow = append(avgRow, pct(sums[s]/float64(len(names))))
	}
	t.AddRow(avgRow...)
	return t, res, nil
}

// Fig12 reproduces Figure 12: the fraction of elements each scheme must
// re-execute to reach 90% output quality.
func Fig12(c *Context, benchmarks ...string) (*Table, map[string]map[core.Scheme]float64, error) {
	names, err := checkBenchmarks(benchmarks)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:  "Figure 12: elements re-executed for 90% target output quality",
		Note:   "Paper averages: Random needs ~41% (29 points over Ideal); linearErrors/treeErrors only ~9/~6 points over Ideal.",
		Header: append([]string{"benchmark"}, schemeHeaders()...),
	}
	res := make(map[string]map[core.Scheme]float64)
	sums := make(map[core.Scheme]float64)
	for _, name := range names {
		p, err := c.Prepare(name)
		if err != nil {
			return nil, nil, err
		}
		row := []string{name}
		res[name] = make(map[core.Scheme]float64)
		for _, s := range core.AllSchemes {
			op := p.OperatingPoint(s)
			frac := float64(len(op.Fixed)) / float64(len(p.RumbaObs.Errors))
			res[name][s] = frac
			sums[s] += frac
			row = append(row, pct(frac))
		}
		t.AddRow(row...)
	}
	avgRow := []string{"average"}
	for _, s := range core.AllSchemes {
		avgRow = append(avgRow, pct(sums[s]/float64(len(names))))
	}
	t.AddRow(avgRow...)
	return t, res, nil
}

// Fig13 reproduces Figure 13: relative coverage of large errors at 90%
// target output quality — the fraction of a scheme's fixes that hit actually
// large errors, normalised to Ideal's.
func Fig13(c *Context, benchmarks ...string) (*Table, map[string]map[core.Scheme]float64, error) {
	names, err := checkBenchmarks(benchmarks)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:  "Figure 13: relative coverage of large errors at 90% target output quality",
		Note:   "Paper averages: linearErrors 57.6%, treeErrors 67.2%; Ideal is 100% by definition.",
		Header: append([]string{"benchmark"}, schemeHeaders()...),
	}
	res := make(map[string]map[core.Scheme]float64)
	sums := make(map[core.Scheme]float64)
	for _, name := range names {
		p, err := c.Prepare(name)
		if err != nil {
			return nil, nil, err
		}
		cut := largeCutoff(p)
		precision := func(fixed []int) float64 {
			if len(fixed) == 0 {
				return 1 // nothing to fix: vacuous full coverage
			}
			hit := 0
			for _, idx := range fixed {
				if p.RumbaObs.Errors[idx] >= cut {
					hit++
				}
			}
			return float64(hit) / float64(len(fixed))
		}
		idealPrec := precision(p.OperatingPoint(core.SchemeIdeal).Fixed)
		row := []string{name}
		res[name] = make(map[core.Scheme]float64)
		for _, s := range core.AllSchemes {
			cov := 1.0
			if idealPrec > 0 {
				cov = precision(p.OperatingPoint(s).Fixed) / idealPrec
			}
			res[name][s] = cov
			sums[s] += cov
			row = append(row, pct(cov))
		}
		t.AddRow(row...)
	}
	avgRow := []string{"average"}
	for _, s := range core.AllSchemes {
		avgRow = append(avgRow, pct(sums[s]/float64(len(names))))
	}
	t.AddRow(avgRow...)
	return t, res, nil
}

func schemeHeaders() []string {
	out := make([]string, len(core.AllSchemes))
	for i, s := range core.AllSchemes {
		out[i] = s.String()
	}
	return out
}
