// Package conformance replays a kernel package's golden corpus against a
// running rumba-serve — in-process or live — under configurable traffic
// shapes, and asserts the package's contract: delivered output error within
// TOQ, p99 request latency within the SLO, shed rate within budget, and
// every tenant's quality-drift monitor no worse than the declared state.
//
// The runner is the "load harness" half of the kernel-package gate: pkg
// Validate proves the artifact meets its TOQ on a quiet replay; conformance
// proves the served system still meets it under the traffic the package
// declares it can take.
package conformance

// Shape names a traffic shape the runner can replay.
type Shape string

const (
	// ShapeSteady issues requests back to back from a single tenant — the
	// baseline quality/latency measurement.
	ShapeSteady Shape = "steady"
	// ShapeBurst issues rounds of concurrent requests from parallel
	// tenants with a barrier between rounds — the admission controller
	// and the shed path see real contention.
	ShapeBurst Shape = "burst"
	// ShapeRamp grows the per-request batch from one element up to the
	// configured batch — exercises the batched detection path across
	// chunk widths.
	ShapeRamp Shape = "ramp"
	// ShapeMixed drives several tenants concurrently with different batch
	// sizes — per-tenant tuner isolation under parallel load.
	ShapeMixed Shape = "mixed-tenant"
)

// Shapes lists every shape in declaration order.
func Shapes() []Shape { return []Shape{ShapeSteady, ShapeBurst, ShapeRamp, ShapeMixed} }

// ParseShape maps a flag value to a Shape.
func ParseShape(s string) (Shape, bool) {
	for _, sh := range Shapes() {
		if string(sh) == s {
			return sh, true
		}
	}
	return "", false
}

// step is one scheduled request: tenant namespaces the tuner state,
// offset/count slice the corpus cyclically.
type step struct {
	tenant string
	offset int
	count  int
}

// schedule expands a shape into a deterministic request plan as rounds: the
// steps of one round are issued concurrently, and a barrier separates
// rounds. A tenant appears at most once per round, so every tenant's corpus
// stream — and therefore its tuner trajectory — is reproducible regardless
// of goroutine interleaving.
func schedule(shape Shape, requests, batch, lanes, corpusLen int) [][]step {
	if requests <= 0 {
		requests = 32
	}
	if batch <= 0 {
		batch = 16
	}
	if lanes <= 0 {
		lanes = 4
	}
	offsets := map[string]int{}
	mk := func(tenant string, count int) step {
		s := step{tenant: tenant, offset: offsets[tenant] % corpusLen, count: count}
		offsets[tenant] += count
		return s
	}
	var rounds [][]step
	switch shape {
	case ShapeBurst:
		// Rounds of `lanes` concurrent single-tenant requests; the barrier
		// between rounds is the idle gap of the burst pattern.
		for r := 0; r < requests; r += lanes {
			n := lanes
			if r+n > requests {
				n = requests - r
			}
			round := make([]step, 0, n)
			for l := 0; l < n; l++ {
				round = append(round, mk(laneTenant(l), batch))
			}
			rounds = append(rounds, round)
		}
	case ShapeRamp:
		// One sequential tenant, batch ramping 1..batch and wrapping.
		for r := 0; r < requests; r++ {
			rounds = append(rounds, []step{mk("conform", 1+r%batch)})
		}
	case ShapeMixed:
		// Every round drives all `lanes` tenants at once, each with its
		// own batch width.
		for r := 0; r < requests; r += lanes {
			n := lanes
			if r+n > requests {
				n = requests - r
			}
			round := make([]step, 0, n)
			for l := 0; l < n; l++ {
				round = append(round, mk(laneTenant(l), 1+(batch*(l+1))/lanes))
			}
			rounds = append(rounds, round)
		}
	default: // ShapeSteady
		for r := 0; r < requests; r++ {
			rounds = append(rounds, []step{mk("conform", batch)})
		}
	}
	return rounds
}

// laneTenant names the tenant concurrent lane l drives.
func laneTenant(l int) string {
	return "conform-" + string(rune('a'+l%26))
}
