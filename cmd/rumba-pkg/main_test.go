package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// builtPkg memoises one small built package (training included) for every
// test in the binary.
var builtPkg = struct {
	once sync.Once
	dir  string
}{}

// buildOnce builds an fft package with fast training into a shared temp dir
// and returns the package directory.
func buildOnce(t *testing.T) string {
	t.Helper()
	builtPkg.once.Do(func() {
		out, err := os.MkdirTemp("", "rumba-pkg-test-*")
		if err != nil {
			return
		}
		var stdout, stderr bytes.Buffer
		code := run([]string{"build", "-benchmark", "fft", "-out", out,
			"-train", "400", "-epochs", "10", "-corpus-n", "60", "-toq", "0.5"}, &stdout, &stderr)
		if code != 0 {
			os.RemoveAll(out)
			return
		}
		builtPkg.dir = filepath.Join(out, "fft-0.1.0")
	})
	if builtPkg.dir == "" {
		t.Fatal("shared package build failed")
	}
	return builtPkg.dir
}

func TestMain(m *testing.M) {
	code := m.Run()
	if builtPkg.dir != "" {
		os.RemoveAll(filepath.Dir(builtPkg.dir))
	}
	os.Exit(code)
}

func TestBuildValidateInstallConform(t *testing.T) {
	dir := buildOnce(t)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"validate", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("validate exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "ok: fft 0.1.0") {
		t.Fatalf("validate output = %q", stdout.String())
	}

	reg := t.TempDir()
	stdout.Reset()
	if code := run([]string{"install", "-registry", reg, dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("install exit %d: %s", code, stderr.String())
	}
	if _, err := os.Stat(filepath.Join(reg, "fft-0.1.0", "manifest.json")); err != nil {
		t.Fatal(err)
	}
	// A second install of the same name must fail the gate (exit 1).
	stderr.Reset()
	if code := run([]string{"install", "-registry", reg, dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("duplicate install exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "already holds") {
		t.Fatalf("duplicate install error = %q", stderr.String())
	}

	report := filepath.Join(t.TempDir(), "report.json")
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"conform", "-requests", "6", "-batch", "5", "-out", report, dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("conform exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "PASS fft 0.1.0 (steady)") {
		t.Fatalf("conform output = %q", stdout.String())
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"pass": true`) {
		t.Fatalf("report = %s", data)
	}
}

func TestBuildFromBundleFile(t *testing.T) {
	dir := buildOnce(t)
	out := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{"build", "-benchmark", "fft", "-bundle", filepath.Join(dir, "bundle.json"),
		"-out", out, "-version", "2.0.0", "-corpus-n", "40", "-toq", "0.5"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("build exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "fft 2.0.0, 40 corpus elements") {
		t.Fatalf("build output = %q", stdout.String())
	}
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no command", nil, "usage: rumba-pkg"},
		{"unknown command", []string{"frobnicate"}, "unknown command"},
		{"build without benchmark", []string{"build"}, "-benchmark is required"},
		{"validate without dir", []string{"validate"}, "exactly one package directory"},
		{"install without registry", []string{"install", "x"}, "-registry is required"},
		{"install without dir", []string{"install", "-registry", "r"}, "exactly one package directory"},
		{"conform without dir", []string{"conform"}, "exactly one package directory"},
		{"conform bad shape", []string{"conform", "-shape", "sawtooth", "d"}, "unknown shape"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit %d, want 2 (stderr %q)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Fatalf("stderr = %q, want %q", stderr.String(), tc.want)
			}
		})
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"help"}, &stdout, &stderr); code != 0 || !strings.Contains(stdout.String(), "commands:") {
		t.Fatalf("help exit %d output %q", code, stdout.String())
	}
	if code := run([]string{"build", "-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("build -h exit %d", code)
	}
}

func TestGateFailuresExitOne(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"validate", t.TempDir()}, &stdout, &stderr); code != 1 {
		t.Fatalf("validate on empty dir exit %d", code)
	}
	if code := run([]string{"build", "-benchmark", "no-such-kernel"}, &stdout, &stderr); code != 1 {
		t.Fatalf("build unknown benchmark exit %d", code)
	}
	if code := run([]string{"conform", t.TempDir()}, &stdout, &stderr); code != 1 {
		t.Fatalf("conform on empty dir exit %d", code)
	}
}
