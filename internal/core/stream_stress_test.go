package core

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"rumba/internal/bench"
	"rumba/internal/energy"
	"rumba/internal/predictor"
	"rumba/internal/quality"
	"rumba/internal/rng"
)

// This file is the streaming runtime's stress/soak suite: randomized worker
// counts, queue capacities, invocation sizes and in-flight windows, with
// artificially panicking and slow kernels, asserting the hardening contract —
// in-order exactly-once delivery, fires == fixes + degradations, a bounded
// reorder buffer, and zero leaked goroutines on both normal completion and
// mid-stream cancellation. ci.sh runs it under -race.

// Stress inputs are triples {value, behaviour, score}: behaviour selects the
// exact kernel's failure mode, score is the checker's predicted error.
const (
	behaveNormal = 0
	behavePanic  = 1
	behaveSlow   = 2
)

// stressKernel is the exact kernel of the synthetic stress benchmark.
// behavePanic panics (testing panic isolation); behaveSlow busy-loops for a
// few milliseconds (testing the per-job deadline; the loop always
// terminates, so abandoned calls drain during the settle loop).
func stressKernel(in []float64) []float64 {
	switch in[1] {
	case behavePanic:
		panic("stress: kernel panic requested")
	case behaveSlow:
		x := in[0]
		for i := 0; i < 20_000_000; i++ {
			x = x*1.0000001 + 1e-9
		}
		if x > 1e300 { // never true; defeats dead-code elimination
			return []float64{x}
		}
	}
	return []float64{in[0] * 2}
}

func stressSpec() *bench.Spec {
	return &bench.Spec{
		Name:   "stress",
		InDim:  3,
		OutDim: 1,
		Exact:  stressKernel,
		Metric: quality.MeanRelativeError,
		Scale:  1,
	}
}

// stressExec is a trivial executor: the "approximate" output is the input
// doubled with a small bias, so fixed elements (exactly 2*in[0]) are
// distinguishable from degraded ones.
type stressExec struct{}

func (stressExec) Invoke(in []float64) []float64            { return []float64{in[0]*2 + 0.125} }
func (stressExec) CyclesPerInvocation() float64             { return 64 }
func (stressExec) EnergyPerInvocation(energy.Model) float64 { return 1 }

// scoreChecker reads the pre-assigned score from the input triple.
type scoreChecker struct{}

func (scoreChecker) Name() string                         { return "score" }
func (scoreChecker) PredictError(in, _ []float64) float64 { return in[2] }
func (c scoreChecker) PredictErrorBatch(dst []float64, ins, outs [][]float64) {
	predictor.ScalarBatch(c, dst, ins, outs)
}
func (scoreChecker) Cost() predictor.Cost { return predictor.Cost{} }
func (scoreChecker) Reset()               {}

// waitForGoroutines polls until the goroutine count settles back to the
// baseline; abandoned deadline-overrun kernels finish on their own, so a
// settle loop (not an instant check) is the correct leak detector.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// stressCase is one randomized configuration of the runtime.
type stressCase struct {
	workers, queueCap, maxInFlight, invocationSize, elements int
	deadline                                                 time.Duration
	panicFrac, slowFrac                                      float64
}

func randomCase(r *rng.Stream, elements int) stressCase {
	c := stressCase{
		workers:        1 + r.Intn(6),
		queueCap:       1 + r.Intn(8),
		maxInFlight:    1 + r.Intn(48),
		invocationSize: 16 + r.Intn(100),
		elements:       elements,
		panicFrac:      0.1,
	}
	if r.Bool(0.5) {
		// Only run slow kernels when a deadline protects the stream from
		// paying their full latency per job.
		c.deadline = 2 * time.Millisecond
		c.slowFrac = 0.03
	}
	return c
}

// genStressInputs builds the input triples and returns how many elements
// will fire (score above the pinned 0.5 threshold).
func genStressInputs(r *rng.Stream, c stressCase) (inputs [][]float64, fires int) {
	inputs = make([][]float64, c.elements)
	for i := range inputs {
		behaviour := float64(behaveNormal)
		if r.Bool(c.panicFrac) {
			behaviour = behavePanic
		} else if r.Bool(c.slowFrac) {
			behaviour = behaveSlow
		}
		score := r.Float64() // threshold pinned at 0.5 → fires iff > 0.5
		if score > 0.5 {
			fires++
		}
		inputs[i] = []float64{1 + r.Float64(), behaviour, score}
	}
	return inputs, fires
}

func newStressStream(t *testing.T, c stressCase) *Stream {
	t.Helper()
	tuner, err := NewTuner(ModeTOQ, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStream(Config{
		Spec:             stressSpec(),
		Accel:            stressExec{},
		Checker:          scoreChecker{},
		Tuner:            tuner,
		InvocationSize:   c.invocationSize,
		RecoveryQueueCap: c.queueCap,
		RecoveryDeadline: c.deadline,
		MaxInFlight:      c.maxInFlight,
	}, c.workers)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStreamStressRandomizedCompletion(t *testing.T) {
	for seed := 0; seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			// Baseline inside the subtest: the parent goroutine is parked in
			// t.Run and must count toward it.
			base := runtime.NumGoroutine()
			r := rng.NewNamed(fmt.Sprintf("stream-stress/completion/%d", seed))
			c := randomCase(r, 300)
			inputs, fires := genStressInputs(r, c)
			st := newStressStream(t, c)
			out, err := st.Process(context.Background(), feedInputs(inputs))
			if err != nil {
				t.Fatal(err)
			}
			next := 0
			fixed, degraded := 0, 0
			for res := range out {
				if res.Index != next {
					t.Fatalf("out of order: got %d, want %d", res.Index, next)
				}
				switch {
				case res.Fixed:
					fixed++
					if res.Output[0] != inputs[res.Index][0]*2 {
						t.Fatalf("fixed element %d is not exact: %v", res.Index, res.Output)
					}
				case res.Degraded:
					degraded++
					if res.Output[0] != inputs[res.Index][0]*2+0.125 {
						t.Fatalf("degraded element %d did not commit the approximate output: %v", res.Index, res.Output)
					}
				}
				next++
			}
			if next != c.elements {
				t.Fatalf("delivered %d of %d elements", next, c.elements)
			}
			if fixed+degraded != fires {
				t.Fatalf("fires %d != fixed %d + degraded %d", fires, fixed, degraded)
			}
			snap := st.Metrics().Snapshot()
			if snap.Counters[MetricElementsIn] != int64(c.elements) || snap.Counters[MetricElementsOut] != int64(c.elements) {
				t.Fatalf("element counters disagree with delivery: %+v", snap.Counters)
			}
			if snap.Counters[MetricFires] != int64(fires) || snap.Counters[MetricFixes] != int64(fixed) || snap.Counters[MetricDegraded] != int64(degraded) {
				t.Fatalf("fire/fix/degrade counters disagree: %+v", snap.Counters)
			}
			if m := snap.Gauges[MetricPending].Max; m > float64(c.maxInFlight) {
				t.Fatalf("reorder buffer reached %v with an in-flight window of %d", m, c.maxInFlight)
			}
			if m := snap.Gauges[MetricInFlight].Max; m > float64(c.maxInFlight) {
				t.Fatalf("in-flight reached %v with a window of %d", m, c.maxInFlight)
			}
			waitForGoroutines(t, base)
		})
	}
}

func TestStreamStressCancellationLeaksNothing(t *testing.T) {
	for seed := 0; seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			base := runtime.NumGoroutine()
			r := rng.NewNamed(fmt.Sprintf("stream-stress/cancel/%d", seed))
			c := randomCase(r, 100_000) // far more than will be consumed
			st := newStressStream(t, c)

			ctx, cancel := context.WithCancel(context.Background())
			// An endless producer: cancellation, not input exhaustion, must
			// end the run. The producer itself watches ctx so the test owns
			// no leak of its own.
			inputs := make(chan []float64)
			go func() {
				defer close(inputs)
				gen := rng.NewNamed(fmt.Sprintf("stream-stress/cancel-inputs/%d", seed))
				for {
					in := []float64{1 + gen.Float64(), behaveNormal, gen.Float64()}
					if gen.Bool(c.panicFrac) {
						in[1] = behavePanic
					}
					select {
					case inputs <- in:
					case <-ctx.Done():
						return
					}
				}
			}()
			out, err := st.Process(ctx, inputs)
			if err != nil {
				t.Fatal(err)
			}
			consume := 1 + r.Intn(200)
			next := 0
			for res := range out {
				if res.Index != next {
					t.Fatalf("out of order: got %d, want %d", res.Index, next)
				}
				next++
				if next == consume {
					cancel()
					// Keep draining: the merger may deliver a few more
					// buffered elements before it observes cancellation,
					// and they must still arrive in order.
				}
			}
			if next < consume {
				t.Fatalf("consumed %d before the channel closed, want at least %d", next, consume)
			}
			cancel()
			waitForGoroutines(t, base)
		})
	}
}

// TestStreamPanickingKernelDegrades pins the degradation contract in the
// worst case: every element fires and every recovery panics. The stream must
// still deliver everything, flagged Degraded, with the approximate outputs.
func TestStreamPanickingKernelDegrades(t *testing.T) {
	base := runtime.NumGoroutine()
	c := stressCase{workers: 3, queueCap: 2, maxInFlight: 8, invocationSize: 32, elements: 200}
	st := newStressStream(t, c)
	inputs := make([][]float64, c.elements)
	for i := range inputs {
		inputs[i] = []float64{float64(i + 1), behavePanic, 1} // score 1 → always fires
	}
	out, err := st.Process(context.Background(), feedInputs(inputs))
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for res := range out {
		if res.Index != next {
			t.Fatalf("out of order: got %d, want %d", res.Index, next)
		}
		if !res.Degraded || res.Fixed {
			t.Fatalf("element %d: want Degraded, got %+v", res.Index, res)
		}
		if res.Output[0] != inputs[res.Index][0]*2+0.125 {
			t.Fatalf("element %d did not commit the approximate output", res.Index)
		}
		next++
	}
	if next != c.elements {
		t.Fatalf("delivered %d of %d", next, c.elements)
	}
	snap := st.Metrics().Snapshot()
	if snap.Counters[MetricDegraded] != int64(c.elements) || snap.Counters[MetricFixes] != 0 {
		t.Fatalf("degradation counters wrong: %+v", snap.Counters)
	}
	waitForGoroutines(t, base)
}

// TestStreamDeadlineDegradesSlowKernel: a kernel that overruns the per-job
// deadline must degrade rather than stall the merger; without a deadline the
// same kernel would simply be waited for.
func TestStreamDeadlineDegradesSlowKernel(t *testing.T) {
	base := runtime.NumGoroutine()
	c := stressCase{
		workers: 2, queueCap: 2, maxInFlight: 8, invocationSize: 32,
		elements: 8, deadline: time.Millisecond,
	}
	st := newStressStream(t, c)
	inputs := make([][]float64, c.elements)
	for i := range inputs {
		inputs[i] = []float64{float64(i + 1), behaveSlow, 1}
	}
	out, err := st.Process(context.Background(), feedInputs(inputs))
	if err != nil {
		t.Fatal(err)
	}
	degraded := 0
	for res := range out {
		if res.Degraded {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("a 1ms deadline against a multi-ms kernel never degraded")
	}
	waitForGoroutines(t, base)
}
