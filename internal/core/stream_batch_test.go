package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"rumba/internal/rng"
)

// This file pins the batched detection path (Config.BatchSize > 1) to the
// scalar runtime: identical outputs, flags and counters at every batch
// size, liveness with an in-flight window smaller than the batch, and
// clean teardown under cancellation mid-batch.

func newBatchStressStream(t *testing.T, c stressCase, batch int) *Stream {
	t.Helper()
	tuner, err := NewTuner(ModeTOQ, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStream(Config{
		Spec:             stressSpec(),
		Accel:            stressExec{},
		Checker:          scoreChecker{},
		Tuner:            tuner,
		InvocationSize:   c.invocationSize,
		RecoveryQueueCap: c.queueCap,
		RecoveryDeadline: c.deadline,
		MaxInFlight:      c.maxInFlight,
		BatchSize:        batch,
	}, c.workers)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewSystemRejectsNegativeBatchSize(t *testing.T) {
	_, err := NewSystem(Config{Spec: stressSpec(), Accel: stressExec{}, BatchSize: -1})
	if err == nil {
		t.Fatal("negative batch size must be rejected")
	}
}

// TestStreamBatchSizesIdenticalResults runs one input set through the
// runtime at several batch sizes (including ragged tails and a batch larger
// than the element count) and requires bit-identical results: order,
// outputs, flags, predictions and the fire/fix counters.
func TestStreamBatchSizesIdenticalResults(t *testing.T) {
	r := rng.NewNamed("stream-batch/identical")
	c := stressCase{
		workers: 2, queueCap: 4, maxInFlight: 256,
		invocationSize: 37, elements: 500,
	}
	inputs, fires := genStressInputs(r, c)

	run := func(batch int) []StreamResult {
		st := newBatchStressStream(t, c, batch)
		res, err := st.ProcessSlice(context.Background(), inputs)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		snap := st.Metrics().Snapshot()
		if n := snap.Counters[MetricFires]; n != int64(fires) {
			t.Fatalf("batch %d: %d fires, want %d", batch, n, fires)
		}
		if n := snap.Counters[MetricElementsIn]; n != int64(c.elements) {
			t.Fatalf("batch %d: %d elements in, want %d", batch, n, c.elements)
		}
		return res
	}

	want := run(1)
	for _, batch := range []int{2, 7, 64, 501} {
		got := run(batch)
		if len(got) != len(want) {
			t.Fatalf("batch %d delivered %d elements, scalar %d", batch, len(got), len(want))
		}
		for i := range want {
			w, g := want[i], got[i]
			if g.Index != w.Index || g.Fixed != w.Fixed || g.Degraded != w.Degraded {
				t.Fatalf("batch %d element %d: %+v != scalar %+v", batch, i, g, w)
			}
			if math.Float64bits(g.PredictedError) != math.Float64bits(w.PredictedError) {
				t.Fatalf("batch %d element %d: prediction %v != %v", batch, i, g.PredictedError, w.PredictedError)
			}
			for j := range w.Output {
				if math.Float64bits(g.Output[j]) != math.Float64bits(w.Output[j]) {
					t.Fatalf("batch %d element %d out[%d]: %v != %v", batch, i, j, g.Output[j], w.Output[j])
				}
			}
		}
	}
}

// TestStreamBatchLargerThanInFlightWindow is the deadlock regression test
// for the flush-before-block discipline: with MaxInFlight far below
// BatchSize, detection must hand accumulated results to the merger before
// waiting on an in-flight slot, or the window can never drain.
func TestStreamBatchLargerThanInFlightWindow(t *testing.T) {
	r := rng.NewNamed("stream-batch/window")
	c := stressCase{
		workers: 1, queueCap: 1, maxInFlight: 2,
		invocationSize: 64, elements: 300,
	}
	inputs, fires := genStressInputs(r, c)
	st := newBatchStressStream(t, c, 64)

	done := make(chan struct{})
	var res []StreamResult
	var err error
	go func() {
		defer close(done)
		res, err = st.ProcessSlice(context.Background(), inputs)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("batched stream wedged with MaxInFlight < BatchSize\n%s", buf[:runtime.Stack(buf, true)])
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != c.elements {
		t.Fatalf("delivered %d of %d", len(res), c.elements)
	}
	fixed := 0
	for i, r := range res {
		if r.Index != i {
			t.Fatalf("out of order: got %d at %d", r.Index, i)
		}
		if r.Fixed {
			fixed++
		}
	}
	if fixed != fires {
		t.Fatalf("fixed %d of %d fires", fixed, fires)
	}
	snap := st.Metrics().Snapshot()
	if m := snap.Gauges[MetricInFlight].Max; m > float64(c.maxInFlight) {
		t.Fatalf("in-flight reached %v with a window of %d", m, c.maxInFlight)
	}
}

// TestStreamBatchCancellationLeaksNothing cancels batched streams mid-run
// (randomised batch sizes and failure-mode kernels) and asserts the
// delivered prefix is in order and every pipeline goroutine exits.
func TestStreamBatchCancellationLeaksNothing(t *testing.T) {
	for seed := 0; seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			base := runtime.NumGoroutine()
			r := rng.NewNamed(fmt.Sprintf("stream-batch/cancel/%d", seed))
			c := randomCase(r, 400)
			batch := 1 + r.Intn(96)
			inputs, _ := genStressInputs(r, c)
			st := newBatchStressStream(t, c, batch)

			ctx, cancel := context.WithCancel(context.Background())
			out, err := st.process(ctx, sliceSource(inputs))
			if err != nil {
				t.Fatal(err)
			}
			stopAfter := 1 + r.Intn(c.elements/2)
			next := 0
			for res := range out {
				if res.Index != next {
					t.Fatalf("out of order: got %d, want %d", res.Index, next)
				}
				next++
				if next == stopAfter {
					cancel()
				}
			}
			cancel()
			if next < stopAfter {
				t.Fatalf("delivered %d before cancellation at %d", next, stopAfter)
			}
			waitForGoroutines(t, base)
		})
	}
}

// TestStreamBatchChannelSourceGathersQueuedInputs checks the channel-fed
// path under batching: a pre-filled buffered channel is consumed correctly
// and completely, with results identical to the slice path.
func TestStreamBatchChannelSourceGathersQueuedInputs(t *testing.T) {
	r := rng.NewNamed("stream-batch/chan")
	c := stressCase{
		workers: 2, queueCap: 4, maxInFlight: 128,
		invocationSize: 50, elements: 257,
	}
	inputs, _ := genStressInputs(r, c)

	want, err := newBatchStressStream(t, c, 32).ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}

	// All inputs queued up front: the gather loop sees full batches.
	ch := make(chan []float64, len(inputs))
	for _, in := range inputs {
		ch <- in
	}
	close(ch)
	st := newBatchStressStream(t, c, 32)
	out, err := st.Process(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for got := range out {
		w := want[i]
		if got.Index != w.Index || got.Fixed != w.Fixed || got.Degraded != w.Degraded ||
			math.Float64bits(got.Output[0]) != math.Float64bits(w.Output[0]) {
			t.Fatalf("element %d: %+v != slice-path %+v", i, got, w)
		}
		i++
	}
	if i != c.elements {
		t.Fatalf("delivered %d of %d", i, c.elements)
	}
}
