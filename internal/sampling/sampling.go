// Package sampling implements the quality-sampling baseline that Rumba's
// introduction argues against (Green- and SAGE-style monitoring, refs [6]
// and [32] of the paper): output quality is measured by running the exact
// and the approximate versions side by side once every N invocations, and a
// violation triggers recovery of that sampled invocation only. Because the
// output quality is input-dependent (Challenge II), violations between
// samples are silently missed — which is exactly what the comparison
// experiment in this repository quantifies against Rumba's continuous
// per-element checks.
package sampling

import "fmt"

// Policy describes a quality-sampling monitor.
type Policy struct {
	// Period checks one invocation out of every Period (the paper's
	// "once in every N invocations"). Period 1 degenerates to checking
	// everything (and paying an exact execution for every invocation).
	Period int
	// MaxError is the acceptable per-invocation output error; a sampled
	// invocation above it counts as a detected violation and is repaired
	// by exact re-execution.
	MaxError float64
}

// Validate checks the policy.
func (p Policy) Validate() error {
	if p.Period <= 0 {
		return fmt.Errorf("sampling: period %d must be positive", p.Period)
	}
	if p.MaxError < 0 {
		return fmt.Errorf("sampling: negative error bound %v", p.MaxError)
	}
	return nil
}

// Result summarises a monitored run.
type Result struct {
	Invocations int
	// Violations is the number of invocations whose true output error
	// exceeded the bound.
	Violations int
	// Checked is the number of invocations the monitor actually sampled.
	Checked int
	// Detected is the number of violations that fell on a sampled
	// invocation (and were therefore repaired).
	Detected int
	// Missed is Violations - Detected: low-quality outputs delivered to
	// the user without the monitor noticing.
	Missed int
	// DetectionRate is Detected / Violations (1 if there were none).
	DetectionRate float64
	// ResidualError is the mean per-invocation error after the detected
	// violations are repaired (their error becomes zero).
	ResidualError float64
	// CheckCostInvocations counts the extra exact executions the monitor
	// paid: one per sampled invocation (the exact run used for the
	// comparison) — the "running an application twice" overhead of
	// Challenge III.
	CheckCostInvocations int
}

// Evaluate runs the sampling monitor over a series of per-invocation output
// errors (in invocation order) and reports what it caught, what it missed,
// and what it cost.
func Evaluate(errors []float64, p Policy) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{Invocations: len(errors)}
	var residual float64
	for i, e := range errors {
		violating := e > p.MaxError
		if violating {
			res.Violations++
		}
		sampled := i%p.Period == 0
		if sampled {
			res.Checked++
			res.CheckCostInvocations++
			if violating {
				res.Detected++
				e = 0 // repaired by exact re-execution
			}
		}
		residual += e
	}
	res.Missed = res.Violations - res.Detected
	if res.Violations > 0 {
		res.DetectionRate = float64(res.Detected) / float64(res.Violations)
	} else {
		res.DetectionRate = 1
	}
	if res.Invocations > 0 {
		res.ResidualError = residual / float64(res.Invocations)
	}
	return res, nil
}

// ExpectedDetectionRate is the analytical detection rate of a period-N
// sampler against violations that land uniformly at random: 1/N. The
// experiment compares the measured rate against it.
func ExpectedDetectionRate(period int) float64 {
	if period <= 0 {
		return 0
	}
	return 1 / float64(period)
}
