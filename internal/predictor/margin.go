package predictor

import "math"

// Margin is an output-based checker for classification kernels (extension
// beyond the paper; see DESIGN.md §5). For a kernel with one-hot outputs —
// jmeint's [intersect, disjoint] pair — the accelerator's own output margin
// is a candidate confidence signal: a small gap between the top two outputs
// suggests the network is unsure and a misclassification is likely. (The
// margin experiment in internal/experiments measures how well that holds;
// a poorly calibrated network can be confidently wrong.)
//
// The predicted error is 1 - margin mapped through a trained threshold
// curve, so it is directly comparable with the mismatch element error (0 or
// 1). Like the EMA checker it reads only the accelerator output, so it fits
// the Figure 9b parallel placement with zero added latency.
type Margin struct {
	// Scale converts a raw margin into an error estimate:
	// predicted = max(0, 1 - margin/Scale). A margin at or above Scale is
	// considered confident. Fitted offline.
	Scale float64
}

var _ Predictor = (*Margin)(nil)

// Name implements Predictor.
func (m *Margin) Name() string { return "marginErrors" }

// PredictError implements Predictor.
func (m *Margin) PredictError(_, approxOut []float64) float64 {
	if len(approxOut) < 2 {
		return 0 // margins need at least two outputs
	}
	margin := rawMargin(approxOut)
	scale := m.Scale
	if scale <= 0 {
		scale = 1
	}
	e := 1 - margin/scale
	if e < 0 {
		return 0
	}
	return e
}

// PredictErrorBatch implements Predictor via the scalar reference path; the
// scalar margin scan is already allocation-free, so there is nothing to fuse.
func (m *Margin) PredictErrorBatch(dst []float64, ins, outs [][]float64) {
	ScalarBatch(m, dst, ins, outs)
}

// Cost implements Predictor: a max/second-max scan plus the compare.
func (m *Margin) Cost() Cost { return Cost{Compares: 3} }

// Reset implements Predictor (stateless).
func (m *Margin) Reset() {}

// rawMargin returns the gap between the largest and second-largest outputs.
func rawMargin(out []float64) float64 {
	best, second := math.Inf(-1), math.Inf(-1)
	for _, v := range out {
		if v > best {
			best, second = v, best
		} else if v > second {
			second = v
		}
	}
	return best - second
}

// FitMargin chooses the margin scale from training observations: the scale
// is the median margin of *correctly* classified elements, so elements less
// confident than a typical correct answer score a positive predicted error.
func FitMargin(approxOuts [][]float64, errs []float64) *Margin {
	var correct []float64
	for i, out := range approxOuts {
		if errs[i] == 0 && len(out) >= 2 {
			correct = append(correct, rawMargin(out))
		}
	}
	if len(correct) == 0 {
		return &Margin{Scale: 1}
	}
	// Median via insertion sort (offline, modest sizes).
	for i := 1; i < len(correct); i++ {
		for j := i; j > 0 && correct[j] < correct[j-1]; j-- {
			correct[j], correct[j-1] = correct[j-1], correct[j]
		}
	}
	med := correct[len(correct)/2]
	if med <= 0 {
		med = 1
	}
	return &Margin{Scale: med}
}
