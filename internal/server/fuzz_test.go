package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// fuzzServer memoises one server for the whole fuzz run; per-iteration
// construction would drown the fuzzer in admission-worker setup.
var fuzzServer = struct {
	once    sync.Once
	handler http.Handler
}{}

func fuzzHandler(t interface{ Fatal(...any) }) http.Handler {
	fuzzServer.once.Do(func() {
		reg := NewKernelRegistry()
		if err := reg.Add(synthKernel("synth", synthExec{})); err != nil {
			return
		}
		s, err := New(reg, Options{})
		if err != nil {
			return
		}
		fuzzServer.handler = s.Handler()
	})
	if fuzzServer.handler == nil {
		t.Fatal("fuzz server failed to start")
	}
	return fuzzServer.handler
}

// FuzzHandleInvoke throws arbitrary bodies at POST /v1/invoke and asserts
// the handler's total behaviour: it never panics, never 5xxes a bad input —
// malformed JSON, wrong input widths, huge batches and unknown kernels all
// map to 4xx — and every non-200 body is a parseable errorResponse.
func FuzzHandleInvoke(f *testing.F) {
	f.Add([]byte(`{"kernel":"synth","inputs":[[1,2,0.5]]}`))
	f.Add([]byte(`{"kernel":"synth","inputs":[[1,2,0.5]],"mode":"toq","target":0.1,"checker":"score"}`))
	f.Add([]byte(`{"kernel":"synth","inputs":[[1,2]]}`))             // wrong InDim
	f.Add([]byte(`{"kernel":"synth","inputs":[[1,2,3,4,5,6,7,8]]}`)) // wrong InDim, wide
	f.Add([]byte(`{"kernel":"nope","inputs":[[1,2,0.5]]}`))          // unknown kernel
	f.Add([]byte(`{"kernel":"synth","inputs":[]}`))                  // empty batch
	f.Add([]byte(`{"kernel":"synth","inputs":[null]}`))
	f.Add([]byte(`{"kernel":"synth","inputs":[[1,2,0.5]],"mode":"warp"}`)) // bad mode
	f.Add([]byte(`{"kernel":"synth","inputs":[[1e308,-1e308,0]]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add(bytes.Repeat([]byte(`[[1,2,3],`), 4096)) // big malformed body
	f.Fuzz(func(t *testing.T, body []byte) {
		h := fuzzHandler(t)
		req := httptest.NewRequest(http.MethodPost, "/v1/invoke", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)

		switch rec.Code {
		case http.StatusOK:
			var resp InvokeResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 body does not parse as InvokeResponse: %v\n%s", err, rec.Body.String())
			}
			var in InvokeRequest
			if err := json.Unmarshal(body, &in); err == nil && len(resp.Outputs) != len(in.Inputs) {
				t.Fatalf("200 returned %d outputs for %d inputs", len(resp.Outputs), len(in.Inputs))
			}
		case http.StatusBadRequest, http.StatusNotFound, http.StatusRequestEntityTooLarge:
			var er errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
				t.Fatalf("%d body does not parse as errorResponse: %v\n%s", rec.Code, err, rec.Body.String())
			}
			if er.Error == "" {
				t.Fatalf("%d response has an empty error message", rec.Code)
			}
		case http.StatusInternalServerError:
			// Tolerated only for the one honest 500: a kernel whose outputs
			// overflowed to ±Inf cannot be encoded as JSON.
			var er errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || !strings.Contains(er.Error, "not representable") {
				t.Fatalf("500 body = %q (err %v); only the non-representable-output 500 is allowed", rec.Body.String(), err)
			}
		default:
			t.Fatalf("unexpected status %d for body %q", rec.Code, body)
		}
	})
}
