package approx

import (
	"math"
	"testing"

	"rumba/internal/bench"
	"rumba/internal/energy"
	"rumba/internal/exec"
)

// Compile-time checks: both approximators satisfy the executor contract.
var (
	_ exec.Executor = (*Memo)(nil)
	_ exec.Executor = (*Tile)(nil)
)

func sobelSpec(t *testing.T) (*bench.Spec, [][]float64) {
	t.Helper()
	spec, err := bench.Get("sobel")
	if err != nil {
		t.Fatal(err)
	}
	return spec, spec.GenTest(500).Inputs
}

func TestNewMemoValidation(t *testing.T) {
	spec, samples := sobelSpec(t)
	if _, err := NewMemo(spec, 0, samples, 0); err == nil {
		t.Fatal("zero cells must fail")
	}
	if _, err := NewMemo(spec, 8, nil, 0); err == nil {
		t.Fatal("missing samples must fail")
	}
}

func TestMemoMissesAreExact(t *testing.T) {
	spec, samples := sobelSpec(t)
	mo, err := NewMemo(spec, 64, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The very first invocation is always a miss: exact output.
	in := samples[0]
	got := mo.Invoke(in)
	want := spec.Exact(in)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("miss must be exact: %v vs %v", got, want)
		}
	}
	if mo.HitRate() != 0 {
		t.Fatalf("hit rate after one miss = %v", mo.HitRate())
	}
}

func TestMemoRepeatHits(t *testing.T) {
	spec, samples := sobelSpec(t)
	mo, err := NewMemo(spec, 32, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := samples[1]
	first := mo.Invoke(in)
	second := mo.Invoke(in) // identical input: guaranteed hit
	if mo.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", mo.HitRate())
	}
	for j := range first {
		if first[j] != second[j] {
			t.Fatal("hit must return the cached output")
		}
	}
}

func TestMemoApproximatesNeighbours(t *testing.T) {
	spec, samples := sobelSpec(t)
	// Very coarse grid: plenty of hits with bounded error on the smooth
	// parts of the stream.
	mo, err := NewMemo(spec, 6, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, in := range samples {
		mo.Invoke(in)
	}
	if mo.HitRate() == 0 {
		t.Fatal("a 6-cell grid over 500 windows must produce some hits")
	}
	_ = hits
}

func TestMemoEnergyTracksHitRate(t *testing.T) {
	spec, samples := sobelSpec(t)
	mo, _ := NewMemo(spec, 4, samples, 0)
	m := energy.DefaultModel()
	cold := mo.EnergyPerInvocation(m) // hit rate 0: lookup + full kernel
	if math.Abs(cold-(lookupOps+spec.Cost.CPUOps)) > 1e-9 {
		t.Fatalf("cold energy = %v", cold)
	}
	for _, in := range samples {
		mo.Invoke(in)
	}
	warm := mo.EnergyPerInvocation(m)
	if warm >= cold {
		t.Fatalf("warm energy %v must beat cold %v", warm, cold)
	}
}

func TestMemoBoundedTable(t *testing.T) {
	spec, samples := sobelSpec(t)
	mo, _ := NewMemo(spec, 1024, samples, 3) // effectively unique keys, 3 slots
	for _, in := range samples {
		mo.Invoke(in)
	}
	if len(mo.table) > 3 {
		t.Fatalf("table grew to %d entries, cap 3", len(mo.table))
	}
}

func TestMemoReset(t *testing.T) {
	spec, samples := sobelSpec(t)
	mo, _ := NewMemo(spec, 32, samples, 0)
	mo.Invoke(samples[0])
	mo.Invoke(samples[0])
	mo.Reset()
	if mo.HitRate() != 0 || len(mo.table) != 0 {
		t.Fatal("Reset must clear state")
	}
}

func TestNewTileValidation(t *testing.T) {
	spec, _ := sobelSpec(t)
	if _, err := NewTile(spec, 0); err == nil {
		t.Fatal("zero stride must fail")
	}
}

func TestTileStride1IsExact(t *testing.T) {
	spec, samples := sobelSpec(t)
	tile, err := NewTile(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range samples[:50] {
		got := tile.Invoke(in)
		want := spec.Exact(in)
		for j := range want {
			if got[j] != want[j] {
				t.Fatal("stride-1 tile must be exact")
			}
		}
	}
}

func TestTileReusesWithinStride(t *testing.T) {
	spec, samples := sobelSpec(t)
	tile, _ := NewTile(spec, 4)
	first := tile.Invoke(samples[0])
	for i := 1; i < 4; i++ {
		got := tile.Invoke(samples[i])
		for j := range first {
			if got[j] != first[j] {
				t.Fatalf("element %d within the tile must reuse the tile value", i)
			}
		}
	}
	// The 5th element starts a new tile.
	fresh := tile.Invoke(samples[4])
	want := spec.Exact(samples[4])
	for j := range want {
		if fresh[j] != want[j] {
			t.Fatal("new tile must recompute exactly")
		}
	}
}

func TestTileCostAmortises(t *testing.T) {
	spec, _ := sobelSpec(t)
	t1, _ := NewTile(spec, 1)
	t8, _ := NewTile(spec, 8)
	if t8.CyclesPerInvocation() >= t1.CyclesPerInvocation() {
		t.Fatal("wider tiles must be cheaper per invocation")
	}
	m := energy.DefaultModel()
	if t8.EnergyPerInvocation(m) >= t1.EnergyPerInvocation(m) {
		t.Fatal("wider tiles must cost less energy per invocation")
	}
}

func TestTileReset(t *testing.T) {
	spec, samples := sobelSpec(t)
	tile, _ := NewTile(spec, 4)
	tile.Invoke(samples[0])
	tile.Reset()
	got := tile.Invoke(samples[5])
	want := spec.Exact(samples[5])
	for j := range want {
		if got[j] != want[j] {
			t.Fatal("post-reset invocation must recompute")
		}
	}
}

var _ exec.Executor = (*Precision)(nil)

func TestNewPrecisionValidation(t *testing.T) {
	spec, _ := sobelSpec(t)
	for _, bad := range []int{0, -3, 53} {
		if _, err := NewPrecision(spec, bad); err == nil {
			t.Fatalf("bits=%d must fail", bad)
		}
	}
}

func TestPrecisionFullWidthNearExact(t *testing.T) {
	spec, samples := sobelSpec(t)
	p, err := NewPrecision(spec, 52)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range samples[:50] {
		got := p.Invoke(in)
		want := spec.Exact(in)
		for j := range want {
			if got[j] != want[j] {
				t.Fatal("52-bit precision must be exact")
			}
		}
	}
}

func TestPrecisionNarrowWidthApproximates(t *testing.T) {
	spec, samples := sobelSpec(t)
	narrow, _ := NewPrecision(spec, 6)
	wide, _ := NewPrecision(spec, 40)
	var errNarrow, errWide float64
	for _, in := range samples[:200] {
		want := spec.Exact(in)
		n := narrow.Invoke(in)
		w := wide.Invoke(in)
		for j := range want {
			errNarrow += math.Abs(n[j] - want[j])
			errWide += math.Abs(w[j] - want[j])
		}
	}
	if errNarrow == 0 {
		t.Fatal("6-bit mantissas must introduce error")
	}
	if errWide >= errNarrow {
		t.Fatalf("wider mantissas must be more accurate: %v vs %v", errWide, errNarrow)
	}
}

func TestPrecisionCostScalesWithWidth(t *testing.T) {
	spec, _ := sobelSpec(t)
	narrow, _ := NewPrecision(spec, 6)
	wide, _ := NewPrecision(spec, 44)
	if narrow.CyclesPerInvocation() >= wide.CyclesPerInvocation() {
		t.Fatal("narrower datapaths must be cheaper")
	}
	m := energy.DefaultModel()
	if narrow.EnergyPerInvocation(m) >= wide.EnergyPerInvocation(m) {
		t.Fatal("narrower datapaths must cost less energy")
	}
}

func TestPrecisionTruncateSpecials(t *testing.T) {
	spec, _ := sobelSpec(t)
	p, _ := NewPrecision(spec, 8)
	for _, v := range []float64{0, math.Inf(1), math.Inf(-1)} {
		if got := p.truncate(v); got != v {
			t.Fatalf("truncate(%v) = %v", v, got)
		}
	}
	if !math.IsNaN(p.truncate(math.NaN())) {
		t.Fatal("NaN must stay NaN")
	}
}
