package obs

import (
	"sort"
	"strings"
)

// Labeled renders a metric name with a deterministic label set appended in
// the conventional brace form:
//
//	Labeled("tuner.threshold", "tenant", "acme", "kernel", "fft")
//	→ "tuner.threshold{kernel=fft,tenant=acme}"
//
// Labels are key/value pairs, sorted by key, so the same label set always
// produces the same metric name regardless of argument order — which is what
// lets the serving layer look the gauge up again on every request without
// accumulating aliases. Characters that would corrupt the encoding ('{',
// '}', ',', '=') are replaced with '_' in keys and values. An odd trailing
// key is dropped. With no pairs the bare name is returned.
func Labeled(name string, kv ...string) string {
	n := len(kv) / 2
	if n == 0 {
		return name
	}
	type pair struct{ k, v string }
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{k: sanitizeLabel(kv[2*i]), v: sanitizeLabel(kv[2*i+1])}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].k < pairs[b].k })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteByte('=')
		sb.WriteString(p.v)
	}
	sb.WriteByte('}')
	return sb.String()
}

func sanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '{', '}', ',', '=':
			return '_'
		}
		return r
	}, s)
}
