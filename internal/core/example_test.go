package core_test

import (
	"fmt"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/core"
	"rumba/internal/trainer"
)

// Example shows the complete Rumba flow on the fft benchmark: offline
// training of the accelerator and checkers, then an online run with the
// TOQ-mode tuner. (Dataset and epochs are tiny to keep the example fast;
// real runs use the Table 1 sizes.)
func Example() {
	spec, err := bench.Get("fft")
	if err != nil {
		panic(err)
	}
	train := spec.GenTrain(800)
	cfg := trainer.DefaultAccelTrainConfig(spec.Name)
	cfg.NN.Epochs = 40
	acfg, err := trainer.TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train, cfg)
	if err != nil {
		panic(err)
	}
	acc, err := accel.New(acfg, 0)
	if err != nil {
		panic(err)
	}
	preds, err := trainer.TrainPredictors(spec, train, trainer.Observe(spec, acc, train))
	if err != nil {
		panic(err)
	}

	tuner, err := core.NewTuner(core.ModeTOQ, 0.20)
	if err != nil {
		panic(err)
	}
	sys, err := core.NewSystem(core.Config{Spec: spec, Accel: acc, Checker: preds.Tree, Tuner: tuner})
	if err != nil {
		panic(err)
	}
	rep, err := sys.Run(spec.GenTest(2000))
	if err != nil {
		panic(err)
	}
	fmt.Println("quality improved:", rep.OutputError < rep.UncheckedError)
	fmt.Println("some elements re-executed:", rep.Fixed > 0 && rep.Fixed < rep.Elements)
	// Output:
	// quality improved: true
	// some elements re-executed: true
}

// ExampleFixSweep reproduces one Figure 10 point by hand: with oracle
// scores, fixing the worst half of a known error vector halves nothing —
// it removes exactly the two large errors.
func ExampleFixSweep() {
	trueErrs := []float64{0.4, 0.0, 0.3, 0.1}
	scores := core.Scores(core.SchemeIdeal, trueErrs, nil, "example")
	pts := core.FixSweep(trueErrs, scores, []float64{0, 0.5, 1})
	for _, p := range pts {
		fmt.Printf("%.0f%% fixed -> %.3f error\n", 100*p.FixedFraction, p.OutputError)
	}
	// Output:
	// 0% fixed -> 0.200 error
	// 50% fixed -> 0.025 error
	// 100% fixed -> 0.000 error
}

// ExampleFixesForTarget finds the 90%-quality operating point of the oracle
// scheme.
func ExampleFixesForTarget() {
	trueErrs := []float64{0.5, 0.0, 0.3, 0.2}
	op := core.FixesForTarget(trueErrs, core.Scores(core.SchemeIdeal, trueErrs, nil, "ex"), 0.10)
	fmt.Println("fixes needed:", len(op.Fixed))
	fmt.Printf("threshold: %.1f\n", op.Threshold)
	// Output:
	// fixes needed: 2
	// threshold: 0.3
}

// ExampleNewTuner demonstrates the Energy-mode threshold adaptation.
func ExampleNewTuner() {
	tuner, err := core.NewTuner(core.ModeEnergy, 0.2)
	if err != nil {
		panic(err)
	}
	before := tuner.Threshold
	// An invocation that blew the 20% re-execution budget:
	tuner.Observe(core.InvocationStats{Elements: 100, Fixed: 60})
	fmt.Println("threshold raised:", tuner.Threshold > before)
	// Output:
	// threshold raised: true
}
