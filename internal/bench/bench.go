// Package bench implements the application benchmarks of Table 1 —
// blackscholes, fft, inversek2j, jmeint, jpeg, kmeans and sobel — plus the
// mosaic case study of Figure 3. Every benchmark provides the exact kernel
// (the code the CPU runs), dataset generators matching Table 1's train/test
// data, the paper's NN topologies for both the Rumba and the unchecked-NPU
// accelerator configurations, the application-specific quality metric, and a
// cost model consumed by the energy/latency packages.
//
// All kernels are pure: they read only their input slice and write only
// their returned output, which is the property Rumba's selective
// re-execution relies on (Section 2.2).
package bench

import (
	"fmt"
	"sort"

	"rumba/internal/nn"
	"rumba/internal/quality"
)

// CostModel captures the per-invocation cost parameters of a kernel used by
// the analytical energy and latency models (the gem5/McPAT substitution; see
// DESIGN.md).
type CostModel struct {
	// CPUOps is the approximate dynamic operation count of one exact
	// kernel invocation on the Table 2 x86-64 core, in normalised "CPU
	// operation" units (transcendental calls are weighted by their
	// latency). It drives both CPU energy and CPU latency.
	CPUOps float64
	// ApproxFraction is the fraction of whole-application energy/time
	// spent inside the approximable region; the remainder always runs
	// exactly on the CPU (Amdahl term of Figures 14 and 15).
	ApproxFraction float64
}

// Spec describes one benchmark. Fields mirror the columns of Table 1.
type Spec struct {
	Name   string
	Domain string

	// InDim/OutDim are the kernel's input and output vector sizes.
	InDim, OutDim int

	// Exact computes the precise kernel output; it must be pure.
	Exact func(in []float64) []float64

	// Metric and Scale define the application-specific error metric
	// (Scale is the output range used by the *Diff metrics).
	Metric quality.Metric
	Scale  float64

	// RumbaTopo and NPUTopo are the Table 1 NN topologies. RumbaFeatures
	// lists the input indices consumed by the Rumba network when it is
	// smaller than the kernel input (blackscholes: 3 of 6 inputs); nil
	// means all inputs.
	RumbaTopo     nn.Topology
	NPUTopo       nn.Topology
	RumbaFeatures []int

	// TrainDesc and TestDesc are the Table 1 dataset descriptions.
	TrainDesc, TestDesc string

	// GenTrain and GenTest generate the datasets. n <= 0 requests the
	// paper-sized dataset; tests pass a small n.
	GenTrain func(n int) nn.Dataset
	GenTest  func(n int) nn.Dataset

	Cost CostModel
}

// Project extracts the Rumba-network feature subset from a kernel input.
// With no feature list the input is returned unchanged.
func (s *Spec) Project(in []float64) []float64 {
	if s.RumbaFeatures == nil {
		return in
	}
	out := make([]float64, len(s.RumbaFeatures))
	for i, idx := range s.RumbaFeatures {
		out[i] = in[idx]
	}
	return out
}

// Validate checks internal consistency of the spec (topology dimensions,
// feature projection, metric scale).
func (s *Spec) Validate() error {
	if s.Exact == nil || s.GenTrain == nil || s.GenTest == nil {
		return fmt.Errorf("bench %s: missing functions", s.Name)
	}
	if err := s.RumbaTopo.Validate(); err != nil {
		return fmt.Errorf("bench %s: rumba topology: %w", s.Name, err)
	}
	if err := s.NPUTopo.Validate(); err != nil {
		return fmt.Errorf("bench %s: npu topology: %w", s.Name, err)
	}
	wantRumbaIn := s.InDim
	if s.RumbaFeatures != nil {
		wantRumbaIn = len(s.RumbaFeatures)
		for _, idx := range s.RumbaFeatures {
			if idx < 0 || idx >= s.InDim {
				return fmt.Errorf("bench %s: feature index %d out of range", s.Name, idx)
			}
		}
	}
	if s.RumbaTopo.Inputs() != wantRumbaIn {
		return fmt.Errorf("bench %s: rumba topology inputs %d != projected kernel inputs %d",
			s.Name, s.RumbaTopo.Inputs(), wantRumbaIn)
	}
	if s.NPUTopo.Inputs() != s.InDim {
		return fmt.Errorf("bench %s: npu topology inputs %d != kernel inputs %d",
			s.Name, s.NPUTopo.Inputs(), s.InDim)
	}
	if s.RumbaTopo.Outputs() != s.OutDim || s.NPUTopo.Outputs() != s.OutDim {
		return fmt.Errorf("bench %s: topology outputs mismatch kernel outputs %d", s.Name, s.OutDim)
	}
	if s.Cost.CPUOps <= 0 || s.Cost.ApproxFraction <= 0 || s.Cost.ApproxFraction > 1 {
		return fmt.Errorf("bench %s: invalid cost model %+v", s.Name, s.Cost)
	}
	return nil
}

var registry = map[string]*Spec{}

func register(s *Spec) *Spec {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if _, dup := registry[s.Name]; dup {
		panic("bench: duplicate benchmark " + s.Name)
	}
	registry[s.Name] = s
	return s
}

// Get returns the benchmark with the given name.
func Get(name string) (*Spec, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	return s, nil
}

// Names returns all benchmark names in the paper's (alphabetical) order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns all benchmark specs in Names() order.
func All() []*Spec {
	names := Names()
	out := make([]*Spec, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// exactTargets runs the exact kernel over a set of inputs to produce a
// supervised dataset.
func exactTargets(spec func(in []float64) []float64, inputs [][]float64) nn.Dataset {
	d := nn.Dataset{Inputs: inputs, Targets: make([][]float64, len(inputs))}
	for i, in := range inputs {
		d.Targets[i] = spec(in)
	}
	return d
}

func sizeOr(n, def int) int {
	if n <= 0 {
		return def
	}
	return n
}
