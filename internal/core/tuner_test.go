package core

import "testing"

func TestNewTunerValidation(t *testing.T) {
	if _, err := NewTuner(ModeTOQ, -1); err == nil {
		t.Fatal("negative target must fail")
	}
	if _, err := NewTuner(ModeEnergy, 0); err == nil {
		t.Fatal("zero energy budget must fail")
	}
	if _, err := NewTuner(ModeEnergy, 1.5); err == nil {
		t.Fatal("budget above 1 must fail")
	}
	if _, err := NewTuner(ModeQuality, 2); err == nil {
		t.Fatal("keep-up fraction above 1 must fail")
	}
	if _, err := NewTuner(TunerMode(99), 0.5); err == nil {
		t.Fatal("unknown mode must fail")
	}
}

func TestTunerModeStrings(t *testing.T) {
	if ModeTOQ.String() != "TOQ" || ModeEnergy.String() != "Energy" || ModeQuality.String() != "Quality" {
		t.Fatal("mode strings")
	}
}

func TestTOQModeHoldsThreshold(t *testing.T) {
	tu, err := NewTuner(ModeTOQ, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if tu.Threshold != 0.10 {
		t.Fatalf("initial threshold = %v", tu.Threshold)
	}
	tu.Observe(InvocationStats{Elements: 100, Fixed: 90})
	tu.Observe(InvocationStats{Elements: 100, Fixed: 0})
	if tu.Threshold != 0.10 {
		t.Fatalf("TOQ threshold must stay pinned, got %v", tu.Threshold)
	}
}

func TestEnergyModeAdjustsThreshold(t *testing.T) {
	tu, _ := NewTuner(ModeEnergy, 0.2)
	start := tu.Threshold
	// Over budget: threshold must rise (fewer re-executions next time).
	tu.Observe(InvocationStats{Elements: 100, Fixed: 50})
	if tu.Threshold <= start {
		t.Fatalf("over budget must raise threshold: %v -> %v", start, tu.Threshold)
	}
	high := tu.Threshold
	// Under budget: threshold must fall (better quality next time).
	tu.Observe(InvocationStats{Elements: 100, Fixed: 5})
	if tu.Threshold >= high {
		t.Fatalf("under budget must lower threshold: %v -> %v", high, tu.Threshold)
	}
}

func TestEnergyModeConvergesToBudget(t *testing.T) {
	// Feed a synthetic workload where the fixed fraction shrinks as the
	// threshold grows; the tuner must settle near the budget.
	tu, _ := NewTuner(ModeEnergy, 0.25)
	fixedFor := func(th float64) int {
		// 50% of elements have predicted error above 0.05, 25% above 0.2,
		// 10% above 0.5.
		switch {
		case th <= 0.05:
			return 50
		case th <= 0.2:
			return 25
		case th <= 0.5:
			return 10
		default:
			return 2
		}
	}
	for i := 0; i < 50; i++ {
		tu.Observe(InvocationStats{Elements: 100, Fixed: fixedFor(tu.Threshold)})
	}
	if f := fixedFor(tu.Threshold); f > 25 {
		t.Fatalf("tuner did not converge to the budget: threshold %v fixes %d%%", tu.Threshold, f)
	}
}

func TestQualityModeUsesUtilisation(t *testing.T) {
	tu, _ := NewTuner(ModeQuality, 0.3)
	start := tu.Threshold
	// CPU idle: fix more (lower threshold).
	tu.Observe(InvocationStats{Elements: 100, Fixed: 10, CPUUtilisation: 0.2})
	if tu.Threshold >= start {
		t.Fatal("idle CPU must lower the threshold")
	}
	low := tu.Threshold
	// CPU fell behind: back off.
	tu.Observe(InvocationStats{Elements: 100, Fixed: 60, CPUUtilisation: 1})
	if tu.Threshold <= low {
		t.Fatal("overloaded CPU must raise the threshold")
	}
	// Saturated but keeping up: hold.
	mid := tu.Threshold
	tu.Observe(InvocationStats{Elements: 100, Fixed: 20, CPUUtilisation: 0.95})
	if tu.Threshold != mid {
		t.Fatal("a well-utilised CPU within the keep-up bound must hold the threshold")
	}
}

func TestTunerThresholdBounds(t *testing.T) {
	tu, _ := NewTuner(ModeEnergy, 0.5)
	for i := 0; i < 200; i++ {
		tu.Observe(InvocationStats{Elements: 10, Fixed: 10}) // always over budget
	}
	if tu.Threshold > 10 {
		t.Fatalf("threshold unbounded above: %v", tu.Threshold)
	}
	for i := 0; i < 500; i++ {
		tu.Observe(InvocationStats{Elements: 10, Fixed: 0})
	}
	if tu.Threshold < 1e-4 {
		t.Fatalf("threshold unbounded below: %v", tu.Threshold)
	}
}

func TestTunerIgnoresEmptyInvocation(t *testing.T) {
	tu, _ := NewTuner(ModeEnergy, 0.5)
	before := tu.Threshold
	tu.Observe(InvocationStats{})
	if tu.Threshold != before {
		t.Fatal("empty invocation must not move the threshold")
	}
}
