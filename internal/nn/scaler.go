package nn

import "rumba/internal/tensor"

// Scaler normalises kernel inputs/outputs into a range the sigmoid networks
// learn well ([0,1] per dimension) and maps network outputs back to kernel
// space. The NPU work performs the same normalisation when compiling a code
// region to the accelerator.
type Scaler struct {
	InMin, InMax   []float64
	OutMin, OutMax []float64
}

// FitScaler computes per-dimension ranges from a training set. Degenerate
// dimensions (constant value) get a unit span so scaling stays invertible.
func FitScaler(inputs, targets [][]float64) *Scaler {
	s := &Scaler{
		InMin:  columnMin(inputs),
		InMax:  columnMax(inputs),
		OutMin: columnMin(targets),
		OutMax: columnMax(targets),
	}
	fixDegenerate(s.InMin, s.InMax)
	fixDegenerate(s.OutMin, s.OutMax)
	return s
}

func columnMin(rows [][]float64) []float64 {
	m := append([]float64(nil), rows[0]...)
	for _, r := range rows[1:] {
		for j, v := range r {
			if v < m[j] {
				m[j] = v
			}
		}
	}
	return m
}

func columnMax(rows [][]float64) []float64 {
	m := append([]float64(nil), rows[0]...)
	for _, r := range rows[1:] {
		for j, v := range r {
			if v > m[j] {
				m[j] = v
			}
		}
	}
	return m
}

func fixDegenerate(lo, hi []float64) {
	for j := range lo {
		if hi[j]-lo[j] < 1e-12 {
			hi[j] = lo[j] + 1
		}
	}
}

// ScaleIn maps a kernel-space input into [0,1]^d (clamped).
func (s *Scaler) ScaleIn(in []float64) []float64 {
	out := make([]float64, len(in))
	s.ScaleInTo(out, in)
	return out
}

// ScaleInTo is ScaleIn into a caller-owned destination (allocation-free hot
// path); dst and in must be the same length.
func (s *Scaler) ScaleInTo(dst, in []float64) {
	for j, v := range in {
		dst[j] = tensor.Clamp((v-s.InMin[j])/(s.InMax[j]-s.InMin[j]), -0.25, 1.25)
	}
}

// ScaleOut maps a kernel-space target into [0,1]^d.
func (s *Scaler) ScaleOut(t []float64) []float64 {
	out := make([]float64, len(t))
	for j, v := range t {
		out[j] = (v - s.OutMin[j]) / (s.OutMax[j] - s.OutMin[j])
	}
	return out
}

// UnscaleOut maps a network output in [0,1]^d back to kernel space.
func (s *Scaler) UnscaleOut(o []float64) []float64 {
	out := make([]float64, len(o))
	s.UnscaleOutTo(out, o)
	return out
}

// UnscaleOutTo is UnscaleOut into a caller-owned destination
// (allocation-free hot path); dst and o must be the same length.
func (s *Scaler) UnscaleOutTo(dst, o []float64) {
	for j, v := range o {
		dst[j] = s.OutMin[j] + v*(s.OutMax[j]-s.OutMin[j])
	}
}

// ScaleDataset returns a copy of the dataset normalised for training.
func (s *Scaler) ScaleDataset(d Dataset) Dataset {
	out := Dataset{
		Inputs:  make([][]float64, len(d.Inputs)),
		Targets: make([][]float64, len(d.Targets)),
	}
	for i := range d.Inputs {
		out.Inputs[i] = s.ScaleIn(d.Inputs[i])
		out.Targets[i] = s.ScaleOut(d.Targets[i])
	}
	return out
}
