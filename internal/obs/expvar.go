package obs

import (
	"expvar"
	"sync"
	"sync/atomic"
)

// published maps an expvar name to the swappable registry holder backing it.
// expvar itself forbids re-publishing a name (it panics), so the holder is
// registered with expvar exactly once and later Publish calls swap the
// registry behind it instead.
var (
	publishMu sync.Mutex
	published = map[string]*atomic.Pointer[Registry]{}
)

// Publish exposes the registry on the process's expvar page (the standard
// /debug/vars endpoint) under the given name; each scrape re-snapshots, so
// the endpoint always shows live values.
//
// Publish is idempotent per name: publishing a second registry under a name
// already taken rebinds the endpoint to the new registry instead of
// panicking expvar — one process can run e.g. the demo and the server, or a
// test suite can publish per-test registries, without tripping expvar's
// duplicate-name panic.
func Publish(name string, r *Registry) {
	publishMu.Lock()
	defer publishMu.Unlock()
	holder, ok := published[name]
	if !ok {
		holder = &atomic.Pointer[Registry]{}
		holder.Store(r)
		published[name] = holder
		expvar.Publish(name, expvar.Func(func() any { return holder.Load().Snapshot() }))
		return
	}
	holder.Store(r)
}
