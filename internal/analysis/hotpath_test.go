package analysis

import "testing"

// TestHotpathFlagsAllocConstructs: every allocating construct in a
// //rumba:hotpath function is a finding.
func TestHotpathFlagsAllocConstructs(t *testing.T) {
	diags := runFixture(t, `package hp

//rumba:hotpath
func bad(xs []float64, n int) []float64 {
	buf := make([]float64, n)
	buf = append(buf, 1.0)
	m := map[string]int{}
	m["k"] = 1
	p := &struct{ x int }{x: 1}
	_ = p
	s := "a" + "b"
	_ = []byte(s)
	go func() {}()
	return buf
}
`, AnalyzerHotpath)
	expectDiags(t, diags, "hotpath", 7,
		"make allocates",
		"append may grow",
		"map literal allocates",
		"address-taken composite literal",
		"string concatenation allocates",
		"string/byte-slice conversion",
		"go statement allocates",
	)
}

// TestHotpathSkipsColdPanicGuards: guard clauses that end in panic may
// allocate freely (the fmt.Sprintf-into-panic idiom of the real kernels).
func TestHotpathSkipsColdPanicGuards(t *testing.T) {
	diags := runFixture(t, `package hp

import "fmt"

//rumba:hotpath
func guarded(dst, in []float64) {
	if len(dst) != len(in) {
		panic(fmt.Sprintf("dst %d != in %d", len(dst), len(in)))
	}
	for i := range in {
		dst[i] = in[i] * 2
	}
}
`, AnalyzerHotpath)
	expectDiags(t, diags, "hotpath", 0)
}

// TestHotpathCallGraphPropagation: calls into module functions are fine
// when the callee is provably allocation-free or itself //rumba:hotpath,
// and findings otherwise. External calls need the allowlist.
func TestHotpathCallGraphPropagation(t *testing.T) {
	diags := runFixture(t, `package hp

import (
	"math"
	"sort"
)

func cleanHelper(x float64) float64 { return math.Abs(x) * 2 }

func allocHelper(n int) []float64 { return make([]float64, n) }

//rumba:hotpath
func annotatedLeaf(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
}

//rumba:hotpath
func caller(dst []float64, n int) {
	annotatedLeaf(dst)              // ok: callee is hotpath
	dst[0] = cleanHelper(dst[0])    // ok: callee provably allocation-free
	_ = allocHelper(n)              // finding: callee allocates
	sort.Float64s(dst)              // finding: external, not allowlisted
}
`, AnalyzerHotpath)
	expectDiags(t, diags, "hotpath", 2,
		"hp.allocHelper, which is neither //rumba:hotpath nor provably allocation-free",
		"calls external sort.Float64s",
	)
}

// TestHotpathInterfaceAndClosure: interface dispatch, capturing closures,
// boxing into interface parameters, and defer-in-loop are findings;
// non-capturing literals and straight-line defers are not.
func TestHotpathInterfaceAndClosure(t *testing.T) {
	diags := runFixture(t, `package hp

type iface interface{ Do(x int) int }

func sinkAny(v any) {}

//rumba:hotpath
func dyn(i iface, xs []int) int {
	total := 0
	for _, x := range xs {
		total += i.Do(x) // finding: interface dispatch
	}
	f := func(a int) int { return a + total } // finding: captures total
	g := func(a int) int { return a * 2 }     // ok: no capture
	sinkAny(xs[0])                            // finding: boxes int into any
	for range xs {
		defer g(1) // finding: defer in loop
	}
	return f(1)
}
`, AnalyzerHotpath)
	expectDiags(t, diags, "hotpath", 4,
		"dynamic call to iface.Do",
		"closure captures total",
		"boxes into an interface parameter",
		"defer inside a loop",
	)
}

// TestHotpathZeroSizeBoxingIsFree: passing a zero-sized value to an
// interface parameter boxes to a static sentinel, not a heap allocation
// (the context.Value(ctxKey{}) idiom of internal/trace).
func TestHotpathZeroSizeBoxingIsFree(t *testing.T) {
	diags := runFixture(t, `package hp

type key struct{}

type pair struct {
	a key
	b [0]int
}

func sinkAny(v any) bool { return v != nil }

//rumba:hotpath
func lookups(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if sinkAny(key{}) {
			total++
		}
		if sinkAny(pair{}) {
			total++
		}
	}
	return total
}

//rumba:hotpath
func boxed(x int) bool { return sinkAny(x) }
`, AnalyzerHotpath)
	expectDiags(t, diags, "hotpath", 1, "boxes into an interface parameter")
}

// TestHotpathAllowSuppression: //rumba:allow hotpath (and the alloc alias)
// acknowledges a deliberate allocation without failing the run.
func TestHotpathAllowSuppression(t *testing.T) {
	diags := runFixture(t, `package hp

//rumba:hotpath
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		//rumba:allow alloc amortised grow path, measured by AllocsPerRun
		buf = make([]float64, n)
	}
	return buf[:n]
}
`, AnalyzerHotpath)
	expectDiags(t, diags, "hotpath", 0)
	// The finding exists but is suppressed, not absent.
	total := 0
	for _, d := range diags {
		if d.Analyzer == "hotpath" && d.Suppressed {
			total++
		}
	}
	if total != 1 {
		t.Fatalf("want exactly 1 suppressed hotpath finding, got %d", total)
	}
}

// TestHotpathUnannotatedIsQuiet: functions without the directive are never
// analysed, however much they allocate.
func TestHotpathUnannotatedIsQuiet(t *testing.T) {
	diags := runFixture(t, `package hp

func churn(n int) [][]float64 {
	out := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, make([]float64, n))
	}
	return out
}
`, AnalyzerHotpath)
	expectDiags(t, diags, "hotpath", 0)
}
