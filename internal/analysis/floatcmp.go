package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// floatcmp: the quality and tuner layers steer recovery with floating-
// point thresholds (predicted error vs TOQ bound); an exact ==/!= on such
// values silently never (or always) fires once roundoff enters, which in
// Rumba's case means recovery quietly stops firing. The analyzer flags
// float equality comparisons module-wide. Two idioms stay legal:
//
//   - comparison against an exact-zero constant (a sentinel/"unset" guard,
//     not a numeric tolerance check), and
//   - x != x (the classic NaN test).
//
// Everything else should go through an epsilon helper such as
// quality.ApproxEqual.

// AnalyzerFloatCmp flags == and != between floating-point operands.
var AnalyzerFloatCmp = &Analyzer{
	Name:     "floatcmp",
	Doc:      "no ==/!= on floating-point values; use an epsilon helper (quality.ApproxEqual)",
	Severity: SeverityWarning,
	Run: func(p *Pass) {
		info := p.Pkg.Info
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloatExpr(info, be.X) && !isFloatExpr(info, be.Y) {
					return true
				}
				if isZeroConst(info, be.X) || isZeroConst(info, be.Y) {
					return true
				}
				if isSelfCompare(be) {
					return true // x != x: NaN check
				}
				p.Reportf(be.OpPos, "floating-point %s comparison; use an epsilon helper (quality.ApproxEqual)", be.Op)
				return true
			})
		}
	},
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time constant equal to zero.
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	if k := tv.Value.Kind(); k != constant.Int && k != constant.Float {
		return false
	}
	return constant.Sign(tv.Value) == 0
}

// isSelfCompare reports whether both operands are the same plain
// identifier (or selector chain rendered identically).
func isSelfCompare(be *ast.BinaryExpr) bool {
	return exprString(be.X) != "" && exprString(be.X) == exprString(be.Y)
}

func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		if x := exprString(v.X); x != "" {
			return x + "." + v.Sel.Name
		}
	case *ast.ParenExpr:
		return exprString(v.X)
	}
	return ""
}
