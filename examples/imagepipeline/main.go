// Image pipeline: the paper's multimedia motivation made concrete.
//
// An edge-detection pipeline runs the sobel kernel over a full image on the
// approximate accelerator. The example renders three PGM images — the exact
// result, the unchecked accelerator result, and the Rumba-corrected result —
// plus a report of how the error tail (the perceptible artefacts of
// Figure 2) shrinks under Rumba.
//
//	go run ./examples/imagepipeline -out /tmp
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/core"
	"rumba/internal/imageutil"
	"rumba/internal/quality"
	"rumba/internal/trainer"
)

func main() {
	outDir := flag.String("out", "", "directory for exact/approx/rumba PGM renders (empty: skip writing)")
	size := flag.Int("size", 192, "image side length")
	flag.Parse()
	if err := run(*outDir, *size); err != nil {
		log.Fatal(err)
	}
}

func run(outDir string, size int) error {
	spec, err := bench.Get("sobel")
	if err != nil {
		return err
	}

	// Offline training on the benchmark's training image.
	train := spec.GenTrain(6000)
	acfg, err := trainer.TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train,
		trainer.DefaultAccelTrainConfig(spec.Name))
	if err != nil {
		return err
	}
	acc, err := accel.New(acfg, 0)
	if err != nil {
		return err
	}
	preds, err := trainer.TrainPredictors(spec, train, trainer.Observe(spec, acc, train))
	if err != nil {
		return err
	}

	// The pipeline input: a fresh scene the accelerator never saw.
	img := imageutil.Synthetic(size, size, "imagepipeline/scene")
	exact := bench.SobelImage(img)

	// Run every pixel's 3x3 window through the accelerator, with the tree
	// checker deciding which pixels the CPU recomputes. The per-element
	// bound of 20% targets exactly the perceptible artefacts: pixels whose
	// predicted error exceeds 20% of the pixel range.
	tuner, err := core.NewTuner(core.ModeTOQ, 0.20)
	if err != nil {
		return err
	}
	approx := imageutil.NewGray(size, size)
	rumba := imageutil.NewGray(size, size)
	preds.Tree.Reset()
	fixed := 0
	var uncheckedErrs, rumbaErrs []float64
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			window := make([]float64, 9)
			k := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					window[k] = img.At(x+dx, y+dy)
					k++
				}
			}
			out := acc.Invoke(window)
			approx.Set(x, y, imageutil.Clamp255(out[0]))
			ex := spec.Exact(window)
			e := quality.ElementError(spec.Metric, ex, out, spec.Scale)
			uncheckedErrs = append(uncheckedErrs, e)
			if preds.Tree.PredictError(window, out) > tuner.Threshold {
				// Recovery: the pure kernel re-executes on the CPU and the
				// merger commits the exact pixel.
				rumba.Set(x, y, ex[0])
				rumbaErrs = append(rumbaErrs, 0)
				fixed++
			} else {
				rumba.Set(x, y, imageutil.Clamp255(out[0]))
				rumbaErrs = append(rumbaErrs, e)
			}
		}
	}

	un := quality.Summarize(uncheckedErrs)
	ru := quality.Summarize(rumbaErrs)
	fmt.Printf("edge-detection pipeline on a %dx%d scene\n", size, size)
	fmt.Printf("  %-22s %8s %8s %14s\n", "", "mean err", "max err", ">20% err pixels")
	fmt.Printf("  %-22s %7.2f%% %7.1f%% %13.2f%%\n", "unchecked accelerator", 100*un.Mean, 100*un.Max, 100*un.LargeFraction)
	fmt.Printf("  %-22s %7.2f%% %7.1f%% %13.2f%%\n", "Rumba (treeErrors)", 100*ru.Mean, 100*ru.Max, 100*ru.LargeFraction)
	fmt.Printf("  pixels re-executed: %.1f%%\n", 100*float64(fixed)/float64(size*size))

	if outDir != "" {
		for name, g := range map[string]*imageutil.Gray{
			"sobel_exact.pgm": exact, "sobel_approx.pgm": approx, "sobel_rumba.pgm": rumba,
		} {
			path := filepath.Join(outDir, name)
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := g.WritePGM(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("  wrote %s\n", path)
		}
	}
	return nil
}
