package analysis

import "testing"

func TestConcurrencyTable(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
		subs []string
	}{
		{
			name: "mutex parameter by value",
			src: `package p

import "sync"

func locked(mu sync.Mutex, x int) int {
	mu.Lock()
	defer mu.Unlock()
	return x
}`,
			want: 1,
			subs: []string{"passes sync.Mutex by value"},
		},
		{
			name: "mutex pointer parameter is fine",
			src: `package p

import "sync"

func locked(mu *sync.Mutex, x int) int {
	mu.Lock()
	defer mu.Unlock()
	return x
}`,
			want: 0,
		},
		{
			name: "waitgroup by value through a struct",
			src: `package p

import "sync"

type pool struct {
	wg sync.WaitGroup
}

func drain(p pool) { p.wg.Wait() }`,
			want: 1,
			subs: []string{"passes sync.WaitGroup by value"},
		},
		{
			name: "value receiver carrying a lock",
			src: `package p

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c counter) peek() int { return c.n }`,
			want: 1,
			subs: []string{"receiver passes sync.Mutex"},
		},
		{
			name: "pointer receiver carrying a lock is fine",
			src: `package p

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}`,
			want: 0,
		},
		{
			name: "goroutine capturing a range loop variable",
			src: `package p

func spawn(xs []int, f func(int)) {
	for _, x := range xs {
		go func() {
			f(x)
		}()
	}
}`,
			want: 1,
			subs: []string{"captures loop variable x"},
		},
		{
			name: "loop variable passed as argument is fine",
			src: `package p

func spawn(xs []int, f func(int)) {
	for _, x := range xs {
		go func(v int) {
			f(v)
		}(x)
	}
}`,
			want: 0,
		},
		{
			name: "goroutine sending on a caller-owned channel without select",
			src: `package p

func produce(out chan<- int, n int) {
	go func() {
		for i := 0; i < n; i++ {
			out <- i
		}
	}()
}`,
			want: 1,
			subs: []string{"no cancellation path"},
		},
		{
			name: "select with done case is fine",
			src: `package p

func produce(out chan<- int, done <-chan struct{}, n int) {
	go func() {
		for i := 0; i < n; i++ {
			select {
			case out <- i:
			case <-done:
				return
			}
		}
	}()
}`,
			want: 0,
		},
		{
			name: "send on a locally created channel is the function's own protocol",
			src: `package p

func pipeline(n int) <-chan int {
	out := make(chan int, n)
	go func() {
		defer close(out)
		for i := 0; i < n; i++ {
			out <- i
		}
	}()
	return out
}`,
			want: 0,
		},
		{
			name: "pool value used after Put",
			src: `package p

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

func leak() int {
	buf := bufPool.Get().([]byte)
	bufPool.Put(buf)
	return len(buf)
}`,
			want: 1, // one report per variable, at its first use past the Put
			subs: []string{"used after being returned to its sync.Pool"},
		},
		{
			name: "put as the last act is fine",
			src: `package p

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

func ok() int {
	buf := bufPool.Get().([]byte)
	n := len(buf)
	bufPool.Put(buf)
	return n
}`,
			want: 0,
		},
		{
			name: "re-get after put revives the variable",
			src: `package p

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

func cycle() int {
	buf := bufPool.Get().([]byte)
	bufPool.Put(buf)
	buf = bufPool.Get().([]byte)
	n := len(buf)
	bufPool.Put(buf)
	return n
}`,
			want: 0,
		},
		{
			name: "returning a value whose Put is deferred",
			src: `package p

import "sync"

type req struct{ body []byte }

var reqPool = sync.Pool{New: func() any { return new(req) }}

func parse() *req {
	r := reqPool.Get().(*req)
	defer reqPool.Put(r)
	return r
}`,
			want: 1,
			subs: []string{"escapes via return while a deferred Put"},
		},
		{
			name: "conditional put in a deferred closure is the sanctioned escape hatch",
			src: `package p

import "sync"

type req struct{ body []byte }

var reqPool = sync.Pool{New: func() any { return new(req) }}

func handle(fail bool) int {
	r := reqPool.Get().(*req)
	recycle := true
	defer func() {
		if recycle {
			reqPool.Put(r)
		}
	}()
	if fail {
		recycle = false
		return 0
	}
	return len(r.body)
}`,
			want: 0,
		},
		{
			name: "get through a helper is out of scope",
			src: `package p

import "sync"

type batch struct{ items []int }

var batchPool = sync.Pool{New: func() any { return new(batch) }}

func newBatch() *batch {
	b := batchPool.Get().(*batch)
	b.items = b.items[:0]
	return b
}

func merge(pending map[int]int) {
	b := newBatch()
	for i, v := range b.items {
		pending[i] = v
	}
	batchPool.Put(b)
}`,
			want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := runFixture(t, tc.src, AnalyzerConcurrency)
			expectDiags(t, diags, "concurrency", tc.want, tc.subs...)
		})
	}
}
