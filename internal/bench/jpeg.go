package bench

import (
	"math"

	"rumba/internal/imageutil"
	"rumba/internal/nn"
	"rumba/internal/quality"
)

// jpeg (compression, Table 1): the 8x8-block DCT codec kernel — forward
// 2D DCT-II, quantisation with the standard JPEG luminance table, then
// dequantisation and inverse DCT. One kernel invocation encodes and decodes
// one block (64 inputs, 64 outputs); the quality metric is mean pixel diff.

// jpegQuantTable is the Annex K luminance quantisation table.
var jpegQuantTable = [64]float64{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// dctCos[u][x] = cos((2x+1) u pi / 16), precomputed at init.
var dctCos [8][8]float64

func init() {
	for u := 0; u < 8; u++ {
		for x := 0; x < 8; x++ {
			dctCos[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
}

func dctAlpha(u int) float64 {
	if u == 0 {
		return 1 / math.Sqrt2
	}
	return 1
}

// forwardDCT computes the 2D DCT-II of a level-shifted 8x8 block.
func forwardDCT(block *[64]float64) [64]float64 {
	var out [64]float64
	for v := 0; v < 8; v++ {
		for u := 0; u < 8; u++ {
			var s float64
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					s += block[y*8+x] * dctCos[u][x] * dctCos[v][y]
				}
			}
			out[v*8+u] = 0.25 * dctAlpha(u) * dctAlpha(v) * s
		}
	}
	return out
}

// inverseDCT computes the 2D DCT-III (inverse) of an 8x8 coefficient block.
func inverseDCT(coef *[64]float64) [64]float64 {
	var out [64]float64
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var s float64
			for v := 0; v < 8; v++ {
				for u := 0; u < 8; u++ {
					s += dctAlpha(u) * dctAlpha(v) * coef[v*8+u] * dctCos[u][x] * dctCos[v][y]
				}
			}
			out[y*8+x] = 0.25 * s
		}
	}
	return out
}

// jpegExact encodes and decodes one 8x8 pixel block.
//rumba:pure
func jpegExact(in []float64) []float64 {
	var block [64]float64
	for i := 0; i < 64; i++ {
		block[i] = in[i] - 128 // level shift
	}
	coef := forwardDCT(&block)
	for i := 0; i < 64; i++ {
		coef[i] = math.Round(coef[i]/jpegQuantTable[i]) * jpegQuantTable[i]
	}
	rec := inverseDCT(&coef)
	out := make([]float64, 64)
	for i := 0; i < 64; i++ {
		out[i] = imageutil.Clamp255(rec[i] + 128)
	}
	return out
}

// imageBlocks slices an image into non-overlapping 8x8 blocks, one kernel
// input per block. maxBlocks <= 0 keeps all blocks.
func imageBlocks(img *imageutil.Gray, maxBlocks int) [][]float64 {
	var out [][]float64
	for by := 0; by+8 <= img.H; by += 8 {
		for bx := 0; bx+8 <= img.W; bx += 8 {
			blk := make([]float64, 64)
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					blk[y*8+x] = img.At(bx+x, by+y)
				}
			}
			out = append(out, blk)
			if maxBlocks > 0 && len(out) >= maxBlocks {
				return out
			}
		}
	}
	return out
}

// JPEG is the jpeg benchmark spec. Train data comes from a 220x200 image and
// test data from a 512x512 image, as in Table 1 (procedurally generated; see
// DESIGN.md substitutions).
var JPEG = register(&Spec{
	Name:      "jpeg",
	Domain:    "Compression",
	InDim:     64,
	OutDim:    64,
	Exact:     jpegExact,
	Metric:    quality.MeanPixelDiff,
	Scale:     255,
	RumbaTopo: nn.MustTopology("64->16->64"),
	NPUTopo:   nn.MustTopology("64->16->64"),
	TrainDesc: "220x200 pixel image",
	TestDesc:  "512x512 pixel image",
	GenTrain: func(n int) nn.Dataset {
		img := imageutil.Synthetic(224, 200, "jpeg/train") // multiple of 8 wide
		return exactTargets(jpegExact, imageBlocks(img, n))
	},
	GenTest: func(n int) nn.Dataset {
		img := imageutil.Synthetic(512, 512, "jpeg/test")
		return exactTargets(jpegExact, imageBlocks(img, n))
	},
	// Two separable 8x8 DCT passes (a production codec uses the fast
	// factorised DCT, ~2*1024 MACs) plus quantisation and level shifts.
	Cost: CostModel{CPUOps: 2600, ApproxFraction: 0.82},
})
