// Package pipeline models the overlapped execution of the approximation
// accelerator and the host CPU (Figure 8): while the accelerator works on
// iteration i, the CPU re-executes previously flagged iterations it receives
// over the recovery queue. The model is a discrete event simulation over the
// per-iteration recovery bits; it produces the total execution time (hence
// the Figure 15 speedups), the CPU-activity trace of Figure 18, and stall
// accounting.
package pipeline

import "fmt"

// Params describes one run's timing.
type Params struct {
	// AccelCyclesPerIter is the accelerator latency per iteration.
	AccelCyclesPerIter float64
	// CPURecomputeCycles is the CPU latency to re-execute one iteration
	// exactly.
	CPURecomputeCycles float64
	// CheckerCycles is the checker latency per iteration; it only gates
	// the pipeline under the Figure 9a serial placement (AddCheckerToPath
	// true). In the parallel placement (9b) the check overlaps the
	// accelerator and adds nothing to the critical path as long as it is
	// shorter than the accelerator invocation (Figure 17 verifies this).
	CheckerCycles    float64
	AddCheckerToPath bool
	// RecoveryQueueCap bounds the number of outstanding flagged
	// iterations; when the queue is full the accelerator stalls (back-
	// pressure). <= 0 means a paper-default 64-entry queue.
	RecoveryQueueCap int
}

// Result is the outcome of a pipeline simulation.
type Result struct {
	// TotalCycles is the makespan of the approximate region.
	TotalCycles float64
	// AccelCycles is the accelerator busy time.
	AccelCycles float64
	// CPUBusyCycles is the CPU re-execution busy time.
	CPUBusyCycles float64
	// AccelStallCycles counts accelerator back-pressure stalls (recovery
	// queue full).
	AccelStallCycles float64
	// DrainCycles is the tail after the accelerator finished while the CPU
	// was still re-executing.
	DrainCycles float64
	// CPUUtilisation is CPUBusyCycles / TotalCycles.
	CPUUtilisation float64
}

// Simulate runs the Figure 8 overlap model for a sequence of recovery bits
// (flags[i] is true when iteration i must be re-executed on the CPU).
func Simulate(flags []bool, p Params) (Result, error) {
	if p.AccelCyclesPerIter <= 0 || p.CPURecomputeCycles <= 0 {
		return Result{}, fmt.Errorf("pipeline: non-positive cycle parameters %+v", p)
	}
	cap := p.RecoveryQueueCap
	if cap <= 0 {
		cap = 64
	}
	iterCycles := p.AccelCyclesPerIter
	if p.AddCheckerToPath {
		iterCycles += p.CheckerCycles
	}

	var res Result
	// queue holds the completion times at which each flagged iteration
	// became available to the CPU.
	queue := make([]float64, 0, cap)
	var accelTime float64 // accelerator-side clock
	var cpuFree float64   // when the CPU finishes its current recompute
	pop := func() {
		// The CPU starts the oldest queued recompute as soon as both the
		// work item and the CPU are available.
		start := queue[0]
		if cpuFree > start {
			start = cpuFree
		}
		cpuFree = start + p.CPURecomputeCycles
		res.CPUBusyCycles += p.CPURecomputeCycles
		queue = queue[1:]
	}
	for _, flagged := range flags {
		// Drain every queued item the CPU can finish before this
		// iteration completes; this keeps the queue occupancy honest.
		for len(queue) > 0 && maxf(queue[0], cpuFree)+0 <= accelTime {
			pop()
		}
		if len(queue) == cap {
			// Back-pressure: the accelerator stalls until the CPU frees
			// a queue slot.
			stallUntil := maxf(queue[0], cpuFree) + p.CPURecomputeCycles
			// The CPU must actually run the head item for a slot to free.
			pop()
			if stallUntil > accelTime {
				res.AccelStallCycles += stallUntil - accelTime
				accelTime = stallUntil
			}
		}
		accelTime += iterCycles
		res.AccelCycles += iterCycles
		if flagged {
			queue = append(queue, accelTime)
		}
	}
	// Drain the remaining queue after the accelerator finishes.
	for len(queue) > 0 {
		pop()
	}
	res.TotalCycles = accelTime
	if cpuFree > res.TotalCycles {
		res.DrainCycles = cpuFree - res.TotalCycles
		res.TotalCycles = cpuFree
	}
	if res.TotalCycles > 0 {
		res.CPUUtilisation = res.CPUBusyCycles / res.TotalCycles
	}
	return res, nil
}

// WholeAppSpeedup combines the approximate-region makespan with the
// never-approximated remainder of the application (Amdahl term) into the
// Figure 15 speedup over the CPU baseline.
//
// elements is the iteration count, kernelCPUCycles the exact kernel latency
// per iteration, approxFraction the Table-style fraction of application time
// spent in the region.
func WholeAppSpeedup(regionCycles float64, elements int, kernelCPUCycles, approxFraction float64) float64 {
	if elements <= 0 || kernelCPUCycles <= 0 || approxFraction <= 0 || approxFraction > 1 {
		return 0
	}
	regionCPU := float64(elements) * kernelCPUCycles
	appCPU := regionCPU / approxFraction
	nonApprox := appCPU - regionCPU
	return appCPU / (nonApprox + regionCycles)
}

// ActivityTrace returns, for each iteration, whether the CPU was busy
// re-executing at the moment the accelerator finished that iteration — the
// bottom half of Figure 18. It replays the same model as Simulate.
func ActivityTrace(flags []bool, p Params) ([]bool, error) {
	if p.AccelCyclesPerIter <= 0 || p.CPURecomputeCycles <= 0 {
		return nil, fmt.Errorf("pipeline: non-positive cycle parameters %+v", p)
	}
	iterCycles := p.AccelCyclesPerIter
	if p.AddCheckerToPath {
		iterCycles += p.CheckerCycles
	}
	trace := make([]bool, len(flags))
	var accelTime, cpuFree float64
	var queue []float64
	for i, flagged := range flags {
		for len(queue) > 0 && maxf(queue[0], cpuFree) <= accelTime {
			start := maxf(queue[0], cpuFree)
			cpuFree = start + p.CPURecomputeCycles
			queue = queue[1:]
		}
		accelTime += iterCycles
		if flagged {
			queue = append(queue, accelTime)
		}
		trace[i] = cpuFree > accelTime || len(queue) > 0
	}
	return trace, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
