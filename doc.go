// Package rumba is a from-scratch Go reproduction of "Rumba: An Online
// Quality Management System for Approximate Computing" (Khudia, Zamirai,
// Samadi, Mahlke — ISCA 2015).
//
// The library lives under internal/: the Rumba runtime (internal/core), the
// NPU accelerator model (internal/accel), the light-weight error checkers
// (internal/predictor), the offline trainers (internal/trainer), the seven
// Table 1 benchmarks (internal/bench) and the analytical energy/latency
// models (internal/energy, internal/pipeline). The executables under cmd/
// regenerate every table and figure of the paper's evaluation; runnable
// examples live under examples/.
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// substitutions made for the paper's infrastructure, and EXPERIMENTS.md for
// the paper-vs-measured record. The repository-level benchmarks in
// bench_test.go regenerate each experiment via `go test -bench=.`.
package rumba
