// Software approximation under Rumba (no accelerator at all).
//
// The paper's quality-management design is not tied to the NPU: "all these
// software approximation techniques need a quality management system". This
// example approximates the sobel kernel with two Paraprox-style software
// techniques — tile approximation and fuzzy memoization — and puts Rumba's
// checker/recovery loop on top of each. The same detection machinery that
// guards the hardware accelerator guards the software approximators.
//
//	go run ./examples/software
package main

import (
	"fmt"
	"log"

	"rumba/internal/approx"
	"rumba/internal/bench"
	"rumba/internal/core"
	"rumba/internal/exec"
	"rumba/internal/trainer"
)

func main() {
	spec, err := bench.Get("sobel")
	if err != nil {
		log.Fatal(err)
	}
	train := spec.GenTrain(8000)
	test := spec.GenTest(20000)

	tile, err := approx.NewTile(spec, 4)
	if err != nil {
		log.Fatal(err)
	}
	memo, err := approx.NewMemo(spec, 5, train.Inputs, 0)
	if err != nil {
		log.Fatal(err)
	}
	// Warm the memo table on the training inputs (its offline phase).
	for _, in := range train.Inputs {
		memo.Invoke(in)
	}

	fmt.Println("sobel approximated in software, managed by Rumba (treeErrors, 20% element bound)")
	fmt.Printf("%-22s %-12s %-14s %-12s %-10s\n",
		"approximator", "unchecked", "with Rumba", "re-executed", "energy")
	for _, entry := range []struct {
		name string
		eng  exec.Executor
	}{
		{"tile (stride 4)", tile},
		{"fuzzy memoization", memo},
	} {
		// Offline: observe the approximator's errors on the training set
		// and fit the checkers to them — the same flow as for the NPU.
		obs := trainer.Observe(spec, entry.eng, train)
		preds, err := trainer.TrainPredictors(spec, train, obs)
		if err != nil {
			log.Fatal(err)
		}
		if r, ok := entry.eng.(interface{ Reset() }); ok {
			r.Reset()
		}
		if entry.name == "fuzzy memoization" {
			// Re-warm after reset so the online phase sees steady state.
			for _, in := range train.Inputs {
				memo.Invoke(in)
			}
		}
		tuner, err := core.NewTuner(core.ModeTOQ, 0.20)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := core.NewSystem(core.Config{
			Spec: spec, Accel: entry.eng, Checker: preds.Tree, Tuner: tuner,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.Run(test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %-12s %-14s %-12s %-10s\n",
			entry.name,
			fmt.Sprintf("%.2f%%", 100*rep.UncheckedError),
			fmt.Sprintf("%.2f%%", 100*rep.OutputError),
			fmt.Sprintf("%.1f%%", 100*float64(rep.Fixed)/float64(rep.Elements)),
			fmt.Sprintf("%.2fx", rep.Energy.Savings))
	}
	fmt.Println("\nthe same checkers, tuner and recovery loop manage hardware and software")
	fmt.Println("approximation alike — only the executor behind the interface changed.")
}
