package tune

import (
	"math"
	"sort"
)

// Surrogate models of the sweep (the autoAx trick): a linear least-squares
// model over the combo axes — datapath one-hots, activation-table step
// (2^-lutBits), checker one-hots — plus a monotone batch-shape spline fitted
// by isotonic regression on the reference combo's measured cost curve.
// Quality is batch-invariant by construction (the batch kernels are
// bit-identical across batch sizes), so the quality surrogate is a function
// of the combo alone; cost is per-combo affine in the shared shape:
// ns(c, b) ≈ u_c + v_c · s(b), calibrated through the combo's measured batch
// endpoints or, for combos with no measurements at all, through linear-model
// predictions of those endpoints.

// surrogates is the fitted model set; predict returns (quality, nsPerElem).
type surrogates struct {
	axes    Axes
	batchLo int
	batchHi int

	// shape maps a batch size to the monotone (non-increasing) normalised
	// cost shape, s(batchHi) = 1.
	shape map[int]float64

	// Per-combo observed data.
	comboQuality map[combo]float64          // mean measured quality
	comboNs      map[combo]map[int]float64  // batch -> measured ns
	// Linear models over combo features.
	qualityModel []float64
	nsLoModel    []float64
	nsHiModel    []float64
	featIndex    map[string]int
}

// fitSurrogates builds the model set from the measurements taken so far.
func fitSurrogates(grid []Point, axes Axes, measured map[int]Measurement) *surrogates {
	s := &surrogates{
		axes:         axes,
		batchLo:      axes.Batches[0],
		batchHi:      axes.Batches[len(axes.Batches)-1],
		comboQuality: map[combo]float64{},
		comboNs:      map[combo]map[int]float64{},
	}
	counts := map[combo]int{}
	for i, meas := range measured {
		c := grid[i].combo()
		counts[c]++
		s.comboQuality[c] += meas.Quality
		if s.comboNs[c] == nil {
			s.comboNs[c] = map[int]float64{}
		}
		s.comboNs[c][grid[i].Batch] = meas.NsPerElem
	}
	for c, n := range counts {
		s.comboQuality[c] /= float64(n)
	}

	s.fitShape()
	s.fitLinearModels()
	return s
}

// fitShape derives the monotone batch-shape spline from the combo with the
// most measured batches (the seed's reference curve), normalised to the
// largest batch and clamped non-increasing by isotonic regression. Batches
// the reference never measured interpolate linearly between neighbours.
func (s *surrogates) fitShape() {
	var ref combo
	best := 0
	// Deterministic choice: most measured batches, ties by combo order in a
	// sorted walk.
	combos := make([]combo, 0, len(s.comboNs))
	for c := range s.comboNs {
		combos = append(combos, c)
	}
	sort.Slice(combos, func(i, j int) bool {
		a, b := combos[i], combos[j]
		if a.Datapath != b.Datapath {
			return a.Datapath < b.Datapath
		}
		if a.LUTBits != b.LUTBits {
			return a.LUTBits < b.LUTBits
		}
		return a.Checker < b.Checker
	})
	for _, c := range combos {
		if n := len(s.comboNs[c]); n > best {
			best, ref = n, c
		}
	}

	s.shape = make(map[int]float64, len(s.axes.Batches))
	if best == 0 {
		for _, b := range s.axes.Batches {
			s.shape[b] = 1
		}
		return
	}
	curve := s.comboNs[ref]
	base := curve[s.batchHi]
	if base <= 0 {
		// No measurement at the top batch: normalise by the largest measured.
		for _, v := range curve {
			if v > base {
				base = v
			}
		}
		if base <= 0 {
			base = 1
		}
	}
	// Known shape values at measured batches, linear interpolation between
	// them (flat extrapolation at the ends), then PAVA non-increasing.
	vals := make([]float64, len(s.axes.Batches))
	for i, b := range s.axes.Batches {
		if v, ok := curve[b]; ok {
			vals[i] = v / base
			continue
		}
		vals[i] = math.NaN()
	}
	interpolateNaN(s.axes.Batches, vals)
	iso := isotonicNonIncreasing(vals)
	for i, b := range s.axes.Batches {
		s.shape[b] = iso[i]
	}
}

// fitLinearModels fits the least-squares models over combo features for
// quality and for the cost endpoints.
func (s *surrogates) fitLinearModels() {
	s.featIndex = comboFeatureIndex(s.axes)
	var X [][]float64
	var yq, ylo, yhi []float64
	for c, q := range s.comboQuality {
		row := s.features(c)
		X = append(X, row)
		yq = append(yq, q)
		ylo = append(ylo, s.nsAtOrScaled(c, s.batchLo))
		yhi = append(yhi, s.nsAtOrScaled(c, s.batchHi))
	}
	if len(X) == 0 {
		return
	}
	s.qualityModel = fitLinear(X, yq)
	s.nsLoModel = fitLinear(X, ylo)
	s.nsHiModel = fitLinear(X, yhi)
}

// nsAtOrScaled returns the combo's measured cost at batch b, shape-scaling
// its nearest measured batch when b itself was not measured.
func (s *surrogates) nsAtOrScaled(c combo, b int) float64 {
	curve := s.comboNs[c]
	if v, ok := curve[b]; ok {
		return v
	}
	// Scale from any measured batch through the shape.
	for _, mb := range s.axes.Batches {
		if v, ok := curve[mb]; ok && s.shape[mb] > 0 {
			return v * s.shape[b] / s.shape[mb]
		}
	}
	return 0
}

// predict returns the surrogate (quality, nsPerElem) for a point.
func (s *surrogates) predict(p Point) (float64, float64) {
	c := p.combo()
	q, haveQ := s.comboQuality[c]
	if !haveQ {
		q = evalLinear(s.qualityModel, s.features(c))
	}
	if q < 0 {
		q = 0
	}

	lo := s.nsAtOrScaled(c, s.batchLo)
	hi := s.nsAtOrScaled(c, s.batchHi)
	if lo <= 0 || hi <= 0 {
		lo = evalLinear(s.nsLoModel, s.features(c))
		hi = evalLinear(s.nsHiModel, s.features(c))
	}
	ns := s.affineShape(lo, hi, p.Batch)
	if ns < nsFloor {
		ns = nsFloor
	}
	return q, ns
}

// nsFloor keeps predictions strictly positive; predicted costs below it are
// clamped (a nanosecond per kiloelement is beyond any real datapath here).
const nsFloor = 1e-3

// affineShape evaluates ns(b) = u + v·s(b) with (u, v) solved from the
// endpoint values lo = ns(batchLo), hi = ns(batchHi).
func (s *surrogates) affineShape(lo, hi float64, batch int) float64 {
	sLo, sHi := s.shape[s.batchLo], s.shape[s.batchHi]
	sB, ok := s.shape[batch]
	if !ok {
		sB = 1
	}
	den := sLo - sHi
	if den <= 1e-12 {
		return hi
	}
	// With s normalised to s(batchHi)=1: v = (lo-hi)/(sLo-1), u = hi - v.
	v := (lo - hi) / den
	u := hi - v*sHi
	return u + v*sB
}

// features encodes a combo for the linear models.
func (s *surrogates) features(c combo) []float64 {
	row := make([]float64, len(s.featIndex))
	row[s.featIndex["intercept"]] = 1
	if i, ok := s.featIndex["dp:"+c.Datapath]; ok {
		row[i] = 1
	}
	if i, ok := s.featIndex["chk:"+c.Checker]; ok {
		row[i] = 1
	}
	if i, ok := s.featIndex["step"]; ok && c.LUTBits > 0 {
		// The activation-table step is the resolution knob quality scales
		// with: step 2^-bits.
		row[i] = math.Pow(2, -float64(c.LUTBits))
	}
	return row
}

// comboFeatureIndex assigns feature columns for the axes.
func comboFeatureIndex(axes Axes) map[string]int {
	idx := map[string]int{"intercept": 0}
	n := 1
	for _, dp := range axes.Datapaths {
		idx["dp:"+dp] = n
		n++
	}
	for _, chk := range axes.Checkers {
		idx["chk:"+chk] = n
		n++
	}
	idx["step"] = n
	return idx
}

// interpolateNaN fills NaN holes in vals by linear interpolation over the
// batch axis, with flat extrapolation at the ends.
func interpolateNaN(batches []int, vals []float64) {
	n := len(vals)
	for i := 0; i < n; i++ {
		if !math.IsNaN(vals[i]) {
			continue
		}
		lo := i - 1
		for lo >= 0 && math.IsNaN(vals[lo]) {
			lo--
		}
		hi := i + 1
		for hi < n && math.IsNaN(vals[hi]) {
			hi++
		}
		switch {
		case lo < 0 && hi >= n:
			vals[i] = 1
		case lo < 0:
			vals[i] = vals[hi]
		case hi >= n:
			vals[i] = vals[lo]
		default:
			t := float64(batches[i]-batches[lo]) / float64(batches[hi]-batches[lo])
			vals[i] = vals[lo] + t*(vals[hi]-vals[lo])
		}
	}
}

// isotonicNonIncreasing returns the least-squares non-increasing fit of vals
// (pool-adjacent-violators on the negated sequence).
func isotonicNonIncreasing(vals []float64) []float64 {
	n := len(vals)
	// Blocks of (sum, count) pooled left to right enforcing non-increase.
	sums := make([]float64, 0, n)
	counts := make([]int, 0, n)
	for _, v := range vals {
		sums = append(sums, v)
		counts = append(counts, 1)
		// Pool while the previous block mean is below the current one
		// (violating non-increasing order).
		for len(sums) > 1 {
			k := len(sums)
			if sums[k-2]/float64(counts[k-2]) >= sums[k-1]/float64(counts[k-1]) {
				break
			}
			sums[k-2] += sums[k-1]
			counts[k-2] += counts[k-1]
			sums = sums[:k-1]
			counts = counts[:k-1]
		}
	}
	out := make([]float64, 0, n)
	for i, s := range sums {
		mean := s / float64(counts[i])
		for j := 0; j < counts[i]; j++ {
			out = append(out, mean)
		}
	}
	return out
}

// fitLinear solves the ridge-regularised normal equations (XᵀX + λI)β = Xᵀy
// by Gaussian elimination with partial pivoting. The tiny λ keeps the system
// solvable when feature columns are collinear (one-hot groups always are).
func fitLinear(X [][]float64, y []float64) []float64 {
	if len(X) == 0 {
		return nil
	}
	d := len(X[0])
	const lambda = 1e-9
	// A = XᵀX + λI, b = Xᵀy.
	A := make([][]float64, d)
	b := make([]float64, d)
	for i := range A {
		A[i] = make([]float64, d)
		A[i][i] = lambda
	}
	for r, row := range X {
		for i := 0; i < d; i++ {
			if row[i] == 0 {
				continue
			}
			b[i] += row[i] * y[r]
			for j := 0; j < d; j++ {
				A[i][j] += row[i] * row[j]
			}
		}
	}
	// Gaussian elimination.
	for col := 0; col < d; col++ {
		piv := col
		for r := col + 1; r < d; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[piv][col]) {
				piv = r
			}
		}
		A[col], A[piv] = A[piv], A[col]
		b[col], b[piv] = b[piv], b[col]
		p := A[col][col]
		if math.Abs(p) < 1e-15 {
			continue
		}
		for r := 0; r < d; r++ {
			if r == col || A[r][col] == 0 {
				continue
			}
			f := A[r][col] / p
			for j := col; j < d; j++ {
				A[r][j] -= f * A[col][j]
			}
			b[r] -= f * b[col]
		}
	}
	beta := make([]float64, d)
	for i := 0; i < d; i++ {
		if math.Abs(A[i][i]) >= 1e-15 {
			beta[i] = b[i] / A[i][i]
		}
	}
	return beta
}

// evalLinear evaluates a fitted model; a nil model predicts 0.
func evalLinear(beta, row []float64) float64 {
	if beta == nil {
		return 0
	}
	s := 0.0
	for i, v := range row {
		if i < len(beta) {
			s += beta[i] * v
		}
	}
	return s
}
