// Package analysis is Rumba's static-analysis framework. The paper's
// recovery guarantee (Section 2.2) — a flagged iteration can be re-executed
// exactly on the CPU — is only sound when the offloaded kernel is pure and
// deterministic. This package proves those properties mechanically: a
// small, stdlib-only driver (go/parser + go/types + go/importer) loads the
// whole module from source, computes a typed call-graph purity fixpoint,
// and runs a suite of Rumba-specific analyzers over every package:
//
//	purity       declared-pure functions (//rumba:pure) must pass the
//	             Section 2.2 purity analysis
//	determinism  re-executable kernels must not read clocks, global RNG
//	             state, or channels, nor write outputs from map iteration
//	floatcmp     no ==/!= on floating-point values in threshold logic
//	kernelsig    functions handed to kernel entry points must have the
//	             pure-kernel signature and pass the purity analysis
//	concurrency  locks passed by value, loop-variable capture, unguarded
//	             channel sends in goroutines
//
// Findings can be acknowledged in source with an inline directive:
//
//	//rumba:allow <analyzer>[,<analyzer>...] [reason]
//
// placed on the flagged line or the line above it. cmd/rumba-vet is the
// multichecker CLI over this package.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Severity grades a finding.
type Severity int

const (
	SeverityInfo Severity = iota
	SeverityWarning
	SeverityError
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// ParseSeverity parses "info", "warning"/"warn", or "error".
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(s) {
	case "info":
		return SeverityInfo, nil
	case "warning", "warn":
		return SeverityWarning, nil
	case "error":
		return SeverityError, nil
	}
	return 0, fmt.Errorf("analysis: unknown severity %q (want info, warning, or error)", s)
}

// Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Severity Severity       `json:"-"`
	Pos      token.Position `json:"-"`
	// File/Line/Col flatten Pos for the JSON form (File is relative to
	// the module root when possible, keeping golden output stable).
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Sev     string `json:"severity"`
	Message string `json:"message"`
	// Suppressed marks findings acknowledged by a //rumba:allow
	// directive; they are reported but never fail the build.
	Suppressed bool `json:"suppressed,omitempty"`
}

// String renders the go-vet-style one-line form.
func (d Diagnostic) String() string {
	sup := ""
	if d.Suppressed {
		sup = " (suppressed)"
	}
	return fmt.Sprintf("%s:%d:%d: %s [%s]%s", d.File, d.Line, d.Col, d.Message, d.Analyzer, sup)
}

// Analyzer is one named check. Run is invoked once per package with a Pass
// carrying the package and the module-wide facts.
type Analyzer struct {
	Name string
	Doc  string
	// Severity is the severity its findings carry.
	Severity Severity
	Run      func(*Pass)
}

// Pass is the per-(analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	Pkg      *Package
	report   func(Diagnostic)
}

// Fset returns the module's shared file set.
func (p *Pass) Fset() *token.FileSet { return p.Module.Fset }

// Reportf records a finding at pos with the analyzer's default severity.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Severity: p.Analyzer.Severity,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Sev:      p.Analyzer.Severity.String(),
		Message:  fmt.Sprintf(format, args...),
	})
}

// directiveIndex records, per file, which lines carry //rumba:allow
// directives and for which analyzers, plus the set of //rumba:pure
// declarations.
type directiveIndex struct {
	// allow maps filename → line → analyzer set ("*" allows all).
	allow map[string]map[int]map[string]bool
}

// buildDirectiveIndex scans the comments of every file in pkgs.
func buildDirectiveIndex(fset *token.FileSet, pkgs []*Package) *directiveIndex {
	idx := &directiveIndex{allow: map[string]map[int]map[string]bool{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, ok := ParseDirective(c.Text)
					if !ok || d.Err != "" || d.Kind != DirAllow {
						continue
					}
					pos := fset.Position(c.Pos())
					lines := idx.allow[pos.Filename]
					if lines == nil {
						lines = map[int]map[string]bool{}
						idx.allow[pos.Filename] = lines
					}
					set := lines[pos.Line]
					if set == nil {
						set = map[string]bool{}
						lines[pos.Line] = set
					}
					for _, name := range d.Analyzers {
						set[name] = true
					}
				}
			}
		}
	}
	return idx
}

// suppresses reports whether a directive on d's line or the line above
// covers d's analyzer.
func (idx *directiveIndex) suppresses(d Diagnostic) bool {
	lines := idx.allow[d.File]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Line, d.Line - 1} {
		if set := lines[line]; set != nil && (set[d.Analyzer] || set["*"]) {
			return true
		}
	}
	return false
}

// declaredPure reports whether fd's doc comment carries //rumba:pure.
func declaredPure(fd *ast.FuncDecl) bool {
	return funcDirective(fd, DirPure)
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}
