package bench

import (
	"math"
	"testing"
	"testing/quick"

	"rumba/internal/imageutil"
	"rumba/internal/quality"
	"rumba/internal/rng"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"blackscholes", "fft", "inversek2j", "jmeint", "jpeg", "kmeans", "sobel"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
	s, err := Get("sobel")
	if err != nil || s.Name != "sobel" {
		t.Fatalf("Get(sobel) = %v, %v", s, err)
	}
}

func TestAllSpecsValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestAllSpecsMatchTable1Topologies(t *testing.T) {
	want := map[string][2]string{
		"blackscholes": {"3->8->8->1", "6->8->8->1"},
		"fft":          {"1->1->2", "1->4->4->2"},
		"inversek2j":   {"2->2->2", "2->8->2"},
		"jmeint":       {"18->32->2->2", "18->32->8->2"},
		"jpeg":         {"64->16->64", "64->16->64"},
		"kmeans":       {"6->4->4->1", "6->8->4->1"},
		"sobel":        {"9->8->1", "9->8->1"},
	}
	for _, s := range All() {
		w := want[s.Name]
		if s.RumbaTopo.String() != w[0] || s.NPUTopo.String() != w[1] {
			t.Errorf("%s topologies = %s / %s, want %s / %s",
				s.Name, s.RumbaTopo, s.NPUTopo, w[0], w[1])
		}
	}
}

func TestDatasetShapes(t *testing.T) {
	for _, s := range All() {
		d := s.GenTrain(50)
		if d.Len() != 50 {
			t.Errorf("%s: train len = %d, want 50", s.Name, d.Len())
		}
		for i := range d.Inputs {
			if len(d.Inputs[i]) != s.InDim || len(d.Targets[i]) != s.OutDim {
				t.Fatalf("%s: sample %d dims %d->%d, want %d->%d",
					s.Name, i, len(d.Inputs[i]), len(d.Targets[i]), s.InDim, s.OutDim)
			}
		}
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	for _, s := range All() {
		a := s.GenTest(20)
		b := s.GenTest(20)
		for i := range a.Inputs {
			for j := range a.Inputs[i] {
				if a.Inputs[i][j] != b.Inputs[i][j] {
					t.Fatalf("%s: test dataset not deterministic", s.Name)
				}
			}
		}
	}
}

func TestTrainTestDisjoint(t *testing.T) {
	// Train and test generators must not produce the identical sequence.
	for _, s := range All() {
		if s.Name == "jpeg" || s.Name == "sobel" || s.Name == "kmeans" {
			continue // image-derived, different images by construction
		}
		tr := s.GenTrain(10)
		te := s.GenTest(10)
		same := true
		for i := range tr.Inputs {
			for j := range tr.Inputs[i] {
				if tr.Inputs[i][j] != te.Inputs[i][j] {
					same = false
				}
			}
		}
		if same {
			t.Errorf("%s: train and test datasets identical", s.Name)
		}
	}
}

func TestProject(t *testing.T) {
	in := []float64{10, 20, 30, 40, 50, 60}
	got := BlackScholes.Project(in)
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 50 {
		t.Fatalf("Project = %v, want [10 20 50]", got)
	}
	// Identity projection for kernels without a feature list.
	nine := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if out := Sobel.Project(nine); len(out) != 9 || out[8] != 9 {
		t.Fatal("identity projection must keep all inputs")
	}
}

func TestExactKernelsArePure(t *testing.T) {
	// Calling Exact must not mutate the input and must be deterministic —
	// the purity property selective re-execution relies on.
	for _, s := range All() {
		d := s.GenTest(5)
		for _, in := range d.Inputs {
			orig := append([]float64(nil), in...)
			out1 := s.Exact(in)
			out2 := s.Exact(in)
			for j := range in {
				if in[j] != orig[j] {
					t.Fatalf("%s: Exact mutated its input", s.Name)
				}
			}
			for j := range out1 {
				if out1[j] != out2[j] {
					t.Fatalf("%s: Exact not deterministic", s.Name)
				}
			}
		}
	}
}

func TestBlackScholesKnownValue(t *testing.T) {
	// S=100, K=100, r=0.05, sigma=0.2, T=1: call = 10.4506 (textbook).
	got := blackScholesExact([]float64{100, 100, 0.05, 0.2, 1, 0})[0]
	if math.Abs(got-10.4506) > 1e-3 {
		t.Fatalf("call price = %v, want 10.4506", got)
	}
	// Put-call parity: C - P = S - K e^{-rT}.
	put := blackScholesExact([]float64{100, 100, 0.05, 0.2, 1, 1})[0]
	parity := got - put
	want := 100 - 100*math.Exp(-0.05)
	if math.Abs(parity-want) > 1e-9 {
		t.Fatalf("put-call parity violated: %v vs %v", parity, want)
	}
}

func TestFFTTwiddleIdentity(t *testing.T) {
	// cos^2 + sin^2 == 1 for any input.
	r := rng.New(5)
	for i := 0; i < 100; i++ {
		out := fftTwiddleExact([]float64{r.Float64()})
		if math.Abs(out[0]*out[0]+out[1]*out[1]-1) > 1e-12 {
			t.Fatalf("twiddle not on unit circle: %v", out)
		}
	}
	// Endpoints.
	if out := fftTwiddleExact([]float64{0}); math.Abs(out[0]-1) > 1e-12 || math.Abs(out[1]) > 1e-12 {
		t.Fatalf("twiddle(0) = %v", out)
	}
}

func TestInverseK2JRoundTrip(t *testing.T) {
	// inverse(forward(t1, t2)) must recover the joint angles.
	r := rng.New(6)
	for i := 0; i < 200; i++ {
		t1 := r.Range(0.1, math.Pi/2-0.1)
		t2 := r.Range(0.1, math.Pi-0.2)
		x, y := ikForward(t1, t2)
		got := inverseK2JExact([]float64{x, y})
		if math.Abs(got[0]-t1) > 1e-9 || math.Abs(got[1]-t2) > 1e-9 {
			t.Fatalf("ik round trip: want (%v,%v), got (%v,%v)", t1, t2, got[0], got[1])
		}
	}
}

func TestJMEIntKnownCases(t *testing.T) {
	// Two clearly interpenetrating triangles.
	intersecting := []float64{
		0, 0, 0, 2, 0, 0, 0, 2, 0, // triangle in z=0 plane
		0.5, 0.5, -1, 0.5, 0.5, 1, 1.5, 0.5, 0, // pierces it
	}
	if out := jmeintExact(intersecting); out[0] != 1 {
		t.Fatalf("expected intersection, got %v", out)
	}
	// Two far-apart triangles.
	disjoint := []float64{
		0, 0, 0, 1, 0, 0, 0, 1, 0,
		10, 10, 10, 11, 10, 10, 10, 11, 10,
	}
	if out := jmeintExact(disjoint); out[1] != 1 {
		t.Fatalf("expected disjoint, got %v", out)
	}
	// Parallel planes, overlapping in xy but separated in z.
	parallel := []float64{
		0, 0, 0, 1, 0, 0, 0, 1, 0,
		0, 0, 1, 1, 0, 1, 0, 1, 1,
	}
	if out := jmeintExact(parallel); out[1] != 1 {
		t.Fatalf("expected parallel disjoint, got %v", out)
	}
	// Coplanar overlapping triangles.
	coplanar := []float64{
		0, 0, 0, 2, 0, 0, 0, 2, 0,
		0.2, 0.2, 0, 1, 0.2, 0, 0.2, 1, 0,
	}
	if out := jmeintExact(coplanar); out[0] != 1 {
		t.Fatalf("expected coplanar intersection, got %v", out)
	}
	// Coplanar disjoint triangles.
	coplanarFar := []float64{
		0, 0, 0, 1, 0, 0, 0, 1, 0,
		5, 5, 0, 6, 5, 0, 5, 6, 0,
	}
	if out := jmeintExact(coplanarFar); out[1] != 1 {
		t.Fatalf("expected coplanar disjoint, got %v", out)
	}
}

func TestJMEIntSymmetric(t *testing.T) {
	// The test must be symmetric in its two triangles.
	d := JMEInt.GenTest(200)
	for _, in := range d.Inputs {
		swapped := append(append([]float64{}, in[9:]...), in[:9]...)
		a := jmeintExact(in)
		b := jmeintExact(swapped)
		if a[0] != b[0] {
			t.Fatalf("asymmetric intersection result for %v", in)
		}
	}
}

func TestJMEIntClassBalance(t *testing.T) {
	d := JMEInt.GenTest(1000)
	pos := 0
	for _, tgt := range d.Targets {
		if tgt[0] == 1 {
			pos++
		}
	}
	if pos < 200 || pos > 800 {
		t.Fatalf("intersection class balance %d/1000 too skewed for training", pos)
	}
}

func TestJPEGReconstructionReasonable(t *testing.T) {
	// The codec must roughly reconstruct blocks: quantisation error on
	// natural-image blocks is small relative to the pixel range.
	d := JPEG.GenTest(20)
	for i, in := range d.Inputs {
		out := d.Targets[i]
		e := quality.ElementError(quality.MeanPixelDiff, in, out, 255)
		if e > 0.15 {
			t.Fatalf("block %d reconstruction error %v too large", i, e)
		}
	}
}

func TestJPEGFlatBlockExact(t *testing.T) {
	// A flat block survives the codec exactly: only the DC coefficient is
	// non-zero and it is a multiple-friendly value after rounding.
	in := make([]float64, 64)
	for i := range in {
		in[i] = 128
	}
	out := jpegExact(in)
	for i := range out {
		if math.Abs(out[i]-128) > 1.0 {
			t.Fatalf("flat block pixel %d = %v", i, out[i])
		}
	}
}

func TestDCTRoundTripWithoutQuantisation(t *testing.T) {
	r := rng.New(9)
	var block [64]float64
	for i := range block {
		block[i] = r.Range(-128, 127)
	}
	coef := forwardDCT(&block)
	rec := inverseDCT(&coef)
	for i := range block {
		if math.Abs(rec[i]-block[i]) > 1e-9 {
			t.Fatalf("DCT round trip pixel %d: %v vs %v", i, rec[i], block[i])
		}
	}
}

func TestKMeansDistance(t *testing.T) {
	out := kmeansExact([]float64{0, 0, 0, 3, 4, 0})
	if out[0] != 5 {
		t.Fatalf("distance = %v, want 5", out[0])
	}
	if out := kmeansExact([]float64{10, 20, 30, 10, 20, 30}); out[0] != 0 {
		t.Fatalf("zero distance = %v", out[0])
	}
}

func TestSobelKnownGradients(t *testing.T) {
	// Flat window: zero gradient.
	flat := []float64{50, 50, 50, 50, 50, 50, 50, 50, 50}
	if out := sobelExact(flat); out[0] != 0 {
		t.Fatalf("flat gradient = %v", out[0])
	}
	// Vertical step edge: |gx| = 4*step, gy = 0.
	edge := []float64{0, 0, 100, 0, 0, 100, 0, 0, 100}
	if out := sobelExact(edge); out[0] != 255 { // 400 clamped to 255
		t.Fatalf("edge gradient = %v, want 255 (clamped)", out[0])
	}
}

func TestSobelImageShape(t *testing.T) {
	img := SobelImage(mustSynthetic(t, 16, 12))
	if img.W != 16 || img.H != 12 {
		t.Fatalf("shape %dx%d", img.W, img.H)
	}
	for _, p := range img.Pix {
		if p < 0 || p > 255 {
			t.Fatalf("pixel %v out of range", p)
		}
	}
}

func TestRunMosaicShape(t *testing.T) {
	res := RunMosaic(40, 32, 32, 2)
	if len(res.Errors) != 40 {
		t.Fatalf("errors len = %d", len(res.Errors))
	}
	if res.Max < res.Mean {
		t.Fatal("max must be >= mean")
	}
	// Input dependence: the error spread must be non-trivial.
	if res.Max < 2*res.Mean {
		t.Fatalf("mosaic errors too uniform: mean %v max %v", res.Mean, res.Max)
	}
}

func TestRunMosaicPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunMosaic(0, 8, 8, 2)
}

func mustSynthetic(t *testing.T, w, h int) *imageutil.Gray {
	t.Helper()
	return imageutil.Synthetic(w, h, "bench-test")
}

func TestBuildMosaicExactChoices(t *testing.T) {
	target := imageutil.Synthetic(32, 32, "mosaic-target")
	tiles := make([]*imageutil.Gray, 12)
	for i := range tiles {
		tiles[i] = imageutil.SyntheticFlower(16, 16, i)
	}
	exactFn := func(g *imageutil.Gray) float64 { return g.MeanBrightness() }
	out := BuildMosaic(target, tiles, 8, exactFn)
	if out.CellsX != 4 || out.CellsY != 4 || len(out.Choices) != 16 {
		t.Fatalf("mosaic shape: %dx%d, %d choices", out.CellsX, out.CellsY, len(out.Choices))
	}
	if out.Image.W != 32 || out.Image.H != 32 {
		t.Fatalf("image shape %dx%d", out.Image.W, out.Image.H)
	}
	// Deterministic.
	again := BuildMosaic(target, tiles, 8, exactFn)
	if MosaicMismatch(out, again) != 0 {
		t.Fatal("exact mosaic must be deterministic")
	}
}

func TestBuildMosaicPerforationChangesChoices(t *testing.T) {
	target := imageutil.Synthetic(64, 64, "mosaic-target2")
	tiles := make([]*imageutil.Gray, 40)
	for i := range tiles {
		tiles[i] = imageutil.SyntheticFlower(24, 24, i)
	}
	exact := BuildMosaic(target, tiles, 8, func(g *imageutil.Gray) float64 { return g.MeanBrightness() })
	approx := BuildMosaic(target, tiles, 8, func(g *imageutil.Gray) float64 {
		return g.MeanBrightnessPerforated(2, 0)
	})
	mm := MosaicMismatch(exact, approx)
	if mm == 0 {
		t.Skip("perforation happened to pick identical tiles on this seed")
	}
	if mm > 0.9 {
		t.Fatalf("mismatch %v implausibly high", mm)
	}
}

func TestBuildMosaicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildMosaic(imageutil.NewGray(8, 8), nil, 4, nil)
}

func TestMosaicMismatchPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MosaicMismatch(MosaicOutput{Choices: []int{1}}, MosaicOutput{})
}

// Property: the triangle-triangle test is invariant under swapping the two
// triangles and under rigid translation of both.
func TestJMEIntInvarianceProperty(t *testing.T) {
	r := rng.New(404)
	f := func(seed uint16) bool {
		in := make([]float64, 18)
		for j := range in {
			in[j] = r.Range(-1, 1)
		}
		base := jmeintExact(in)
		// Swap invariance.
		swapped := append(append([]float64{}, in[9:]...), in[:9]...)
		if jmeintExact(swapped)[0] != base[0] {
			return false
		}
		// Translation invariance.
		dx, dy, dz := r.Range(-5, 5), r.Range(-5, 5), r.Range(-5, 5)
		moved := make([]float64, 18)
		for v := 0; v < 6; v++ {
			moved[3*v+0] = in[3*v+0] + dx
			moved[3*v+1] = in[3*v+1] + dy
			moved[3*v+2] = in[3*v+2] + dz
		}
		return jmeintExact(moved)[0] == base[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: a triangle always intersects itself, and a pair far apart never
// intersects.
func TestJMEIntSelfAndFarProperty(t *testing.T) {
	r := rng.New(405)
	f := func(seed uint16) bool {
		tri := make([]float64, 9)
		for j := range tri {
			tri[j] = r.Range(-1, 1)
		}
		self := append(append([]float64{}, tri...), tri...)
		if jmeintExact(self)[0] != 1 {
			return false
		}
		far := make([]float64, 18)
		copy(far, tri)
		for v := 0; v < 3; v++ {
			far[9+3*v+0] = tri[3*v+0] + 100
			far[9+3*v+1] = tri[3*v+1] + 100
			far[9+3*v+2] = tri[3*v+2] + 100
		}
		return jmeintExact(far)[1] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
