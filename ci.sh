#!/usr/bin/env sh
# ci.sh — the repo's full check gate.
#
#   ./ci.sh            run everything
#
# Stages:
#   1. go build ./...              everything compiles (examples included)
#   2. go vet ./...                stock toolchain vet
#   3. go test -race -shuffle=on   unit + integration tests under the race
#      ./...                       detector with shuffled test order (the
#                                  Stream goroutine plumbing in internal/core
#                                  is exercised by the stress/soak suite with
#                                  multiple recovery workers, cancellation and
#                                  goroutine-leak checks; shuffling flushes
#                                  out inter-test ordering assumptions)
#   4. fuzz seed smoke             every Fuzz* target replayed over its
#                                  checked-in seed corpus plus a short live
#                                  fuzzing burst (quality + predictor
#                                  adversarial-input hardening, and the
#                                  /v1/invoke handler fuzz)
#   5. bench smoke                 the hot-path benchmark suite at
#                                  -benchtime=100x -benchmem: catches batch
#                                  kernels that stop compiling, panic, or
#                                  start allocating, without paying for a
#                                  statistically meaningful timing run
#   6. /metrics exposition smoke   the Prometheus text endpoint golden test
#                                  plus a live httptest scrape parsed by
#                                  obs.ValidateExposition: a malformed
#                                  exposition (duplicate family, bad sample,
#                                  NaN) fails CI before a scraper sees it
#   7. rumba-pkg smoke             build a kernel package from a fast fft
#                                  training run, validate it (checksums +
#                                  corpus replay vs TOQ) and run a short
#                                  steady-shape conformance pass against an
#                                  in-process rumba-serve
#   8. rumba-tune smoke            tiny autotuner sweep over the fft package
#                                  from stage 7, then the emitted frontier
#                                  artifact must load into rumba-serve
#                                  (-frontier -dry-run): the tune -> serve
#                                  hand-off stays wired end to end
#   9. bench compare gate          rumba-bench -compare of the checked-in
#                                  BENCH_hotpath.json against a fresh smoke
#                                  run at a generous 75% threshold: catches
#                                  catastrophic hot-path regressions and
#                                  baseline format drift
#  10. cluster smoke               boot a 3-node in-process cluster behind
#                                  the consistent-hash router, kill a node
#                                  and assert rerouted invokes succeed, then
#                                  drain a node through a planned rebalance
#                                  and assert the migrated tenant's tuner and
#                                  drift state survived, plus a conformance
#                                  round through the router's front door;
#                                  the observability pass stitches a failover
#                                  trace across router + survivor, pages a
#                                  TOQ-violating tenant through the cluster
#                                  alert view, and scrapes the router's
#                                  federated /metrics through the strict
#                                  exposition parser
#  11. coverage floors             statement coverage of the hardened runtime
#                                  (internal/core), the observability layer
#                                  (internal/obs, internal/trace), the
#                                  serving layer, the kernel-package layer
#                                  (internal/pkg, internal/bundle), the
#                                  cluster layer (internal/cluster), the
#                                  autotuner (internal/tune) and the
#                                  static-analysis engine (internal/analysis)
#                                  must not regress below the floors
#  12. rumba-vet ./...             Rumba's own static-analysis suite:
#                                  purity, determinism, floatcmp, kernelsig,
#                                  concurrency, approxflow, hotpath,
#                                  directive (see DESIGN.md, "Static
#                                  analysis & safety"); fails on any
#                                  unsuppressed warning-or-worse finding not
#                                  recorded in vet-baseline.json, and writes
#                                  the SARIF artifact rumba-vet.sarif for
#                                  code-scanning upload.

set -eu
cd "$(dirname "$0")"

echo "==> go build ./..."
go build ./...
# The serving daemon and its cluster router must stay buildable on their own
# (they are the deployable artifacts; ./... would mask a main-package-only
# breakage message).
go build ./cmd/rumba-serve
go build ./cmd/rumba-router

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race -shuffle=on ./..."
go test -race -shuffle=on ./...

echo "==> serving layer under -race (drain, overload-shed and restart-persistence suite)"
go test -race -count=1 ./internal/server/

echo "==> fuzz seeds smoke"
go test -run='^Fuzz' ./internal/quality/ ./internal/predictor/ ./internal/nn/ ./internal/analysis/ ./internal/server/
go test -run='^$' -fuzz='^FuzzElementError$' -fuzztime=10s ./internal/quality/
go test -run='^$' -fuzz='^FuzzTreePredictError$' -fuzztime=10s ./internal/predictor/
go test -run='^$' -fuzz='^FuzzParseDirective$' -fuzztime=10s ./internal/analysis/
go test -run='^$' -fuzz='^FuzzHandleInvoke$' -fuzztime=10s ./internal/server/

echo "==> bench smoke (-benchtime=100x -benchmem)"
go test -run '^$' -bench 'Forward|Predict|Stream' -benchtime=100x -benchmem ./internal/bench/

echo "==> /metrics exposition smoke (golden render + live scrape parse)"
go test -run 'TestWritePrometheus|TestValidateExposition' -count=1 ./internal/obs/
go test -run 'TestMetricsPrometheus' -count=1 ./internal/server/

echo "==> rumba-pkg smoke (build -> validate -> conform, in-process serve)"
pkg_tmp=$(mktemp -d)
trap 'rm -rf "$pkg_tmp"' EXIT
go run ./cmd/rumba-pkg build -benchmark fft -train 400 -epochs 10 -corpus-n 60 -toq 0.5 -out "$pkg_tmp"
go run ./cmd/rumba-pkg validate "$pkg_tmp/fft-0.1.0"
go run ./cmd/rumba-pkg conform -shape steady -requests 12 -batch 8 -out "$pkg_tmp/report.json" "$pkg_tmp/fft-0.1.0"
grep -q '"pass": true' "$pkg_tmp/report.json" || { echo "ci: conformance report did not pass" >&2; exit 1; }

echo "==> rumba-tune smoke (tiny sweep on the fft package -> frontier loads into rumba-serve)"
go run ./cmd/rumba-tune -benchtime 5ms -max-corpus 32 -batches 1,64 -lutbits 8,10 \
    -out "$pkg_tmp/frontier.json" "$pkg_tmp/fft-0.1.0"
go run ./cmd/rumba-serve -packages "$pkg_tmp" -frontier "$pkg_tmp/frontier.json" -dry-run

echo "==> bench compare gate (checked-in hotpath baseline vs a fresh run, 75% threshold)"
# The generous threshold absorbs machine-to-machine and load noise in the
# wall-clock numbers; what this catches is a kernel that got catastrophically
# slower (or a -compare/baseline format drift). The checked-in baseline is
# restored afterwards — regenerating it is a deliberate act, not a CI side
# effect.
if [ -f BENCH_hotpath.json ]; then
    cp BENCH_hotpath.json "$pkg_tmp/hotpath-baseline.json"
    go run ./cmd/rumba-bench -exp hotpath > /dev/null
    cp BENCH_hotpath.json "$pkg_tmp/hotpath-new.json"
    cp "$pkg_tmp/hotpath-baseline.json" BENCH_hotpath.json
    go run ./cmd/rumba-bench -compare -compare-threshold 75 \
        "$pkg_tmp/hotpath-baseline.json" "$pkg_tmp/hotpath-new.json"
fi

echo "==> cluster smoke (3-node harness + router: kill-a-node failover, rebalance state handoff, conformance through the router)"
go test -count=1 -run 'TestClusterKillNodeLosesNoTenant|TestClusterDriftStateSurvivesPlannedDrain|TestClusterRebalancePreservesTunerAndDriftState|TestClusterConformanceRound' ./internal/cluster/

echo "==> cluster observability smoke (cross-node trace stitch, SLO burn-rate paging, federated /metrics through the strict parser)"
go test -count=1 -run 'TestClusterStitchedFailoverTrace|TestClusterSLOAlertsAndNodeDeath|TestClusterFederatedMetricsRoundTrip' ./internal/cluster/

echo "==> coverage floors (internal/core >= 85%, internal/obs >= 85%, internal/trace >= 85%, internal/server >= 80%, internal/analysis >= 80%, internal/pkg >= 85%, internal/bundle >= 85%, internal/cluster >= 85%, internal/tune >= 85%, internal/slo >= 85%)"
check_cover() {
    pkg="$1"
    floor="$2"
    line=$(go test -cover "$pkg" | tail -n 1)
    pct=$(echo "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "ci: could not parse coverage for $pkg: $line" >&2
        exit 1
    fi
    ok=$(awk -v p="$pct" -v f="$floor" 'BEGIN { print (p >= f) ? 1 : 0 }')
    if [ "$ok" != 1 ]; then
        echo "ci: $pkg coverage $pct% is below the $floor% floor" >&2
        exit 1
    fi
    echo "    $pkg: $pct% (floor $floor%)"
}
check_cover ./internal/core/ 85
check_cover ./internal/obs/ 85
check_cover ./internal/trace/ 85
check_cover ./internal/server/ 80
check_cover ./internal/analysis/ 80
check_cover ./internal/pkg/ 85
check_cover ./internal/pkg/conformance/ 85
check_cover ./internal/bundle/ 85
check_cover ./internal/cluster/ 85
check_cover ./internal/tune/ 85
check_cover ./internal/slo/ 85

echo "==> rumba-vet ./... (baseline-gated, SARIF artifact at rumba-vet.sarif)"
go run ./cmd/rumba-vet -fail-on warning -baseline vet-baseline.json ./...
go run ./cmd/rumba-vet -sarif -baseline vet-baseline.json ./... > rumba-vet.sarif

echo "ci: all checks passed"
