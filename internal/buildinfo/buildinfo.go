// Package buildinfo resolves the provenance of the running binary: which
// commit it was built from, on what toolchain, for what platform. It is the
// shared home of the stamp that BENCH_*.json baselines carry and that
// rumba-serve and rumba-router report from /v1/version — in a mixed-version
// cluster, "which node runs which build" is the first diagnostic question,
// and it must be answerable over HTTP, not by ssh-ing into the box.
package buildinfo

import (
	"os/exec"
	"runtime"
	"strings"
	"sync"
)

// Info is the provenance record. The zero value of every field is legal:
// provenance is a courtesy, not a gate.
type Info struct {
	// GitCommit is the HEAD hash at build/measurement time, best-effort:
	// empty when the tree is not a git checkout or git is unavailable.
	// GitDirty marks a working tree with uncommitted changes — numbers (or
	// binaries) from a dirty tree are not reproducible from the commit alone.
	GitCommit string `json:"git_commit,omitempty"`
	GitDirty  bool   `json:"git_dirty,omitempty"`
	// GoVersion/OS/Arch identify the toolchain and platform; NumCPU and
	// GOMAXPROCS the parallelism the process has available.
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Resolve builds an Info for the current process. The git subprocess runs at
// most once per process (the result is memoised): /v1/version sits on every
// cluster node's probe-adjacent surface and must not fork per request.
func Resolve() Info {
	gitOnce.Do(func() {
		gitCommit, gitDirty = gitHead()
	})
	return Info{
		GitCommit:  gitCommit,
		GitDirty:   gitDirty,
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

var (
	gitOnce   sync.Once
	gitCommit string
	gitDirty  bool
)

// gitHead resolves the current commit hash and dirtiness, best-effort: any
// failure (no git binary, not a checkout) yields ("", false) rather than an
// error.
func gitHead() (string, bool) {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "", false
	}
	commit := strings.TrimSpace(string(out))
	status, err := exec.Command("git", "status", "--porcelain").Output()
	dirty := err == nil && len(strings.TrimSpace(string(status))) > 0
	return commit, dirty
}
