package nn

import (
	"fmt"
	"math"
)

// Fixed-point inference. The NPU hardware the paper builds on computes in
// fixed point, not float64; this file adds a quantised execution mode so
// the accelerator model can reproduce that error source and so the
// float-vs-fixed ablation bench can measure its contribution.
//
// Numbers use a signed Q(m.n) format held in int64: value = raw / 2^n.
// Weights and activations share one format; the MAC accumulator is wide
// enough (int64) that intermediate sums do not overflow for the topology
// sizes the NPU permits.

// FixedFormat describes a Q(m.n) fixed-point representation.
type FixedFormat struct {
	// IntBits is m: magnitude bits before the binary point (sign excluded).
	IntBits int
	// FracBits is n: bits after the binary point.
	FracBits int
}

// DefaultFixedFormat is Q6.10: 16-bit words matching typical NPU datapaths
// — range ±64 with ~0.001 resolution, comfortable for normalised
// activations and trained weight magnitudes.
var DefaultFixedFormat = FixedFormat{IntBits: 6, FracBits: 10}

// Validate checks the format is representable.
func (f FixedFormat) Validate() error {
	if f.IntBits < 1 || f.FracBits < 1 || f.IntBits+f.FracBits > 62 {
		return fmt.Errorf("nn: invalid fixed format Q%d.%d", f.IntBits, f.FracBits)
	}
	return nil
}

// scale returns 2^FracBits.
func (f FixedFormat) scale() float64 { return float64(int64(1) << uint(f.FracBits)) }

// max returns the largest representable value.
func (f FixedFormat) max() float64 {
	return float64(int64(1)<<uint(f.IntBits)) - 1/f.scale()
}

// Quantize rounds v to the nearest representable value, saturating at the
// format's range (hardware saturating arithmetic).
func (f FixedFormat) Quantize(v float64) float64 {
	limit := f.max()
	if v > limit {
		return limit
	}
	if v < -limit {
		return -limit
	}
	s := f.scale()
	return math.Round(v*s) / s
}

// QuantizeSlice quantises every element into a fresh slice.
func (f FixedFormat) QuantizeSlice(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = f.Quantize(v)
	}
	return out
}

// Resolution returns the representable step size.
func (f FixedFormat) Resolution() float64 { return 1 / f.scale() }

// FixedNetwork is a quantised view of a trained network: weights and biases
// are rounded to the format once at construction, and every activation is
// re-quantised after the non-linearity, exactly as a fixed-point datapath
// with a sigmoid lookup table behaves.
//
// Like Network.Forward, Forward reuses internal scratch and is not
// reentrant; route concurrent inference through ForwardBatch with
// per-caller scratch.
type FixedNetwork struct {
	Format FixedFormat
	net    *Network
	// hiddenTab/outTab are the exact quantised activation tables the batch
	// kernel indexes instead of evaluating exp/tanh (nil when the format is
	// too fine to tabulate — the kernel then computes directly, which is
	// equally exact, just slower).
	hiddenTab, outTab *fixedActTab
}

// Quantize builds the fixed-point view of a network. The original network is
// not modified.
func Quantize(n *Network, f FixedFormat) (*FixedNetwork, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	q := n.Clone()
	for li := range q.layers {
		l := &q.layers[li]
		for j, w := range l.W {
			l.W[j] = f.Quantize(w)
		}
		for j, b := range l.B {
			l.B[j] = f.Quantize(b)
		}
	}
	fn := &FixedNetwork{Format: f, net: q}
	fn.hiddenTab = buildFixedActTab(f, q.Hidden)
	if q.Out == q.Hidden {
		fn.outTab = fn.hiddenTab
	} else {
		fn.outTab = buildFixedActTab(f, q.Out)
	}
	return fn, nil
}

// Topo returns the underlying topology.
func (q *FixedNetwork) Topo() Topology { return q.net.Topo }

// Forward runs fixed-point inference: inputs are quantised, each layer's
// pre-activations accumulate quantised products, and the activation output
// is quantised again (the sigmoid LUT's output register). Hidden
// activations ping-pong through scratch sized at construction, so only the
// quantised input copy and the returned output allocate; the scratch makes
// Forward non-reentrant.
func (q *FixedNetwork) Forward(in []float64) []float64 {
	f := q.Format
	cur := f.QuantizeSlice(in)
	if q.net.scratch[0] == nil {
		q.net.initScratch()
	}
	last := len(q.net.layers) - 1
	for li := range q.net.layers {
		l := &q.net.layers[li]
		var next []float64
		if li == last {
			next = make([]float64, l.Out)
		} else {
			next = q.net.scratch[li%2][:l.Out]
		}
		for o := 0; o < l.Out; o++ {
			row := l.W[o*l.In : (o+1)*l.In]
			s := l.B[o]
			for j, w := range row {
				// Product of two Q values re-quantised into the format —
				// the hardware truncates the extra fraction bits after
				// each MAC's shift.
				s += f.Quantize(w * cur[j])
			}
			next[o] = f.Quantize(l.Act.apply(f.Quantize(s)))
		}
		cur = next
	}
	return cur
}

// NewBatchScratch sizes batch scratch for the quantised network.
func (q *FixedNetwork) NewBatchScratch(maxBatch int) *BatchScratch {
	return q.net.NewBatchScratch(maxBatch)
}

// ForwardBatch is the fixed-point batch kernel: same layout and loop
// structure as Network.ForwardBatch, with every MAC re-quantised into the
// format exactly as Forward does. Sigmoid/tanh outputs come from the exact
// quantised activation tables, so ForwardBatch is bit-for-bit identical to
// Forward at every batch size — the fixed-point input grid is finite, and
// each table entry is precomputed as f.Quantize(act(x)) for its grid point
// (scratch.LUT is ignored here; there is no approximate mode to opt into).
//
//rumba:hotpath
func (q *FixedNetwork) ForwardBatch(dst, in []float64, batch int, scratch *BatchScratch) {
	if batch == 0 {
		return
	}
	f := q.Format
	n := q.net
	ni, no := n.Topo.Inputs(), n.Topo.Outputs()
	if batch < 0 || len(in) < batch*ni || len(dst) < batch*no {
		panic(fmt.Sprintf("nn: ForwardBatch batch %d needs %d inputs and %d outputs, got %d and %d",
			batch, batch*ni, batch*no, len(in), len(dst)))
	}
	if scratch == nil || scratch.width < n.Topo.maxWidth() {
		panic("nn: ForwardBatch scratch missing or built for a narrower network")
	}
	//rumba:allow hotpath amortised scratch growth; steady state is guarded by TestBatchKernelAllocs
	scratch.Grow(batch)
	cur, nxt := scratch.a, scratch.b

	for j := 0; j < ni; j++ {
		col := cur[j*batch : (j+1)*batch]
		for e := range col {
			col[e] = f.Quantize(in[e*ni+j])
		}
	}

	for li := range n.layers {
		l := &n.layers[li]
		tab := q.hiddenTab
		if li == len(n.layers)-1 {
			tab = q.outTab
		}
		for o := 0; o < l.Out; o++ {
			row := l.W[o*l.In : (o+1)*l.In]
			acc := nxt[o*batch : (o+1)*batch]
			bias := l.B[o]
			for e := range acc {
				acc[e] = bias
			}
			j := 0
			for ; j+4 <= l.In; j += 4 {
				w0, w1, w2, w3 := row[j], row[j+1], row[j+2], row[j+3]
				x0 := cur[j*batch : j*batch+batch]
				x1 := cur[(j+1)*batch : (j+1)*batch+batch]
				x2 := cur[(j+2)*batch : (j+2)*batch+batch]
				x3 := cur[(j+3)*batch : (j+3)*batch+batch]
				for e := 0; e < batch; e++ {
					s := acc[e]
					s += f.Quantize(w0 * x0[e])
					s += f.Quantize(w1 * x1[e])
					s += f.Quantize(w2 * x2[e])
					s += f.Quantize(w3 * x3[e])
					acc[e] = s
				}
			}
			for ; j < l.In; j++ {
				w := row[j]
				x := cur[j*batch : j*batch+batch]
				for e := 0; e < batch; e++ {
					acc[e] += f.Quantize(w * x[e])
				}
			}
			if l.Act == Linear {
				// f.Quantize(identity(f.Quantize(s))) == f.Quantize(s):
				// Quantize is idempotent on its own grid.
				for e := 0; e < batch; e++ {
					acc[e] = f.Quantize(acc[e])
				}
			} else if tab != nil {
				for e := 0; e < batch; e++ {
					acc[e] = tab.lookup(f.Quantize(acc[e]))
				}
			} else {
				for e := 0; e < batch; e++ {
					acc[e] = f.Quantize(l.Act.apply(f.Quantize(acc[e])))
				}
			}
		}
		cur, nxt = nxt, cur
	}

	for o := 0; o < no; o++ {
		col := cur[o*batch : (o+1)*batch]
		for e := range col {
			dst[e*no+o] = col[e]
		}
	}
}

// maxFixedTabLen bounds the exact activation tables: 64K float64 entries
// (512 KiB). Formats finer than that (FracBits > 12 for sigmoid/tanh
// saturation ranges) fall back to direct computation, which is equally
// exact.
const maxFixedTabLen = 1 << 16

// fixedActTab is an exact lookup table for one (format, activation) pair.
// Quantised pre-activations form a finite grid; sigmoid and tanh saturate —
// their quantised output is constant past a small |x| — so the table only
// covers [lo, hi] where the output still moves and clamps to the end values
// outside it. Every entry equals f.Quantize(act(x)) for its grid point, so
// table lookup is not an approximation.
type fixedActTab struct {
	lo, hi float64 // saturation bounds, grid multiples
	scale  float64 // 2^FracBits
	vals   []float64
}

// lookup maps a quantised pre-activation to its exact activation output.
// The caller guarantees x is on the format grid (or NaN, which computes to
// NaN downstream and is handled here explicitly).
func (t *fixedActTab) lookup(x float64) float64 {
	if x >= t.hi {
		return t.vals[len(t.vals)-1]
	}
	if x <= t.lo {
		return t.vals[0]
	}
	if math.IsNaN(x) {
		return math.NaN()
	}
	// (x - lo) is an exact multiple of the resolution and scale is a power
	// of two, so the index arithmetic is exact.
	return t.vals[int(math.Round((x-t.lo)*t.scale))]
}

// buildFixedActTab tabulates f.Quantize(act(x)) over the grid range where
// the output still changes. Returns nil (compute directly) for Linear, for
// formats outside IntBits <= 16 / FracBits <= 12 (grid index arithmetic
// must stay exact in float64 and tables bounded), and when the
// non-saturated range would exceed maxFixedTabLen entries.
func buildFixedActTab(f FixedFormat, a Activation) *fixedActTab {
	if a != Sigmoid && a != Tanh {
		return nil
	}
	if f.FracBits > 12 || f.IntBits > 16 {
		return nil
	}
	res := f.Resolution()
	limit := f.max()
	quantAct := func(x float64) float64 { return f.Quantize(a.apply(f.Quantize(x))) }
	// Sigmoid and tanh are monotone increasing, so their quantised output is
	// monotone non-decreasing over the grid and saturates: it equals the
	// value at +limit from some grid point on (and the value at -limit up to
	// some grid point). Binary-search both boundaries over grid indices.
	k := int64(math.Round(limit / res)) // grid spans [-k, k]
	vHi := quantAct(limit)
	vLo := quantAct(-limit)
	// Smallest index whose output already equals the saturated high value.
	loK, hiK := -k, k
	for loK < hiK {
		mid := loK + (hiK-loK)/2
		if quantAct(float64(mid)*res) == vHi { //rumba:allow floatcmp exact grid values, saturation boundary
			hiK = mid
		} else {
			loK = mid + 1
		}
	}
	hiSat := hiK
	// Largest index whose output still equals the saturated low value.
	loK, hiK = -k, k
	for loK < hiK {
		mid := loK + (hiK-loK+1)/2
		if quantAct(float64(mid)*res) == vLo { //rumba:allow floatcmp exact grid values, saturation boundary
			loK = mid
		} else {
			hiK = mid - 1
		}
	}
	loSat := loK
	n := hiSat - loSat + 1
	if n <= 0 || n > maxFixedTabLen {
		return nil
	}
	lo := float64(loSat) * res
	t := &fixedActTab{lo: lo, hi: float64(hiSat) * res, scale: f.scale(), vals: make([]float64, n)}
	for i := range t.vals {
		t.vals[i] = quantAct(lo + float64(i)*res)
	}
	return t
}

// QuantizationError measures the mean absolute output difference between
// the float and fixed-point executions over a set of inputs.
func (q *FixedNetwork) QuantizationError(inputs [][]float64) float64 {
	if len(inputs) == 0 {
		return 0
	}
	var sum float64
	var n int
	for _, in := range inputs {
		fl := q.net.Forward(in)
		fx := q.Forward(in)
		for j := range fl {
			sum += math.Abs(fl[j] - fx[j])
			n++
		}
	}
	return sum / float64(n)
}
