package predictor

import (
	"fmt"
	"math"

	"rumba/internal/tensor"
)

// Section 3.2 compares two ways of obtaining approximation errors from a
// prediction model over the inputs:
//
//   - EVP (Errors by Value Prediction): predict the *output* with a model,
//     then estimate the error as the distance between the predicted output
//     and the accelerator's output.
//   - EEP (Errors by Error Prediction): predict the *error* directly.
//
// The paper observes that with the same model family EEP is markedly more
// accurate (average distance to the true errors 1 vs 2.5 on a Gaussian
// kernel), which is why Rumba's checkers predict errors, not values.

// ValueModel predicts an output element (possibly multi-dimensional) from
// the kernel inputs with one linear model per output dimension.
type ValueModel struct {
	Weights  [][]float64 // [outDim][inDim]
	Constant []float64   // [outDim]
}

// FitValueModel trains the per-dimension linear value predictors.
func FitValueModel(inputs, outputs [][]float64) (*ValueModel, error) {
	if len(inputs) == 0 || len(inputs) != len(outputs) {
		return nil, fmt.Errorf("predictor: FitValueModel needs matching non-empty data")
	}
	inDim := len(inputs[0])
	outDim := len(outputs[0])
	m := &ValueModel{
		Weights:  make([][]float64, outDim),
		Constant: make([]float64, outDim),
	}
	x := tensor.NewMatrix(len(inputs), inDim+1)
	for i, in := range inputs {
		row := x.Row(i)
		row[0] = 1
		copy(row[1:], in)
	}
	y := make([]float64, len(inputs))
	for d := 0; d < outDim; d++ {
		for i := range outputs {
			y[i] = outputs[i][d]
		}
		w, err := tensor.LeastSquares(x.Clone(), append([]float64(nil), y...), 1e-8)
		if err != nil {
			return nil, fmt.Errorf("predictor: value fit for output %d failed: %w", d, err)
		}
		m.Constant[d] = w[0]
		m.Weights[d] = w[1:]
	}
	return m, nil
}

// Predict returns the model's output estimate for one input.
func (m *ValueModel) Predict(in []float64) []float64 {
	out := make([]float64, len(m.Weights))
	for d := range m.Weights {
		s := m.Constant[d]
		for i, w := range m.Weights[d] {
			s += w * in[i]
		}
		out[d] = s
	}
	return out
}

// EVP wraps a value model as an error predictor: the error estimate is the
// mean absolute distance between the predicted and the approximate output.
type EVP struct {
	Model *ValueModel
	Scale float64 // output scale for normalisation; 0 disables
}

var _ Predictor = (*EVP)(nil)

// Name implements Predictor.
func (e *EVP) Name() string { return "EVP" }

// PredictError implements Predictor.
func (e *EVP) PredictError(in, approxOut []float64) float64 {
	pred := e.Model.Predict(in)
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - approxOut[i])
	}
	s /= float64(len(pred))
	if e.Scale > 0 {
		s /= e.Scale
	}
	return s
}

// PredictErrorBatch implements Predictor via the scalar reference path: EVP
// exists for the Section 3.2 accuracy comparison, not the serving hot path,
// so it takes no fused kernel.
func (e *EVP) PredictErrorBatch(dst []float64, ins, outs [][]float64) {
	ScalarBatch(e, dst, ins, outs)
}

// Cost implements Predictor: one linear model per output dimension plus the
// output comparison.
func (e *EVP) Cost() Cost {
	macs := 0.0
	for _, w := range e.Model.Weights {
		macs += float64(len(w))
	}
	return Cost{MACs: macs, Compares: float64(len(e.Model.Weights)) + 1}
}

// Reset implements Predictor.
func (e *EVP) Reset() {}

// MeanAbsDistance computes the average |predicted - actual| distance between
// a predictor's error estimates and the true element errors — the Figure 5
// comparison metric for EVP vs EEP.
func MeanAbsDistance(p Predictor, inputs, approxOuts [][]float64, trueErrs []float64) float64 {
	if len(inputs) != len(trueErrs) || len(inputs) != len(approxOuts) {
		panic("predictor: MeanAbsDistance length mismatch")
	}
	p.Reset()
	var s float64
	for i := range inputs {
		s += math.Abs(p.PredictError(inputs[i], approxOuts[i]) - trueErrs[i])
	}
	return s / float64(len(inputs))
}
