// Package server is rumba-serve's serving layer: a stdlib-only HTTP daemon
// exposing the Rumba pipeline as a multi-tenant JSON API. It is the piece
// the paper's "online" premise implies but a one-shot CLI cannot provide —
// the tuner adapts the firing threshold *across* invocations, so its state
// must outlive any single request (and, via JSON snapshots, any single
// process).
//
// The layer has three parts:
//
//   - Registry (this file): named, immutable kernels — a benchmark spec, an
//     accelerator factory and the trained checkers — loaded from
//     rumba-train bundles or trained in-process at startup.
//   - Tenants (tenant.go): one live tuner per tenant×kernel, so quality
//     control is genuinely online across requests, with snapshot/restore.
//   - Admission (admission.go): a shared bounded queue plus an in-flight
//     window; overload sheds load the Rumba way, degrading requests to
//     approximate-only output instead of queueing unboundedly.
package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/bundle"
	"rumba/internal/exec"
	"rumba/internal/predictor"
	"rumba/internal/trainer"
)

// CheckerFactory builds the checker instance a tenant runs. Stateless
// checkers (linear, tree) may return a shared instance; stateful ones (EMA)
// must return a fresh instance per call so tenants never share trend state.
type CheckerFactory func() predictor.Predictor

// Kernel is one servable model: the benchmark spec, a factory for the
// approximate executor, and the trained checkers. Kernels are immutable
// after registration; all per-request state lives in the tenant manager.
//
// NewAccel is a factory rather than a shared instance because the
// accelerator model keeps activity counters — each tenant gets its own
// executor so concurrent tenants never contend (the underlying trained
// network and scaler are shared read-only).
type Kernel struct {
	Name     string
	Spec     *bench.Spec
	NewAccel func() (exec.Executor, error)
	// Checkers maps checker names ("linear", "tree", "ema") to factories;
	// DefaultChecker names the one used when a request does not choose.
	Checkers       map[string]CheckerFactory
	DefaultChecker string
	// P99SLOMillis is the kernel package's p99 latency SLO in milliseconds
	// (0 = unasserted). Frontier selection holds each candidate point's
	// predicted chunk latency to it — a point that would blow the SLO is
	// never selected no matter how cheap per element.
	P99SLOMillis float64
}

// NewChecker builds the named checker ("" selects the default, "none"
// selects unchecked execution and returns nil).
func (k *Kernel) NewChecker(name string) (predictor.Predictor, error) {
	if name == "" {
		name = k.DefaultChecker
	}
	if name == "" || name == "none" {
		return nil, nil
	}
	f, ok := k.Checkers[name]
	if !ok {
		return nil, fmt.Errorf("server: kernel %s has no checker %q", k.Name, name)
	}
	return f(), nil
}

// validate checks a kernel is servable.
func (k *Kernel) validate() error {
	if k.Name == "" || k.Spec == nil || k.NewAccel == nil {
		return fmt.Errorf("server: kernel needs a name, a spec and an accelerator factory")
	}
	if k.DefaultChecker != "" && k.DefaultChecker != "none" {
		if _, ok := k.Checkers[k.DefaultChecker]; !ok {
			return fmt.Errorf("server: kernel %s: default checker %q not registered", k.Name, k.DefaultChecker)
		}
	}
	return nil
}

// Registry is the kernel/model registry: it loads trained approximators plus
// their error predictors at startup and supports named lookup per request.
type Registry struct {
	mu      sync.RWMutex
	kernels map[string]*Kernel
}

// NewKernelRegistry returns an empty registry.
func NewKernelRegistry() *Registry {
	return &Registry{kernels: make(map[string]*Kernel)}
}

// Add registers a kernel; duplicate names are rejected.
func (r *Registry) Add(k *Kernel) error {
	if err := k.validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.kernels[k.Name]; dup {
		return fmt.Errorf("server: duplicate kernel %q", k.Name)
	}
	r.kernels[k.Name] = k
	return nil
}

// Get looks a kernel up by name.
func (r *Registry) Get(name string) (*Kernel, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	k, ok := r.kernels[name]
	return k, ok
}

// Names returns the registered kernel names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.kernels))
	for n := range r.kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// kernelFromParts assembles a Kernel from a trained accelerator
// configuration and predictor set (shared by the bundle and train loaders).
func kernelFromParts(spec *bench.Spec, acfg accel.Config, ps trainer.PredictorSet) *Kernel {
	k := &Kernel{
		Name: spec.Name,
		Spec: spec,
		NewAccel: func() (exec.Executor, error) {
			return accel.New(acfg, 0)
		},
		Checkers: map[string]CheckerFactory{},
	}
	if ps.Linear != nil {
		lin := ps.Linear
		k.Checkers["linear"] = func() predictor.Predictor { return lin }
	}
	if ps.Tree != nil {
		tree := ps.Tree
		k.Checkers["tree"] = func() predictor.Predictor { return tree }
		k.DefaultChecker = "tree"
	} else if ps.Linear != nil {
		k.DefaultChecker = "linear"
	}
	if ps.EMA != nil {
		n, scale := ps.EMA.N, ps.EMA.Scale
		// Fresh instance per tenant: the EMA tracks a running output trend,
		// which must never leak between tenants.
		k.Checkers["ema"] = func() predictor.Predictor { return predictor.NewEMA(n, scale) }
		if k.DefaultChecker == "" {
			k.DefaultChecker = "ema"
		}
	}
	return k
}

// LoadBundleFile registers the kernel serialised in one rumba-train bundle.
func (r *Registry) LoadBundleFile(path string) (*Kernel, error) {
	b, spec, err := bundle.Load(path)
	if err != nil {
		return nil, err
	}
	k := kernelFromParts(spec, b.Accel, b.Predictors())
	if err := r.Add(k); err != nil {
		return nil, err
	}
	return k, nil
}

// LoadBundleDir registers every *.json bundle in a directory, returning the
// number loaded.
func (r *Registry) LoadBundleDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("server: %w", err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		if _, err := r.LoadBundleFile(filepath.Join(dir, e.Name())); err != nil {
			return n, fmt.Errorf("server: bundle %s: %w", e.Name(), err)
		}
		n++
	}
	return n, nil
}

// TrainKernel trains a benchmark's accelerator and checkers in-process and
// returns the servable kernel — the bundle-free startup path. trainN <= 0
// uses the Table 1 training-set size; epochs <= 0 the trainer default.
func TrainKernel(name string, trainN, epochs int) (*Kernel, error) {
	spec, err := bench.Get(name)
	if err != nil {
		return nil, err
	}
	train := spec.GenTrain(trainN)
	cfg := trainer.DefaultAccelTrainConfig(name)
	if epochs > 0 {
		cfg.NN.Epochs = epochs
	}
	acfg, err := trainer.TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train, cfg)
	if err != nil {
		return nil, err
	}
	acc, err := accel.New(acfg, 0)
	if err != nil {
		return nil, err
	}
	ps, err := trainer.TrainPredictors(spec, train, trainer.Observe(spec, acc, train))
	if err != nil {
		return nil, err
	}
	return kernelFromParts(spec, acfg, ps), nil
}
