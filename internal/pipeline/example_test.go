package pipeline_test

import (
	"fmt"

	"rumba/internal/pipeline"
)

// ExampleSimulate reproduces the Figure 8 scenario: the CPU re-computes
// flagged iterations while the accelerator keeps executing, so sparse fixes
// barely change the makespan.
func ExampleSimulate() {
	flags := make([]bool, 100)
	for i := 0; i < 100; i += 5 { // every 5th iteration flagged
		flags[i] = true
	}
	res, err := pipeline.Simulate(flags, pipeline.Params{
		AccelCyclesPerIter: 10, // accelerator: 10 cycles per iteration
		CPURecomputeCycles: 40, // exact kernel: 4x slower
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("accelerator-bound:", res.TotalCycles < 1100)
	fmt.Println("CPU busy cycles:", res.CPUBusyCycles)
	// Output:
	// accelerator-bound: true
	// CPU busy cycles: 800
}

// ExampleWholeAppSpeedup applies the Amdahl term of Figure 15.
func ExampleWholeAppSpeedup() {
	// The approximate region runs 4x faster and covers 80% of the app.
	speedup := pipeline.WholeAppSpeedup(250, 100, 10, 0.8)
	fmt.Printf("%.2fx\n", speedup)
	// Output:
	// 2.50x
}
