package server

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/bundle"
	"rumba/internal/pkg"
	"rumba/internal/predictor"
	"rumba/internal/trainer"
)

// pkgBundle memoises one trained fft bundle for the package-loader tests.
var pkgBundle = struct {
	once sync.Once
	b    *bundle.Bundle
}{}

func trainedBundle(t *testing.T) *bundle.Bundle {
	t.Helper()
	pkgBundle.once.Do(func() {
		spec, err := bench.Get("fft")
		if err != nil {
			return
		}
		train := spec.GenTrain(400)
		cfg := trainer.DefaultAccelTrainConfig("fft")
		cfg.NN.Epochs = 10
		acfg, err := trainer.TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train, cfg)
		if err != nil {
			return
		}
		acc, err := accel.New(acfg, 0)
		if err != nil {
			return
		}
		preds, err := trainer.TrainPredictors(spec, train, trainer.Observe(spec, acc, train))
		if err != nil {
			return
		}
		pkgBundle.b, _ = bundle.New(spec, acfg, preds)
	})
	if pkgBundle.b == nil {
		t.Fatal("fft bundle failed to train")
	}
	return pkgBundle.b
}

// installPkg builds a package straight into a registry directory.
func installPkg(t *testing.T, registry string, b *bundle.Bundle, cfg pkg.BuildConfig) *pkg.Package {
	t.Helper()
	p, err := pkg.Build(registry, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// blindBundle clones b with a single-leaf tree that always predicts zero
// error, so the checker never fires, recovery never runs, and the delivered
// error equals the raw accelerator error — guaranteed to bust a tiny TOQ.
func blindBundle(t *testing.T, b *bundle.Bundle) *bundle.Bundle {
	t.Helper()
	blind := *b
	blind.Tree = &predictor.Tree{Nodes: []predictor.TreeNode{{Feature: -1, Value: 0}}}
	blind.Linear = nil
	blind.EMAHistory, blind.EMAScale = 0, 0
	return &blind
}

func TestLoadPackageDir(t *testing.T) {
	base := trainedBundle(t)
	good := pkg.BuildConfig{Quality: pkg.QualitySpec{TOQ: 0.5}, CorpusN: 40}

	cases := []struct {
		name string
		// setup populates a fresh registry directory and returns the number
		// of packages LoadPackageDir must register; want is a fragment the
		// error must contain ("" expects success).
		setup func(t *testing.T, dir string) int
		want  string
	}{
		{
			name: "empty registry loads nothing",
			setup: func(t *testing.T, dir string) int {
				return 0
			},
		},
		{
			name: "valid package registers its kernel",
			setup: func(t *testing.T, dir string) int {
				installPkg(t, dir, base, good)
				return 1
			},
		},
		{
			name: "plain files are ignored",
			setup: func(t *testing.T, dir string) int {
				installPkg(t, dir, base, good)
				if err := os.WriteFile(filepath.Join(dir, "README"), []byte("notes"), 0o644); err != nil {
					t.Fatal(err)
				}
				return 1
			},
		},
		{
			name: "version conflict names both directories",
			setup: func(t *testing.T, dir string) int {
				installPkg(t, dir, base, good)
				cfg := good
				cfg.Version = "2.0.0"
				installPkg(t, dir, base, cfg)
				return 0
			},
			want: `fft-0.1.0 and fft-2.0.0 both provide kernel "fft"`,
		},
		{
			name: "tampered bundle fails its checksum",
			setup: func(t *testing.T, dir string) int {
				p := installPkg(t, dir, base, good)
				path := filepath.Join(p.Dir, pkg.BundleFile)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)/2] ^= 0xff
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				return 0
			},
			want: "checksum mismatch",
		},
		{
			name: "TOQ-violating corpus replay is rejected",
			setup: func(t *testing.T, dir string) int {
				installPkg(t, dir, blindBundle(t, base),
					pkg.BuildConfig{Quality: pkg.QualitySpec{TOQ: 1e-9}, CorpusN: 40})
				return 0
			},
			want: "violates its own TOQ",
		},
		{
			name: "directory without a manifest is not a package",
			setup: func(t *testing.T, dir string) int {
				if err := os.MkdirAll(filepath.Join(dir, "junk"), 0o755); err != nil {
					t.Fatal(err)
				}
				return 0
			},
			want: "has no readable manifest.json",
		},
		{
			name: "malformed manifest JSON is actionable",
			setup: func(t *testing.T, dir string) int {
				sub := filepath.Join(dir, "broken-1.0.0")
				if err := os.MkdirAll(sub, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(sub, pkg.ManifestFile), []byte("{"), 0o644); err != nil {
					t.Fatal(err)
				}
				return 0
			},
			want: "broken-1.0.0/manifest.json",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			wantN := tc.setup(t, dir)
			reg := NewKernelRegistry()
			n, err := reg.LoadPackageDir(dir)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("LoadPackageDir: %v", err)
				}
				if n != wantN {
					t.Fatalf("loaded %d packages, want %d", n, wantN)
				}
				if wantN > 0 {
					k, ok := reg.Get("fft")
					if !ok || k.DefaultChecker != "tree" {
						t.Fatalf("kernel fft not registered with its default checker (ok=%v)", ok)
					}
				}
				return
			}
			if err == nil {
				t.Fatalf("LoadPackageDir succeeded (%d loaded), want error containing %q", n, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want it to contain %q", err, tc.want)
			}
		})
	}
}

func TestLoadPackageDirMissing(t *testing.T) {
	reg := NewKernelRegistry()
	if _, err := reg.LoadPackageDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing registry directory must error")
	}
}

// TestLoadPackageServesInvocations proves a package-loaded kernel is
// end-to-end servable: register, serve, invoke.
func TestLoadPackageServesInvocations(t *testing.T) {
	dir := t.TempDir()
	p := installPkg(t, dir, trainedBundle(t), pkg.BuildConfig{Quality: pkg.QualitySpec{TOQ: 0.5}, CorpusN: 40})
	reg := NewKernelRegistry()
	k, err := reg.LoadPackage(p.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "fft" {
		t.Fatalf("kernel = %q", k.Name)
	}
	_, hs := newTestServer(t, Options{}, k)
	status, resp, errBody := invoke(t, hs.URL, InvokeRequest{
		Kernel: "fft",
		Inputs: p.Corpus.Inputs[:4],
		Mode:   "toq",
		Target: p.Manifest.Quality.TOQ,
	})
	if status != 200 {
		t.Fatalf("invoke status %d: %s", status, errBody)
	}
	if len(resp.Outputs) != 4 || resp.Checker != "tree" {
		t.Fatalf("response = %+v", resp)
	}
}
