package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Control-flow graphs. The per-function AST walks of the original suite are
// enough for syntactic checks, but the approxflow typestate analysis needs
// *ordering* (a value checked after it was committed is still a violation)
// and the hotpath analyzer needs *reachability* (an allocation on a path
// that provably panics is not a steady-state allocation). This file builds
// a conventional basic-block CFG per function body: blocks hold statements
// and condition expressions in evaluation order, edges follow Go's
// structured control flow including labeled break/continue, goto, switch
// fallthrough, and select. Calls that cannot return (panic, os.Exit,
// log.Fatal*, runtime.Goexit) terminate their block with an edge to a
// distinguished panic exit, separate from the normal return exit — the
// distinction is what lets analyses treat guard-clause panics as cold.
//
// Function literals are NOT inlined: a FuncLit appearing in a statement is
// just a value in that block. Analyses build a separate CFG per literal
// body (see eachFuncBody).

// cfgBlock is one basic block.
type cfgBlock struct {
	index int
	// nodes are the statements and condition expressions of the block in
	// evaluation order. Entries are ast.Stmt or ast.Expr.
	nodes []ast.Node
	succs []*cfgBlock
	preds []*cfgBlock
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	// exit is the virtual normal-return block: every return statement and
	// the fall-off-the-end path lead here.
	exit *cfgBlock
	// panicExit is the virtual block reached by panicking calls.
	panicExit *cfgBlock
}

// Blocks returns all blocks including the virtual exits.
func (c *CFG) Blocks() []*cfgBlock { return c.blocks }

// noReturnCalls lists external functions that never return normally.
var noReturnCalls = map[string]bool{
	"os.Exit":        true,
	"runtime.Goexit": true,
	"log.Fatal":      true,
	"log.Fatalf":     true,
	"log.Fatalln":    true,
	"log.Panic":      true,
	"log.Panicf":     true,
	"log.Panicln":    true,
}

type cfgBuilder struct {
	info *types.Info
	cfg  *CFG
	cur  *cfgBlock
	// breakTargets/continueTargets are stacks of enclosing targets; the
	// label is "" for the innermost unlabeled form.
	breakTargets    []cfgTarget
	continueTargets []cfgTarget
	// labelBlocks maps label names to their blocks (goto and labeled
	// statements share the map: a label is one program point).
	labelBlocks map[string]*cfgBlock
}

type cfgTarget struct {
	label string
	block *cfgBlock
}

// buildCFG constructs the CFG for one function body.
func buildCFG(info *types.Info, body *ast.BlockStmt) *CFG {
	c := &CFG{}
	b := &cfgBuilder{info: info, cfg: c, labelBlocks: map[string]*cfgBlock{}}
	c.exit = b.newBlock()
	c.panicExit = b.newBlock()
	c.entry = b.newBlock()
	b.cur = c.entry
	b.stmtList(body.List)
	b.jump(c.exit) // fall off the end
	for _, blk := range c.blocks {
		for _, s := range blk.succs {
			s.preds = append(s.preds, blk)
		}
	}
	return c
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.cfg.blocks)}
	b.cfg.blocks = append(b.cfg.blocks, blk)
	return blk
}

// jump terminates the current block with an edge to target and leaves the
// builder in a fresh (unreachable until linked) block.
func (b *cfgBuilder) jump(target *cfgBlock) {
	b.edge(target)
	b.cur = b.newBlock()
}

// edge adds an edge from the current block without terminating it.
func (b *cfgBuilder) edge(target *cfgBlock) {
	if b.cur == nil {
		return
	}
	for _, s := range b.cur.succs {
		if s == target {
			return
		}
	}
	b.cur.succs = append(b.cur.succs, target)
}

// startBlock links the current block to next and makes next current.
func (b *cfgBuilder) startBlock(next *cfgBlock) {
	b.edge(next)
	b.cur = next
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

// labelFor returns (creating if needed) the block for a label.
func (b *cfgBuilder) labelFor(name string) *cfgBlock {
	blk, ok := b.labelBlocks[name]
	if !ok {
		blk = b.newBlock()
		b.labelBlocks[name] = blk
	}
	return blk
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *cfgBlock) {
	b.breakTargets = append(b.breakTargets, cfgTarget{"", brk})
	b.continueTargets = append(b.continueTargets, cfgTarget{"", cont})
	if label != "" {
		b.breakTargets = append(b.breakTargets, cfgTarget{label, brk})
		b.continueTargets = append(b.continueTargets, cfgTarget{label, cont})
	}
}

func (b *cfgBuilder) popLoop(label string) {
	n := 1
	if label != "" {
		n = 2
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-n]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-n]
}

func (b *cfgBuilder) pushSwitch(label string, brk *cfgBlock) {
	b.breakTargets = append(b.breakTargets, cfgTarget{"", brk})
	if label != "" {
		b.breakTargets = append(b.breakTargets, cfgTarget{label, brk})
	}
}

func (b *cfgBuilder) popSwitch(label string) {
	n := 1
	if label != "" {
		n = 2
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-n]
}

func findTarget(stack []cfgTarget, label string) *cfgBlock {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// terminates reports whether the expression statement is a call that never
// returns normally.
func (b *cfgBuilder) terminates(call *ast.CallExpr) bool {
	switch obj := calleeObject(b.info, call).(type) {
	case *types.Builtin:
		return obj.Name() == "panic"
	case *types.Func:
		return noReturnCalls[objPathName(obj)]
	}
	return false
}

// stmt builds one statement. label is the name of an immediately enclosing
// labeled statement ("" for none) and applies to loop/switch constructs.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch v := s.(type) {
	case nil:
	case *ast.BlockStmt:
		b.stmtList(v.List)
	case *ast.LabeledStmt:
		lb := b.labelFor(v.Label.Name)
		b.startBlock(lb)
		b.stmt(v.Stmt, v.Label.Name)
	case *ast.ReturnStmt:
		b.add(v)
		b.jump(b.cfg.exit)
	case *ast.BranchStmt:
		b.branchStmt(v)
	case *ast.ExprStmt:
		b.add(v)
		if call, ok := ast.Unparen(v.X).(*ast.CallExpr); ok && b.terminates(call) {
			b.jump(b.cfg.panicExit)
		}
	case *ast.IfStmt:
		if v.Init != nil {
			b.add(v.Init)
		}
		b.add(v.Cond)
		thenB, afterB := b.newBlock(), b.newBlock()
		b.edge(thenB)
		if v.Else != nil {
			elseB := b.newBlock()
			b.edge(elseB)
			b.cur = elseB
			b.stmt(v.Else, "")
			b.edge(afterB)
		} else {
			b.edge(afterB)
		}
		b.cur = thenB
		b.stmtList(v.Body.List)
		b.edge(afterB)
		b.cur = afterB
	case *ast.ForStmt:
		if v.Init != nil {
			b.add(v.Init)
		}
		head, body, after := b.newBlock(), b.newBlock(), b.newBlock()
		post := head
		if v.Post != nil {
			post = b.newBlock()
		}
		b.startBlock(head)
		if v.Cond != nil {
			b.add(v.Cond)
			b.edge(after)
		}
		b.edge(body)
		b.cur = body
		b.pushLoop(label, after, post)
		b.stmtList(v.Body.List)
		b.popLoop(label)
		if v.Post != nil {
			b.edge(post)
			b.cur = post
			b.add(v.Post)
		}
		b.edge(head)
		b.cur = after
	case *ast.RangeStmt:
		head, body, after := b.newBlock(), b.newBlock(), b.newBlock()
		b.startBlock(head)
		// A RangeStmt node inside a block stands for its HEADER ONLY (the
		// ranged expression and the key/value binding); the body statements
		// live in their own blocks. Analyses must not descend into v.Body
		// when they meet a RangeStmt as a block node.
		b.add(v)
		b.edge(after)
		b.edge(body)
		b.cur = body
		b.pushLoop(label, after, head)
		b.stmtList(v.Body.List)
		b.popLoop(label)
		b.edge(head)
		b.cur = after
	case *ast.SwitchStmt:
		if v.Init != nil {
			b.add(v.Init)
		}
		if v.Tag != nil {
			b.add(v.Tag)
		}
		b.switchClauses(v.Body.List, label)
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			b.add(v.Init)
		}
		b.add(v.Assign)
		b.switchClauses(v.Body.List, label)
	case *ast.SelectStmt:
		after := b.newBlock()
		b.pushSwitch(label, after)
		head := b.cur
		for _, cl := range v.Body.List {
			comm := cl.(*ast.CommClause)
			body := b.newBlock()
			b.cur = head
			b.edge(body)
			b.cur = body
			if comm.Comm != nil {
				b.stmt(comm.Comm, "")
			}
			b.stmtList(comm.Body)
			b.edge(after)
		}
		b.popSwitch(label)
		// select{} with no clauses blocks forever: no edge to after, the
		// after block simply becomes unreachable.
		b.cur = after
	case *ast.GoStmt, *ast.DeferStmt, *ast.SendStmt, *ast.AssignStmt,
		*ast.IncDecStmt, *ast.DeclStmt, *ast.EmptyStmt:
		b.add(s)
	default:
		b.add(s)
	}
}

// switchClauses builds the case blocks of a switch/type-switch body.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string) {
	after := b.newBlock()
	head := b.cur
	b.pushSwitch(label, after)
	// Pre-create body blocks so fallthrough can target the next clause.
	bodies := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	hasDefault := false
	for i, cs := range clauses {
		clause := cs.(*ast.CaseClause)
		if clause.List == nil {
			hasDefault = true
		}
		b.cur = head
		for _, e := range clause.List {
			b.add(e)
		}
		b.edge(bodies[i])
		b.cur = bodies[i]
		next := after
		if i+1 < len(clauses) {
			next = bodies[i+1]
		}
		b.buildCaseBody(clause.Body, next, after)
	}
	b.popSwitch(label)
	if !hasDefault {
		b.cur = head
		b.edge(after)
	}
	b.cur = after
}

// buildCaseBody builds one case clause body; a trailing fallthrough jumps
// to next instead of after.
func (b *cfgBuilder) buildCaseBody(body []ast.Stmt, next, after *cfgBlock) {
	for _, s := range body {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			b.add(br)
			b.jump(next)
			return
		}
		b.stmt(s, "")
	}
	b.edge(after)
}

func (b *cfgBuilder) branchStmt(v *ast.BranchStmt) {
	label := ""
	if v.Label != nil {
		label = v.Label.Name
	}
	switch v.Tok {
	case token.BREAK:
		if t := findTarget(b.breakTargets, label); t != nil {
			b.add(v)
			b.jump(t)
			return
		}
	case token.CONTINUE:
		if t := findTarget(b.continueTargets, label); t != nil {
			b.add(v)
			b.jump(t)
			return
		}
	case token.GOTO:
		if label != "" {
			b.add(v)
			b.jump(b.labelFor(label))
			return
		}
	case token.FALLTHROUGH:
		// Handled by buildCaseBody; a stray one (invalid Go) is inert.
	}
	b.add(v)
}

// reachableFromEntry returns the blocks reachable from the entry.
func (c *CFG) reachableFromEntry() map[*cfgBlock]bool {
	seen := map[*cfgBlock]bool{}
	stack := []*cfgBlock{c.entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		stack = append(stack, blk.succs...)
	}
	return seen
}

// warmBlocks returns the set of blocks that lie on some panic-free path
// from the entry to the normal return exit. A statement outside this set
// only ever executes on the way to a panic (or into a permanent block), so
// steady-state properties like "allocation-free" do not apply to it.
func (c *CFG) warmBlocks() map[*cfgBlock]bool {
	fromEntry := c.reachableFromEntry()
	// Backward reachability from the normal exit.
	toExit := map[*cfgBlock]bool{}
	stack := []*cfgBlock{c.exit}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if toExit[blk] {
			continue
		}
		toExit[blk] = true
		stack = append(stack, blk.preds...)
	}
	warm := map[*cfgBlock]bool{}
	for blk := range fromEntry {
		if toExit[blk] {
			warm[blk] = true
		}
	}
	return warm
}

// eachFuncBody invokes fn for the declaration's own body and for every
// function literal nested inside it (each literal body is its own CFG
// domain). outer is the FuncLit chain's innermost enclosing node, used for
// closure-capture checks.
func eachFuncBody(fd *ast.FuncDecl, fn func(body *ast.BlockStmt, lit *ast.FuncLit)) {
	fn(fd.Body, nil)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			fn(lit.Body, lit)
		}
		return true
	})
}
