package analysis

// A minimal forward worklist solver over the CFGs of cfg.go. The state type
// is supplied by the analysis; the solver only needs to clone it at block
// boundaries, join it at merge points, and push it through a block's
// transfer function. Termination is the analysis's responsibility (its
// lattice must have finite height and join must be monotone — both taint
// states and alloc facts satisfy this); the solver additionally carries a
// generous iteration bound so a non-monotone bug degrades to an imprecise
// result instead of a hang.

// solveForward computes the state at entry to every reachable block.
//
//	entry    the state on function entry
//	clone    deep copy (the solver never aliases states across blocks)
//	join     merges src into dst in place, reporting whether dst changed
//	transfer pushes the state through one block's nodes (may mutate in)
func solveForward[S any](
	c *CFG,
	entry S,
	clone func(S) S,
	join func(dst, src S) bool,
	transfer func(b *cfgBlock, in S) S,
) map[*cfgBlock]S {
	in := map[*cfgBlock]S{c.entry: entry}
	work := []*cfgBlock{c.entry}
	queued := map[*cfgBlock]bool{c.entry: true}
	// Each pop re-evaluates one block; with a finite-height lattice the
	// bound is never hit (kept as a belt against non-monotone transfers).
	for steps := 0; len(work) > 0 && steps < 200*len(c.blocks)+10000; steps++ {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := transfer(b, clone(in[b]))
		for _, s := range b.succs {
			cur, seen := in[s]
			changed := false
			if !seen {
				in[s] = clone(out)
				changed = true
			} else if join(cur, out) {
				changed = true
			}
			if changed && !queued[s] {
				work = append(work, s)
				queued[s] = true
			}
		}
	}
	return in
}
