// Package rumba's repository-level benchmarks regenerate every table and
// figure of the paper's evaluation (one testing.B benchmark per experiment;
// see the per-experiment index in DESIGN.md) plus ablation benches for the
// design choices the paper discusses. Custom b.ReportMetric values carry the
// reproduced headline numbers alongside the usual ns/op:
//
//	go test -bench=. -benchmem
//
// The benchmarks run on reduced datasets so the whole suite finishes in
// minutes; `go run ./cmd/rumba-bench` regenerates the paper-sized numbers.
package rumba

import (
	"context"
	"sync"
	"testing"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/core"
	"rumba/internal/energy"
	"rumba/internal/experiments"
	"rumba/internal/nn"
	"rumba/internal/pipeline"
	"rumba/internal/predictor"
	"rumba/internal/purity"
	"rumba/internal/quality"
	"rumba/internal/rng"
	"rumba/internal/trainer"
)

var (
	ctxOnce sync.Once
	ctx     *experiments.Context
)

// benchCtx trains the per-benchmark artifacts once; individual benchmarks
// then measure the experiment harnesses on the prepared context.
func benchCtx(b *testing.B) *experiments.Context {
	b.Helper()
	ctxOnce.Do(func() {
		ctx = experiments.NewContext(experiments.ReducedSizes())
		for _, name := range bench.Names() {
			if _, err := ctx.Prepare(name); err != nil {
				b.Fatalf("prepare %s: %v", name, err)
			}
		}
	})
	return ctx
}

func BenchmarkTable1Applications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Table1(); len(tab.Rows) != 7 {
			b.Fatal("Table 1 must list 7 applications")
		}
	}
}

func BenchmarkTable2Microarchitecture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Table2(); len(tab.Rows) == 0 {
			b.Fatal("empty Table 2")
		}
	}
}

func BenchmarkFig01ErrorCDF(b *testing.B) {
	c := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(c, "inversek2j"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig02ErrorDistribution(b *testing.B) {
	c := benchCtx(b)
	var last experiments.Fig2Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig2(c)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(100*last.LargeFracConcentrated, "%large-errors-concentrated")
	b.ReportMetric(100*last.LargeFracSpread, "%large-errors-spread")
}

func BenchmarkFig03Mosaic(b *testing.B) {
	c := benchCtx(b)
	var last bench.MosaicResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig3(c)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Mean, "%mean-error")
	b.ReportMetric(last.Max, "%max-error")
}

func BenchmarkFig05EVPvsEEP(b *testing.B) {
	c := benchCtx(b)
	var last experiments.Fig5Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig5(c)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Ratio, "EVP/EEP-distance-ratio")
}

func BenchmarkFig10FixSweep(b *testing.B) {
	c := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range bench.Names() {
			if _, _, err := experiments.Fig10(c, name); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig11FalsePositives(b *testing.B) {
	c := benchCtx(b)
	var tree, random float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig11(c)
		if err != nil {
			b.Fatal(err)
		}
		tree, random = 0, 0
		for _, per := range res {
			tree += per[core.SchemeTree]
			random += per[core.SchemeRandom]
		}
		tree /= float64(len(res))
		random /= float64(len(res))
	}
	b.ReportMetric(100*tree, "%FP-treeErrors")
	b.ReportMetric(100*random, "%FP-Random")
}

func BenchmarkFig12FixedElements(b *testing.B) {
	c := benchCtx(b)
	var ideal, tree float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig12(c)
		if err != nil {
			b.Fatal(err)
		}
		ideal, tree = 0, 0
		for _, per := range res {
			ideal += per[core.SchemeIdeal]
			tree += per[core.SchemeTree]
		}
		ideal /= float64(len(res))
		tree /= float64(len(res))
	}
	b.ReportMetric(100*ideal, "%fixed-Ideal")
	b.ReportMetric(100*tree, "%fixed-treeErrors")
}

func BenchmarkFig13Coverage(b *testing.B) {
	c := benchCtx(b)
	var tree float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig13(c)
		if err != nil {
			b.Fatal(err)
		}
		tree = 0
		for _, per := range res {
			tree += per[core.SchemeTree]
		}
		tree /= float64(len(res))
	}
	b.ReportMetric(100*tree, "%coverage-treeErrors")
}

func BenchmarkFig14Energy(b *testing.B) {
	c := benchCtx(b)
	var npu, tree float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig14(c)
		if err != nil {
			b.Fatal(err)
		}
		npu, tree = 0, 0
		for _, per := range res {
			npu += per["NPU"]
			tree += per["treeErrors"]
		}
		npu /= float64(len(res))
		tree /= float64(len(res))
	}
	b.ReportMetric(npu, "x-energy-NPU")
	b.ReportMetric(tree, "x-energy-treeErrors")
}

func BenchmarkFig15Speedup(b *testing.B) {
	c := benchCtx(b)
	var npu, tree float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig15(c)
		if err != nil {
			b.Fatal(err)
		}
		npu, tree = 0, 0
		for _, per := range res {
			npu += per["NPU"]
			tree += per["treeErrors"]
		}
		npu /= float64(len(res))
		tree /= float64(len(res))
	}
	b.ReportMetric(npu, "x-speedup-NPU")
	b.ReportMetric(tree, "x-speedup-treeErrors")
}

func BenchmarkFig16EnergyVsTarget(b *testing.B) {
	c := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig16(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17PredictionTime(b *testing.B) {
	c := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig17(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18CPUActivity(b *testing.B) {
	c := benchCtx(b)
	var last experiments.Fig18Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig18(c, "inversek2j")
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(100*last.FlaggedFrac, "%flagged")
}

func BenchmarkHeadline(b *testing.B) {
	c := benchCtx(b)
	var last experiments.HeadlineResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Headline(c)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ErrorReduction, "x-error-reduction")
	b.ReportMetric(last.NPUEnergy, "x-energy-NPU")
	b.ReportMetric(last.RumbaEnergy, "x-energy-Rumba")
}

// --- Ablation benches: the DESIGN.md design-choice studies -----------------

// BenchmarkAblationEVPvsEEP quantifies Section 3.2's choice of predicting
// errors directly instead of predicting values.
func BenchmarkAblationEVPvsEEP(b *testing.B) {
	c := benchCtx(b)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig5(c)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Ratio
	}
	b.ReportMetric(ratio, "EVP/EEP-ratio")
}

// BenchmarkAblationPlacement compares the Figure 9 detector placements on
// the same workload: serial saves accelerator energy, parallel saves
// latency.
func BenchmarkAblationPlacement(b *testing.B) {
	c := benchCtx(b)
	p, err := c.Prepare("inversek2j")
	if err != nil {
		b.Fatal(err)
	}
	var serialE, parallelE float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, placement := range []accel.Placement{accel.PlacementSerial, accel.PlacementParallel} {
			tuner, err := core.NewTuner(core.ModeTOQ, 0.10)
			if err != nil {
				b.Fatal(err)
			}
			sys, err := core.NewSystem(core.Config{
				Spec: p.Spec, Accel: p.RumbaAccel, Checker: p.Preds.Linear,
				Tuner: tuner, Placement: placement,
			})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := sys.Run(p.Test)
			if err != nil {
				b.Fatal(err)
			}
			if placement == accel.PlacementSerial {
				serialE = rep.Energy.Savings
			} else {
				parallelE = rep.Energy.Savings
			}
		}
	}
	b.ReportMetric(serialE, "x-energy-serial")
	b.ReportMetric(parallelE, "x-energy-parallel")
}

// BenchmarkAblationTreeDepth sweeps the decision-tree depth cap (the paper
// fixes 7) and reports the fix count needed for 90% quality at each depth.
func BenchmarkAblationTreeDepth(b *testing.B) {
	c := benchCtx(b)
	p, err := c.Prepare("inversek2j")
	if err != nil {
		b.Fatal(err)
	}
	obs := trainer.Observe(p.Spec, p.RumbaAccel, p.Train)
	depths := []int{1, 3, 5, 7}
	fixes := make([]float64, len(depths))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d, depth := range depths {
			tree, err := predictor.FitTree(p.Train.Inputs, obs.Errors, p.Spec.RumbaFeatures,
				predictor.TreeConfig{MaxDepth: depth})
			if err != nil {
				b.Fatal(err)
			}
			preds := make([]float64, len(p.Test.Inputs))
			for j := range p.Test.Inputs {
				preds[j] = tree.PredictError(p.Test.Inputs[j], nil)
			}
			op := core.FixesForTarget(p.RumbaObs.Errors, preds, experiments.TargetError)
			fixes[d] = 100 * float64(len(op.Fixed)) / float64(len(p.Test.Inputs))
		}
	}
	for d, depth := range depths {
		b.ReportMetric(fixes[d], "%fixed-depth"+string(rune('0'+depth)))
	}
}

// BenchmarkAblationPipelineOverlap compares the Figure 8 overlapped recovery
// against naively serialising every recompute behind the accelerator.
func BenchmarkAblationPipelineOverlap(b *testing.B) {
	r := rng.NewNamed("bench/overlap")
	flags := make([]bool, 20000)
	for i := range flags {
		flags[i] = r.Bool(0.12)
	}
	params := pipeline.Params{AccelCyclesPerIter: 20, CPURecomputeCycles: 120}
	var overlapped, serial float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipeline.Simulate(flags, params)
		if err != nil {
			b.Fatal(err)
		}
		overlapped = res.TotalCycles
		serial = res.AccelCycles + res.CPUBusyCycles
	}
	b.ReportMetric(serial/overlapped, "x-overlap-gain")
}

// --- Micro benches for the hot paths ---------------------------------------

func BenchmarkNNForward(b *testing.B) {
	net := nn.New(nn.MustTopology("18->32->8->2"), nn.Sigmoid, nn.Sigmoid, rng.New(1))
	in := make([]float64, 18)
	for i := range in {
		in[i] = 0.3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(in)
	}
}

func BenchmarkAcceleratorInvoke(b *testing.B) {
	c := benchCtx(b)
	p, err := c.Prepare("sobel")
	if err != nil {
		b.Fatal(err)
	}
	in := p.Test.Inputs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RumbaAccel.Invoke(in)
	}
}

func BenchmarkLinearPredict(b *testing.B) {
	c := benchCtx(b)
	p, err := c.Prepare("sobel")
	if err != nil {
		b.Fatal(err)
	}
	in := p.Test.Inputs[0]
	out := p.RumbaObs.Approx[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Preds.Linear.PredictError(in, out)
	}
}

func BenchmarkTreePredict(b *testing.B) {
	c := benchCtx(b)
	p, err := c.Prepare("sobel")
	if err != nil {
		b.Fatal(err)
	}
	in := p.Test.Inputs[0]
	out := p.RumbaObs.Approx[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Preds.Tree.PredictError(in, out)
	}
}

func BenchmarkSystemRun(b *testing.B) {
	c := benchCtx(b)
	p, err := c.Prepare("fft")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuner, err := core.NewTuner(core.ModeTOQ, 0.10)
		if err != nil {
			b.Fatal(err)
		}
		sys, err := core.NewSystem(core.Config{Spec: p.Spec, Accel: p.RumbaAccel, Checker: p.Preds.Tree, Tuner: tuner})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(p.Test); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnergyModel(b *testing.B) {
	spec, err := bench.Get("sobel")
	if err != nil {
		b.Fatal(err)
	}
	m := energy.DefaultModel()
	act := energy.Activity{
		Elements: 10000, Recomputed: 1200, AccelInvocations: 10000,
		NPUMACsPerInvocation: 80, QueueWordsPerInvocation: 10,
		Checker: predictor.Cost{Compares: 8},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := energy.WholeAppEnergy(spec.Cost, act, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFixedPoint measures how much error the NPU's fixed-point
// datapath adds over idealised float execution (Q6.10 vs float64).
func BenchmarkAblationFixedPoint(b *testing.B) {
	c := benchCtx(b)
	p, err := c.Prepare("inversek2j")
	if err != nil {
		b.Fatal(err)
	}
	var floatErr, fixedErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		floatErr, fixedErr = 0, 0
		acc := p.RumbaAccel
		if err := acc.SetFixedPoint(nn.FixedFormat{}); err != nil {
			b.Fatal(err)
		}
		for j := range p.Test.Inputs {
			out := acc.Invoke(p.Test.Inputs[j])
			floatErr += quality.ElementError(p.Spec.Metric, p.Test.Targets[j], out, p.Spec.Scale)
		}
		if err := acc.SetFixedPoint(nn.DefaultFixedFormat); err != nil {
			b.Fatal(err)
		}
		for j := range p.Test.Inputs {
			out := acc.Invoke(p.Test.Inputs[j])
			fixedErr += quality.ElementError(p.Spec.Metric, p.Test.Targets[j], out, p.Spec.Scale)
		}
		if err := acc.SetFixedPoint(nn.FixedFormat{}); err != nil {
			b.Fatal(err)
		}
		n := float64(len(p.Test.Inputs))
		floatErr /= n
		fixedErr /= n
	}
	b.ReportMetric(100*floatErr, "%err-float")
	b.ReportMetric(100*fixedErr, "%err-fixedQ6.10")
}

// BenchmarkExpSampling regenerates the quality-sampling comparison.
func BenchmarkExpSampling(b *testing.B) {
	c := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExpSampling(c, "inversek2j"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpMargin regenerates the margin-checker extension study.
func BenchmarkExpMargin(b *testing.B) {
	c := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExpMargin(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPurityAnalysis runs the Section 2.2 static analysis over the
// benchmark package.
func BenchmarkPurityAnalysis(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		rep, err := purity.AnalyzeDir("internal/bench", "imageutil.Clamp255")
		if err != nil {
			b.Fatal(err)
		}
		frac = rep.PureFraction()
	}
	b.ReportMetric(100*frac, "%provably-pure")
}

// BenchmarkStreamRuntime measures the concurrent streaming runtime
// end-to-end (detection goroutine, recovery workers, in-order merger).
func BenchmarkStreamRuntime(b *testing.B) {
	c := benchCtx(b)
	p, err := c.Prepare("fft")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuner, err := core.NewTuner(core.ModeTOQ, 0.10)
		if err != nil {
			b.Fatal(err)
		}
		st, err := core.NewStream(core.Config{
			Spec: p.Spec, Accel: p.RumbaAccel, Checker: p.Preds.Tree, Tuner: tuner,
		}, 2)
		if err != nil {
			b.Fatal(err)
		}
		inputs := make(chan []float64, 64)
		go func() {
			for _, in := range p.Test.Inputs {
				inputs <- in
			}
			close(inputs)
		}()
		results, err := st.Process(context.Background(), inputs)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for range results {
			n++
		}
		if n != len(p.Test.Inputs) {
			b.Fatalf("stream delivered %d of %d", n, len(p.Test.Inputs))
		}
	}
}
