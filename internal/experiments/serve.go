package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"rumba/internal/accel"
	"rumba/internal/core"
	"rumba/internal/exec"
	"rumba/internal/obs"
	"rumba/internal/predictor"
	"rumba/internal/server"
	"rumba/internal/trace"
)

// ExpServe load-tests the rumba-serve layer in-process: N concurrent tenants
// hammer a deliberately under-provisioned server (small worker pool, small
// admission queue) over a real loopback listener, and the table reports the
// admitted/shed split, element-level shed/degraded/recovery rates, the
// per-tenant quality-drift verdicts, the flight recorder's retention, and
// the admitted-request latency distribution — all from the server's own
// observability surface (metrics snapshot, tenant listing, trace dump), the
// same signals an operator scrapes in production. Like "stream" it is
// registered in rumba-bench but excluded from `-exp all`: latencies and the
// exact shed count are wall-clock and machine-dependent.
func ExpServe(c *Context, benchmark string) (*Table, error) {
	if benchmark == "" {
		benchmark = "fft"
	}
	const (
		clients  = 8
		requests = 12 // per client
		batch    = 64 // elements per request
	)
	p, err := c.Prepare(benchmark)
	if err != nil {
		return nil, err
	}

	acfg := p.RumbaAccel.Config()
	kernel := &server.Kernel{
		Name:     p.Spec.Name,
		Spec:     p.Spec,
		NewAccel: func() (exec.Executor, error) { return accel.New(acfg, 0) },
		Checkers: map[string]server.CheckerFactory{
			"tree":   func() predictor.Predictor { return p.Preds.Tree },
			"linear": func() predictor.Predictor { return p.Preds.Linear },
		},
		DefaultChecker: "tree",
	}
	reg := server.NewKernelRegistry()
	if err := reg.Add(kernel); err != nil {
		return nil, err
	}
	metrics := obs.NewRegistry()
	srv, err := server.New(reg, server.Options{
		Addr:            "127.0.0.1:0",
		PipelineWorkers: 2,
		QueueCap:        2,
		MaxInFlight:     4,
		InvocationSize:  batch,
		Metrics:         metrics,
		// The full observability surface, as deployed: a flight recorder
		// tail-sampling 1-in-8 healthy traces (flagged ones always kept) and
		// a drift monitor sized so each tenant closes several windows over
		// its 12 × 64 delivered elements.
		TraceCapacity:    64,
		TraceSampleEvery: 8,
		Drift:            server.DriftConfig{Window: 128},
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()
	var url string
	for deadline := time.Now().Add(5 * time.Second); ; {
		if addr := srv.Addr(); addr != "" {
			url = "http://" + addr
			break
		}
		if time.Now().After(deadline) {
			cancel()
			<-runErr
			return nil, fmt.Errorf("serve: listener never bound")
		}
		time.Sleep(time.Millisecond)
	}

	type clientStats struct {
		ok, degraded, failed int
	}
	stats := make([]clientStats, clients)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				inputs := make([][]float64, 0, batch)
				for i := 0; i < batch; i++ {
					inputs = append(inputs, p.Test.Inputs[(cl*requests*batch+r*batch+i)%len(p.Test.Inputs)])
				}
				req := server.InvokeRequest{
					Tenant: fmt.Sprintf("tenant-%d", cl),
					Kernel: p.Spec.Name,
					Inputs: inputs,
				}
				body, err := json.Marshal(req)
				if err != nil {
					stats[cl].failed++
					continue
				}
				resp, err := http.Post(url+"/v1/invoke", "application/json", bytes.NewReader(body))
				if err != nil {
					stats[cl].failed++
					continue
				}
				var out server.InvokeResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					stats[cl].failed++
					continue
				}
				if out.Degraded {
					stats[cl].degraded++
				} else {
					stats[cl].ok++
				}
			}
		}(cl)
	}
	wg.Wait()

	// Pull the flight-recorder dump over the wire before shutdown — the same
	// way an operator would after an incident.
	var dump trace.Dump
	if resp, err := http.Get(url + "/debug/rumba/traces"); err == nil {
		derr := json.NewDecoder(resp.Body).Decode(&dump)
		resp.Body.Close()
		if derr != nil {
			dump = trace.Dump{}
		}
	}

	cancel()
	if err := <-runErr; err != nil {
		return nil, err
	}
	http.DefaultClient.CloseIdleConnections()

	var ok, degraded, failed int
	for _, s := range stats {
		ok += s.ok
		degraded += s.degraded
		failed += s.failed
	}
	total := ok + degraded
	snap := metrics.Snapshot()
	lat := snap.Histograms[server.MetricLatencyNs]

	t := &Table{
		Title: fmt.Sprintf("rumba-serve load — %s: %d clients × %d requests × %d elements, 2 workers / 4 in-flight",
			benchmark, clients, requests, batch),
		Note:   "latencies are wall-clock and the shed count depends on machine speed; not part of the canonical results",
		Header: []string{"metric", "value"},
	}
	t.AddRow("requests completed", fmt.Sprintf("%d", total))
	t.AddRow("requests failed", fmt.Sprintf("%d", failed))
	admitted := snap.Counters[server.MetricRequests]
	shed := snap.Counters[server.MetricShed]
	t.AddRow("admitted (full pipeline)", fmt.Sprintf("%d", admitted))
	t.AddRow("shed (approximate-only)", fmt.Sprintf("%d", shed))
	if admitted+shed > 0 {
		t.AddRow("shed-request rate", fmt.Sprintf("%.1f%%", 100*float64(shed)/float64(admitted+shed)))
	}
	if total > 0 {
		t.AddRow("degraded-request rate", fmt.Sprintf("%.1f%%", 100*float64(degraded)/float64(total)))
	}
	// Element-level quality outcomes across every admitted pipeline: how many
	// elements fired the checker, how many recovery fixed, and how many were
	// delivered degraded (fired but shipped approximate anyway).
	if out := snap.Counters[core.MetricElementsOut]; out > 0 {
		t.AddRow("elements delivered", fmt.Sprintf("%d", out))
		t.AddRow("checker fire rate", fmt.Sprintf("%.1f%%", 100*float64(snap.Counters[core.MetricFires])/float64(out)))
		t.AddRow("recovered (fixed) rate", fmt.Sprintf("%.1f%%", 100*float64(snap.Counters[core.MetricFixes])/float64(out)))
		t.AddRow("degraded-element rate", fmt.Sprintf("%.1f%%", 100*float64(snap.Counters[core.MetricDegraded])/float64(out)))
	}
	t.AddRow("queue stalls", fmt.Sprintf("%d", snap.Counters[server.MetricQueueStalls]))
	g := snap.Gauges[server.MetricInFlight]
	t.AddRow("in-flight high-water", fmt.Sprintf("%.0f", g.Max))
	if lat.Count > 0 {
		t.AddRow("admitted latency p50", fmt.Sprintf("<= %.2f ms", lat.Quantile(0.5)/1e6))
		t.AddRow("admitted latency p99", fmt.Sprintf("<= %.2f ms", lat.Quantile(0.99)/1e6))
	}
	// Flight-recorder retention: how many traces the run produced, how many
	// the tail-sampler kept, and how many were flagged (shed, degraded, or a
	// drift violation) and so bypassed sampling entirely.
	flaggedTraces := 0
	for _, tr := range dump.Traces {
		if len(tr.Flags) > 0 {
			flaggedTraces++
		}
	}
	t.AddRow("traces recorded", fmt.Sprintf("%d of %d offered (1-in-%d tail sampling, flagged always kept)",
		dump.Recorded, dump.Offered, dump.SampleEvery))
	t.AddRow("traces flagged", fmt.Sprintf("%d", flaggedTraces))
	// Per-tenant tuner position and quality-drift verdict — the monitor's
	// k-of-n state over its closed windows.
	violatingTenants := 0
	for _, ti := range srv.Tenants() {
		t.AddRow("threshold "+ti.Tenant, fmt.Sprintf("%.4g (%d fixed / %d elements)", ti.Threshold, ti.Fixed, ti.Elements))
		if d := ti.Drift; d != nil {
			t.AddRow("drift "+ti.Tenant, fmt.Sprintf("%s (%d/%d windows breached, est %.4g vs target %.4g)",
				d.State, d.Violations, d.Windows, d.LastEstimate, d.Target))
			if d.State == "violating" {
				violatingTenants++
			}
		}
	}
	t.AddRow("tenants violating TOQ", fmt.Sprintf("%d", violatingTenants))
	return t, nil
}
