// Package cluster turns single-daemon rumba-serve into a tenant-sharded
// multi-node service. Rumba's online state — the per-tenant tuner trajectory
// and drift-monitor history — is inherently per-tenant (the paper's quality
// controller adapts a per-application firing threshold online), which makes
// tenant sharding the natural cluster model: each tenant's requests must hit
// the one node that owns its trajectory, and when ownership moves, the
// trajectory must move with it.
//
// The package has four parts:
//
//   - Ring (this file): a consistent-hash ring with virtual nodes giving
//     every tenant a deterministic owner and a deterministic failover order,
//     stable under membership change (adding one node to N moves ~1/(N+1)
//     of the tenants, never reshuffles the rest).
//   - Membership (membership.go): the static member set with periodic HTTP
//     health probing of each node's /readyz and an up/suspect/down state
//     machine per node.
//   - Router (router.go): the fronting HTTP daemon that forwards /v1/invoke
//     and /v1/tenants/* by tenant to the owning node, failing over along
//     the ring's replica order within a retry budget, propagating request
//     deadlines, and exporting per-node labelled metrics and trace spans
//     for every forward hop.
//   - Handoff (handoff.go): the drain→snapshot→restore driver that moves
//     tenant state between nodes on planned rebalance, over the server's
//     /v1/tenants/{id}/state export/import endpoints.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per member. 128 vnodes keep the
// per-member load spread within a few percent of uniform for small static
// clusters while the ring stays a few KiB.
const DefaultVNodes = 128

// point is one virtual node on the ring.
type point struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring over member names. Placement
// depends only on the member set and the vnode count — two routers built
// over the same membership agree on every tenant's owner without talking to
// each other, and a restarted router recovers the exact placement from
// configuration alone.
type Ring struct {
	vnodes  int
	members []string
	points  []point
}

// NewRing builds a ring over the member names. vnodes <= 0 uses
// DefaultVNodes. Duplicate or empty member names are rejected: a duplicate
// would silently double that member's share.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	r := &Ring{
		vnodes:  vnodes,
		members: sorted,
		points:  make([]point, 0, len(members)*vnodes),
	}
	for _, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if seen[m] {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
		seen[m] = true
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: hashString(fmt.Sprintf("%s#%d", m, i)), member: m})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare with 64-bit FNV) break by name so the
		// ring stays deterministic regardless of input order.
		return r.points[a].member < r.points[b].member
	})
	return r, nil
}

// Members returns the member names, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// VNodes returns the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the member owning key: the first virtual node clockwise from
// the key's hash.
func (r *Ring) Owner(key string) string {
	return r.points[r.search(key)].member
}

// Replicas returns up to n distinct members in the key's ring order: the
// owner first, then each subsequent distinct member clockwise. This is the
// failover order — every router derives the same sequence, so a failed-over
// tenant lands on the same replica no matter which router forwarded it.
// n <= 0 or n > len(members) returns all members.
func (r *Ring) Replicas(key string, n int) []string {
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(key); i < len(r.points) && len(out) < n; i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// search returns the index of the first point at or clockwise of key's hash.
func (r *Ring) search(key string) int {
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// hashString is 64-bit FNV-1a with a finalizer. FNV is fast, allocation-
// free, and stable across processes and architectures (unlike hash/maphash,
// which is seeded per process — a seeded hash would give every router its
// own placement), but on short near-identical strings ("n1#17", "n1#18") its
// raw output is too correlated to spread ring points uniformly, so the
// 64-bit avalanche mix below (the murmur3 fmix64 constants) decorrelates it.
func hashString(s string) uint64 {
	h := fnv.New64a()
	// fnv's Write never errors.
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a full-avalanche 64-bit finalizer: every input bit affects every
// output bit with ~50% probability.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
