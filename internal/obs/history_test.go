package obs

import (
	"math"
	"testing"
	"time"
)

func histAt(t0 time.Time, secs int) time.Time { return t0.Add(time.Duration(secs) * time.Second) }

func TestHistoryRingEviction(t *testing.T) {
	h := NewHistory(3)
	if h.Capacity() != 3 || h.Len() != 0 {
		t.Fatalf("fresh ring cap=%d len=%d", h.Capacity(), h.Len())
	}
	t0 := time.Unix(1_700_000_000, 0)
	for i := 0; i < 5; i++ {
		h.Record(histAt(t0, i), Snapshot{Counters: map[string]int64{"n": int64(i)}})
	}
	got := h.Samples()
	if len(got) != 3 || h.Len() != 3 {
		t.Fatalf("retained %d samples, want 3", len(got))
	}
	for i, s := range got {
		if want := int64(i + 2); s.Snap.Counters["n"] != want {
			t.Fatalf("sample %d holds n=%d, want %d (oldest-first after eviction)", i, s.Snap.Counters["n"], want)
		}
	}
	if d := h.Dump(); d.Capacity != 3 || len(d.Samples) != 3 {
		t.Fatalf("dump = %+v", d)
	}
	if NewHistory(0).Capacity() != DefaultHistoryCapacity {
		t.Fatal("zero capacity did not default")
	}
}

func TestHistoryRate(t *testing.T) {
	h := NewHistory(16)
	t0 := time.Unix(1_700_000_000, 0)
	if _, ok := h.Rate("req", 0); ok {
		t.Fatal("empty history produced a rate")
	}
	h.Record(histAt(t0, 0), Snapshot{Counters: map[string]int64{"req": 0}})
	if _, ok := h.Rate("req", 0); ok {
		t.Fatal("single sample produced a rate")
	}
	h.Record(histAt(t0, 10), Snapshot{Counters: map[string]int64{"req": 50}})
	h.Record(histAt(t0, 20), Snapshot{Counters: map[string]int64{"req": 250}})

	// Whole-ring rate: 250 events over 20s.
	if r, ok := h.Rate("req", 0); !ok || math.Abs(r-12.5) > 1e-9 {
		t.Fatalf("full-span rate = %v ok=%v, want 12.5", r, ok)
	}
	// Windowed rate: the last 10s saw 200 events.
	if r, ok := h.Rate("req", 10*time.Second); !ok || math.Abs(r-20) > 1e-9 {
		t.Fatalf("10s rate = %v ok=%v, want 20", r, ok)
	}
	// Unknown counter rates at zero rather than erroring.
	if r, ok := h.Rate("nope", 0); !ok || r != 0 {
		t.Fatalf("unknown counter rate = %v ok=%v", r, ok)
	}
}

func TestHistoryQuantileWindowsDelta(t *testing.T) {
	reg := NewRegistry()
	lat := reg.Histogram("lat")
	h := NewHistory(8)
	t0 := time.Unix(1_700_000_000, 0)

	for i := 0; i < 100; i++ {
		lat.Observe(3) // (2,4]
	}
	h.Record(histAt(t0, 0), reg.Snapshot())
	for i := 0; i < 100; i++ {
		lat.Observe(1000) // (512,1024]
	}
	h.Record(histAt(t0, 15), reg.Snapshot())

	// The window covers only the second batch: the old fast observations must
	// not drag the quantile down, because the delta strips them.
	q, ok := h.Quantile("lat", 0.5, time.Minute)
	if !ok || q <= 512 || q > 1024 {
		t.Fatalf("windowed median = %v ok=%v, want inside (512,1024]", q, ok)
	}

	// A window with no new observations reports !ok instead of a stale 0.
	h.Record(histAt(t0, 30), reg.Snapshot())
	if _, ok := h.Quantile("lat", 0.5, 10*time.Second); ok {
		t.Fatal("idle window produced a quantile")
	}
	if _, ok := h.Quantile("missing", 0.5, time.Minute); ok {
		t.Fatal("unknown histogram produced a quantile")
	}
}
