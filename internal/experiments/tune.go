package experiments

import (
	"fmt"
	"time"

	"rumba/internal/bundle"
	"rumba/internal/pkg"
	"rumba/internal/tune"
	"rumba/internal/tune/measure"
)

// ExpTune runs the rumba-tune autotuner over the trained benchmark kernels:
// per kernel it sweeps datapath × batch × table resolution × checker with
// the surrogate-pruned pass (internal/tune), reports how much of the grid
// the prune saved and where the frontier landed, and writes BENCH_tune.json
// as the per-machine autotuning baseline. The headline compares the best
// exp-datapath and fixed-datapath survivors at batch >= 64 — the regime
// where the Q16.16 integer path should win on ns/element.
//
// Like "stream", "serve" and "hotpath" this experiment reports wall-clock
// numbers, so it is excluded from `-exp all` and its JSON is a per-machine
// baseline, not part of the canonical results.
func ExpTune(c *Context, benchmark string) (*Table, error) {
	names := []string{benchmark}
	if benchmark == "" {
		names = allBenchNames()
	}

	type kernelRow struct {
		Kernel        string  `json:"kernel"`
		GridSize      int     `json:"grid_size"`
		Evaluated     int     `json:"evaluated"`
		Pruned        int     `json:"pruned"`
		PredictedOnly int     `json:"predicted_only"`
		FrontierSize  int     `json:"frontier_size"`
		CheapestKey   string  `json:"cheapest_key"`
		CheapestNs    float64 `json:"cheapest_ns_per_elem"`
		ExpNs64       float64 `json:"exp_ns_per_elem_batch64"`
		FixedNs64     float64 `json:"fixed_ns_per_elem_batch64"`
		FixedWins     bool    `json:"fixed_wins_batch64"`
	}
	var rows []kernelRow
	var reports []*tune.SweepReport

	for _, name := range names {
		p, err := c.Prepare(name)
		if err != nil {
			return nil, err
		}
		b, err := bundle.New(p.Spec, p.RumbaAccel.Config(), p.Preds)
		if err != nil {
			return nil, err
		}
		corpus := pkg.GenerateCorpus(p.Spec, 96)
		m, err := measure.NewBundleMeasurer(b, corpus, 0.10, measure.Config{
			BenchTime: 2 * time.Millisecond,
			MaxCorpus: 48,
		})
		if err != nil {
			return nil, err
		}
		checkers := m.CheckerNames()
		if len(checkers) == 0 {
			checkers = []string{"none"}
		}
		axes := tune.DefaultAxes(checkers)
		// Reduced grid: the full batch curve but fewer table resolutions,
		// keeping the sweep minutes-not-hours while still exercising the
		// surrogate prune on a 3-D space.
		axes.Batches = []int{1, 8, 64, 256}
		axes.LUTBits = []int{8, 10, 12}
		rep, err := tune.Sweep(name, axes, m, tune.SweepConfig{})
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)

		row := kernelRow{
			Kernel:        name,
			GridSize:      rep.GridSize,
			Evaluated:     rep.Evaluated,
			Pruned:        rep.Pruned,
			PredictedOnly: rep.PredictedOnly,
			FrontierSize:  len(rep.Frontier),
		}
		if len(rep.Frontier) > 0 {
			row.CheapestKey = rep.Frontier[0].Key()
			row.CheapestNs = rep.Frontier[0].NsPerElem
		}
		row.ExpNs64 = bestNsAt(rep.Points, tune.DatapathExp, 64)
		row.FixedNs64 = bestNsAt(rep.Points, tune.DatapathFixed, 64)
		// Exp absent at batch >= 64 means the prune already found it
		// dominated there — the fixed path (or lut) beat it by the margin.
		row.FixedWins = row.FixedNs64 > 0 && (row.ExpNs64 == 0 || row.FixedNs64 < row.ExpNs64)
		rows = append(rows, row)
	}

	f, err := tune.NewFrontier(reports)
	if err != nil {
		return nil, err
	}
	out := struct {
		Stamp    BenchStamp  `json:"stamp"`
		Checksum string      `json:"frontier_checksum"`
		Kernels  []kernelRow `json:"kernels"`
	}{Stamp: newBenchStamp(), Checksum: f.Checksum, Kernels: rows}
	if err := writeBenchJSON("BENCH_tune.json", out); err != nil {
		return nil, err
	}

	wins := 0
	for _, r := range rows {
		if r.FixedWins {
			wins++
		}
	}
	t := &Table{
		Title: fmt.Sprintf("Autotuner sweep — fixed-point beats exp on ns/elem at batch >= 64 on %d/%d kernels",
			wins, len(rows)),
		Note:   "wall-clock, machine-dependent; baseline written to BENCH_tune.json (not part of the canonical results)",
		Header: []string{"kernel", "grid", "evaluated", "pruned", "frontier", "cheapest point", "exp ns/elem b>=64", "fixed ns/elem b>=64"},
	}
	for _, r := range rows {
		t.AddRow(r.Kernel, fmt.Sprintf("%d", r.GridSize), fmt.Sprintf("%d", r.Evaluated),
			fmt.Sprintf("%d", r.Pruned), fmt.Sprintf("%d", r.FrontierSize), r.CheapestKey,
			nsOrPruned(r.ExpNs64), nsOrPruned(r.FixedNs64))
	}
	return t, nil
}

// bestNsAt returns the cheapest surviving ns/elem for a datapath at or above
// minBatch; 0 when the prune left no such point.
func bestNsAt(points []tune.Point, datapath string, minBatch int) float64 {
	best := 0.0
	for _, p := range points {
		if p.Datapath != datapath || p.Batch < minBatch {
			continue
		}
		if best == 0 || p.NsPerElem < best {
			best = p.NsPerElem
		}
	}
	return best
}

func nsOrPruned(ns float64) string {
	if ns == 0 {
		return "pruned"
	}
	return fmt.Sprintf("%.1f", ns)
}

// allBenchNames is the tune sweep's kernel list (the seven paper benchmarks).
func allBenchNames() []string {
	return []string{"blackscholes", "fft", "inversek2j", "jmeint", "jpeg", "kmeans", "sobel"}
}
