package core

import (
	"context"
	"errors"
	"math"
	"testing"
)

func feedInputs(inputs [][]float64) <-chan []float64 {
	ch := make(chan []float64)
	go func() {
		defer close(ch)
		for _, in := range inputs {
			ch <- in
		}
	}()
	return ch
}

// mustProcess starts the stream with a background context, failing the test
// on a startup error.
func mustProcess(t *testing.T, st *Stream, inputs <-chan []float64) <-chan StreamResult {
	t.Helper()
	out, err := st.Process(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// reconcileStats asserts the stream's obs counters agree exactly with the
// evaluated stream statistics: elements in == out == Elements, fixes ==
// Fixed, degradations == Degraded, and every fire was resolved one way or
// the other.
func reconcileStats(t *testing.T, st *Stream, stats StreamStats) {
	t.Helper()
	snap := st.Metrics().Snapshot()
	if n := snap.Counters[MetricElementsIn]; n != int64(stats.Elements) {
		t.Fatalf("%s = %d, want %d", MetricElementsIn, n, stats.Elements)
	}
	if n := snap.Counters[MetricElementsOut]; n != int64(stats.Elements) {
		t.Fatalf("%s = %d, want %d", MetricElementsOut, n, stats.Elements)
	}
	if n := snap.Counters[MetricFixes]; n != int64(stats.Fixed) {
		t.Fatalf("%s = %d, want %d", MetricFixes, n, stats.Fixed)
	}
	if n := snap.Counters[MetricDegraded]; n != int64(stats.Degraded) {
		t.Fatalf("%s = %d, want %d", MetricDegraded, n, stats.Degraded)
	}
	if fires := snap.Counters[MetricFires]; fires != int64(stats.Fixed+stats.Degraded) {
		t.Fatalf("%s = %d, want fixes+degraded = %d", MetricFires, fires, stats.Fixed+stats.Degraded)
	}
}

func TestStreamDeliversEverythingInOrder(t *testing.T) {
	spec, acc, ps, test := buildRuntime(t, "fft", 500)
	tuner, _ := NewTuner(ModeTOQ, 0.10)
	st, err := NewStream(Config{Spec: spec, Accel: acc, Checker: ps.Tree, Tuner: tuner}, 2)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := EvaluateStream(mustProcess(t, st, feedInputs(test.Inputs)), test.Targets, spec.Metric, spec.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Elements != test.Len() {
		t.Fatalf("delivered %d of %d elements", stats.Elements, test.Len())
	}
	reconcileStats(t, st, stats)
}

func TestStreamFixedElementsAreExact(t *testing.T) {
	spec, acc, ps, test := buildRuntime(t, "inversek2j", 600)
	tuner, _ := NewTuner(ModeTOQ, 0.10)
	st, err := NewStream(Config{Spec: spec, Accel: acc, Checker: ps.Tree, Tuner: tuner}, 3)
	if err != nil {
		t.Fatal(err)
	}
	fixed := 0
	for r := range mustProcess(t, st, feedInputs(test.Inputs)) {
		if r.Fixed {
			fixed++
			exact := spec.Exact(test.Inputs[r.Index])
			for j := range exact {
				if math.Abs(exact[j]-r.Output[j]) > 1e-12 {
					t.Fatalf("fixed element %d not exact: %v vs %v", r.Index, r.Output, exact)
				}
			}
		}
	}
	if fixed == 0 {
		t.Fatal("expected the checker to fire at least once")
	}
}

func TestStreamUncheckedNeverFixes(t *testing.T) {
	spec, acc, _, test := buildRuntime(t, "fft", 300)
	st, err := NewStream(Config{Spec: spec, Accel: acc}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := range mustProcess(t, st, feedInputs(test.Inputs)) {
		if r.Fixed || r.PredictedError != 0 {
			t.Fatal("unchecked stream must not fix or predict")
		}
	}
}

func TestStreamMatchesBatchQuality(t *testing.T) {
	// Streaming and batch runs use the same detection rule, so the set of
	// fixed elements — and therefore the output error — must agree when
	// the tuner threshold is pinned (TOQ mode).
	spec, acc, ps, test := buildRuntime(t, "inversek2j", 800)
	tuner1, _ := NewTuner(ModeTOQ, 0.10)
	sys, err := NewSystem(Config{Spec: spec, Accel: acc, Checker: ps.Linear, Tuner: tuner1})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := sys.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	tuner2, _ := NewTuner(ModeTOQ, 0.10)
	st, err := NewStream(Config{Spec: spec, Accel: acc, Checker: ps.Linear, Tuner: tuner2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := EvaluateStream(mustProcess(t, st, feedInputs(test.Inputs)), test.Targets, spec.Metric, spec.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fixed != batch.Fixed {
		t.Fatalf("stream fixed %d, batch fixed %d", stats.Fixed, batch.Fixed)
	}
	if math.Abs(stats.OutputError-batch.OutputError) > 1e-9 {
		t.Fatalf("stream error %v, batch error %v", stats.OutputError, batch.OutputError)
	}
	reconcileStats(t, st, stats)
}

func TestStreamBackPressureSmallQueue(t *testing.T) {
	// A 1-slot recovery queue with an always-firing checker: the pipeline
	// must still deliver every element exactly once, in order.
	spec, acc, _, test := buildRuntime(t, "fft", 200)
	tuner, _ := NewTuner(ModeTOQ, 0)
	st, err := NewStream(Config{
		Spec: spec, Accel: acc, Checker: &constantChecker{value: 1},
		Tuner: tuner, RecoveryQueueCap: 1,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := EvaluateStream(mustProcess(t, st, feedInputs(test.Inputs)), test.Targets, spec.Metric, spec.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Elements != test.Len() || stats.Fixed != test.Len() {
		t.Fatalf("delivered %d, fixed %d, want both %d", stats.Elements, stats.Fixed, test.Len())
	}
	if stats.OutputError != 0 {
		t.Fatalf("all-fixed stream must be exact, error %v", stats.OutputError)
	}
	reconcileStats(t, st, stats)
}

func TestStreamEnergyModeTunesOnline(t *testing.T) {
	spec, acc, ps, test := buildRuntime(t, "inversek2j", 2000)
	budget := 0.15
	tuner, _ := NewTuner(ModeEnergy, budget)
	st, err := NewStream(Config{
		Spec: spec, Accel: acc, Checker: ps.Tree, Tuner: tuner, InvocationSize: 200,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := EvaluateStream(mustProcess(t, st, feedInputs(test.Inputs)), test.Targets, spec.Metric, spec.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(stats.Fixed) / float64(stats.Elements); frac > 2*budget {
		t.Fatalf("energy mode fixed %.1f%% against a %.0f%% budget", 100*frac, 100*budget)
	}
	reconcileStats(t, st, stats)
}

// The doc comment always promised "Process may be called once per Stream";
// this pins the promise as a checked error instead of silent state
// corruption (the second caller would otherwise share the tuner and the
// detection indices of the first).
func TestStreamProcessTwiceReturnsError(t *testing.T) {
	spec, acc, _, test := buildRuntime(t, "fft", 100)
	st, err := NewStream(Config{Spec: spec, Accel: acc}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := mustProcess(t, st, feedInputs(test.Inputs))
	if _, err := st.Process(context.Background(), feedInputs(test.Inputs)); !errors.Is(err, ErrStreamReused) {
		t.Fatalf("second Process returned %v, want ErrStreamReused", err)
	}
	n := 0
	for range out {
		n++
	}
	if n != test.Len() {
		t.Fatalf("first run delivered %d of %d after rejected reuse", n, test.Len())
	}
}

func TestConfigValidatesHardeningKnobs(t *testing.T) {
	spec, acc, _, _ := buildRuntime(t, "fft", 100)
	if _, err := NewSystem(Config{Spec: spec, Accel: acc, RecoveryDeadline: -1}); err == nil {
		t.Fatal("negative recovery deadline must fail validation")
	}
	if _, err := NewSystem(Config{Spec: spec, Accel: acc, MaxInFlight: -1}); err == nil {
		t.Fatal("negative in-flight window must fail validation")
	}
	sys, err := NewSystem(Config{Spec: spec, Accel: acc, RecoveryQueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sys.cfg.MaxInFlight != 32 {
		t.Fatalf("default MaxInFlight = %d, want 4x queue cap = 32", sys.cfg.MaxInFlight)
	}
	if sys.Metrics() == nil {
		t.Fatal("a private metrics registry must be allocated")
	}
}

func TestEvaluateStreamRejectsShortTargets(t *testing.T) {
	results := make(chan StreamResult, 1)
	results <- StreamResult{Index: 0, Output: []float64{1}}
	close(results)
	if _, err := EvaluateStream(results, nil, 0, 0); err == nil {
		t.Fatal("expected index-beyond-targets error")
	}
}
