package nn

import (
	"math"
	"testing"
	"testing/quick"

	"rumba/internal/rng"
)

func TestFixedFormatValidate(t *testing.T) {
	if err := DefaultFixedFormat.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []FixedFormat{{0, 10}, {10, 0}, {40, 40}} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("format %+v should be invalid", bad)
		}
	}
}

func TestQuantizeRounding(t *testing.T) {
	f := FixedFormat{IntBits: 4, FracBits: 2} // resolution 0.25
	cases := map[float64]float64{
		0.0: 0, 0.1: 0, 0.13: 0.25, 0.25: 0.25, -0.3: -0.25, 1.0: 1.0,
	}
	for in, want := range cases {
		if got := f.Quantize(in); got != want {
			t.Fatalf("Quantize(%v) = %v, want %v", in, got, want)
		}
	}
	if f.Resolution() != 0.25 {
		t.Fatalf("resolution = %v", f.Resolution())
	}
}

func TestQuantizeSaturates(t *testing.T) {
	f := FixedFormat{IntBits: 3, FracBits: 4} // max just under 8
	if got := f.Quantize(100); got >= 8 {
		t.Fatalf("positive saturation failed: %v", got)
	}
	if got := f.Quantize(-100); got <= -8 {
		t.Fatalf("negative saturation failed: %v", got)
	}
	if f.Quantize(100) != -f.Quantize(-100) {
		t.Fatal("saturation must be symmetric")
	}
}

// Property: quantisation error is bounded by half the resolution inside the
// representable range, and quantisation is idempotent.
func TestQuantizeBoundsProperty(t *testing.T) {
	f := DefaultFixedFormat
	g := func(raw int32) bool {
		v := float64(raw) / float64(1<<26) // within ±32
		q := f.Quantize(v)
		if math.Abs(q-v) > f.Resolution()/2+1e-15 {
			return false
		}
		return f.Quantize(q) == q
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeNetworkCloseToFloat(t *testing.T) {
	r := rng.New(5)
	net := New(MustTopology("4->8->2"), Sigmoid, Sigmoid, rng.New(9))
	q, err := Quantize(net, DefaultFixedFormat)
	if err != nil {
		t.Fatal(err)
	}
	var inputs [][]float64
	for i := 0; i < 200; i++ {
		inputs = append(inputs, []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()})
	}
	qe := q.QuantizationError(inputs)
	if qe == 0 {
		t.Fatal("fixed-point execution should differ slightly from float")
	}
	if qe > 0.02 {
		t.Fatalf("Q6.10 quantisation error %v too large for sigmoid outputs", qe)
	}
}

func TestQuantizeDoesNotMutateOriginal(t *testing.T) {
	net := New(MustTopology("2->3->1"), Sigmoid, Linear, rng.New(2))
	in := []float64{0.3, 0.7}
	before := net.Forward(in)[0]
	if _, err := Quantize(net, DefaultFixedFormat); err != nil {
		t.Fatal(err)
	}
	if after := net.Forward(in)[0]; after != before {
		t.Fatal("Quantize must not modify the source network")
	}
}

func TestCoarseFormatHurtsMore(t *testing.T) {
	r := rng.New(6)
	net := New(MustTopology("3->6->1"), Sigmoid, Sigmoid, rng.New(7))
	var inputs [][]float64
	for i := 0; i < 300; i++ {
		inputs = append(inputs, []float64{r.Float64(), r.Float64(), r.Float64()})
	}
	fine, _ := Quantize(net, FixedFormat{IntBits: 6, FracBits: 12})
	coarse, _ := Quantize(net, FixedFormat{IntBits: 6, FracBits: 4})
	if fine.QuantizationError(inputs) >= coarse.QuantizationError(inputs) {
		t.Fatal("fewer fraction bits must mean more quantisation error")
	}
}

func TestFixedForwardDeterministic(t *testing.T) {
	net := New(MustTopology("2->4->2"), Sigmoid, Sigmoid, rng.New(3))
	q, _ := Quantize(net, DefaultFixedFormat)
	in := []float64{0.25, 0.5}
	a, b := q.Forward(in), q.Forward(in)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fixed forward must be deterministic")
		}
	}
	if q.Topo().String() != "2->4->2" {
		t.Fatal("Topo passthrough")
	}
}

func TestQuantizeRejectsBadFormat(t *testing.T) {
	net := New(MustTopology("2->2->1"), Sigmoid, Linear, rng.New(1))
	if _, err := Quantize(net, FixedFormat{}); err == nil {
		t.Fatal("expected format validation error")
	}
}
