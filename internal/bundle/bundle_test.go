package bundle

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/trainer"
)

func trainFFT(t *testing.T) (*bench.Spec, accel.Config, trainer.PredictorSet) {
	t.Helper()
	spec, err := bench.Get("fft")
	if err != nil {
		t.Fatal(err)
	}
	train := spec.GenTrain(400)
	cfg := trainer.DefaultAccelTrainConfig("fft")
	cfg.NN.Epochs = 10
	acfg, err := trainer.TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := accel.New(acfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := trainer.TrainPredictors(spec, train, trainer.Observe(spec, acc, train))
	if err != nil {
		t.Fatal(err)
	}
	return spec, acfg, preds
}

func TestBundleRoundTrip(t *testing.T) {
	spec, acfg, preds := trainFFT(t)
	b, err := New(spec, acfg, preds)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fft.json")
	if err := Save(path, b); err != nil {
		t.Fatal(err)
	}
	back, backSpec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if backSpec.Name != "fft" {
		t.Fatalf("benchmark = %s", backSpec.Name)
	}

	// The reloaded accelerator must reproduce the original bit-for-bit.
	accOrig, _ := accel.New(acfg, 0)
	accBack, err := back.Accelerator()
	if err != nil {
		t.Fatal(err)
	}
	test := spec.GenTest(50)
	for _, in := range test.Inputs {
		a, bOut := accOrig.Invoke(in), accBack.Invoke(in)
		for j := range a {
			if a[j] != bOut[j] {
				t.Fatalf("reloaded accelerator differs: %v vs %v", a, bOut)
			}
		}
	}

	// The reloaded checkers must predict identically.
	ps := back.Predictors()
	if ps.Linear == nil || ps.Tree == nil || ps.EMA == nil {
		t.Fatal("missing reloaded predictors")
	}
	for _, in := range test.Inputs[:20] {
		out := accOrig.Invoke(in)
		if got, want := ps.Linear.PredictError(in, out), preds.Linear.PredictError(in, out); math.Abs(got-want) > 1e-15 {
			t.Fatalf("linear differs: %v vs %v", got, want)
		}
		if got, want := ps.Tree.PredictError(in, out), preds.Tree.PredictError(in, out); got != want {
			t.Fatalf("tree differs: %v vs %v", got, want)
		}
	}
	if ps.EMA.N != preds.EMA.N || ps.EMA.Scale != preds.EMA.Scale {
		t.Fatal("EMA parameters differ")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, accel.Config{}, trainer.PredictorSet{}); err == nil {
		t.Fatal("nil spec must fail")
	}
}

func TestValidateRejectsVersionAndBenchmark(t *testing.T) {
	spec, acfg, preds := trainFFT(t)
	b, _ := New(spec, acfg, preds)
	b.Version = 99
	if _, err := b.Validate(); err == nil {
		t.Fatal("wrong version must fail")
	}
	b.Version = FormatVersion
	b.Benchmark = "nope"
	if _, err := b.Validate(); err == nil {
		t.Fatal("unknown benchmark must fail")
	}
	b.Benchmark = "sobel" // fft topology cannot serve sobel (1 output vs 1... both 1?)
	// fft has 2 outputs, sobel wants 1: dimension check fires.
	if _, err := b.Validate(); err == nil {
		t.Fatal("output-dimension mismatch must fail")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, _, err := Load("/no/such/file.json"); err == nil {
		t.Fatal("missing file must fail")
	}
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := Save(path, &Bundle{Version: FormatVersion, Benchmark: "fft"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(path); err == nil {
		t.Fatal("bundle without accelerator must fail validation")
	}
}

// TestLoadRejectsCorruptedAndTruncatedFiles covers the file-level error
// paths: syntactically broken JSON and a valid artifact cut off mid-stream.
func TestLoadRejectsCorruptedAndTruncatedFiles(t *testing.T) {
	spec, acfg, preds := trainFFT(t)
	b, err := New(spec, acfg, preds)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := Save(good, b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, append([]byte("{not json"), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(corrupt); err == nil {
		t.Fatal("corrupted JSON must fail")
	}

	trunc := filepath.Join(dir, "truncated.json")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(trunc); err == nil {
		t.Fatal("truncated file must fail")
	}
}

// TestNilPredictorRoundTrip: a bundle carrying only the accelerator (no
// checkers at all) must survive the disk round trip and reconstruct an empty
// predictor set without panicking — the unchecked-NPU artifact is legal.
func TestNilPredictorRoundTrip(t *testing.T) {
	spec, acfg, _ := trainFFT(t)
	b, err := New(spec, acfg, trainer.PredictorSet{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "unchecked.json")
	if err := Save(path, b); err != nil {
		t.Fatal(err)
	}
	back, backSpec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if backSpec.Name != spec.Name {
		t.Fatalf("benchmark = %s", backSpec.Name)
	}
	ps := back.Predictors()
	if ps.Linear != nil || ps.Tree != nil || ps.EMA != nil {
		t.Fatalf("predictor set should be empty, got %+v", ps)
	}
	acc, err := back.Accelerator()
	if err != nil {
		t.Fatal(err)
	}
	if out := acc.Invoke(spec.GenTest(5).Inputs[0]); len(out) != spec.OutDim {
		t.Fatalf("accelerator output width %d, want %d", len(out), spec.OutDim)
	}
}

// TestValidateRejectsShapeCorruption: every index the runtime will later
// trust must be bounds-checked at Validate, not discovered as a panic on the
// first Invoke. Each case corrupts one shape aspect of an otherwise valid
// bundle.
func TestValidateRejectsShapeCorruption(t *testing.T) {
	spec, acfg, preds := trainFFT(t)
	cases := []struct {
		name    string
		corrupt func(b *Bundle)
	}{
		{"feature index out of kernel range", func(b *Bundle) {
			b.Accel.Features = make([]int, b.Accel.Net.Topo.Inputs())
			for i := range b.Accel.Features {
				b.Accel.Features[i] = spec.InDim + 7 // stageInput would panic on in[idx]
			}
		}},
		{"feature count vs net inputs", func(b *Bundle) {
			b.Accel.Features = make([]int, b.Accel.Net.Topo.Inputs()+1)
		}},
		{"scaler input range truncated", func(b *Bundle) {
			b.Accel.Scaler.InMin = nil // ScaleInTo would panic
		}},
		{"scaler output range truncated", func(b *Bundle) {
			b.Accel.Scaler.OutMax = nil // UnscaleOutTo would panic
		}},
		{"linear weight width mismatch", func(b *Bundle) {
			b.Linear.Weights = append(b.Linear.Weights, 0.5)
		}},
		{"tree child index out of range", func(b *Bundle) {
			for i := range b.Tree.Nodes {
				if b.Tree.Nodes[i].Feature >= 0 {
					b.Tree.Nodes[i].Left = int32(len(b.Tree.Nodes) + 5)
					return
				}
			}
			t.Fatal("trained tree has no decision node")
		}},
		{"negative EMA history", func(b *Bundle) {
			b.EMAHistory = -3
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := New(spec, acfg, preds)
			if err != nil {
				t.Fatal(err)
			}
			// Deep-copy the pieces the case mutates so cases stay independent.
			data, err := json.Marshal(b)
			if err != nil {
				t.Fatal(err)
			}
			var fresh Bundle
			if err := json.Unmarshal(data, &fresh); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(&fresh)
			if _, err := fresh.Validate(); err == nil {
				t.Fatalf("%s: Validate accepted a corrupt bundle", tc.name)
			}
		})
	}
}
