package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanSnapshot is the dump form of one span.
type SpanSnapshot struct {
	ID     int            `json:"id"`
	Parent int            `json:"parent,omitempty"`
	Name   string         `json:"name"`
	Start  int64          `json:"startNs"`
	End    int64          `json:"endNs"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Snapshot is the dump form of one trace. Encoding it with encoding/json is
// deterministic (attr maps sort their keys), which the flight-recorder
// golden test relies on.
type Snapshot struct {
	ID string `json:"id"`
	// TraceID is the 32-hex cluster-wide identity; RemoteParent the 16-hex
	// upstream span adopted from the wire ("" for edge-minted traces). The
	// cluster stitcher hangs this snapshot's root span under the hop whose
	// wire span ID equals RemoteParent.
	TraceID      string         `json:"traceID"`
	RemoteParent string         `json:"remoteParent,omitempty"`
	Begin        time.Time      `json:"begin"`
	DurationNs   int64          `json:"durationNs"`
	Flags        []string       `json:"flags,omitempty"`
	DroppedSpans int            `json:"droppedSpans,omitempty"`
	Spans        []SpanSnapshot `json:"spans"`
}

// Snapshot freezes the trace for export. It takes the trace lock, so it is
// safe to call while a straggling pipeline goroutine still ends spans.
func (t *Trace) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Snapshot{
		ID:           fmt.Sprintf("%016x", t.id),
		TraceID:      t.traceID,
		RemoteParent: t.remoteParent,
		Begin:        t.begin,
		DurationNs:   t.spans[0].End,
		Flags:        t.flags.Names(),
		DroppedSpans: t.dropped,
		Spans:        make([]SpanSnapshot, len(t.spans)),
	}
	for i, sp := range t.spans {
		out := SpanSnapshot{ID: sp.ID, Parent: sp.Parent, Name: sp.Name, Start: sp.Start, End: sp.End}
		if len(sp.Attrs) > 0 {
			out.Attrs = make(map[string]any, len(sp.Attrs))
			for _, a := range sp.Attrs {
				switch a.kind {
				case attrStr:
					out.Attrs[a.Key] = a.str
				case attrInt:
					out.Attrs[a.Key] = a.i
				case attrFloat:
					out.Attrs[a.Key] = a.num
				}
			}
		}
		s.Spans[i] = out
	}
	return s
}

// ring is a fixed-size lock-free trace buffer: writers claim slots with one
// atomic add and publish with one atomic pointer store, so Record never
// blocks a request goroutine on a dump in progress.
type ring struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

func newRing(n int) ring { return ring{slots: make([]atomic.Pointer[Trace], n)} }

// add claims the next slot and returns the trace it displaced (nil while the
// ring is still filling). Swap keeps the displaced pointer exact under
// concurrent adds, which is what lets the recorder's trace-ID index evict
// precisely instead of leaking entries.
func (r *ring) add(t *Trace) (displaced *Trace) {
	i := r.next.Add(1) - 1
	return r.slots[i%uint64(len(r.slots))].Swap(t)
}

func (r *ring) collect(dst []*Trace) []*Trace {
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil {
			dst = append(dst, t)
		}
	}
	return dst
}

// RecorderConfig configures a flight recorder.
type RecorderConfig struct {
	// Capacity is the ring size; the recorder retains up to Capacity recent
	// sampled traces plus, separately, up to Capacity recent flagged traces
	// (degraded / shed / violating / error). <= 0 uses 64.
	Capacity int
	// SampleEvery is the tail-sampling rate for unflagged traces: 1 in
	// SampleEvery completed healthy traces enters the ring. <= 1 keeps all.
	// Flagged traces are always recorded, whatever the rate.
	SampleEvery int
}

// Recorder is the flight recorder: the last N completed traces, with tail
// sampling that always keeps the traces worth debugging. It is safe for
// concurrent Record and Dump.
type Recorder struct {
	cfg     RecorderConfig
	offered atomic.Uint64 // every completed trace presented to Record
	sampled atomic.Uint64 // healthy-trace lottery counter
	taken   atomic.Uint64 // traces recorded (both rings)
	recent  ring
	flagged ring

	// byTraceID indexes every retained trace by its 32-hex trace ID so the
	// /debug/rumba/traces/{traceID} lookup is a map hit, not a scan of both
	// rings. Entries are evicted exactly when the ring displaces their trace,
	// so the index never outgrows 2×Capacity.
	idxMu     sync.Mutex
	byTraceID map[string][]*Trace
}

// NewRecorder builds a flight recorder.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	return &Recorder{
		cfg:       cfg,
		recent:    newRing(cfg.Capacity),
		flagged:   newRing(cfg.Capacity),
		byTraceID: make(map[string][]*Trace, 2*cfg.Capacity),
	}
}

// Record files a completed trace. Flagged traces bypass sampling and land in
// the always-keep ring; healthy traces enter the recent ring at the
// configured sampling rate. Callers must not mutate the trace afterwards
// (Finish it first).
func (r *Recorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.offered.Add(1)
	if t.Flags() != 0 {
		r.index(t, r.flagged.add(t))
		r.taken.Add(1)
		return
	}
	if n := r.sampled.Add(1); r.cfg.SampleEvery > 1 && (n-1)%uint64(r.cfg.SampleEvery) != 0 {
		return
	}
	r.index(t, r.recent.add(t))
	r.taken.Add(1)
}

// index files t under its trace ID and evicts the ring-displaced trace (when
// any) from the index. Record's callers are request goroutines finishing a
// trace, never the per-element hot path, so one short mutex hold is fine.
func (r *Recorder) index(t, displaced *Trace) {
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	r.byTraceID[t.traceID] = append(r.byTraceID[t.traceID], t)
	if displaced == nil {
		return
	}
	kept := r.byTraceID[displaced.traceID]
	for i, old := range kept {
		if old == displaced {
			kept = append(kept[:i], kept[i+1:]...)
			break
		}
	}
	if len(kept) == 0 {
		delete(r.byTraceID, displaced.traceID)
	} else {
		r.byTraceID[displaced.traceID] = kept
	}
}

// Lookup returns the snapshots of every retained trace with the given trace
// ID, oldest first. Normally one trace matches; a retried request whose two
// attempts both landed on this node yields several.
func (r *Recorder) Lookup(traceID string) []Snapshot {
	if r == nil {
		return nil
	}
	r.idxMu.Lock()
	traces := append([]*Trace(nil), r.byTraceID[traceID]...)
	r.idxMu.Unlock()
	if len(traces) == 0 {
		return nil
	}
	sort.Slice(traces, func(a, b int) bool { return traces[a].id < traces[b].id })
	out := make([]Snapshot, len(traces))
	for i, t := range traces {
		out[i] = t.Snapshot()
	}
	return out
}

// Dump is the /debug/rumba/traces payload. Offered counts every completed
// trace presented to the recorder; Recorded the subset that entered a ring
// (flagged, or winning the tail-sampling lottery) — the difference is what
// sampling dropped.
type Dump struct {
	Capacity    int        `json:"capacity"`
	SampleEvery int        `json:"sampleEvery"`
	Offered     uint64     `json:"offered"`
	Recorded    uint64     `json:"recorded"`
	Traces      []Snapshot `json:"traces"`
}

// Snapshot collects both rings, oldest trace first (by trace sequence
// number — monotonic, so creation order survives ring wraparound).
func (r *Recorder) Snapshot() Dump {
	d := Dump{
		Capacity:    r.cfg.Capacity,
		SampleEvery: r.cfg.SampleEvery,
		Offered:     r.offered.Load(),
		Recorded:    r.taken.Load(),
	}
	var traces []*Trace
	traces = r.recent.collect(traces)
	traces = r.flagged.collect(traces)
	sort.Slice(traces, func(a, b int) bool { return traces[a].id < traces[b].id })
	d.Traces = make([]Snapshot, len(traces))
	for i, t := range traces {
		d.Traces[i] = t.Snapshot()
	}
	return d
}

// ServeHTTP dumps the recorder as JSON — the /debug/rumba/traces endpoint.
// With ?flagged=1 only the always-keep ring is returned.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	d := r.Snapshot()
	if req.URL.Query().Get("flagged") == "1" {
		kept := d.Traces[:0]
		for _, t := range d.Traces {
			if len(t.Flags) > 0 {
				kept = append(kept, t)
			}
		}
		d.Traces = kept
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(d)
}
