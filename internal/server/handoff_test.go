package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// getState GETs one tenant's state export.
func getState(t *testing.T, url, tenant string) (int, TenantState) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/tenants/%s/state", url, tenant))
	if err != nil {
		t.Fatalf("GET state: %v", err)
	}
	defer resp.Body.Close()
	var st TenantState
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode state: %v", err)
		}
	}
	return resp.StatusCode, st
}

// putState PUTs a state envelope at a tenant.
func putState(t *testing.T, url, tenant string, st TenantState) (int, ImportReport, string) {
	t.Helper()
	body, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	req, err := http.NewRequest(http.MethodPut,
		fmt.Sprintf("%s/v1/tenants/%s/state", url, tenant), bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT state: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, ImportReport{}, e.Error
	}
	var rep ImportReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("decode import report: %v", err)
	}
	return resp.StatusCode, rep, ""
}

func deleteState(t *testing.T, url, tenant string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete,
		fmt.Sprintf("%s/v1/tenants/%s/state", url, tenant), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE state: %v", err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// driveEnergyTenant sends enough over-budget invocations to move an
// energy-mode tuner's threshold off its starting point, so state equality
// checks compare a genuinely adapted trajectory, not a default.
func driveEnergyTenant(t *testing.T, url, tenant string) float64 {
	t.Helper()
	var threshold float64
	for round := 0; round < 4; round++ {
		inputs := make([][]float64, 8)
		for i := range inputs {
			inputs[i] = in(float64(i), 0.9) // every element fires: way over budget
		}
		status, resp, errMsg := invoke(t, url, InvokeRequest{
			Tenant: tenant, Kernel: "synth", Inputs: inputs,
			Mode: "energy", Target: 0.25,
		})
		if status != http.StatusOK {
			t.Fatalf("invoke: %d %s", status, errMsg)
		}
		threshold = resp.Threshold
	}
	if threshold == 0.1 {
		t.Fatalf("energy tuner never moved off its 0.1 start")
	}
	return threshold
}

func TestTenantStateExportImportRoundTrip(t *testing.T) {
	// Source node: small invocation size so the tuner observes every request.
	_, src := newTestServer(t, Options{InvocationSize: 8}, synthKernel("synth", synthExec{}))
	threshold := driveEnergyTenant(t, src.URL, "acme")

	status, st := getState(t, src.URL, "acme")
	if status != http.StatusOK {
		t.Fatalf("export status = %d", status)
	}
	if st.Tenant != "acme" || len(st.States) != 1 {
		t.Fatalf("export = %+v", st)
	}
	snap := st.States[0]
	if snap.Kernel != "synth" || snap.Checker != "score" || snap.Tuner == nil {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Tuner.Threshold != threshold {
		t.Fatalf("exported threshold %v != live %v", snap.Tuner.Threshold, threshold)
	}
	if snap.Elements != 32 {
		t.Fatalf("exported elements = %d, want 32", snap.Elements)
	}

	// Destination node: import, then verify the restored tenant serves with
	// the moved trajectory.
	_, dst := newTestServer(t, Options{InvocationSize: 8}, synthKernel("synth", synthExec{}))
	status, rep, errMsg := putState(t, dst.URL, "acme", st)
	if status != http.StatusOK {
		t.Fatalf("import: %d %s", status, errMsg)
	}
	if rep.Imported != 1 || rep.Skipped != 0 || rep.Replaced != 0 {
		t.Fatalf("import report = %+v", rep)
	}
	istatus, resp, _ := invoke(t, dst.URL, InvokeRequest{
		Tenant: "acme", Kernel: "synth",
		Inputs: [][]float64{in(1, 0)},
	})
	if istatus != http.StatusOK {
		t.Fatalf("post-import invoke: %d", istatus)
	}
	if resp.Threshold != threshold {
		t.Fatalf("restored threshold = %v, want %v", resp.Threshold, threshold)
	}

	// Old owner drops the moved state; a second delete and a post-delete
	// export both 404.
	if status := deleteState(t, src.URL, "acme"); status != http.StatusOK {
		t.Fatalf("delete status = %d", status)
	}
	if status := deleteState(t, src.URL, "acme"); status != http.StatusNotFound {
		t.Fatalf("second delete status = %d, want 404", status)
	}
	if status, _ := getState(t, src.URL, "acme"); status != http.StatusNotFound {
		t.Fatalf("post-delete export status = %d, want 404", status)
	}
}

func TestTenantStateImportValidation(t *testing.T) {
	_, hs := newTestServer(t, Options{}, synthKernel("synth", synthExec{}))

	// Unknown tenant export.
	if status, _ := getState(t, hs.URL, "ghost"); status != http.StatusNotFound {
		t.Fatalf("ghost export status = %d, want 404", status)
	}

	// Version mismatch.
	bad := TenantState{Version: 99, Tenant: "acme"}
	if status, _, _ := putState(t, hs.URL, "acme", bad); status != http.StatusBadRequest {
		t.Fatalf("version-mismatch import status = %d, want 400", status)
	}

	// Entry for a different tenant than the path.
	mixed := TenantState{Version: stateVersion, Tenant: "acme", States: []tenantSnapshot{{
		Tenant: "other", Kernel: "synth", Checker: "none",
	}}}
	if status, _, msg := putState(t, hs.URL, "acme", mixed); status != http.StatusBadRequest {
		t.Fatalf("cross-tenant import = %d %s, want 400", status, msg)
	}

	// Unknown kernel entries are skipped, not fatal (mixed-registry cluster).
	skip := TenantState{Version: stateVersion, Tenant: "acme", States: []tenantSnapshot{{
		Tenant: "acme", Kernel: "missing", Checker: "none",
	}}}
	status, rep, _ := putState(t, hs.URL, "acme", skip)
	if status != http.StatusOK || rep.Skipped != 1 || rep.Imported != 0 {
		t.Fatalf("skip import = %d %+v", status, rep)
	}
}

func TestTenantStateImportReplacesLiveState(t *testing.T) {
	_, src := newTestServer(t, Options{InvocationSize: 8}, synthKernel("synth", synthExec{}))
	threshold := driveEnergyTenant(t, src.URL, "acme")
	_, st := getState(t, src.URL, "acme")

	// Destination already served the tenant inside the handoff window: the
	// import overwrites that fresh state with the authoritative snapshot.
	_, dst := newTestServer(t, Options{InvocationSize: 8}, synthKernel("synth", synthExec{}))
	if status, _, _ := invoke(t, dst.URL, InvokeRequest{
		Tenant: "acme", Kernel: "synth", Inputs: [][]float64{in(1, 0)},
		Mode: "energy", Target: 0.25,
	}); status != http.StatusOK {
		t.Fatal("pre-import invoke failed")
	}
	status, rep, errMsg := putState(t, dst.URL, "acme", st)
	if status != http.StatusOK || rep.Replaced != 1 {
		t.Fatalf("import = %d %+v %s, want replaced=1", status, rep, errMsg)
	}
	_, resp, _ := invoke(t, dst.URL, InvokeRequest{
		Tenant: "acme", Kernel: "synth", Inputs: [][]float64{in(1, 0)},
	})
	if resp.Threshold != threshold {
		t.Fatalf("threshold after replacing import = %v, want %v", resp.Threshold, threshold)
	}
}

func TestDriftStateSurvivesHandoff(t *testing.T) {
	// The realistic violating scenario: an energy-mode tenant whose budget
	// control raises the firing threshold above its quality target. Warm
	// rounds with every element firing drive the threshold up (over budget →
	// raise); then elements scoring 0.15 ship approximate under the raised
	// threshold with estimates above the 0.10 drift target, breaching every
	// 4-element window until 2-of-3 flips the monitor to violating.
	opts := Options{
		InvocationSize: 8,
		Drift:          DriftConfig{Window: 4, K: 2, N: 3},
	}
	_, src := newTestServer(t, opts, synthKernel("synth", synthExec{}))
	send := func(score float64) {
		t.Helper()
		inputs := make([][]float64, 8)
		for i := range inputs {
			inputs[i] = in(float64(i), score)
		}
		status, _, errMsg := invoke(t, src.URL, InvokeRequest{
			Tenant: "acme", Kernel: "synth", Inputs: inputs,
			Mode: "energy", Target: 0.25,
		})
		if status != http.StatusOK {
			t.Fatalf("invoke: %d %s", status, errMsg)
		}
	}
	for round := 0; round < 3; round++ {
		send(0.9) // all fire: threshold climbs 0.1 → 0.2 → 0.4 → 0.8
	}
	for round := 0; round < 2; round++ {
		send(0.15) // under threshold, over drift target: windows breach
	}
	_, st := getState(t, src.URL, "acme")
	if len(st.States) != 1 || st.States[0].Drift == nil {
		t.Fatalf("export missing drift state: %+v", st)
	}
	drift := st.States[0].Drift
	if drift.State != "violating" {
		t.Fatalf("source drift state = %q, want violating (windows=%d violations=%d)",
			drift.State, drift.Windows, drift.Violations)
	}

	_, dst := newTestServer(t, opts, synthKernel("synth", synthExec{}))
	if status, rep, errMsg := putState(t, dst.URL, "acme", st); status != http.StatusOK || rep.Imported != 1 {
		t.Fatalf("import: %d %+v %s", status, rep, errMsg)
	}
	// The restored tenant is still violating before serving a single element
	// on the new node.
	resp, err := http.Get(dst.URL + "/v1/tenants/acme/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health TenantHealth
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Healthy {
		t.Fatalf("restored tenant reports healthy; drift history was dropped: %+v", health)
	}
	if len(health.Kernels) != 1 || health.Kernels[0].Drift == nil ||
		health.Kernels[0].Drift.State != "violating" ||
		health.Kernels[0].Drift.Violations != drift.Violations {
		t.Fatalf("restored drift info = %+v, want violating with %d violations",
			health.Kernels[0].Drift, drift.Violations)
	}
}

// TestDriftSnapshotRingRoundTrip unit-tests the verdict-ring unroll/rebuild
// across wrap-around, which the HTTP tests above cannot isolate.
func TestDriftSnapshotRingRoundTrip(t *testing.T) {
	d := newDriftMonitor(DriftConfig{Window: 2, K: 2, N: 3}, 0.05)
	// Close 5 windows with verdicts T,F,T,T,F — the ring (N=3) should hold
	// T,T,F oldest-first afterwards.
	verdict := []bool{true, false, true, true, false}
	for _, breach := range verdict {
		est := 0.01
		if breach {
			est = 0.5
		}
		d.estSum, d.n = est*2, 2
		d.closeWindow()
	}
	snap := d.snapshot()
	want := []bool{true, true, false}
	if len(snap.Verdicts) != len(want) {
		t.Fatalf("snapshot verdicts = %v, want %v", snap.Verdicts, want)
	}
	for i := range want {
		if snap.Verdicts[i] != want[i] {
			t.Fatalf("snapshot verdicts = %v, want %v", snap.Verdicts, want)
		}
	}
	if snap.Windows != 5 || snap.Violations != 3 {
		t.Fatalf("totals = %d windows %d violations", snap.Windows, snap.Violations)
	}

	r := restoreDriftMonitor(snap)
	if r.state != d.state {
		t.Fatalf("restored state %v != %v", r.state, d.state)
	}
	rs := r.snapshot()
	if fmt.Sprint(rs) != fmt.Sprint(snap) {
		t.Fatalf("restore not idempotent:\n got %+v\nwant %+v", rs, snap)
	}
	// One more clean window on the restored monitor must evict the oldest
	// verdict (true), leaving T,F,F → 1 breach below K → drifting.
	r.estSum, r.n = 0.01*2, 2
	r.closeWindow()
	if r.state != DriftDrifting {
		t.Fatalf("state after clean window = %v, want drifting", r.state)
	}
}

// TestConcurrentHandoffUnderInvokes is the handoff race under -race: invokes
// in flight for a tenant while its state is concurrently exported, imported
// back, and re-exported. Nothing may crash, race, or wedge; every response
// must be well-formed.
func TestConcurrentHandoffUnderInvokes(t *testing.T) {
	_, hs := newTestServer(t, Options{InvocationSize: 8, QueueCap: 256, MaxInFlight: 256},
		synthKernel("synth", synthExec{}))

	// Seed the tenant so the first export finds it.
	if status, _, _ := invoke(t, hs.URL, InvokeRequest{
		Tenant: "acme", Kernel: "synth", Inputs: [][]float64{in(1, 0.5)},
		Mode: "energy", Target: 0.25,
	}); status != http.StatusOK {
		t.Fatal("seed invoke failed")
	}

	const invokers, rounds = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < invokers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				inputs := [][]float64{in(float64(i), 0.5), in(float64(i), 0)}
				body, _ := json.Marshal(InvokeRequest{Tenant: "acme", Kernel: "synth", Inputs: inputs})
				resp, err := http.Post(hs.URL+"/v1/invoke", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				// Shed (200, degraded) and success are both fine; what must
				// not happen is a handler crash (5xx) from the racing import.
				if resp.StatusCode != http.StatusOK {
					t.Errorf("invoke status = %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			status, st := getState(t, hs.URL, "acme")
			if status != http.StatusOK {
				continue // export can race the import's brief absence window
			}
			if status, _, msg := putState(t, hs.URL, "acme", st); status != http.StatusOK {
				t.Errorf("import round %d: %d %s", i, status, msg)
				return
			}
		}
	}()
	wg.Wait()

	// The tenant survived the churn and still serves.
	status, resp, errMsg := invoke(t, hs.URL, InvokeRequest{
		Tenant: "acme", Kernel: "synth", Inputs: [][]float64{in(1, 0)},
	})
	if status != http.StatusOK || resp.Elements != 1 {
		t.Fatalf("post-churn invoke = %d %+v %s", status, resp, errMsg)
	}
}
