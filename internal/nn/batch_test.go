package nn

import (
	"fmt"
	"math"
	"testing"

	"rumba/internal/rng"
)

// fuzzTopologies is the shape space the batch-kernel equivalence tests
// sweep: the NPU envelope (<= 2 hidden layers, <= 32 neurons) including the
// paper benchmarks' shapes, degenerate single-layer networks, and widths
// that exercise the 4-wide unroll's tail (1, 2, 3, 5 features).
var fuzzTopologies = []string{
	"6->8->4->1", // the default hot-path topology of the bench suite
	"9->8->1",
	"1->1",
	"3->2",
	"18->32->8->2",
	"5->3->5",
	"2->16->2",
	"7->1->7",
	"64->16->64",
	"4->4->4->4",
}

var fuzzBatchSizes = []int{1, 2, 3, 7, 8, 63, 64, 65, 256}

func randomNet(t *testing.T, topo string, hidden, out Activation, r *rng.Stream) *Network {
	t.Helper()
	tp, err := ParseTopology(topo)
	if err != nil {
		t.Fatalf("topology %s: %v", topo, err)
	}
	return New(tp, hidden, out, r)
}

func randomInputs(ni, n int, r *rng.Stream) []float64 {
	in := make([]float64, n*ni)
	for i := range in {
		switch r.Intn(8) {
		case 0:
			in[i] = r.Range(-30, 30) // drives sigmoid/tanh into saturation
		default:
			in[i] = r.Range(-1.5, 1.5)
		}
	}
	return in
}

// TestForwardBatchBitEqualScalar: with the default datapath the batch
// kernel must reproduce Forward bit-for-bit at every batch size, including
// batch 1 and ragged chunks through a shared scratch.
func TestForwardBatchBitEqualScalar(t *testing.T) {
	r := rng.NewNamed("nn/batch/float")
	for _, topo := range fuzzTopologies {
		for _, acts := range [][2]Activation{{Sigmoid, Linear}, {Tanh, Sigmoid}, {Sigmoid, Tanh}} {
			net := randomNet(t, topo, acts[0], acts[1], r)
			ni, no := net.Topo.Inputs(), net.Topo.Outputs()
			scratch := net.NewBatchScratch(4) // deliberately small: Grow must kick in
			for _, bs := range fuzzBatchSizes {
				in := randomInputs(ni, bs, r)
				dst := make([]float64, bs*no)
				net.ForwardBatch(dst, in, bs, scratch)
				for e := 0; e < bs; e++ {
					want := net.Forward(in[e*ni : (e+1)*ni])
					for o := 0; o < no; o++ {
						got := dst[e*no+o]
						if math.Float64bits(got) != math.Float64bits(want[o]) {
							t.Fatalf("%s acts=%v batch=%d elem=%d out=%d: batch %v != scalar %v",
								topo, acts, bs, e, o, got, want[o])
						}
					}
				}
			}
		}
	}
}

// TestForwardBatchRaggedChunks runs one input set both as a single large
// batch and as ragged chunks (boundary sizes 1, 5, 64) through the same
// scratch; results must be identical.
func TestForwardBatchRaggedChunks(t *testing.T) {
	r := rng.NewNamed("nn/batch/ragged")
	net := randomNet(t, "6->8->4->1", Sigmoid, Linear, r)
	ni, no := net.Topo.Inputs(), net.Topo.Outputs()
	const n = 135
	in := randomInputs(ni, n, r)
	scratch := net.NewBatchScratch(n)
	whole := make([]float64, n*no)
	net.ForwardBatch(whole, in, n, scratch)

	for _, lut := range []bool{false, true} {
		scratch.LUT = lut
		net.ForwardBatch(whole, in, n, scratch)
		chunked := make([]float64, n*no)
		for _, chunk := range []int{1, 5, 64} {
			for start := 0; start < n; start += chunk {
				end := start + chunk
				if end > n {
					end = n
				}
				net.ForwardBatch(chunked[start*no:], in[start*ni:], end-start, scratch)
			}
			for i := range whole {
				if math.Float64bits(whole[i]) != math.Float64bits(chunked[i]) {
					t.Fatalf("lut=%v chunk=%d: element %d differs: %v != %v", lut, chunk, i, chunked[i], whole[i])
				}
			}
		}
	}
}

// TestForwardBatchLUTAccuracy bounds the LUT datapath's deviation from the
// exp() datapath: the table has step 2^-10, so outputs stay within ~1e-3 of
// the exact activations for realistic (scaled, clamped) inputs.
func TestForwardBatchLUTAccuracy(t *testing.T) {
	r := rng.NewNamed("nn/batch/lut-acc")
	net := randomNet(t, "6->8->4->1", Sigmoid, Linear, r)
	ni, no := net.Topo.Inputs(), net.Topo.Outputs()
	const bs = 64
	in := randomInputs(ni, bs, r)
	scratch := net.NewBatchScratch(bs)
	exact := make([]float64, bs*no)
	net.ForwardBatch(exact, in, bs, scratch)
	scratch.LUT = true
	lut := make([]float64, bs*no)
	net.ForwardBatch(lut, in, bs, scratch)
	for i := range exact {
		if d := math.Abs(exact[i] - lut[i]); d > 2e-3 {
			t.Fatalf("element %d: LUT deviates %v (exact %v, lut %v)", i, d, exact[i], lut[i])
		}
	}
}

// TestFixedForwardBatchBitEqualScalar: the fixed-point batch kernel uses
// exact quantised activation tables, so it must match FixedNetwork.Forward
// bit-for-bit — there is no approximate mode in fixed point.
func TestFixedForwardBatchBitEqualScalar(t *testing.T) {
	r := rng.NewNamed("nn/batch/fixed")
	formats := []FixedFormat{
		DefaultFixedFormat,
		{IntBits: 4, FracBits: 8},
		{IntBits: 8, FracBits: 12},
		{IntBits: 2, FracBits: 4},
		{IntBits: 10, FracBits: 20}, // FracBits > 12: no table, direct compute path
	}
	for _, topo := range fuzzTopologies {
		for _, f := range formats {
			net := randomNet(t, topo, Sigmoid, Linear, r)
			q, err := Quantize(net, f)
			if err != nil {
				t.Fatalf("quantize %s %v: %v", topo, f, err)
			}
			ni, no := net.Topo.Inputs(), net.Topo.Outputs()
			scratch := q.NewBatchScratch(8)
			for _, bs := range []int{1, 7, 64} {
				in := randomInputs(ni, bs, r)
				dst := make([]float64, bs*no)
				q.ForwardBatch(dst, in, bs, scratch)
				for e := 0; e < bs; e++ {
					want := q.Forward(in[e*ni : (e+1)*ni])
					for o := 0; o < no; o++ {
						got := dst[e*no+o]
						if math.Float64bits(got) != math.Float64bits(want[o]) {
							t.Fatalf("%s Q%d.%d batch=%d elem=%d out=%d: batch %v != scalar %v",
								topo, f.IntBits, f.FracBits, bs, e, o, got, want[o])
						}
					}
				}
			}
		}
	}
}

// TestFixedActTabExact verifies the quantised activation table pointwise
// over its whole grid against direct computation.
func TestFixedActTabExact(t *testing.T) {
	for _, f := range []FixedFormat{DefaultFixedFormat, {IntBits: 3, FracBits: 6}} {
		for _, a := range []Activation{Sigmoid, Tanh} {
			tab := buildFixedActTab(f, a)
			if tab == nil {
				t.Fatalf("Q%d.%d %v: expected a table", f.IntBits, f.FracBits, a)
			}
			res := f.Resolution()
			limit := f.max()
			for x := -limit; x <= limit; x += res {
				xq := f.Quantize(x)
				want := f.Quantize(a.apply(xq))
				got := tab.lookup(xq)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("Q%d.%d %v at %v: table %v != direct %v", f.IntBits, f.FracBits, a, xq, got, want)
				}
			}
			if !math.IsNaN(tab.lookup(math.NaN())) {
				t.Fatalf("Q%d.%d %v: NaN must stay NaN through the table", f.IntBits, f.FracBits, a)
			}
		}
	}
}

// TestForwardBatchNaNTotality: NaN inputs must poison outputs (not crash,
// not launder into finite values) on both datapaths, matching the scalar
// path's behaviour that the EMA checker relies on.
func TestForwardBatchNaNTotality(t *testing.T) {
	r := rng.NewNamed("nn/batch/nan")
	net := randomNet(t, "6->8->4->1", Sigmoid, Linear, r)
	ni, no := net.Topo.Inputs(), net.Topo.Outputs()
	in := randomInputs(ni, 4, r)
	in[0] = math.NaN()
	scratch := net.NewBatchScratch(4)
	for _, lut := range []bool{false, true} {
		scratch.LUT = lut
		dst := make([]float64, 4*no)
		net.ForwardBatch(dst, in, 4, scratch)
		if !math.IsNaN(dst[0]) {
			t.Fatalf("lut=%v: NaN input produced finite output %v", lut, dst[0])
		}
		for e := 1; e < 4; e++ {
			for o := 0; o < no; o++ {
				if math.IsNaN(dst[e*no+o]) {
					t.Fatalf("lut=%v: NaN leaked from element 0 into element %d", lut, e)
				}
			}
		}
	}
}

// TestForwardScratchReuse guards the satellite fix: Forward allocates only
// its returned output, and repeated calls stay correct (the ping-pong
// scratch must not alias the result).
func TestForwardScratchReuse(t *testing.T) {
	r := rng.NewNamed("nn/batch/scratch")
	net := randomNet(t, "6->8->4->2", Sigmoid, Linear, r)
	in1 := randomInputs(6, 1, r)
	in2 := randomInputs(6, 1, r)
	out1 := net.Forward(in1)
	keep := append([]float64(nil), out1...)
	_ = net.Forward(in2) // must not clobber out1
	for i := range keep {
		if math.Float64bits(out1[i]) != math.Float64bits(keep[i]) {
			t.Fatalf("Forward result aliased scratch: out1[%d] changed from %v to %v", i, keep[i], out1[i])
		}
	}
	// Round-trip through JSON and Clone: scratch must be (re)initialised.
	data, err := net.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var restored Network
	if err := restored.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	cl := net.Clone()
	a, b, c := net.Forward(in1), restored.Forward(in1), cl.Forward(in1)
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] { //rumba:allow floatcmp bit-for-bit equivalence check
			t.Fatalf("restored/cloned network diverges at %d: %v %v %v", i, a[i], b[i], c[i])
		}
	}
}

// TestBatchKernelAllocs asserts the zero-allocation property of the batch
// kernels (and Forward's single output allocation) at steady state. These
// run as ordinary tests so ci.sh enforces them on every run.
func TestBatchKernelAllocs(t *testing.T) {
	r := rng.NewNamed("nn/batch/allocs")
	net := randomNet(t, "6->8->4->1", Sigmoid, Linear, r)
	q, err := Quantize(net, DefaultFixedFormat)
	if err != nil {
		t.Fatal(err)
	}
	const bs = 64
	in := randomInputs(6, bs, r)
	dst := make([]float64, bs*1)
	scratch := net.NewBatchScratch(bs)

	for _, tc := range []struct {
		name string
		lut  bool
		fn   func()
	}{
		{"ForwardBatch", false, func() { net.ForwardBatch(dst, in, bs, scratch) }},
		{"ForwardBatchLUT", true, func() { net.ForwardBatch(dst, in, bs, scratch) }},
		{"FixedForwardBatch", false, func() { q.ForwardBatch(dst, in, bs, scratch) }},
	} {
		scratch.LUT = tc.lut
		tc.fn() // warm up (LUT tables, scratch growth)
		if allocs := testing.AllocsPerRun(50, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
	scratch.LUT = false
	if allocs := testing.AllocsPerRun(50, func() { _ = net.Forward(in[:6]) }); allocs != 1 {
		t.Errorf("Forward: %v allocs/op, want exactly 1 (the returned output)", allocs)
	}
}

// TestForwardBatchPanics pins the argument-validation behaviour.
func TestForwardBatchPanics(t *testing.T) {
	r := rng.NewNamed("nn/batch/panics")
	net := randomNet(t, "6->8->4->1", Sigmoid, Linear, r)
	scratch := net.NewBatchScratch(4)
	for name, fn := range map[string]func(){
		"short input":  func() { net.ForwardBatch(make([]float64, 4), make([]float64, 5), 4, scratch) },
		"short dst":    func() { net.ForwardBatch(make([]float64, 3), make([]float64, 24), 4, scratch) },
		"nil scratch":  func() { net.ForwardBatch(make([]float64, 4), make([]float64, 24), 4, nil) },
		"neg batch":    func() { net.ForwardBatch(make([]float64, 4), make([]float64, 24), -1, scratch) },
		"thin scratch": func() { net.ForwardBatch(make([]float64, 4), make([]float64, 24), 4, &BatchScratch{width: 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	// batch 0 is a no-op, not a panic.
	net.ForwardBatch(nil, nil, 0, scratch)
	_ = fmt.Sprintf("%v", scratch.MaxBatch())
}
