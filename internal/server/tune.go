package server

import (
	"rumba/internal/core"
)

// Frontier-driven operating-point selection: when rumba-serve is started with
// a rumba-tune frontier artifact (Options.Frontier), every tenant creation
// consults it. The SLA-selection rule (tune.Frontier.Select) picks the
// cheapest frontier point whose predicted corpus error meets the tenant's TOQ
// target and whose predicted chunk latency meets the kernel's p99 SLO; the
// tenant's accelerator is switched to the point's datapath, its request
// pipelines run at the point's batch width, and the tune.* gauges compare the
// point's predicted cost against what the tenant actually observes.

// Observability names of the frontier selection.
const (
	// MetricTuneSelected is the per-tenant index of the selected point within
	// the kernel's frontier (labels: tenant, kernel).
	MetricTuneSelected = "tune.selected_point"
	// MetricTunePredictedNs is the selected point's predicted ns/element.
	MetricTunePredictedNs = "tune.predicted_ns_per_elem"
	// MetricTuneDeliveredNs is the delivered ns/element of the tenant's most
	// recent request (stream wall-clock over elements).
	MetricTuneDeliveredNs = "tune.delivered_ns_per_elem"
)

// datapather is the executor capability frontier points need; the NPU
// accelerator model implements it (accel.ApplyDatapath), other executors
// simply keep their default configuration.
type datapather interface {
	ApplyDatapath(name string, lutBits int) error
}

// frontierTarget resolves the quality bound a tenant's selection is held to:
// its own TOQ target when it tunes in TOQ mode, the manager default otherwise
// (energy/quality modes tune budgets, not error bounds, but the frontier
// still must not select a point that breaks the default quality contract).
func (t *Tenants) frontierTarget(d TunerDefaults) float64 {
	if d.Mode == core.ModeTOQ && d.Target > 0 {
		return d.Target
	}
	return t.defaults.Target
}

// adoptChecker reports the checker family a fresh tenant without an explicit
// choice should use: the one on the cheapest qualifying frontier point, when
// the kernel can actually build it. "" means no opinion (kernel default).
func (t *Tenants) adoptChecker(k *Kernel, target float64) string {
	if t.frontier == nil {
		return ""
	}
	pt, _, ok := t.frontier.Select(k.Name, "", target, k.P99SLOMillis*1e6)
	if !ok || !kernelHasChecker(k, pt.Checker) {
		return ""
	}
	return pt.Checker
}

func kernelHasChecker(k *Kernel, name string) bool {
	if name == "none" {
		return true
	}
	_, ok := k.Checkers[name]
	return ok
}

// applyFrontier selects the tenant's operating point — cheapest qualifying
// frontier point for its checker family and quality target — and configures
// its executor and batch width accordingly. No qualifying point (or an
// executor without datapath support) leaves the server defaults in place.
// Caller holds whatever lock guards ts; the tenant is not yet visible.
func (t *Tenants) applyFrontier(ts *tenant, k *Kernel, target float64) {
	if t.frontier == nil {
		return
	}
	pt, idx, ok := t.frontier.Select(k.Name, ts.checkerName, target, k.P99SLOMillis*1e6)
	if !ok {
		return
	}
	ap, can := ts.accel.(datapather)
	if !can {
		return
	}
	if err := ap.ApplyDatapath(pt.Datapath, pt.LUTBits); err != nil {
		// A frontier from another build may sweep resolutions this binary
		// rejects; the tenant then serves on the default datapath.
		return
	}
	ts.point = &pt
	ts.pointIndex = idx
	ts.batch = pt.Batch
}
