package experiments

import (
	"strings"
	"testing"

	"rumba/internal/core"
)

// sharedCtx is trained once for the whole test package (training two
// networks per benchmark is the expensive part).
var sharedCtx = NewContext(ReducedSizes())

func TestFig1CDFShape(t *testing.T) {
	tab, err := Fig1(sharedCtx, "inversek2j")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	// The last row (error <= inf) must cover 100% of elements.
	last := tab.Rows[len(tab.Rows)-1]
	if last[1] != "100.0%" {
		t.Fatalf("CDF must reach 100%%: %v", last)
	}
}

func TestFig2EqualMeansDifferentTails(t *testing.T) {
	_, res, err := Fig2(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.MeanErrorConcentrated - res.MeanErrorSpread; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mean errors must match: %v vs %v", res.MeanErrorConcentrated, res.MeanErrorSpread)
	}
	if res.LargeFracConcentrated < 0.09 || res.LargeFracConcentrated > 0.11 {
		t.Fatalf("concentrated corruption must have ~10%% large errors, got %v", res.LargeFracConcentrated)
	}
	if res.LargeFracSpread != 0 {
		t.Fatalf("spread corruption must have no large errors, got %v", res.LargeFracSpread)
	}
	if res.MSEConcentrated <= res.MSESpread {
		t.Fatal("concentrated errors must have worse MSE")
	}
}

func TestFig3InputDependence(t *testing.T) {
	_, res, err := Fig3(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Max < 3*res.Mean {
		t.Fatalf("Figure 3 needs a heavy tail: mean %v max %v", res.Mean, res.Max)
	}
}

func TestFig5EEPBeatsEVP(t *testing.T) {
	_, res, err := Fig5(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio <= 1 {
		t.Fatalf("EEP must beat EVP, ratio %v", res.Ratio)
	}
}

func TestTable1MatchesRegistry(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 7 {
		t.Fatalf("Table 1 must list 7 applications, got %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "blackscholes" || tab.Rows[6][0] != "sobel" {
		t.Fatalf("unexpected ordering: %v", tab.Rows)
	}
}

func TestTable2Renders(t *testing.T) {
	out := Table2().Render()
	for _, want := range []string{"4/6", "Tournament", "2 MB", "96"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 rendering missing %q:\n%s", want, out)
		}
	}
}

func TestFig10CurveProperties(t *testing.T) {
	_, curves, err := Fig10(sharedCtx, "inversek2j")
	if err != nil {
		t.Fatal(err)
	}
	ideal := curves[core.SchemeIdeal]
	random := curves[core.SchemeRandom]
	tree := curves[core.SchemeTree]
	for i := range ideal {
		// Ideal is the lower envelope.
		if ideal[i].OutputError > random[i].OutputError+1e-12 || ideal[i].OutputError > tree[i].OutputError+1e-12 {
			t.Fatalf("Ideal must dominate at point %d", i)
		}
	}
	// At 100% fixed, everything reaches zero error.
	for s, pts := range curves {
		if pts[len(pts)-1].OutputError != 0 {
			t.Fatalf("%v does not reach zero at 100%% fixed", s)
		}
	}
	// The trained tree must beat random sampling somewhere meaningful
	// (at 30% fixed).
	if tree[3].OutputError >= random[3].OutputError {
		t.Fatalf("treeErrors (%v) should beat Random (%v) at 30%% fixed",
			tree[3].OutputError, random[3].OutputError)
	}
}

func TestFig11IdealHasNoFalsePositives(t *testing.T) {
	_, res, err := Fig11(sharedCtx, "inversek2j", "fft")
	if err != nil {
		t.Fatal(err)
	}
	for name, per := range res {
		if per[core.SchemeIdeal] != 0 {
			t.Fatalf("%s: Ideal false positives = %v, want 0", name, per[core.SchemeIdeal])
		}
		if per[core.SchemeTree] > per[core.SchemeRandom] {
			t.Fatalf("%s: treeErrors FPs (%v) should not exceed Random's (%v)",
				name, per[core.SchemeTree], per[core.SchemeRandom])
		}
	}
}

func TestFig12IdealNeedsFewestFixes(t *testing.T) {
	_, res, err := Fig12(sharedCtx, "inversek2j", "fft")
	if err != nil {
		t.Fatal(err)
	}
	for name, per := range res {
		for s, frac := range per {
			if per[core.SchemeIdeal] > frac+1e-12 {
				t.Fatalf("%s: Ideal (%v) must need the fewest fixes, %v needs %v",
					name, per[core.SchemeIdeal], s, frac)
			}
		}
		if per[core.SchemeTree] >= per[core.SchemeRandom] {
			t.Fatalf("%s: treeErrors should need fewer fixes than Random", name)
		}
	}
}

func TestFig13CoverageNormalisedToIdeal(t *testing.T) {
	_, res, err := Fig13(sharedCtx, "inversek2j")
	if err != nil {
		t.Fatal(err)
	}
	per := res["inversek2j"]
	if per[core.SchemeIdeal] < 0.999 || per[core.SchemeIdeal] > 1.001 {
		t.Fatalf("Ideal coverage must be 100%%, got %v", per[core.SchemeIdeal])
	}
	if per[core.SchemeTree] <= per[core.SchemeRandom] {
		t.Fatalf("treeErrors coverage (%v) must beat Random (%v)", per[core.SchemeTree], per[core.SchemeRandom])
	}
}

func TestFig14EnergyOrdering(t *testing.T) {
	_, res, err := Fig14(sharedCtx, "inversek2j", "kmeans")
	if err != nil {
		t.Fatal(err)
	}
	ik := res["inversek2j"]
	// Checking and fixing must cost energy relative to the unchecked NPU's
	// own topology... on inversek2j the Rumba topology is smaller, so
	// compare against the Ideal scheme (same accelerator, no checker).
	if ik["treeErrors"] > ik["Ideal"] {
		t.Fatalf("treeErrors (%v) cannot beat Ideal (%v)", ik["treeErrors"], ik["Ideal"])
	}
	if res["kmeans"]["NPU"] >= 1 {
		t.Fatalf("kmeans must be an energy slowdown, got %v", res["kmeans"]["NPU"])
	}
}

func TestFig15RumbaMaintainsSpeedup(t *testing.T) {
	_, res, err := Fig15(sharedCtx, "inversek2j")
	if err != nil {
		t.Fatal(err)
	}
	ik := res["inversek2j"]
	if ik["treeErrors"] <= 1 {
		t.Fatalf("Rumba speedup = %v, expected > 1", ik["treeErrors"])
	}
	// The overlap must keep Rumba within a modest factor of the Ideal
	// scheme's speedup on the same accelerator.
	if ik["treeErrors"] < 0.5*ik["Ideal"] {
		t.Fatalf("treeErrors speedup %v collapsed vs Ideal %v", ik["treeErrors"], ik["Ideal"])
	}
}

func TestFig16IdealIsUpperBound(t *testing.T) {
	_, series, err := Fig16(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	ideal := series["Ideal"]
	tree := series["treeErrors"]
	if len(ideal) != 10 || len(tree) != 10 {
		t.Fatalf("series lengths %d/%d", len(ideal), len(tree))
	}
	for i := range ideal {
		if tree[i] > ideal[i]+1e-9 {
			t.Fatalf("treeErrors (%v) cannot beat Ideal (%v) at point %d", tree[i], ideal[i], i)
		}
	}
	// Relaxing the target must not hurt Ideal's savings.
	for i := 1; i < len(ideal); i++ {
		if ideal[i] < ideal[i-1]-1e-9 {
			t.Fatal("Ideal savings must not decrease as the target relaxes")
		}
	}
}

func TestFig17PredictionFasterThanNPU(t *testing.T) {
	_, res, err := Fig17(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 7 {
		t.Fatalf("expected 7 benchmarks, got %d", len(res))
	}
	for name, per := range res {
		if per["linearErrors"] >= 1 || per["treeErrors"] >= 1 {
			t.Fatalf("%s: prediction must be faster than the NPU: %+v", name, per)
		}
	}
}

func TestFig18TraceConsistent(t *testing.T) {
	_, res, err := Fig18(sharedCtx, "inversek2j")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PredDiffs) == 0 || len(res.PredDiffs) != len(res.CPUActive) {
		t.Fatalf("trace sizes: %d vs %d", len(res.PredDiffs), len(res.CPUActive))
	}
	if res.FlaggedFrac < 0 || res.FlaggedFrac > 1 {
		t.Fatalf("flagged fraction %v", res.FlaggedFrac)
	}
}

func TestHeadlineDirections(t *testing.T) {
	_, res, err := Headline(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorReduction <= 1 {
		t.Fatalf("Rumba must reduce error vs the unchecked NPU, ratio %v", res.ErrorReduction)
	}
	if res.RumbaEnergy >= res.NPUEnergy {
		t.Fatalf("Rumba energy savings (%v) must be below the unchecked NPU's (%v)",
			res.RumbaEnergy, res.NPUEnergy)
	}
	if res.RumbaEnergy <= 1 {
		t.Fatalf("Rumba must still save energy overall, got %v", res.RumbaEnergy)
	}
	if res.RumbaSpeedup < 0.45*res.NPUSpeedup {
		t.Fatalf("Rumba speedup (%v) collapsed relative to NPU (%v)", res.RumbaSpeedup, res.NPUSpeedup)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Note: "n", Header: []string{"a", "bb"}}
	tab.AddRow("xxx", "y")
	out := tab.Render()
	for _, want := range []string{"T\n", "n\n", "a", "bb", "xxx"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPrepareCaches(t *testing.T) {
	a, err := sharedCtx.Prepare("fft")
	if err != nil {
		t.Fatal(err)
	}
	b, err := sharedCtx.Prepare("fft")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Prepare must cache")
	}
}

func TestPrepareUnknownBenchmark(t *testing.T) {
	if _, err := sharedCtx.Prepare("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := &Table{Title: "T", Note: "n", Header: []string{"a", "b"}}
	tab.AddRow("1", "2")
	out := tab.RenderMarkdown()
	for _, want := range []string{"### T", "*n*", "| a | b |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestPrepareAllMatchesSequential(t *testing.T) {
	// PrepareAll must produce the same artifacts Prepare would (training is
	// deterministic per benchmark).
	par := NewContext(ReducedSizes())
	if err := par.PrepareAll([]string{"fft", "kmeans"}); err != nil {
		t.Fatal(err)
	}
	pp, err := par.Prepare("fft")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sharedCtx.Prepare("fft")
	if err != nil {
		t.Fatal(err)
	}
	for i := range sp.RumbaObs.Errors[:100] {
		if pp.RumbaObs.Errors[i] != sp.RumbaObs.Errors[i] {
			t.Fatalf("parallel preparation diverged at element %d", i)
		}
	}
}

func TestPrepareAllUnknownBenchmark(t *testing.T) {
	c := NewContext(ReducedSizes())
	if err := c.PrepareAll([]string{"nope"}); err == nil {
		t.Fatal("expected error")
	}
}
