package core

import (
	"context"
	"fmt"
)

// ProcessSlice is the request-shaped entry point to the streaming runtime:
// it feeds a finite batch of inputs through Process and collects the merged,
// in-order results. It is what a serving layer calls once per request —
// rumba-serve builds one Stream per admitted request around the tenant's
// live tuner and propagates the request deadline through ctx.
//
// On cancellation (deadline exceeded, client gone) the partial in-order
// prefix that was delivered is returned together with ctx.Err(); the
// pipeline is fully torn down before ProcessSlice returns, so the caller
// never leaks a goroutine by abandoning a timed-out request.
func (st *Stream) ProcessSlice(ctx context.Context, inputs [][]float64) ([]StreamResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// The inputs are already materialised, so detection reads BatchSize
	// windows of the slice directly — no feeder goroutine, no per-element
	// channel hop on the way in.
	out, err := st.process(ctx, sliceSource(inputs))
	if err != nil {
		return nil, err
	}
	results := make([]StreamResult, 0, len(inputs))
	for r := range out {
		results = append(results, r)
	}
	if len(results) < len(inputs) {
		if cerr := ctx.Err(); cerr != nil {
			return results, cerr
		}
		return results, fmt.Errorf("core: stream ended after %d of %d elements", len(results), len(inputs))
	}
	return results, nil
}
