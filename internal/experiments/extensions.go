package experiments

import (
	"fmt"

	"rumba/internal/accel"
	"rumba/internal/core"
	"rumba/internal/energy"
	"rumba/internal/pipeline"
	"rumba/internal/predictor"
	"rumba/internal/quality"
	"rumba/internal/sampling"
	"rumba/internal/trainer"
)

// The experiments in this file go beyond the paper's figures: they quantify
// the claims the paper makes in prose (quality sampling misses violations —
// Challenges II/III; detector placement trade-offs — Section 3.5) and ablate
// design choices DESIGN.md calls out.

// samplingChunk is the invocation granularity for the sampling comparison:
// small enough that an invocation's quality reflects local input content
// (for jpeg, 16 blocks = one 128x8 pixel strip).
const samplingChunk = 16

// ExpSampling compares Green/SAGE-style quality sampling against Rumba's
// continuous checks on the same workload. The test set is divided into
// invocations of 100 elements; an invocation whose mean error exceeds 10% is
// a quality violation. Sampling only notices violations that land on its
// sampled invocations; Rumba checks every element of every invocation.
func ExpSampling(c *Context, benchmark string) (*Table, error) {
	if benchmark == "" {
		// kmeans errors track local image content, so invocation quality
		// straddles the bound — the input-dependence of Challenge II.
		benchmark = "kmeans"
	}
	p, err := c.Prepare(benchmark)
	if err != nil {
		return nil, err
	}
	errs := p.RumbaObs.Errors
	nChunks := len(errs) / samplingChunk
	if nChunks == 0 {
		return nil, fmt.Errorf("experiments: test set too small for sampling chunks")
	}
	invErr := make([]float64, nChunks)
	for i := 0; i < nChunks; i++ {
		var s float64
		for _, e := range errs[i*samplingChunk : (i+1)*samplingChunk] {
			s += e
		}
		invErr[i] = s / samplingChunk
	}

	t := &Table{
		Title: fmt.Sprintf("Quality sampling vs Rumba continuous checks (%s, %d invocations of %d elements)",
			benchmark, nChunks, samplingChunk),
		Note:   "Challenge II/III: sampling misses the violations between its samples; Rumba checks everything.",
		Header: []string{"monitor", "violations", "detected", "missed", "residual error", "extra exact work"},
	}
	for _, period := range []int{50, 10, 1} {
		res, err := sampling.Evaluate(invErr, sampling.Policy{Period: period, MaxError: TargetError})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("sampling 1/%d", period),
			fmt.Sprintf("%d", res.Violations),
			fmt.Sprintf("%d", res.Detected),
			fmt.Sprintf("%d", res.Missed),
			pct(res.ResidualError),
			fmt.Sprintf("%d invocations", res.CheckCostInvocations),
		)
	}

	// Rumba: the tree checker at its 90%-TOQ operating point; an element
	// fixed by recovery contributes zero error to its invocation.
	op := p.OperatingPoint(core.SchemeTree)
	fixed := make(map[int]bool, len(op.Fixed))
	for _, idx := range op.Fixed {
		fixed[idx] = true
	}
	violations, detected := 0, 0
	var residual float64
	for i := 0; i < nChunks; i++ {
		var after float64
		for j := i * samplingChunk; j < (i+1)*samplingChunk; j++ {
			if !fixed[j] {
				after += errs[j]
			}
		}
		after /= samplingChunk
		residual += after
		if invErr[i] > TargetError {
			violations++
			if after <= TargetError {
				detected++
			}
		}
	}
	t.AddRow(
		"Rumba (treeErrors)",
		fmt.Sprintf("%d", violations),
		fmt.Sprintf("%d", detected),
		fmt.Sprintf("%d", violations-detected),
		pct(residual/float64(nChunks)),
		fmt.Sprintf("%d elements (%.1f%%)", len(op.Fixed), 100*float64(len(op.Fixed))/float64(len(errs))),
	)
	return t, nil
}

// AblationPlacement quantifies the Figure 9 / Section 3.5 trade-off on every
// benchmark: the serial placement (detector before the accelerator) saves
// the accelerator invocations that would be thrown away, the parallel
// placement keeps the detector off the critical path.
func AblationPlacement(c *Context, benchmarks ...string) (*Table, error) {
	names, err := checkBenchmarks(benchmarks)
	if err != nil {
		return nil, err
	}
	m := energy.DefaultModel()
	t := &Table{
		Title:  "Ablation: detector placement (Figure 9) at 90% target output quality, linearErrors",
		Note:   "Serial (9a) saves accelerator energy on flagged elements; parallel (9b) preserves latency. The paper picks parallel.",
		Header: []string{"benchmark", "energy serial", "energy parallel", "speedup serial", "speedup parallel"},
	}
	for _, name := range names {
		p, err := c.Prepare(name)
		if err != nil {
			return nil, err
		}
		op := p.OperatingPoint(core.SchemeLinear)
		n := len(p.RumbaObs.Errors)
		topo := p.RumbaAccel.Config().Net.Topo
		kernelCycles := energy.KernelCPULatency(p.Spec.Cost, m)
		row := []string{name}
		var energies, speeds []string
		for _, placement := range []accel.Placement{accel.PlacementSerial, accel.PlacementParallel} {
			accelInv := n
			if placement == accel.PlacementSerial {
				accelInv = n - len(op.Fixed)
			}
			b, err := energy.WholeAppEnergy(p.Spec.Cost, energy.Activity{
				Elements:                n,
				Recomputed:              len(op.Fixed),
				AccelInvocations:        accelInv,
				NPUMACsPerInvocation:    topo.MACs(),
				QueueWordsPerInvocation: topo.Inputs() + topo.Outputs(),
				Checker:                 p.Preds.Linear.Cost(),
			}, m)
			if err != nil {
				return nil, err
			}
			sim, err := pipeline.Simulate(schemeFlags(n, op), pipeline.Params{
				AccelCyclesPerIter: p.RumbaAccel.CyclesPerInvocation(),
				CPURecomputeCycles: kernelCycles,
				CheckerCycles:      energy.CheckerLatencyCycles(p.Preds.Linear.Cost(), m),
				AddCheckerToPath:   placement == accel.PlacementSerial,
			})
			if err != nil {
				return nil, err
			}
			energies = append(energies, x2(b.Savings))
			speeds = append(speeds, x2(pipeline.WholeAppSpeedup(sim.TotalCycles, n, kernelCycles, p.Spec.Cost.ApproxFraction)))
		}
		row = append(row, energies[0], energies[1], speeds[0], speeds[1])
		t.AddRow(row...)
	}
	return t, nil
}

// AblationTreeDepth sweeps the decision-tree depth cap: deeper trees fix
// fewer elements for the same quality but cost more comparator levels. The
// paper fixes depth 7.
func AblationTreeDepth(c *Context, benchmark string) (*Table, error) {
	if benchmark == "" {
		benchmark = "inversek2j"
	}
	p, err := c.Prepare(benchmark)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation: decision-tree depth (%s), 90%% target output quality", benchmark),
		Note:   "The paper caps the tree at depth 7: one comparator level per cycle keeps the check under the NPU latency.",
		Header: []string{"max depth", "leaves", "elements fixed", "checker compares"},
	}
	// Re-fit the tree at each cap on the cached training observation.
	trainErrs := make([]float64, p.Train.Len())
	for i := range p.Train.Inputs {
		out := p.RumbaAccel.Invoke(p.Train.Inputs[i])
		trainErrs[i] = elementErr(p, p.Train.Targets[i], out)
	}
	for _, depth := range []int{1, 2, 3, 5, 7} {
		tree, err := predictor.FitTree(p.Train.Inputs, trainErrs, p.Spec.RumbaFeatures, predictor.TreeConfig{MaxDepth: depth})
		if err != nil {
			return nil, err
		}
		preds := make([]float64, len(p.Test.Inputs))
		for i := range p.Test.Inputs {
			preds[i] = tree.PredictError(p.Test.Inputs[i], p.RumbaObs.Approx[i])
		}
		op := core.FixesForTarget(p.RumbaObs.Errors, preds, TargetError)
		t.AddRow(
			fmt.Sprintf("%d", depth),
			fmt.Sprintf("%d", tree.LeafCount()),
			pct(float64(len(op.Fixed))/float64(len(p.RumbaObs.Errors))),
			fmt.Sprintf("%.0f", tree.Cost().Compares),
		)
	}
	return t, nil
}

// AblationEMAHistory sweeps the EMA window length N of Equation 2.
func AblationEMAHistory(c *Context, benchmark string) (*Table, error) {
	if benchmark == "" {
		benchmark = "fft"
	}
	p, err := c.Prepare(benchmark)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation: EMA history length (%s), 90%% target output quality", benchmark),
		Note:   "Equation 2: alpha = 2/(1+N). Short histories chase the signal; long histories smooth it.",
		Header: []string{"history N", "alpha", "elements fixed"},
	}
	scale := p.Preds.EMA.Scale
	for _, n := range []int{2, 4, 8, 16, 64} {
		ema := predictor.NewEMA(n, scale)
		preds := predictAll(ema, p.Test.Inputs, p.RumbaObs.Approx)
		op := core.FixesForTarget(p.RumbaObs.Errors, preds, TargetError)
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", 2.0/(1.0+float64(n))),
			pct(float64(len(op.Fixed))/float64(len(p.RumbaObs.Errors))),
		)
	}
	return t, nil
}

// ExpMargin evaluates the margin checker extension on the classification
// benchmark (jmeint): the accelerator's own output margin is a far better
// misclassification signal than any input-based model, at EMA-like cost.
func ExpMargin(c *Context) (*Table, error) {
	p, err := c.Prepare("jmeint")
	if err != nil {
		return nil, err
	}
	// Fit the margin scale on the training observation.
	trainObs := make([][]float64, p.Train.Len())
	trainErrs := make([]float64, p.Train.Len())
	for i := range p.Train.Inputs {
		out := p.RumbaAccel.Invoke(p.Train.Inputs[i])
		trainObs[i] = out
		trainErrs[i] = elementErr(p, p.Train.Targets[i], out)
	}
	margin := predictor.FitMargin(trainObs, trainErrs)
	forest, err := predictor.FitForest(p.Train.Inputs, trainErrs, p.Spec.RumbaFeatures, 5,
		predictor.TreeConfig{}, "jmeint")
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Extension: alternative checkers on jmeint (90% target output quality)",
		Note:   "Beyond the paper: output-margin and bagged-forest checkers vs the paper's on the hardest benchmark for detection.",
		Header: []string{"checker", "elements fixed", "large-error coverage"},
	}
	cut := largeCutoff(p)
	coverage := func(fixedSet []int) float64 {
		if len(fixedSet) == 0 {
			return 1
		}
		hit := 0
		for _, idx := range fixedSet {
			if p.RumbaObs.Errors[idx] >= cut {
				hit++
			}
		}
		return float64(hit) / float64(len(fixedSet))
	}
	for _, entry := range []struct {
		name  string
		preds []float64
	}{
		{"linearErrors", p.PredErrs[core.SchemeLinear]},
		{"treeErrors", p.PredErrs[core.SchemeTree]},
		{"marginErrors", predictAll(margin, p.Test.Inputs, p.RumbaObs.Approx)},
		{"forestErrors (5 trees)", predictAll(forest, p.Test.Inputs, p.RumbaObs.Approx)},
		{"Ideal", p.RumbaObs.Errors},
	} {
		op := core.FixesForTarget(p.RumbaObs.Errors, entry.preds, TargetError)
		t.AddRow(entry.name,
			pct(float64(len(op.Fixed))/float64(len(p.RumbaObs.Errors))),
			pct(coverage(op.Fixed)))
	}
	return t, nil
}

// elementErr is a small helper around the benchmark metric.
func elementErr(p *Prepared, exact, approx []float64) float64 {
	return quality.ElementError(p.Spec.Metric, exact, approx, p.Spec.Scale)
}

// ExpAutoSelect runs the trainer's automatic checker selection on every
// benchmark: the held-out winner and the fixes it needs at 90% TOQ. It
// operationalises the paper's observation that "error prediction accuracy
// of a particular scheme is benchmark dependent" — the offline trainer can
// simply measure which checker to ship per application.
func ExpAutoSelect(c *Context, benchmarks ...string) (*Table, error) {
	names, err := checkBenchmarks(benchmarks)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Extension: automatic checker selection (held-out, 90% target output quality)",
		Note:   "The offline trainer picks the checker needing the fewest re-executions on a held-out training slice.",
		Header: []string{"benchmark", "selected checker", "elements fixed (test)", "treeErrors (test)", "linearErrors (test)"},
	}
	for _, name := range names {
		p, err := c.Prepare(name)
		if err != nil {
			return nil, err
		}
		obs := trainer.Observe(p.Spec, p.RumbaAccel, p.Train)
		chosen, chosenName := trainer.SelectChecker(p.Spec, p.Train, obs, p.Preds, TargetError)
		preds := predictAll(chosen, p.Test.Inputs, p.RumbaObs.Approx)
		op := core.FixesForTarget(p.RumbaObs.Errors, preds, TargetError)
		n := float64(len(p.RumbaObs.Errors))
		t.AddRow(name, chosenName,
			pct(float64(len(op.Fixed))/n),
			pct(float64(len(p.OperatingPoint(core.SchemeTree).Fixed))/n),
			pct(float64(len(p.OperatingPoint(core.SchemeLinear).Fixed))/n),
		)
	}
	return t, nil
}
