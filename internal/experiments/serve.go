package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"rumba/internal/accel"
	"rumba/internal/exec"
	"rumba/internal/obs"
	"rumba/internal/predictor"
	"rumba/internal/server"
)

// ExpServe load-tests the rumba-serve layer in-process: N concurrent tenants
// hammer a deliberately under-provisioned server (small worker pool, small
// admission queue) over a real loopback listener, and the table reports the
// admitted/shed split, the degraded-request rate, and the admitted-request
// latency distribution from the server's own observability snapshot. Like
// "stream" it is registered in rumba-bench but excluded from `-exp all`:
// latencies and the exact shed count are wall-clock and machine-dependent.
func ExpServe(c *Context, benchmark string) (*Table, error) {
	if benchmark == "" {
		benchmark = "fft"
	}
	const (
		clients  = 8
		requests = 12 // per client
		batch    = 64 // elements per request
	)
	p, err := c.Prepare(benchmark)
	if err != nil {
		return nil, err
	}

	acfg := p.RumbaAccel.Config()
	kernel := &server.Kernel{
		Name:     p.Spec.Name,
		Spec:     p.Spec,
		NewAccel: func() (exec.Executor, error) { return accel.New(acfg, 0) },
		Checkers: map[string]server.CheckerFactory{
			"tree":   func() predictor.Predictor { return p.Preds.Tree },
			"linear": func() predictor.Predictor { return p.Preds.Linear },
		},
		DefaultChecker: "tree",
	}
	reg := server.NewKernelRegistry()
	if err := reg.Add(kernel); err != nil {
		return nil, err
	}
	metrics := obs.NewRegistry()
	srv, err := server.New(reg, server.Options{
		Addr:            "127.0.0.1:0",
		PipelineWorkers: 2,
		QueueCap:        2,
		MaxInFlight:     4,
		InvocationSize:  batch,
		Metrics:         metrics,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()
	var url string
	for deadline := time.Now().Add(5 * time.Second); ; {
		if addr := srv.Addr(); addr != "" {
			url = "http://" + addr
			break
		}
		if time.Now().After(deadline) {
			cancel()
			<-runErr
			return nil, fmt.Errorf("serve: listener never bound")
		}
		time.Sleep(time.Millisecond)
	}

	type clientStats struct {
		ok, degraded, failed int
	}
	stats := make([]clientStats, clients)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				inputs := make([][]float64, 0, batch)
				for i := 0; i < batch; i++ {
					inputs = append(inputs, p.Test.Inputs[(cl*requests*batch+r*batch+i)%len(p.Test.Inputs)])
				}
				req := server.InvokeRequest{
					Tenant: fmt.Sprintf("tenant-%d", cl),
					Kernel: p.Spec.Name,
					Inputs: inputs,
				}
				body, err := json.Marshal(req)
				if err != nil {
					stats[cl].failed++
					continue
				}
				resp, err := http.Post(url+"/v1/invoke", "application/json", bytes.NewReader(body))
				if err != nil {
					stats[cl].failed++
					continue
				}
				var out server.InvokeResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					stats[cl].failed++
					continue
				}
				if out.Degraded {
					stats[cl].degraded++
				} else {
					stats[cl].ok++
				}
			}
		}(cl)
	}
	wg.Wait()
	cancel()
	if err := <-runErr; err != nil {
		return nil, err
	}
	http.DefaultClient.CloseIdleConnections()

	var ok, degraded, failed int
	for _, s := range stats {
		ok += s.ok
		degraded += s.degraded
		failed += s.failed
	}
	total := ok + degraded
	snap := metrics.Snapshot()
	lat := snap.Histograms[server.MetricLatencyNs]

	t := &Table{
		Title: fmt.Sprintf("rumba-serve load — %s: %d clients × %d requests × %d elements, 2 workers / 4 in-flight",
			benchmark, clients, requests, batch),
		Note:   "latencies are wall-clock and the shed count depends on machine speed; not part of the canonical results",
		Header: []string{"metric", "value"},
	}
	t.AddRow("requests completed", fmt.Sprintf("%d", total))
	t.AddRow("requests failed", fmt.Sprintf("%d", failed))
	t.AddRow("admitted (full pipeline)", fmt.Sprintf("%d", snap.Counters[server.MetricRequests]))
	t.AddRow("shed (approximate-only)", fmt.Sprintf("%d", snap.Counters[server.MetricShed]))
	if total > 0 {
		t.AddRow("degraded-request rate", fmt.Sprintf("%.1f%%", 100*float64(degraded)/float64(total)))
	}
	t.AddRow("queue stalls", fmt.Sprintf("%d", snap.Counters[server.MetricQueueStalls]))
	g := snap.Gauges[server.MetricInFlight]
	t.AddRow("in-flight high-water", fmt.Sprintf("%.0f", g.Max))
	if lat.Count > 0 {
		t.AddRow("admitted latency p50", fmt.Sprintf("<= %.2f ms", lat.Quantile(0.5)/1e6))
		t.AddRow("admitted latency p99", fmt.Sprintf("<= %.2f ms", lat.Quantile(0.99)/1e6))
	}
	for _, ti := range srv.Tenants() {
		t.AddRow("threshold "+ti.Tenant, fmt.Sprintf("%.4g (%d fixed / %d elements)", ti.Threshold, ti.Fixed, ti.Elements))
	}
	return t, nil
}
