package obs

import (
	"strings"
	"testing"
)

// TestValidateExpositionStrictLabels pins the strict label lexer: legal
// escaped values (including '}' and '"' inside quotes) pass, while the
// strconv.Quote-style escapes the old renderer could emit are rejected.
func TestValidateExpositionStrictLabels(t *testing.T) {
	ok := []string{
		"a_metric 1\n",
		`m{node="127.0.0.1:9090"} 1` + "\n",
		`m{node="br}ace",k="v"} 2` + "\n",
		`m{node="qu\"oted",other="\\back\\"} 3` + "\n",
		`m{} 4` + "\n",
		`m{n="line\nbreak"} 5` + "\n",
	}
	for _, body := range ok {
		if err := ValidateExposition(strings.NewReader(body)); err != nil {
			t.Errorf("valid exposition rejected: %v\n%s", err, body)
		}
	}

	bad := []struct{ body, why string }{
		{`m{node="\u0041"} 1` + "\n", "strconv-style unicode escape"},
		{`m{node="\x41"} 1` + "\n", "hex escape"},
		{`m{node="unterminated} 1` + "\n", "unterminated quote"},
		{`m{node=bare} 1` + "\n", "unquoted value"},
		{`m{node="a" extra="b"} 1` + "\n", "missing comma"},
		{`m{node="a",node="b"} 1` + "\n", "duplicate label"},
		{`m{1ode="a"} 1` + "\n", "label name starting with digit"},
		{`m{node="a"` + "\n", "unterminated label set"},
		{`m{node="dangling\` + "\n", "dangling escape"},
	}
	for _, c := range bad {
		if err := ValidateExposition(strings.NewReader(c.body)); err == nil {
			t.Errorf("accepted %s:\n%s", c.why, c.body)
		}
	}
}

// TestPromEscape pins the exposition escaping table.
func TestPromEscape(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `"plain"`},
		{`host:9090`, `"host:9090"`},
		{`say "hi"`, `"say \"hi\""`},
		{`a\b`, `"a\\b"`},
		{"two\nlines", `"two\nlines"`},
		{`curly } brace`, `"curly } brace"`},
		{"ünïcode", `"ünïcode"`}, // passes through raw, never \uXXXX
	}
	for _, c := range cases {
		if got := promEscape(c.in); got != c.want {
			t.Errorf("promEscape(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}
