package conformance

import (
	"encoding/json"
	"fmt"
	"io"
)

// QualitySection scores delivered output quality against the package TOQ.
type QualitySection struct {
	// MeanError is the delivered output error across every returned element,
	// scored against the golden corpus's exact outputs.
	MeanError float64 `json:"meanError"`
	TOQ       float64 `json:"toq"`
	Pass      bool    `json:"pass"`
}

// LatencySection holds client-measured request latency percentiles.
type LatencySection struct {
	P50Ms float64 `json:"p50Ms"`
	P95Ms float64 `json:"p95Ms"`
	P99Ms float64 `json:"p99Ms"`
	// SLOMs echoes the package's p99 bound; <= 0 leaves latency unasserted.
	SLOMs float64 `json:"sloMs"`
	Pass  bool    `json:"pass"`
}

// ShedSection reports overload shedding against the package's budget.
type ShedSection struct {
	// Shed counts requests the server degraded to approximate-only output.
	Shed int     `json:"shed"`
	Rate float64 `json:"rate"`
	Max  float64 `json:"max"`
	Pass bool    `json:"pass"`
}

// DriftSection compares the worst post-run drift-monitor state across the
// run's tenants with the package's declared maximum.
type DriftSection struct {
	Worst string `json:"worst"`
	Max   string `json:"max"`
	Pass  bool   `json:"pass"`
}

// Report is the conformance run's machine-readable outcome. Field order is
// fixed by the struct, so rendering is deterministic; for a given package and
// shape the quality section is bit-reproducible as long as no request was
// shed (per-tenant issue order is sequential, so every tenant's tuner walks
// the same trajectory on every run).
type Report struct {
	Package  string `json:"package"`
	Version  string `json:"version"`
	Kernel   string `json:"kernel"`
	Shape    string `json:"shape"`
	Checker  string `json:"checker"`
	Requests int    `json:"requests"`
	Elements int    `json:"elements"`
	// Fixed counts elements recovery re-executed exactly; Errors counts
	// requests that failed outright (non-200 or transport error) — any
	// error fails the run, and FirstError preserves the first failure's
	// detail for the operator.
	Fixed      int    `json:"fixed"`
	Errors     int    `json:"errors"`
	FirstError string `json:"firstError,omitempty"`

	Quality  QualitySection `json:"quality"`
	Latency  LatencySection `json:"latency"`
	Shedding ShedSection    `json:"shedding"`
	Drift    DriftSection   `json:"drift"`

	Pass bool `json:"pass"`
}

// finalize computes the per-section and overall verdicts from the measured
// fields and the echoed bounds.
func (r *Report) finalize() {
	r.Quality.Pass = r.Quality.MeanError <= r.Quality.TOQ
	r.Latency.Pass = r.Latency.SLOMs <= 0 || r.Latency.P99Ms <= r.Latency.SLOMs
	r.Shedding.Pass = r.Shedding.Rate <= r.Shedding.Max
	r.Drift.Pass = driftStateRankOK(r.Drift.Worst, r.Drift.Max)
	r.Pass = r.Errors == 0 && r.Quality.Pass && r.Latency.Pass && r.Shedding.Pass && r.Drift.Pass
}

// driftStateRankOK reports whether worst is no worse than max in the
// ok < drifting < violating order; unknown states fail closed.
func driftStateRankOK(worst, max string) bool {
	w, m := driftRank(worst), driftRank(max)
	return w >= 0 && m >= 0 && w <= m
}

// driftRank mirrors pkg's drift-state ordering without importing it here
// (the runner passes state strings straight from the server).
func driftRank(state string) int {
	switch state {
	case "ok":
		return 0
	case "drifting":
		return 1
	case "violating":
		return 2
	default:
		return -1
	}
}

// WriteJSON renders the report as indented JSON with a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("conformance: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Summary is the one-line human verdict the CLI prints.
func (r *Report) Summary() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	s := fmt.Sprintf("%s %s %s (%s): %d requests, %d elements, mean error %.4f (toq %.4f)",
		verdict, r.Package, r.Version, r.Shape, r.Requests, r.Elements, r.Quality.MeanError, r.Quality.TOQ)
	if r.Latency.SLOMs > 0 {
		s += fmt.Sprintf(", p99 %.2fms (slo %.2fms)", r.Latency.P99Ms, r.Latency.SLOMs)
	} else {
		s += fmt.Sprintf(", p99 %.2fms", r.Latency.P99Ms)
	}
	s += fmt.Sprintf(", shed %.1f%%, drift %s", 100*r.Shedding.Rate, r.Drift.Worst)
	if r.Errors > 0 {
		s += fmt.Sprintf(", %d request errors (first: %s)", r.Errors, r.FirstError)
	}
	return s
}
