package accel

import (
	"math"
	"testing"

	"rumba/internal/exec"
	"rumba/internal/nn"
	"rumba/internal/rng"
)

var _ exec.BatchExecutor = (*Accelerator)(nil)

func batchTestConfig(t *testing.T, features []int) Config {
	t.Helper()
	r := rng.NewNamed("accel/batch/config")
	inputs := [][]float64{{-1, -2, 0, 1}, {2, 3, 1, -1}, {0.5, 0.5, 0.5, 0.5}}
	targets := [][]float64{{0, 5}, {2, -5}, {1, 0}}
	cfg := Config{
		Net:      nn.New(nn.MustTopology("4->6->2"), nn.Sigmoid, nn.Linear, r),
		Scaler:   nn.FitScaler(inputs, targets),
		Features: features,
	}
	return cfg
}

func batchTestInputs(n, dim int) [][]float64 {
	r := rng.NewNamed("accel/batch/inputs")
	ins := make([][]float64, n)
	for i := range ins {
		in := make([]float64, dim)
		for j := range in {
			in[j] = r.Range(-3, 3)
		}
		ins[i] = in
	}
	return ins
}

// TestInvokeMatchesReferenceComposition pins the batch-routed Invoke to the
// plain scalar composition it replaced: project -> ScaleIn -> Forward ->
// UnscaleOut, bit for bit.
func TestInvokeMatchesReferenceComposition(t *testing.T) {
	for _, features := range [][]int{nil, {3, 0, 2, 1}} {
		cfg := batchTestConfig(t, features)
		a, err := New(cfg, 8)
		if err != nil {
			t.Fatal(err)
		}
		dim := 4
		for _, in := range batchTestInputs(16, dim) {
			proj := in
			if features != nil {
				proj = make([]float64, len(features))
				for i, idx := range features {
					proj[i] = in[idx]
				}
			}
			want := cfg.Scaler.UnscaleOut(cfg.Net.Forward(cfg.Scaler.ScaleIn(proj)))
			got := a.Invoke(in)
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("features=%v: out[%d] = %v, reference %v", features, j, got[j], want[j])
				}
			}
		}
	}
}

// TestInvokeBatchMatchesInvoke checks the fused batch path against n
// independent Invoke calls on an identically configured accelerator — same
// outputs bit for bit and the same final activity counters — across the
// float, fixed-point and LUT datapaths.
func TestInvokeBatchMatchesInvoke(t *testing.T) {
	cases := []struct {
		name     string
		features []int
		fixed    bool
		lut      bool
	}{
		{name: "float/all-inputs"},
		{name: "float/projected", features: []int{3, 0, 2, 1}},
		{name: "float/lut", lut: true},
		{name: "fixed", fixed: true},
		{name: "fixed/projected", features: []int{1, 2, 0, 3}, fixed: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := batchTestConfig(t, tc.features)
			mk := func() *Accelerator {
				a, err := New(cfg, 8)
				if err != nil {
					t.Fatal(err)
				}
				if tc.fixed {
					if err := a.SetFixedPoint(nn.FixedFormat{IntBits: 8, FracBits: 10}); err != nil {
						t.Fatal(err)
					}
				}
				a.SetBatchLUT(tc.lut)
				return a
			}
			for _, n := range []int{1, 7, 64} {
				ins := batchTestInputs(n, 4)
				scalar := mk()
				want := make([][]float64, n)
				for i, in := range ins {
					want[i] = scalar.Invoke(in)
				}
				batched := mk()
				got := make([][]float64, n)
				batched.InvokeBatch(got, ins)
				for i := range want {
					for j := range want[i] {
						if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
							t.Fatalf("n=%d: out[%d][%d] = %v, scalar %v", n, i, j, got[i][j], want[i][j])
						}
					}
				}
				bs, ss := batched.Stats(), scalar.Stats()
				if bs.Batches != 1 || bs.MaxBatch != n || ss.Batches != n || ss.MaxBatch != 1 {
					t.Fatalf("n=%d: batch shape counters wrong: batched %+v scalar %+v", n, bs, ss)
				}
				// The energy-relevant counters must agree exactly; the batch
				// shape legitimately differs (one fused launch vs n scalar).
				bs.Batches, bs.MaxBatch, ss.Batches, ss.MaxBatch = 0, 0, 0, 0
				if bs != ss {
					t.Fatalf("n=%d: batch stats %+v != scalar stats %+v", n, bs, ss)
				}
			}
		})
	}
}

// TestInvokeBatchReusesDstCapacity checks the callee resizes dst rows in
// place when capacity suffices (the contract callers rely on for the
// zero-allocation loop) and replaces too-small rows.
func TestInvokeBatchReusesDstCapacity(t *testing.T) {
	a, err := New(batchTestConfig(t, nil), 8)
	if err != nil {
		t.Fatal(err)
	}
	ins := batchTestInputs(3, 4)
	dst := [][]float64{make([]float64, 0, 8), nil, make([]float64, 5)[:1]}
	backing := dst[0][:1]
	a.InvokeBatch(dst, ins)
	for i, row := range dst {
		if len(row) != 2 {
			t.Fatalf("row %d resized to %d, want the output width 2", i, len(row))
		}
	}
	if &dst[0][0] != &backing[0] {
		t.Fatal("row with sufficient capacity must be reused, not reallocated")
	}
}

// TestInvokeBatchAllocs locks in the zero-steady-state-allocation property
// of the fused path with recycled destination rows.
func TestInvokeBatchAllocs(t *testing.T) {
	a, err := New(batchTestConfig(t, []int{0, 1, 2, 3}), 8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	ins := batchTestInputs(n, 4)
	dst := make([][]float64, n)
	a.InvokeBatch(dst, ins) // warm-up: grows scratch and dst rows
	if got := testing.AllocsPerRun(50, func() {
		a.InvokeBatch(dst, ins)
	}); got != 0 {
		t.Fatalf("InvokeBatch allocates %v times per run at steady state, want 0", got)
	}
	if got := testing.AllocsPerRun(50, func() {
		a.Invoke(ins[0])
	}); got != 1 {
		t.Fatalf("Invoke allocates %v times per run, want exactly 1 (the returned vector)", got)
	}
}

// TestInvokeRejectsWidthMismatch: the staged path must fail loudly, not read
// stale scratch, when a caller passes the wrong input width.
func TestInvokeRejectsWidthMismatch(t *testing.T) {
	a, err := New(batchTestConfig(t, nil), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic on input width mismatch")
		}
	}()
	a.Invoke([]float64{1, 2})
}
