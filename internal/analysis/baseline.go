package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline suppression. A baseline file records known findings so that a
// tree with pre-existing debt can still gate on "no NEW findings": rumba-vet
// -baseline vet-baseline.json fails only on findings absent from the file.
//
// Entries are keyed by (analyzer, file, message) — deliberately NOT by line
// number, so unrelated edits that shift a finding up or down the file do
// not break the match. Two identical findings in one file consume two
// baseline entries (the count matters), so fixing one of two duplicated
// findings still surfaces the survivor as suppressed rather than hiding a
// regression.

// BaselineEntry is one accepted finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	// Justification is free text for the human reading the file; it is
	// ignored by matching.
	Justification string `json:"justification,omitempty"`
}

// Baseline is a set of accepted findings with multiplicity.
type Baseline struct {
	counts map[baselineKey]int
	// Entries preserves the raw file contents for round-tripping.
	Entries []BaselineEntry
}

type baselineKey struct {
	analyzer, file, message string
}

func (e BaselineEntry) key() baselineKey {
	return baselineKey{e.Analyzer, e.File, e.Message}
}

// baselineFile is the on-disk shape: versioned so the format can evolve.
type baselineFile struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

const baselineVersion = 1

// LoadBaseline reads a baseline file written by WriteBaseline (or by hand).
func LoadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	if bf.Version != baselineVersion {
		return nil, fmt.Errorf("analysis: baseline %s has version %d, want %d", path, bf.Version, baselineVersion)
	}
	b := &Baseline{counts: map[baselineKey]int{}, Entries: bf.Entries}
	for _, e := range bf.Entries {
		if e.Analyzer == "" || e.File == "" || e.Message == "" {
			return nil, fmt.Errorf("analysis: baseline %s has an entry missing analyzer, file, or message", path)
		}
		b.counts[e.key()]++
	}
	return b, nil
}

// NewBaseline builds a baseline accepting every unsuppressed finding in
// diags (suppressed findings are already acknowledged in source and need
// no baseline entry).
func NewBaseline(diags []Diagnostic) *Baseline {
	b := &Baseline{counts: map[baselineKey]int{}}
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		e := BaselineEntry{Analyzer: d.Analyzer, File: d.File, Message: d.Message}
		b.Entries = append(b.Entries, e)
		b.counts[e.key()]++
	}
	return b
}

// Apply marks findings matched by the baseline as suppressed, consuming
// one entry per match in diagnostic order, and returns the updated slice
// plus the number of stale entries (baseline lines whose finding no longer
// exists — candidates for deletion).
func (b *Baseline) Apply(diags []Diagnostic) ([]Diagnostic, int) {
	remaining := make(map[baselineKey]int, len(b.counts))
	for k, n := range b.counts {
		remaining[k] = n
	}
	for i, d := range diags {
		if d.Suppressed {
			continue
		}
		k := baselineKey{d.Analyzer, d.File, d.Message}
		if remaining[k] > 0 {
			remaining[k]--
			diags[i].Suppressed = true
		}
	}
	stale := 0
	for _, n := range remaining {
		stale += n
	}
	return diags, stale
}

// WriteBaseline renders the baseline deterministically (sorted by file,
// analyzer, message) and writes it to path.
func WriteBaseline(path string, b *Baseline) error {
	entries := append([]BaselineEntry(nil), b.Entries...)
	sort.Slice(entries, func(i, j int) bool {
		a, c := entries[i], entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	out, err := json.MarshalIndent(baselineFile{Version: baselineVersion, Entries: entries}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
