// Command rumba-serve exposes the Rumba pipeline as a multi-tenant JSON API
// over the streaming runtime: a kernel registry loads trained approximators
// plus their error checkers at startup, one live tuner per tenant×kernel
// keeps quality control online across invocations (with JSON
// snapshot/restore across restarts), and an admission controller sheds load
// the Rumba way — degrading to approximate-only output under overload.
//
//	rumba-serve -train sobel -train-n 1200 -epochs 25 -state /tmp/rumba-state.json
//	rumba-serve -bundles ./bundles -addr :8080
//	rumba-serve -packages /var/lib/rumba/packages -addr :8080
//
//	curl -s localhost:8080/v1/invoke -d '{
//	  "tenant": "acme", "kernel": "sobel",
//	  "inputs": [[0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9]]
//	}'
//
// SIGTERM/SIGINT drains: in-flight requests finish, queued requests
// complete, tuner state is snapshotted to -state, and the process exits
// with zero goroutine leaks.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rumba/internal/core"
	"rumba/internal/obs"
	"rumba/internal/server"
	"rumba/internal/tune"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	bundles := flag.String("bundles", "", "directory of rumba-train bundle JSON files to serve")
	packages := flag.String("packages", "", "kernel-package registry directory (rumba-pkg install target); every package is re-validated, corpus replay included, before serving")
	train := flag.String("train", "", "comma-separated benchmark names to train in-process at startup")
	trainN := flag.Int("train-n", 0, "training samples for -train (0 = Table 1 size)")
	epochs := flag.Int("epochs", 0, "NN training epochs for -train (0 = trainer default)")
	state := flag.String("state", "", "JSON snapshot file for per-tenant tuner state (loaded at startup, written on drain)")
	workers := flag.Int("workers", 4, "pipeline workers draining the shared admission queue")
	streamWorkers := flag.Int("stream-workers", 1, "recovery goroutines per request stream")
	queueCap := flag.Int("queue-cap", 64, "shared admission queue capacity")
	maxInFlight := flag.Int("max-inflight", 0, "in-flight request window (0 = queue-cap + workers); beyond it requests are shed, not queued")
	invocation := flag.Int("invocation", 512, "tuner invocation granularity in elements (carried across requests per tenant)")
	recoveryDeadline := flag.Duration("recovery-deadline", 50*time.Millisecond, "per-element exact re-execution deadline (0 disables)")
	batch := flag.Int("batch", 0, "detection batch size per request pipeline (0 = 64, 1 = per-element); outputs are identical at every size")
	mode := flag.String("mode", "toq", "default tuner mode for new tenants: toq, energy, quality")
	target := flag.Float64("target", 0.10, "default tuner target for new tenants")
	drain := flag.Duration("drain", 30*time.Second, "drain timeout on SIGTERM")
	expvarFlag := flag.Bool("expvar", false, "additionally publish the metrics registry at /debug/vars")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof at /debug/pprof/ (off by default; profiling endpoints reveal stacks and heap contents)")
	traceCapacity := flag.Int("trace-capacity", 0, "flight-recorder ring capacity in traces; > 0 enables request tracing and /debug/rumba/traces (0 = disabled, zero hot-path overhead)")
	traceSample := flag.Int("trace-sample", 1, "tail-sample 1 in N healthy traces into the recorder (shed/degraded/violating traces are always kept; <= 1 keeps all)")
	driftWindow := flag.Int("drift-window", 0, "quality-drift monitor window in delivered elements (0 = 256)")
	driftK := flag.Int("drift-k", 0, "drift alert fires when K of the last N windows breach the tenant target (0 = 3)")
	driftN := flag.Int("drift-n", 0, "window count the drift alert looks back over (0 = 5)")
	frontierPath := flag.String("frontier", "", "rumba-tune frontier artifact (frontier.json): new tenants are served at the cheapest Pareto point meeting their quality target and the kernel's p99 SLO")
	dryRun := flag.Bool("dry-run", false, "validate the registry (and -frontier artifact, if any) then exit without serving")
	historyInterval := flag.Duration("history-interval", 0, "metrics history sampling period; > 0 records periodic registry snapshots served at /v1/metrics/history (0 = disabled)")
	historyCapacity := flag.Int("history-capacity", 0, "metrics history ring capacity in snapshots (0 = 240; at 15s sampling that is one hour)")
	sloEnabled := flag.Bool("slo", false, "enable per-tenant SLO burn-rate alerting (/v1/alerts, slo.* gauges, alert state in tenant health)")
	sloFast := flag.Duration("slo-fast", 0, "fast burn window (0 = 5m); both windows must burn for an alert to fire")
	sloSlow := flag.Duration("slo-slow", 0, "slow burn window (0 = 1h)")
	sloPageBurn := flag.Float64("slo-page-burn", 0, "burn-rate multiple of budget that pages (0 = 14.4 — a 30d budget gone in ~2d)")
	sloTicketBurn := flag.Float64("slo-ticket-burn", 0, "burn-rate multiple that opens a ticket (0 = 3)")
	sloTOQBudget := flag.Float64("slo-toq-budget", 0, "error budget: tolerated fraction of delivered elements missing their TOQ target (0 = 0.05)")
	sloLatencyBudget := flag.Float64("slo-latency-budget", 0, "error budget: tolerated fraction of stream chunks over the package p99 SLO (0 = 0.01)")
	sloShedBudget := flag.Float64("slo-shed-budget", 0, "error budget: tolerated fraction of requests shed by admission control (0 = 0.01)")
	flag.Parse()

	slo := server.SLOOptions{
		Enabled:         *sloEnabled,
		FastWindow:      *sloFast,
		SlowWindow:      *sloSlow,
		PageBurn:        *sloPageBurn,
		TicketBurn:      *sloTicketBurn,
		TOQMissBudget:   *sloTOQBudget,
		SlowChunkBudget: *sloLatencyBudget,
		ShedBudget:      *sloShedBudget,
	}
	if err := run(*addr, *bundles, *packages, *train, *state, *mode, *frontierPath,
		*trainN, *epochs, *workers, *streamWorkers, *queueCap, *maxInFlight, *invocation, *batch,
		*target, *recoveryDeadline, *drain, *expvarFlag, *pprofFlag, *dryRun,
		*traceCapacity, *traceSample, server.DriftConfig{Window: *driftWindow, K: *driftK, N: *driftN},
		slo, *historyInterval, *historyCapacity); err != nil {
		fmt.Fprintln(os.Stderr, "rumba-serve:", err)
		os.Exit(1)
	}
}

func run(addr, bundles, packages, train, state, mode, frontierPath string,
	trainN, epochs, workers, streamWorkers, queueCap, maxInFlight, invocation, batch int,
	target float64, recoveryDeadline, drain time.Duration, expvarFlag, pprofFlag, dryRun bool,
	traceCapacity, traceSample int, drift server.DriftConfig,
	slo server.SLOOptions, historyInterval time.Duration, historyCapacity int) error {
	reg := server.NewKernelRegistry()
	if bundles != "" {
		n, err := reg.LoadBundleDir(bundles)
		if err != nil {
			return err
		}
		fmt.Printf("== registry: loaded %d bundle(s) from %s\n", n, bundles)
	}
	if packages != "" {
		n, err := reg.LoadPackageDir(packages)
		if err != nil {
			return err
		}
		fmt.Printf("== registry: loaded %d validated package(s) from %s\n", n, packages)
	}
	for _, name := range splitList(train) {
		fmt.Printf("== registry: training %s in-process\n", name)
		k, err := server.TrainKernel(name, trainN, epochs)
		if err != nil {
			return err
		}
		if err := reg.Add(k); err != nil {
			return err
		}
	}
	if len(reg.Names()) == 0 {
		return errors.New("no kernels to serve (use -packages, -bundles and/or -train)")
	}

	var frontier *tune.Frontier
	if frontierPath != "" {
		var err error
		if frontier, err = tune.LoadFrontier(frontierPath); err != nil {
			return err
		}
		names := frontier.KernelNames()
		served := 0
		for _, n := range names {
			if _, ok := reg.Get(n); ok {
				served++
			}
		}
		fmt.Printf("== frontier: %s covers %d kernel(s), %d served here (checksum %s)\n",
			frontierPath, len(names), served, frontier.Checksum[:12])
	}
	if dryRun {
		fmt.Printf("== dry-run: registry and frontier valid, %d kernel(s) servable\n", len(reg.Names()))
		return nil
	}

	var tm core.TunerMode
	switch mode {
	case "toq":
		tm = core.ModeTOQ
	case "energy":
		tm = core.ModeEnergy
	case "quality":
		tm = core.ModeQuality
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	metrics := obs.NewRegistry()
	srv, err := server.New(reg, server.Options{
		Addr:             addr,
		PipelineWorkers:  workers,
		StreamWorkers:    streamWorkers,
		QueueCap:         queueCap,
		MaxInFlight:      maxInFlight,
		InvocationSize:   invocation,
		RecoveryDeadline: recoveryDeadline,
		BatchSize:        batch,
		EnablePprof:      pprofFlag,
		Defaults:         server.TunerDefaults{Mode: tm, Target: target},
		StatePath:        state,
		DrainTimeout:     drain,
		Metrics:          metrics,
		TraceCapacity:    traceCapacity,
		TraceSampleEvery: traceSample,
		Drift:            drift,
		Frontier:         frontier,
		SLO:              slo,
		HistoryInterval:  historyInterval,
		HistoryCapacity:  historyCapacity,
	})
	if err != nil {
		return err
	}
	if slo.Enabled {
		fmt.Println("== slo: burn-rate engine on, alerts at /v1/alerts, slo.* gauges in /metrics")
	}
	if historyInterval > 0 {
		fmt.Printf("== history: sampling metrics every %v into /v1/metrics/history\n", historyInterval)
	}
	if srv.Restored > 0 || srv.RestoreSkipped > 0 {
		fmt.Printf("== state: restored %d tenant tuner(s), skipped %d from %s\n",
			srv.Restored, srv.RestoreSkipped, state)
	}
	if expvarFlag {
		obs.Publish("rumba", metrics)
	}
	if pprofFlag {
		fmt.Println("== pprof: profiling endpoints exposed at /debug/pprof/")
	}
	if traceCapacity > 0 {
		fmt.Printf("== trace: flight recorder on, %d traces/ring, 1-in-%d tail sampling, dump at /debug/rumba/traces\n",
			traceCapacity, max(traceSample, 1))
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	fmt.Printf("== serving %s on http://%s (POST /v1/invoke; /healthz /readyz /metrics)\n",
		strings.Join(reg.Names(), ", "), addr)
	err = srv.Run(ctx)
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	if err == nil {
		fmt.Println("== drained cleanly")
		if state != "" {
			fmt.Printf("== state: tuner snapshot written to %s\n", state)
		}
	}
	return err
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
