// Package imageutil is the image substrate of the reproduction. The paper's
// image benchmarks (jpeg, sobel, kmeans) run on 220x200 training and 512x512
// test photographs, and the mosaic case study (Figure 3) runs on 800 flower
// photographs; neither dataset is available offline, so this package
// procedurally generates deterministic images with the statistics that drive
// those experiments — locally smooth regions, hard edges, and texture — plus
// grayscale helpers and PGM I/O for inspecting outputs.
package imageutil

import (
	"fmt"
	"io"
	"math"

	"rumba/internal/rng"
)

// Gray is a grayscale image with float64 pixels in [0, 255].
type Gray struct {
	W, H int
	Pix  []float64 // row-major, len == W*H
}

// NewGray allocates a black image.
func NewGray(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imageutil: invalid size %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the pixel at (x, y) with edge clamping, so 3x3 stencils can be
// applied uniformly across the border.
func (g *Gray) At(x, y int) float64 {
	if x < 0 {
		x = 0
	}
	if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= g.H {
		y = g.H - 1
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y); out-of-range coordinates panic.
func (g *Gray) Set(x, y int, v float64) {
	if x < 0 || x >= g.W || y < 0 || y >= g.H {
		panic(fmt.Sprintf("imageutil: Set(%d,%d) out of %dx%d", x, y, g.W, g.H))
	}
	g.Pix[y*g.W+x] = v
}

// Clone returns a deep copy.
func (g *Gray) Clone() *Gray {
	c := NewGray(g.W, g.H)
	copy(c.Pix, g.Pix)
	return c
}

// Clamp255 limits v to the valid pixel range.
//rumba:pure
func Clamp255(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// MeanBrightness returns the average pixel value.
func (g *Gray) MeanBrightness() float64 {
	var s float64
	for _, p := range g.Pix {
		s += p
	}
	return s / float64(len(g.Pix))
}

// MeanBrightnessPerforated computes the average brightness with loop
// perforation: only every stride-th pixel is visited, starting at offset.
// This is the approximation applied to the mosaic application's first phase
// in Section 2.1 (Challenge II).
func (g *Gray) MeanBrightnessPerforated(stride, offset int) float64 {
	if stride <= 0 {
		panic("imageutil: perforation stride must be positive")
	}
	var s float64
	n := 0
	for i := offset % stride; i < len(g.Pix); i += stride {
		s += g.Pix[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Synthetic generates a deterministic "photograph-like" grayscale image:
// a smooth illumination gradient, several soft blobs (flowers/objects),
// hard-edged shapes and value noise. seed selects the scene.
func Synthetic(w, h int, seed string) *Gray {
	r := rng.NewNamed("imageutil/" + seed)
	g := NewGray(w, h)

	// Background: a smooth diagonal illumination gradient.
	base := r.Range(40, 140)
	gx := r.Range(-60, 60)
	gy := r.Range(-60, 60)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := base + gx*float64(x)/float64(w) + gy*float64(y)/float64(h)
			g.Pix[y*w+x] = v
		}
	}

	// Soft Gaussian blobs: bright or dark round features.
	blobs := 4 + r.Intn(6)
	for b := 0; b < blobs; b++ {
		cx := r.Range(0, float64(w))
		cy := r.Range(0, float64(h))
		rad := r.Range(float64(w)/16, float64(w)/4)
		amp := r.Range(-90, 110)
		minX, maxX := int(cx-3*rad), int(cx+3*rad)
		minY, maxY := int(cy-3*rad), int(cy+3*rad)
		for y := max(0, minY); y < min(h, maxY); y++ {
			for x := max(0, minX); x < min(w, maxX); x++ {
				dx, dy := float64(x)-cx, float64(y)-cy
				g.Pix[y*w+x] += amp * math.Exp(-(dx*dx+dy*dy)/(2*rad*rad))
			}
		}
	}

	// Hard-edged rectangles: the step discontinuities Sobel responds to.
	rects := 2 + r.Intn(4)
	for b := 0; b < rects; b++ {
		x0 := r.Intn(w)
		y0 := r.Intn(h)
		rw := 4 + r.Intn(w/4)
		rh := 4 + r.Intn(h/4)
		amp := r.Range(-70, 70)
		for y := y0; y < min(h, y0+rh); y++ {
			for x := x0; x < min(w, x0+rw); x++ {
				g.Pix[y*w+x] += amp
			}
		}
	}

	// Texture: oriented high-frequency weaves plus value noise. Real
	// photographs carry substantial high-frequency content, and it is this
	// content that makes the jpeg and sobel kernels hard to approximate
	// (the paper's unchecked errors on these benchmarks are large). The
	// weave parameters vary widely between scenes, so a network trained on
	// one image meets genuinely different statistics on another — the
	// input-dependence the paper's Challenge II is about.
	type weave struct{ fx, fy, amp, px, py float64 }
	weaves := make([]weave, 2+r.Intn(3))
	for i := range weaves {
		weaves[i] = weave{
			fx:  r.Range(0.15, 3.0),
			fy:  r.Range(0.15, 3.0),
			amp: r.Range(5, 45),
			px:  r.Range(0, 2*math.Pi),
			py:  r.Range(0, 2*math.Pi),
		}
	}
	noise := r.Range(6, 24)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var tex float64
			for _, wv := range weaves {
				tex += wv.amp * math.Sin(wv.fx*float64(x)+wv.px) * math.Cos(wv.fy*float64(y)+wv.py)
			}
			g.Pix[y*w+x] = Clamp255(g.Pix[y*w+x] + tex + r.Norm(0, noise))
		}
	}
	return g
}

// SyntheticFlower generates one image of the Figure 3 "flowers" set. The
// images deliberately vary in brightness *structure* (how concentrated the
// bright petals are), because that structure is what makes the perforated
// mean-brightness pass input-dependent.
func SyntheticFlower(w, h int, index int) *Gray {
	r := rng.NewNamed(fmt.Sprintf("imageutil/flower/%d", index))
	g := NewGray(w, h)
	bg := r.Range(20, 90)
	for i := range g.Pix {
		g.Pix[i] = bg
	}
	// A flower: petals around a center, their count/contrast varies a lot
	// between images, producing the heavy spread of Figure 3.
	cx, cy := float64(w)/2+r.Range(-10, 10), float64(h)/2+r.Range(-10, 10)
	petals := 3 + r.Intn(9)
	petalRad := r.Range(float64(w)/12, float64(w)/5)
	dist := r.Range(float64(w)/8, float64(w)/3.2)
	amp := r.Range(60, 190)
	for p := 0; p < petals; p++ {
		ang := 2 * math.Pi * float64(p) / float64(petals)
		px := cx + dist*math.Cos(ang)
		py := cy + dist*math.Sin(ang)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				dx, dy := float64(x)-px, float64(y)-py
				d2 := dx*dx + dy*dy
				if d2 < 9*petalRad*petalRad {
					g.Pix[y*w+x] += amp * math.Exp(-d2/(2*petalRad*petalRad))
				}
			}
		}
	}
	// Strong horizontal banding in some images: this is what breaks
	// strided perforation for a subset of inputs (the Figure 3 outliers).
	if r.Bool(0.7) {
		period := 2 + r.Intn(3)
		bandAmp := r.Range(12, 55)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if (y*w+x)%period == 0 {
					g.Pix[y*w+x] += bandAmp
				}
			}
		}
	}
	for i := range g.Pix {
		g.Pix[i] = Clamp255(g.Pix[i] + r.Norm(0, 4))
	}
	return g
}

// MeanAbsDiff returns the mean absolute pixel difference between two images
// of identical shape.
func MeanAbsDiff(a, b *Gray) float64 {
	if a.W != b.W || a.H != b.H {
		panic("imageutil: MeanAbsDiff shape mismatch")
	}
	var s float64
	for i := range a.Pix {
		s += math.Abs(a.Pix[i] - b.Pix[i])
	}
	return s / float64(len(a.Pix))
}

// WritePGM writes the image as a binary 8-bit PGM (P5) file, the simplest
// stdlib-only way to eyeball outputs.
func (g *Gray) WritePGM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return err
	}
	buf := make([]byte, len(g.Pix))
	for i, p := range g.Pix {
		buf[i] = byte(Clamp255(math.Round(p)))
	}
	_, err := w.Write(buf)
	return err
}

// ReadPGM parses a binary 8-bit PGM (P5) stream produced by WritePGM.
func ReadPGM(r io.Reader) (*Gray, error) {
	var magic string
	var w, h, maxv int
	if _, err := fmt.Fscan(r, &magic, &w, &h, &maxv); err != nil {
		return nil, fmt.Errorf("imageutil: bad PGM header: %w", err)
	}
	if magic != "P5" || maxv != 255 || w <= 0 || h <= 0 {
		return nil, fmt.Errorf("imageutil: unsupported PGM (magic=%q max=%d)", magic, maxv)
	}
	// Bound the allocation before trusting the header: a hostile or corrupt
	// header must not drive make() with an overflowing or absurd size.
	const maxDim = 1 << 14
	if w > maxDim || h > maxDim {
		return nil, fmt.Errorf("imageutil: PGM dimensions %dx%d exceed the %dx%d limit", w, h, maxDim, maxDim)
	}
	// Single whitespace byte separates header from data.
	var sep [1]byte
	if _, err := io.ReadFull(r, sep[:]); err != nil {
		return nil, err
	}
	buf := make([]byte, w*h)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	g := NewGray(w, h)
	for i, b := range buf {
		g.Pix[i] = float64(b)
	}
	return g, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
