package trainer

import (
	"math"
	"testing"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/nn"
	"rumba/internal/quality"
)

// trainSmall trains the given benchmark's Rumba accelerator on a reduced
// dataset with few epochs — enough to test the plumbing, not accuracy.
func trainSmall(t *testing.T, name string, n int) (*bench.Spec, accel.Config, nn.Dataset) {
	t.Helper()
	spec, err := bench.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	train := spec.GenTrain(n)
	cfg := DefaultAccelTrainConfig(name)
	cfg.NN.Epochs = 15
	acfg, err := TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return spec, acfg, train
}

func TestTrainAcceleratorProducesUsableConfig(t *testing.T) {
	spec, acfg, _ := trainSmall(t, "sobel", 400)
	acc, err := accel.New(acfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	test := spec.GenTest(50)
	out := acc.Invoke(test.Inputs[0])
	if len(out) != spec.OutDim {
		t.Fatalf("output dim %d, want %d", len(out), spec.OutDim)
	}
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite accelerator output %v", v)
		}
	}
}

func TestTrainAcceleratorLearnsSomething(t *testing.T) {
	// A trained inversek2j accelerator must beat a constant predictor.
	spec, err := bench.Get("inversek2j")
	if err != nil {
		t.Fatal(err)
	}
	train := spec.GenTrain(2500)
	cfg := DefaultAccelTrainConfig("inversek2j")
	cfg.NN.Epochs = 60
	acfg, err := TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := accel.New(acfg, 0)
	test := spec.GenTest(200)
	var accErr float64
	for i := range test.Inputs {
		out := acc.Invoke(test.Inputs[i])
		accErr += quality.ElementError(spec.Metric, test.Targets[i], out, spec.Scale)
	}
	accErr /= float64(test.Len())
	if accErr > 0.5 {
		t.Fatalf("trained accelerator error %v is no better than noise", accErr)
	}
}

func TestTrainAcceleratorSubsamples(t *testing.T) {
	spec, _ := bench.Get("sobel")
	train := spec.GenTrain(1000)
	cfg := DefaultAccelTrainConfig("sobel")
	cfg.NN.Epochs = 2
	cfg.MaxTrainSamples = 100 // must not error on subsampled sets
	if _, err := TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTrainAcceleratorFeatureProjection(t *testing.T) {
	// blackscholes trains a 3-input network from 6-input kernel data.
	spec, acfg, _ := trainSmall(t, "blackscholes", 400)
	if got := acfg.Net.Topo.Inputs(); got != 3 {
		t.Fatalf("network inputs = %d, want 3", got)
	}
	if len(acfg.Features) != 3 {
		t.Fatalf("features = %v", acfg.Features)
	}
	acc, _ := accel.New(acfg, 0)
	out := acc.Invoke(spec.GenTest(1).Inputs[0])
	if len(out) != 1 {
		t.Fatalf("output dim = %d", len(out))
	}
}

func TestObserveMeasuresErrors(t *testing.T) {
	spec, acfg, train := trainSmall(t, "fft", 300)
	acc, _ := accel.New(acfg, 0)
	obs := Observe(spec, acc, train)
	if len(obs.Errors) != train.Len() || len(obs.Approx) != train.Len() {
		t.Fatalf("observation sizes %d/%d", len(obs.Errors), len(obs.Approx))
	}
	for i, e := range obs.Errors {
		if e < 0 || math.IsNaN(e) {
			t.Fatalf("element %d error %v invalid", i, e)
		}
	}
}

func TestTrainPredictorsProducesAllThree(t *testing.T) {
	spec, acfg, train := trainSmall(t, "inversek2j", 600)
	acc, _ := accel.New(acfg, 0)
	obs := Observe(spec, acc, train)
	ps, err := TrainPredictors(spec, train, obs)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Linear == nil || ps.Tree == nil || ps.EMA == nil {
		t.Fatal("missing predictor")
	}
	// Each predictor must produce finite non-negative estimates.
	for i := 0; i < 20; i++ {
		for _, p := range []interface {
			PredictError(in, out []float64) float64
		}{ps.Linear, ps.Tree, ps.EMA} {
			e := p.PredictError(train.Inputs[i], obs.Approx[i])
			if e < 0 || math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("predictor estimate %v invalid", e)
			}
		}
	}
}

func TestTrainPredictorsRejectsMismatch(t *testing.T) {
	spec, _, train := trainSmall(t, "fft", 100)
	if _, err := TrainPredictors(spec, train, Observation{Errors: []float64{1}}); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestTrainedPredictorsBeatChance(t *testing.T) {
	// On inversek2j the tree predictor's ranking of test elements must
	// correlate with the true errors: the top predicted decile must have a
	// higher mean true error than the bottom decile.
	spec, acfg, train := trainSmall(t, "inversek2j", 1500)
	acc, _ := accel.New(acfg, 0)
	obs := Observe(spec, acc, train)
	ps, err := TrainPredictors(spec, train, obs)
	if err != nil {
		t.Fatal(err)
	}
	test := spec.GenTest(600)
	testObs := Observe(spec, acc, test)
	pairs := make([]predPair, test.Len())
	for i := range test.Inputs {
		pairs[i] = predPair{ps.Tree.PredictError(test.Inputs[i], testObs.Approx[i]), testObs.Errors[i]}
	}
	// Compare mean actual error of the top vs bottom predicted halves.
	var hi, lo float64
	var nHi, nLo int
	med := medianPred(pairs)
	for _, p := range pairs {
		if p.pred > med {
			hi += p.actual
			nHi++
		} else {
			lo += p.actual
			nLo++
		}
	}
	if nHi == 0 || nLo == 0 {
		t.Skip("degenerate prediction split")
	}
	if hi/float64(nHi) <= lo/float64(nLo) {
		t.Fatalf("tree predictor uninformative: hi=%v lo=%v", hi/float64(nHi), lo/float64(nLo))
	}
}

type predPair struct{ pred, actual float64 }

func medianPred(pairs []predPair) float64 {
	vals := make([]float64, len(pairs))
	for i, p := range pairs {
		vals[i] = p.pred
	}
	// Insertion sort: fine for test sizes.
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[len(vals)/2]
}

func TestSearchTopologyPrefersSmallNetworks(t *testing.T) {
	spec, _ := bench.Get("fft")
	train := spec.GenTrain(600)
	cfg := DefaultAccelTrainConfig("fft")
	cfg.NN.Epochs = 30
	best, all, err := SearchTopology(spec, train, []int{2, 4}, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 { // 2 one-layer + 4 two-layer candidates
		t.Fatalf("candidates = %d, want 6", len(all))
	}
	if best.Error > 0.5 {
		t.Fatalf("no acceptable topology found, best error %v", best.Error)
	}
	// The accepted topology must be the cheapest acceptable one.
	for _, r := range all {
		if r.Error <= 0.5 && r.MACs < best.MACs {
			t.Fatalf("search skipped a cheaper acceptable topology: %v (%d MACs) vs best %v (%d)",
				r.Topo, r.MACs, best.Topo, best.MACs)
		}
	}
}

func TestSearchTopologyTooSmallDataset(t *testing.T) {
	spec, _ := bench.Get("fft")
	train := spec.GenTrain(1)
	if _, _, err := SearchTopology(spec, train, []int{2}, 0.5, DefaultAccelTrainConfig("fft")); err == nil {
		t.Fatal("expected error for tiny dataset")
	}
}

func TestSelectCheckerPicksAWinner(t *testing.T) {
	spec, acfg, train := trainSmall(t, "inversek2j", 1500)
	acc, _ := accel.New(acfg, 0)
	obs := Observe(spec, acc, train)
	ps, err := TrainPredictors(spec, train, obs)
	if err != nil {
		t.Fatal(err)
	}
	p, name := SelectChecker(spec, train, obs, ps, 0.10)
	if p == nil || name == "" {
		t.Fatal("no checker selected")
	}
	switch name {
	case "treeErrors", "linearErrors", "EMA":
	default:
		t.Fatalf("unexpected winner %q", name)
	}
}

func TestSelectCheckerTinyDatasetFallsBack(t *testing.T) {
	spec, acfg, train := trainSmall(t, "fft", 100)
	acc, _ := accel.New(acfg, 0)
	obs := Observe(spec, acc, train)
	ps, err := TrainPredictors(spec, train, obs)
	if err != nil {
		t.Fatal(err)
	}
	tiny := trainer_firstN(train, 1)
	tinyObs := Observation{Approx: obs.Approx[:1], Errors: obs.Errors[:1]}
	p, name := SelectChecker(spec, tiny, tinyObs, ps, 0.10)
	if p != ps.Tree || name != "treeErrors" {
		t.Fatalf("tiny dataset must fall back to the tree, got %q", name)
	}
}

// trainer_firstN slices a dataset (test helper).
func trainer_firstN(d nn.Dataset, n int) nn.Dataset {
	return nn.Dataset{Inputs: d.Inputs[:n], Targets: d.Targets[:n]}
}
