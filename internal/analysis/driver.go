package analysis

import (
	"encoding/json"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Module is the unit the driver analyses: a set of type-checked packages
// plus the module-wide facts the analyzers share (purity fixpoint, kernel
// sink sites, suppression directives).
type Module struct {
	Fset     *token.FileSet
	Root     string // module root dir ("" for fixtures)
	Packages []*Package

	infos map[*types.Func]*FuncInfo
	// fresh is the returns-fresh fact per module function (fresh.go).
	fresh      map[*types.Func]bool
	trusted    trustMatcher
	directives *directiveIndex
	// sinks are the kernel entry-point sites (kernelsig facts).
	sinks []sinkSite
	// kernelClosure holds every module function that re-execution can
	// reach: concrete kernels handed to sinks, declared-pure functions,
	// and their transitive module callees.
	kernelClosure map[*types.Func]bool

	// allocFree is the hotpath analyzer's allocation-free fixpoint, and
	// allocScans its memoized per-function allocation-site scans (both
	// computed lazily on first use).
	allocFree  map[*types.Func]bool
	allocScans map[*types.Func]*allocScan

	// taint holds the approxflow analyzer's interprocedural summaries
	// (computed lazily on first use).
	taint *taintFacts
}

// FuncInfo returns the purity record for a function object, if the
// function was declared (with a body) in the module.
func (m *Module) FuncInfo(obj *types.Func) (*FuncInfo, bool) {
	fi, ok := m.infos[obj]
	return fi, ok
}

// FuncsIn returns the analysed functions declared in pkg, in source order.
func (m *Module) FuncsIn(pkg *Package) []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range m.infos {
		if fi.Pkg == pkg {
			out = append(out, fi)
		}
	}
	// Map iteration order is random; report order must not be.
	sortFuncInfos(out)
	return out
}

func sortFuncInfos(fis []*FuncInfo) {
	for i := 1; i < len(fis); i++ {
		for j := i; j > 0 && fis[j].Decl.Pos() < fis[j-1].Decl.Pos(); j-- {
			fis[j], fis[j-1] = fis[j-1], fis[j]
		}
	}
}

// InKernelClosure reports whether re-execution can reach obj.
func (m *Module) InKernelClosure(obj *types.Func) bool { return m.kernelClosure[obj] }

// analyzerRegistry is populated in init (not a var initializer) because the
// directive analyzer's Run consults the registry for valid //rumba:allow
// targets, which would otherwise be an initialization cycle.
var analyzerRegistry []*Analyzer

func init() {
	analyzerRegistry = []*Analyzer{
		AnalyzerPurity,
		AnalyzerDeterminism,
		AnalyzerFloatCmp,
		AnalyzerKernelSig,
		AnalyzerConcurrency,
		AnalyzerApproxFlow,
		AnalyzerHotpath,
		AnalyzerDirective,
	}
}

// Analyzers returns the full Rumba suite in reporting order.
func Analyzers() []*Analyzer {
	return analyzerRegistry
}

// AnalyzerByName resolves one analyzer.
func AnalyzerByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// BuildModule computes the shared fact base over pkgs. trusted lists extra
// external call targets asserted pure ("pkg.Func" or "import/path.Func").
func BuildModule(fset *token.FileSet, root string, pkgs []*Package, trusted ...string) *Module {
	m := &Module{
		Fset:     fset,
		Root:     root,
		Packages: pkgs,
	}
	m.trusted = trustMatcher(trusted)
	m.infos, m.fresh = funcFacts(pkgs, m.trusted)
	m.directives = buildDirectiveIndex(fset, pkgs)
	m.sinks = findSinkSites(m)
	m.kernelClosure = buildKernelClosure(m)
	return m
}

// buildKernelClosure seeds from declared-pure functions and concrete
// kernels at sink sites, then closes over module calls.
func buildKernelClosure(m *Module) map[*types.Func]bool {
	closure := map[*types.Func]bool{}
	var queue []*types.Func
	add := func(obj *types.Func) {
		if obj != nil && !closure[obj] {
			if _, inModule := m.infos[obj]; inModule {
				closure[obj] = true
				queue = append(queue, obj)
			}
		}
	}
	for obj, fi := range m.infos {
		if fi.DeclaredPure {
			add(obj)
		}
	}
	for _, site := range m.sinks {
		add(site.fn)
		if site.litInfo != nil {
			for callee := range site.litInfo.Calls {
				add(callee)
			}
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		for callee := range m.infos[obj].Calls {
			add(callee)
		}
	}
	return closure
}

// Run executes the given analyzers (nil = the full suite) over every
// package of the module and returns the findings sorted by position, with
// //rumba:allow suppressions applied. File names are reported relative to
// the module root.
func (m *Module) Run(analyzers ...*Analyzer) []Diagnostic {
	if len(analyzers) == 0 {
		analyzers = Analyzers()
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range m.Packages {
			pass := &Pass{
				Analyzer: a,
				Module:   m,
				Pkg:      pkg,
				report: func(d Diagnostic) {
					d.Suppressed = m.directives.suppresses(d)
					diags = append(diags, d)
				},
			}
			a.Run(pass)
		}
	}
	if m.Root != "" {
		for i := range diags {
			if rel, err := filepath.Rel(m.Root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
				diags[i].File = filepath.ToSlash(rel)
			}
		}
	}
	sortDiagnostics(diags)
	return diags
}

// FailCount returns how many unsuppressed findings are at or above the
// given severity.
func FailCount(diags []Diagnostic, failOn Severity) int {
	n := 0
	for _, d := range diags {
		if !d.Suppressed && d.Severity >= failOn {
			n++
		}
	}
	return n
}

// JSONReport is the machine-readable form rumba-vet -json emits.
type JSONReport struct {
	Analyzers   []string     `json:"analyzers"`
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Fail is the number of unsuppressed findings at or above the
	// requested severity.
	Fail int `json:"fail"`
}

// MarshalJSONReport renders the report with stable formatting.
func MarshalJSONReport(analyzers []*Analyzer, diags []Diagnostic, failOn Severity) ([]byte, error) {
	rep := JSONReport{Diagnostics: diags, Fail: FailCount(diags, failOn)}
	if rep.Diagnostics == nil {
		rep.Diagnostics = []Diagnostic{}
	}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, a.Name)
	}
	return json.MarshalIndent(rep, "", "  ")
}
