package trace

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"time"
)

// This file is the cross-node half of the tracing layer: a W3C-traceparent-
// style wire format that lets the cluster router and its nodes agree on one
// trace identity per routed request. The router mints a 16-byte trace ID at
// the edge, stamps every forward (and failover) attempt's span into an
// X-Rumba-Traceparent header, and the serving node adopts both IDs for its
// own root span — so the router's stitch endpoint can later reassemble the
// hop-by-hop spans into one tree without any shared storage.
//
// The format mirrors W3C trace-context (version "00", lowercase hex,
// sampled flag "01") but rides a private header: the router's span IDs are
// trace-local small integers widened to 16 hex digits, not random 8-byte
// IDs, and nothing between Rumba processes speaks standard traceparent.

// TraceparentHeader carries the trace identity across forward hops.
const TraceparentHeader = "X-Rumba-Traceparent"

// TraceHeader is the response header naming the trace a request was recorded
// under (set by both the router and the nodes when tracing is enabled), so a
// client — or an operator holding a failed curl — can go straight to
// /debug/rumba/traces/{traceID}.
const TraceHeader = "X-Rumba-Trace"

// idEntropy is the per-process half of every minted trace ID: 8 random bytes
// rendered as 16 hex digits. Two processes minting trace IDs concurrently
// (router and an edge-exposed node) cannot collide on the sequence number
// alone; the entropy prefix makes the full 32-hex ID unique across the
// cluster for any realistic lifetime.
var idEntropy = func() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively a broken platform; degrade to a
		// time-derived prefix rather than refusing to trace.
		binary.BigEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b[:])
}()

// mintTraceID builds the 32-hex trace ID for local sequence number seq.
func mintTraceID(seq uint64) string {
	return idEntropy + fmt.Sprintf("%016x", seq)
}

// wireSpanID widens a trace-local span ID to the 16-hex wire spelling used
// in traceparent headers.
func wireSpanID(id int) string {
	return fmt.Sprintf("%016x", uint64(id))
}

// WireSpanID widens a snapshot span ID to its 16-hex wire spelling — the
// spelling Snapshot.RemoteParent records — so the cluster stitcher can match
// a node trace's adopted parent back to the forwarding hop's span.
func WireSpanID(id int) string { return wireSpanID(id) }

// isHex reports whether s is exactly n lowercase hex digits.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// FormatTraceparent renders the header value "00-<traceID>-<parentSpanID>-01".
// Both IDs must already be lowercase hex of the wire width (32 and 16).
func FormatTraceparent(traceID, parentSpanID string) string {
	return "00-" + traceID + "-" + parentSpanID + "-01"
}

// ParseTraceparent splits a header value minted by FormatTraceparent.
// Unknown versions, malformed fields and the all-zero IDs the W3C spec
// forbids are rejected with ok == false; callers then mint a fresh trace
// instead of adopting garbage.
func ParseTraceparent(v string) (traceID, parentSpanID string, ok bool) {
	// "00-" + 32 + "-" + 16 + "-01" = 55 bytes; checking length first keeps
	// the reject path allocation-free for arbitrary junk headers.
	if len(v) != 55 || v[0] != '0' || v[1] != '0' || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return "", "", false
	}
	traceID, parentSpanID = v[3:35], v[36:52]
	if !isHex(traceID, 32) || !isHex(parentSpanID, 16) {
		return "", "", false
	}
	if traceID == "00000000000000000000000000000000" || parentSpanID == "0000000000000000" {
		return "", "", false
	}
	if v[53] != '0' || (v[54] != '0' && v[54] != '1') {
		return "", "", false
	}
	return traceID, parentSpanID, true
}

// Traceparent renders the header value naming this span as the remote
// parent — what the router stamps on a forward attempt so the downstream
// node's root span links under exactly this hop. The zero ref returns ""
// (nothing to propagate), so the disabled path stays allocation-free.
func (s SpanRef) Traceparent() string {
	if s.t == nil {
		return ""
	}
	return FormatTraceparent(s.t.TraceID(), wireSpanID(s.id))
}

// NewLinked starts a trace that adopts a remote trace identity: its trace ID
// is the propagated one and its root span remembers the remote parent span,
// so a cross-node stitch can hang this trace's whole subtree under the hop
// that forwarded the request. Invalid IDs (wrong width, non-hex) fall back
// to minting a fresh trace — a node must never refuse to trace because an
// upstream sent junk.
func NewLinked(name, traceID, parentSpanID string, maxSpans int) *Trace {
	t := New(name, maxSpans)
	if isHex(traceID, 32) && isHex(parentSpanID, 16) {
		t.traceID = traceID
		t.remoteParent = parentSpanID
	}
	return t
}
