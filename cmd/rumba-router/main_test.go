package main

import (
	"strings"
	"testing"
	"time"
)

func TestNodeListFlag(t *testing.T) {
	var nodes nodeList
	if err := nodes.Set("a=http://localhost:8081"); err != nil {
		t.Fatal(err)
	}
	if err := nodes.Set("b=http://localhost:8082"); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0].Name != "a" || nodes[1].URL != "http://localhost:8082" {
		t.Fatalf("nodes = %+v", nodes)
	}
	if got := nodes.String(); got != "a=http://localhost:8081,b=http://localhost:8082" {
		t.Fatalf("String = %q", got)
	}
	for _, bad := range []string{"", "nourl", "=http://x", "name="} {
		if err := nodes.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
	// URLs may contain '=' (query strings); only the first split counts.
	if err := nodes.Set("c=http://x/?a=b"); err != nil || nodes[2].URL != "http://x/?a=b" {
		t.Fatalf("query-string URL mangled: %v %+v", err, nodes)
	}
}

func TestRunRejectsEmptyCluster(t *testing.T) {
	err := run("localhost:0", nil, 0, 0, 1, 3, time.Second, time.Second, time.Second, 0, 1, false, false)
	if err == nil || !strings.Contains(err.Error(), "no cluster members") {
		t.Fatalf("err = %v", err)
	}
}
