// Package predictor implements Rumba's light-weight approximation-error
// checkers (Section 3.2): the input-based linear model (Equation 1) and
// decision tree (Figure 6), and the output-based exponential moving average
// (Equation 2), plus the EVP-versus-EEP comparison of Section 3.2 (Figure 5).
//
// A predictor estimates the error of one output element from information a
// dynamic checker can actually see — the accelerator's inputs and/or its
// approximate output — never the exact result.
package predictor

import (
	"fmt"
	"math"

	"rumba/internal/tensor"
)

// Cost models the hardware cost of evaluating one check, consumed by the
// energy/latency models: multiply-accumulates (linear model, Figure 7a) and
// compare operations (decision tree, Figure 7b; EMA comparison).
type Cost struct {
	MACs     float64
	Compares float64
}

// MaxPrediction caps predicted errors at a large finite value. Checker
// thresholds top out at 10 (the tuner's ceiling), so any capped prediction
// still reads as "fire"; what the cap buys is that an overflowing model can
// never leak ±Inf into the tuner statistics or the report. NaN predictions
// instead collapse to 0 — NaN compares false against every threshold, so 0
// ("no fire") is the behaviour the detection loop already exhibits; making
// it explicit keeps downstream arithmetic finite too.
const MaxPrediction = 1e6

// clampPrediction maps a raw model output into [0, MaxPrediction].
func clampPrediction(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > MaxPrediction {
		return MaxPrediction
	}
	return v
}

// Predictor is a light-weight error checker. Implementations must be cheap:
// the paper's premise is that the check runs for *every* output element.
type Predictor interface {
	// Name is the scheme label used in the figures ("linearErrors", ...).
	Name() string
	// PredictError estimates the element's approximation error from the
	// kernel input and the accelerator's approximate output.
	PredictError(in, approxOut []float64) float64
	// PredictErrorBatch fills dst[i] with the prediction for
	// (ins[i], outs[i]). It must produce exactly the values PredictError
	// would produce called element by element in index order (stateful
	// checkers update their state in that order), must not allocate at
	// steady state on the fused implementations, and must not retain dst,
	// ins or outs. The three slices are the same length. ScalarBatch is
	// the reference implementation for checkers without a fused kernel.
	PredictErrorBatch(dst []float64, ins, outs [][]float64)
	// Cost returns the per-check hardware cost.
	Cost() Cost
	// Reset clears any cross-element state (only the EMA checker has
	// state); called at the start of each accelerator invocation batch.
	Reset()
}

// ScalarBatch implements PredictErrorBatch by per-element PredictError
// calls: the reference implementation fused kernels are tested against, and
// the implementation checkers without a batch-specific win delegate to.
func ScalarBatch(p interface {
	PredictError(in, approxOut []float64) float64
}, dst []float64, ins, outs [][]float64) {
	for i := range dst {
		dst[i] = p.PredictError(ins[i], outs[i])
	}
}

// Linear is the linear error predictor of Equation 1:
//
//	err = w0*x0 + w1*x1 + ... + w{N-1}*x{N-1} + c
//
// The weights and constant are determined by offline training (least
// squares on the observed training-set errors).
type Linear struct {
	Weights  []float64
	Constant float64
	Features []int // kernel-input projection; nil = all inputs
}

var _ Predictor = (*Linear)(nil)

// Name implements Predictor.
func (l *Linear) Name() string { return "linearErrors" }

// PredictError implements Predictor. The result is clamped into
// [0, MaxPrediction] (an error magnitude cannot be negative, and a checker
// must stay finite on any input). Inputs shorter than the weight vector
// contribute zero for the missing terms rather than crashing the online
// detection loop.
func (l *Linear) PredictError(in, _ []float64) float64 {
	x := project(in, l.Features)
	s := l.Constant
	n := len(l.Weights)
	if len(x) < n {
		n = len(x)
	}
	for i := 0; i < n; i++ {
		s += l.Weights[i] * x[i]
	}
	return clampPrediction(s)
}

// PredictErrorBatch implements Predictor as a fused dot-product sweep: the
// feature projection is folded into the accumulation loop, so the batch
// path performs zero allocations while producing exactly PredictError's
// values (including the contribute-zero semantics for missing or
// out-of-range features — the w*0 products are kept so non-finite weights
// poison the sum identically).
//
//rumba:hotpath
func (l *Linear) PredictErrorBatch(dst []float64, ins, _ [][]float64) {
	w := l.Weights
	if l.Features == nil {
		for i, in := range ins {
			s := l.Constant
			n := len(w)
			if len(in) < n {
				n = len(in)
			}
			for j := 0; j < n; j++ {
				s += w[j] * in[j]
			}
			dst[i] = clampPrediction(s)
		}
		return
	}
	feats := l.Features
	n := len(w)
	if len(feats) < n {
		n = len(feats)
	}
	for i, in := range ins {
		s := l.Constant
		for j := 0; j < n; j++ {
			v := 0.0
			if idx := feats[j]; idx >= 0 && idx < len(in) {
				v = in[idx]
			}
			s += w[j] * v
		}
		dst[i] = clampPrediction(s)
	}
}

// Cost implements Predictor: one MAC per input plus the threshold compare.
func (l *Linear) Cost() Cost {
	return Cost{MACs: float64(len(l.Weights)), Compares: 1}
}

// Reset implements Predictor (the linear model is stateless).
func (l *Linear) Reset() {}

// FitLinear trains a Linear predictor by ridge-regularised least squares on
// (input, observed element error) pairs from the offline training run.
// features selects the kernel-input subset to use (nil = all).
func FitLinear(inputs [][]float64, errs []float64, features []int) (*Linear, error) {
	if len(inputs) == 0 || len(inputs) != len(errs) {
		return nil, fmt.Errorf("predictor: FitLinear needs matching non-empty inputs/errors")
	}
	d := len(project(inputs[0], features))
	x := tensor.NewMatrix(len(inputs), d+1)
	for i, in := range inputs {
		row := x.Row(i)
		row[0] = 1
		copy(row[1:], project(in, features))
	}
	w, err := tensor.LeastSquares(x, errs, 1e-8)
	if err != nil {
		return nil, fmt.Errorf("predictor: linear fit failed: %w", err)
	}
	return &Linear{Weights: w[1:], Constant: w[0], Features: features}, nil
}

// EMA is the output-based checker of Section 3.2.3: it tracks an exponential
// moving average of the accelerator outputs and flags elements that deviate
// from the running trend,
//
//	EMA = e*alpha + previousEMA*(1-alpha),  alpha = 2/(1+N).
type EMA struct {
	// N is the history length; alpha = 2/(1+N).
	N int
	// Scale normalises the deviation into the element-error range; it is
	// fitted offline as the output magnitude scale.
	Scale float64

	ema    float64
	primed bool
}

var _ Predictor = (*EMA)(nil)

// NewEMA builds an EMA checker with history length n (paper Equation 2) and
// the given output scale.
func NewEMA(n int, scale float64) *EMA {
	if n <= 0 {
		panic("predictor: EMA history length must be positive")
	}
	if scale <= 0 {
		scale = 1
	}
	return &EMA{N: n, Scale: scale}
}

// Name implements Predictor.
func (e *EMA) Name() string { return "EMA" }

// summarise collapses a (possibly multi-dimensional) output element into the
// scalar the moving average tracks.
func summarise(out []float64) float64 {
	if len(out) == 1 {
		return out[0]
	}
	return tensor.Mean(out)
}

// PredictError implements Predictor: the estimate is the normalised distance
// between the current output and the moving average, and the average is then
// updated with the current element. A non-finite output is maximally
// suspicious: it predicts MaxPrediction and is kept out of the average so
// one poisoned element cannot blind the checker to every later one.
func (e *EMA) PredictError(_, approxOut []float64) float64 {
	cur := summarise(approxOut)
	if math.IsNaN(cur) || math.IsInf(cur, 0) {
		return MaxPrediction
	}
	if !e.primed {
		e.ema = cur
		e.primed = true
		return 0
	}
	scale := e.Scale
	if !(scale > 0) {
		scale = 1
	}
	dev := math.Abs(cur-e.ema) / scale
	alpha := 2.0 / (1.0 + float64(e.N))
	e.ema = cur*alpha + e.ema*(1-alpha)
	return clampPrediction(dev)
}

// PredictErrorBatch implements Predictor: the moving-average recurrence is
// inherently sequential, so the batch form is the same update inlined over
// the batch — the win is amortising the call and the detection loop's
// channel hops, not reassociating the math. alpha and the scale guard are
// hoisted; every dst value is exactly what element-by-element PredictError
// calls would produce.
//
//rumba:hotpath
func (e *EMA) PredictErrorBatch(dst []float64, _, outs [][]float64) {
	alpha := 2.0 / (1.0 + float64(e.N))
	scale := e.Scale
	if !(scale > 0) {
		scale = 1
	}
	for i, out := range outs {
		cur := summarise(out)
		if math.IsNaN(cur) || math.IsInf(cur, 0) {
			dst[i] = MaxPrediction
			continue
		}
		if !e.primed {
			e.ema = cur
			e.primed = true
			dst[i] = 0
			continue
		}
		dev := math.Abs(cur-e.ema) / scale
		e.ema = cur*alpha + e.ema*(1-alpha)
		dst[i] = clampPrediction(dev)
	}
}

// Cost implements Predictor: one multiply-add for the average update and the
// deviation/threshold compares.
func (e *EMA) Cost() Cost { return Cost{MACs: 2, Compares: 2} }

// Reset implements Predictor.
func (e *EMA) Reset() { e.ema, e.primed = 0, false }

func project(in []float64, features []int) []float64 {
	if features == nil {
		return in
	}
	out := make([]float64, len(features))
	for i, idx := range features {
		// An out-of-range feature (model trained against a different input
		// shape) contributes zero rather than crashing the detection loop.
		if idx >= 0 && idx < len(in) {
			out[i] = in[idx]
		}
	}
	return out
}
