package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"rumba/internal/slo"
	"rumba/internal/trace"
)

// batchOf builds n synthetic triples sharing one checker score.
func batchOf(n int, score float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = in(float64(i), score)
	}
	return out
}

// TestSLOBurnRateAlerts drives a TOQ violation end to end: an energy-mode
// tenant's threshold is pushed above 0.15, then 0.15-score elements ship
// approximate — every one missing the 0.10 drift target — and the fast
// burn-rate window pages, visible in /v1/alerts and the tenant health reply.
func TestSLOBurnRateAlerts(t *testing.T) {
	srv, hs := newTestServer(t, Options{
		InvocationSize: 8,
		SLO: SLOOptions{
			Enabled:    true,
			FastWindow: 80 * time.Millisecond,
			SlowWindow: 160 * time.Millisecond,
			// Publish fast so the slo.* gauges exist by the time we scrape.
			EvalInterval: 10 * time.Millisecond,
		},
	}, synthKernel("synth", synthExec{}))

	// Drive: every element fires (0.9 > energy budget 0.25), so each
	// 8-element invocation doubles the threshold past 0.15.
	threshold := 0.0
	for i := 0; i < 5; i++ {
		status, resp, msg := invoke(t, hs.URL, InvokeRequest{
			Tenant: "acme", Kernel: "synth", Inputs: batchOf(8, 0.9),
			Mode: "energy", Target: 0.25,
		})
		if status != http.StatusOK {
			t.Fatalf("drive round %d: %d (%s)", i, status, msg)
		}
		threshold = resp.Threshold
	}
	if threshold <= 0.15 {
		t.Fatalf("threshold %v never rose above 0.15; the miss traffic below would fire", threshold)
	}

	// Age the (healthy) drive phase out of both burn windows.
	time.Sleep(200 * time.Millisecond)

	// Violation: 0.15-score elements pass the raised threshold unfired, so
	// the delivered-error estimate 0.15 breaches the 0.10 drift target on
	// every element.
	for i := 0; i < 6; i++ {
		if status, _, msg := invoke(t, hs.URL, InvokeRequest{
			Tenant: "acme", Kernel: "synth", Inputs: batchOf(8, 0.15),
		}); status != http.StatusOK {
			t.Fatalf("miss round %d: %d (%s)", i, status, msg)
		}
		time.Sleep(5 * time.Millisecond)
	}

	var alerts AlertsResponse
	getJSON(t, hs.URL+"/v1/alerts", http.StatusOK, &alerts)
	if !alerts.Enabled {
		t.Fatal("/v1/alerts says the engine is disabled")
	}
	var toq *slo.Alert
	for i := range alerts.Alerts {
		if a := &alerts.Alerts[i]; a.Tenant == "acme" && a.Budget == slo.BudgetTOQ {
			toq = a
		}
	}
	if toq == nil {
		t.Fatalf("no TOQ series for acme in %+v", alerts.Alerts)
	}
	if toq.Severity != slo.SeverityPage {
		t.Fatalf("TOQ severity %q (fast burn %.1f over %d events), want page",
			toq.Severity, toq.Fast.Burn, toq.Fast.Total)
	}

	var health TenantHealth
	getJSON(t, hs.URL+"/v1/tenants/acme/health", http.StatusOK, &health)
	if health.Healthy {
		t.Fatal("paging tenant still reports healthy")
	}
	paged := false
	for _, a := range health.SLO {
		if a.Budget == slo.BudgetTOQ && a.Severity == slo.SeverityPage {
			paged = true
		}
	}
	if !paged {
		t.Fatalf("health.SLO missing the page: %+v", health.SLO)
	}

	// The publisher loop mirrors the alert into slo.* gauges.
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := srv.Metrics().Snapshot()
		if v, ok := snap.Gauges["slo.alert{budget=toq,tenant=acme}"]; ok && v.Value == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slo.alert gauge never reached page level; gauges: %v", snap.Gauges)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestAlertsDisabledByDefault(t *testing.T) {
	_, hs := newTestServer(t, Options{}, synthKernel("synth", synthExec{}))
	var alerts AlertsResponse
	getJSON(t, hs.URL+"/v1/alerts", http.StatusOK, &alerts)
	if alerts.Enabled || len(alerts.Alerts) != 0 {
		t.Fatalf("zero-config server reports %+v", alerts)
	}
}

func TestMetricsHistoryEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Options{
		HistoryInterval: 10 * time.Millisecond,
		HistoryCapacity: 4,
	}, synthKernel("synth", synthExec{}))
	if status, _, _ := invoke(t, hs.URL, InvokeRequest{Kernel: "synth", Inputs: batchOf(4, 0)}); status != 200 {
		t.Fatalf("seed invoke failed")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		var dump struct {
			Capacity int `json:"capacity"`
			Samples  []struct {
				At   time.Time `json:"at"`
				Snap struct {
					Counters map[string]int64 `json:"counters"`
				} `json:"snapshot"`
			} `json:"samples"`
		}
		getJSON(t, hs.URL+"/v1/metrics/history", http.StatusOK, &dump)
		if dump.Capacity != 4 {
			t.Fatalf("capacity = %d, want 4", dump.Capacity)
		}
		if n := len(dump.Samples); n >= 2 {
			if n > 4 {
				t.Fatalf("ring overflowed: %d samples", n)
			}
			if !dump.Samples[0].At.Before(dump.Samples[n-1].At) {
				t.Fatalf("samples not oldest-first")
			}
			if dump.Samples[n-1].Snap.Counters[MetricRequests] < 1 {
				t.Fatalf("newest snapshot missing the request count")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("history collector never produced 2 samples")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMetricsHistoryDisabled(t *testing.T) {
	_, hs := newTestServer(t, Options{}, synthKernel("synth", synthExec{}))
	resp, err := http.Get(hs.URL + "/v1/metrics/history")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled history = %d, want 404", resp.StatusCode)
	}
}

// TestInvokeAdoptsTraceparent pins the propagation contract: a request
// carrying X-Rumba-Traceparent is recorded under the propagated trace ID with
// the sender's span as remote parent, the response names the trace, and the
// per-ID endpoint returns it.
func TestInvokeAdoptsTraceparent(t *testing.T) {
	_, hs := newTestServer(t, Options{TraceCapacity: 8}, synthKernel("synth", synthExec{}))

	const traceID = "aaaabbbbccccddddaaaabbbbccccdddd"
	const parent = "00000000000000ff"
	body, _ := json.Marshal(InvokeRequest{Kernel: "synth", Inputs: batchOf(4, 0)})
	req, _ := http.NewRequest("POST", hs.URL+"/v1/invoke", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.TraceparentHeader, trace.FormatTraceparent(traceID, parent))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invoke = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(trace.TraceHeader); got != traceID {
		t.Fatalf("%s = %q, want adopted %q", trace.TraceHeader, got, traceID)
	}

	var lookup struct {
		TraceID string           `json:"traceID"`
		Traces  []trace.Snapshot `json:"traces"`
	}
	getJSON(t, hs.URL+"/debug/rumba/traces/"+traceID, http.StatusOK, &lookup)
	if len(lookup.Traces) != 1 {
		t.Fatalf("lookup returned %d traces, want 1", len(lookup.Traces))
	}
	snap := lookup.Traces[0]
	if snap.TraceID != traceID || snap.RemoteParent != parent {
		t.Fatalf("trace identity %s/%s, want %s/%s", snap.TraceID, snap.RemoteParent, traceID, parent)
	}
	if len(snap.Spans) < 2 || snap.Spans[0].Name != "invoke" {
		t.Fatalf("span tree: %+v", snap.Spans)
	}

	// A junk traceparent mints a fresh trace instead of failing the request.
	req2, _ := http.NewRequest("POST", hs.URL+"/v1/invoke", bytes.NewReader(body))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set(trace.TraceparentHeader, "garbage")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("junk-header invoke = %d", resp2.StatusCode)
	}
	fresh := resp2.Header.Get(trace.TraceHeader)
	if fresh == "" || fresh == traceID {
		t.Fatalf("junk header yielded trace %q", fresh)
	}

	// Unknown IDs 404.
	r404, err := http.Get(hs.URL + "/debug/rumba/traces/ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", r404.StatusCode)
	}
}
