// Quickstart: the smallest complete Rumba flow.
//
// It compiles the sobel kernel to an approximate accelerator, trains the
// decision-tree error checker, and runs a test image's pixels through the
// online system with a 90% target output quality — then prints what Rumba
// bought: a much lower output error than the unchecked accelerator at a
// bounded energy cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/core"
	"rumba/internal/trainer"
)

func main() {
	// 1. Pick a benchmark kernel. Every Table 1 application is in the
	//    registry; sobel is the 3x3 edge-detection stencil.
	spec, err := bench.Get("sobel")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Offline: train the accelerator network on the kernel's training
	//    image, then train the error checkers on the errors the trained
	//    accelerator actually makes.
	train := spec.GenTrain(6000)
	acfg, err := trainer.TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train,
		trainer.DefaultAccelTrainConfig(spec.Name))
	if err != nil {
		log.Fatal(err)
	}
	acc, err := accel.New(acfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	preds, err := trainer.TrainPredictors(spec, train, trainer.Observe(spec, acc, train))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Online: assemble the Rumba system — accelerator + tree checker +
	//    TOQ-mode tuner. The TOQ bound is per element: any element whose
	//    predicted error exceeds 20% is re-executed exactly, which trims
	//    the long tail of large errors (Figure 1) without re-running
	//    everything.
	tuner, err := core.NewTuner(core.ModeTOQ, 0.20)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(core.Config{
		Spec:    spec,
		Accel:   acc,
		Checker: preds.Tree,
		Tuner:   tuner,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Run(spec.GenTest(20000))
	if err != nil {
		log.Fatal(err)
	}

	// 4. What Rumba did.
	fmt.Printf("sobel on a synthetic 512x512 test image (%d pixels sampled)\n", rep.Elements)
	fmt.Printf("  unchecked accelerator error : %5.2f%%\n", 100*rep.UncheckedError)
	fmt.Printf("  Rumba output error          : %5.2f%%\n", 100*rep.OutputError)
	fmt.Printf("  elements re-executed on CPU : %5.2f%%\n", 100*float64(rep.Fixed)/float64(rep.Elements))
	fmt.Printf("  energy savings vs CPU       : %5.2fx\n", rep.Energy.Savings)
	fmt.Printf("  speedup vs CPU              : %5.2fx\n", rep.Speedup)
	if rep.OutputError > 0 && rep.OutputError < rep.UncheckedError {
		fmt.Printf("error reduced %.1fx by selective re-execution\n", rep.UncheckedError/rep.OutputError)
	}
}
