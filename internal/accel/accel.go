// Package accel models the NPU-style approximate accelerator of the Rumba
// execution subsystem (Figure 4): an 8-processing-element neural unit that
// executes a trained MLP per invocation, fed through input/output queues and
// configured through a config queue, optionally augmented with the error
// predictor hardware of Figure 7.
//
// The model is functional + analytical: it produces the exact numerical
// outputs the hardware would (the MLP forward pass) and accounts cycles and
// MAC counts that the energy/latency packages consume. See DESIGN.md for the
// gem5 substitution rationale.
package accel

import (
	"encoding/json"
	"fmt"

	"rumba/internal/energy"
	"rumba/internal/nn"
)

// Config is the accelerator configuration the offline trainer embeds in the
// application binary: the trained network, the input/output normalisation,
// and the input-feature projection (nil = use all kernel inputs).
type Config struct {
	Net      *nn.Network
	Scaler   *nn.Scaler
	Features []int
}

// MarshalJSON serialises the configuration (the "embedded in the binary"
// form of Figure 4).
func (c Config) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Net      *nn.Network `json:"net"`
		Scaler   *nn.Scaler  `json:"scaler"`
		Features []int       `json:"features,omitempty"`
	}{c.Net, c.Scaler, c.Features})
}

// UnmarshalJSON restores a serialised configuration.
func (c *Config) UnmarshalJSON(data []byte) error {
	var raw struct {
		Net      *nn.Network `json:"net"`
		Scaler   *nn.Scaler  `json:"scaler"`
		Features []int       `json:"features,omitempty"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.Net == nil || raw.Scaler == nil {
		return fmt.Errorf("accel: config missing network or scaler")
	}
	c.Net, c.Scaler, c.Features = raw.Net, raw.Scaler, raw.Features
	return nil
}

// Placement selects where an input-based error detector sits relative to the
// accelerator (Figure 9).
type Placement int

const (
	// PlacementParallel starts the error detector and the accelerator on
	// the inputs simultaneously (Figure 9(b), Configuration 2): no added
	// latency, but accelerator energy is spent even on invocations that
	// will be re-executed. This is the configuration the paper evaluates.
	PlacementParallel Placement = iota
	// PlacementSerial runs the detector before invoking the accelerator
	// (Figure 9(a), Configuration 1): saves the accelerator invocation
	// when the check fires, but adds the detector latency to every
	// invocation.
	PlacementSerial
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	if p == PlacementSerial {
		return "serial (Fig. 9a)"
	}
	return "parallel (Fig. 9b)"
}

// Stats accumulates activity counters for the energy model, plus batch-shape
// counters (Batches, MaxBatch) for observability: they reveal whether the
// streaming runtime actually drives the fused path and at what width, which
// the per-request trace spans export.
type Stats struct {
	Invocations int
	MACs        int
	InputWords  int
	OutputWords int
	// Batches counts forward-pass launches (an n-element InvokeBatch is one
	// launch; Invoke is a launch of width 1).
	Batches int
	// MaxBatch is the widest launch seen since the last ResetStats.
	MaxBatch int
}

// Accelerator executes invocations of a configured network. It is a
// deliberately sequential model: the PE-level parallelism shows up in the
// cycle count, not in host concurrency. The batch buffers below make it
// stateful scratch-wise too, so an Accelerator must not be shared across
// goroutines — the serving registry builds one per stream while sharing the
// (read-only) network and scaler underneath.
type Accelerator struct {
	cfg   Config
	PEs   int
	stats Stats
	// fixed, when non-nil, routes inference through the quantised
	// fixed-point datapath instead of float64 (see SetFixedPoint).
	fixed *nn.FixedNetwork
	// q16, when non-nil, routes inference through the fast integer Q16.16
	// datapath (see ApplyDatapath); it takes precedence over fixed.
	q16 *nn.Q16Network

	// Batch-path scratch, grown lazily on first use and recycled across
	// invocations so the hot path performs zero steady-state allocations.
	scratch *nn.BatchScratch
	flatIn  []float64 // row-major [batch][netInputs] projected+scaled inputs
	flatOut []float64 // row-major [batch][netOutputs] raw network outputs
	lut     bool      // LUT activation datapath (see SetBatchLUT)
}

// DefaultPEs is the number of processing elements in the paper's NPU.
const DefaultPEs = 8

// New builds an accelerator from a configuration. PEs <= 0 selects the
// 8-PE design of the paper.
func New(cfg Config, pes int) (*Accelerator, error) {
	if cfg.Net == nil || cfg.Scaler == nil {
		return nil, fmt.Errorf("accel: incomplete config")
	}
	if cfg.Features != nil && len(cfg.Features) != cfg.Net.Topo.Inputs() {
		return nil, fmt.Errorf("accel: %d projected features but network wants %d inputs",
			len(cfg.Features), cfg.Net.Topo.Inputs())
	}
	if pes <= 0 {
		pes = DefaultPEs
	}
	return &Accelerator{cfg: cfg, PEs: pes}, nil
}

// Config returns the accelerator's configuration.
func (a *Accelerator) Config() Config { return a.cfg }

// SetFixedPoint switches the accelerator to quantised Q(m.n) inference —
// the arithmetic a hardware NPU datapath actually performs. Passing the
// zero format restores float64 execution.
func (a *Accelerator) SetFixedPoint(f nn.FixedFormat) error {
	if f == (nn.FixedFormat{}) {
		a.fixed = nil
		return nil
	}
	q, err := nn.Quantize(a.cfg.Net, f)
	if err != nil {
		return err
	}
	a.fixed = q
	return nil
}

// Datapath names of the rumba-tune sweep axis (internal/tune) that
// ApplyDatapath accepts.
const (
	// DatapathExp is the bit-exact float64 reference: exp()-based
	// activations, the path trained goldens were recorded against.
	DatapathExp = "exp"
	// DatapathLUT is float64 with table-lookup activations (act.go).
	DatapathLUT = "lut"
	// DatapathFixed is the integer Q16.16 datapath with precomputed
	// activation tables at a configurable resolution (nn/fixedpoint.go).
	DatapathFixed = "fixed"
)

// ApplyDatapath configures the forward datapath by its sweep-axis name.
// lutBits is the activation-table resolution for DatapathFixed (0 selects
// nn.DefaultLUTBits) and is ignored otherwise. The empty name means
// DatapathExp. This is what the serving layer calls when a frontier point is
// selected for a tenant.
func (a *Accelerator) ApplyDatapath(name string, lutBits int) error {
	switch name {
	case "", DatapathExp:
		a.q16 = nil
		a.SetBatchLUT(false)
	case DatapathLUT:
		a.q16 = nil
		a.SetBatchLUT(true)
	case DatapathFixed:
		q, err := nn.NewQ16(a.cfg.Net, lutBits)
		if err != nil {
			return err
		}
		a.q16 = q
	default:
		return fmt.Errorf("accel: unknown datapath %q", name)
	}
	return nil
}

// SetBatchLUT switches the activation datapath to the table-lookup sigmoid/
// tanh an NPU implements in hardware (nn.BatchScratch.LUT). Off by default:
// the exp-based activations are the bit-exact reference all goldens were
// recorded against. Fixed-point inference is unaffected (its activation
// tables are exact and always on).
func (a *Accelerator) SetBatchLUT(on bool) {
	a.lut = on
	if a.scratch != nil {
		a.scratch.LUT = on
	}
}

// ensureBatch grows the batch scratch for n invocations.
//rumba:hotpath
func (a *Accelerator) ensureBatch(n int) (inW, outW int) {
	t := a.cfg.Net.Topo
	inW, outW = t.Inputs(), t.Outputs()
	if a.scratch == nil {
		//rumba:allow hotpath first-invocation scratch build, amortised to zero
		a.scratch = a.cfg.Net.NewBatchScratch(n)
	} else {
		//rumba:allow hotpath amortised scratch growth when a wider batch arrives
		a.scratch.Grow(n)
	}
	a.scratch.LUT = a.lut
	if cap(a.flatIn) < n*inW {
		//rumba:allow hotpath amortised flat-plane growth, reused at steady state
		a.flatIn = make([]float64, n*inW)
	}
	if cap(a.flatOut) < n*outW {
		//rumba:allow hotpath amortised flat-plane growth, reused at steady state
		a.flatOut = make([]float64, n*outW)
	}
	return inW, outW
}

// stageInput projects and normalises one kernel input into a flat row.
func (a *Accelerator) stageInput(row, in []float64) {
	if a.cfg.Features == nil {
		if len(in) != len(row) {
			panic(fmt.Sprintf("accel: input width %d, network wants %d", len(in), len(row)))
		}
		a.cfg.Scaler.ScaleInTo(row, in)
		return
	}
	for i, idx := range a.cfg.Features {
		row[i] = in[idx]
	}
	a.cfg.Scaler.ScaleInTo(row, row)
}

// forwardStaged runs the staged flat input batch through the configured
// datapath and bumps the activity counters.
//
//rumba:hotpath
func (a *Accelerator) forwardStaged(n, inW, outW int) {
	in, out := a.flatIn[:n*inW], a.flatOut[:n*outW]
	if a.q16 != nil {
		a.q16.ForwardBatch(out, in, n, a.scratch)
	} else if a.fixed != nil {
		a.fixed.ForwardBatch(out, in, n, a.scratch)
	} else {
		a.cfg.Net.ForwardBatch(out, in, n, a.scratch)
	}
	a.stats.Invocations += n
	a.stats.MACs += n * a.cfg.Net.Topo.MACs()
	a.stats.InputWords += n * inW
	a.stats.OutputWords += n * outW
	a.stats.Batches++
	if n > a.stats.MaxBatch {
		a.stats.MaxBatch = n
	}
}

// Invoke runs one accelerator invocation: project, normalise, forward pass,
// denormalise. It updates the activity counters. The single allocation is
// the returned output vector; all intermediates live in recycled scratch.
//
//rumba:hotpath
func (a *Accelerator) Invoke(in []float64) []float64 {
	inW, outW := a.ensureBatch(1)
	a.stageInput(a.flatIn[:inW], in)
	a.forwardStaged(1, inW, outW)
	//rumba:allow hotpath the documented single output allocation (AllocsPerRun wants exactly 1)
	out := make([]float64, outW)
	a.cfg.Scaler.UnscaleOutTo(out, a.flatOut[:outW])
	return out
}

// InvokeBatch runs n = len(inputs) invocations through the fused batch
// kernel and writes the outputs into dst rows (resized to the kernel output
// width, reusing capacity — zero steady-state allocations when the caller
// recycles dst). It implements exec.BatchExecutor: outputs are exactly what
// Invoke would return element by element, and the counters advance by the
// same totals.
//
//rumba:hotpath
func (a *Accelerator) InvokeBatch(dst [][]float64, inputs [][]float64) {
	n := len(inputs)
	if n == 0 {
		return
	}
	if len(dst) < n {
		panic("accel: InvokeBatch dst shorter than inputs")
	}
	inW, outW := a.ensureBatch(n)
	for e, in := range inputs {
		a.stageInput(a.flatIn[e*inW:(e+1)*inW], in)
	}
	a.forwardStaged(n, inW, outW)
	for e := 0; e < n; e++ {
		row := dst[e]
		if cap(row) < outW {
			//rumba:allow hotpath first-use row growth; recycled dst reuses capacity
			row = make([]float64, outW)
		} else {
			row = row[:outW]
		}
		a.cfg.Scaler.UnscaleOutTo(row, a.flatOut[e*outW:(e+1)*outW])
		dst[e] = row
	}
}

// InvokeAll runs the accelerator over a whole input set, returning one
// output vector per input.
func (a *Accelerator) InvokeAll(inputs [][]float64) [][]float64 {
	out := make([][]float64, len(inputs))
	for i, in := range inputs {
		out[i] = a.Invoke(in)
	}
	return out
}

// Stats returns a copy of the activity counters.
func (a *Accelerator) Stats() Stats { return a.stats }

// ResetStats clears the activity counters.
func (a *Accelerator) ResetStats() { a.stats = Stats{} }

// CyclesPerInvocation is the accelerator's latency for one invocation,
// taken from the PE-level schedule model (see Schedule): neurons partitioned
// across PEs, one MAC per PE per cycle, per-layer sigmoid and bus
// turnaround, and queue transfer cycles.
func (a *Accelerator) CyclesPerInvocation() float64 {
	return ScheduleCycles(a.cfg.Net.Topo, a.PEs)
}

// EnergyPerInvocation prices one invocation under the analytical model; it
// makes *Accelerator satisfy the runtime's executor contract
// (internal/exec.Executor).
func (a *Accelerator) EnergyPerInvocation(m energy.Model) float64 {
	t := a.cfg.Net.Topo
	return energy.NPUInvocationEnergy(t.MACs(), t.Inputs()+t.Outputs(), m)
}

// ConfigWords is the one-time configuration transfer over the config queue
// (Figure 4): every weight and bias, plus the checker coefficients when a
// hardware predictor is attached (the paper sends both over the same
// queue). It is charged once per application run, not per invocation.
func (a *Accelerator) ConfigWords() int {
	return a.cfg.Net.WeightCount()
}

// SetupEnergy prices the one-time configuration transfer.
func (a *Accelerator) SetupEnergy(m energy.Model) float64 {
	return float64(a.ConfigWords()) * m.QueueEnergyPerWord
}
