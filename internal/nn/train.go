package nn

import (
	"fmt"

	"rumba/internal/rng"
)

// TrainConfig controls the offline backpropagation trainer.
type TrainConfig struct {
	Epochs       int     // full passes over the training set
	LearningRate float64 // SGD step size
	Momentum     float64 // classical momentum coefficient
	BatchSize    int     // minibatch size; 1 = pure SGD
	Seed         string  // rng stream label for shuffling
}

// DefaultTrainConfig mirrors the settings used by the offline accelerator
// trainer in this reproduction: plain minibatch SGD with momentum.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:       60,
		LearningRate: 0.05,
		Momentum:     0.9,
		BatchSize:    16,
		Seed:         "nn/train",
	}
}

// Dataset is a supervised regression set: Inputs[i] maps to Targets[i].
type Dataset struct {
	Inputs  [][]float64
	Targets [][]float64
}

// Len returns the number of samples.
func (d Dataset) Len() int { return len(d.Inputs) }

// Validate checks that the dataset is well formed for the given topology.
func (d Dataset) Validate(t Topology) error {
	if len(d.Inputs) != len(d.Targets) {
		return fmt.Errorf("nn: %d inputs but %d targets", len(d.Inputs), len(d.Targets))
	}
	if len(d.Inputs) == 0 {
		return fmt.Errorf("nn: empty dataset")
	}
	for i := range d.Inputs {
		if len(d.Inputs[i]) != t.Inputs() {
			return fmt.Errorf("nn: sample %d has %d inputs, topology %s wants %d",
				i, len(d.Inputs[i]), t, t.Inputs())
		}
		if len(d.Targets[i]) != t.Outputs() {
			return fmt.Errorf("nn: sample %d has %d targets, topology %s wants %d",
				i, len(d.Targets[i]), t, t.Outputs())
		}
	}
	return nil
}

// grads mirrors the network's layer structure for gradient accumulation.
type grads struct {
	w [][]float64
	b [][]float64
}

func newGrads(n *Network) *grads {
	g := &grads{w: make([][]float64, len(n.layers)), b: make([][]float64, len(n.layers))}
	for i, l := range n.layers {
		g.w[i] = make([]float64, len(l.W))
		g.b[i] = make([]float64, len(l.B))
	}
	return g
}

func (g *grads) zero() {
	for i := range g.w {
		for j := range g.w[i] {
			g.w[i][j] = 0
		}
		for j := range g.b[i] {
			g.b[i][j] = 0
		}
	}
}

// backprop accumulates the gradient of 0.5*||out-target||^2 for one sample
// into g. acts must come from forwardTrace. scratch holds per-layer deltas.
func (n *Network) backprop(acts [][]float64, target []float64, g *grads, scratch [][]float64) {
	last := len(n.layers) - 1
	// Output layer delta: (y - t) * f'(y).
	out := acts[last+1]
	delta := scratch[last]
	for o := range out {
		delta[o] = (out[o] - target[o]) * n.layers[last].Act.derivFromOutput(out[o])
	}
	for li := last; li >= 0; li-- {
		l := &n.layers[li]
		in := acts[li]
		delta := scratch[li]
		gw, gb := g.w[li], g.b[li]
		for o := 0; o < l.Out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			row := gw[o*l.In : (o+1)*l.In]
			for j, x := range in {
				row[j] += d * x
			}
			gb[o] += d
		}
		if li == 0 {
			break
		}
		// Propagate delta to the previous layer.
		prev := scratch[li-1]
		prevActs := acts[li]
		for j := 0; j < l.In; j++ {
			var s float64
			for o := 0; o < l.Out; o++ {
				s += l.W[o*l.In+j] * delta[o]
			}
			prev[j] = s * n.layers[li-1].Act.derivFromOutput(prevActs[j])
		}
	}
}

// Train fits the network to the dataset with minibatch SGD + momentum and
// returns the mean squared error on the training set after the final epoch.
func (n *Network) Train(d Dataset, cfg TrainConfig) (float64, error) {
	if err := d.Validate(n.Topo); err != nil {
		return 0, err
	}
	if cfg.Epochs <= 0 {
		return 0, fmt.Errorf("nn: non-positive epoch count %d", cfg.Epochs)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	r := rng.NewNamed(cfg.Seed)
	g := newGrads(n)
	vel := newGrads(n)
	scratch := make([][]float64, len(n.layers))
	for i, l := range n.layers {
		scratch[i] = make([]float64, l.Out)
	}
	var acts [][]float64
	order := make([]int, d.Len())
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(order)
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			g.zero()
			for _, idx := range order[start:end] {
				acts = n.forwardTrace(d.Inputs[idx], acts)
				n.backprop(acts, d.Targets[idx], g, scratch)
			}
			step := cfg.LearningRate / float64(end-start)
			for li := range n.layers {
				l := &n.layers[li]
				vw, vb := vel.w[li], vel.b[li]
				gw, gb := g.w[li], g.b[li]
				for j := range l.W {
					vw[j] = cfg.Momentum*vw[j] - step*gw[j]
					l.W[j] += vw[j]
				}
				for j := range l.B {
					vb[j] = cfg.Momentum*vb[j] - step*gb[j]
					l.B[j] += vb[j]
				}
			}
		}
	}
	return n.MSE(d), nil
}

// MSE returns the mean squared error over the dataset.
func (n *Network) MSE(d Dataset) float64 {
	var sum float64
	var count int
	for i := range d.Inputs {
		out := n.Forward(d.Inputs[i])
		for j, t := range d.Targets[i] {
			diff := out[j] - t
			sum += diff * diff
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
