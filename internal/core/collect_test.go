package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

func newCollectStream(t *testing.T, workers int) *Stream {
	t.Helper()
	tuner, err := NewTuner(ModeTOQ, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStream(Config{
		Spec:    stressSpec(),
		Accel:   stressExec{},
		Checker: scoreChecker{},
		Tuner:   tuner,
	}, workers)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestProcessSliceDeliversInOrder(t *testing.T) {
	st := newCollectStream(t, 2)
	inputs := make([][]float64, 200)
	fires := 0
	for i := range inputs {
		score := 0.25
		if i%3 == 0 {
			score = 0.75 // above the pinned 0.5 threshold
			fires++
		}
		inputs[i] = []float64{float64(i), behaveNormal, score}
	}
	results, err := st.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(inputs) {
		t.Fatalf("got %d results, want %d", len(results), len(inputs))
	}
	fixed := 0
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		want := float64(i)*2 + 0.125 // the approximate output
		if r.Fixed {
			fixed++
			want = float64(i) * 2 // the exact kernel output
		}
		if r.Output[0] != want {
			t.Fatalf("element %d output %v, want %v (fixed=%v)", i, r.Output[0], want, r.Fixed)
		}
	}
	if fixed != fires {
		t.Fatalf("fixed %d elements, want %d", fixed, fires)
	}
}

func TestProcessSliceEmptyInput(t *testing.T) {
	st := newCollectStream(t, 1)
	results, err := st.ProcessSlice(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("empty input produced %d results", len(results))
	}
}

func TestProcessSliceReuseReturnsError(t *testing.T) {
	base := runtime.NumGoroutine()
	st := newCollectStream(t, 1)
	if _, err := st.ProcessSlice(context.Background(), [][]float64{{1, behaveNormal, 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ProcessSlice(context.Background(), [][]float64{{1, behaveNormal, 0}}); !errors.Is(err, ErrStreamReused) {
		t.Fatalf("second ProcessSlice returned %v, want ErrStreamReused", err)
	}
	waitForGoroutines(t, base)
}

func TestProcessSliceCancellationReturnsPartialPrefix(t *testing.T) {
	base := runtime.NumGoroutine()
	st := newCollectStream(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	// A slow always-firing workload with one worker: cancelling mid-stream
	// must return the delivered in-order prefix plus ctx.Err(), and tear the
	// pipeline down (checked by the goroutine settle loop).
	inputs := make([][]float64, 500)
	for i := range inputs {
		inputs[i] = []float64{float64(i), behaveNormal, 0.9}
	}
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	results, err := st.ProcessSlice(ctx, inputs)
	if len(results) == len(inputs) && err != nil {
		t.Fatalf("full delivery must not report an error, got %v", err)
	}
	if len(results) < len(inputs) && !errors.Is(err, context.Canceled) {
		t.Fatalf("partial delivery (%d/%d) returned %v, want context.Canceled", len(results), len(inputs), err)
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("partial prefix out of order: result %d has index %d", i, r.Index)
		}
	}
	waitForGoroutines(t, base)
}
