package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"rumba/internal/buildinfo"
	"rumba/internal/core"
	"rumba/internal/slo"
	"rumba/internal/trace"
)

// VersionInfo is the GET /v1/version reply: which build serves this port.
// In a rolling-upgrade cluster the router's nodes may briefly run different
// commits; this endpoint is how an operator (or the cluster status page)
// tells them apart.
type VersionInfo struct {
	Service string `json:"service"`
	buildinfo.Info
}

// handleReadyz is the readiness probe — the cluster prober's target. Unlike
// /healthz (pure liveness) it answers "should a router send traffic here":
// 503 while draining (SIGTERM received, in-flight work finishing) and 503
// when the registry is empty (nothing servable — a node that lost its
// package dir must not attract tenants). The body names the reason so a
// human reading probe logs sees *why* the node refused.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	if len(s.reg.Names()) == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no kernels loaded")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// maxRequestBytes bounds one request body; a multi-megabyte batch belongs in
// several requests, not one unbounded allocation.
const maxRequestBytes = 8 << 20

// InvokeRequest is the POST /v1/invoke body.
type InvokeRequest struct {
	// Tenant namespaces the tuner state; empty selects "default".
	Tenant string `json:"tenant"`
	// Kernel names the registered model to invoke.
	Kernel string `json:"kernel"`
	// Inputs is the batch of kernel input vectors (each Spec.InDim wide).
	Inputs [][]float64 `json:"inputs"`
	// Checker optionally picks the error checker at tenant creation
	// ("linear", "tree", "ema", "none"); later requests must match.
	Checker string `json:"checker,omitempty"`
	// Mode/Target optionally pick the tuner policy at tenant creation
	// ("toq", "energy", "quality"); ignored once the tenant exists.
	Mode   string  `json:"mode,omitempty"`
	Target float64 `json:"target,omitempty"`
	// DeadlineMs bounds the request end to end; it propagates into the
	// pipeline's context, cancelling detection and recovery on expiry.
	DeadlineMs int64 `json:"deadlineMs,omitempty"`
}

// InvokeResponse is the POST /v1/invoke reply.
type InvokeResponse struct {
	Tenant  string      `json:"tenant"`
	Kernel  string      `json:"kernel"`
	Outputs [][]float64 `json:"outputs"`
	// Elements/Fixed/DegradedElements summarise the pipeline's work: how
	// many elements the checker fired on and recovery re-executed exactly
	// (Fixed), and how many fired but could not be recovered in time
	// (DegradedElements).
	Elements         int `json:"elements"`
	Fixed            int `json:"fixed"`
	DegradedElements int `json:"degradedElements"`
	// Degraded marks a request shed under overload: every output is the
	// raw approximate result, unchecked. Shed requests do not touch the
	// tenant's tuner.
	Degraded bool `json:"degraded"`
	// Threshold is the tenant's firing threshold after this request (0 for
	// shed or unchecked requests).
	Threshold float64 `json:"threshold"`
	// Checker names the tenant's checker.
	Checker string `json:"checker,omitempty"`
}

// errorResponse is every non-200 body.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP API:
//
//	POST   /v1/invoke                 run a batch through a tenant's pipeline
//	GET    /v1/kernels                registered kernel names
//	GET    /v1/tenants                live tenant tuner + drift state
//	GET    /v1/tenants/{id}/health    one tenant's quality-drift verdict
//	GET    /v1/tenants/{id}/state     export the tenant's tuner+drift state
//	PUT    /v1/tenants/{id}/state     import state exported by another node
//	DELETE /v1/tenants/{id}/state     drop the tenant's live state (post-handoff)
//	GET    /v1/version                build provenance (git commit, toolchain)
//	GET    /v1/alerts                 SLO burn-rate alert state (all tenants)
//	GET    /healthz                   process liveness
//	GET    /readyz                    200 while servable, 503 with a reason
//	                                  (draining, or no kernels loaded)
//	GET    /metrics                   Prometheus text exposition
//	GET    /metrics.json              observability registry snapshot (JSON)
//	GET    /v1/metrics/history        snapshot ring (when HistoryInterval > 0)
//	GET    /debug/rumba/traces        flight-recorder dump (when tracing is on)
//	GET    /debug/rumba/traces/{traceID}  retained traces for one trace ID
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/invoke", s.handleInvoke)
	mux.HandleFunc("GET /v1/kernels", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"kernels": s.reg.Names()})
	})
	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]TenantInfo{"tenants": s.tenants.List()})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, VersionInfo{Service: "rumba-serve", Info: buildinfo.Resolve()})
	})
	mux.HandleFunc("GET /v1/alerts", s.handleAlerts)
	mux.HandleFunc("GET /v1/metrics/history", s.handleMetricsHistory)
	mux.HandleFunc("GET /v1/tenants/{id}/health", s.handleTenantHealth)
	mux.HandleFunc("GET /v1/tenants/{id}/state", s.handleTenantStateGet)
	mux.HandleFunc("PUT /v1/tenants/{id}/state", s.handleTenantStatePut)
	mux.HandleFunc("DELETE /v1/tenants/{id}/state", s.handleTenantStateDelete)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.metrics.Snapshot().WritePrometheus(w, "rumba")
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.metrics.Snapshot())
	})
	mux.HandleFunc("GET /debug/rumba/traces", func(w http.ResponseWriter, r *http.Request) {
		if s.recorder == nil {
			writeError(w, http.StatusNotFound,
				errors.New("tracing disabled; enable with Options.TraceCapacity (rumba-serve -trace-capacity)"))
			return
		}
		s.recorder.ServeHTTP(w, r)
	})
	mux.HandleFunc("GET /debug/rumba/traces/{traceID}", s.handleTraceByID)
	if s.opts.EnablePprof {
		// Opt-in only (Options.EnablePprof / rumba-serve -pprof): these
		// endpoints expose goroutine stacks, heap contents and the command
		// line. The subtree route gives Index the named profiles
		// (/debug/pprof/heap, .../goroutine, ...).
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// invokeRequestPool recycles decoded request bodies: resetting Inputs to
// length zero keeps both the outer slice and every row's capacity, and
// encoding/json decodes into that existing capacity, so a warmed handler
// parses a steady stream of same-shaped batches without reallocating the
// input matrix on every request.
var invokeRequestPool = sync.Pool{New: func() any { return new(InvokeRequest) }}

func (s *Server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	req := invokeRequestPool.Get().(*InvokeRequest)
	// Zero the scalar fields but keep the Inputs capacity for the decoder.
	*req = InvokeRequest{Inputs: req.Inputs[:0]}
	// The pooled request may only be recycled when nothing can still read
	// its rows: a cancelled pipeline's detection goroutine can briefly
	// outlive ProcessSlice, so error paths after submission drop the
	// request to the GC instead.
	recycle := true
	defer func() {
		if recycle {
			invokeRequestPool.Put(req)
		}
	}()
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(body).Decode(req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if req.Kernel == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing kernel"))
		return
	}
	k, ok := s.reg.Get(req.Kernel)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown kernel %q", req.Kernel))
		return
	}
	if len(req.Inputs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty inputs"))
		return
	}
	for i, in := range req.Inputs {
		if len(in) != k.Spec.InDim {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("input %d has %d values, kernel %s wants %d", i, len(in), k.Name, k.Spec.InDim))
			return
		}
	}
	var mode *TunerDefaults
	if req.Mode != "" {
		m, err := parseMode(req.Mode)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		target := req.Target
		if target == 0 {
			target = s.opts.Defaults.Target
		}
		mode = &TunerDefaults{Mode: m, Target: target}
	}
	ts, err := s.tenants.get(TenantKey{Tenant: req.Tenant, Kernel: req.Kernel}, k, req.Checker, mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	ctx := r.Context()
	if req.DeadlineMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMs)*time.Millisecond)
		defer cancel()
	}

	// Request tracing (Options.TraceCapacity > 0): the trace rides the
	// context into the pipeline; every method below is nil-safe, so the
	// disabled path costs nil checks only. A routed request carries the
	// cluster trace identity in X-Rumba-Traceparent — adopting it is what
	// lets the router stitch this node's span subtree under its forward hop;
	// direct (edge) requests mint a fresh trace ID here.
	var tr *trace.Trace
	if s.recorder != nil {
		if tid, parent, ok := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader)); ok {
			tr = trace.NewLinked("invoke", tid, parent, 0)
		} else {
			tr = trace.New("invoke", 0)
		}
		w.Header().Set(trace.TraceHeader, tr.TraceID())
		root := tr.Root()
		root.SetStr("tenant", req.Tenant)
		root.SetStr("kernel", req.Kernel)
		root.SetInt("elements", int64(len(req.Inputs)))
		ctx = trace.NewContext(ctx, root)
	}
	defer func() {
		tr.Finish()
		s.recorder.Record(tr)
	}()

	start := time.Now()
	j := &job{ctx: ctx, kernel: k, tenant: ts, inputs: req.Inputs, done: make(chan struct{})}
	j.span = tr.Root().Start("admission")
	if !s.adm.submit(j) {
		// Overload: shed the Rumba way — answer with the approximate
		// output, flagged, instead of queueing unboundedly.
		j.span.SetStr("outcome", "shed")
		j.span.End()
		tr.SetFlag(trace.FlagShed)
		s.mShed.Inc()
		ts.mu.Lock()
		ts.reqTotal++
		ts.reqShed++
		s.feedSLO(ts, k)
		ts.mu.Unlock()
		outputs, err := s.shed(k, req.Inputs)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		// Shedding answers with unchecked approximate output on purpose:
		// the response says so (Degraded: true) and the client opted into
		// approximation by calling this service at all.
		//rumba:allow approxflow load shedding commits the approximate output, flagged Degraded
		writeJSON(w, http.StatusOK, InvokeResponse{
			Tenant:   req.Tenant,
			Kernel:   req.Kernel,
			Outputs:  outputs,
			Elements: len(outputs),
			Degraded: true,
			Checker:  ts.checkerName,
		})
		return
	}
	<-j.done
	s.hLatency.Observe(float64(time.Since(start)))
	if j.err != nil {
		// A failed (typically cancelled) pipeline may still be tearing
		// down with references to req.Inputs rows.
		recycle = false
		tr.SetFlag(trace.FlagError)
		if errors.Is(j.err, context.DeadlineExceeded) || errors.Is(j.err, context.Canceled) {
			s.mDeadline.Inc()
			writeError(w, http.StatusGatewayTimeout,
				fmt.Errorf("deadline exceeded after %d of %d elements", len(j.results), len(req.Inputs)))
			return
		}
		writeError(w, http.StatusInternalServerError, j.err)
		return
	}
	s.mRequests.Inc()

	resp := InvokeResponse{
		Tenant:   req.Tenant,
		Kernel:   req.Kernel,
		Outputs:  make([][]float64, len(j.results)),
		Elements: len(j.results),
		Checker:  ts.checkerName,
	}
	for i, res := range j.results {
		resp.Outputs[i] = res.Output
		if res.Fixed {
			resp.Fixed++
		}
		if res.Degraded {
			resp.DegradedElements++
		}
	}
	ts.mu.Lock()
	if ts.tuner != nil {
		resp.Threshold = ts.tuner.Threshold
	}
	ts.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// TenantHealth is the GET /v1/tenants/{id}/health reply: the quality-drift
// verdict for every kernel the tenant touches.
type TenantHealth struct {
	Tenant string `json:"tenant"`
	// Healthy is false when any kernel's drift monitor is violating, or any
	// SLO error budget is burning at page severity.
	Healthy bool         `json:"healthy"`
	Kernels []TenantInfo `json:"kernels"`
	// SLO is the tenant's evaluated burn-rate alert state, one entry per
	// budget series (absent when the engine is disabled).
	SLO []slo.Alert `json:"slo,omitempty"`
}

func (s *Server) handleTenantHealth(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	health := TenantHealth{Tenant: id, Healthy: true}
	for _, info := range s.tenants.List() {
		if info.Tenant != id {
			continue
		}
		health.Kernels = append(health.Kernels, info)
		if info.Drift != nil && info.Drift.State == DriftViolating.String() {
			health.Healthy = false
		}
	}
	if len(health.Kernels) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown tenant %q", id))
		return
	}
	health.SLO = s.sloEngine.Tenant(id, time.Now())
	for _, a := range health.SLO {
		if a.Severity == slo.SeverityPage {
			health.Healthy = false
		}
	}
	writeJSON(w, http.StatusOK, health)
}

func parseMode(s string) (core.TunerMode, error) {
	switch s {
	case "toq":
		return core.ModeTOQ, nil
	case "energy":
		return core.ModeEnergy, nil
	case "quality":
		return core.ModeQuality, nil
	default:
		return 0, fmt.Errorf("unknown tuner mode %q (want toq, energy or quality)", s)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Marshal before writing the header: a kernel whose outputs overflowed
	// to ±Inf is not JSON-representable, and streaming would have already
	// committed a 200 with an empty body by the time Encode fails.
	data, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		data, _ = json.Marshal(errorResponse{Error: "response not representable as JSON: " + err.Error()})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
