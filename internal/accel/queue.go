package accel

import (
	"fmt"

	"rumba/internal/obs"
)

// Queue is the bounded FIFO used for CPU/accelerator communication in
// Figure 4: the config queue, the input and output data queues, and the
// recovery queue that carries recovery bits back to the CPU. It is a plain
// ring buffer; the latency/energy cost of queue traffic is accounted by the
// energy package, not here.
type Queue[T any] struct {
	buf        []T
	head, size int

	// Optional observability hooks (see Instrument); nil when the queue
	// is not instrumented.
	depth  *obs.Gauge
	pushes *obs.Counter
	stalls *obs.Counter
}

// Instrument attaches observability to the queue: depth tracks occupancy
// (and its high-water mark), pushes counts successful enqueues, stalls
// counts rejected Push calls on a full queue — the queue model's
// back-pressure events. Any hook may be nil.
func (q *Queue[T]) Instrument(depth *obs.Gauge, pushes, stalls *obs.Counter) {
	q.depth, q.pushes, q.stalls = depth, pushes, stalls
}

// NewQueue allocates a queue with the given capacity.
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("accel: queue capacity %d must be positive", capacity))
	}
	return &Queue[T]{buf: make([]T, capacity)}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return q.size }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Full reports whether a Push would fail.
func (q *Queue[T]) Full() bool { return q.size == len(q.buf) }

// Push enqueues an item; it reports false when the queue is full (the
// producer must stall, which the pipeline model charges as back-pressure).
func (q *Queue[T]) Push(v T) bool {
	if q.Full() {
		if q.stalls != nil {
			q.stalls.Inc()
		}
		return false
	}
	q.buf[(q.head+q.size)%len(q.buf)] = v
	q.size++
	if q.pushes != nil {
		q.pushes.Inc()
	}
	if q.depth != nil {
		q.depth.Set(float64(q.size))
	}
	return true
}

// Pop dequeues the oldest item; ok is false when the queue is empty.
func (q *Queue[T]) Pop() (v T, ok bool) {
	if q.size == 0 {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	if q.depth != nil {
		q.depth.Set(float64(q.size))
	}
	return v, true
}

// Drain pops everything currently queued, in FIFO order.
func (q *Queue[T]) Drain() []T {
	out := make([]T, 0, q.size)
	for {
		v, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// RecoveryBit is the message carried on the recovery queue: the iteration ID
// whose output element the detector flagged for exact re-execution.
type RecoveryBit struct {
	Iteration int
	// PredictedError is the detector's error estimate, kept for the
	// tuner's bookkeeping and the Figure 18 trace.
	PredictedError float64
}
