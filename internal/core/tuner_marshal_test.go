package core

import (
	"encoding/json"
	"testing"
)

// TestTunerMarshalGolden pins the serialised tuner format: rumba-serve
// snapshots live per-tenant tuners to disk, so the encoding is a persistence
// format, not an implementation detail.
func TestTunerMarshalGolden(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Tuner
		want  string
	}{
		{
			name: "toq",
			build: func() *Tuner {
				tn, _ := NewTuner(ModeTOQ, 0.10)
				return tn
			},
			want: `{"mode":"TOQ","threshold":0.1,"targetError":0.1,"minThreshold":0.0001,"maxThreshold":10}`,
		},
		{
			name: "energy-after-observe",
			build: func() *Tuner {
				tn, _ := NewTuner(ModeEnergy, 0.25)
				// Over budget: every element fired, so the threshold doubles.
				tn.Observe(InvocationStats{Elements: 100, Fixed: 100})
				return tn
			},
			want: `{"mode":"Energy","threshold":0.2,"iterationBudget":0.25,"minThreshold":0.0001,"maxThreshold":10}`,
		},
		{
			name: "quality",
			build: func() *Tuner {
				tn, _ := NewTuner(ModeQuality, 0.5)
				return tn
			},
			want: `{"mode":"Quality","threshold":0.1,"keepUpFraction":0.5,"minThreshold":0.0001,"maxThreshold":10}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tn := tc.build()
			data, err := json.Marshal(tn)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != tc.want {
				t.Fatalf("marshal:\n got %s\nwant %s", data, tc.want)
			}
			var back Tuner
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatal(err)
			}
			if back != *tn {
				t.Fatalf("round trip: got %+v, want %+v", back, *tn)
			}
		})
	}
}

// TestTunerUnmarshalRestoresDynamics verifies a restored tuner keeps tuning —
// the unexported clamp bounds survive the round trip (and default sanely for
// sparse snapshots), so the threshold still moves and still clamps.
func TestTunerUnmarshalRestoresDynamics(t *testing.T) {
	orig, _ := NewTuner(ModeEnergy, 0.10)
	for i := 0; i < 20; i++ {
		orig.Observe(InvocationStats{Elements: 64, Fixed: 64})
	}
	if orig.Threshold != 10 {
		t.Fatalf("expected the threshold to clamp at the ceiling, got %v", orig.Threshold)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Tuner
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// Under budget from the ceiling: the restored tuner must come back down.
	back.Observe(InvocationStats{Elements: 64, Fixed: 0})
	if back.Threshold >= 10 {
		t.Fatalf("restored tuner did not tune: threshold still %v", back.Threshold)
	}

	// A sparse snapshot (no bounds) restores the NewTuner defaults.
	var sparse Tuner
	if err := json.Unmarshal([]byte(`{"mode":"TOQ","threshold":0.2,"targetError":0.2}`), &sparse); err != nil {
		t.Fatal(err)
	}
	if sparse.minThreshold != 1e-4 || sparse.maxThreshold != 10 {
		t.Fatalf("sparse snapshot bounds = (%v, %v), want defaults", sparse.minThreshold, sparse.maxThreshold)
	}
}

// TestTunerUnmarshalRejectsGarbage pins the validation errors: a corrupt
// state file must fail loudly at load, not produce a wedged tuner.
func TestTunerUnmarshalRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		`{"mode":"Turbo","threshold":0.1}`,
		`{"mode":"TOQ","threshold":-1}`,
		`{"mode":"TOQ","threshold":0.1,"minThreshold":5,"maxThreshold":1}`,
		`{"mode":3}`,
	} {
		var tn Tuner
		if err := json.Unmarshal([]byte(bad), &tn); err == nil {
			t.Fatalf("unmarshal of %s succeeded, want error", bad)
		}
	}
}
