package analysis

import "testing"

// TestApproxFlowUncheckedCommit: an approximate value reaching a channel
// send without a check is the canonical finding.
func TestApproxFlowUncheckedCommit(t *testing.T) {
	diags := runFixture(t, `package af

//rumba:approx
func kernel(in []float64) []float64 { return in }

func pipeline(in []float64, out chan []float64) {
	v := kernel(in)
	out <- v
}
`, AnalyzerApproxFlow)
	expectDiags(t, diags, "approxflow", 1, `approximate value "v" reaches a channel send`)
}

// TestApproxFlowCheckedIsClean: passing the value through an
// //rumba:checked sanitizer discharges the obligation.
func TestApproxFlowCheckedIsClean(t *testing.T) {
	diags := runFixture(t, `package af

//rumba:approx
func kernel(in []float64) []float64 { return in }

//rumba:checked
func check(approx []float64) float64 { return approx[0] }

func pipeline(in []float64, out chan []float64) {
	v := kernel(in)
	_ = check(v)
	out <- v
}
`, AnalyzerApproxFlow)
	expectDiags(t, diags, "approxflow", 0)
}

// TestApproxFlowPredictErrorSanitizes: a method named PredictError* is a
// sanitizer without any directive (the predictor convention).
func TestApproxFlowPredictErrorSanitizes(t *testing.T) {
	diags := runFixture(t, `package af

type checker struct{}

func (checker) PredictErrorBatch(dst []float64, ins, outs [][]float64) {}

//rumba:approx
func kernelBatch(ins [][]float64) [][]float64 { return ins }

func pipeline(c checker, ins [][]float64, preds []float64, out chan [][]float64) {
	rows := kernelBatch(ins)
	c.PredictErrorBatch(preds, ins, rows)
	out <- rows
}
`, AnalyzerApproxFlow)
	expectDiags(t, diags, "approxflow", 0)
}

// TestApproxFlowOrdering: checking AFTER the commit does not discharge the
// obligation — the CFG sees the order.
func TestApproxFlowOrdering(t *testing.T) {
	diags := runFixture(t, `package af

//rumba:approx
func kernel(in []float64) []float64 { return in }

//rumba:checked
func check(approx []float64) float64 { return approx[0] }

func pipeline(in []float64, out chan []float64) {
	v := kernel(in)
	out <- v
	_ = check(v)
}
`, AnalyzerApproxFlow)
	expectDiags(t, diags, "approxflow", 1, "reaches a channel send")
}

// TestApproxFlowCheckedOnSomePath: the merge join takes the furthest
// typestate, so a value checked under a conditional counts as checked
// downstream (the Checker != nil pattern of internal/core).
func TestApproxFlowCheckedOnSomePath(t *testing.T) {
	diags := runFixture(t, `package af

//rumba:approx
func kernel(in []float64) []float64 { return in }

//rumba:checked
func check(approx []float64) float64 { return approx[0] }

func pipeline(in []float64, haveChecker bool, out chan []float64) {
	v := kernel(in)
	if haveChecker {
		_ = check(v)
	}
	out <- v
}
`, AnalyzerApproxFlow)
	expectDiags(t, diags, "approxflow", 0)
}

// TestApproxFlowInterproceduralDst: a helper that fills its destination
// parameter from the approximate path taints the caller's buffer; a helper
// that commits its parameter reports at the caller's call site.
func TestApproxFlowInterproceduralDst(t *testing.T) {
	diags := runFixture(t, `package af

//rumba:approx
func kernel(in []float64) []float64 { return in }

func fill(dst []float64, in []float64) {
	v := kernel(in)
	copy(dst, v)
}

func commit(v []float64, out chan []float64) {
	out <- v
}

func pipeline(in []float64, out chan []float64) {
	buf := make([]float64, len(in))
	fill(buf, in)
	commit(buf, out)
}
`, AnalyzerApproxFlow)
	expectDiags(t, diags, "approxflow", 1, "af.commit (which commits it)")
}

// TestApproxFlowPassThrough: taint survives a pass-through helper and a
// composite literal wrap.
func TestApproxFlowPassThrough(t *testing.T) {
	diags := runFixture(t, `package af

//rumba:approx
func kernel(in []float64) []float64 { return in }

func id(x []float64) []float64 { return x }

type result struct {
	Output []float64
}

func pipeline(in []float64, out chan result) {
	v := id(kernel(in))
	out <- result{Output: v}
}
`, AnalyzerApproxFlow)
	expectDiags(t, diags, "approxflow", 1, "reaches a channel send")
}

// TestApproxFlowAllowSuppression: //rumba:allow approxflow acknowledges a
// deliberate unchecked commit (the Checker-less deployment mode).
func TestApproxFlowAllowSuppression(t *testing.T) {
	diags := runFixture(t, `package af

//rumba:approx
func kernel(in []float64) []float64 { return in }

func pipeline(in []float64, out chan []float64) {
	v := kernel(in)
	//rumba:allow approxflow unchecked mode is explicit in this deployment
	out <- v
}
`, AnalyzerApproxFlow)
	expectDiags(t, diags, "approxflow", 0)
	suppressed := 0
	for _, d := range diags {
		if d.Analyzer == "approxflow" && d.Suppressed {
			suppressed++
		}
	}
	if suppressed != 1 {
		t.Fatalf("want exactly 1 suppressed approxflow finding, got %d", suppressed)
	}
}

// TestApproxFlowClosureCapture: taint reaches a commit inside a nested
// function literal through a captured variable.
func TestApproxFlowClosureCapture(t *testing.T) {
	diags := runFixture(t, `package af

//rumba:approx
func kernel(in []float64) []float64 { return in }

func pipeline(in []float64, out chan []float64) func() {
	v := kernel(in)
	return func() {
		out <- v
	}
}
`, AnalyzerApproxFlow)
	expectDiags(t, diags, "approxflow", 1, "reaches a channel send")
}

// TestApproxFlowRecoveryShape: the detect -> fire -> recover -> merge shape
// of internal/core, reduced: checked rows go to either path, recovery
// passes the approx value through to a clean commit. No findings.
func TestApproxFlowRecoveryShape(t *testing.T) {
	diags := runFixture(t, `package af

type job struct {
	input  []float64
	approx []float64
}

//rumba:approx
func kernelBatch(ins [][]float64) [][]float64 { return ins }

type checker struct{}

func (checker) PredictErrorBatch(dst []float64, ins, outs [][]float64) {}

func exact(in []float64) []float64 { return in }

func recoverOne(j job) []float64 {
	out := exact(j.input)
	if out == nil {
		return j.approx // degraded: commit the approximate output
	}
	return out
}

func detect(c checker, ins [][]float64, preds []float64, recovery chan job, merged chan []float64) {
	rows := kernelBatch(ins)
	c.PredictErrorBatch(preds, ins, rows)
	for i := range rows {
		if preds[i] > 0.5 {
			recovery <- job{input: ins[i], approx: rows[i]}
		} else {
			merged <- rows[i]
		}
	}
}

func worker(recovery chan job, merged chan []float64) {
	for j := range recovery {
		merged <- recoverOne(j)
	}
}
`, AnalyzerApproxFlow)
	expectDiags(t, diags, "approxflow", 0)
}
