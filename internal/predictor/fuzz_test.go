package predictor

import (
	"math"
	"testing"
)

// Adversarial-input fuzzing for the online error checkers. The contract
// under test: PredictError is total — no panic, no NaN, no ±Inf, result in
// [0, MaxPrediction] — for any input vector and any model, including models
// deserialised from a corrupt bundle (mismatched weight counts, out-of-range
// feature projections, malformed tree topology).

// fuzzFloats decodes up to n values from raw fuzz bytes, injecting the
// floating-point specials for selected byte patterns.
func fuzzFloats(data []byte, n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < len(data) && len(out) < n; i++ {
		b := data[i]
		switch b % 7 {
		case 0:
			out = append(out, math.NaN())
		case 1:
			out = append(out, math.Inf(1))
		case 2:
			out = append(out, math.Inf(-1))
		case 3:
			out = append(out, 0)
		case 4:
			out = append(out, math.MaxFloat64)
		case 5:
			out = append(out, -math.MaxFloat64)
		default:
			out = append(out, (float64(b)-128)/16)
		}
	}
	return out
}

// fuzzFeatures decodes a feature projection, deliberately including
// out-of-range and negative indices.
func fuzzFeatures(data []byte) []int {
	if len(data) == 0 {
		return nil
	}
	out := make([]int, 0, len(data))
	for _, b := range data {
		out = append(out, int(b)-8) // range [-8, 247], mostly out of range
	}
	return out
}

func checkPrediction(t *testing.T, name string, p float64) {
	t.Helper()
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("%s predicted %v, want finite", name, p)
	}
	if p < 0 || p > MaxPrediction {
		t.Fatalf("%s predicted %v, outside [0, %v]", name, p, MaxPrediction)
	}
}

func FuzzLinearPredictError(f *testing.F) {
	f.Add([]byte{100, 120}, 0.5, []byte{}, []byte{10, 20})
	f.Add([]byte{0, 1, 2}, math.NaN(), []byte{0, 50}, []byte{1}) // specials, bad features
	f.Add([]byte{4}, math.Inf(1), []byte{200}, []byte{})         // huge weight, empty input
	f.Add([]byte{}, 0.0, []byte{}, []byte{0})                    // no weights, NaN input
	f.Fuzz(func(t *testing.T, rawWeights []byte, constant float64, rawFeatures, rawIn []byte) {
		l := &Linear{
			Weights:  fuzzFloats(rawWeights, 32),
			Constant: constant,
			Features: fuzzFeatures(rawFeatures),
		}
		in := fuzzFloats(rawIn, 32)
		checkPrediction(t, "Linear", l.PredictError(in, nil))
	})
}

func FuzzTreePredictError(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, []byte{}, []byte{10, 20})
	f.Add([]byte{255, 255, 255, 255}, []byte{0}, []byte{0, 1, 2}) // cyclic/out-of-range children
	f.Add([]byte{}, []byte{50}, []byte{})                         // empty tree
	f.Add([]byte{8, 8, 8, 8, 8, 8, 8, 8, 8, 8}, []byte{}, []byte{4})
	f.Fuzz(func(t *testing.T, rawNodes, rawFeatures, rawIn []byte) {
		// Decode up to 16 nodes, 4 bytes each: feature, threshold pattern,
		// left child, right child — unvalidated on purpose.
		var nodes []TreeNode
		for i := 0; i+3 < len(rawNodes) && len(nodes) < 16; i += 4 {
			vals := fuzzFloats(rawNodes[i+1:i+2], 1)
			nodes = append(nodes, TreeNode{
				Feature: int(rawNodes[i]) - 8,
				Thresh:  vals[0],
				Left:    int32(rawNodes[i+2]) - 8,
				Right:   int32(rawNodes[i+3]) - 8,
				Value:   vals[0],
			})
		}
		tr := &Tree{Nodes: nodes, Features: fuzzFeatures(rawFeatures)}
		in := fuzzFloats(rawIn, 32)
		checkPrediction(t, "Tree", tr.PredictError(in, nil))
	})
}

func FuzzEMAPredictError(f *testing.F) {
	f.Add([]byte{100, 110, 120}, 4, 1.0)
	f.Add([]byte{0, 1, 2, 3}, 1, 0.0)           // specials, degenerate scale
	f.Add([]byte{4, 5, 4, 5}, 1000, math.NaN()) // huge magnitudes, NaN scale
	f.Add([]byte{}, 0, -1.0)                    // empty outputs, non-positive N
	f.Fuzz(func(t *testing.T, raw []byte, n int, scale float64) {
		if n <= 0 || n > 1<<20 {
			n = 1
		}
		e := &EMA{N: n, Scale: scale}
		// Stream the fuzzed outputs one element at a time: state must stay
		// harmless across calls even after non-finite outputs.
		vals := fuzzFloats(raw, 64)
		for i := 0; i < len(vals); i++ {
			checkPrediction(t, "EMA", e.PredictError(nil, vals[i:i+1]))
		}
		// And a multi-dimensional element through the summariser.
		if len(vals) > 1 {
			checkPrediction(t, "EMA", e.PredictError(nil, vals))
		}
	})
}
