package core

import (
	"context"
	"fmt"
)

// ProcessSlice is the request-shaped entry point to the streaming runtime:
// it feeds a finite batch of inputs through Process and collects the merged,
// in-order results. It is what a serving layer calls once per request —
// rumba-serve builds one Stream per admitted request around the tenant's
// live tuner and propagates the request deadline through ctx.
//
// On cancellation (deadline exceeded, client gone) the partial in-order
// prefix that was delivered is returned together with ctx.Err(); the
// pipeline is fully torn down before ProcessSlice returns, so the caller
// never leaks a goroutine by abandoning a timed-out request.
func (st *Stream) ProcessSlice(ctx context.Context, inputs [][]float64) ([]StreamResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	in := make(chan []float64)
	go func() {
		defer close(in)
		for _, v := range inputs {
			select {
			case in <- v:
			case <-ctx.Done():
				return
			}
		}
	}()
	out, err := st.Process(ctx, in)
	if err != nil {
		// Drain the feeder so a startup error (stream reuse) cannot leak it.
		go func() {
			for range in {
			}
		}()
		return nil, err
	}
	results := make([]StreamResult, 0, len(inputs))
	for r := range out {
		results = append(results, r)
	}
	if len(results) < len(inputs) {
		if cerr := ctx.Err(); cerr != nil {
			return results, cerr
		}
		return results, fmt.Errorf("core: stream ended after %d of %d elements", len(results), len(inputs))
	}
	return results, nil
}
