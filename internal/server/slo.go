package server

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"rumba/internal/slo"
)

// This file wires the SLO burn-rate engine (internal/slo) and the metrics
// history ring (obs.History) into the serving layer. The engine consumes
// three cumulative per-tenant feeds, all maintained under the tenant mutex on
// paths that already hold it:
//
//   - TOQ: the drift monitor's delivered-element / miss totals (an element
//     misses when its delivered-error estimate exceeds the tenant's target)
//   - latency: stream chunks processed vs chunks whose mean latency exceeded
//     the kernel package's declared p99 SLO
//   - shed: requests completed vs refused by admission control
//
// A background loop publishes the evaluated burn rates as slo.* gauges; the
// /v1/alerts endpoint and the tenant health reply evaluate on demand, so
// alert state is current even between publish ticks.

// SLOOptions configures the burn-rate engine. The zero value (Enabled false)
// disables it entirely: no engine, no goroutine, no per-request overhead
// beyond a nil check.
type SLOOptions struct {
	// Enabled turns the engine on (rumba-serve -slo).
	Enabled bool
	// FastWindow/SlowWindow are the multi-window burn horizons
	// (defaults 5m / 1h — see slo.Config).
	FastWindow time.Duration
	SlowWindow time.Duration
	// PageBurn/TicketBurn are the severity thresholds both windows must
	// exceed (defaults 14.4 / 3).
	PageBurn   float64
	TicketBurn float64
	// MinEvents is the fast-window event floor below which a series cannot
	// alert (default 10).
	MinEvents int64
	// TOQMissBudget is the tolerated fraction of elements missing their TOQ
	// target; <= 0 uses 0.05.
	TOQMissBudget float64
	// SlowChunkBudget is the tolerated fraction of stream chunks over the
	// package p99 SLO; <= 0 uses 0.01.
	SlowChunkBudget float64
	// ShedBudget is the tolerated fraction of requests shed by admission;
	// <= 0 uses 0.01.
	ShedBudget float64
	// EvalInterval is the gauge publish cadence; <= 0 uses 5s.
	EvalInterval time.Duration
}

func (o SLOOptions) withDefaults() SLOOptions {
	if o.TOQMissBudget <= 0 {
		o.TOQMissBudget = 0.05
	}
	if o.SlowChunkBudget <= 0 {
		o.SlowChunkBudget = 0.01
	}
	if o.ShedBudget <= 0 {
		o.ShedBudget = 0.01
	}
	if o.EvalInterval <= 0 {
		o.EvalInterval = 5 * time.Second
	}
	return o
}

// feedSLO pushes one tenant's cumulative budget feeds into the engine.
// Caller holds ts.mu; k may be nil (shed path after a registry miss cannot
// happen, but the latency budget simply needs the kernel's SLO).
func (s *Server) feedSLO(ts *tenant, k *Kernel) {
	if s.sloEngine == nil {
		return
	}
	now := time.Now()
	key := slo.Key{Tenant: ts.key.Tenant, Kernel: ts.key.Kernel}
	if total, miss := ts.drift.toqTotals(); total > 0 {
		key.Budget = slo.BudgetTOQ
		s.sloEngine.Record(key, s.sloOpts.TOQMissBudget, total-miss, miss, now)
	}
	if k != nil && k.P99SLOMillis > 0 && ts.chunkTotal > 0 {
		key.Budget = slo.BudgetLatency
		s.sloEngine.Record(key, s.sloOpts.SlowChunkBudget, ts.chunkTotal-ts.chunkSlow, ts.chunkSlow, now)
	}
	if ts.reqTotal > 0 {
		key.Budget = slo.BudgetShed
		s.sloEngine.Record(key, s.sloOpts.ShedBudget, ts.reqTotal-ts.reqShed, ts.reqShed, now)
	}
}

// noteChunks folds one executed request's chunk-latency verdict into the
// tenant's latency budget: the request's chunks count slow when their mean
// latency exceeded the kernel's p99 SLO. Caller holds ts.mu.
func (ts *tenant) noteChunks(k *Kernel, elements, batch int, elapsed time.Duration) {
	if elements <= 0 || batch <= 0 {
		return
	}
	chunks := int64((elements + batch - 1) / batch)
	ts.chunkTotal += chunks
	if k.P99SLOMillis > 0 {
		perChunkNs := float64(elapsed.Nanoseconds()) / float64(chunks)
		if perChunkNs > k.P99SLOMillis*1e6 {
			ts.chunkSlow += chunks
		}
	}
}

// sloLoop periodically mirrors the evaluated burn rates into slo.* gauges.
func (s *Server) sloLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case now := <-t.C:
			s.sloEngine.Publish(s.metrics, now)
		}
	}
}

// historyLoop records periodic registry snapshots into the history ring.
func (s *Server) historyLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case now := <-t.C:
			s.history.Record(now, s.metrics.Snapshot())
		}
	}
}

// AlertsResponse is the GET /v1/alerts reply.
type AlertsResponse struct {
	Enabled bool        `json:"enabled"`
	Alerts  []slo.Alert `json:"alerts"`
}

// handleAlerts is GET /v1/alerts: every budget series' evaluated state.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	resp := AlertsResponse{Enabled: s.sloEngine != nil}
	if s.sloEngine != nil {
		resp.Alerts = s.sloEngine.Evaluate(time.Now())
	}
	if resp.Alerts == nil {
		resp.Alerts = []slo.Alert{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetricsHistory is GET /v1/metrics/history: the node's snapshot ring.
func (s *Server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		writeError(w, http.StatusNotFound,
			errors.New("metrics history disabled; enable with Options.HistoryInterval (rumba-serve -history-interval)"))
		return
	}
	writeJSON(w, http.StatusOK, s.history.Dump())
}

// handleTraceByID is GET /debug/rumba/traces/{traceID}: the flight-recorder
// lookup behind the router's cross-node stitcher.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		writeError(w, http.StatusNotFound,
			errors.New("tracing disabled; enable with Options.TraceCapacity (rumba-serve -trace-capacity)"))
		return
	}
	id := r.PathValue("traceID")
	snaps := s.recorder.Lookup(id)
	if len(snaps) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("no retained trace %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"traceID": id, "traces": snaps})
}
