package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"rumba/internal/bench"
	"rumba/internal/energy"
	"rumba/internal/exec"
	"rumba/internal/predictor"
	"rumba/internal/quality"
	"rumba/internal/server"
)

// This file is an in-process cluster harness: N real rumba-serve nodes (full
// server.Server instances behind httptest listeners) fronted by a real
// Router. The e2e tests and the CI cluster smoke stage both run on it — same
// HTTP surfaces, same probe traffic, same handoff wire format as a deployed
// cluster, minus the network.

// synthHarnessExec is the approximate executor of the harness's synthetic
// kernel: output = 2*in[0] + 0.125, a fixed offset from the exact 2*in[0].
type synthHarnessExec struct{}

func (synthHarnessExec) Invoke(in []float64) []float64            { return []float64{in[0]*2 + 0.125} }
func (synthHarnessExec) CyclesPerInvocation() float64             { return 64 }
func (synthHarnessExec) EnergyPerInvocation(energy.Model) float64 { return 1 }

// harnessScoreChecker reads the predicted error straight from the input
// triple's third element, so tests choose each element's fate exactly.
type harnessScoreChecker struct{}

func (harnessScoreChecker) Name() string                         { return "score" }
func (harnessScoreChecker) PredictError(in, _ []float64) float64 { return in[2] }
func (c harnessScoreChecker) PredictErrorBatch(dst []float64, ins, outs [][]float64) {
	predictor.ScalarBatch(c, dst, ins, outs)
}
func (harnessScoreChecker) Cost() predictor.Cost { return predictor.Cost{} }
func (harnessScoreChecker) Reset()               {}

// SynthKernel builds the harness's synthetic kernel: inputs are
// {value, spare, score} triples, the approximate path returns value*2+0.125,
// the exact path value*2, and the "score" checker predicts exactly score.
// Deterministic and training-free, which keeps cluster tests about the
// cluster.
func SynthKernel(name string) *server.Kernel {
	return &server.Kernel{
		Name: name,
		Spec: &bench.Spec{
			Name:   name,
			InDim:  3,
			OutDim: 1,
			Exact:  func(in []float64) []float64 { return []float64{in[0] * 2} },
			Metric: quality.MeanRelativeError,
			Scale:  1,
		},
		NewAccel: func() (exec.Executor, error) { return synthHarnessExec{}, nil },
		Checkers: map[string]server.CheckerFactory{
			"score": func() predictor.Predictor { return harnessScoreChecker{} },
		},
		DefaultChecker: "score",
	}
}

// HarnessNode is one in-process rumba-serve node.
type HarnessNode struct {
	Name   string
	Server *server.Server
	HTTP   *httptest.Server
	killed bool
}

// HarnessOptions configures NewHarness.
type HarnessOptions struct {
	// Nodes is the node count; <= 0 uses 3.
	Nodes int
	// Router configures the fronting router. Probe defaults that make tests
	// brisk are applied when unset (fast interval, single-failure suspect,
	// two-failure down).
	Router Options
	// Kernels supplies each node's kernel set; nil installs SynthKernel
	// ("synth") everywhere. Called once per node.
	Kernels func(nodeIndex int) []*server.Kernel
	// Registry supplies a full registry per node (e.g. loaded from a kernel
	// package bundle) and takes precedence over Kernels.
	Registry func(nodeIndex int) (*server.Registry, error)
	// ServerOptions supplies each node's server options (state paths etc.);
	// nil uses defaults.
	ServerOptions func(nodeIndex int) server.Options
}

// Harness is the assembled in-process cluster.
type Harness struct {
	Nodes  []*HarnessNode
	Router *Router
	// HTTP fronts the router; clients talk to HTTP.URL exactly as they
	// would to a single rumba-serve node.
	HTTP *httptest.Server

	cancel context.CancelFunc
}

// NewHarness boots n nodes and a fronting router and starts the prober. Call
// Close when done.
func NewHarness(opts HarnessOptions) (*Harness, error) {
	n := opts.Nodes
	if n <= 0 {
		n = 3
	}
	if opts.Router.Probe.Interval == 0 {
		opts.Router.Probe.Interval = 50 * time.Millisecond
	}
	if opts.Router.Probe.SuspectAfter == 0 {
		opts.Router.Probe.SuspectAfter = 1
	}
	if opts.Router.Probe.DownAfter == 0 {
		opts.Router.Probe.DownAfter = 2
	}
	h := &Harness{}
	nodes := make([]Node, 0, n)
	for i := 0; i < n; i++ {
		node, err := h.bootNode(i, opts)
		if err != nil {
			h.Close()
			return nil, err
		}
		h.Nodes = append(h.Nodes, node)
		nodes = append(nodes, Node{Name: node.Name, URL: node.HTTP.URL})
	}
	rt, err := NewRouter(nodes, opts.Router)
	if err != nil {
		h.Close()
		return nil, err
	}
	h.Router = rt
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	rt.Start(ctx)
	h.HTTP = httptest.NewServer(rt.Handler())
	return h, nil
}

func (h *Harness) bootNode(i int, opts HarnessOptions) (*HarnessNode, error) {
	var reg *server.Registry
	if opts.Registry != nil {
		var err error
		if reg, err = opts.Registry(i); err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
	} else {
		reg = server.NewKernelRegistry()
		kernels := []*server.Kernel{SynthKernel("synth")}
		if opts.Kernels != nil {
			kernels = opts.Kernels(i)
		}
		for _, k := range kernels {
			if err := reg.Add(k); err != nil {
				return nil, fmt.Errorf("node %d: %w", i, err)
			}
		}
	}
	var sopts server.Options
	if opts.ServerOptions != nil {
		sopts = opts.ServerOptions(i)
	}
	s, err := server.New(reg, sopts)
	if err != nil {
		return nil, fmt.Errorf("node %d: %w", i, err)
	}
	return &HarnessNode{
		Name:   fmt.Sprintf("node-%d", i),
		Server: s,
		HTTP:   httptest.NewServer(s.Handler()),
	}, nil
}

// URL returns the router's base URL — the cluster's front door.
func (h *Harness) URL() string { return h.HTTP.URL }

// Node returns the named node (nil if unknown).
func (h *Harness) Node(name string) *HarnessNode {
	for _, n := range h.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Kill hard-stops one node: its listener closes (connections refuse, like a
// crashed process) and its server shuts down. The membership discovers the
// death through probing; the ring is untouched.
func (h *Harness) Kill(name string) error {
	node := h.Node(name)
	if node == nil {
		return fmt.Errorf("harness: no node %q", name)
	}
	if node.killed {
		return nil
	}
	node.killed = true
	node.HTTP.Close()
	return node.Server.Shutdown(context.Background())
}

// Close tears the whole cluster down: router first (stops the prober), then
// every surviving node.
func (h *Harness) Close() {
	if h.HTTP != nil {
		h.HTTP.Close()
	}
	if h.Router != nil {
		h.Router.Stop()
	}
	if h.cancel != nil {
		h.cancel()
	}
	for _, n := range h.Nodes {
		if !n.killed {
			n.killed = true
			n.HTTP.Close()
			_ = n.Server.Shutdown(context.Background())
		}
	}
}
