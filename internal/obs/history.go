package obs

import (
	"sync"
	"time"
)

// History is a fixed-capacity ring of timestamped registry snapshots — the
// node-local metrics store behind /v1/metrics/history. A collector goroutine
// Records the registry every interval; queries then answer the questions a
// point-in-time Snapshot cannot: counter rates over a window (via Delta) and
// windowed latency quantiles (via the bucket-interpolated QuantileInterp over
// the window's histogram delta). Capacity × interval is the retention horizon;
// with the defaults (240 samples × 15s) one hour of history costs a few
// hundred kilobytes per node and no external TSDB.
type History struct {
	mu      sync.Mutex
	samples []HistorySample // ring storage, len == capacity once allocated
	next    int             // slot the next Record writes
	count   int             // live samples, <= capacity
}

// HistorySample is one timestamped registry snapshot.
type HistorySample struct {
	At   time.Time `json:"at"`
	Snap Snapshot  `json:"snapshot"`
}

// DefaultHistoryCapacity retains one hour at the default 15s interval.
const DefaultHistoryCapacity = 240

// NewHistory builds a ring retaining the last capacity snapshots
// (<= 0 uses DefaultHistoryCapacity).
func NewHistory(capacity int) *History {
	if capacity <= 0 {
		capacity = DefaultHistoryCapacity
	}
	return &History{samples: make([]HistorySample, capacity)}
}

// Record appends one snapshot, displacing the oldest when full.
func (h *History) Record(at time.Time, s Snapshot) {
	h.mu.Lock()
	h.samples[h.next] = HistorySample{At: at, Snap: s}
	h.next = (h.next + 1) % len(h.samples)
	if h.count < len(h.samples) {
		h.count++
	}
	h.mu.Unlock()
}

// Capacity returns the ring size.
func (h *History) Capacity() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Len returns the number of retained samples.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Samples returns the retained samples, oldest first. The slice is fresh but
// the snapshots are shared — callers must treat them as immutable (they are:
// Registry.Snapshot detaches).
func (h *History) Samples() []HistorySample {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.window(0)
}

// window returns the retained samples no older than `since` (zero time keeps
// everything), oldest first. Caller holds h.mu.
func (h *History) window(sinceNanos int64) []HistorySample {
	out := make([]HistorySample, 0, h.count)
	start := h.next - h.count
	if start < 0 {
		start += len(h.samples)
	}
	for i := 0; i < h.count; i++ {
		s := h.samples[(start+i)%len(h.samples)]
		if sinceNanos != 0 && s.At.UnixNano() < sinceNanos {
			continue
		}
		out = append(out, s)
	}
	return out
}

// bounds returns the oldest and newest sample inside the window ending at the
// newest sample. ok is false with fewer than two in-window samples — a rate
// needs a span.
func (h *History) bounds(window time.Duration) (oldest, newest HistorySample, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count < 2 {
		return HistorySample{}, HistorySample{}, false
	}
	all := h.window(0)
	newest = all[len(all)-1]
	cut := newest.At.Add(-window)
	oldest = all[0]
	if window > 0 {
		for _, s := range all {
			if !s.At.Before(cut) {
				oldest = s
				break
			}
		}
	}
	if !newest.At.After(oldest.At) {
		return HistorySample{}, HistorySample{}, false
	}
	return oldest, newest, true
}

// Rate returns the named counter's per-second increase over the window ending
// at the newest sample (window <= 0 spans the whole ring). ok is false when
// fewer than two samples cover the window.
func (h *History) Rate(counter string, window time.Duration) (perSec float64, ok bool) {
	oldest, newest, ok := h.bounds(window)
	if !ok {
		return 0, false
	}
	d := newest.Snap.Counters[counter] - oldest.Snap.Counters[counter]
	return float64(d) / newest.At.Sub(oldest.At).Seconds(), true
}

// Quantile returns the interpolated q-quantile of the named histogram's
// observations within the window ending at the newest sample — the Delta of
// the histogram between the window's edge samples, so only fresh observations
// count. ok is false when the window holds fewer than two samples or no
// observations landed inside it.
func (h *History) Quantile(hist string, q float64, window time.Duration) (float64, bool) {
	oldest, newest, ok := h.bounds(window)
	if !ok {
		return 0, false
	}
	d := Delta(oldest.Snap, newest.Snap)
	hs := d.Histograms[hist]
	if hs.Count <= 0 {
		return 0, false
	}
	return QuantileInterp(hs, q), true
}

// HistoryDump is the /v1/metrics/history payload.
type HistoryDump struct {
	Capacity int             `json:"capacity"`
	Samples  []HistorySample `json:"samples"`
}

// Dump freezes the ring for JSON export, oldest sample first.
func (h *History) Dump() HistoryDump {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistoryDump{Capacity: len(h.samples), Samples: h.window(0)}
}
