// Streaming with cancellation, degradation and live metrics: the hardened
// online runtime.
//
// A long-lived service feeds kernel inputs through core.Stream instead of
// batching them: detection, bounded recovery and in-order merging run
// concurrently, a per-job deadline turns a stuck exact re-execution into a
// Degraded (approximate) result instead of a stalled pipeline, and the whole
// run can be cancelled through a context. The runtime's observability
// registry is printed at the end — the same snapshot rumba-demo -stream
// serves over expvar.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/core"
	"rumba/internal/trainer"
)

func main() {
	spec, err := bench.Get("fft")
	if err != nil {
		log.Fatal(err)
	}

	train := spec.GenTrain(4000)
	acfg, err := trainer.TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train,
		trainer.DefaultAccelTrainConfig(spec.Name))
	if err != nil {
		log.Fatal(err)
	}
	acc, err := accel.New(acfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	preds, err := trainer.TrainPredictors(spec, train, trainer.Observe(spec, acc, train))
	if err != nil {
		log.Fatal(err)
	}

	tuner, err := core.NewTuner(core.ModeTOQ, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	st, err := core.NewStream(core.Config{
		Spec:    spec,
		Accel:   acc,
		Checker: preds.Tree,
		Tuner:   tuner,
		// Production knobs: a stuck exact re-execution degrades after 50ms,
		// and at most 64 elements are in flight between detection and the
		// in-order merger.
		RecoveryDeadline: 50 * time.Millisecond,
		MaxInFlight:      64,
	}, 3)
	if err != nil {
		log.Fatal(err)
	}

	// The producer honours the same context as the stream: cancelling ctx
	// (a shutdown signal in a real service) tears the whole pipeline down
	// without leaking a goroutine.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	test := spec.GenTest(6000)
	inputs := make(chan []float64)
	go func() {
		defer close(inputs)
		for _, in := range test.Inputs {
			select {
			case inputs <- in:
			case <-ctx.Done():
				return
			}
		}
	}()

	results, err := st.Process(ctx, inputs)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := core.EvaluateStream(results, test.Targets, spec.Metric, spec.Scale)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streamed %d elements: %d re-executed, %d degraded, %.2f%% output error\n",
		stats.Elements, stats.Fixed, stats.Degraded, 100*stats.OutputError)

	snap := st.Metrics().Snapshot()
	fmt.Println("\nobservability snapshot:")
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-30s %d\n", n, snap.Counters[n])
	}
	for _, n := range []string{core.MetricQueueDepth, core.MetricPending, core.MetricInFlight} {
		g := snap.Gauges[n]
		fmt.Printf("  %-30s max %.0f\n", n, g.Max)
	}
	if h, ok := snap.Histograms[core.MetricDetectNs]; ok {
		fmt.Printf("  %-30s mean %.0fns  p99 <=%.0fns\n", core.MetricDetectNs, h.Mean(), h.Quantile(0.99))
	}
}
