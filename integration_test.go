package rumba

// End-to-end integration tests across the whole stack: offline training →
// bundle serialisation → batch and streaming online runs → cost accounting.
// These are the repository's "does the system hold together" checks; the
// per-package tests cover the parts.

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"rumba/internal/accel"
	"rumba/internal/approx"
	"rumba/internal/bench"
	"rumba/internal/bundle"
	"rumba/internal/core"
	"rumba/internal/exec"
	"rumba/internal/nn"
	"rumba/internal/pkg"
	"rumba/internal/pkg/conformance"
	"rumba/internal/server"
	"rumba/internal/trainer"
)

// trainStack builds the full offline artifact set for one benchmark at test
// scale.
func trainStack(t *testing.T, name string, n, epochs int) (*bench.Spec, *accel.Accelerator, trainer.PredictorSet, nn.Dataset) {
	t.Helper()
	spec, err := bench.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	train := spec.GenTrain(n)
	cfg := trainer.DefaultAccelTrainConfig(name)
	cfg.NN.Epochs = epochs
	acfg, err := trainer.TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := accel.New(acfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := trainer.TrainPredictors(spec, train, trainer.Observe(spec, acc, train))
	if err != nil {
		t.Fatal(err)
	}
	return spec, acc, preds, spec.GenTest(n)
}

// TestEndToEndTrainBundleRun exercises the full offline→artifact→online
// path: a bundle written to disk must reproduce the exact same online run
// as the in-memory artifacts it came from.
func TestEndToEndTrainBundleRun(t *testing.T) {
	spec, acc, preds, test := trainStack(t, "inversek2j", 1000, 30)

	b, err := bundle.New(spec, acc.Config(), preds)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ik.json")
	if err := bundle.Save(path, b); err != nil {
		t.Fatal(err)
	}
	loaded, loadedSpec, err := bundle.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	loadedAcc, err := loaded.Accelerator()
	if err != nil {
		t.Fatal(err)
	}

	run := func(a *accel.Accelerator, ps trainer.PredictorSet) *core.Report {
		tuner, err := core.NewTuner(core.ModeTOQ, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.NewSystem(core.Config{Spec: loadedSpec, Accel: a, Checker: ps.Tree, Tuner: tuner})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Run(test)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	orig := run(acc, preds)
	reloaded := run(loadedAcc, loaded.Predictors())
	if orig.Fixed != reloaded.Fixed {
		t.Fatalf("fix counts differ after bundle round trip: %d vs %d", orig.Fixed, reloaded.Fixed)
	}
	if math.Abs(orig.OutputError-reloaded.OutputError) > 1e-12 {
		t.Fatalf("output errors differ: %v vs %v", orig.OutputError, reloaded.OutputError)
	}
}

// TestEndToEndSoftwareExecutors runs the Rumba system over every software
// approximator on the same kernel: the managed output error must improve on
// the unchecked error whenever the checker fires.
func TestEndToEndSoftwareExecutors(t *testing.T) {
	spec, err := bench.Get("sobel")
	if err != nil {
		t.Fatal(err)
	}
	train := spec.GenTrain(2000)
	test := spec.GenTest(3000)

	tile, err := approx.NewTile(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	memo, err := approx.NewMemo(spec, 5, train.Inputs, 0)
	if err != nil {
		t.Fatal(err)
	}
	prec, err := approx.NewPrecision(spec, 5)
	if err != nil {
		t.Fatal(err)
	}

	engines := []struct {
		name string
		eng  exec.Executor
	}{
		{"tile", tile},
		{"memo", memo},
		{"precision", prec},
	}
	for _, e := range engines {
		obs := trainer.Observe(spec, e.eng, train)
		preds, err := trainer.TrainPredictors(spec, train, obs)
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if r, can := e.eng.(interface{ Reset() }); can {
			r.Reset()
		}
		tuner, err := core.NewTuner(core.ModeTOQ, 0.20)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.NewSystem(core.Config{Spec: spec, Accel: e.eng, Checker: preds.Tree, Tuner: tuner})
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		rep, err := sys.Run(test)
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if rep.Fixed > 0 && rep.OutputError >= rep.UncheckedError {
			t.Errorf("%s: recovery did not improve quality (%v vs %v)", e.name, rep.OutputError, rep.UncheckedError)
		}
		if rep.Energy.Savings <= 0 || rep.Speedup <= 0 {
			t.Errorf("%s: missing cost accounting", e.name)
		}
	}
}

// TestEndToEndStreamEqualsBatch cross-checks the concurrent streaming
// runtime against the batch runtime on a fresh benchmark stack.
func TestEndToEndStreamEqualsBatch(t *testing.T) {
	spec, acc, preds, test := trainStack(t, "fft", 800, 30)

	t1, _ := core.NewTuner(core.ModeTOQ, 0.12)
	sys, err := core.NewSystem(core.Config{Spec: spec, Accel: acc, Checker: preds.Linear, Tuner: t1})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := sys.Run(test)
	if err != nil {
		t.Fatal(err)
	}

	t2, _ := core.NewTuner(core.ModeTOQ, 0.12)
	st, err := core.NewStream(core.Config{Spec: spec, Accel: acc, Checker: preds.Linear, Tuner: t2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make(chan []float64)
	go func() {
		defer close(inputs)
		for _, in := range test.Inputs {
			inputs <- in
		}
	}()
	results, err := st.Process(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := core.EvaluateStream(results, test.Targets, spec.Metric, spec.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fixed != batch.Fixed || math.Abs(stats.OutputError-batch.OutputError) > 1e-12 {
		t.Fatalf("stream (%d fixed, err %v) != batch (%d fixed, err %v)",
			stats.Fixed, stats.OutputError, batch.Fixed, batch.OutputError)
	}
}

// TestEndToEndPackagePath routes a kernel through the deployment artifact
// chain: train → package build → install into a serve registry → registry
// load (full gate, corpus replay included) → HTTP serve → invoke → corpus
// conformance. This is the path a production kernel takes from rumba-train
// to live traffic.
func TestEndToEndPackagePath(t *testing.T) {
	spec, acc, preds, _ := trainStack(t, "sobel", 600, 20)
	b, err := bundle.New(spec, acc.Config(), preds)
	if err != nil {
		t.Fatal(err)
	}

	built, err := pkg.Build(t.TempDir(), b, pkg.BuildConfig{
		Version: "1.0.0",
		Quality: pkg.QualitySpec{TOQ: 0.30},
		CorpusN: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	registry := t.TempDir()
	installed, err := pkg.Install(registry, built.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(installed) != "sobel-1.0.0" {
		t.Fatalf("installed at %s", installed)
	}

	reg := server.NewKernelRegistry()
	n, err := reg.LoadPackageDir(registry)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("loaded %d packages, want 1", n)
	}
	srv, err := server.New(reg, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Error(err)
		}
	}()

	installedPkg, err := pkg.Load(installed)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(server.InvokeRequest{
		Kernel: "sobel",
		Inputs: installedPkg.Corpus.Inputs[:8],
		Mode:   "toq",
		Target: installedPkg.Manifest.Quality.TOQ,
	})
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(hs.URL+"/v1/invoke", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("invoke status %d", httpResp.StatusCode)
	}
	var resp server.InvokeResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Outputs) != 8 || resp.Checker == "" {
		t.Fatalf("invoke response = %+v", resp)
	}

	rep, err := conformance.Run(conformance.Config{
		Package:  installedPkg,
		Shape:    conformance.ShapeSteady,
		Requests: 6,
		Batch:    8,
		BaseURL:  hs.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("conformance failed on the installed package: %s", rep.Summary())
	}
}
