package sampling_test

import (
	"fmt"

	"rumba/internal/sampling"
)

// ExampleEvaluate shows why once-every-N monitoring misses violations: ten
// invocations, two of them bad, a 1-in-5 sampler that happens to check the
// good ones.
func ExampleEvaluate() {
	errors := []float64{0.01, 0.5, 0.02, 0.01, 0.01, 0.02, 0.6, 0.01, 0.02, 0.01}
	res, err := sampling.Evaluate(errors, sampling.Policy{Period: 5, MaxError: 0.1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("violations=%d detected=%d missed=%d\n", res.Violations, res.Detected, res.Missed)
	// Output:
	// violations=2 detected=0 missed=2
}
