package server

import (
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rumba/internal/energy"
	"rumba/internal/exec"
	"rumba/internal/obs"
	"rumba/internal/tune"
)

// tunedExec is a synthetic executor with datapath support: ApplyDatapath
// records the selection and the per-element delay table makes the chosen
// datapath observable in wall-clock terms (the frontier e2e test asserts a
// loose-TOQ tenant is actually served cheaper, not just labelled cheaper).
type tunedExec struct {
	mu       sync.Mutex
	datapath string
	lutBits  int
	delay    map[string]time.Duration
}

func (e *tunedExec) Invoke(in []float64) []float64 {
	e.mu.Lock()
	d := e.delay[e.datapath]
	e.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	return []float64{in[0]*2 + 0.125}
}
func (e *tunedExec) CyclesPerInvocation() float64             { return 64 }
func (e *tunedExec) EnergyPerInvocation(energy.Model) float64 { return 1 }
func (e *tunedExec) ApplyDatapath(name string, lutBits int) error {
	e.mu.Lock()
	e.datapath, e.lutBits = name, lutBits
	e.mu.Unlock()
	return nil
}

func (e *tunedExec) applied() (string, int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.datapath, e.lutBits
}

// testFrontier builds a two-point artifact: a cheap fixed-point configuration
// that only meets a loose quality target, and an expensive per-element exp
// configuration that meets any target.
func testFrontier(t *testing.T, kernel string) *tune.Frontier {
	t.Helper()
	rep := &tune.SweepReport{
		Kernel:    kernel,
		GridSize:  2,
		Evaluated: 2,
		Frontier: []tune.Point{
			{Datapath: tune.DatapathFixed, LUTBits: 10, Batch: 64, Checker: "score",
				Quality: 0.08, NsPerElem: 10, ChunkNs: 640, Measured: true},
			{Datapath: tune.DatapathExp, Batch: 1, Checker: "score",
				Quality: 0.01, NsPerElem: 1000, ChunkNs: 1000, Measured: true},
		},
	}
	f, err := tune.NewFrontier([]*tune.SweepReport{rep})
	if err != nil {
		t.Fatalf("NewFrontier: %v", err)
	}
	return f
}

// TestFrontierSelectionByTOQ is the SLA-selection e2e: through the unchanged
// /v1/invoke API, a tight-TOQ tenant lands on the expensive exp/b1 frontier
// point while a loose-TOQ tenant lands on the cheap fixed/b64 point — and the
// loose tenant's delivered ns/element is measurably lower.
func TestFrontierSelectionByTOQ(t *testing.T) {
	var execs []*tunedExec
	var emu sync.Mutex
	kernel := synthKernelTuned(&execs, &emu)
	metrics := obs.NewRegistry()
	_, hs := newTestServer(t, Options{Frontier: testFrontier(t, "synth"), Metrics: metrics}, kernel)

	inputs := make([][]float64, 128)
	for i := range inputs {
		inputs[i] = in(float64(i), 0)
	}
	// Tight target 0.03: only the exp point's quality (0.01) qualifies.
	status, _, msg := invoke(t, hs.URL, InvokeRequest{Tenant: "tight", Kernel: "synth",
		Mode: "toq", Target: 0.03, Inputs: inputs})
	if status != http.StatusOK {
		t.Fatalf("tight invoke: status %d (%s)", status, msg)
	}
	// Loose target 0.10: both qualify, fixed/b64 is cheaper.
	status, _, msg = invoke(t, hs.URL, InvokeRequest{Tenant: "loose", Kernel: "synth",
		Mode: "toq", Target: 0.10, Inputs: inputs})
	if status != http.StatusOK {
		t.Fatalf("loose invoke: status %d (%s)", status, msg)
	}

	byTenant := map[string]TenantInfo{}
	var tenants map[string][]TenantInfo
	getJSON(t, hs.URL+"/v1/tenants", http.StatusOK, &tenants)
	for _, info := range tenants["tenants"] {
		byTenant[info.Tenant] = info
	}
	tight, loose := byTenant["tight"], byTenant["loose"]
	if tight.TunePoint != "exp/b1/score" || tight.BatchSize != 1 {
		t.Fatalf("tight tenant point = %q batch %d, want exp/b1/score batch 1", tight.TunePoint, tight.BatchSize)
	}
	if loose.TunePoint != "fixed/lut10/b64/score" || loose.BatchSize != 64 {
		t.Fatalf("loose tenant point = %q batch %d, want fixed/lut10/b64/score batch 64", loose.TunePoint, loose.BatchSize)
	}

	// The executors were actually reconfigured, in tenant-creation order.
	emu.Lock()
	if len(execs) != 2 {
		emu.Unlock()
		t.Fatalf("executors created = %d, want 2", len(execs))
	}
	tightExec, looseExec := execs[0], execs[1]
	emu.Unlock()
	if dp, _ := tightExec.applied(); dp != tune.DatapathExp {
		t.Fatalf("tight executor datapath = %q, want exp", dp)
	}
	if dp, bits := looseExec.applied(); dp != tune.DatapathFixed || bits != 10 {
		t.Fatalf("loose executor datapath = %q lut %d, want fixed lut 10", dp, bits)
	}

	// Gauges: selection index, predicted cost, and delivered cost — the
	// loose tenant must be measurably cheaper (its executor has no per-invoke
	// delay; the tight one sleeps 50µs/element).
	gauge := func(name, tenant string) float64 {
		return metrics.Gauge(obs.Labeled(name, "tenant", tenant, "kernel", "synth")).Value()
	}
	if got := gauge(MetricTuneSelected, "tight"); got != 1 {
		t.Fatalf("tight %s = %v, want 1", MetricTuneSelected, got)
	}
	if got := gauge(MetricTuneSelected, "loose"); got != 0 {
		t.Fatalf("loose %s = %v, want 0", MetricTuneSelected, got)
	}
	if got := gauge(MetricTunePredictedNs, "tight"); got != 1000 {
		t.Fatalf("tight %s = %v, want 1000", MetricTunePredictedNs, got)
	}
	tightNs := gauge(MetricTuneDeliveredNs, "tight")
	looseNs := gauge(MetricTuneDeliveredNs, "loose")
	if tightNs <= 0 || looseNs <= 0 {
		t.Fatalf("delivered gauges not published: tight %v loose %v", tightNs, looseNs)
	}
	// 50µs of injected delay per element vs none: well beyond noise.
	if looseNs*2 > tightNs {
		t.Fatalf("loose tenant not served cheaper: delivered %v ns/elem vs tight %v", looseNs, tightNs)
	}
}

// synthKernelTuned is synthKernel with a fresh datapath-capable executor per
// tenant, recorded in creation order.
func synthKernelTuned(execs *[]*tunedExec, mu *sync.Mutex) *Kernel {
	k := synthKernel("synth", nil)
	k.NewAccel = func() (ex exec.Executor, err error) {
		e := &tunedExec{delay: map[string]time.Duration{tune.DatapathExp: 50 * time.Microsecond}}
		mu.Lock()
		*execs = append(*execs, e)
		mu.Unlock()
		return e, nil
	}
	return k
}

// TestFrontierSLOFilter: a kernel p99 SLO excludes frontier points whose
// chunk latency would blow it, even when they are cheaper per element.
func TestFrontierSLOFilter(t *testing.T) {
	var execs []*tunedExec
	var mu sync.Mutex
	k := synthKernelTuned(&execs, &mu)
	// The fixed/b64 point's ChunkNs is 640; an SLO of 500ns (0.0005ms)
	// excludes it, leaving only exp/b1 (ChunkNs 1000... also excluded).
	// Use 700ns: fixed/b64 (640) passes, exp/b1 (1000) fails — then tighten
	// quality so nothing qualifies and defaults survive.
	k.P99SLOMillis = 700 * 1e-6
	_, hs := newTestServer(t, Options{Frontier: testFrontier(t, "synth")}, k)

	// Loose quality + SLO 700ns: fixed/b64 qualifies.
	status, _, _ := invoke(t, hs.URL, InvokeRequest{Tenant: "a", Kernel: "synth",
		Mode: "toq", Target: 0.10, Inputs: [][]float64{in(1, 0)}})
	if status != http.StatusOK {
		t.Fatalf("invoke: status %d", status)
	}
	// Tight quality: only exp/b1 meets quality but its chunk latency blows
	// the SLO — no point qualifies, tenant keeps server defaults.
	status, _, _ = invoke(t, hs.URL, InvokeRequest{Tenant: "b", Kernel: "synth",
		Mode: "toq", Target: 0.03, Inputs: [][]float64{in(1, 0)}})
	if status != http.StatusOK {
		t.Fatalf("invoke: status %d", status)
	}

	var tenants map[string][]TenantInfo
	getJSON(t, hs.URL+"/v1/tenants", http.StatusOK, &tenants)
	for _, info := range tenants["tenants"] {
		switch info.Tenant {
		case "a":
			if info.TunePoint != "fixed/lut10/b64/score" {
				t.Errorf("tenant a point = %q, want fixed/lut10/b64/score", info.TunePoint)
			}
		case "b":
			if info.TunePoint != "" || info.BatchSize != 0 {
				t.Errorf("tenant b point = %q batch %d, want server defaults", info.TunePoint, info.BatchSize)
			}
		}
	}
}

// TestFrontierCheckerAdoption: a kernel whose default is unchecked execution
// adopts the frontier point's checker family when the request doesn't choose.
func TestFrontierCheckerAdoption(t *testing.T) {
	var execs []*tunedExec
	var mu sync.Mutex
	k := synthKernelTuned(&execs, &mu)
	k.DefaultChecker = "none"
	_, hs := newTestServer(t, Options{Frontier: testFrontier(t, "synth")}, k)

	status, resp, _ := invoke(t, hs.URL, InvokeRequest{Tenant: "acme", Kernel: "synth",
		Inputs: [][]float64{in(1, 0)}})
	if status != http.StatusOK {
		t.Fatalf("invoke: status %d", status)
	}
	if resp.Checker != "score" {
		t.Fatalf("adopted checker = %q, want score (from frontier)", resp.Checker)
	}
	// An explicit request choice still wins over the frontier.
	status, resp, _ = invoke(t, hs.URL, InvokeRequest{Tenant: "manual", Kernel: "synth",
		Checker: "none", Inputs: [][]float64{in(1, 0)}})
	if status != http.StatusOK {
		t.Fatalf("invoke: status %d", status)
	}
	if resp.Checker != "none" {
		t.Fatalf("explicit checker = %q, want none", resp.Checker)
	}
}

// TestFrontierAppliedOnRestore: a tenant restored from a snapshot re-runs
// frontier selection against this node's artifact at its own restored target.
func TestFrontierAppliedOnRestore(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "state.json")
	var execs []*tunedExec
	var mu sync.Mutex
	k := synthKernelTuned(&execs, &mu)
	f := testFrontier(t, "synth")

	s1, hs := newTestServer(t, Options{Frontier: f, StatePath: state}, k)
	status, _, _ := invoke(t, hs.URL, InvokeRequest{Tenant: "tight", Kernel: "synth",
		Mode: "toq", Target: 0.03, Inputs: [][]float64{in(1, 0)}})
	if status != http.StatusOK {
		t.Fatalf("invoke: status %d", status)
	}
	if err := s1.tenants.SaveState(state); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}

	reg := NewKernelRegistry()
	k2 := synthKernelTuned(&execs, &mu)
	if err := reg.Add(k2); err != nil {
		t.Fatalf("Add: %v", err)
	}
	s2, err := New(reg, Options{Frontier: f, StatePath: state})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { s2.Shutdown(t.Context()) })
	if s2.Restored != 1 {
		t.Fatalf("restored = %d, want 1", s2.Restored)
	}
	infos := s2.Tenants()
	if len(infos) != 1 || infos[0].TunePoint != "exp/b1/score" || infos[0].BatchSize != 1 {
		t.Fatalf("restored tenant = %+v, want exp/b1/score batch 1", infos)
	}
}
