package analysis

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text      string
		ok        bool
		kind      string
		analyzers []string
		reason    string
		err       bool
	}{
		{"// ordinary comment", false, "", nil, "", false},
		{"// rumba:allow floatcmp", false, "", nil, "", false}, // space breaks the prefix
		{"//rumba:pure", true, DirPure, nil, "", false},
		{"//rumba:pure kernel body", true, DirPure, nil, "kernel body", false},
		{"//rumba:hotpath", true, DirHotpath, nil, "", false},
		{"//rumba:approx", true, DirApprox, nil, "", false},
		{"//rumba:checked recovery sanitizer", true, DirChecked, nil, "recovery sanitizer", false},
		{"//rumba:allow floatcmp", true, DirAllow, []string{"floatcmp"}, "", false},
		{"//rumba:allow floatcmp,purity some reason here", true, DirAllow, []string{"floatcmp", "purity"}, "some reason here", false},
		{"//rumba:allow\thotpath\ttab separated", true, DirAllow, []string{"hotpath"}, "tab separated", false},
		{"//rumba:allow alloc amortised growth", true, DirAllow, []string{"hotpath"}, "amortised growth", false}, // alias
		{"//rumba:allow *", true, DirAllow, []string{"*"}, "", false},
		{"//rumba:allow floatcmp,,purity", true, DirAllow, []string{"floatcmp", "purity"}, "", false},
		{"//rumba:allow", true, DirAllow, nil, "", true},
		{"//rumba:allow ,", true, DirAllow, nil, "", true},
		{"//rumba:", true, "", nil, "", true},
		{"//rumba:purex", true, "purex", nil, "", true},
		{"//rumba:alow floatcmp", true, "alow", nil, "", true},
	}
	for _, tc := range cases {
		d, ok := ParseDirective(tc.text)
		if ok != tc.ok {
			t.Errorf("%q: ok=%v want %v", tc.text, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if (d.Err != "") != tc.err {
			t.Errorf("%q: err=%q want err=%v", tc.text, d.Err, tc.err)
		}
		if tc.err {
			continue
		}
		if d.Kind != tc.kind {
			t.Errorf("%q: kind=%q want %q", tc.text, d.Kind, tc.kind)
		}
		if len(d.Analyzers) != len(tc.analyzers) {
			t.Errorf("%q: analyzers=%v want %v", tc.text, d.Analyzers, tc.analyzers)
		} else {
			for i := range tc.analyzers {
				if d.Analyzers[i] != tc.analyzers[i] {
					t.Errorf("%q: analyzers=%v want %v", tc.text, d.Analyzers, tc.analyzers)
					break
				}
			}
		}
		if d.Reason != tc.reason {
			t.Errorf("%q: reason=%q want %q", tc.text, d.Reason, tc.reason)
		}
	}
}

// TestDirectiveAnalyzer: malformed markers and unknown analyzer names are
// findings; well-formed ones are not.
func TestDirectiveAnalyzer(t *testing.T) {
	diags := runFixture(t, `package dir

//rumba:hotpth typo in the kind
func a() {}

func b(x, y float64) bool {
	return x == y //rumba:allow floatcmp justified
}

func c(x, y float64) bool {
	return x == y //rumba:allow flotcmp typo in the analyzer
}

//rumba:allow
func d() {}
`, AnalyzerDirective)
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	want := []string{
		`unknown //rumba: directive hotpth`,
		`//rumba:allow names unknown analyzer "flotcmp"`,
		`//rumba:allow needs a comma-separated analyzer list`,
	}
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v", got, want)
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("missing finding %q in %v", w, got)
		}
	}
}

// FuzzParseDirective: the parser must be total — no panic, no slice range
// errors — and structurally sane on any input, including malformed,
// duplicated, and whitespace-mangled variants of every directive kind.
func FuzzParseDirective(f *testing.F) {
	seeds := []string{
		"//rumba:pure",
		"//rumba:pure  trailing reason",
		"//rumba:allow",
		"//rumba:allow floatcmp",
		"//rumba:allow floatcmp,purity reason",
		"//rumba:allow alloc",
		"//rumba:allow ,,,",
		"//rumba:allow *",
		"//rumba:approx",
		"//rumba:checked",
		"//rumba:hotpath",
		"//rumba:hotpath\t\treason",
		"//rumba:",
		"//rumba: pure",
		"//rumba:pure//rumba:allow x",
		"//rumba:allow nbsp",
		"//rumba:allow floatcmp //rumba:allow purity",
		"//rumba:PURE",
		"//rumba:allow\x00nul",
		strings.Repeat("//rumba:allow a,", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d, ok := ParseDirective(text)
		if !ok {
			// Only non-markers may be skipped entirely.
			if strings.HasPrefix(text, DirectivePrefix) {
				t.Fatalf("marker %q was silently ignored", text)
			}
			return
		}
		if d.Err == "" {
			switch d.Kind {
			case DirPure, DirApprox, DirChecked, DirHotpath:
			case DirAllow:
				if len(d.Analyzers) == 0 {
					t.Fatalf("well-formed allow with empty analyzer list: %q", text)
				}
				for _, name := range d.Analyzers {
					if name == "" {
						t.Fatalf("empty analyzer name survived parsing: %q", text)
					}
					if strings.ContainsAny(name, " \t") {
						t.Fatalf("analyzer name %q contains whitespace: %q", name, text)
					}
				}
			default:
				t.Fatalf("well-formed directive with unknown kind %q: %q", d.Kind, text)
			}
		} else if !utf8.ValidString(strings.Map(sanitizeRune, d.Err)) {
			t.Fatalf("unprintable error text %q", d.Err)
		}
	})
}
