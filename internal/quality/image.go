package quality

import "math"

// Image-level quality metrics used by the Figure 2 demonstration and the
// image-pipeline example. They operate on flat pixel slices so they stay
// decoupled from the image substrate.

// MSE returns the mean squared error between two equally long pixel slices.
func MSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("quality: MSE length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}

// PSNR returns the peak signal-to-noise ratio in dB for the given peak
// value (255 for 8-bit images). Identical inputs yield +Inf.
func PSNR(a, b []float64, peak float64) float64 {
	mse := MSE(a, b)
	if mse == 0 {
		return math.Inf(1)
	}
	if peak <= 0 {
		peak = 255
	}
	return 10 * math.Log10(peak*peak/mse)
}

// PerceptibleFraction returns the fraction of pixels whose absolute error
// exceeds threshold*peak — the "noticeable pixels" statistic behind the
// Figure 2 argument that error distribution, not just average error,
// determines perceived quality.
func PerceptibleFraction(a, b []float64, peak, threshold float64) float64 {
	if len(a) != len(b) {
		panic("quality: PerceptibleFraction length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	if peak <= 0 {
		peak = 255
	}
	bound := threshold * peak
	n := 0
	for i := range a {
		if math.Abs(a[i]-b[i]) > bound {
			n++
		}
	}
	return float64(n) / float64(len(a))
}
