package experiments

import (
	"fmt"

	"rumba/internal/core"
	"rumba/internal/energy"
	"rumba/internal/pipeline"
	"rumba/internal/predictor"
)

// checkerCost returns the per-element hardware cost of a scheme's checker;
// the oracle and the sampling baselines carry none.
func checkerCost(p *Prepared, s core.Scheme) predictor.Cost {
	switch s {
	case core.SchemeEMA:
		return p.Preds.EMA.Cost()
	case core.SchemeLinear:
		return p.Preds.Linear.Cost()
	case core.SchemeTree:
		return p.Preds.Tree.Cost()
	default:
		return predictor.Cost{}
	}
}

// schemeEnergy evaluates the whole-app energy of one scheme at its 90%-TOQ
// operating point.
func schemeEnergy(p *Prepared, s core.Scheme, op core.OperatingPoint, m energy.Model) (energy.Breakdown, error) {
	topo := p.RumbaAccel.Config().Net.Topo
	act := energy.Activity{
		Elements:                len(p.RumbaObs.Errors),
		Recomputed:              len(op.Fixed),
		AccelInvocations:        len(p.RumbaObs.Errors),
		NPUMACsPerInvocation:    topo.MACs(),
		QueueWordsPerInvocation: topo.Inputs() + topo.Outputs(),
		Checker:                 checkerCost(p, s),
	}
	return energy.WholeAppEnergy(p.Spec.Cost, act, m)
}

// npuEnergy evaluates the unchecked NPU (its own, larger topology; no
// checker, no recovery).
func npuEnergy(p *Prepared, m energy.Model) (energy.Breakdown, error) {
	topo := p.NPUAccel.Config().Net.Topo
	act := energy.Activity{
		Elements:                len(p.NPUObs.Errors),
		AccelInvocations:        len(p.NPUObs.Errors),
		NPUMACsPerInvocation:    topo.MACs(),
		QueueWordsPerInvocation: topo.Inputs() + topo.Outputs(),
	}
	return energy.WholeAppEnergy(p.Spec.Cost, act, m)
}

// Fig14 reproduces Figure 14: whole-application energy savings over the CPU
// baseline at 90% target output quality — the unchecked NPU against Rumba
// under every fixing scheme.
func Fig14(c *Context, benchmarks ...string) (*Table, map[string]map[string]float64, error) {
	names, err := checkBenchmarks(benchmarks)
	if err != nil {
		return nil, nil, err
	}
	m := energy.DefaultModel()
	t := &Table{
		Title:  "Figure 14: application energy savings vs CPU baseline (90% target output quality)",
		Note:   "Paper: unchecked NPU 3.2x average; Rumba/treeErrors 2.2x; kmeans a slowdown; sobel drops sharply under linear/tree.",
		Header: append([]string{"benchmark", "NPU"}, schemeHeaders()...),
	}
	res := make(map[string]map[string]float64)
	sums := make(map[string]float64)
	for _, name := range names {
		p, err := c.Prepare(name)
		if err != nil {
			return nil, nil, err
		}
		row := []string{name}
		res[name] = make(map[string]float64)
		npu, err := npuEnergy(p, m)
		if err != nil {
			return nil, nil, err
		}
		res[name]["NPU"] = npu.Savings
		sums["NPU"] += npu.Savings
		row = append(row, x2(npu.Savings))
		for _, s := range core.AllSchemes {
			b, err := schemeEnergy(p, s, p.OperatingPoint(s), m)
			if err != nil {
				return nil, nil, err
			}
			res[name][s.String()] = b.Savings
			sums[s.String()] += b.Savings
			row = append(row, x2(b.Savings))
		}
		t.AddRow(row...)
	}
	avg := []string{"average", x2(sums["NPU"] / float64(len(names)))}
	for _, s := range core.AllSchemes {
		avg = append(avg, x2(sums[s.String()]/float64(len(names))))
	}
	t.AddRow(avg...)
	return t, res, nil
}

// schemeFlags expands an operating point's fixed set into per-iteration
// recovery bits for the pipeline simulation.
func schemeFlags(n int, op core.OperatingPoint) []bool {
	flags := make([]bool, n)
	for _, idx := range op.Fixed {
		flags[idx] = true
	}
	return flags
}

// Fig15 reproduces Figure 15: whole-application speedup over the CPU
// baseline. Because recovery overlaps the accelerator (Figure 8), Rumba
// retains the NPU's speedup unless the CPU cannot keep up.
func Fig15(c *Context, benchmarks ...string) (*Table, map[string]map[string]float64, error) {
	names, err := checkBenchmarks(benchmarks)
	if err != nil {
		return nil, nil, err
	}
	m := energy.DefaultModel()
	t := &Table{
		Title:  "Figure 15: application speedup vs CPU baseline (90% target output quality)",
		Note:   "Paper: Rumba (linearErrors/treeErrors) maintains the NPU's speedup; kmeans slows down.",
		Header: append([]string{"benchmark", "NPU"}, schemeHeaders()...),
	}
	res := make(map[string]map[string]float64)
	sums := make(map[string]float64)
	for _, name := range names {
		p, err := c.Prepare(name)
		if err != nil {
			return nil, nil, err
		}
		n := len(p.RumbaObs.Errors)
		kernelCycles := energy.KernelCPULatency(p.Spec.Cost, m)
		row := []string{name}
		res[name] = make(map[string]float64)

		// Unchecked NPU: its own topology, no recovery.
		npuRegion := p.NPUAccel.CyclesPerInvocation() * float64(n)
		npuSpeed := pipeline.WholeAppSpeedup(npuRegion, n, kernelCycles, p.Spec.Cost.ApproxFraction)
		res[name]["NPU"] = npuSpeed
		sums["NPU"] += npuSpeed
		row = append(row, x2(npuSpeed))

		for _, s := range core.AllSchemes {
			op := p.OperatingPoint(s)
			sim, err := pipeline.Simulate(schemeFlags(n, op), pipeline.Params{
				AccelCyclesPerIter: p.RumbaAccel.CyclesPerInvocation(),
				CPURecomputeCycles: kernelCycles,
				CheckerCycles:      energy.CheckerLatencyCycles(checkerCost(p, s), m),
			})
			if err != nil {
				return nil, nil, err
			}
			sp := pipeline.WholeAppSpeedup(sim.TotalCycles, n, kernelCycles, p.Spec.Cost.ApproxFraction)
			res[name][s.String()] = sp
			sums[s.String()] += sp
			row = append(row, x2(sp))
		}
		t.AddRow(row...)
	}
	avg := []string{"average", x2(sums["NPU"] / float64(len(names)))}
	for _, s := range core.AllSchemes {
		avg = append(avg, x2(sums[s.String()]/float64(len(names))))
	}
	t.AddRow(avg...)
	return t, res, nil
}

// Fig16 reproduces Figure 16: energy consumption versus the target error
// rate for fft. Ideal is the floor; treeErrors tracks it at relaxed targets
// and the gap widens as the target tightens (false positives grow).
func Fig16(c *Context) (*Table, map[string][]float64, error) {
	p, err := c.Prepare("fft")
	if err != nil {
		return nil, nil, err
	}
	m := energy.DefaultModel()
	targets := []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10}
	t := &Table{
		Title:  "Figure 16: energy savings vs target error rate (fft)",
		Note:   "Paper: unchecked NPU saves 3.3x on fft; treeErrors approaches Ideal for targets above ~7%.",
		Header: []string{"target error", "NPU(unchecked)", "Ideal", "Random", "Uniform", "EMA", "linearErrors", "treeErrors"},
	}
	series := map[string][]float64{}
	npu, err := npuEnergy(p, m)
	if err != nil {
		return nil, nil, err
	}
	for _, target := range targets {
		row := []string{pct(target), x2(npu.Savings)}
		series["NPU"] = append(series["NPU"], npu.Savings)
		for _, s := range core.AllSchemes {
			op := core.FixesForTarget(p.RumbaObs.Errors, p.Scores(s), target)
			b, err := schemeEnergy(p, s, op, m)
			if err != nil {
				return nil, nil, err
			}
			series[s.String()] = append(series[s.String()], b.Savings)
			row = append(row, x2(b.Savings))
		}
		t.AddRow(row...)
	}
	return t, series, nil
}

// Fig17 reproduces Figure 17: the error predictors' per-invocation latency
// relative to the NPU invocation itself. Values below 1 mean the NPU never
// waits for the checker.
func Fig17(c *Context, benchmarks ...string) (*Table, map[string]map[string]float64, error) {
	names, err := checkBenchmarks(benchmarks)
	if err != nil {
		return nil, nil, err
	}
	m := energy.DefaultModel()
	t := &Table{
		Title:  "Figure 17: error-prediction time relative to the NPU invocation",
		Note:   "Paper: below 1 for every benchmark — prediction never stalls the accelerator.",
		Header: []string{"benchmark", "linearErrors", "treeErrors"},
	}
	res := make(map[string]map[string]float64)
	for _, name := range names {
		p, err := c.Prepare(name)
		if err != nil {
			return nil, nil, err
		}
		npuCycles := p.RumbaAccel.CyclesPerInvocation()
		lin := energy.CheckerLatencyCycles(p.Preds.Linear.Cost(), m) / npuCycles
		tree := energy.CheckerLatencyCycles(p.Preds.Tree.Cost(), m) / npuCycles
		res[name] = map[string]float64{"linearErrors": lin, "treeErrors": tree}
		t.AddRow(name, fmt.Sprintf("%.3f", lin), fmt.Sprintf("%.3f", tree))
	}
	return t, res, nil
}

// Fig18Result carries the case-study trace.
type Fig18Result struct {
	Benchmark   string
	Threshold   float64
	PredDiffs   []float64 // per-element normalised predicted error
	CPUActive   []bool    // CPU busy when each element completed
	FlaggedFrac float64
}

// Fig18 reproduces Figure 18: a 200-element window of the treeErrors
// predicted errors with the tuning threshold that meets the 10% target error
// rate, and the CPU recovery activity working in tandem with the
// accelerator.
func Fig18(c *Context, benchmark string) (*Table, Fig18Result, error) {
	if benchmark == "" {
		// fft's accelerator outruns its exact kernel by about 8x — close to
		// the paper's 6.67x example — so the CPU visibly works in tandem
		// rather than saturating.
		benchmark = "fft"
	}
	p, err := c.Prepare(benchmark)
	if err != nil {
		return nil, Fig18Result{}, err
	}
	const window = 200
	n := len(p.RumbaObs.Errors)
	if n > window {
		n = window
	}
	trueErrs := p.RumbaObs.Errors[:n]
	preds := p.PredErrs[core.SchemeTree][:n]
	op := core.FixesForTarget(trueErrs, preds, TargetError)
	flags := make([]bool, n)
	for _, idx := range op.Fixed {
		flags[idx] = true
	}
	flagged := len(op.Fixed)
	m := energy.DefaultModel()
	activity, err := pipeline.ActivityTrace(flags, pipeline.Params{
		AccelCyclesPerIter: p.RumbaAccel.CyclesPerInvocation(),
		CPURecomputeCycles: energy.KernelCPULatency(p.Spec.Cost, m),
	})
	if err != nil {
		return nil, Fig18Result{}, err
	}
	res := Fig18Result{
		Benchmark:   benchmark,
		Threshold:   op.Threshold,
		PredDiffs:   preds,
		CPUActive:   activity,
		FlaggedFrac: float64(flagged) / float64(n),
	}
	busy := 0
	for _, a := range activity {
		if a {
			busy++
		}
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 18: %d-element trace (%s, treeErrors)", n, benchmark),
		Note:   "Paper: threshold 0.33 flags ~15% of 200 elements; the CPU fixes them while the accelerator runs ahead.",
		Header: []string{"statistic", "value"},
	}
	t.AddRow("tuning threshold", fmt.Sprintf("%.3f", op.Threshold))
	t.AddRow("elements above threshold", fmt.Sprintf("%d (%s)", flagged, pct(res.FlaggedFrac)))
	t.AddRow("iterations with CPU recovery active", fmt.Sprintf("%d (%s)", busy, pct(float64(busy)/float64(n))))
	return t, res, nil
}

// HeadlineResult carries the abstract's summary numbers.
type HeadlineResult struct {
	UncheckedError float64 // unchecked NPU average output error
	RumbaError     float64 // Rumba/treeErrors at 90% TOQ
	ErrorReduction float64 // ratio (paper: 2.1x)
	NPUEnergy      float64 // unchecked NPU energy savings (paper: 3.2x)
	RumbaEnergy    float64 // Rumba energy savings (paper: 2.2x)
	NPUSpeedup     float64
	RumbaSpeedup   float64
}

// Headline reproduces the abstract/Section 5.2 summary: error reduction vs
// the unchecked accelerator, and the energy cost of achieving it.
func Headline(c *Context) (*Table, HeadlineResult, error) {
	names, err := checkBenchmarks(nil)
	if err != nil {
		return nil, HeadlineResult{}, err
	}
	m := energy.DefaultModel()
	var res HeadlineResult
	for _, name := range names {
		p, err := c.Prepare(name)
		if err != nil {
			return nil, HeadlineResult{}, err
		}
		var npuErr float64
		for _, e := range p.NPUObs.Errors {
			npuErr += e
		}
		res.UncheckedError += npuErr / float64(len(p.NPUObs.Errors))

		op := p.OperatingPoint(core.SchemeTree)
		res.RumbaError += op.OutputError

		npu, err := npuEnergy(p, m)
		if err != nil {
			return nil, HeadlineResult{}, err
		}
		res.NPUEnergy += npu.Savings
		b, err := schemeEnergy(p, core.SchemeTree, op, m)
		if err != nil {
			return nil, HeadlineResult{}, err
		}
		res.RumbaEnergy += b.Savings

		n := len(p.RumbaObs.Errors)
		kernelCycles := energy.KernelCPULatency(p.Spec.Cost, m)
		res.NPUSpeedup += pipeline.WholeAppSpeedup(
			p.NPUAccel.CyclesPerInvocation()*float64(n), n, kernelCycles, p.Spec.Cost.ApproxFraction)
		sim, err := pipeline.Simulate(schemeFlags(n, op), pipeline.Params{
			AccelCyclesPerIter: p.RumbaAccel.CyclesPerInvocation(),
			CPURecomputeCycles: kernelCycles,
		})
		if err != nil {
			return nil, HeadlineResult{}, err
		}
		res.RumbaSpeedup += pipeline.WholeAppSpeedup(sim.TotalCycles, n, kernelCycles, p.Spec.Cost.ApproxFraction)
	}
	k := float64(len(names))
	res.UncheckedError /= k
	res.RumbaError /= k
	res.NPUEnergy /= k
	res.RumbaEnergy /= k
	res.NPUSpeedup /= k
	res.RumbaSpeedup /= k
	if res.RumbaError > 0 {
		res.ErrorReduction = res.UncheckedError / res.RumbaError
	}
	t := &Table{
		Title:  "Headline (abstract / Section 5.2)",
		Note:   "Paper: 2.1x error reduction (20.6% -> 10%); energy savings 3.2x -> 2.2x; same speedup.",
		Header: []string{"metric", "unchecked NPU", "Rumba (treeErrors)"},
	}
	t.AddRow("average output error", pct(res.UncheckedError), pct(res.RumbaError))
	t.AddRow("error reduction", "1.00x", x2(res.ErrorReduction))
	t.AddRow("energy savings", x2(res.NPUEnergy), x2(res.RumbaEnergy))
	t.AddRow("speedup", x2(res.NPUSpeedup), x2(res.RumbaSpeedup))
	return t, res, nil
}
