package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"rumba/internal/rng"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) must be 0")
	}
	if Variance([]float64{1}) != 0 {
		t.Fatal("Variance of single value must be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v, want -1/7", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile must not sort its input in place")
	}
}

func TestDotAndScale(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("Dot = %v, want 32", d)
	}
	xs := Scale([]float64{1, 2}, 3)
	if xs[0] != 3 || xs[1] != 6 {
		t.Fatalf("Scale = %v, want [3 6]", xs)
	}
}

func TestAddTo(t *testing.T) {
	dst := []float64{1, 2}
	AddTo(dst, []float64{10, 20})
	if dst[0] != 11 || dst[1] != 22 {
		t.Fatalf("AddTo = %v", dst)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}

// Property: Min <= Mean <= Max for any non-empty slice of finite values.
func TestMeanBoundedProperty(t *testing.T) {
	r := rng.New(3)
	f := func(n uint8) bool {
		m := int(n)%64 + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.Range(-1e3, 1e3)
		}
		mean := Mean(xs)
		return Min(xs) <= mean && mean <= Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is translation invariant and scales quadratically.
func TestVarianceScalingProperty(t *testing.T) {
	r := rng.New(4)
	f := func(n uint8) bool {
		m := int(n)%32 + 2
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.Range(-10, 10)
		}
		shifted := make([]float64, m)
		scaled := make([]float64, m)
		for i, v := range xs {
			shifted[i] = v + 100
			scaled[i] = 3 * v
		}
		v := Variance(xs)
		return math.Abs(Variance(shifted)-v) < 1e-6*math.Max(1, v) &&
			math.Abs(Variance(scaled)-9*v) < 1e-6*math.Max(1, 9*v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
