package pkg

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rumba/internal/bench"
	"rumba/internal/bundle"
	"rumba/internal/core"
	"rumba/internal/predictor"
)

// Package is a loaded, checksum-verified kernel package.
type Package struct {
	// Dir is the package directory Load read.
	Dir      string
	Manifest Manifest
	Bundle   *bundle.Bundle
	// Spec is the exact-kernel spec the bundle validated against.
	Spec   *bench.Spec
	Corpus *Corpus
}

// BuildConfig parameterises Build.
type BuildConfig struct {
	// Version is the package semantic version ("" selects "0.1.0").
	Version string
	// Quality/Latency are the package's contract; a zero Quality selects
	// TOQ 0.10 (the paper's 90% target output quality) with no shed budget
	// and the default "drifting" drift SLO.
	Quality QualitySpec
	Latency LatencySLO
	// CorpusN is the golden-corpus size; <= 0 selects 256 elements.
	CorpusN int
}

// Build assembles a kernel package from a rumba-train artifact: it writes
// <outDir>/<name>-<version>/{manifest,bundle,corpus}.json, generating the
// golden corpus from the benchmark's deterministic held-out generator. The
// returned package has already been re-Loaded from disk, so a successful
// Build guarantees the artifact round-trips.
func Build(outDir string, b *bundle.Bundle, cfg BuildConfig) (*Package, error) {
	if b == nil {
		return nil, fmt.Errorf("pkg: build needs a bundle")
	}
	spec, err := b.Validate()
	if err != nil {
		return nil, err
	}
	if cfg.Version == "" {
		cfg.Version = "0.1.0"
	}
	if cfg.Quality.TOQ == 0 {
		cfg.Quality.TOQ = 0.10
	}
	corpus := GenerateCorpus(spec, cfg.CorpusN)
	m := Manifest{
		FormatVersion: ManifestVersion,
		Name:          spec.Name,
		Version:       cfg.Version,
		Kernel:        spec.Name,
		InDim:         spec.InDim,
		OutDim:        spec.OutDim,
		Quality:       cfg.Quality,
		Latency:       cfg.Latency,
		Bundle:        FileRef{File: BundleFile},
		Corpus:        CorpusRef{FileRef: FileRef{File: CorpusFile}, Elements: len(corpus.Inputs)},
	}

	dir := filepath.Join(outDir, m.DirName())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pkg: %w", err)
	}
	if err := bundle.Save(filepath.Join(dir, BundleFile), b); err != nil {
		return nil, err
	}
	if err := saveCorpus(filepath.Join(dir, CorpusFile), corpus); err != nil {
		return nil, err
	}
	if m.Bundle.SHA256, err = fileSHA256(filepath.Join(dir, BundleFile)); err != nil {
		return nil, err
	}
	if m.Corpus.SHA256, err = fileSHA256(filepath.Join(dir, CorpusFile)); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("pkg: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), data, 0o644); err != nil {
		return nil, fmt.Errorf("pkg: %w", err)
	}
	return Load(dir)
}

// Load reads a package directory and verifies everything short of the
// corpus replay: manifest schema, file checksums, bundle deserialisation
// (including the deep shape validation of internal/bundle), corpus schema,
// and the cross-consistency of all three files. The errors are actionable —
// they name the file, the field and the expected value.
func Load(dir string) (*Package, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("pkg: %s: %w", dir, err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("pkg: %s/%s: %w", dir, ManifestFile, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s/%s)", err, dir, ManifestFile)
	}
	for _, ref := range []struct {
		field string
		ref   FileRef
	}{{"bundle", m.Bundle}, {"corpus", m.Corpus.FileRef}} {
		sum, err := fileSHA256(filepath.Join(dir, ref.ref.File))
		if err != nil {
			return nil, fmt.Errorf("pkg: %s %s: %w", dir, ref.field, err)
		}
		if sum != ref.ref.SHA256 {
			return nil, fmt.Errorf("pkg: %s/%s checksum mismatch: manifest pins %s, file has %s — the package was modified after build; rebuild it with rumba-pkg build",
				dir, ref.ref.File, ref.ref.SHA256, sum)
		}
	}
	b, spec, err := bundle.Load(filepath.Join(dir, m.Bundle.File))
	if err != nil {
		return nil, fmt.Errorf("pkg: %s: %w", dir, err)
	}
	if spec.Name != m.Kernel {
		return nil, fmt.Errorf("pkg: %s: manifest kernel %q but bundle trains %q", dir, m.Kernel, spec.Name)
	}
	if spec.InDim != m.InDim || spec.OutDim != m.OutDim {
		return nil, fmt.Errorf("pkg: %s: manifest schema %dx%d but kernel %s has %dx%d",
			dir, m.InDim, m.OutDim, spec.Name, spec.InDim, spec.OutDim)
	}
	corpus, err := loadCorpus(filepath.Join(dir, m.Corpus.File))
	if err != nil {
		return nil, err
	}
	if err := corpus.Validate(spec); err != nil {
		return nil, fmt.Errorf("%w (in %s/%s)", err, dir, m.Corpus.File)
	}
	if len(corpus.Inputs) != m.Corpus.Elements {
		return nil, fmt.Errorf("pkg: %s: manifest declares %d corpus elements, %s holds %d",
			dir, m.Corpus.Elements, m.Corpus.File, len(corpus.Inputs))
	}
	return &Package{Dir: dir, Manifest: m, Bundle: b, Spec: spec, Corpus: corpus}, nil
}

// ReplayReport is the outcome of replaying the golden corpus through the
// full Rumba pipeline (accelerator + checker + tuner + recovery).
type ReplayReport struct {
	Elements int `json:"elements"`
	// Fixed counts elements recovery re-executed exactly.
	Fixed int `json:"fixed"`
	// OutputError is the delivered (managed) output error; UncheckedError
	// what the accelerator alone would have delivered.
	OutputError    float64 `json:"outputError"`
	UncheckedError float64 `json:"uncheckedError"`
	// TOQ echoes the bound the replay was held to; Checker names the
	// checker that ran ("none" replays unchecked).
	TOQ     float64 `json:"toq"`
	Checker string  `json:"checker"`
	Pass    bool    `json:"pass"`
}

// DefaultChecker returns the package's default checker instance and name,
// mirroring the serving registry's priority: tree, then linear, then EMA,
// then unchecked. Stateful checkers (EMA) are freshly constructed.
func (p *Package) DefaultChecker() (predictor.Predictor, string) {
	ps := p.Bundle.Predictors()
	switch {
	case ps.Tree != nil:
		return ps.Tree, "tree"
	case ps.Linear != nil:
		return ps.Linear, "linear"
	case ps.EMA != nil:
		return ps.EMA, "ema"
	default:
		return nil, "none"
	}
}

// Replay runs the golden corpus through the Rumba system with the package's
// default checker and a TOQ tuner at the package's bound, and scores the
// delivered outputs against the corpus's exact outputs. It answers the
// deployment question directly: does this artifact meet its own TOQ on its
// own evidence?
func (p *Package) Replay() (*ReplayReport, error) {
	acc, err := p.Bundle.Accelerator()
	if err != nil {
		return nil, err
	}
	checker, checkerName := p.DefaultChecker()
	cfg := core.Config{Spec: p.Spec, Accel: acc, Checker: checker}
	if checker != nil {
		if cfg.Tuner, err = core.NewTuner(core.ModeTOQ, p.Manifest.Quality.TOQ); err != nil {
			return nil, err
		}
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	rep, err := sys.Run(p.Corpus.Dataset())
	if err != nil {
		return nil, err
	}
	r := &ReplayReport{
		Elements:       rep.Elements,
		Fixed:          rep.Fixed,
		OutputError:    rep.OutputError,
		UncheckedError: rep.UncheckedError,
		TOQ:            p.Manifest.Quality.TOQ,
		Checker:        checkerName,
	}
	r.Pass = r.OutputError <= r.TOQ
	return r, nil
}

// Validate is the full package gate: Load plus the corpus replay. A package
// whose replay exceeds its own TOQ returns the report alongside an error,
// so callers can print the numbers.
func Validate(dir string) (*Package, *ReplayReport, error) {
	p, err := Load(dir)
	if err != nil {
		return nil, nil, err
	}
	rep, err := p.Replay()
	if err != nil {
		return nil, nil, fmt.Errorf("pkg: %s corpus replay: %w", dir, err)
	}
	if !rep.Pass {
		return p, rep, fmt.Errorf("pkg: %s corpus replay violates its own TOQ: delivered output error %.4f > bound %.4f (unchecked %.4f, %d/%d fixed) — retrain the kernel or relax quality.toq",
			dir, rep.OutputError, rep.TOQ, rep.UncheckedError, rep.Fixed, rep.Elements)
	}
	return p, rep, nil
}

// Install validates pkgDir and copies it into the serve registry directory
// as <registryDir>/<name>-<version>. A same-name package already installed —
// any version — is rejected: the registry serves exactly one version of a
// kernel, and which one wins must be an explicit operator decision.
func Install(registryDir, pkgDir string) (string, error) {
	p, _, err := Validate(pkgDir)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(registryDir, 0o755); err != nil {
		return "", fmt.Errorf("pkg: %w", err)
	}
	entries, err := os.ReadDir(registryDir)
	if err != nil {
		return "", fmt.Errorf("pkg: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(registryDir, e.Name(), ManifestFile))
		if err != nil {
			continue // not a package directory
		}
		var existing Manifest
		if json.Unmarshal(data, &existing) != nil {
			continue
		}
		if existing.Name == p.Manifest.Name {
			return "", fmt.Errorf("pkg: registry %s already holds %s %s (in %s) — uninstall it before installing %s",
				registryDir, existing.Name, existing.Version, e.Name(), p.Manifest.Version)
		}
	}
	dest := filepath.Join(registryDir, p.Manifest.DirName())
	if err := os.MkdirAll(dest, 0o755); err != nil {
		return "", fmt.Errorf("pkg: %w", err)
	}
	for _, f := range []string{ManifestFile, p.Manifest.Bundle.File, p.Manifest.Corpus.File} {
		if err := copyFile(filepath.Join(dest, f), filepath.Join(pkgDir, f)); err != nil {
			return "", err
		}
	}
	return dest, nil
}

// fileSHA256 returns the lowercase hex SHA-256 of a file's contents.
func fileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// copyFile copies src to dst (0644).
func copyFile(dst, src string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return fmt.Errorf("pkg: %w", err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		return fmt.Errorf("pkg: %w", err)
	}
	return nil
}
