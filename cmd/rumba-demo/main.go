// Command rumba-demo runs one benchmark end-to-end through the Rumba
// execution subsystem and prints a quality/energy/performance report:
//
//	rumba-demo -benchmark sobel -mode toq -target 0.10
//	rumba-demo -benchmark blackscholes -mode energy -target 0.15
//	rumba-demo -benchmark inversek2j -mode quality -checker linear
//
// With -stream the online phase runs through the concurrent streaming
// runtime instead of the batch runtime, printing the runtime's
// observability counters afterwards; -expvar additionally serves the live
// metrics snapshot at /debug/vars while the stream runs, and -trace records
// a span tree for the whole run (detection chunks, fused invokes, checker
// batches, recoveries, merge commits) and prints a per-span-kind summary:
//
//	rumba-demo -benchmark fft -stream -workers 4 -expvar localhost:8090
//	rumba-demo -benchmark fft -stream -trace
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/bundle"
	"rumba/internal/core"
	"rumba/internal/obs"
	"rumba/internal/predictor"
	"rumba/internal/trace"
	"rumba/internal/trainer"
)

func main() {
	name := flag.String("benchmark", "sobel", "benchmark to run")
	mode := flag.String("mode", "toq", "tuner mode: toq, energy, quality")
	target := flag.Float64("target", 0.10, "mode target: error bound (toq), iteration budget (energy), keep-up fraction (quality)")
	checker := flag.String("checker", "tree", "checker: linear, tree, ema, none")
	trainN := flag.Int("train", 0, "training samples (0 = Table 1 size)")
	testN := flag.Int("test", 0, "test samples (0 = Table 1 size)")
	bundlePath := flag.String("bundle", "", "load a rumba-train bundle instead of training")
	stream := flag.Bool("stream", false, "run the online phase through the streaming runtime")
	workers := flag.Int("workers", 2, "recovery workers for -stream")
	expvarAddr := flag.String("expvar", "", "with -stream: serve the live obs snapshot on this address at /debug/vars (e.g. localhost:8090)")
	traceFlag := flag.Bool("trace", false, "with -stream: record a span tree for the whole run and print a per-span-kind summary afterwards")
	flag.Parse()

	opts := streamOpts{enabled: *stream, workers: *workers, expvarAddr: *expvarAddr, trace: *traceFlag}
	if err := run(*name, *mode, *checker, *target, *trainN, *testN, *bundlePath, opts); err != nil {
		fmt.Fprintln(os.Stderr, "rumba-demo:", err)
		os.Exit(1)
	}
}

// streamOpts carries the -stream flag set.
type streamOpts struct {
	enabled    bool
	workers    int
	expvarAddr string
	trace      bool
}

func run(name, mode, checker string, target float64, trainN, testN int, bundlePath string, opts streamOpts) error {
	var (
		spec  *bench.Spec
		acc   *accel.Accelerator
		preds trainer.PredictorSet
		err   error
	)
	if bundlePath != "" {
		var b *bundle.Bundle
		b, spec, err = bundle.Load(bundlePath)
		if err != nil {
			return err
		}
		fmt.Printf("== offline: loaded %s bundle from %s\n", spec.Name, bundlePath)
		if acc, err = b.Accelerator(); err != nil {
			return err
		}
		preds = b.Predictors()
	} else {
		if spec, err = bench.Get(name); err != nil {
			return err
		}
		fmt.Printf("== offline: training the %s accelerator (%s) and checkers\n", name, spec.RumbaTopo)
		train := spec.GenTrain(trainN)
		acfg, err := trainer.TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train, trainer.DefaultAccelTrainConfig(name))
		if err != nil {
			return err
		}
		if acc, err = accel.New(acfg, 0); err != nil {
			return err
		}
		if preds, err = trainer.TrainPredictors(spec, train, trainer.Observe(spec, acc, train)); err != nil {
			return err
		}
	}

	var p predictor.Predictor
	switch checker {
	case "linear":
		p = preds.Linear
	case "tree":
		p = preds.Tree
	case "ema":
		p = preds.EMA
	case "none":
		p = nil
	default:
		return fmt.Errorf("unknown checker %q", checker)
	}

	var tm core.TunerMode
	switch mode {
	case "toq":
		tm = core.ModeTOQ
	case "energy":
		tm = core.ModeEnergy
	case "quality":
		tm = core.ModeQuality
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	var tuner *core.Tuner
	if p != nil {
		if tuner, err = core.NewTuner(tm, target); err != nil {
			return err
		}
	}
	if opts.enabled {
		return runStream(spec, acc, p, tuner, testN, opts)
	}

	sys, err := core.NewSystem(core.Config{
		Spec: spec, Accel: acc, Checker: p, Tuner: tuner,
	})
	if err != nil {
		return err
	}

	fmt.Printf("== online: running %s elements through the accelerator\n", spec.TestDesc)
	rep, err := sys.Run(spec.GenTest(testN))
	if err != nil {
		return err
	}

	fmt.Printf("\nelements            %d\n", rep.Elements)
	fmt.Printf("re-executed         %d (%.1f%%)\n", rep.Fixed, 100*float64(rep.Fixed)/float64(rep.Elements))
	fmt.Printf("unchecked error     %.2f%%\n", 100*rep.UncheckedError)
	fmt.Printf("output error        %.2f%%\n", 100*rep.OutputError)
	fmt.Printf("energy savings      %.2fx vs CPU (accel %.0f, checker %.0f, recompute %.0f, non-approx %.0f)\n",
		rep.Energy.Savings, rep.Energy.Accelerator, rep.Energy.Checker, rep.Energy.Recompute, rep.Energy.NonApprox)
	fmt.Printf("speedup             %.2fx vs CPU (CPU recovery utilisation %.0f%%)\n",
		rep.Speedup, 100*rep.Pipeline.CPUUtilisation)
	if len(rep.ThresholdTrace) > 0 {
		fmt.Printf("threshold trace     first %.4f  last %.4f over %d invocations\n",
			rep.ThresholdTrace[0], rep.ThresholdTrace[len(rep.ThresholdTrace)-1], len(rep.ThresholdTrace))
	}
	return nil
}

// runStream is the -stream online phase: the concurrent streaming runtime
// with its observability registry exported via expvar.
func runStream(spec *bench.Spec, acc *accel.Accelerator, p predictor.Predictor, tuner *core.Tuner, testN int, opts streamOpts) error {
	st, err := core.NewStream(core.Config{Spec: spec, Accel: acc, Checker: p, Tuner: tuner}, opts.workers)
	if err != nil {
		return err
	}
	obs.Publish("rumba", st.Metrics())
	if opts.expvarAddr != "" {
		fmt.Printf("== obs: live metrics at http://%s/debug/vars (variable \"rumba\")\n", opts.expvarAddr)
		go func() {
			if err := http.ListenAndServe(opts.expvarAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "rumba-demo: expvar server:", err)
			}
		}()
	}

	fmt.Printf("== online: streaming %s elements through %d recovery workers\n", spec.TestDesc, opts.workers)
	test := spec.GenTest(testN)
	ctx := context.Background()
	var tr *trace.Trace
	if opts.trace {
		// One trace for the whole run: a span per detection chunk, fused
		// invoke, checker batch, recovery and merge commit. The table is
		// sized generously; overflow is counted and reported, not fatal.
		tr = trace.New("demo-stream", 1<<15)
		ctx = trace.NewContext(ctx, tr.Root())
	}
	inputs := make(chan []float64)
	go func() {
		defer close(inputs)
		for _, in := range test.Inputs {
			inputs <- in
		}
	}()
	results, err := st.Process(ctx, inputs)
	if err != nil {
		return err
	}
	stats, err := core.EvaluateStream(results, test.Targets, spec.Metric, spec.Scale)
	if err != nil {
		return err
	}

	fmt.Printf("\nelements            %d\n", stats.Elements)
	fmt.Printf("re-executed         %d (%.1f%%)\n", stats.Fixed, 100*float64(stats.Fixed)/float64(stats.Elements))
	fmt.Printf("degraded            %d\n", stats.Degraded)
	fmt.Printf("output error        %.2f%%\n", 100*stats.OutputError)
	printObsSummary(st.Metrics().Snapshot())
	if tr != nil {
		tr.Finish()
		printTraceSummary(tr.Snapshot())
	}
	return nil
}

// printTraceSummary aggregates a finished trace by span name: how many spans
// of each kind the run produced and where the wall-clock went.
func printTraceSummary(snap trace.Snapshot) {
	type agg struct {
		count   int
		totalNs int64
	}
	byName := map[string]*agg{}
	names := []string{}
	for _, sp := range snap.Spans {
		a := byName[sp.Name]
		if a == nil {
			a = &agg{}
			byName[sp.Name] = a
			names = append(names, sp.Name)
		}
		a.count++
		if sp.End > sp.Start {
			a.totalNs += sp.End - sp.Start
		}
	}
	sort.Strings(names)
	fmt.Printf("\n-- trace %s: %d spans over %.2f ms --\n", snap.ID, len(snap.Spans), float64(snap.DurationNs)/1e6)
	for _, n := range names {
		a := byName[n]
		fmt.Printf("%-32s x%-6d total %8.2f ms  mean %8.1f us\n",
			n, a.count, float64(a.totalNs)/1e6, float64(a.totalNs)/float64(a.count)/1e3)
	}
	if snap.DroppedSpans > 0 {
		fmt.Printf("(+%d spans dropped: table full)\n", snap.DroppedSpans)
	}
}

// printObsSummary renders the registry snapshot as an aligned listing.
func printObsSummary(snap obs.Snapshot) {
	fmt.Println("\n-- observability snapshot --")
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%-32s %d\n", n, snap.Counters[n])
	}
	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := snap.Gauges[n]
		fmt.Printf("%-32s last %.4g  max %.4g\n", n, g.Value, g.Max)
	}
	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		fmt.Printf("%-32s count %d  mean %.0f  p50 <=%.0f  p99 <=%.0f\n",
			n, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
	}
}
