package obs

// QuantileInterp estimates the q-quantile of a histogram snapshot by linear
// interpolation inside the bucket the quantile rank lands in, the same
// estimate PromQL's histogram_quantile computes. The registry's buckets are
// power-of-two: bucket Le holds observations in (Le/2, Le], except Le == 1
// which holds everything <= 1, so a bucket's lower edge is Le/2 (0 for the
// first). HistogramSnapshot.Quantile's bucket upper bound is the right answer
// for "did we beat the SLO"; the interpolated form is what trend queries and
// burn-rate math want, because steps between bucket edges would otherwise
// alias into rate spikes.
//
// Empty histograms return 0. q is clamped to [0,1]; q == 1 returns the upper
// edge of the last occupied bucket.
func QuantileInterp(h HistogramSnapshot, q float64) float64 {
	if h.Count <= 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	var seen float64
	for _, b := range h.Buckets {
		if b.Count <= 0 {
			continue
		}
		lo := b.Le / 2
		if b.Le <= 1 {
			lo = 0
		}
		if seen+float64(b.Count) >= target {
			frac := (target - seen) / float64(b.Count)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(b.Le-lo)
		}
		seen += float64(b.Count)
	}
	return h.Buckets[len(h.Buckets)-1].Le
}

// Quantile is the snapshot-level spelling of QuantileInterp: the interpolated
// q-quantile of the named histogram, 0 when the histogram is absent or empty.
func (s Snapshot) Quantile(hist string, q float64) float64 {
	return QuantileInterp(s.Histograms[hist], q)
}
