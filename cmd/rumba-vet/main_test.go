package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rumba/internal/analysis"
)

// fixtureSrc trips every analyzer in the suite exactly once, plus one
// suppressed finding, so the golden file pins the full JSON shape: field
// names, severity strings, ordering, suppression, and the fail count.
const fixtureSrc = `package fix

import (
	"sync"
	"time"
)

var g int

type spec struct {
	Exact func([]float64) []float64
}

//rumba:pure
func declared(x int) int { g++; return x }

func impure(in []float64) []float64 {
	_ = time.Now()
	return in
}

var s = spec{Exact: impure}

func cmp(a, b float64) bool { return a == b }

func allowed(a, b float64) bool {
	return a != b //rumba:allow floatcmp golden fixture
}

func locked(mu sync.Mutex) { mu.Lock() }

//rumba:approx
func kernel(in []float64) []float64 { return in }

func commitRaw(in []float64, out chan []float64) {
	v := kernel(in)
	out <- v
}

//rumba:hotpath
func hot(n int) []float64 { return make([]float64, n) }

func misdirected(a, b float64) bool {
	//rumba:allow nosuchanalyzer trips the directive analyzer
	return a < b
}
`

func TestGoldenJSON(t *testing.T) {
	loader, err := analysis.SharedLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadSource(map[string]string{"fix.go": fixtureSrc})
	if err != nil {
		t.Fatal(err)
	}
	m := analysis.BuildModule(loader.Fset(), "", []*analysis.Package{pkg})
	diags := m.Run()
	out, err := analysis.MarshalJSONReport(analysis.Analyzers(), diags, analysis.SeverityWarning)
	if err != nil {
		t.Fatal(err)
	}
	got := string(out) + "\n"

	golden := filepath.Join("testdata", "golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch (run with UPDATE_GOLDEN=1 to regenerate)\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestGoldenSARIF pins the SARIF 2.1.0 shape the same way TestGoldenJSON
// pins the JSON report: rule ordering, levels, locations, suppressions.
func TestGoldenSARIF(t *testing.T) {
	loader, err := analysis.SharedLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadSource(map[string]string{"fix.go": fixtureSrc})
	if err != nil {
		t.Fatal(err)
	}
	m := analysis.BuildModule(loader.Fset(), "", []*analysis.Package{pkg})
	out, err := analysis.MarshalSARIF(analysis.Analyzers(), m.Run())
	if err != nil {
		t.Fatal(err)
	}
	got := string(out) + "\n"

	golden := filepath.Join("testdata", "golden.sarif")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch (run with UPDATE_GOLDEN=1 to regenerate)\n got:\n%s", got)
	}
}

// tinyCmpEq is a standalone one-file module with a single deliberate
// floatcmp finding.
const tinyCmpEq = `package tiny

func cmp(a, b float64) bool { return a == b }
`

// tinyModule materialises a standalone module holding src and chdirs into
// it, so run() can be exercised end to end with real exit codes without
// touching the rumba tree. Each call makes a fresh directory because the
// analysis loader caches type-checked packages per module root — editing a
// file in place would be served stale.
func tinyModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "tiny.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tiny\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	})
	return dir
}

func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunExitCodeOnFinding(t *testing.T) {
	tinyModule(t, tinyCmpEq)
	code, out, _ := runVet(t, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "floatcmp") {
		t.Fatalf("output does not mention floatcmp:\n%s", out)
	}
	// Below the -fail-on threshold the same finding exits 0.
	if code, _, _ := runVet(t, "-fail-on", "error", "./..."); code != 0 {
		t.Fatalf("exit with -fail-on error = %d, want 0", code)
	}
}

func TestRunBaselineRoundTrip(t *testing.T) {
	// The baseline file lives outside the module dirs: entries key files
	// relative to the module root, so one baseline spans all the variants.
	base := filepath.Join(t.TempDir(), "base.json")

	tinyModule(t, tinyCmpEq)
	code, _, stderr := runVet(t, "-write-baseline", base, "./...")
	if code != 0 {
		t.Fatalf("write-baseline exit = %d\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "wrote 1 finding(s)") {
		t.Fatalf("write-baseline stderr = %q", stderr)
	}

	// The baselined finding no longer fails the run.
	if code, out, _ := runVet(t, "-baseline", base, "./..."); code != 0 {
		t.Fatalf("baselined exit = %d\n%s", code, out)
	}

	// Baseline matching is line-insensitive: shifting the finding down the
	// file must not invalidate the entry.
	tinyModule(t, `package tiny

// a comment pushing the finding down

func cmp(a, b float64) bool { return a == b }
`)
	if code, out, _ := runVet(t, "-baseline", base, "./..."); code != 0 {
		t.Fatalf("baselined exit after line shift = %d\n%s", code, out)
	}

	// Fixing the finding leaves a stale entry, reported but not fatal.
	tinyModule(t, `package tiny

func cmp(a, b float64) bool { return a < b }
`)
	code, _, stderr = runVet(t, "-baseline", base, "./...")
	if code != 0 {
		t.Fatalf("exit after fix = %d", code)
	}
	if !strings.Contains(stderr, "stale baseline") {
		t.Fatalf("stderr does not warn about stale entries: %q", stderr)
	}

	// A NEW finding is not hidden by the baseline.
	tinyModule(t, `package tiny

func cmp(a, b float64) bool { return a == b }

func cmp2(a, b float64) bool { return a != b }
`)
	if code, out, _ := runVet(t, "-baseline", base, "./..."); code != 1 {
		t.Fatalf("new-finding exit = %d, want 1\n%s", code, out)
	}
}

func TestRunSARIFMode(t *testing.T) {
	tinyModule(t, tinyCmpEq)
	code, out, _ := runVet(t, "-sarif", "./...")
	if code != 1 {
		t.Fatalf("sarif exit = %d, want 1", code)
	}
	for _, want := range []string{`"version": "2.1.0"`, `"ruleId": "floatcmp"`, `"uri": "tiny.go"`} {
		if !strings.Contains(out, want) {
			t.Errorf("SARIF output missing %s:\n%s", want, out)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-json", "-sarif", "./..."},
		{"-analyzers", "nosuch", "./..."},
		{"-fail-on", "fatal", "./..."},
		{"-baseline", "does-not-exist.json", "./..."},
	} {
		if code, _, _ := runVet(t, args...); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2", args, code)
		}
	}
}

// TestExamplesHaveNoKernelSigViolations is the CI smoke test: every
// example program must obtain its kernels from sources the suite can
// prove pure — zero kernelsig findings across the examples tree.
func TestExamplesHaveNoKernelSigViolations(t *testing.T) {
	loader, err := analysis.SharedLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	examples := 0
	for _, pkg := range pkgs {
		if strings.Contains(pkg.Path, "/examples/") {
			examples++
		}
	}
	if examples < 7 {
		t.Fatalf("expected at least 7 example packages, found %d", examples)
	}
	m := analysis.BuildModule(loader.Fset(), loader.Root(), pkgs)
	for _, d := range m.Run(analysis.AnalyzerKernelSig) {
		if strings.HasPrefix(filepath.ToSlash(d.File), "examples/") && !d.Suppressed {
			t.Errorf("kernelsig violation in examples: %s", d)
		}
	}
}

// TestShippedTreeIsClean mirrors the acceptance criterion: the full suite
// over the whole module reports zero unsuppressed findings at or above
// warning severity.
func TestShippedTreeIsClean(t *testing.T) {
	loader, err := analysis.SharedLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	m := analysis.BuildModule(loader.Fset(), loader.Root(), pkgs)
	diags := m.Run()
	if n := analysis.FailCount(diags, analysis.SeverityWarning); n != 0 {
		for _, d := range diags {
			if !d.Suppressed && d.Severity >= analysis.SeverityWarning {
				t.Errorf("unexpected finding: %s", d)
			}
		}
		t.Fatalf("%d unsuppressed findings on the shipped tree", n)
	}
}

func TestFilterPackages(t *testing.T) {
	diags := []analysis.Diagnostic{
		{File: "internal/bench/fft.go"},
		{File: "examples/quickstart/main.go"},
	}
	if got := filterPackages(diags, nil); len(got) != 2 {
		t.Fatalf("no patterns should keep all, got %d", len(got))
	}
	if got := filterPackages(diags, []string{"./..."}); len(got) != 2 {
		t.Fatalf("./... should keep all, got %d", len(got))
	}
	if got := filterPackages(diags, []string{"internal/bench"}); len(got) != 1 || got[0].File != "internal/bench/fft.go" {
		t.Fatalf("internal/bench filter wrong: %v", got)
	}
	if got := filterPackages(diags, []string{"examples/..."}); len(got) != 1 || got[0].File != "examples/quickstart/main.go" {
		t.Fatalf("examples/... filter wrong: %v", got)
	}
}
