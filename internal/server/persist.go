package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"rumba/internal/core"
)

// stateVersion guards against loading snapshots written by an incompatible
// build.
const stateVersion = 1

// tenantSnapshot is the persisted form of one tenant×kernel: the complete
// tuner state (threshold, targets, clamp bounds — see core.Tuner's JSON
// round trip), the partial-invocation carry, and the lifetime counters.
type tenantSnapshot struct {
	Tenant  string      `json:"tenant"`
	Kernel  string      `json:"kernel"`
	Checker string      `json:"checker"`
	Tuner   *core.Tuner `json:"tuner,omitempty"`

	CarryElements int `json:"carryElements,omitempty"`
	CarryFired    int `json:"carryFired,omitempty"`

	Elements int64 `json:"elements"`
	Fixed    int64 `json:"fixed"`
	Degraded int64 `json:"degraded"`
}

// stateFile is the on-disk snapshot of every live tenant.
type stateFile struct {
	Version int              `json:"version"`
	Tenants []tenantSnapshot `json:"tenants"`
}

// SaveState writes the tenant tuner state as indented JSON, atomically
// (temp file + rename), so a crash mid-write never corrupts the previous
// snapshot.
func (t *Tenants) SaveState(path string) error {
	t.mu.Lock()
	tenants := make([]*tenant, 0, len(t.m))
	for _, ts := range t.m {
		tenants = append(tenants, ts)
	}
	t.mu.Unlock()

	sf := stateFile{Version: stateVersion}
	for _, ts := range tenants {
		ts.mu.Lock()
		sf.Tenants = append(sf.Tenants, tenantSnapshot{
			Tenant:        ts.key.Tenant,
			Kernel:        ts.key.Kernel,
			Checker:       ts.checkerName,
			Tuner:         ts.tuner,
			CarryElements: ts.carryElements,
			CarryFired:    ts.carryFired,
			Elements:      ts.elements,
			Fixed:         ts.fixed,
			Degraded:      ts.degraded,
		})
		ts.mu.Unlock()
	}
	// Deterministic file content: map iteration above is unordered.
	sort.Slice(sf.Tenants, func(a, b int) bool {
		if sf.Tenants[a].Tenant != sf.Tenants[b].Tenant {
			return sf.Tenants[a].Tenant < sf.Tenants[b].Tenant
		}
		return sf.Tenants[a].Kernel < sf.Tenants[b].Kernel
	})

	data, err := json.MarshalIndent(sf, "", "  ")
	if err != nil {
		return fmt.Errorf("server: state: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("server: state: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("server: state: %w", err)
	}
	return nil
}

// LoadState restores tenants from a snapshot written by SaveState. Entries
// whose kernel is not registered (the deployment dropped a model) are
// skipped, not fatal: restored reports how many tenants came back, skipped
// how many were dropped. A missing file restores nothing — a fresh
// deployment starts empty.
func (t *Tenants) LoadState(path string, reg *Registry) (restored, skipped int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("server: state: %w", err)
	}
	var sf stateFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return 0, 0, fmt.Errorf("server: state %s: %w", filepath.Base(path), err)
	}
	if sf.Version != stateVersion {
		return 0, 0, fmt.Errorf("server: state version %d, this build reads %d", sf.Version, stateVersion)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, snap := range sf.Tenants {
		k, ok := reg.Get(snap.Kernel)
		if !ok {
			skipped++
			continue
		}
		checker, cerr := k.NewChecker(snap.Checker)
		if cerr != nil {
			skipped++
			continue
		}
		acc, aerr := k.NewAccel()
		if aerr != nil {
			return restored, skipped, aerr
		}
		if checker != nil && snap.Tuner == nil {
			return restored, skipped, fmt.Errorf("server: state: tenant %s/%s has a checker but no tuner",
				snap.Tenant, snap.Kernel)
		}
		key := TenantKey{Tenant: snap.Tenant, Kernel: snap.Kernel}
		ts := &tenant{
			key:           key,
			checkerName:   snap.Checker,
			checker:       checker,
			accel:         acc,
			carryElements: snap.CarryElements,
			carryFired:    snap.CarryFired,
			elements:      snap.Elements,
			fixed:         snap.Fixed,
			degraded:      snap.Degraded,
		}
		if checker != nil {
			ts.tuner = snap.Tuner
			// A restored tenant gets a fresh drift monitor over the same
			// target rule as create(): drift state is a live windowed view,
			// not part of the durable tuner trajectory, so it restarts empty.
			target := ts.tuner.TargetError
			if target <= 0 {
				target = t.defaults.Target
			}
			ts.drift = newDriftMonitor(t.drift, target)
		}
		t.m[key] = ts
		restored++
	}
	return restored, skipped, nil
}
