#!/usr/bin/env sh
# ci.sh — the repo's full check gate.
#
#   ./ci.sh            run everything
#
# Stages:
#   1. go build ./...              everything compiles (examples included)
#   2. go vet ./...                stock toolchain vet
#   3. go test -race ./...         unit + integration tests under the race
#                                  detector (the Stream goroutine plumbing
#                                  in internal/core is exercised with
#                                  multiple recovery workers)
#   4. rumba-vet ./...             Rumba's own static-analysis suite:
#                                  purity, determinism, floatcmp,
#                                  kernelsig, concurrency (see DESIGN.md,
#                                  "Static analysis & safety"); fails on
#                                  any unsuppressed warning-or-worse
#                                  finding.

set -eu
cd "$(dirname "$0")"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> rumba-vet ./..."
go run ./cmd/rumba-vet -fail-on warning ./...

echo "ci: all checks passed"
