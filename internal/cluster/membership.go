package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"rumba/internal/obs"
)

// Cluster metric names. Per-node series are labelled with the node name.
const (
	// MetricProbeState gauges each node's health: 0 up, 1 suspect, 2 down.
	MetricProbeState = "cluster.probe.state"
	// MetricProbeFailures counts failed probes per node.
	MetricProbeFailures = "cluster.probe.failures"
	// MetricForwards counts requests forwarded per node.
	MetricForwards = "cluster.forwards"
	// MetricFailovers counts forward attempts that failed on a node and
	// moved to the next replica.
	MetricFailovers = "cluster.failovers"
	// MetricUnroutable counts requests no replica could serve.
	MetricUnroutable = "cluster.unroutable"
	// MetricForwardLatencyNs is the end-to-end forward latency (all attempts)
	// in nanoseconds.
	MetricForwardLatencyNs = "cluster.forward_latency_ns"
)

// Node is one cluster member: a stable name (the ring key) and its base URL.
type Node struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// NodeState is a member's probed health.
type NodeState int

const (
	// NodeUp: the last probe succeeded.
	NodeUp NodeState = iota
	// NodeSuspect: SuspectAfter..DownAfter-1 consecutive probes failed. A
	// suspect node still receives forwards (the failure may be a transient
	// probe loss), but operators see the state change immediately.
	NodeSuspect
	// NodeDown: at least DownAfter consecutive probes failed. Down nodes are
	// skipped when choosing a forward target; the ring itself is untouched,
	// so a recovered node gets its tenants back automatically.
	NodeDown
)

// String implements fmt.Stringer.
func (s NodeState) String() string {
	switch s {
	case NodeSuspect:
		return "suspect"
	case NodeDown:
		return "down"
	default:
		return "up"
	}
}

// ProbeConfig tunes the membership prober.
type ProbeConfig struct {
	// Interval between probe rounds; <= 0 uses 2s.
	Interval time.Duration
	// Timeout bounds one probe request; <= 0 uses 1s.
	Timeout time.Duration
	// SuspectAfter consecutive failures mark a node suspect; <= 0 uses 1.
	SuspectAfter int
	// DownAfter consecutive failures mark a node down; <= 0 uses 3, and it
	// is clamped to at least SuspectAfter.
	DownAfter int
	// Client optionally overrides the probe HTTP client (tests inject
	// httptest clients); nil builds one from Timeout.
	Client *http.Client
}

func (c ProbeConfig) withDefaults() ProbeConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.DownAfter < c.SuspectAfter {
		c.DownAfter = c.SuspectAfter
	}
	return c
}

// nodeHealth is one member's probe bookkeeping.
type nodeHealth struct {
	node     Node
	state    NodeState
	failures int // consecutive
	lastErr  string
	probes   int64
}

// Membership is the static member set plus its probed health. Static means
// the set changes only by explicit reconfiguration (the router's rebalance),
// never by the prober: probing moves nodes between up/suspect/down, which
// gates forwarding, but the ring and the member list are configuration.
type Membership struct {
	mu    sync.Mutex
	nodes map[string]*nodeHealth
	names []string

	cfg    ProbeConfig
	client *http.Client

	metrics  *obs.Registry
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewMembership builds the member set. Names must be unique and non-empty.
func NewMembership(nodes []Node, cfg ProbeConfig, metrics *obs.Registry) (*Membership, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: membership needs at least one node")
	}
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	cfg = cfg.withDefaults()
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	m := &Membership{
		nodes:   make(map[string]*nodeHealth, len(nodes)),
		cfg:     cfg,
		client:  client,
		metrics: metrics,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, n := range nodes {
		if n.Name == "" || n.URL == "" {
			return nil, fmt.Errorf("cluster: node needs a name and a URL: %+v", n)
		}
		if _, dup := m.nodes[n.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate node %q", n.Name)
		}
		m.nodes[n.Name] = &nodeHealth{node: Node{Name: n.Name, URL: strings.TrimRight(n.URL, "/")}}
		m.names = append(m.names, n.Name)
	}
	sort.Strings(m.names)
	for _, name := range m.names {
		m.stateGauge(name).Set(float64(NodeUp))
	}
	return m, nil
}

// Names returns the member names, sorted.
func (m *Membership) Names() []string { return append([]string(nil), m.names...) }

// Nodes returns the member set, sorted by name — the configuration a
// rebalance edits.
func (m *Membership) Nodes() []Node {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Node, 0, len(m.names))
	for _, name := range m.names {
		out = append(out, m.nodes[name].node)
	}
	return out
}

// URL returns a member's base URL ("" for unknown members).
func (m *Membership) URL(name string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.nodes[name]; ok {
		return h.node.URL
	}
	return ""
}

// State returns a member's probed health (NodeDown for unknown members).
func (m *Membership) State(name string) NodeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.nodes[name]; ok {
		return h.state
	}
	return NodeDown
}

// NodeStatus is the ops-facing view of one member (the /v1/cluster listing).
type NodeStatus struct {
	Node
	State string `json:"state"`
	// ConsecutiveFailures counts probe failures since the last success;
	// LastError is the latest probe failure ("" while up).
	ConsecutiveFailures int    `json:"consecutiveFailures"`
	LastError           string `json:"lastError,omitempty"`
	Probes              int64  `json:"probes"`
}

// Snapshot lists every member's status, sorted by name.
func (m *Membership) Snapshot() []NodeStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeStatus, 0, len(m.names))
	for _, name := range m.names {
		h := m.nodes[name]
		out = append(out, NodeStatus{
			Node:                h.node,
			State:               h.state.String(),
			ConsecutiveFailures: h.failures,
			LastError:           h.lastErr,
			Probes:              h.probes,
		})
	}
	return out
}

// Start launches the probe loop; it runs until ctx is cancelled or Stop is
// called. An immediate first round runs before the first tick so a router
// fronting a half-started cluster learns who is ready without waiting an
// interval.
func (m *Membership) Start(ctx context.Context) {
	go func() {
		defer close(m.done)
		m.ProbeNow(ctx)
		ticker := time.NewTicker(m.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-m.stop:
				return
			case <-ticker.C:
				m.ProbeNow(ctx)
			}
		}
	}()
}

// Stop ends the probe loop started by Start and waits for it to exit.
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// ProbeNow runs one synchronous probe round over all members (in parallel —
// one slow node must not delay detection of another's death).
func (m *Membership) ProbeNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, name := range m.names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			m.probe(ctx, name)
		}(name)
	}
	wg.Wait()
}

// probe checks one node's /readyz and advances its state machine.
func (m *Membership) probe(ctx context.Context, name string) {
	m.mu.Lock()
	h, ok := m.nodes[name]
	if !ok {
		m.mu.Unlock()
		return
	}
	url := h.node.URL + "/readyz"
	m.mu.Unlock()

	err := m.check(ctx, url)

	m.mu.Lock()
	defer m.mu.Unlock()
	h.probes++
	if err == nil {
		h.failures = 0
		h.lastErr = ""
		h.state = NodeUp
	} else {
		h.failures++
		h.lastErr = err.Error()
		m.metrics.Counter(obs.Labeled(MetricProbeFailures, "node", name)).Inc()
		switch {
		case h.failures >= m.cfg.DownAfter:
			h.state = NodeDown
		case h.failures >= m.cfg.SuspectAfter:
			h.state = NodeSuspect
		}
	}
	m.stateGauge(name).Set(float64(h.state))
}

// check issues one readiness probe. Any non-200 is a failure: /readyz
// answers 503 with a reason while draining or empty, which is exactly the
// "stop sending me tenants" signal.
func (m *Membership) check(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("readyz %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	// Drain the (tiny) body so the probe connection is reusable.
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
	return nil
}

func (m *Membership) stateGauge(name string) *obs.Gauge {
	return m.metrics.Gauge(obs.Labeled(MetricProbeState, "node", name))
}
