package obs

import (
	"math"
	"testing"
)

func TestQuantileInterpEdgeCases(t *testing.T) {
	if got := QuantileInterp(HistogramSnapshot{}, 0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	if got := (Snapshot{}).Quantile("missing", 0.99); got != 0 {
		t.Fatalf("absent histogram quantile = %v, want 0", got)
	}

	// Single bucket (2,4]: interpolation walks the bucket linearly from the
	// lower edge 2 to the upper edge 4.
	single := HistogramSnapshot{Count: 4, Buckets: []Bucket{{Le: 4, Count: 4}}}
	cases := []struct{ q, want float64 }{
		{0, 2}, {0.5, 3}, {1, 4}, {-1, 2}, {2, 4},
	}
	for _, c := range cases {
		if got := QuantileInterp(single, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("single-bucket q=%v: got %v, want %v", c.q, got, c.want)
		}
	}

	// The first bucket (Le == 1) spans [0,1], not (0.5,1].
	first := HistogramSnapshot{Count: 2, Buckets: []Bucket{{Le: 1, Count: 2}}}
	if got := QuantileInterp(first, 0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("first-bucket median = %v, want 0.5", got)
	}
}

func TestQuantileInterpGolden(t *testing.T) {
	// 10 observations: 4 in (1,2], 4 in (2,4], 2 in (4,8].
	h := HistogramSnapshot{Count: 10, Buckets: []Bucket{
		{Le: 2, Count: 4}, {Le: 4, Count: 4}, {Le: 8, Count: 2},
	}}
	cases := []struct{ q, want float64 }{
		{0.2, 1.5},  // rank 2 of 4 in (1,2]: 1 + 0.5*1
		{0.4, 2.0},  // rank 4 exactly exhausts the first bucket
		{0.5, 2.5},  // rank 5: 1 of 4 into (2,4]
		{0.8, 4.0},  // rank 8 exhausts the second bucket
		{0.9, 6.0},  // rank 9: 1 of 2 into (4,8]
		{1.0, 8.0},  // the top edge
		{0.05, 1.125}, // rank 0.5 of 4 in (1,2]
	}
	for _, c := range cases {
		if got := QuantileInterp(h, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("q=%v: got %v, want %v", c.q, got, c.want)
		}
	}

	// The interpolated estimate never exceeds the bucket-upper-bound answer.
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		if lo, hi := QuantileInterp(h, q), h.Quantile(q); lo > hi {
			t.Errorf("q=%v: interpolated %v above bucket bound %v", q, lo, hi)
		}
	}
}

func TestSnapshotQuantileFromRegistry(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 0; i < 100; i++ {
		h.Observe(1000) // all in bucket (512,1024]
	}
	got := r.Snapshot().Quantile("lat", 0.5)
	if got <= 512 || got > 1024 {
		t.Fatalf("median %v outside the occupied bucket (512,1024]", got)
	}
}
