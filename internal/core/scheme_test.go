package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"rumba/internal/rng"
)

func TestSchemeStrings(t *testing.T) {
	want := []string{"Ideal", "Random", "Uniform", "EMA", "linearErrors", "treeErrors"}
	for i, s := range AllSchemes {
		if s.String() != want[i] {
			t.Fatalf("scheme %d = %q, want %q", i, s.String(), want[i])
		}
	}
}

func TestIsPredictorBased(t *testing.T) {
	if SchemeIdeal.IsPredictorBased() || SchemeRandom.IsPredictorBased() || SchemeUniform.IsPredictorBased() {
		t.Fatal("baselines are not predictor based")
	}
	if !SchemeLinear.IsPredictorBased() || !SchemeTree.IsPredictorBased() || !SchemeEMA.IsPredictorBased() {
		t.Fatal("checkers are predictor based")
	}
}

func TestScoresIdealEqualsTrueErrors(t *testing.T) {
	trueErrs := []float64{0.5, 0.1, 0.9}
	s := Scores(SchemeIdeal, trueErrs, nil, "x")
	for i := range trueErrs {
		if s[i] != trueErrs[i] {
			t.Fatal("Ideal scores must equal true errors")
		}
	}
}

func TestScoresRandomDeterministicPerSeed(t *testing.T) {
	errs := make([]float64, 100)
	a := Scores(SchemeRandom, errs, nil, "seed1")
	b := Scores(SchemeRandom, errs, nil, "seed1")
	c := Scores(SchemeRandom, errs, nil, "seed2")
	diff := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same scores")
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds must give different scores")
	}
}

func TestScoresUniformSpreadsSelections(t *testing.T) {
	n := 64
	errs := make([]float64, n)
	s := Scores(SchemeUniform, errs, nil, "x")
	ranked := rankByScore(s)
	// The top-8 van der Corput elements must be spread across the range:
	// every eighth of the index space contains exactly one.
	top := append([]int(nil), ranked[:8]...)
	sort.Ints(top)
	for b := 0; b < 8; b++ {
		lo, hi := b*8, (b+1)*8
		count := 0
		for _, idx := range top {
			if idx >= lo && idx < hi {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("bucket %d has %d of the top-8 selections: %v", b, count, top)
		}
	}
}

func TestScoresPredictorSchemesUsePredictions(t *testing.T) {
	trueErrs := []float64{1, 1, 1}
	pred := []float64{0.1, 0.9, 0.5}
	for _, sch := range []Scheme{SchemeEMA, SchemeLinear, SchemeTree} {
		s := Scores(sch, trueErrs, pred, "x")
		if s[1] != 0.9 || s[0] != 0.1 {
			t.Fatalf("%v must copy predictions", sch)
		}
	}
}

func TestScoresPanicsWithoutPredictions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Scores(SchemeLinear, []float64{1, 2}, nil, "x")
}

func TestFixSweepIdealIsOptimal(t *testing.T) {
	r := rng.New(5)
	trueErrs := make([]float64, 200)
	for i := range trueErrs {
		trueErrs[i] = r.Range(0, 1)
	}
	fracs := []float64{0, 0.25, 0.5, 0.75, 1}
	ideal := FixSweep(trueErrs, Scores(SchemeIdeal, trueErrs, nil, "x"), fracs)
	random := FixSweep(trueErrs, Scores(SchemeRandom, trueErrs, nil, "x"), fracs)
	for i := range fracs {
		if ideal[i].OutputError > random[i].OutputError+1e-12 {
			t.Fatalf("Ideal must dominate Random at every point: %v vs %v at %v",
				ideal[i].OutputError, random[i].OutputError, fracs[i])
		}
	}
	if ideal[0].OutputError <= ideal[len(ideal)-1].OutputError {
		t.Fatal("fixing everything must drive the error to the minimum")
	}
	if ideal[len(ideal)-1].OutputError != 0 {
		t.Fatal("fixing 100% must give zero error")
	}
}

// Property: every FixSweep curve is monotone non-increasing in the fixed
// fraction, for any scheme.
func TestFixSweepMonotoneProperty(t *testing.T) {
	r := rng.New(6)
	fracs := []float64{0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1}
	f := func(nRaw uint8, schemeRaw uint8) bool {
		n := int(nRaw)%100 + 5
		trueErrs := make([]float64, n)
		pred := make([]float64, n)
		for i := range trueErrs {
			trueErrs[i] = r.Range(0, 1)
			pred[i] = r.Range(0, 1)
		}
		scheme := AllSchemes[int(schemeRaw)%len(AllSchemes)]
		pts := FixSweep(trueErrs, Scores(scheme, trueErrs, pred, "prop"), fracs)
		for i := 1; i < len(pts); i++ {
			if pts[i].OutputError > pts[i-1].OutputError+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFixesForTargetReachesTarget(t *testing.T) {
	trueErrs := []float64{0.5, 0.0, 0.3, 0.2} // mean 0.25
	op := FixesForTarget(trueErrs, Scores(SchemeIdeal, trueErrs, nil, "x"), 0.10)
	if op.OutputError > 0.10 {
		t.Fatalf("operating point error %v exceeds target", op.OutputError)
	}
	// Fixing the 0.5 element gives mean 0.125 > 0.1; also fixing 0.3 gives
	// 0.05 <= 0.1, so exactly two fixes.
	if len(op.Fixed) != 2 {
		t.Fatalf("fixed %v, want 2 elements", op.Fixed)
	}
	if op.Threshold != 0.3 {
		t.Fatalf("threshold = %v, want 0.3 (last fixed element's score)", op.Threshold)
	}
}

func TestFixesForTargetAlreadyMet(t *testing.T) {
	trueErrs := []float64{0.01, 0.02}
	op := FixesForTarget(trueErrs, Scores(SchemeIdeal, trueErrs, nil, "x"), 0.10)
	if len(op.Fixed) != 0 || op.Threshold != 0 {
		t.Fatalf("no fixes needed, got %+v", op)
	}
}

func TestFixesForTargetUnreachable(t *testing.T) {
	trueErrs := []float64{1, 1, 1}
	op := FixesForTarget(trueErrs, Scores(SchemeRandom, trueErrs, nil, "x"), -1)
	if len(op.Fixed) != 3 {
		t.Fatal("impossible target must fix everything")
	}
}

func TestFixesForTargetEmpty(t *testing.T) {
	op := FixesForTarget(nil, nil, 0.1)
	if op.Fixed != nil || op.OutputError != 0 {
		t.Fatalf("empty input: %+v", op)
	}
}

// Property: Ideal needs no more fixes than any other scheme to reach the
// same target.
func TestIdealNeedsFewestFixesProperty(t *testing.T) {
	r := rng.New(7)
	f := func(nRaw uint8, schemeRaw uint8) bool {
		n := int(nRaw)%150 + 10
		trueErrs := make([]float64, n)
		pred := make([]float64, n)
		for i := range trueErrs {
			trueErrs[i] = r.Range(0, 0.6)
			pred[i] = r.Range(0, 0.6)
		}
		scheme := AllSchemes[int(schemeRaw)%len(AllSchemes)]
		target := 0.1
		ideal := FixesForTarget(trueErrs, Scores(SchemeIdeal, trueErrs, pred, "p"), target)
		other := FixesForTarget(trueErrs, Scores(scheme, trueErrs, pred, "p"), target)
		return len(ideal.Fixed) <= len(other.Fixed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVanDerCorput(t *testing.T) {
	cases := map[uint64]float64{0: 0, 1: 0.5, 2: 0.25, 3: 0.75, 4: 0.125}
	for i, want := range cases {
		if got := vanDerCorput(i); math.Abs(got-want) > 1e-15 {
			t.Fatalf("vdc(%d) = %v, want %v", i, got, want)
		}
	}
}
