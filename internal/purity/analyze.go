package purity

import (
	"fmt"
	"go/ast"
	"go/token"
)

// analyzeFunc walks one function body and returns the local purity
// violations plus the set of functions it calls (for the fixpoint).
//
// The ownership rule: a write through an index or dereference is pure only
// when the written object is *locally owned* — allocated inside the function
// (make/new/composite literal) and never received from a parameter or a
// global. Parameters are readable; writing to them (or through them)
// mutates caller-visible state, which is what the paper's purity definition
// ("only write to their outputs") excludes for re-executable regions whose
// output is the return value.
func analyzeFunc(fd *ast.FuncDecl, globals map[string]bool) (reasons []string, calls map[string]bool) {
	calls = map[string]bool{}
	owned := map[string]bool{}    // locally allocated objects
	locals := map[string]bool{}   // names declared in this function
	closures := map[string]bool{} // local variables holding function literals
	// ast.Inspect recurses into function-literal bodies, so a closure's
	// statements are analysed as part of this function; calling a local
	// closure therefore adds nothing beyond what is already checked.

	// Parameters and receivers are local names but NOT owned.
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, n := range f.Names {
				locals[n.Name] = true
			}
		}
		// A method on a pointer receiver can always mutate the receiver;
		// value receivers of reference types can too. Methods are treated
		// like functions: only writes make them impure.
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, n := range f.Names {
				locals[n.Name] = true
			}
		}
	}
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			for _, n := range f.Names {
				locals[n.Name] = true
				owned[n.Name] = true // named results belong to this call
			}
		}
	}

	addReason := func(format string, args ...any) {
		reasons = append(reasons, fmt.Sprintf(format, args...))
	}

	// rootIdent returns the base identifier of an lvalue expression chain
	// (x, x[i], x.f, *x, ...).
	var rootIdent func(e ast.Expr) (*ast.Ident, bool)
	rootIdent = func(e ast.Expr) (*ast.Ident, bool) {
		switch v := e.(type) {
		case *ast.Ident:
			return v, true
		case *ast.IndexExpr:
			return rootIdent(v.X)
		case *ast.SelectorExpr:
			return rootIdent(v.X)
		case *ast.StarExpr:
			return rootIdent(v.X)
		case *ast.ParenExpr:
			return rootIdent(v.X)
		case *ast.SliceExpr:
			return rootIdent(v.X)
		default:
			return nil, false
		}
	}

	// allocates reports whether an expression yields a locally owned value.
	allocates := func(e ast.Expr) bool {
		switch v := e.(type) {
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "make", "new", "append", "copy":
					return true
				}
			}
			// A call result is a fresh value (pure callees don't alias
			// their inputs into outputs in this codebase's style); being
			// conservative here would reject essentially everything, so
			// ownership of call results is assumed and the callee's own
			// purity is checked separately via the fixpoint.
			return true
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			return v.Op == token.AND // &T{...}
		case *ast.BasicLit:
			return true
		}
		return false
	}

	handleAssign := func(as *ast.AssignStmt) {
		for i, lhs := range as.Lhs {
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			}
			switch lv := lhs.(type) {
			case *ast.Ident:
				if lv.Name == "_" {
					continue
				}
				if globals[lv.Name] && !locals[lv.Name] {
					addReason("writes package-level variable %s", lv.Name)
					continue
				}
				if as.Tok == token.DEFINE {
					locals[lv.Name] = true
				}
				locals[lv.Name] = true
				if _, isLit := rhs.(*ast.FuncLit); rhs != nil && isLit {
					closures[lv.Name] = true
					owned[lv.Name] = true
					continue
				}
				if rhs != nil && allocates(rhs) {
					owned[lv.Name] = true
				} else if rhs != nil {
					// Aliasing: x = param keeps x un-owned; x = ownedVar
					// keeps ownership.
					if rid, ok := rootIdent(rhs); ok {
						owned[lv.Name] = owned[rid.Name]
					} else {
						owned[lv.Name] = true // literals, arithmetic
					}
				}
			default:
				// Write through an index/star/selector chain: pure only if
				// the root object is locally owned.
				root, ok := rootIdent(lhs)
				if !ok {
					addReason("writes through an unanalysable lvalue")
					continue
				}
				if globals[root.Name] && !locals[root.Name] {
					addReason("writes package-level variable %s", root.Name)
					continue
				}
				if !owned[root.Name] {
					addReason("writes through non-owned object %s (parameter or alias)", root.Name)
				}
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			handleAssign(v)
		case *ast.IncDecStmt:
			if root, ok := rootIdent(v.X); ok {
				if globals[root.Name] && !locals[root.Name] {
					addReason("writes package-level variable %s", root.Name)
				} else if _, isIdent := v.X.(*ast.Ident); !isIdent && !owned[root.Name] {
					addReason("increments through non-owned object %s", root.Name)
				}
			}
		case *ast.RangeStmt:
			// Range variables are locals (and plain values).
			for _, e := range []ast.Expr{v.Key, v.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					locals[id.Name] = true
					owned[id.Name] = true
				}
			}
		case *ast.CallExpr:
			if _, direct := v.Fun.(*ast.FuncLit); direct {
				break // immediately-invoked literal: body analysed inline
			}
			name := callName(v)
			switch {
			case name == "":
				calls["<dynamic call>"] = true
			case closures[name]:
				// Local closure: body already analysed inline.
			default:
				calls[name] = true
			}
		case *ast.GoStmt:
			addReason("spawns a goroutine")
		case *ast.SendStmt:
			addReason("sends on a channel")
		case *ast.DeclStmt:
			if gd, ok := v.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, n := range vs.Names {
							locals[n.Name] = true
							owned[n.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	return reasons, calls
}

// callName renders a call target as "name" or "pkg.Name"; method calls on
// local values return "" unless resolvable, which the caller treats as
// unknown (conservative) — except calls on owned receivers, which remain
// conservative too.
func callName(c *ast.CallExpr) string {
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
	case *ast.ArrayType, *ast.MapType:
		return "make" // conversion-like
	case *ast.ParenExpr:
		return ""
	}
	return ""
}
