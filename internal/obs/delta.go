package obs

// Delta returns the change between two snapshots of the same registry: what
// happened strictly after `before` was taken. It exists so tests can assert
// metric movement ("this request shed exactly once, observed 64 latencies")
// against a registry shared across a whole server or test binary, without a
// Reset method that would race live writers and reintroduce test-order
// coupling.
//
// Semantics per metric kind:
//
//   - counters subtract; a counter absent from `before` counts from zero.
//   - gauges are levels, not accumulators — subtracting them is meaningless,
//     so Delta keeps `after`'s Value and Max unchanged.
//   - histograms subtract Count, Sum and per-bucket counts; buckets whose
//     count did not move are dropped.
//
// Metrics present only in `before` (impossible for one registry — metrics
// are never deleted) are ignored.
func Delta(before, after Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64, len(after.Counters)),
		Gauges:     make(map[string]GaugeSnapshot, len(after.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(after.Histograms)),
	}
	for name, v := range after.Counters {
		d.Counters[name] = v - before.Counters[name]
	}
	for name, g := range after.Gauges {
		d.Gauges[name] = g
	}
	for name, h := range after.Histograms {
		prev := before.Histograms[name]
		dh := HistogramSnapshot{Count: h.Count - prev.Count, Sum: h.Sum - prev.Sum}
		prevByLe := make(map[float64]int64, len(prev.Buckets))
		for _, b := range prev.Buckets {
			prevByLe[b.Le] = b.Count
		}
		for _, b := range h.Buckets {
			if n := b.Count - prevByLe[b.Le]; n != 0 {
				dh.Buckets = append(dh.Buckets, Bucket{Le: b.Le, Count: n})
			}
		}
		d.Histograms[name] = dh
	}
	return d
}
