// Package purity implements the static region-purity analysis of Section
// 2.2: Rumba's recovery relies on re-executing code regions, which is only
// safe when they are pure — they read their inputs and write only their
// outputs, touching no other state. The paper identifies such regions with
// prior compiler techniques (idempotence analysis, refs [17, 20]) and
// reports that more than 70% of the data-parallel regions in Rodinia qualify.
//
// The package is a thin, report-shaped wrapper over the type-aware driver
// in internal/analysis: source is parsed with go/parser and type-checked
// with go/types, every call is resolved to its typed object (so a local
// function that shadows a trusted helper's name is never confused with it,
// and methods resolve properly), and the purity fixpoint runs over the
// typed call graph across package boundaries. A function is reported pure
// only when the analysis can prove it; anything it cannot see through
// (unknown calls, writes through caller-visible memory) makes the function
// impure.
package purity

import (
	"fmt"
	"go/types"
	"io"
	"strings"

	"rumba/internal/analysis"
)

// Verdict is the analysis result for one function.
type Verdict struct {
	Function string
	Pure     bool
	// Reasons lists why the function was rejected (empty when pure).
	Reasons []string
}

// Report is the analysis result for a package.
type Report struct {
	Package  string
	Verdicts []Verdict
}

// PureFraction returns the fraction of analysed functions proven pure (the
// paper's Rodinia statistic is the analogous number).
func (r Report) PureFraction() float64 {
	if len(r.Verdicts) == 0 {
		return 0
	}
	pure := 0
	for _, v := range r.Verdicts {
		if v.Pure {
			pure++
		}
	}
	return float64(pure) / float64(len(r.Verdicts))
}

// Lookup returns the verdict for a function name.
func (r Report) Lookup(name string) (Verdict, bool) {
	for _, v := range r.Verdicts {
		if v.Function == name {
			return v, true
		}
	}
	return Verdict{}, false
}

// AnalyzeSource type-checks a single Go source file (filename is for
// positions only) and analyses every top-level function in it. trusted
// lists extra call targets ("pkg.Func" or "import/path.Func") the caller
// asserts are pure; entries are resolved against the typed objects calls
// actually bind to, never against bare spelling.
func AnalyzeSource(filename, src string, trusted ...string) (Report, error) {
	loader, err := analysis.SharedLoader(".")
	if err != nil {
		return Report{}, fmt.Errorf("purity: %w", err)
	}
	pkg, err := loader.LoadSource(map[string]string{filename: src})
	if err != nil {
		return Report{}, fmt.Errorf("purity: %w", err)
	}
	m := analysis.BuildModule(loader.Fset(), "", []*analysis.Package{pkg}, trusted...)
	return reportFor(m, pkg), nil
}

// AnalyzeDir type-checks the package in dir together with its module
// dependencies and analyses the package's functions. The purity fixpoint
// runs across all loaded module packages, so helpers from sibling packages
// are verified rather than assumed; trusted remains available for external
// targets.
func AnalyzeDir(dir string, trusted ...string) (Report, error) {
	loader, err := analysis.SharedLoader(dir)
	if err != nil {
		return Report{}, fmt.Errorf("purity: %w", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		return Report{}, fmt.Errorf("purity: %w", err)
	}
	// LoadDir type-checks module dependencies transitively; include them
	// all so cross-package calls resolve to facts instead of "unknown".
	m := analysis.BuildModule(loader.Fset(), loader.Root(), loader.ModulePackages(), trusted...)
	return reportFor(m, pkg), nil
}

// WriteReport renders the report in the historical rumba-purity text form,
// shared by cmd/rumba-purity (deprecated) and rumba-vet -purity-report.
func WriteReport(w io.Writer, rep Report, impureOnly bool) {
	fmt.Fprintf(w, "package %s: %d functions analysed, %.0f%% provably pure\n\n",
		rep.Package, len(rep.Verdicts), 100*rep.PureFraction())
	for _, v := range rep.Verdicts {
		if v.Pure {
			if !impureOnly {
				fmt.Fprintf(w, "  pure    %s\n", v.Function)
			}
			continue
		}
		fmt.Fprintf(w, "  impure  %-30s %s\n", v.Function, strings.Join(v.Reasons, "; "))
	}
}

// reportFor flattens the module facts for one package into the report
// shape, in source order.
func reportFor(m *analysis.Module, pkg *analysis.Package) Report {
	rep := Report{Package: pkg.Name}
	for _, fi := range m.FuncsIn(pkg) {
		v := Verdict{Function: verdictName(fi.Obj), Pure: fi.Pure()}
		if !v.Pure {
			for _, r := range fi.AllReasons() {
				v.Reasons = append(v.Reasons, r.Msg)
			}
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}
	return rep
}

// verdictName renders "Func" for package functions and "Type.Method" for
// methods, matching the historical report format.
func verdictName(obj *types.Func) string {
	sig := obj.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return obj.Name()
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + obj.Name()
	}
	return obj.Name()
}
