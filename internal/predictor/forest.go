package predictor

import (
	"fmt"

	"rumba/internal/rng"
)

// Forest is a bagged ensemble of depth-bounded decision trees (extension
// beyond the paper; DESIGN.md §5b). On kernels whose error boundary is hard
// for a single axis-aligned depth-7 tree — jmeint's 18-dimensional triangle
// configuration space is the repository's worst case — averaging a few
// bootstrap-trained trees recovers part of the gap, at K times the tree's
// comparator cost. The hardware analogue is K Figure 7(b) comparator trees
// evaluated in parallel and a small adder.
type Forest struct {
	Trees []*Tree
}

var _ Predictor = (*Forest)(nil)

// Name implements Predictor.
func (f *Forest) Name() string { return "forestErrors" }

// PredictError implements Predictor: the mean of the member predictions.
func (f *Forest) PredictError(in, out []float64) float64 {
	if len(f.Trees) == 0 {
		return 0
	}
	var s float64
	for _, t := range f.Trees {
		s += t.PredictError(in, out)
	}
	return s / float64(len(f.Trees))
}

// PredictErrorBatch implements Predictor via the scalar reference path. The
// member trees' flattened kernels are not reused here because the forest
// averages *clamped per-tree* predictions, which is exactly what the scalar
// walk computes; a fused form would have to keep a per-tree staging buffer
// for no measured win (forests are an offline-ablation checker).
func (f *Forest) PredictErrorBatch(dst []float64, ins, outs [][]float64) {
	ScalarBatch(f, dst, ins, outs)
}

// Cost implements Predictor: K parallel comparator trees plus the averaging
// adds and the threshold compare.
func (f *Forest) Cost() Cost {
	var c Cost
	for _, t := range f.Trees {
		tc := t.Cost()
		c.Compares += tc.Compares
	}
	c.MACs += float64(len(f.Trees)) // the averaging adder tree
	return c
}

// Reset implements Predictor (stateless).
func (f *Forest) Reset() {}

// FitForest trains k trees on bootstrap resamples of the observation. seed
// names the random stream so fits are reproducible.
func FitForest(inputs [][]float64, errs []float64, features []int, k int, cfg TreeConfig, seed string) (*Forest, error) {
	if k <= 0 {
		return nil, fmt.Errorf("predictor: forest needs a positive tree count")
	}
	if len(inputs) == 0 || len(inputs) != len(errs) {
		return nil, fmt.Errorf("predictor: FitForest needs matching non-empty inputs/errors")
	}
	r := rng.NewNamed("predictor/forest/" + seed)
	f := &Forest{Trees: make([]*Tree, 0, k)}
	n := len(inputs)
	for i := 0; i < k; i++ {
		bootIn := make([][]float64, n)
		bootErr := make([]float64, n)
		for j := 0; j < n; j++ {
			idx := r.Intn(n)
			bootIn[j] = inputs[idx]
			bootErr[j] = errs[idx]
		}
		tree, err := FitTree(bootIn, bootErr, features, cfg)
		if err != nil {
			return nil, fmt.Errorf("predictor: forest member %d: %w", i, err)
		}
		f.Trees = append(f.Trees, tree)
	}
	return f, nil
}
