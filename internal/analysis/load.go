package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the import path ("rumba/internal/bench").
	Path string
	// Dir is the package directory on disk ("" for in-memory fixtures).
	Dir string
	// Name is the package name from the package clause.
	Name string
	// Files are the parsed non-test source files, in filename order.
	Files []*ast.File
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages from source. Module-internal
// import paths are resolved from the module tree; everything else is
// delegated to the standard library's source importer (go/importer with
// compiler "source"), so the loader needs no compiled export data and no
// network. A Loader caches every package it checks and is safe for
// concurrent use.
type Loader struct {
	mu      sync.Mutex
	fset    *token.FileSet
	std     types.ImporterFrom
	root    string // module root directory (holds go.mod)
	modPath string // module path from go.mod
	pkgs    map[string]*Package
	loading map[string]bool
	fixture int // counter for unique in-memory fixture paths
}

// NewLoader returns a loader rooted at the module containing dir (dir may
// be any directory inside the module).
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		root:    root,
		modPath: modPath,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// ModulePackages returns every module-internal package the loader has
// type-checked so far (LoadDir pulls in module dependencies transitively),
// sorted by import path.
func (l *Loader) ModulePackages() []*Package {
	l.mu.Lock()
	defer l.mu.Unlock()
	var pkgs []*Package
	for _, pkg := range l.pkgs {
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Import implements types.Importer: module-internal paths load from source
// under the module root, everything else goes to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.moduleDir(path); ok {
		pkg, err := l.loadDirLocked(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// moduleDir maps a module-internal import path to its directory.
func (l *Loader) moduleDir(path string) (string, bool) {
	if path == l.modPath {
		return l.root, true
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// LoadDir type-checks the package in dir (which must lie inside the
// module) together with everything it imports.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.root)
	}
	path := l.modPath
	if rel != "." {
		path = l.modPath + "/" + filepath.ToSlash(rel)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.loadDirLocked(path, abs)
}

func (l *Loader) loadDirLocked(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source in %s", dir)
	}
	pkg, err := l.check(path, dir, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadSource type-checks a single-package fixture given as filename→source.
// Each call builds a distinct package, so fixtures never collide; imports of
// the standard library (and of module packages, via their full path) work.
func (l *Loader) LoadSource(sources map[string]string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var names []string
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, sources[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no fixture sources")
	}
	l.fixture++
	path := fmt.Sprintf("fixture%d/%s", l.fixture, files[0].Name.Name)
	return l.check(path, "", files)
}

func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Name:  files[0].Name.Name,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// LoadModule loads every package in the module: it walks the module tree,
// skipping hidden directories, testdata, and nested modules, and
// type-checks each package found. The returned packages are sorted by
// import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.root {
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// sharedLoader hands out one process-wide loader per module root, so test
// helpers and wrappers reuse the (expensive) type-checked standard library.
var (
	sharedMu      sync.Mutex
	sharedLoaders = map[string]*Loader{}
)

// SharedLoader returns a cached loader for the module containing dir.
func SharedLoader(dir string) (*Loader, error) {
	root, _, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if l, ok := sharedLoaders[root]; ok {
		return l, nil
	}
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	sharedLoaders[root] = l
	return l, nil
}
