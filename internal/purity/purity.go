// Package purity implements the static region-purity analysis of Section
// 2.2: Rumba's recovery relies on re-executing code regions, which is only
// safe when they are pure — they read their inputs and write only their
// outputs, touching no other state. The paper identifies such regions with
// prior compiler techniques (idempotence analysis, refs [17, 20]) and
// reports that more than 70% of the data-parallel regions in Rodinia qualify.
//
// This analyser performs the same job for Go kernels: it parses source with
// go/parser and conservatively classifies each function as pure or impure
// from its syntax tree. A function is reported pure only when the analysis
// can prove it; anything it cannot see through (unknown calls, writes
// through caller-visible memory) makes the function impure. The runtime's
// purity requirement for kernels (bench.Spec.Exact) is checked by this
// package's tests against the real benchmark sources.
package purity

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
)

// Verdict is the analysis result for one function.
type Verdict struct {
	Function string
	Pure     bool
	// Reasons lists why the function was rejected (empty when pure).
	Reasons []string
}

// Report is the analysis result for a package.
type Report struct {
	Package  string
	Verdicts []Verdict
}

// PureFraction returns the fraction of analysed functions proven pure (the
// paper's Rodinia statistic is the analogous number).
func (r Report) PureFraction() float64 {
	if len(r.Verdicts) == 0 {
		return 0
	}
	pure := 0
	for _, v := range r.Verdicts {
		if v.Pure {
			pure++
		}
	}
	return float64(pure) / float64(len(r.Verdicts))
}

// Lookup returns the verdict for a function name.
func (r Report) Lookup(name string) (Verdict, bool) {
	for _, v := range r.Verdicts {
		if v.Function == name {
			return v, true
		}
	}
	return Verdict{}, false
}

// pureStdlib lists call targets the analysis trusts to be pure. Only
// value-returning math helpers belong here.
var pureStdlib = map[string]bool{
	"math.Abs": true, "math.Sqrt": true, "math.Exp": true, "math.Log": true,
	"math.Sin": true, "math.Cos": true, "math.Tan": true, "math.Sincos": true,
	"math.Acos": true, "math.Asin": true, "math.Atan": true, "math.Atan2": true,
	"math.Pow": true, "math.Floor": true, "math.Ceil": true, "math.Round": true,
	"math.Erf": true, "math.Erfc": true, "math.Min": true, "math.Max": true,
	"math.Mod": true, "math.Tanh": true, "math.Inf": true, "math.IsNaN": true,
	"math.IsInf": true, "math.Hypot": true, "math.Trunc": true,
	// Builtins.
	"len": true, "cap": true, "make": true, "new": true, "append": true,
	"copy": true, "float64": true, "float32": true, "int": true, "int32": true,
	"int64": true, "uint64": true, "byte": true, "string": true, "min": true,
	"max": true, "abs": true,
}

// AnalyzeSource parses a single Go source file (filename is for positions
// only) and analyses every top-level function in it. trusted lists extra
// call targets ("pkg.Func") the caller asserts are pure — typically helpers
// from sibling packages already verified by their own analysis.
func AnalyzeSource(filename, src string, trusted ...string) (Report, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return Report{}, fmt.Errorf("purity: %w", err)
	}
	return analyzeFiles(file.Name.Name, []*ast.File{file}, trustSet(trusted)), nil
}

func trustSet(trusted []string) map[string]bool {
	m := map[string]bool{}
	for _, t := range trusted {
		m[t] = true
	}
	return m
}

// AnalyzeDir parses every non-test Go file in dir and analyses the package's
// functions. trusted lists extra call targets asserted pure.
func AnalyzeDir(dir string, trusted ...string) (Report, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.SkipObjectResolution)
	if err != nil {
		return Report{}, fmt.Errorf("purity: %w", err)
	}
	for name, pkg := range pkgs {
		files := make([]*ast.File, 0, len(pkg.Files))
		// Deterministic order.
		var paths []string
		for p := range pkg.Files {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			files = append(files, pkg.Files[p])
		}
		return analyzeFiles(name, files, trustSet(trusted)), nil
	}
	return Report{}, fmt.Errorf("purity: no Go package in %s", dir)
}

// analyzeFiles runs the per-function analysis with a purity fixpoint over
// intra-package calls: a function calling another analysed function is pure
// iff the callee is (mutual recursion converges to impure, the conservative
// answer).
func analyzeFiles(pkgName string, files []*ast.File, trusted map[string]bool) Report {
	globals := collectGlobals(files)
	funcs := map[string]*ast.FuncDecl{}
	var order []string
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil {
				name = recvTypeName(fd.Recv) + "." + name
			}
			funcs[name] = fd
			order = append(order, name)
		}
	}

	// Initial pass: every function's local violations + called names.
	type info struct {
		reasons []string
		calls   map[string]bool
	}
	infos := map[string]*info{}
	for name, fd := range funcs {
		reasons, calls := analyzeFunc(fd, globals)
		infos[name] = &info{reasons: reasons, calls: calls}
	}

	// Fixpoint: start from "pure unless locally impure", knock out
	// functions whose callees are impure or unknown.
	pure := map[string]bool{}
	for name, in := range infos {
		pure[name] = len(in.reasons) == 0
	}
	callReason := map[string]string{}
	for changed := true; changed; {
		changed = false
		for name, in := range infos {
			if !pure[name] {
				continue
			}
			for callee := range in.calls {
				if pureStdlib[callee] || trusted[callee] {
					continue
				}
				if p, known := pure[callee]; known {
					if !p {
						pure[name] = false
						callReason[name] = "calls impure function " + callee
						changed = true
					}
					continue
				}
				// Method value or unknown package call: conservative.
				pure[name] = false
				callReason[name] = "calls unknown function " + callee
				changed = true
			}
		}
	}

	rep := Report{Package: pkgName}
	for _, name := range order {
		v := Verdict{Function: name, Pure: pure[name], Reasons: infos[name].reasons}
		if !v.Pure && len(v.Reasons) == 0 {
			v.Reasons = []string{callReason[name]}
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}
	return rep
}

func recvTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return "?"
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		default:
			return "?"
		}
	}
}

// collectGlobals returns the names of package-level vars (consts are fine to
// read and cannot be written; vars are shared state).
func collectGlobals(files []*ast.File) map[string]bool {
	globals := map[string]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, n := range vs.Names {
					globals[n.Name] = true
				}
			}
		}
	}
	return globals
}
