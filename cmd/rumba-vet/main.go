// Command rumba-vet runs Rumba's static-analysis suite (internal/analysis)
// over the module: the type-aware Section 2.2 purity analysis, the
// determinism, floatcmp, kernelsig, and concurrency analyzers that back
// the safe-re-execution guarantee, and the CFG dataflow analyzers —
// approxflow (approximate values must pass a checker before commit) and
// hotpath (//rumba:hotpath functions must be allocation-free).
//
//	rumba-vet ./...
//	rumba-vet -json -fail-on error internal/bench
//	rumba-vet -analyzers kernelsig,determinism ./...
//	rumba-vet -sarif ./... > vet.sarif
//	rumba-vet -baseline vet-baseline.json ./...
//	rumba-vet -write-baseline vet-baseline.json ./...
//
// The whole module is always loaded (the purity fixpoint and kernel-sink
// facts are cross-package); the package arguments select which packages'
// findings are reported. Exit status: 0 when no unsuppressed finding is at
// or above -fail-on severity, 1 when there is one, 2 on usage or load
// errors. A finding is suppressed with an inline directive on (or on the
// line above) the flagged line:
//
//	//rumba:allow <analyzer>[,<analyzer>...] [reason]
//
// or with an entry in the -baseline file, which matches by (analyzer,
// file, message) — line-insensitive, so edits elsewhere in a file do not
// invalidate it. -write-baseline accepts the current findings wholesale;
// the intended workflow is to write it once, then ratchet it down.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rumba/internal/analysis"
	"rumba/internal/purity"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rumba-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	sarifOut := fs.Bool("sarif", false, "emit the report as SARIF 2.1.0")
	failOn := fs.String("fail-on", "warning", "exit non-zero on findings at or above this severity (info, warning, error)")
	names := fs.String("analyzers", "", "comma-separated analyzers to run (default: all)")
	showSuppressed := fs.Bool("suppressed", false, "also print suppressed findings (text mode)")
	baselinePath := fs.String("baseline", "", "suppress findings recorded in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "accept all current findings into this baseline file and exit 0")
	purityReport := fs.String("purity-report", "", "print the legacy per-function purity report for this package directory and exit")
	trust := fs.String("trust", "", "with -purity-report: comma-separated external call targets asserted pure")
	impureOnly := fs.Bool("impure-only", false, "with -purity-report: print only functions that failed the analysis")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *purityReport != "" {
		var trusted []string
		if *trust != "" {
			trusted = strings.Split(*trust, ",")
		}
		rep, err := purity.AnalyzeDir(*purityReport, trusted...)
		if err != nil {
			return fatal(stderr, err)
		}
		purity.WriteReport(stdout, rep, *impureOnly)
		return 0
	}

	sev, err := analysis.ParseSeverity(*failOn)
	if err != nil {
		return fatal(stderr, err)
	}
	if *jsonOut && *sarifOut {
		return fatal(stderr, fmt.Errorf("-json and -sarif are mutually exclusive"))
	}
	var analyzers []*analysis.Analyzer
	if *names != "" {
		for _, name := range strings.Split(*names, ",") {
			a, ok := analysis.AnalyzerByName(strings.TrimSpace(name))
			if !ok {
				return fatal(stderr, fmt.Errorf("unknown analyzer %q", name))
			}
			analyzers = append(analyzers, a)
		}
	} else {
		analyzers = analysis.Analyzers()
	}

	var baseline *analysis.Baseline
	if *baselinePath != "" {
		baseline, err = analysis.LoadBaseline(*baselinePath)
		if err != nil {
			return fatal(stderr, err)
		}
	}

	loader, err := analysis.SharedLoader(".")
	if err != nil {
		return fatal(stderr, err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		return fatal(stderr, err)
	}
	module := analysis.BuildModule(loader.Fset(), moduleRoot(), pkgs)

	diags := module.Run(analyzers...)
	diags = filterPackages(diags, fs.Args())

	if *writeBaseline != "" {
		b := analysis.NewBaseline(diags)
		if err := analysis.WriteBaseline(*writeBaseline, b); err != nil {
			return fatal(stderr, err)
		}
		fmt.Fprintf(stderr, "rumba-vet: wrote %d finding(s) to %s\n", len(b.Entries), *writeBaseline)
		return 0
	}

	if baseline != nil {
		var stale int
		diags, stale = baseline.Apply(diags)
		if stale > 0 {
			fmt.Fprintf(stderr, "rumba-vet: %d stale baseline entr(ies) no longer match any finding\n", stale)
		}
	}

	switch {
	case *jsonOut:
		out, err := analysis.MarshalJSONReport(analyzers, diags, sev)
		if err != nil {
			return fatal(stderr, err)
		}
		fmt.Fprintln(stdout, string(out))
	case *sarifOut:
		out, err := analysis.MarshalSARIF(analyzers, diags)
		if err != nil {
			return fatal(stderr, err)
		}
		fmt.Fprintln(stdout, string(out))
	default:
		for _, d := range diags {
			if d.Suppressed && !*showSuppressed {
				continue
			}
			fmt.Fprintln(stdout, d)
		}
	}
	if n := analysis.FailCount(diags, sev); n > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(stderr, "rumba-vet: %d finding(s) at or above %s\n", n, sev)
		}
		return 1
	}
	return 0
}

// moduleRoot finds the enclosing module root for relative file reporting.
func moduleRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return ""
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}

// filterPackages keeps findings whose file falls under one of the package
// patterns. "./..." (or no arguments) keeps everything; "dir" and
// "dir/..." keep that subtree.
func filterPackages(diags []analysis.Diagnostic, patterns []string) []analysis.Diagnostic {
	if len(patterns) == 0 {
		return diags
	}
	var prefixes []string
	for _, pat := range patterns {
		pat = strings.TrimSuffix(pat, "...")
		pat = strings.TrimSuffix(pat, "/")
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" || pat == "." {
			return diags
		}
		prefixes = append(prefixes, filepath.ToSlash(pat)+"/")
	}
	var out []analysis.Diagnostic
	for _, d := range diags {
		file := filepath.ToSlash(d.File)
		for _, p := range prefixes {
			if strings.HasPrefix(file, p) {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "rumba-vet:", err)
	return 2
}
