// Package slo is the burn-rate alerting engine behind the serving layer's
// per-tenant error budgets. It implements the SRE-workbook multi-window
// pattern: an alert fires only when the short window (is it burning *now*?)
// AND the long window (has it burned enough to matter?) both exceed a burn
// threshold, which is what keeps a 30-second blip from paging while a
// sustained TOQ violation pages within minutes.
//
// Rumba serves *approximate* results on purpose, so the budgets are quality
// budgets, not availability ones: the fraction of elements whose delivered
// error estimate missed the tenant's target-output-quality (TOQ), the
// fraction of stream chunks slower than the kernel package's declared p99
// SLO, and the fraction of requests shed by admission control. The serving
// layer feeds each as a pair of cumulative good/bad totals; the engine keeps
// a small timestamped sample ring per series and derives windowed burn rates
// by delta, so a node restart (counters reset to zero) is detected and the
// series restarts cleanly instead of alerting on a negative delta.
//
// Burn rate is badFraction/budgetTarget: burn 1 spends exactly the budget
// over the SLO period; the default page threshold 14.4 is the canonical
// "2% of a 30-day budget in one hour" figure, and ticket at 3 catches slow
// leaks. A series younger than a window uses its full lifetime as the window
// (cold-start semantics) — a freshly violating tenant must not get an hour
// of grace just because the slow window is an hour wide.
package slo

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rumba/internal/obs"
)

// Budget names the three per-tenant error budgets.
const (
	BudgetTOQ     = "toq"     // elements whose delivered-error estimate missed the tenant's target
	BudgetLatency = "latency" // stream chunks slower than the package's p99 SLO
	BudgetShed    = "shed"    // requests refused by admission control
)

// Severity levels, ordered. Page means both windows burn fast enough to
// exhaust the budget long before a human would notice organically; ticket is
// a slow leak worth a look within the day.
const (
	SeverityOK     = "ok"
	SeverityTicket = "ticket"
	SeverityPage   = "page"
)

// Config tunes the engine. Zero values take the defaults noted per field.
type Config struct {
	// FastWindow is the "burning now" window (default 5m).
	FastWindow time.Duration
	// SlowWindow is the "burned enough to matter" window (default 1h).
	SlowWindow time.Duration
	// PageBurn is the burn-rate threshold both windows must exceed to page
	// (default 14.4 — 2% of a 30-day budget per hour).
	PageBurn float64
	// TicketBurn is the lower both-windows threshold for a ticket (default 3).
	TicketBurn float64
	// MinEvents is the minimum fast-window event total before a series can
	// alert; below it the burn is noise (default 10).
	MinEvents int64
	// MaxSamples bounds each series' sample ring (default 720 — one hour at a
	// 5s eval cadence).
	MaxSamples int
}

func (c Config) withDefaults() Config {
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	if c.PageBurn <= 0 {
		c.PageBurn = 14.4
	}
	if c.TicketBurn <= 0 {
		c.TicketBurn = 3
	}
	if c.TicketBurn > c.PageBurn {
		c.TicketBurn = c.PageBurn
	}
	if c.MinEvents <= 0 {
		c.MinEvents = 10
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 720
	}
	return c
}

// Key identifies one budget series.
type Key struct {
	Tenant string `json:"tenant"`
	Kernel string `json:"kernel,omitempty"`
	Budget string `json:"budget"`
}

// sample is one cumulative reading: good and bad event totals since the
// series (or the process) was born.
type sample struct {
	at   time.Time
	good int64
	bad  int64
}

type series struct {
	key     Key
	target  float64
	born    time.Time
	samples []sample
}

// Engine holds the budget series and evaluates them. Safe for concurrent use.
type Engine struct {
	mu     sync.Mutex
	cfg    Config
	series map[Key]*series
}

// New builds an engine.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults(), series: make(map[Key]*series)}
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Record feeds one cumulative reading for a series: good and bad event totals
// since process start, and the budget target (the tolerated bad fraction,
// e.g. 0.05 for "at most 5% of elements may miss TOQ"). Totals going
// backwards mean the upstream counters reset (node restart, tenant handoff);
// the series restarts from the new totals rather than producing negative
// deltas. A nil engine ignores the call, so instrumentation needs no gate.
func (e *Engine) Record(k Key, target float64, good, bad int64, now time.Time) {
	if e == nil || target <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.series[k]
	if !ok {
		s = &series{key: k, born: now}
		e.series[k] = s
	}
	s.target = target
	if n := len(s.samples); n > 0 {
		last := s.samples[n-1]
		if good < last.good || bad < last.bad {
			// Counter reset: restart the series at the new origin.
			s.samples = s.samples[:0]
			s.born = now
		} else if !now.After(last.at) {
			// Out-of-order or same-instant reading: keep the newest totals
			// under the existing timestamp.
			s.samples[n-1] = sample{at: last.at, good: good, bad: bad}
			return
		}
	}
	s.samples = append(s.samples, sample{at: now, good: good, bad: bad})
	s.prune(now, e.cfg)
}

// prune drops samples the slow window can never use again, always keeping one
// sample older than the window as the delta baseline, and enforces the ring
// cap by thinning the oldest readings.
func (s *series) prune(now time.Time, cfg Config) {
	cut := now.Add(-cfg.SlowWindow)
	first := 0
	for first < len(s.samples)-1 && s.samples[first+1].at.Before(cut) {
		first++
	}
	if first > 0 {
		s.samples = append(s.samples[:0], s.samples[first:]...)
	}
	if over := len(s.samples) - cfg.MaxSamples; over > 0 {
		s.samples = append(s.samples[:0], s.samples[over:]...)
	}
}

// WindowBurn is the evaluated state of one window of one series.
type WindowBurn struct {
	// Seconds is the configured window width.
	Seconds float64 `json:"seconds"`
	// SpanSeconds is the span the burn was actually computed over — smaller
	// than Seconds while the series is younger than the window (cold start).
	SpanSeconds float64 `json:"spanSeconds"`
	// Bad and Total are the event deltas inside the window.
	Bad   int64 `json:"bad"`
	Total int64 `json:"total"`
	// Burn is badFraction/target: 1 spends the budget exactly, >1 overspends.
	Burn float64 `json:"burn"`
}

// Alert is the evaluated state of one budget series.
type Alert struct {
	Key
	Target   float64    `json:"target"`
	Severity string     `json:"severity"`
	Fast     WindowBurn `json:"fast"`
	Slow     WindowBurn `json:"slow"`
}

// burnWindow computes one window's burn for a series at `now`.
func (e *Engine) burnWindow(s *series, width time.Duration, now time.Time) WindowBurn {
	w := WindowBurn{Seconds: width.Seconds()}
	if len(s.samples) == 0 {
		return w
	}
	latest := s.samples[len(s.samples)-1]
	cut := now.Add(-width)
	// Baseline: the newest sample at or before the window's left edge;
	// when the whole series is inside the window (cold start), the implied
	// zero reading at the series' birth.
	base := sample{at: s.born}
	for _, smp := range s.samples {
		if smp.at.After(cut) {
			break
		}
		base = smp
	}
	bad := latest.bad - base.bad
	total := (latest.good + latest.bad) - (base.good + base.bad)
	if bad < 0 {
		bad = 0
	}
	if total <= 0 {
		return w
	}
	span := latest.at.Sub(base.at)
	if span <= 0 {
		span = time.Second
	}
	if span > width {
		span = width
	}
	w.SpanSeconds = span.Seconds()
	w.Bad, w.Total = bad, total
	w.Burn = (float64(bad) / float64(total)) / s.target
	return w
}

func (e *Engine) evaluateSeries(s *series, now time.Time) Alert {
	a := Alert{
		Key:      s.key,
		Target:   s.target,
		Severity: SeverityOK,
		Fast:     e.burnWindow(s, e.cfg.FastWindow, now),
		Slow:     e.burnWindow(s, e.cfg.SlowWindow, now),
	}
	if a.Fast.Total < e.cfg.MinEvents {
		return a
	}
	switch {
	case a.Fast.Burn >= e.cfg.PageBurn && a.Slow.Burn >= e.cfg.PageBurn:
		a.Severity = SeverityPage
	case a.Fast.Burn >= e.cfg.TicketBurn && a.Slow.Burn >= e.cfg.TicketBurn:
		a.Severity = SeverityTicket
	}
	return a
}

// Evaluate returns the current state of every series, sorted by tenant,
// budget, kernel. The slice is fresh; nil engines return nil.
func (e *Engine) Evaluate(now time.Time) []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, 0, len(e.series))
	for _, s := range e.series {
		out = append(out, e.evaluateSeries(s, now))
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Tenant != out[b].Tenant {
			return out[a].Tenant < out[b].Tenant
		}
		if out[a].Budget != out[b].Budget {
			return out[a].Budget < out[b].Budget
		}
		return out[a].Kernel < out[b].Kernel
	})
	return out
}

// Tenant returns the evaluated series of one tenant (nil when it has none).
func (e *Engine) Tenant(tenant string, now time.Time) []Alert {
	if e == nil {
		return nil
	}
	all := e.Evaluate(now)
	var out []Alert
	for _, a := range all {
		if a.Key.Tenant == tenant {
			out = append(out, a)
		}
	}
	return out
}

// Firing filters an alert list down to non-ok severities.
func Firing(alerts []Alert) []Alert {
	var out []Alert
	for _, a := range alerts {
		if a.Severity != SeverityOK {
			out = append(out, a)
		}
	}
	return out
}

// severityLevel maps severities onto the gauge scale: ok 0, ticket 1, page 2.
func severityLevel(sev string) float64 {
	switch sev {
	case SeverityPage:
		return 2
	case SeverityTicket:
		return 1
	}
	return 0
}

// Forget drops every series of one tenant — called when a tenant is deleted
// or handed off to another node, so its stale budgets stop alerting here.
func (e *Engine) Forget(tenant string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for k := range e.series {
		if k.Tenant == tenant {
			delete(e.series, k)
		}
	}
}

// Publish evaluates every series and mirrors the results into slo.* gauges:
// slo.burn.fast / slo.burn.slow with the windowed burn rates and slo.alert
// with the severity level (0 ok, 1 ticket, 2 page), each labelled by tenant
// and budget. Returns the evaluated alerts so one pass serves both the
// metrics and the HTTP surfaces.
func (e *Engine) Publish(reg *obs.Registry, now time.Time) []Alert {
	alerts := e.Evaluate(now)
	if reg == nil {
		return alerts
	}
	for _, a := range alerts {
		labels := []string{"tenant", a.Tenant, "budget", a.Budget}
		reg.Gauge(obs.Labeled("slo.burn.fast", labels...)).Set(a.Fast.Burn)
		reg.Gauge(obs.Labeled("slo.burn.slow", labels...)).Set(a.Slow.Burn)
		reg.Gauge(obs.Labeled("slo.alert", labels...)).Set(severityLevel(a.Severity))
	}
	return alerts
}

// String renders an alert compactly for logs.
func (a Alert) String() string {
	return fmt.Sprintf("%s/%s %s burn fast=%.1f slow=%.1f (target %.3g)",
		a.Tenant, a.Budget, a.Severity, a.Fast.Burn, a.Slow.Burn, a.Target)
}
