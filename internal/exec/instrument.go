package exec

import (
	"time"

	"rumba/internal/obs"
)

// Instrumented wraps an Executor with observability: an invocation counter
// and a wall-clock latency histogram. Cost-model methods delegate untouched,
// so the wrapper is behaviour-transparent to the runtime and the
// energy/pipeline accounting.
type Instrumented struct {
	Executor
	Invocations *obs.Counter
	Latency     *obs.Histogram
}

// Instrument wraps ex, registering "<prefix>.invocations" and
// "<prefix>.latency_ns" in the registry.
func Instrument(ex Executor, r *obs.Registry, prefix string) *Instrumented {
	return &Instrumented{
		Executor:    ex,
		Invocations: r.Counter(prefix + ".invocations"),
		Latency:     r.Histogram(prefix + ".latency_ns"),
	}
}

// Invoke delegates to the wrapped executor, recording count and latency.
func (w *Instrumented) Invoke(in []float64) []float64 {
	start := time.Now()
	out := w.Executor.Invoke(in)
	w.Latency.Observe(float64(time.Since(start)))
	w.Invocations.Inc()
	return out
}
