package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenSnapshotJSON pins the exported JSON shape of obs.Snapshot —
// field names, key ordering, gauge/histogram sub-objects, bucket encoding —
// in the same style as cmd/rumba-vet's golden JSON test. Dashboards scrape
// this shape from the expvar endpoint, so a change here must be deliberate.
func TestGoldenSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("stream.elements_in").Add(512)
	r.Counter("stream.elements_out").Add(512)
	r.Counter("stream.fires").Add(40)
	r.Counter("stream.fixes").Add(38)
	r.Counter("stream.degraded").Add(2)
	r.Gauge("stream.recovery_queue_depth").Set(3)
	r.Gauge("stream.recovery_queue_depth").Set(1)
	r.Gauge("tuner.threshold").Set(0.10)
	h := r.Histogram("stream.latency.recover_ns")
	for _, v := range []float64{0.5, 1, 3, 900, 1024, 1_000_000} {
		h.Observe(v)
	}

	out, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got := string(out) + "\n"

	golden := filepath.Join("testdata", "golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch (run with UPDATE_GOLDEN=1 to regenerate)\n got:\n%s\nwant:\n%s", got, want)
	}
}
