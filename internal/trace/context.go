package trace

import "context"

// ctxKey is the private context key; the stored value is a SpanRef (the
// "current span"), so child packages parent their spans correctly without a
// second lookup for the trace itself.
type ctxKey struct{}

// NewContext returns ctx carrying s as the current span. Storing the zero
// ref is allowed and equivalent to not storing anything.
func NewContext(ctx context.Context, s SpanRef) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the current span ref, or the zero ref when the context
// carries no trace. The lookup itself does not allocate, so callers on hot
// paths may consult it once per batch or even per call.
//
//rumba:hotpath
func FromContext(ctx context.Context) SpanRef {
	//rumba:allow hotpath Context.Value dispatch is allocation-free; measured by TestDisabledTracingAllocFree
	s, _ := ctx.Value(ctxKey{}).(SpanRef)
	return s
}

// StartSpan opens a child of the context's current span and returns a
// context with the child as current. With no trace in ctx it returns ctx
// unchanged and the zero ref — no allocation, so instrumented call sites
// need no enabled check of their own.
//
//rumba:hotpath
func StartSpan(ctx context.Context, name string) (context.Context, SpanRef) {
	parent := FromContext(ctx)
	if !parent.Valid() {
		return ctx, SpanRef{}
	}
	child := parent.Start(name)
	//rumba:allow hotpath the enabled path allocates one context per span; disabled returns early above
	return NewContext(ctx, child), child
}
