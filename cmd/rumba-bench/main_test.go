package main

import (
	"strings"
	"testing"

	"rumba/internal/experiments"
)

func TestRegistryCoversExperimentOrder(t *testing.T) {
	for _, id := range experimentOrder {
		if _, ok := registry[id]; !ok {
			t.Errorf("-exp all references %q but the registry has no runner", id)
		}
	}
}

func TestSplitBench(t *testing.T) {
	if got := splitBench(""); got != nil {
		t.Fatalf("empty input = %v, want nil", got)
	}
	got := splitBench("fft,sobel")
	if len(got) != 2 || got[0] != "fft" || got[1] != "sobel" {
		t.Fatalf("splitBench = %v", got)
	}
}

func TestAllBenchmarksListsSeven(t *testing.T) {
	if got := allBenchmarks(); len(got) != 7 {
		t.Fatalf("allBenchmarks = %v", got)
	}
}

func TestRenderModes(t *testing.T) {
	tab := &experiments.Table{Title: "T", Header: []string{"a"}}
	tab.AddRow("x")

	renderMode = "text"
	out, err := render(tab, nil)
	if err != nil || !strings.Contains(out, "T\n") {
		t.Fatalf("text render: %q, %v", out, err)
	}
	renderMode = "md"
	out, err = render(tab, nil)
	if err != nil || !strings.HasPrefix(out, "### T") {
		t.Fatalf("md render: %q, %v", out, err)
	}
	renderMode = "text"
}

func TestRenderPropagatesError(t *testing.T) {
	wantErr := errSentinel{}
	if _, err := render(nil, wantErr); err != wantErr {
		t.Fatalf("err = %v", err)
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "sentinel" }

func TestFastRunnersExecute(t *testing.T) {
	// table1/table2 need no training; run them through the registry the
	// same way main does.
	for _, id := range []string{"table1", "table2"} {
		out, err := registry[id](nil, "")
		if err != nil || out == "" {
			t.Fatalf("%s: %q, %v", id, out, err)
		}
	}
}
