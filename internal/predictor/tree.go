package predictor

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Tree is the decision-tree error predictor of Section 3.2.2 (Figure 6): an
// input-based CART regression tree whose decision nodes compare one input
// against a trained constant and whose leaves store the predicted error.
// The paper limits the depth to 7, so a check costs at most 7 comparisons.
type Tree struct {
	// Nodes in preorder; index 0 is the root. Leaves have Feature == -1.
	Nodes    []TreeNode
	Depth    int
	Features []int // kernel-input projection; nil = all inputs

	// flat is the batch kernel's flattened, validated view of Nodes,
	// built lazily on first PredictErrorBatch. The sync.Once makes the
	// build safe on checker instances shared across tenants (the serving
	// registry hands one *Tree to every tenant of a kernel).
	flatOnce sync.Once
	flat     *treeFlat
}

// TreeNode is one node of the tree. For decision nodes, inputs with
// x[Feature] < Thresh go Left, others Right. For leaves (Feature == -1),
// Value is the predicted error.
type TreeNode struct {
	Feature     int
	Thresh      float64
	Left, Right int32 // indices into Nodes
	Value       float64
}

var _ Predictor = (*Tree)(nil)

// MaxTreeDepth is the paper's depth limit for the decision-tree checker.
const MaxTreeDepth = 7

// Name implements Predictor.
func (t *Tree) Name() string { return "treeErrors" }

// PredictError implements Predictor. Traversal is total even on a malformed
// tree: an empty tree, an out-of-range child index or a cycle predicts 0
// (no fire), a missing input feature compares as zero, and leaf values are
// clamped into [0, MaxPrediction]. FitTree never produces such trees, but a
// tree deserialised from a corrupt bundle must degrade, not crash the
// detection loop. A NaN input compares false and therefore goes Right.
func (t *Tree) PredictError(in, _ []float64) float64 {
	x := project(in, t.Features)
	i := int32(0)
	// A preorder tree visits each node at most once; more steps mean a cycle.
	for steps := 0; steps < len(t.Nodes); steps++ {
		if i < 0 || int(i) >= len(t.Nodes) {
			return 0
		}
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return clampPrediction(n.Value)
		}
		v := 0.0
		if n.Feature < len(x) {
			v = x[n.Feature]
		}
		if v < n.Thresh {
			i = n.Left
		} else {
			i = n.Right
		}
	}
	return 0
}

// treeFlat is the structure-of-arrays form of a validated tree the batch
// walk indexes: parallel arrays instead of a node struct (three cache lines
// of hot data for a depth-7 tree instead of pointer-chased structs), leaves
// rewritten to self-loop (thresh +Inf, both children pointing at the leaf)
// so every element walks exactly `steps` iterations with no per-node
// leaf test, and the feature projection pre-resolved into kernel-input
// indices (-1 = compares as zero).
type treeFlat struct {
	src    []int32 // kernel-input index per node; -1 compares as zero
	thresh []float64
	left   []int32
	right  []int32
	value  []float64 // clamped leaf prediction (0 on decision nodes)
	steps  int       // longest root-to-leaf path, in edges
	ok     bool      // false: malformed tree, fall back to the scalar walk
}

// flatten builds (once) the batch view. A tree that fails validation —
// empty, child index out of range, or a cycle — keeps ok=false and the
// batch path falls back to the scalar walk, which is total by construction.
func (t *Tree) flatten() *treeFlat {
	t.flatOnce.Do(func() {
		f := &treeFlat{}
		t.flat = f
		n := len(t.Nodes)
		if n == 0 {
			return
		}
		// Validate reachable structure and measure the longest path with an
		// iterative DFS; a path longer than n edges means a cycle.
		type frame struct {
			node  int32
			depth int
		}
		stack := []frame{{0, 0}}
		maxDepth := 0
		for len(stack) > 0 {
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if fr.node < 0 || int(fr.node) >= n {
				return // out-of-range child
			}
			if fr.depth > n {
				return // cycle
			}
			if fr.depth > maxDepth {
				maxDepth = fr.depth
			}
			nd := &t.Nodes[fr.node]
			if nd.Feature < 0 {
				continue // leaf
			}
			stack = append(stack, frame{nd.Left, fr.depth + 1}, frame{nd.Right, fr.depth + 1})
		}
		f.src = make([]int32, n)
		f.thresh = make([]float64, n)
		f.left = make([]int32, n)
		f.right = make([]int32, n)
		f.value = make([]float64, n)
		for i := range t.Nodes {
			nd := &t.Nodes[i]
			if nd.Feature < 0 {
				// Leaf: self-loop with an always-true comparison so the
				// fixed-step walk parks here.
				f.src[i] = -1
				f.thresh[i] = math.Inf(1)
				f.left[i] = int32(i)
				f.right[i] = int32(i)
				f.value[i] = clampPrediction(nd.Value)
				continue
			}
			// Resolve the projection now: node feature -> kernel-input
			// index. Out-of-projection features compare as zero, exactly
			// like the scalar walk's missing-feature rule.
			src := int32(-1)
			if t.Features == nil {
				src = int32(nd.Feature)
			} else if nd.Feature < len(t.Features) {
				src = int32(t.Features[nd.Feature])
			}
			f.src[i] = src
			f.thresh[i] = nd.Thresh
			f.left[i] = nd.Left
			f.right[i] = nd.Right
		}
		f.steps = maxDepth
		f.ok = true
	})
	return t.flat
}

// PredictErrorBatch implements Predictor over the flattened arrays: every
// element walks exactly flat.steps levels (leaves self-loop), so the inner
// loop has no leaf/cycle branches and no per-element projection allocation.
// Results are identical to the scalar walk; malformed trees (which FitTree
// never produces, but a corrupt bundle can) fall back to it wholesale.
//
//rumba:hotpath
func (t *Tree) PredictErrorBatch(dst []float64, ins, outs [][]float64) {
	//rumba:allow hotpath lazy one-time flatten, warmed before the AllocsPerRun guard
	f := t.flatten()
	if !f.ok {
		//rumba:allow hotpath corrupt-bundle fallback to the scalar walk, never hot
		ScalarBatch(t, dst, ins, outs)
		return
	}
	for e, in := range ins {
		i := int32(0)
		for s := 0; s < f.steps; s++ {
			v := 0.0
			if si := f.src[i]; si >= 0 && int(si) < len(in) {
				v = in[si]
			}
			// NaN compares false and goes Right, like the scalar walk;
			// on a leaf both directions self-loop.
			if v < f.thresh[i] {
				i = f.left[i]
			} else {
				i = f.right[i]
			}
		}
		dst[e] = f.value[i]
	}
}

// Cost implements Predictor: one comparison per level plus the threshold
// compare.
func (t *Tree) Cost() Cost { return Cost{Compares: float64(t.Depth) + 1} }

// Reset implements Predictor (trees are stateless).
func (t *Tree) Reset() {}

// TreeConfig controls the offline tree trainer.
type TreeConfig struct {
	MaxDepth int // default (and paper cap): 7
	MinLeaf  int // minimum samples per leaf; default 8
	// Candidates is the number of quantile-spaced split thresholds
	// examined per feature; default 24.
	Candidates int
}

func (c *TreeConfig) setDefaults() {
	if c.MaxDepth <= 0 || c.MaxDepth > MaxTreeDepth {
		c.MaxDepth = MaxTreeDepth
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 8
	}
	if c.Candidates <= 0 {
		c.Candidates = 24
	}
}

// FitTree trains a regression tree on (input, observed element error) pairs
// by greedy variance-reduction splitting.
func FitTree(inputs [][]float64, errs []float64, features []int, cfg TreeConfig) (*Tree, error) {
	if len(inputs) == 0 || len(inputs) != len(errs) {
		return nil, fmt.Errorf("predictor: FitTree needs matching non-empty inputs/errors")
	}
	cfg.setDefaults()
	proj := make([][]float64, len(inputs))
	for i, in := range inputs {
		proj[i] = project(in, features)
	}
	t := &Tree{Features: features}
	idx := make([]int, len(proj))
	for i := range idx {
		idx[i] = i
	}
	b := treeBuilder{x: proj, y: errs, cfg: cfg, tree: t}
	b.build(idx, 0)
	t.Depth = b.maxDepth
	return t, nil
}

type treeBuilder struct {
	x        [][]float64
	y        []float64
	cfg      TreeConfig
	tree     *Tree
	maxDepth int
}

// build grows the subtree for the sample subset idx and returns its node
// index.
func (b *treeBuilder) build(idx []int, depth int) int32 {
	if depth > b.maxDepth {
		b.maxDepth = depth
	}
	mean, sse := meanSSE(b.y, idx)
	node := int32(len(b.tree.Nodes))
	b.tree.Nodes = append(b.tree.Nodes, TreeNode{Feature: -1, Value: mean})
	if depth >= b.cfg.MaxDepth || len(idx) < 2*b.cfg.MinLeaf || sse < 1e-12 {
		return node
	}
	feat, thresh, gain := b.bestSplit(idx, sse)
	if feat < 0 || gain <= 1e-12 {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if b.x[i][feat] < thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinLeaf || len(right) < b.cfg.MinLeaf {
		return node
	}
	l := b.build(left, depth+1)
	r := b.build(right, depth+1)
	b.tree.Nodes[node] = TreeNode{Feature: feat, Thresh: thresh, Left: l, Right: r}
	return node
}

// bestSplit searches quantile-spaced thresholds on every feature for the
// split with the highest SSE reduction.
func (b *treeBuilder) bestSplit(idx []int, parentSSE float64) (feat int, thresh, gain float64) {
	feat = -1
	nf := len(b.x[idx[0]])
	vals := make([]float64, len(idx))
	for f := 0; f < nf; f++ {
		for k, i := range idx {
			vals[k] = b.x[i][f]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		//rumba:allow floatcmp exact identity of stored values, not a tolerance check
		if sorted[0] == sorted[len(sorted)-1] {
			continue // constant feature
		}
		for c := 1; c <= b.cfg.Candidates; c++ {
			q := float64(c) / float64(b.cfg.Candidates+1)
			th := sorted[int(q*float64(len(sorted)-1))]
			//rumba:allow floatcmp th is copied from sorted; exact identity is intended
			if th == sorted[0] {
				continue // empty left side
			}
			var sumL, sumR, sqL, sqR float64
			var nL, nR int
			for k, i := range idx {
				y := b.y[i]
				if vals[k] < th {
					sumL += y
					sqL += y * y
					nL++
				} else {
					sumR += y
					sqR += y * y
					nR++
				}
			}
			if nL < b.cfg.MinLeaf || nR < b.cfg.MinLeaf {
				continue
			}
			sse := (sqL - sumL*sumL/float64(nL)) + (sqR - sumR*sumR/float64(nR))
			if g := parentSSE - sse; g > gain {
				feat, thresh, gain = f, th, g
			}
		}
	}
	return feat, thresh, gain
}

func meanSSE(y []float64, idx []int) (mean, sse float64) {
	var sum, sq float64
	for _, i := range idx {
		sum += y[i]
		sq += y[i] * y[i]
	}
	n := float64(len(idx))
	mean = sum / n
	sse = sq - sum*sum/n
	if sse < 0 { // numerical guard
		sse = 0
	}
	return mean, sse
}

// LeafCount returns the number of leaves, used by tests and the ablation
// bench.
func (t *Tree) LeafCount() int {
	n := 0
	for _, node := range t.Nodes {
		if node.Feature < 0 {
			n++
		}
	}
	return n
}

// MaxAbsPrediction returns the largest leaf value; a sanity bound for tests.
func (t *Tree) MaxAbsPrediction() float64 {
	m := 0.0
	for _, node := range t.Nodes {
		if node.Feature < 0 {
			m = math.Max(m, math.Abs(node.Value))
		}
	}
	return m
}
