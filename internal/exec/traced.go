package exec

import "rumba/internal/trace"

// InvokeBatchTraced is InvokeBatch wrapped in an "accel.invoke" span under
// parent, recording the batch width and which path (fused batch kernel or
// per-element fallback) served it. With tracing disabled (zero parent) every
// span operation is a nil check, so the batched hot path stays
// allocation-free — the property the disabled-tracing benchmark guards.
//
//rumba:hotpath
func InvokeBatchTraced(parent trace.SpanRef, ex Executor, dst [][]float64, inputs [][]float64) {
	sp := parent.Start("accel.invoke")
	sp.SetInt("batch", int64(len(inputs)))
	if b, ok := ex.(BatchExecutor); ok {
		sp.SetStr("path", "fused")
		//rumba:allow hotpath BatchExecutor's contract is zero steady-state allocations (accel.InvokeBatch is proven; the guard test measures this dispatch)
		b.InvokeBatch(dst, inputs)
		sp.End()
		return
	}
	sp.SetStr("path", "scalar")
	for i, in := range inputs {
		//rumba:allow hotpath scalar fallback for executors without a batch kernel; allocates one row per element by contract
		dst[i] = ex.Invoke(in)
	}
	sp.End()
}
