package tune

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rumba/internal/bench"
	"rumba/internal/rng"
)

// syntheticMeasurer is a deterministic analytic quality/cost model shaped
// like the real datapaths: exp pays the transcendental, lut trades a table
// error for speed, fixed is cheapest with a resolution-dependent error,
// checkers add cost and remove error, and per-element cost amortises like
// 1 + overhead/batch. Every value is a pure function of the design point
// (noise is keyed on the point, not on call order), so the exhaustive and
// pruned sweeps observe identical measurements — the property the
// surrogate-prune test needs.
type syntheticMeasurer struct {
	label    string  // seeds the deterministic noise streams
	macs     float64 // topology size scales the base cost
	noiseAmp float64 // bounded relative noise on both objectives
	calls    int
}

func (m *syntheticMeasurer) noise(key string) float64 {
	if m.noiseAmp == 0 {
		return 0
	}
	return rng.NewNamed(m.label + "/" + key).Range(-m.noiseAmp, m.noiseAmp)
}

func (m *syntheticMeasurer) Measure(p Point) (Measurement, error) {
	m.calls++
	var base, q float64
	switch p.Datapath {
	case DatapathExp:
		base, q = 4.0, 0.020
	case DatapathLUT:
		base, q = 1.6, 0.024
	case DatapathFixed:
		base = 0.8 + 0.04*float64(p.LUTBits)
		q = 0.028 + 3.0*math.Pow(2, -float64(p.LUTBits))
	default:
		return Measurement{}, fmt.Errorf("unknown datapath %q", p.Datapath)
	}
	base *= m.macs / 100
	var chkCost, chkEff float64
	switch p.Checker {
	case "tree":
		chkCost, chkEff = 0.9, 0.55
	case "linear":
		chkCost, chkEff = 0.4, 0.75
	case "ema":
		chkCost, chkEff = 0.2, 0.95
	default:
		chkCost, chkEff = 0, 1.0
	}
	comboKey := fmt.Sprintf("%s/%d/%s", p.Datapath, p.LUTBits, p.Checker)
	quality := q * chkEff * (1 + m.noise("q/"+comboKey))
	overhead := 5.0 * (1 + m.noise("oh/"+comboKey)/2)
	ns := (base + chkCost*m.macs/100) * (1 + overhead/float64(p.Batch))
	ns *= 1 + m.noise("ns/"+p.Key())
	return Measurement{Quality: quality, NsPerElem: ns}, nil
}

// benchTopoMACs returns the MAC counts of the real bench kernel topologies —
// the "small bench topologies" the property test sweeps the synthetic model
// over.
func benchTopoMACs(t *testing.T) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, s := range bench.All() {
		out[s.Name] = float64(s.RumbaTopo.MACs())
	}
	if len(out) < 5 {
		t.Fatalf("expected the seven bench kernels, got %d", len(out))
	}
	return out
}

// TestSweepSurrogatePreservesParetoPoints is the satellite property test: on
// every bench topology's cost model (and across noise seeds), no point the
// exhaustive sweep measures as Pareto-optimal may be pruned by the surrogate
// pass, and the pruned sweep must evaluate at most half the grid.
func TestSweepSurrogatePreservesParetoPoints(t *testing.T) {
	axes := DefaultAxes([]string{"linear", "tree", "ema"})
	totalPruned := 0
	for name, macs := range benchTopoMACs(t) {
		for seed := 0; seed < 3; seed++ {
			label := fmt.Sprintf("%s/seed%d", name, seed)
			mkMeasurer := func() *syntheticMeasurer {
				return &syntheticMeasurer{label: label, macs: macs, noiseAmp: 0.01}
			}

			exh, err := Sweep(name, axes, mkMeasurer(), SweepConfig{Exhaustive: true})
			if err != nil {
				t.Fatal(err)
			}
			if exh.Evaluated != exh.GridSize || len(exh.Points) != exh.GridSize {
				t.Fatalf("%s: exhaustive sweep measured %d of %d", label, exh.Evaluated, exh.GridSize)
			}

			pruned, err := Sweep(name, axes, mkMeasurer(), SweepConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if pruned.Evaluated > exh.GridSize/2 {
				t.Fatalf("%s: surrogate pass evaluated %d of %d (> 50%%)", label, pruned.Evaluated, exh.GridSize)
			}
			totalPruned += pruned.Pruned

			surviving := map[string]Point{}
			for _, p := range pruned.Points {
				surviving[p.Key()] = p
			}
			for _, want := range exh.Frontier {
				got, ok := surviving[want.Key()]
				if !ok {
					t.Errorf("%s: true-Pareto point %s was pruned by the surrogate pass", label, want.Key())
					continue
				}
				// When the budget did measure a surviving true-Pareto point,
				// its values must be the exhaustive ground truth (the
				// measurer is deterministic per point).
				if got.Measured && math.Abs(got.NsPerElem-want.NsPerElem) > 1e-12 {
					t.Errorf("%s: %s measured %v vs exhaustive %v", label, want.Key(), got.NsPerElem, want.NsPerElem)
				}
			}
		}
	}
	if totalPruned == 0 {
		t.Error("surrogate pass pruned nothing across every topology and seed — the prune is inert")
	}
}

// TestSweepFixedDominatesExp pins the acceptance shape on the synthetic
// model: at batch >= 64 the fixed datapath strictly beats exp on ns/elem,
// and the frontier records it.
func TestSweepFixedDominatesExp(t *testing.T) {
	axes := DefaultAxes([]string{"linear", "tree"})
	m := &syntheticMeasurer{label: "dom", macs: 88, noiseAmp: 0.005}
	rep, err := Sweep("fft", axes, m, SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bestExp, bestFixed := math.Inf(1), math.Inf(1)
	for _, p := range rep.Points {
		if p.Batch < 64 {
			continue
		}
		switch p.Datapath {
		case DatapathExp:
			if p.NsPerElem < bestExp {
				bestExp = p.NsPerElem
			}
		case DatapathFixed:
			if p.NsPerElem < bestFixed {
				bestFixed = p.NsPerElem
			}
		}
	}
	if !(bestFixed < bestExp) {
		t.Fatalf("fixed (%v ns/elem) does not dominate exp (%v ns/elem) at batch >= 64", bestFixed, bestExp)
	}
	if len(rep.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
}

// TestSweepExhaustiveFrontierSane checks frontier structure on the
// exhaustive sweep: sorted by cost, mutually non-dominated, subset of points.
func TestSweepExhaustiveFrontierSane(t *testing.T) {
	axes := Axes{
		Datapaths: []string{DatapathExp, DatapathFixed},
		Batches:   []int{1, 64},
		LUTBits:   []int{8, 12},
		Checkers:  []string{"linear"},
	}
	m := &syntheticMeasurer{label: "sane", macs: 100}
	rep, err := Sweep("k", axes, m, SweepConfig{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.Frontier); i++ {
		if rep.Frontier[i].NsPerElem < rep.Frontier[i-1].NsPerElem {
			t.Fatal("frontier not sorted by NsPerElem")
		}
	}
	for i, a := range rep.Frontier {
		for j, b := range rep.Frontier {
			if i != j && dominates(a, b) {
				t.Fatalf("frontier point %s dominates frontier point %s", a.Key(), b.Key())
			}
		}
	}
}

// TestSweepErrors pins config/measurement validation.
func TestSweepErrors(t *testing.T) {
	good := DefaultAxes([]string{"linear"})
	m := &syntheticMeasurer{label: "err", macs: 100}
	if _, err := Sweep("k", Axes{}, m, SweepConfig{}); err == nil {
		t.Error("empty axes must fail")
	}
	if _, err := Sweep("k", Axes{Datapaths: []string{"warp"}, Batches: []int{1}, Checkers: []string{"x"}}, m, SweepConfig{}); err == nil {
		t.Error("unknown datapath must fail")
	}
	if _, err := Sweep("k", Axes{Datapaths: []string{DatapathFixed}, Batches: []int{1}, Checkers: []string{"x"}}, m, SweepConfig{}); err == nil {
		t.Error("fixed without lutBits must fail")
	}
	if _, err := Sweep("k", Axes{Datapaths: []string{DatapathExp}, Batches: []int{4, 2}, Checkers: []string{"x"}}, m, SweepConfig{}); err == nil {
		t.Error("non-ascending batches must fail")
	}
	if _, err := Sweep("k", Axes{Datapaths: []string{DatapathFixed}, Batches: []int{1}, LUTBits: []int{10, 8}, Checkers: []string{"x"}}, m, SweepConfig{}); err == nil {
		t.Error("non-ascending lutBits must fail")
	}
	if _, err := Sweep("k", good, m, SweepConfig{Margin: 2}); err == nil {
		t.Error("margin >= 1 must fail")
	}
	if _, err := Sweep("k", good, m, SweepConfig{MaxEvalFraction: 1.5}); err == nil {
		t.Error("fraction > 1 must fail")
	}
	if _, err := Sweep("k", good, errMeasurer{}, SweepConfig{}); err == nil {
		t.Error("measurer errors must propagate")
	}
	if _, err := Sweep("k", good, nanMeasurer{}, SweepConfig{}); err == nil {
		t.Error("non-finite measurements must fail")
	}
}

type errMeasurer struct{}

func (errMeasurer) Measure(Point) (Measurement, error) { return Measurement{}, fmt.Errorf("boom") }

type nanMeasurer struct{}

func (nanMeasurer) Measure(Point) (Measurement, error) {
	return Measurement{Quality: math.NaN(), NsPerElem: 1}, nil
}

// TestParetoBasics pins dominance corner cases.
func TestParetoBasics(t *testing.T) {
	mk := func(q, ns float64, b int) Point {
		return Point{Quality: q, NsPerElem: ns, Batch: b, ChunkNs: ns * float64(b)}
	}
	pts := []Point{
		mk(0.1, 100, 1),  // Pareto: best chunk latency among cheap-quality... dominated? see below
		mk(0.1, 50, 64),  // cheaper, same quality, worse chunk: Pareto
		mk(0.2, 200, 1),  // dominated by pts[0] on every axis
		mk(0.05, 300, 1), // best quality: Pareto
		mk(0.1, 100, 1),  // duplicate of pts[0]: deduped
	}
	fr := Pareto(pts)
	keys := map[string]bool{}
	for _, p := range fr {
		keys[fmt.Sprintf("%v/%v/%v", p.Quality, p.NsPerElem, p.ChunkNs)] = true
	}
	if len(fr) != 3 {
		t.Fatalf("frontier size %d, want 3: %+v", len(fr), fr)
	}
	if keys["0.2/200/200"] {
		t.Fatal("dominated point survived")
	}
}

// TestIsotonicNonIncreasing pins the PAVA fit.
func TestIsotonicNonIncreasing(t *testing.T) {
	got := isotonicNonIncreasing([]float64{5, 6, 3, 2, 2.5})
	for i := 1; i < len(got); i++ {
		if got[i] > got[i-1]+1e-12 {
			t.Fatalf("not non-increasing: %v", got)
		}
	}
	// Already monotone input is unchanged.
	mono := []float64{9, 7, 7, 1}
	got = isotonicNonIncreasing(mono)
	for i := range mono {
		if math.Abs(got[i]-mono[i]) > 1e-12 {
			t.Fatalf("monotone input changed: %v -> %v", mono, got)
		}
	}
}

// TestFitLinearRecovers pins the least-squares solver on an exactly linear
// target.
func TestFitLinearRecovers(t *testing.T) {
	X := [][]float64{{1, 0, 2}, {1, 1, 0}, {1, 1, 3}, {1, 0, 5}, {1, 1, 1}}
	want := []float64{2, -1, 0.5}
	y := make([]float64, len(X))
	for i, row := range X {
		for j := range row {
			y[i] += row[j] * want[j]
		}
	}
	got := fitLinear(X, y)
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-6 {
			t.Fatalf("beta = %v, want %v", got, want)
		}
	}
	if fitLinear(nil, nil) != nil {
		t.Fatal("empty fit should be nil")
	}
	if evalLinear(nil, []float64{1}) != 0 {
		t.Fatal("nil model must predict 0")
	}
}

func TestInterpolateNaN(t *testing.T) {
	batches := []int{1, 2, 4, 8}
	vals := []float64{math.NaN(), 4, math.NaN(), 1}
	interpolateNaN(batches, vals)
	if vals[0] != 4 || math.Abs(vals[2]-3) > 1e-12 {
		t.Fatalf("interpolation wrong: %v", vals)
	}
	all := []float64{math.NaN(), math.NaN()}
	interpolateNaN([]int{1, 2}, all)
	if all[0] != 1 || all[1] != 1 {
		t.Fatalf("all-NaN should fill 1: %v", all)
	}
}

// TestFrontierRoundTrip: build → save → load, with tamper and version
// rejection.
func TestFrontierRoundTrip(t *testing.T) {
	axes := DefaultAxes([]string{"linear", "tree"})
	m := &syntheticMeasurer{label: "rt", macs: 88}
	rep, err := Sweep("fft", axes, m, SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFrontier([]*SweepReport{rep})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFrontier([]*SweepReport{rep, rep}); err == nil {
		t.Fatal("duplicate kernel must be rejected")
	}
	if _, err := NewFrontier([]*SweepReport{{}}); err == nil {
		t.Fatal("unnamed report must be rejected")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, FrontierFile)
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFrontier(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Kernels["fft"].Points) != len(rep.Frontier) {
		t.Fatal("frontier points lost in round trip")
	}
	if got := loaded.KernelNames(); len(got) != 1 || got[0] != "fft" {
		t.Fatalf("KernelNames = %v", got)
	}

	// Tamper with a point: checksum must catch it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"datapath": "`, `"datapath": "x`, 1)
	bad := filepath.Join(dir, "tampered.json")
	if err := os.WriteFile(bad, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFrontier(bad); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered artifact must fail the checksum, got %v", err)
	}

	// Future version must be rejected.
	future := strings.Replace(string(data), `"formatVersion": 1`, `"formatVersion": 99`, 1)
	badv := filepath.Join(dir, "future.json")
	if err := os.WriteFile(badv, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFrontier(badv); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version must be rejected, got %v", err)
	}
	if _, err := LoadFrontier(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
	if _, err := LoadFrontier(bad + "x"); err == nil {
		t.Fatal("unparseable file must error")
	}
}

// TestFrontierSelect pins the SLA-selection rule.
func TestFrontierSelect(t *testing.T) {
	mk := func(dp string, batch int, chk string, q, ns float64) Point {
		return Point{Datapath: dp, Batch: batch, Checker: chk,
			Quality: q, NsPerElem: ns, ChunkNs: ns * float64(batch), Measured: true}
	}
	f := &Frontier{
		FormatVersion: FormatVersion,
		Kernels: map[string]KernelFrontier{
			"fft": {Points: []Point{
				mk(DatapathExp, 1, "tree", 0.01, 400),
				mk(DatapathLUT, 64, "tree", 0.02, 150),
				mk(DatapathFixed, 64, "linear", 0.12, 40),
				mk(DatapathFixed, 256, "linear", 0.12, 30),
			}},
		},
	}

	// Loose TOQ, no SLO: the cheapest point wins.
	p, idx, ok := f.Select("fft", "", 0.5, 0)
	if !ok || p.NsPerElem != 30 || idx != 3 {
		t.Fatalf("loose select = %+v idx=%d ok=%v", p, idx, ok)
	}
	// Tight TOQ: only exp qualifies.
	p, _, ok = f.Select("fft", "", 0.015, 0)
	if !ok || p.Datapath != DatapathExp {
		t.Fatalf("tight select = %+v", p)
	}
	// SLO excludes the batch-256 point (chunk 7680ns) but not batch-64.
	p, _, ok = f.Select("fft", "", 0.5, 3000)
	if !ok || p.Batch != 64 || p.NsPerElem != 40 {
		t.Fatalf("slo select = %+v", p)
	}
	// Checker filter restricts the family.
	p, _, ok = f.Select("fft", "tree", 0.5, 0)
	if !ok || p.Checker != "tree" || p.NsPerElem != 150 {
		t.Fatalf("checker select = %+v", p)
	}
	// Nothing qualifies.
	if _, _, ok := f.Select("fft", "", 0.001, 0); ok {
		t.Fatal("impossible TOQ must select nothing")
	}
	if _, _, ok := f.Select("nope", "", 1, 0); ok {
		t.Fatal("unknown kernel must select nothing")
	}
}

// TestFrontierValidateRejects walks the validation table.
func TestFrontierValidateRejects(t *testing.T) {
	ok := Point{Datapath: DatapathExp, Batch: 1, Checker: "linear", Quality: 0.1, NsPerElem: 10, ChunkNs: 10}
	cases := map[string]Point{
		"unknown datapath": {Datapath: "x", Batch: 1, Checker: "l", Quality: 0.1, NsPerElem: 1},
		"zero batch":       {Datapath: DatapathExp, Batch: 0, Checker: "l", Quality: 0.1, NsPerElem: 1},
		"no checker":       {Datapath: DatapathExp, Batch: 1, Quality: 0.1, NsPerElem: 1},
		"nan quality":      {Datapath: DatapathExp, Batch: 1, Checker: "l", Quality: math.NaN(), NsPerElem: 1},
	}
	for name, bad := range cases {
		f := &Frontier{FormatVersion: FormatVersion, Kernels: map[string]KernelFrontier{"k": {Points: []Point{ok, bad}}}}
		// NaN values cannot even be checksummed (JSON rejects them) — that
		// failure mode is a rejection too.
		if sum, err := f.kernelsChecksum(); err == nil {
			f.Checksum = sum
		}
		if err := f.Validate(); err == nil {
			t.Errorf("%s: expected validation failure", name)
		}
	}
	empty := &Frontier{FormatVersion: FormatVersion, Kernels: map[string]KernelFrontier{"k": {}}}
	sum, _ := empty.kernelsChecksum()
	empty.Checksum = sum
	if err := empty.Validate(); err == nil {
		t.Error("empty kernel frontier must be rejected")
	}
	if err := (&Frontier{FormatVersion: FormatVersion}).Save(filepath.Join(t.TempDir(), "f.json")); err == nil {
		t.Error("saving an unsealed artifact must fail validation")
	}
}

// TestPointKey pins the config identity / trace-attr format.
func TestPointKey(t *testing.T) {
	p := Point{Datapath: DatapathFixed, LUTBits: 10, Batch: 64, Checker: "tree"}
	if p.Key() != "fixed/lut10/b64/tree" {
		t.Fatalf("Key = %s", p.Key())
	}
	p = Point{Datapath: DatapathExp, Batch: 1, Checker: "ema"}
	if p.Key() != "exp/b1/ema" {
		t.Fatalf("Key = %s", p.Key())
	}
}
