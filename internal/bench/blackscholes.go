package bench

import (
	"math"

	"rumba/internal/nn"
	"rumba/internal/quality"
	"rumba/internal/rng"
)

// Black-Scholes European option pricing (financial analysis, Table 1).
//
// Kernel input layout (6 values, the NPU network's view):
//
//	[0] S      spot price
//	[1] K      strike price
//	[2] r      risk-free rate      (fixed across the dataset)
//	[3] sigma  volatility          (fixed across the dataset)
//	[4] T      time to maturity
//	[5] otype  0 = call, 1 = put   (fixed to call across the dataset)
//
// The Rumba network uses only the three varying inputs (S, K, T), which is
// why Table 1 lists a 3->8->8->1 Rumba topology against the NPU's
// 6->8->8->1: Rumba's error-detection safety net lets it pick the smaller,
// more efficient network.
const (
	bsRate  = 0.10
	bsSigma = 0.30
)

// blackScholesExact prices a European option with the closed-form solution.
//rumba:pure
func blackScholesExact(in []float64) []float64 {
	s, k, r, sigma, tm, otype := in[0], in[1], in[2], in[3], in[4], in[5]
	sqrtT := math.Sqrt(tm)
	d1 := (math.Log(s/k) + (r+0.5*sigma*sigma)*tm) / (sigma * sqrtT)
	d2 := d1 - sigma*sqrtT
	if otype < 0.5 { // call
		return []float64{s*cndf(d1) - k*math.Exp(-r*tm)*cndf(d2)}
	}
	return []float64{k*math.Exp(-r*tm)*cndf(-d2) - s*cndf(-d1)}
}

// cndf is the cumulative standard normal distribution function.
func cndf(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

func blackScholesInputs(n int, stream string) [][]float64 {
	r := rng.NewNamed(stream)
	out := make([][]float64, n)
	for i := range out {
		s := r.Range(20, 120)
		k := r.Range(20, 120)
		t := r.Range(0.1, 2.0)
		out[i] = []float64{s, k, bsRate, bsSigma, t, 0}
	}
	return out
}

// BlackScholes is the blackscholes benchmark spec.
var BlackScholes = register(&Spec{
	Name:          "blackscholes",
	Domain:        "Financial Analysis",
	InDim:         6,
	OutDim:        1,
	Exact:         blackScholesExact,
	Metric:        quality.MeanRelativeError,
	Scale:         60, // typical option-price magnitude
	RumbaTopo:     nn.MustTopology("3->8->8->1"),
	NPUTopo:       nn.MustTopology("6->8->8->1"),
	RumbaFeatures: []int{0, 1, 4}, // S, K, T
	TrainDesc:     "5K inputs",
	TestDesc:      "5K outputs",
	GenTrain: func(n int) nn.Dataset {
		return exactTargets(blackScholesExact, blackScholesInputs(sizeOr(n, 5000), "bench/blackscholes/train"))
	},
	GenTest: func(n int) nn.Dataset {
		return exactTargets(blackScholesExact, blackScholesInputs(sizeOr(n, 5000), "bench/blackscholes/test"))
	},
	// The exact kernel executes log, exp, sqrt, two erfc calls and ~25
	// arithmetic ops; transcendentals weighted ~40 CPU ops each.
	Cost: CostModel{CPUOps: 240, ApproxFraction: 0.88},
})
