package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	c.Add(-10) // negative adds are ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("lookup must return the same counter instance")
	}
}

func TestGaugeTracksHighWaterMark(t *testing.T) {
	g := NewRegistry().Gauge("depth")
	g.Set(3)
	g.Add(2)
	g.Add(-4)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %v, want 1", got)
	}
	if got := g.Max(); got != 5 {
		t.Fatalf("gauge max = %v, want 5", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := &Histogram{}
	for _, v := range []float64{0.5, 1, 2, 3, 100, math.NaN(), -7} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	r := NewRegistry()
	r.Histogram("lat") // empty histogram must snapshot cleanly too
	snap := HistogramSnapshot{}
	if snap.Quantile(0.5) != 0 || snap.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// 0.5, 1, NaN, -7 land in the <=1 bucket; 2 in (1,2]; 3 in (2,4];
	// 100 in (64,128].
	var hs HistogramSnapshot
	hs.Count = h.Count()
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			hs.Buckets = append(hs.Buckets, Bucket{Le: math.Ldexp(1, i), Count: n})
		}
	}
	if hs.Buckets[0].Le != 1 || hs.Buckets[0].Count != 4 {
		t.Fatalf("first bucket %+v, want le=1 count=4", hs.Buckets[0])
	}
	if q := hs.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %v, want 1", q)
	}
	if q := hs.Quantile(1); q != 128 {
		t.Fatalf("p100 = %v, want 128", q)
	}
}

func TestSnapshotIsDetached(t *testing.T) {
	r := NewRegistry()
	r.Counter("n").Add(2)
	r.Gauge("g").Set(1.5)
	r.Histogram("h").Observe(10)
	snap := r.Snapshot()
	r.Counter("n").Add(100)
	r.Gauge("g").Set(9)
	if snap.Counters["n"] != 2 || snap.Gauges["g"].Value != 1.5 {
		t.Fatalf("snapshot mutated by later updates: %+v", snap)
	}
	if snap.Histograms["h"].Count != 1 || snap.Histograms["h"].Sum != 10 {
		t.Fatalf("histogram snapshot wrong: %+v", snap.Histograms["h"])
	}
	if names := r.CounterNames(); len(names) != 1 || names[0] != "n" {
		t.Fatalf("counter names = %v", names)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Gauge("g").Add(-1)
				r.Histogram("h").Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != workers*per {
		t.Fatalf("counter = %d, want %d", s.Counters["c"], workers*per)
	}
	if s.Gauges["g"].Value != 0 {
		t.Fatalf("gauge = %v, want 0", s.Gauges["g"].Value)
	}
	if s.Histograms["h"].Count != workers*per {
		t.Fatalf("histogram count = %d, want %d", s.Histograms["h"].Count, workers*per)
	}
	var total int64
	for _, b := range s.Histograms["h"].Buckets {
		total += b.Count
	}
	if total != workers*per {
		t.Fatalf("bucket sum = %d, want %d", total, workers*per)
	}
}
