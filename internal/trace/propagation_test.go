package trace

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New("invoke", 0)
	hdr := tr.Root().Traceparent()
	traceID, parent, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("ParseTraceparent rejected own output %q", hdr)
	}
	if traceID != tr.TraceID() {
		t.Fatalf("trace ID %q, want %q", traceID, tr.TraceID())
	}
	if parent != wireSpanID(1) {
		t.Fatalf("parent %q, want root wire ID %q", parent, wireSpanID(1))
	}
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("header %q not in 00-…-01 form", hdr)
	}
}

func TestTraceIDShape(t *testing.T) {
	a, b := New("a", 0), New("b", 0)
	if !isHex(a.TraceID(), 32) {
		t.Fatalf("trace ID %q is not 32 hex digits", a.TraceID())
	}
	if a.TraceID() == b.TraceID() {
		t.Fatalf("two traces minted the same ID %q", a.TraceID())
	}
	if a.TraceID()[:16] != b.TraceID()[:16] {
		t.Fatalf("same process, different entropy prefixes: %q vs %q", a.TraceID(), b.TraceID())
	}
	if a.RemoteParent() != "" {
		t.Fatalf("edge-minted trace has remote parent %q", a.RemoteParent())
	}
	var nilT *Trace
	if nilT.TraceID() != "" || nilT.RemoteParent() != "" {
		t.Fatal("nil trace leaks identity")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := FormatTraceparent(strings.Repeat("ab", 16), strings.Repeat("cd", 8))
	if _, _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("fixture %q should parse", valid)
	}
	bad := []string{
		"",
		"00",
		valid[:54],                                   // truncated
		valid + "0",                                  // too long
		"01" + valid[2:],                             // unknown version
		strings.Replace(valid, "-", "_", 1),          // wrong separator
		strings.Replace(valid, "ab", "AB", 1),        // uppercase hex
		strings.Replace(valid, "ab", "zz", 1),        // non-hex
		FormatTraceparent(strings.Repeat("0", 32), strings.Repeat("cd", 8)), // all-zero trace ID
		FormatTraceparent(strings.Repeat("ab", 16), strings.Repeat("0", 16)), // all-zero parent
		valid[:53] + "02",                            // unknown flag
		valid[:53] + "11",                            // flag high nibble
	}
	for _, v := range bad {
		if _, _, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent(%q) accepted junk", v)
		}
	}
}

func TestNewLinkedAdoptsAndFallsBack(t *testing.T) {
	up := New("router", 0)
	hdr := up.Root().Traceparent()
	traceID, parent, _ := ParseTraceparent(hdr)

	linked := NewLinked("invoke", traceID, parent, 0)
	if linked.TraceID() != up.TraceID() {
		t.Fatalf("linked trace ID %q, want adopted %q", linked.TraceID(), up.TraceID())
	}
	if linked.RemoteParent() != wireSpanID(1) {
		t.Fatalf("remote parent %q, want %q", linked.RemoteParent(), wireSpanID(1))
	}
	s := linked.Snapshot()
	if s.TraceID != up.TraceID() || s.RemoteParent != wireSpanID(1) {
		t.Fatalf("snapshot lost identity: %+v", s)
	}

	junk := NewLinked("invoke", "nope", "also-nope", 0)
	if junk.TraceID() == "" || !isHex(junk.TraceID(), 32) {
		t.Fatalf("fallback trace ID %q malformed", junk.TraceID())
	}
	if junk.TraceID() == up.TraceID() || junk.RemoteParent() != "" {
		t.Fatalf("junk IDs adopted: %q / %q", junk.TraceID(), junk.RemoteParent())
	}
}

func TestRecorderLookupByTraceID(t *testing.T) {
	r := NewRecorder(RecorderConfig{Capacity: 4})
	tr := New("invoke", 0)
	tr.Finish()
	r.Record(tr)

	got := r.Lookup(tr.TraceID())
	if len(got) != 1 || got[0].TraceID != tr.TraceID() {
		t.Fatalf("Lookup = %+v, want the recorded trace", got)
	}
	if r.Lookup("ffffffffffffffffffffffffffffffff") != nil {
		t.Fatal("unknown trace ID returned snapshots")
	}

	// Two retained traces sharing one trace ID (a retried request whose
	// attempts both hit this node) come back oldest-first.
	a := NewLinked("attempt1", tr.TraceID(), wireSpanID(2), 0)
	b := NewLinked("attempt2", tr.TraceID(), wireSpanID(3), 0)
	a.Finish()
	b.Finish()
	r.Record(b)
	r.Record(a)
	got = r.Lookup(tr.TraceID())
	if len(got) != 3 {
		t.Fatalf("got %d traces, want 3", len(got))
	}
	if got[1].Spans[0].Name != "attempt1" || got[2].Spans[0].Name != "attempt2" {
		t.Fatalf("lookup not oldest-first: %q then %q", got[1].Spans[0].Name, got[2].Spans[0].Name)
	}
}

func TestRecorderIndexEvictsWithRing(t *testing.T) {
	r := NewRecorder(RecorderConfig{Capacity: 2})
	var ids []string
	for i := 0; i < 5; i++ {
		tr := New("req", 0)
		tr.Finish()
		r.Record(tr)
		ids = append(ids, tr.TraceID())
	}
	// Capacity 2: only the last two survive the ring, and the index must
	// agree exactly — no leaked entries for displaced traces.
	for _, id := range ids[:3] {
		if got := r.Lookup(id); got != nil {
			t.Fatalf("displaced trace %s still indexed: %+v", id, got)
		}
	}
	for _, id := range ids[3:] {
		if got := r.Lookup(id); len(got) != 1 {
			t.Fatalf("retained trace %s lookup = %+v", id, got)
		}
	}
	r.idxMu.Lock()
	n := len(r.byTraceID)
	r.idxMu.Unlock()
	if n != 2 {
		t.Fatalf("index holds %d trace IDs, want 2", n)
	}

	// Flagged traces live in the separate always-keep ring; they must not
	// evict recent-ring index entries and vice versa.
	fl := New("flagged", 0)
	fl.SetFlag(FlagError)
	fl.Finish()
	r.Record(fl)
	if got := r.Lookup(fl.TraceID()); len(got) != 1 {
		t.Fatalf("flagged trace lookup = %+v", got)
	}
	for _, id := range ids[3:] {
		if got := r.Lookup(id); len(got) != 1 {
			t.Fatalf("flagged record evicted recent trace %s", id)
		}
	}
}

// TestDisabledPropagationAllocFree extends the disabled-path guard to the
// propagation surface: a zero SpanRef's Traceparent, parsing junk headers,
// and recording into a nil recorder must all stay allocation-free.
func TestDisabledPropagationAllocFree(t *testing.T) {
	var ref SpanRef
	var rec *Recorder
	var tr *Trace
	if allocs := testing.AllocsPerRun(1000, func() {
		if ref.Traceparent() != "" {
			t.Fatal("zero ref propagated")
		}
		if _, _, ok := ParseTraceparent(""); ok {
			t.Fatal("empty header parsed")
		}
		if _, _, ok := ParseTraceparent("junk-header-value"); ok {
			t.Fatal("junk header parsed")
		}
		rec.Record(tr)
		_ = tr.TraceID()
		_ = tr.RemoteParent()
	}); allocs != 0 {
		t.Fatalf("disabled propagation allocated %.1f times per op", allocs)
	}
}
