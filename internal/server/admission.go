package server

import (
	"context"
	"sync"

	"rumba/internal/accel"
	"rumba/internal/core"
	"rumba/internal/obs"
	"rumba/internal/trace"
)

// Admission metric names (alongside the stream.* metrics the per-request
// pipelines emit into the same registry).
const (
	// MetricRequests counts requests admitted into the pipeline.
	MetricRequests = "serve.requests"
	// MetricShed counts requests shed under overload (degraded to
	// approximate-only output).
	MetricShed = "serve.requests_shed"
	// MetricDeadline counts admitted requests that exceeded their deadline.
	MetricDeadline = "serve.requests_deadline"
	// MetricQueueDepth gauges the shared admission queue occupancy.
	MetricQueueDepth = "serve.queue_depth"
	// MetricQueuePushes counts successful admissions into the shared queue.
	MetricQueuePushes = "serve.queue.pushes"
	// MetricQueueStalls counts admissions rejected on a full queue.
	MetricQueueStalls = "serve.queue.stalls"
	// MetricInFlight gauges requests admitted but not yet completed.
	MetricInFlight = "serve.inflight"
	// MetricLatencyNs is the admitted-request latency (queue wait +
	// pipeline) in nanoseconds.
	MetricLatencyNs = "serve.latency_ns"
)

// job is one admitted request travelling through the shared queue to a
// pipeline worker. The worker writes results/err and closes done; the
// handler goroutine reads them only after done.
type job struct {
	ctx     context.Context
	kernel  *Kernel
	tenant  *tenant
	inputs  [][]float64
	results []core.StreamResult
	err     error
	done    chan struct{}
	// span is the request's admission span (zero when tracing is off): it
	// opens when the handler submits the job and the pipeline worker ends it
	// on pickup, so its duration is the shared-queue wait.
	span trace.SpanRef
}

// admission is the controller in front of the pipeline: concurrent requests
// are batched into a shared bounded accel.Queue drained by a fixed worker
// pool, and a token window bounds the number of admitted-but-unfinished
// requests. Both bounds shed rather than block — an overloaded server
// degrades to approximate-only answers instead of queueing unboundedly
// (the serving-layer analogue of the recovery queue's back-pressure).
type admission struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  *accel.Queue[*job]
	closed bool

	tokens chan struct{}
	wg     sync.WaitGroup

	gInFlight *obs.Gauge
}

// newAdmission builds the controller and starts its worker pool. run is the
// pipeline entry invoked for each admitted job, on a worker goroutine.
func newAdmission(workers, queueCap, maxInFlight int, reg *obs.Registry, run func(*job)) *admission {
	if workers <= 0 {
		workers = 4
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	if maxInFlight <= 0 {
		maxInFlight = queueCap + workers
	}
	a := &admission{
		queue:     accel.NewQueue[*job](queueCap),
		tokens:    make(chan struct{}, maxInFlight),
		gInFlight: reg.Gauge(MetricInFlight),
	}
	a.cond = sync.NewCond(&a.mu)
	a.queue.Instrument(reg.Gauge(MetricQueueDepth), reg.Counter(MetricQueuePushes), reg.Counter(MetricQueueStalls))
	a.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go a.worker(run)
	}
	return a
}

// submit tries to admit a job. It returns false — without blocking — when
// the in-flight window or the shared queue is exhausted, or the controller
// is draining; the caller then sheds the request. On true, the job has been
// queued and its done channel will be closed by a worker.
func (a *admission) submit(j *job) bool {
	select {
	case a.tokens <- struct{}{}:
	default:
		return false
	}
	a.mu.Lock()
	if a.closed || !a.queue.Push(j) {
		a.mu.Unlock()
		<-a.tokens
		return false
	}
	a.gInFlight.Add(1)
	a.cond.Signal()
	a.mu.Unlock()
	return true
}

// worker drains the shared queue. On drain-close it finishes every queued
// job before exiting, so admitted requests always complete.
func (a *admission) worker(run func(*job)) {
	defer a.wg.Done()
	for {
		a.mu.Lock()
		for a.queue.Len() == 0 && !a.closed {
			a.cond.Wait()
		}
		j, ok := a.queue.Pop()
		a.mu.Unlock()
		if !ok {
			// Queue empty and closed: drained.
			return
		}
		run(j)
		close(j.done)
		a.gInFlight.Add(-1)
		<-a.tokens
	}
}

// close stops admission and waits for the workers to drain every queued job.
func (a *admission) close() {
	a.mu.Lock()
	a.closed = true
	a.cond.Broadcast()
	a.mu.Unlock()
	a.wg.Wait()
}
