package nn

import (
	"strings"
	"testing"
)

// FuzzParseTopology hardens the topology parser: any input must either
// error or round-trip through String.
func FuzzParseTopology(f *testing.F) {
	for _, seed := range []string{"6->8->4->1", "1->1->2", "", "->", "a->b", "3-> 4 ->1", "0->1", "9999999999->1"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 256 {
			return
		}
		topo, err := ParseTopology(s)
		if err != nil {
			return
		}
		if topo.Inputs() <= 0 || topo.Outputs() <= 0 {
			t.Fatalf("parsed non-positive layer from %q", s)
		}
		// Round trip: the rendered form must re-parse to the same sizes.
		again, err := ParseTopology(topo.String())
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", s, err)
		}
		if len(again.Sizes) != len(topo.Sizes) {
			t.Fatalf("round trip changed layer count for %q", s)
		}
		for i := range again.Sizes {
			if again.Sizes[i] != topo.Sizes[i] {
				t.Fatalf("round trip changed sizes for %q", s)
			}
		}
		// MACs must never be negative.
		if topo.MACs() < 0 {
			t.Fatalf("negative MACs for %q", s)
		}
		_ = strings.TrimSpace(s)
	})
}
