// Package measure implements tune.Measurer against real kernel artifacts:
// quality by replaying the package golden corpus through the full Rumba
// runtime with the point's datapath and checker, cost by a monotonic-clock
// timing loop over the corpus driven through the fused accelerator and
// checker batch kernels at the point's batch width.
//
// The cost loop deliberately does not use testing.Benchmark: that would link
// the testing package (and its flags) into every binary that tunes, and the
// loop here measures exactly what the serving layer runs per element —
// stage + forward + unscale + checker predict — nothing more.
package measure

import (
	"fmt"
	"time"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/bundle"
	"rumba/internal/core"
	"rumba/internal/nn"
	"rumba/internal/pkg"
	"rumba/internal/predictor"
	"rumba/internal/tune"
)

// Config parameterises a measurer.
type Config struct {
	// BenchTime is the minimum wall-clock spent timing one point's cost
	// (after one warm pass); <= 0 selects 25ms.
	BenchTime time.Duration
	// MaxCorpus caps the corpus elements used per measurement; <= 0 uses the
	// whole corpus. Smoke runs shrink it to keep sweeps fast.
	MaxCorpus int
}

// DefaultBenchTime is the per-point cost budget when Config.BenchTime is 0.
const DefaultBenchTime = 25 * time.Millisecond

// BundleMeasurer measures sweep points against one trained bundle and its
// golden corpus. It is not safe for concurrent use: each measurement builds
// a private accelerator, but the corpus views are shared.
type BundleMeasurer struct {
	spec   *bench.Spec
	bnd    *bundle.Bundle
	corpus *pkg.Corpus
	toq    float64
	cfg    Config

	// Recycled cost-loop scratch.
	dst  [][]float64
	pred []float64
}

// NewBundleMeasurer validates the bundle and corpus and builds a measurer.
// toq is the TOQ bound the quality replay's tuner holds the runtime to;
// <= 0 selects the paper default 0.10.
func NewBundleMeasurer(b *bundle.Bundle, corpus *pkg.Corpus, toq float64, cfg Config) (*BundleMeasurer, error) {
	if b == nil || corpus == nil {
		return nil, fmt.Errorf("measure: needs a bundle and a corpus")
	}
	spec, err := b.Validate()
	if err != nil {
		return nil, err
	}
	if err := corpus.Validate(spec); err != nil {
		return nil, err
	}
	if toq <= 0 {
		toq = 0.10
	}
	if cfg.BenchTime <= 0 {
		cfg.BenchTime = DefaultBenchTime
	}
	return &BundleMeasurer{spec: spec, bnd: b, corpus: corpus, toq: toq, cfg: cfg}, nil
}

// NewPackageMeasurer builds a measurer for a loaded kernel package, holding
// quality to the package's own TOQ.
func NewPackageMeasurer(p *pkg.Package, cfg Config) (*BundleMeasurer, error) {
	if p == nil {
		return nil, fmt.Errorf("measure: needs a package")
	}
	return NewBundleMeasurer(p.Bundle, p.Corpus, p.Manifest.Quality.TOQ, cfg)
}

// Spec returns the kernel spec the measurer replays against.
func (m *BundleMeasurer) Spec() *bench.Spec { return m.spec }

// TOQ returns the quality bound the replay tuner targets.
func (m *BundleMeasurer) TOQ() float64 { return m.toq }

// CheckerNames returns the predictor families the bundle can reconstruct, in
// the sweep-axis order the CLI defaults to.
func (m *BundleMeasurer) CheckerNames() []string {
	ps := m.bnd.Predictors()
	var names []string
	if ps.Linear != nil {
		names = append(names, "linear")
	}
	if ps.Tree != nil {
		names = append(names, "tree")
	}
	if ps.EMA != nil {
		names = append(names, "ema")
	}
	return names
}

// checker reconstructs the named predictor family, mirroring the serving
// registry: linear and tree are stateless and shareable, EMA is stateful and
// built fresh per measurement so points never observe each other's history.
// "none" is the unchecked replay (nil predictor).
func (m *BundleMeasurer) checker(name string) (predictor.Predictor, error) {
	ps := m.bnd.Predictors()
	switch name {
	case "none":
		return nil, nil
	case "linear":
		if ps.Linear == nil {
			return nil, fmt.Errorf("measure: bundle %s has no linear checker", m.spec.Name)
		}
		return ps.Linear, nil
	case "tree":
		if ps.Tree == nil {
			return nil, fmt.Errorf("measure: bundle %s has no tree checker", m.spec.Name)
		}
		return ps.Tree, nil
	case "ema":
		if ps.EMA == nil {
			return nil, fmt.Errorf("measure: bundle %s has no EMA checker", m.spec.Name)
		}
		return predictor.NewEMA(m.bnd.EMAHistory, m.bnd.EMAScale), nil
	default:
		return nil, fmt.Errorf("measure: unknown checker %q", name)
	}
}

// accelerator builds a datapath-configured accelerator for a point.
func (m *BundleMeasurer) accelerator(p tune.Point) (*accel.Accelerator, error) {
	acc, err := m.bnd.Accelerator()
	if err != nil {
		return nil, err
	}
	if err := acc.ApplyDatapath(p.Datapath, p.LUTBits); err != nil {
		return nil, err
	}
	return acc, nil
}

// inputs returns the (possibly capped) corpus input view.
func (m *BundleMeasurer) inputs() ([][]float64, [][]float64) {
	ins, exact := m.corpus.Inputs, m.corpus.Exact
	if m.cfg.MaxCorpus > 0 && len(ins) > m.cfg.MaxCorpus {
		ins, exact = ins[:m.cfg.MaxCorpus], exact[:m.cfg.MaxCorpus]
	}
	return ins, exact
}

// Measure implements tune.Measurer: delivered corpus error and timed
// ns/element for one sweep point.
func (m *BundleMeasurer) Measure(p tune.Point) (tune.Measurement, error) {
	if p.Batch < 1 {
		return tune.Measurement{}, fmt.Errorf("measure: batch %d", p.Batch)
	}
	q, err := m.quality(p)
	if err != nil {
		return tune.Measurement{}, err
	}
	ns, err := m.cost(p)
	if err != nil {
		return tune.Measurement{}, err
	}
	return tune.Measurement{Quality: q, NsPerElem: ns}, nil
}

// quality replays the golden corpus through the full runtime (accelerator +
// checker + TOQ tuner + recovery) with the point's configuration and returns
// the delivered output error — what a tenant at this point would observe.
func (m *BundleMeasurer) quality(p tune.Point) (float64, error) {
	acc, err := m.accelerator(p)
	if err != nil {
		return 0, err
	}
	checker, err := m.checker(p.Checker)
	if err != nil {
		return 0, err
	}
	cfg := core.Config{Spec: m.spec, Accel: acc, Checker: checker, BatchSize: p.Batch}
	if checker != nil {
		if cfg.Tuner, err = core.NewTuner(core.ModeTOQ, m.toq); err != nil {
			return 0, err
		}
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return 0, err
	}
	ins, exact := m.inputs()
	rep, err := sys.Run(nn.Dataset{Inputs: ins, Targets: exact})
	if err != nil {
		return 0, err
	}
	return rep.OutputError, nil
}

// cost times the per-element serving hot path — input staging, the fused
// forward kernel on the point's datapath, output unscaling, and the
// checker's batch predict — over the corpus chunked at the point's batch
// width. One warm pass first (table builds, scratch growth), then whole
// passes until BenchTime has elapsed.
func (m *BundleMeasurer) cost(p tune.Point) (float64, error) {
	acc, err := m.accelerator(p)
	if err != nil {
		return 0, err
	}
	checker, err := m.checker(p.Checker)
	if err != nil {
		return 0, err
	}
	ins, _ := m.inputs()
	if cap(m.dst) < p.Batch {
		m.dst = make([][]float64, p.Batch)
	}
	if cap(m.pred) < p.Batch {
		m.pred = make([]float64, p.Batch)
	}
	dst, pred := m.dst[:p.Batch], m.pred[:p.Batch]

	pass := func() int {
		elems := 0
		for at := 0; at < len(ins); at += p.Batch {
			end := at + p.Batch
			if end > len(ins) {
				end = len(ins)
			}
			chunk := ins[at:end]
			acc.InvokeBatch(dst[:len(chunk)], chunk)
			if checker != nil {
				checker.PredictErrorBatch(pred[:len(chunk)], chunk, dst[:len(chunk)])
			}
			elems += len(chunk)
		}
		return elems
	}

	pass() // warm: activation tables, scratch and dst rows all settle
	total := 0
	start := time.Now()
	for time.Since(start) < m.cfg.BenchTime {
		total += pass()
	}
	elapsed := time.Since(start)
	if total == 0 {
		return 0, fmt.Errorf("measure: empty corpus")
	}
	return float64(elapsed.Nanoseconds()) / float64(total), nil
}
