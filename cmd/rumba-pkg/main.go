// Command rumba-pkg builds, validates, installs and conformance-tests kernel
// packages (internal/pkg): the versioned artifact rumba-serve loads at
// startup. A package bundles the rumba-train artifact with a golden corpus
// and a quality/latency contract, and every subcommand holds it to that
// contract.
//
//	rumba-pkg build -benchmark fft -out ./dist                    # train + package
//	rumba-pkg build -benchmark fft -bundle fft.json -out ./dist   # package an existing bundle
//	rumba-pkg validate ./dist/fft-0.1.0
//	rumba-pkg install -registry /var/lib/rumba/packages ./dist/fft-0.1.0
//	rumba-pkg conform -shape burst -requests 64 ./dist/fft-0.1.0
//	rumba-pkg conform -addr http://127.0.0.1:8080 ./dist/fft-0.1.0
//
// Exit status: 0 on success, 1 when a package fails its gate, 2 on usage
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rumba/internal/accel"
	"rumba/internal/bench"
	"rumba/internal/bundle"
	"rumba/internal/pkg"
	"rumba/internal/pkg/conformance"
	"rumba/internal/trainer"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usage = `usage: rumba-pkg <command> [flags]

commands:
  build      train (or load) a kernel bundle and assemble a package
  validate   check a package: schema, checksums, bundle, corpus replay vs TOQ
  install    validate a package and copy it into a serve registry directory
  conform    replay the golden corpus against rumba-serve under a traffic shape

run "rumba-pkg <command> -h" for the command's flags.
`

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usage)
		return 2
	}
	var err error
	switch args[0] {
	case "build":
		err = runBuild(args[1:], stdout, stderr)
	case "validate":
		err = runValidate(args[1:], stdout, stderr)
	case "install":
		err = runInstall(args[1:], stdout, stderr)
	case "conform":
		err = runConform(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usage)
		return 0
	default:
		fmt.Fprintf(stderr, "rumba-pkg: unknown command %q\n%s", args[0], usage)
		return 2
	}
	if err == flag.ErrHelp {
		return 0
	}
	if err != nil {
		fmt.Fprintln(stderr, "rumba-pkg:", err)
		if _, ok := err.(usageError); ok {
			return 2
		}
		return 1
	}
	return 0
}

// usageError marks bad invocations (exit 2) apart from failed gates (exit 1).
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func runBuild(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rumba-pkg build", flag.ContinueOnError)
	fs.SetOutput(stderr)
	benchmark := fs.String("benchmark", "", "benchmark kernel to package (required)")
	bundlePath := fs.String("bundle", "", "existing rumba-train bundle JSON; empty trains in-process")
	out := fs.String("out", ".", "directory to write the package directory under")
	version := fs.String("version", "0.1.0", "package semantic version")
	toq := fs.Float64("toq", 0.10, "TOQ error bound as a fraction (0.10 = 90% output quality)")
	maxShed := fs.Float64("max-shed", 0, "max fraction of conformance requests the server may shed")
	maxDrift := fs.String("max-drift", "", "worst tolerated drift state: ok, drifting or violating (default drifting)")
	p99 := fs.Float64("p99-ms", 0, "p99 latency SLO in milliseconds (0 = unasserted)")
	corpusN := fs.Int("corpus-n", 256, "golden corpus size in elements")
	trainN := fs.Int("train", 0, "in-process training samples (0 = Table 1 size)")
	epochs := fs.Int("epochs", 0, "in-process training epochs (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchmark == "" {
		return usageError{"build: -benchmark is required"}
	}
	var b *bundle.Bundle
	if *bundlePath != "" {
		var err error
		if b, _, err = bundle.Load(*bundlePath); err != nil {
			return err
		}
	} else {
		var err error
		if b, err = trainInProcess(stdout, *benchmark, *trainN, *epochs); err != nil {
			return err
		}
	}
	p, err := pkg.Build(*out, b, pkg.BuildConfig{
		Version: *version,
		Quality: pkg.QualitySpec{TOQ: *toq, MaxShedRate: *maxShed, MaxDriftState: *maxDrift},
		Latency: pkg.LatencySLO{P99Millis: *p99},
		CorpusN: *corpusN,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "built %s (%s %s, %d corpus elements, toq %.4f)\n",
		p.Dir, p.Manifest.Name, p.Manifest.Version, p.Manifest.Corpus.Elements, p.Manifest.Quality.TOQ)
	return nil
}

// trainInProcess runs the rumba-train pipeline with default sizes so build
// works straight from a benchmark name.
func trainInProcess(stdout io.Writer, benchmark string, trainN, epochs int) (*bundle.Bundle, error) {
	spec, err := bench.Get(benchmark)
	if err != nil {
		return nil, err
	}
	train := spec.GenTrain(trainN)
	cfg := trainer.DefaultAccelTrainConfig(benchmark)
	if epochs > 0 {
		cfg.NN.Epochs = epochs
	}
	fmt.Fprintf(stdout, "training %s accelerator (%s) on %d samples, %d epochs\n",
		benchmark, spec.RumbaTopo, train.Len(), cfg.NN.Epochs)
	acfg, err := trainer.TrainAccelerator(spec, spec.RumbaTopo, spec.RumbaFeatures, train, cfg)
	if err != nil {
		return nil, err
	}
	acc, err := accel.New(acfg, 0)
	if err != nil {
		return nil, err
	}
	preds, err := trainer.TrainPredictors(spec, train, trainer.Observe(spec, acc, train))
	if err != nil {
		return nil, err
	}
	return bundle.New(spec, acfg, preds)
}

func runValidate(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rumba-pkg validate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usageError{"validate: exactly one package directory argument"}
	}
	p, rep, err := pkg.Validate(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "ok: %s %s (kernel %s, checker %s): replay error %.4f <= toq %.4f (%d/%d fixed, unchecked %.4f)\n",
		p.Manifest.Name, p.Manifest.Version, p.Manifest.Kernel, rep.Checker,
		rep.OutputError, rep.TOQ, rep.Fixed, rep.Elements, rep.UncheckedError)
	return nil
}

func runInstall(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rumba-pkg install", flag.ContinueOnError)
	fs.SetOutput(stderr)
	registry := fs.String("registry", "", "serve registry directory rumba-serve -packages loads (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *registry == "" {
		return usageError{"install: -registry is required"}
	}
	if fs.NArg() != 1 {
		return usageError{"install: exactly one package directory argument"}
	}
	dest, err := pkg.Install(*registry, fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "installed %s\n", dest)
	return nil
}

func runConform(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rumba-pkg conform", flag.ContinueOnError)
	fs.SetOutput(stderr)
	shape := fs.String("shape", "steady", "traffic shape: steady, burst, ramp or mixed-tenant")
	requests := fs.Int("requests", 32, "number of requests to replay")
	batch := fs.Int("batch", 16, "elements per request")
	lanes := fs.Int("lanes", 4, "concurrent lanes (burst and mixed-tenant shapes)")
	checker := fs.String("checker", "", "checker override (default: the package's)")
	addr := fs.String("addr", "", "base URL of a live rumba-serve; empty runs one in-process")
	out := fs.String("out", "", "also write the JSON report to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usageError{"conform: exactly one package directory argument"}
	}
	sh, ok := conformance.ParseShape(*shape)
	if !ok {
		return usageError{fmt.Sprintf("conform: unknown shape %q (have %v)", *shape, conformance.Shapes())}
	}
	p, err := pkg.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	rep, err := conformance.Run(conformance.Config{
		Package:  p,
		Shape:    sh,
		Requests: *requests,
		Batch:    *batch,
		Lanes:    *lanes,
		Checker:  *checker,
		BaseURL:  *addr,
	})
	if err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	fmt.Fprintln(stdout, rep.Summary())
	if !rep.Pass {
		return fmt.Errorf("conformance failed")
	}
	return nil
}
