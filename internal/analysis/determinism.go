package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// determinism: purity alone is not enough for Rumba's recovery. The
// re-executed iteration must see the same inputs and produce the same
// outputs as the approximated one would have exactly — so a kernel (any
// function in the re-execution closure) must not read clocks, the global
// random-number state, or channels, and must not derive output order from
// map iteration. This analyzer walks every function the kernel closure can
// reach (concrete kernels at entry points, //rumba:pure declarations, and
// their transitive module callees) and flags nondeterministic constructs
// at their source position.

// nondetRandFuncs in math/rand and math/rand/v2 that are deterministic:
// constructors take an explicit seed/source, so their results are
// reproducible. Everything else package-level draws from the global,
// time-seeded source.
var detRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// nondetTimeFuncs are the package-level time functions that read the wall
// clock or start timers. Constructors and parsers (time.Unix, time.Date,
// time.ParseDuration, time.FixedZone, ...) compute deterministic values
// from their arguments and stay allowed.
var nondetTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// scanNondeterminism reports every nondeterministic construct in body.
func scanNondeterminism(info *types.Info, body *ast.BlockStmt, report func(pos token.Pos, format string, args ...any)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if tv, ok := info.Types[v.Fun]; ok && tv.IsType() {
				return true
			}
			fn, ok := calleeObject(info, v).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig := fn.Type().(*types.Signature)
			switch fn.Pkg().Path() {
			case "time":
				if sig.Recv() == nil && nondetTimeFuncs[fn.Name()] {
					report(v.Pos(), "reads the clock via time.%s; re-execution cannot reproduce it", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if sig.Recv() == nil && !detRandConstructors[fn.Name()] {
					report(v.Pos(), "draws from the global random source via rand.%s; seed a local source instead", fn.Name())
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				report(v.Pos(), "receives from a channel; the value depends on scheduling")
			}
		case *ast.SelectStmt:
			report(v.Pos(), "select statement; case choice depends on scheduling")
		case *ast.RangeStmt:
			tv, ok := info.Types[v.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap && orderSensitiveBody(v.Body) {
				report(v.Pos(), "ranges over a map with order-sensitive writes; iteration order is random")
			}
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				report(v.Pos(), "ranges over a channel; the sequence depends on scheduling")
			}
		}
		return true
	})
}

// orderSensitiveBody reports whether a loop body's effect depends on
// iteration order: it writes through an index, appends, or sends.
func orderSensitiveBody(body *ast.BlockStmt) bool {
	sensitive := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if _, ok := lhs.(*ast.IndexExpr); ok {
					sensitive = true
				}
			}
			// x = append(x, ...) accumulates in iteration order.
			for _, rhs := range v.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
						sensitive = true
					}
				}
			}
		case *ast.SendStmt:
			sensitive = true
		}
		return !sensitive
	})
	return sensitive
}

// AnalyzerDeterminism flags nondeterministic constructs inside the kernel
// re-execution closure.
var AnalyzerDeterminism = &Analyzer{
	Name:     "determinism",
	Doc:      "re-executable kernels must not read clocks, global RNG state, or channels, nor order output by map iteration",
	Severity: SeverityError,
	Run: func(p *Pass) {
		report := func(prefix string) func(pos token.Pos, format string, args ...any) {
			return func(pos token.Pos, format string, args ...any) {
				p.Reportf(pos, prefix+format, args...)
			}
		}
		for _, fi := range p.Module.FuncsIn(p.Pkg) {
			if !p.Module.InKernelClosure(fi.Obj) {
				continue
			}
			scanNondeterminism(p.Pkg.Info, fi.Decl.Body, report("kernel "+fi.Obj.Name()+" "))
		}
		for _, site := range p.Module.sinks {
			if site.pkg == p.Pkg && site.lit != nil {
				scanNondeterminism(p.Pkg.Info, site.lit.Body, report("kernel literal "))
			}
		}
	},
}
