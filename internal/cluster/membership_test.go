package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"rumba/internal/obs"
)

// flakyNode is an httptest node whose /readyz answer is switchable at
// runtime — the probe state machine's test double.
type flakyNode struct {
	hs    *httptest.Server
	ready atomic.Bool
}

func newFlakyNode(t *testing.T) *flakyNode {
	t.Helper()
	n := &flakyNode{}
	n.ready.Store(true)
	n.hs = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			http.NotFound(w, r)
			return
		}
		if n.ready.Load() {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ready\n"))
		} else {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("draining\n"))
		}
	}))
	t.Cleanup(n.hs.Close)
	return n
}

func TestMembershipValidation(t *testing.T) {
	if _, err := NewMembership(nil, ProbeConfig{}, nil); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewMembership([]Node{{Name: "", URL: "http://x"}}, ProbeConfig{}, nil); err == nil {
		t.Error("unnamed node accepted")
	}
	if _, err := NewMembership([]Node{{Name: "a", URL: ""}}, ProbeConfig{}, nil); err == nil {
		t.Error("URL-less node accepted")
	}
	dup := []Node{{Name: "a", URL: "http://x"}, {Name: "a", URL: "http://y"}}
	if _, err := NewMembership(dup, ProbeConfig{}, nil); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestMembershipProbeStateMachine(t *testing.T) {
	node := newFlakyNode(t)
	metrics := obs.NewRegistry()
	m, err := NewMembership(
		[]Node{{Name: "n1", URL: node.hs.URL + "/"}}, // trailing slash must be trimmed
		ProbeConfig{SuspectAfter: 1, DownAfter: 3, Timeout: time.Second},
		metrics,
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if got := m.State("n1"); got != NodeUp {
		t.Fatalf("initial state = %v, want up", got)
	}
	m.ProbeNow(ctx)
	if got := m.State("n1"); got != NodeUp {
		t.Fatalf("state after good probe = %v, want up", got)
	}

	node.ready.Store(false)
	m.ProbeNow(ctx)
	if got := m.State("n1"); got != NodeSuspect {
		t.Fatalf("state after 1 failure = %v, want suspect", got)
	}
	m.ProbeNow(ctx)
	if got := m.State("n1"); got != NodeSuspect {
		t.Fatalf("state after 2 failures = %v, want suspect (down needs 3)", got)
	}
	m.ProbeNow(ctx)
	if got := m.State("n1"); got != NodeDown {
		t.Fatalf("state after 3 failures = %v, want down", got)
	}
	if g := metrics.Gauge(obs.Labeled(MetricProbeState, "node", "n1")).Value(); g != float64(NodeDown) {
		t.Fatalf("probe state gauge = %v, want %v", g, float64(NodeDown))
	}

	snap := m.Snapshot()
	if len(snap) != 1 || snap[0].State != "down" || snap[0].ConsecutiveFailures != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].LastError == "" || snap[0].Probes != 4 {
		t.Fatalf("snapshot bookkeeping = %+v", snap[0])
	}

	// One good probe fully recovers the node — failures don't linger.
	node.ready.Store(true)
	m.ProbeNow(ctx)
	if got := m.State("n1"); got != NodeUp {
		t.Fatalf("state after recovery = %v, want up", got)
	}
	if snap := m.Snapshot(); snap[0].ConsecutiveFailures != 0 || snap[0].LastError != "" {
		t.Fatalf("recovery left residue: %+v", snap[0])
	}
}

func TestMembershipProbeUnreachableHost(t *testing.T) {
	// A closed listener (crashed process) must go down on transport errors,
	// not just HTTP 503s.
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()
	m, err := NewMembership([]Node{{Name: "gone", URL: url}},
		ProbeConfig{SuspectAfter: 1, DownAfter: 2, Timeout: 200 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.ProbeNow(context.Background())
	m.ProbeNow(context.Background())
	if got := m.State("gone"); got != NodeDown {
		t.Fatalf("state = %v, want down", got)
	}
}

func TestMembershipStartStop(t *testing.T) {
	node := newFlakyNode(t)
	m, err := NewMembership([]Node{{Name: "n1", URL: node.hs.URL}},
		ProbeConfig{Interval: 10 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(context.Background())
	node.ready.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for m.State("n1") == NodeUp && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := m.State("n1"); got == NodeUp {
		t.Fatal("prober never noticed the failure")
	}
	m.Stop()
	m.Stop() // idempotent
}

func TestMembershipAccessors(t *testing.T) {
	m, err := NewMembership([]Node{
		{Name: "b", URL: "http://b:1"},
		{Name: "a", URL: "http://a:1"},
	}, ProbeConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if names := m.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v, want sorted [a b]", names)
	}
	if nodes := m.Nodes(); len(nodes) != 2 || nodes[0].Name != "a" || nodes[1].URL != "http://b:1" {
		t.Fatalf("Nodes = %v", nodes)
	}
	if m.URL("a") != "http://a:1" || m.URL("ghost") != "" {
		t.Fatalf("URL lookups wrong: %q %q", m.URL("a"), m.URL("ghost"))
	}
	if m.State("ghost") != NodeDown {
		t.Fatal("unknown member must read as down")
	}
}
