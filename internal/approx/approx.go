// Package approx implements approximation techniques from the paper's
// related work — Paraprox-style approximate memoization and tile
// approximation, and EnerJ-style precision reduction — as executors the
// Rumba runtime can manage. The paper
// notes that "all these software approximation techniques need a quality
// management system to monitor the output quality and control the
// aggressiveness of the approximation during execution"; plugging them into
// internal/core demonstrates exactly that.
//
// Both techniques run on the host CPU (there is no accelerator), so their
// energy/latency advantage is algorithmic: a memo hit or a reused tile costs
// a few table operations instead of the exact kernel.
package approx

import (
	"fmt"
	"math"

	"rumba/internal/bench"
	"rumba/internal/energy"
)

// lookupOps is the CPU cost of a memo-table probe or tile reuse, in
// normalised CPU operations: input quantisation, hash, and a copy.
const lookupOps = 12.0

// Memo is fuzzy (approximate) memoization: kernel inputs are quantised onto
// a grid and a table maps quantised inputs to previously computed exact
// outputs. A hit returns the cached neighbour's output — approximately
// correct when the kernel is smooth; a miss computes the exact kernel and
// caches it. Hardware fuzzy memoization (Alvarez et al., refs [2, 3]) works
// the same way.
type Memo struct {
	spec *bench.Spec
	// CellSize is the quantisation step per input dimension, in units of
	// the input range observed offline. Larger cells mean more hits and
	// more error.
	cellSize []float64
	origin   []float64
	// MaxEntries bounds the table; when full, new misses are not cached
	// (the steady-state behaviour of a fixed-size hardware table).
	maxEntries int

	table  map[string][]float64
	hits   int
	misses int
}

// NewMemo builds a memoizing executor. cells is the number of quantisation
// cells per input dimension across the observed input range (smaller =
// coarser = more approximate); samples must be representative inputs used to
// size the grid. maxEntries <= 0 means 1<<16 entries.
func NewMemo(spec *bench.Spec, cells int, samples [][]float64, maxEntries int) (*Memo, error) {
	if cells <= 0 {
		return nil, fmt.Errorf("approx: cells must be positive")
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("approx: memoization needs range samples")
	}
	if maxEntries <= 0 {
		maxEntries = 1 << 16
	}
	d := spec.InDim
	lo := append([]float64(nil), samples[0]...)
	hi := append([]float64(nil), samples[0]...)
	for _, s := range samples[1:] {
		for j, v := range s {
			lo[j] = math.Min(lo[j], v)
			hi[j] = math.Max(hi[j], v)
		}
	}
	cell := make([]float64, d)
	for j := range cell {
		span := hi[j] - lo[j]
		if span <= 0 {
			span = 1
		}
		cell[j] = span / float64(cells)
	}
	return &Memo{
		spec:       spec,
		cellSize:   cell,
		origin:     lo,
		maxEntries: maxEntries,
		table:      make(map[string][]float64),
	}, nil
}

// key quantises an input onto the grid.
func (mo *Memo) key(in []float64) string {
	// Small inputs (<= 64 dims in this suite): build a compact key.
	buf := make([]byte, 0, len(in)*3)
	for j, v := range in {
		q := int32(math.Floor((v - mo.origin[j]) / mo.cellSize[j]))
		buf = append(buf, byte(q), byte(q>>8), byte(q>>16))
	}
	return string(buf)
}

// Invoke implements exec.Executor.
func (mo *Memo) Invoke(in []float64) []float64 {
	k := mo.key(in)
	if out, ok := mo.table[k]; ok {
		mo.hits++
		return out
	}
	mo.misses++
	out := mo.spec.Exact(in)
	if len(mo.table) < mo.maxEntries {
		mo.table[k] = out
	}
	return out
}

// HitRate returns the fraction of invocations served from the table.
func (mo *Memo) HitRate() float64 {
	total := mo.hits + mo.misses
	if total == 0 {
		return 0
	}
	return float64(mo.hits) / float64(total)
}

// CyclesPerInvocation implements exec.Executor: the expected latency given
// the measured hit rate (a lookup on hits; a lookup plus the exact kernel on
// misses).
func (mo *Memo) CyclesPerInvocation() float64 {
	h := mo.HitRate()
	return lookupOps + (1-h)*mo.spec.Cost.CPUOps
}

// EnergyPerInvocation implements exec.Executor.
func (mo *Memo) EnergyPerInvocation(m energy.Model) float64 {
	h := mo.HitRate()
	return (lookupOps + (1-h)*mo.spec.Cost.CPUOps) * m.CPUEnergyPerOp
}

// Reset clears the table and the hit counters.
func (mo *Memo) Reset() {
	mo.table = make(map[string][]float64)
	mo.hits, mo.misses = 0, 0
}

// Tile is tile approximation (Paraprox, ref [31]): the exact kernel runs for
// one element out of every Stride, and its output is reused for the
// following Stride-1 elements. On locally smooth input streams (pixels in
// raster order) the reused value is close; across discontinuities it is
// wrong — which is precisely the error pattern Rumba's checkers catch.
type Tile struct {
	spec   *bench.Spec
	stride int

	count int
	last  []float64
}

// NewTile builds a tile-approximation executor. stride 1 degenerates to the
// exact kernel.
func NewTile(spec *bench.Spec, stride int) (*Tile, error) {
	if stride <= 0 {
		return nil, fmt.Errorf("approx: tile stride must be positive")
	}
	return &Tile{spec: spec, stride: stride}, nil
}

// Invoke implements exec.Executor.
func (t *Tile) Invoke(in []float64) []float64 {
	if t.count%t.stride == 0 || t.last == nil {
		t.last = t.spec.Exact(in)
	}
	t.count++
	return t.last
}

// CyclesPerInvocation implements exec.Executor: the amortised latency of one
// exact execution per stride.
func (t *Tile) CyclesPerInvocation() float64 {
	return lookupOps + t.spec.Cost.CPUOps/float64(t.stride)
}

// EnergyPerInvocation implements exec.Executor.
func (t *Tile) EnergyPerInvocation(m energy.Model) float64 {
	return t.CyclesPerInvocation() * m.CPUEnergyPerOp
}

// Reset clears the tile state.
func (t *Tile) Reset() {
	t.count = 0
	t.last = nil
}

// Precision is storage/datapath width reduction (EnerJ-style, refs [34, 35]
// of the paper): the exact kernel algorithm runs, but its inputs and outputs
// pass through reduced-precision storage that keeps only MantissaBits of
// each float's mantissa. Energy is saved in the memory system and datapath
// width rather than by skipping work.
type Precision struct {
	spec *bench.Spec
	// MantissaBits is the retained mantissa width (float64 has 52).
	MantissaBits int
}

// NewPrecision builds a precision-scaled executor. bits must be in [1, 52].
func NewPrecision(spec *bench.Spec, bits int) (*Precision, error) {
	if bits < 1 || bits > 52 {
		return nil, fmt.Errorf("approx: mantissa bits %d out of [1, 52]", bits)
	}
	return &Precision{spec: spec, MantissaBits: bits}, nil
}

// truncate drops the low mantissa bits of v.
func (p *Precision) truncate(v float64) float64 {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	bits := math.Float64bits(v)
	drop := uint(52 - p.MantissaBits)
	bits &^= (1 << drop) - 1
	return math.Float64frombits(bits)
}

// Invoke implements exec.Executor.
func (p *Precision) Invoke(in []float64) []float64 {
	trunc := make([]float64, len(in))
	for i, v := range in {
		trunc[i] = p.truncate(v)
	}
	out := p.spec.Exact(trunc)
	for i, v := range out {
		out[i] = p.truncate(v)
	}
	return out
}

// precisionSavings is the fraction of kernel energy/latency saved by the
// narrow datapath; scales with the dropped width (a 21-bit kernel saves
// roughly the back half of a double-precision FPU and its operand traffic).
func (p *Precision) precisionSavings() float64 {
	return 0.5 * float64(52-p.MantissaBits) / 52
}

// CyclesPerInvocation implements exec.Executor.
func (p *Precision) CyclesPerInvocation() float64 {
	return p.spec.Cost.CPUOps * (1 - p.precisionSavings())
}

// EnergyPerInvocation implements exec.Executor.
func (p *Precision) EnergyPerInvocation(m energy.Model) float64 {
	return p.CyclesPerInvocation() * m.CPUEnergyPerOp
}
