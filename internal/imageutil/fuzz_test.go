package imageutil

import (
	"bytes"
	"testing"
)

// FuzzReadPGM hardens the PGM parser against malformed headers and
// truncated payloads: it must return an error or a consistent image, never
// panic or over-read.
func FuzzReadPGM(f *testing.F) {
	var buf bytes.Buffer
	if err := Synthetic(9, 7, "fuzz-seed").WritePGM(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("P5\n2 2\n255\n\x00\x01\x02\x03"))
	f.Add([]byte("P5\n0 0\n255\n"))
	f.Add([]byte("P6\n2 2\n255\nxxxx"))
	f.Add([]byte(""))
	f.Add([]byte("P5\n-1 2\n255\n"))
	f.Add([]byte("P5\n99999999 99999999\n255\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Guard against absurd allocation requests in the fuzz corpus: the
		// parser itself rejects sizes it cannot read, but a fuzzer can
		// hand-craft a huge w*h with enough bytes behind it.
		if len(data) > 1<<16 {
			return
		}
		g, err := ReadPGM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if g.W <= 0 || g.H <= 0 || len(g.Pix) != g.W*g.H {
			t.Fatalf("inconsistent image %dx%d with %d pixels", g.W, g.H, len(g.Pix))
		}
		for _, p := range g.Pix {
			if p < 0 || p > 255 {
				t.Fatalf("pixel %v out of range", p)
			}
		}
	})
}
