package analysis

import (
	"encoding/json"
	"testing"
)

func TestMarshalSARIFShape(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "floatcmp", Severity: SeverityWarning, File: "a.go", Line: 3, Col: 9, Message: "== on float64"},
		{Analyzer: "purity", Severity: SeverityError, File: "b.go", Line: 7, Col: 2, Message: "writes global", Suppressed: true},
	}
	out, err := MarshalSARIF(Analyzers(), diags)
	if err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "rumba-vet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(Analyzers()) {
		t.Errorf("rules = %d, want one per analyzer (%d)", len(run.Tool.Driver.Rules), len(Analyzers()))
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "floatcmp" || first.Level != "warning" {
		t.Errorf("first result = %+v", first)
	}
	if run.Tool.Driver.Rules[first.RuleIndex].ID != "floatcmp" {
		t.Errorf("ruleIndex %d does not point at floatcmp", first.RuleIndex)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "a.go" || loc.Region.StartLine != 3 || loc.Region.StartColumn != 9 {
		t.Errorf("location = %+v", loc)
	}
	if len(first.Suppressions) != 0 {
		t.Error("unsuppressed finding carries suppressions")
	}
	second := run.Results[1]
	if second.Level != "error" || len(second.Suppressions) != 1 || second.Suppressions[0].Kind != "inSource" {
		t.Errorf("suppressed error result = %+v", second)
	}
}

func TestSARIFLevelMapping(t *testing.T) {
	for sev, want := range map[Severity]string{
		SeverityInfo: "note", SeverityWarning: "warning", SeverityError: "error",
	} {
		if got := sarifLevel(sev); got != want {
			t.Errorf("sarifLevel(%v) = %q, want %q", sev, got, want)
		}
	}
}
