package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"rumba/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("zero element = %v, want 0", got)
	}
}

func TestFromRowsAndRowView(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", m.Rows, m.Cols)
	}
	r := m.Row(1)
	r[0] = 99 // Row is a view.
	if m.At(1, 0) != 99 {
		t.Fatal("Row must return a view, not a copy")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := m.MulVec([]float64{1, 1, 1}, nil)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", y)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(1)
	m := NewMatrix(5, 3)
	for i := range m.Data {
		m.Data[i] = r.Range(-10, 10)
	}
	tt := m.Transpose().Transpose()
	for i := range m.Data {
		if m.Data[i] != tt.Data[i] {
			t.Fatal("transpose twice must be identity")
		}
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLinear(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 3; x + 3y = 5 -> x = 0.8, y = 1.4
	if !almostEq(x[0], 0.8, 1e-12) || !almostEq(x[1], 1.4, 1e-12) {
		t.Fatalf("solution = %v, want [0.8 1.4]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

// Property: for a random well-conditioned system, SolveLinear(A, A*x) == x.
func TestSolveLinearRoundTripProperty(t *testing.T) {
	r := rng.New(42)
	f := func(seed uint16) bool {
		n := 2 + int(seed)%6
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.Range(-1, 1)
		}
		// Diagonal dominance guarantees a well-conditioned system.
		for i := 0; i < n; i++ {
			a.Data[i*n+i] += float64(n) * 2
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Range(-5, 5)
		}
		b := a.MulVec(x, nil)
		got, err := SolveLinear(a.Clone(), b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLeastSquaresRecoversLinearModel(t *testing.T) {
	// y = 3 + 2a - b with noise-free samples must be recovered exactly.
	r := rng.New(7)
	n := 50
	x := NewMatrix(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := r.Range(-4, 4)
		b := r.Range(-4, 4)
		x.Set(i, 0, 1)
		x.Set(i, 1, a)
		x.Set(i, 2, b)
		y[i] = 3 + 2*a - b
	}
	w, err := LeastSquares(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1}
	for i := range want {
		if !almostEq(w[i], want[i], 1e-8) {
			t.Fatalf("w = %v, want %v", w, want)
		}
	}
}

func TestLeastSquaresRidgeHandlesCollinear(t *testing.T) {
	// Two identical columns are singular without a ridge.
	x := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(x, []float64{2, 4, 6}, 0); err == nil {
		t.Fatal("expected failure for exactly collinear columns without ridge")
	}
	w, err := LeastSquares(x, []float64{2, 4, 6}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Prediction, not the individual weights, is what must be right.
	if pred := w[0]*2 + w[1]*2; !almostEq(pred, 4, 1e-3) {
		t.Fatalf("ridge prediction = %v, want 4", pred)
	}
}

func TestMulVecPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 2).MulVec([]float64{1, 2, 3}, nil)
}
