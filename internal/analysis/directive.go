package analysis

import (
	"go/ast"
	"strings"
)

// Directive parsing. Every in-source marker the suite understands is spelled
//
//	//rumba:<kind> [args] [reason]
//
// and parsed in exactly one place (ParseDirective) so a malformed or
// misspelled marker can never silently mis-scope a suppression: anything
// that starts with //rumba: but does not parse into a known directive is
// reported by the directive analyzer instead of being ignored.
//
// Kinds:
//
//	pure      declares the function provably pure (purity analyzer, kernel
//	          re-execution closure)
//	approx    declares the function an approximate-path producer: its
//	          results are tainted until checked (approxflow analyzer)
//	checked   declares the function a checker/recovery sanitizer: passing a
//	          value through it discharges the approxflow obligation
//	hotpath   declares the function part of the batched hot path: the
//	          hotpath analyzer must prove it allocation-free
//	allow     acknowledges findings of the named analyzers on the same or
//	          the next line ("*" allows all; "alloc" is an alias for
//	          "hotpath")
const (
	DirectivePrefix = "//rumba:"

	DirPure    = "pure"
	DirApprox  = "approx"
	DirChecked = "checked"
	DirHotpath = "hotpath"
	DirAllow   = "allow"
)

// allowAliases maps historical/shorthand analyzer names accepted in
// //rumba:allow lists to the analyzer that reports the finding.
var allowAliases = map[string]string{
	"alloc": "hotpath",
}

// Directive is one parsed //rumba: marker.
type Directive struct {
	// Kind is the directive kind token as written (not validated unless
	// Err is empty).
	Kind string
	// Analyzers is the allow-list for DirAllow (aliases resolved, "*"
	// kept verbatim).
	Analyzers []string
	// Reason is the free-text remainder.
	Reason string
	// Err is non-empty when the marker is malformed: unknown kind, or an
	// allow with no analyzer names. Malformed directives never take
	// effect; the directive analyzer reports them.
	Err string
}

// ParseDirective parses one comment's text. ok is false when the comment is
// not a //rumba: marker at all (ordinary comments, including "// rumba:").
// It never panics, whatever the input.
func ParseDirective(text string) (d Directive, ok bool) {
	rest, ok := strings.CutPrefix(text, DirectivePrefix)
	if !ok {
		return Directive{}, false
	}
	// The kind token runs to the first whitespace.
	kind := rest
	var tail string
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		kind, tail = rest[:i], strings.TrimLeft(rest[i:], " \t")
	}
	d.Kind = kind
	switch kind {
	case DirPure, DirApprox, DirChecked, DirHotpath:
		d.Reason = tail
		return d, true
	case DirAllow:
		fields := strings.Fields(tail)
		if len(fields) == 0 {
			d.Err = "//rumba:allow needs a comma-separated analyzer list"
			return d, true
		}
		for _, name := range strings.Split(fields[0], ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if canonical, isAlias := allowAliases[name]; isAlias {
				name = canonical
			}
			d.Analyzers = append(d.Analyzers, name)
		}
		if len(d.Analyzers) == 0 {
			d.Err = "//rumba:allow analyzer list is empty"
			return d, true
		}
		d.Reason = strings.Join(fields[1:], " ")
		return d, true
	case "":
		d.Err = "//rumba: marker with no directive kind"
		return d, true
	default:
		d.Err = "unknown //rumba: directive " + strings.Map(sanitizeRune, kind)
		return d, true
	}
}

// sanitizeRune keeps diagnostic text printable when a malformed directive
// carries control characters.
func sanitizeRune(r rune) rune {
	if r < ' ' || r == 0x7f {
		return '?'
	}
	return r
}

// funcDirective reports whether fd's doc comment carries a well-formed
// directive of the given kind.
func funcDirective(fd *ast.FuncDecl, kind string) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if d, ok := ParseDirective(c.Text); ok && d.Err == "" && d.Kind == kind {
			return true
		}
	}
	return false
}

// knownAnalyzerNames returns the valid //rumba:allow targets.
func knownAnalyzerNames() map[string]bool {
	known := map[string]bool{"*": true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	return known
}

// AnalyzerDirective reports //rumba: markers that parse as malformed
// (unknown kind, empty allow list) and allow-lists naming analyzers that do
// not exist — the silent-mis-scope failure modes of comment-driven
// suppression.
var AnalyzerDirective = &Analyzer{
	Name:     "directive",
	Doc:      "//rumba: markers must parse as known directives with valid analyzer lists",
	Severity: SeverityWarning,
	Run: func(p *Pass) {
		// Resolved via knownAnalyzerNames (not Analyzers()) to avoid an
		// initialization cycle with the registry that lists this analyzer.
		known := knownAnalyzerNames()
		for _, f := range p.Pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, ok := ParseDirective(c.Text)
					if !ok {
						continue
					}
					if d.Err != "" {
						p.Reportf(c.Pos(), "%s", d.Err)
						continue
					}
					if d.Kind != DirAllow {
						continue
					}
					for _, name := range d.Analyzers {
						if !known[name] {
							p.Reportf(c.Pos(), "//rumba:allow names unknown analyzer %q", name)
						}
					}
				}
			}
		}
	},
}
