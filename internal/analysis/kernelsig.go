package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// kernelsig: Rumba accepts a kernel wherever a struct field or a function
// parameter has the pure-kernel shape func([]float64) []float64 — the
// bench.Spec.Exact re-execution hook and the helpers in accel/exec/
// pipeline that take kernels. Any *concrete* function supplied at such a
// site (a declared function or a function literal) must pass the purity
// analysis: that is the machine-checked form of the Section 2.2
// requirement that recovery re-executes only pure regions. Plumbing a
// kernel value onwards (passing spec.Exact along) is not re-checked; the
// check fires where a concrete function enters the system.

// isKernelSig reports whether t is exactly func([]float64) []float64.
func isKernelSig(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Recv() != nil || sig.Variadic() {
		return false
	}
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	return isFloatSlice(sig.Params().At(0).Type()) && isFloatSlice(sig.Results().At(0).Type())
}

func isFloatSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// sinkSite is one expression that supplies a kernel to an entry point.
type sinkSite struct {
	pkg  *Package
	pos  token.Pos
	desc string       // what the value flows into, for messages
	fn   *types.Func  // statically resolved function, if any
	lit  *ast.FuncLit // function literal, if any
	// litInfo is the inline analysis of lit's body.
	litInfo *FuncInfo
	expr    ast.Expr // the supplied expression
	// unverifiable, when non-empty, explains why no concrete function can
	// be resolved for the site (reported as a finding: a kernel must not
	// enter the system unchecked).
	unverifiable string
}

// findSinkSites scans every package for kernel-typed fields and parameters
// receiving a value.
func findSinkSites(m *Module) []sinkSite {
	var sites []sinkSite
	for _, pkg := range m.Packages {
		info := pkg.Info
		add := func(expr ast.Expr, desc string) {
			expr = ast.Unparen(expr)
			site := sinkSite{pkg: pkg, pos: expr.Pos(), desc: desc, expr: expr}
			switch v := expr.(type) {
			case *ast.FuncLit:
				site.lit = v
				fd := &ast.FuncDecl{Name: ast.NewIdent("kernel literal"), Type: v.Type, Body: v.Body}
				site.litInfo = analyzeFuncTyped(pkg, fd, nil, m.fresh)
			case *ast.Ident, *ast.SelectorExpr:
				if fn, ok := calleeObject(info, &ast.CallExpr{Fun: expr}).(*types.Func); ok {
					site.fn = fn
				}
			}
			sites = append(sites, site)
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.CompositeLit:
					tv, ok := info.Types[v]
					if !ok {
						return true
					}
					st, ok := tv.Type.Underlying().(*types.Struct)
					if !ok {
						return true
					}
					for i, elt := range v.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							key, ok := kv.Key.(*ast.Ident)
							if !ok {
								continue
							}
							if fld := structField(st, key.Name); fld != nil && isKernelSig(fld.Type()) {
								add(kv.Value, fieldDesc(tv.Type, key.Name))
							}
						} else if i < st.NumFields() && isKernelSig(st.Field(i).Type()) {
							add(elt, fieldDesc(tv.Type, st.Field(i).Name()))
						}
					}
				case *ast.AssignStmt:
					for i, lhs := range v.Lhs {
						sel, ok := lhs.(*ast.SelectorExpr)
						if !ok {
							continue
						}
						selInfo, ok := info.Selections[sel]
						if !ok {
							continue
						}
						fld, ok := selInfo.Obj().(*types.Var)
						if !ok || !fld.IsField() || !isKernelSig(fld.Type()) {
							continue
						}
						if len(v.Lhs) == len(v.Rhs) {
							add(v.Rhs[i], "field "+sel.Sel.Name)
						} else if len(v.Rhs) == 1 {
							// Multi-value assignment (f.K, err = mk()): the
							// kernel is the i-th result of a call, so no
							// concrete function can be resolved here.
							sites = append(sites, sinkSite{
								pkg: pkg, pos: v.Rhs[0].Pos(), expr: v.Rhs[0],
								desc:         "field " + sel.Sel.Name,
								unverifiable: "supplied through a multi-value assignment; assign the kernel from a named function instead",
							})
						}
					}
				case *ast.CallExpr:
					tv, ok := info.Types[v.Fun]
					if !ok || tv.IsType() {
						return true
					}
					sig, ok := tv.Type.Underlying().(*types.Signature)
					if !ok {
						return true
					}
					for i, arg := range v.Args {
						if i >= sig.Params().Len() {
							break // variadic tail cannot be kernel-typed here
						}
						if isKernelSig(sig.Params().At(i).Type()) {
							add(arg, "parameter "+sig.Params().At(i).Name()+" of "+callDesc(info, v))
						}
					}
				}
				return true
			})
		}
	}
	return sites
}

func structField(st *types.Struct, name string) *types.Var {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return st.Field(i)
		}
	}
	return nil
}

func fieldDesc(t types.Type, field string) string {
	name := t.String()
	if named, ok := t.(*types.Named); ok {
		name = named.Obj().Name()
	}
	return "field " + name + "." + field
}

func callDesc(info *types.Info, call *ast.CallExpr) string {
	if fn, ok := calleeObject(info, call).(*types.Func); ok {
		return objName(fn)
	}
	return "a call"
}

// litPure checks a function literal supplied at a sink: its body must have
// no local violations and every callee must be pure by the module facts.
func litPure(m *Module, fi *FuncInfo) (bool, string) {
	if len(fi.Reasons) > 0 {
		return false, fi.Reasons[0].Msg
	}
	if len(fi.Dynamic) > 0 {
		return false, "calls through an unanalysable function value"
	}
	for callee := range fi.Calls {
		if target, ok := m.infos[callee]; ok {
			if !target.pure {
				return false, "calls impure function " + objName(callee)
			}
			continue
		}
		if pureStdlib[objPathName(callee)] || m.trusted.trusts(callee) {
			continue
		}
		return false, "calls unknown function " + objName(callee)
	}
	return true, ""
}

// AnalyzerKernelSig flags impure or unverifiable concrete functions
// supplied to kernel entry points, at the call/assignment site.
var AnalyzerKernelSig = &Analyzer{
	Name:     "kernelsig",
	Doc:      "functions handed to kernel entry points (func([]float64) []float64 sinks) must be provably pure",
	Severity: SeverityError,
	Run: func(p *Pass) {
		for _, site := range p.Module.sinks {
			if site.pkg != p.Pkg {
				continue
			}
			switch {
			case site.unverifiable != "":
				p.Reportf(site.pos, "kernel supplied to %s cannot be verified: %s", site.desc, site.unverifiable)
			case site.lit != nil:
				if ok, why := litPure(p.Module, site.litInfo); !ok {
					p.Reportf(site.pos, "kernel literal supplied to %s is not provably pure: %s", site.desc, why)
				}
			case site.fn != nil:
				fi, inModule := p.Module.FuncInfo(site.fn)
				if !inModule {
					if pureStdlib[objPathName(site.fn)] || p.Module.trusted.trusts(site.fn) {
						continue
					}
					p.Reportf(site.pos, "kernel %s supplied to %s is external and not trusted pure", objName(site.fn), site.desc)
					continue
				}
				if !fi.Pure() {
					var msgs []string
					for _, r := range fi.AllReasons() {
						msgs = append(msgs, r.Msg)
					}
					p.Reportf(site.pos, "kernel %s supplied to %s is not provably pure: %s",
						objName(site.fn), site.desc, strings.Join(msgs, "; "))
				}
			}
		}
	},
}
